// Tests for the sweep scheduler (src/runner/sweep.*): spec parsing, grid
// expansion order, deterministic aggregation under the thread pool,
// per-scenario failure capture, dataset-cache sharing, and
// journal-based resume.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "runner/sweep.hpp"
#include "support/check.hpp"

namespace nadmm::runner {
namespace {

SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.solvers = {"newton-admm", "giant"};
  spec.datasets = {"blobs"};
  spec.workers = {2};
  spec.lambdas = {1e-3, 1e-2};
  spec.base.n_train = 120;
  spec.base.n_test = 40;
  spec.base.e18_features = 8;
  spec.base.iterations = 3;
  return spec;
}

// ------------------------------------------------------------ parsing

TEST(SweepSpecParsing, AxisListsAndScalars) {
  SweepSpec spec;
  apply_sweep_assignment(spec, "solvers", "newton-admm, giant ,sync-sgd");
  apply_sweep_assignment(spec, "workers", "2, 4");
  apply_sweep_assignment(spec, "lambdas", "1e-5,1e-4");
  apply_sweep_assignment(spec, "n_train", "500");
  apply_sweep_assignment(spec, "cg_tol", "1e-6");
  EXPECT_EQ(spec.solvers,
            (std::vector<std::string>{"newton-admm", "giant", "sync-sgd"}));
  EXPECT_EQ(spec.workers, (std::vector<int>{2, 4}));
  EXPECT_EQ(spec.lambdas, (std::vector<double>{1e-5, 1e-4}));
  EXPECT_EQ(spec.base.n_train, 500u);
  EXPECT_DOUBLE_EQ(spec.base.cg_tol, 1e-6);
}

TEST(SweepSpecParsing, RejectsUnknownKeysAndMalformedValues) {
  SweepSpec spec;
  EXPECT_THROW(apply_sweep_assignment(spec, "solver", "giant"),
               InvalidArgument);
  EXPECT_THROW(apply_sweep_assignment(spec, "workers", "four"),
               InvalidArgument);
  EXPECT_THROW(apply_sweep_assignment(spec, "lambdas", "1e-5x"),
               InvalidArgument);
  EXPECT_THROW(apply_sweep_assignment(spec, "n_train", ""), InvalidArgument);
}

TEST(SweepSpecParsing, ParsesSpecFileWithComments) {
  const std::string path = testing::TempDir() + "/nadmm_sweep_spec.txt";
  {
    std::ofstream out(path);
    out << "# a comment\n"
        << "solvers = newton-admm, sync-sgd\n"
        << "datasets = blobs   # trailing comment\n"
        << "workers = 2,4\n"
        << "iterations = 7\n"
        << "\n";
  }
  const SweepSpec spec = parse_sweep_file(path);
  EXPECT_EQ(spec.solvers,
            (std::vector<std::string>{"newton-admm", "sync-sgd"}));
  EXPECT_EQ(spec.datasets, (std::vector<std::string>{"blobs"}));
  EXPECT_EQ(spec.workers, (std::vector<int>{2, 4}));
  EXPECT_EQ(spec.base.iterations, 7);
  std::filesystem::remove(path);
}

TEST(SweepSpecParsing, BadSpecLineAndMissingFileThrow) {
  const std::string path = testing::TempDir() + "/nadmm_bad_spec.txt";
  {
    std::ofstream out(path);
    out << "solvers newton-admm\n";
  }
  EXPECT_THROW(static_cast<void>(parse_sweep_file(path)), InvalidArgument);
  std::filesystem::remove(path);
  EXPECT_THROW(static_cast<void>(parse_sweep_file(path)), RuntimeError);
}

// ------------------------------------------------------------ expansion

TEST(SweepExpansion, ProducesFullGridInDeterministicOrder) {
  SweepSpec spec = tiny_spec();
  spec.networks = {"ib100", "eth10"};
  const auto scenarios = expand_scenarios(spec);
  ASSERT_EQ(scenarios.size(), 2u * 2u * 2u);  // solvers × networks × lambdas
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(scenarios[i].index, static_cast<int>(i));
  }
  // Rightmost axis (lambda) varies fastest; solver slowest.
  EXPECT_EQ(scenarios[0].solver, "newton-admm");
  EXPECT_EQ(scenarios[0].config.network, "ib100");
  EXPECT_DOUBLE_EQ(scenarios[0].config.lambda, 1e-3);
  EXPECT_DOUBLE_EQ(scenarios[1].config.lambda, 1e-2);
  EXPECT_EQ(scenarios[2].config.network, "eth10");
  EXPECT_EQ(scenarios[4].solver, "giant");
  // Base knobs are inherited by every scenario.
  for (const auto& s : scenarios) {
    EXPECT_EQ(s.config.n_train, 120u);
    EXPECT_EQ(s.config.iterations, 3);
  }
}

TEST(SweepExpansion, EmptyAxisThrows) {
  SweepSpec spec = tiny_spec();
  spec.datasets.clear();
  EXPECT_THROW(static_cast<void>(expand_scenarios(spec)), InvalidArgument);
}

TEST(SweepExpansion, PartitionAxisExpandsAndTags) {
  SweepSpec spec = tiny_spec();
  spec.solvers = {"newton-admm"};
  spec.lambdas = {1e-3};
  apply_sweep_assignment(spec, "partitions", "contiguous, strided ,weighted");
  const auto scenarios = expand_scenarios(spec);
  ASSERT_EQ(scenarios.size(), 3u);
  EXPECT_EQ(scenarios[0].config.partition, "contiguous");
  EXPECT_EQ(scenarios[1].config.partition, "strided");
  EXPECT_EQ(scenarios[2].config.partition, "weighted");
  EXPECT_NE(scenarios[1].tag().find("strided"), std::string::npos);
  // Unknown modes are rejected at parse time, not at run time.
  EXPECT_THROW(apply_sweep_assignment(spec, "partitions", "zigzag"),
               InvalidArgument);
  // The partition axis is part of the journal fingerprint.
  SweepSpec other = tiny_spec();
  other.solvers = {"newton-admm"};
  other.lambdas = {1e-3};
  EXPECT_NE(spec_fingerprint(spec), spec_fingerprint(other));
}

TEST(SweepExpansion, ScaleMultipliesSampleCountsAtExpansion) {
  SweepSpec spec = tiny_spec();
  apply_sweep_assignment(spec, "scale", "2.5");
  EXPECT_DOUBLE_EQ(spec.scale, 2.5);
  for (const auto& s : expand_scenarios(spec)) {
    EXPECT_EQ(s.config.n_train, 300u);  // round(120 × 2.5)
    EXPECT_EQ(s.config.n_test, 100u);
  }
  // The base counts stay untouched, and scale enters the fingerprint so
  // a paper-scale run never resumes from a small grid's journal.
  EXPECT_EQ(spec.base.n_train, 120u);
  EXPECT_NE(spec_fingerprint(spec), spec_fingerprint(tiny_spec()));
  EXPECT_THROW(apply_sweep_assignment(spec, "scale", "0"), InvalidArgument);
  EXPECT_THROW(apply_sweep_assignment(spec, "scale", "-1"), InvalidArgument);
  EXPECT_THROW(apply_sweep_assignment(spec, "scale", "big"), InvalidArgument);
}

TEST(SweepExpansion, WeakScalingGrowsTrainSetWithWorkers) {
  SweepSpec spec = tiny_spec();
  spec.solvers = {"newton-admm"};
  spec.lambdas = {1e-3};
  spec.workers = {2, 4, 8};
  apply_sweep_assignment(spec, "weak_scaling", "true");
  const auto scenarios = expand_scenarios(spec);
  ASSERT_EQ(scenarios.size(), 3u);
  EXPECT_EQ(scenarios[0].config.n_train, 240u);  // per-worker 120 × w
  EXPECT_EQ(scenarios[1].config.n_train, 480u);
  EXPECT_EQ(scenarios[2].config.n_train, 960u);
  for (const auto& s : scenarios) EXPECT_EQ(s.config.n_test, 40u);
  // Composes with scale: the per-worker shard is scaled first.
  apply_sweep_assignment(spec, "scale", "0.5");
  EXPECT_EQ(expand_scenarios(spec)[2].config.n_train, 480u);  // 60 × 8
  SweepSpec strong = tiny_spec();
  strong.solvers = {"newton-admm"};
  strong.lambdas = {1e-3};
  strong.workers = {2, 4, 8};
  EXPECT_NE(spec_fingerprint(spec), spec_fingerprint(strong));
  EXPECT_THROW(apply_sweep_assignment(spec, "weak_scaling", "maybe"),
               InvalidArgument);
}

TEST(SweepExpansion, TagIsFilesystemSafeAndUnique) {
  const auto scenarios = expand_scenarios(tiny_spec());
  std::set<std::string> tags;
  for (const auto& s : scenarios) {
    const std::string tag = s.tag();
    EXPECT_EQ(tag.find('/'), std::string::npos);
    EXPECT_EQ(tag.find(' '), std::string::npos);
    tags.insert(tag);
  }
  EXPECT_EQ(tags.size(), scenarios.size());
}

// ------------------------------------------------------------ execution

TEST(SweepRun, ScaledSweepMatchesManuallyEnlargedSpec) {
  SweepSpec spec = tiny_spec();
  spec.solvers = {"newton-admm"};
  spec.lambdas = {1e-3};
  apply_sweep_assignment(spec, "scale", "2");
  SweepSpec manual = tiny_spec();
  manual.solvers = {"newton-admm"};
  manual.lambdas = {1e-3};
  manual.base.n_train = 240;
  manual.base.n_test = 80;
  SweepOptions options;
  EXPECT_EQ(run_sweep(spec, options).csv_rows(),
            run_sweep(manual, options).csv_rows());
}

TEST(SweepRun, ReportsPeakDatasetBytesAcrossPartitionModes) {
  SweepSpec spec = tiny_spec();
  spec.solvers = {"newton-admm"};
  spec.lambdas = {1e-3};
  spec.partitions = {"contiguous", "strided", "weighted"};
  SweepOptions options;
  const auto report = run_sweep(spec, options);
  ASSERT_EQ(report.outcomes.size(), 3u);
  ASSERT_EQ(report.failures(), 0u);
  const auto& contiguous = report.outcomes[0];
  const auto& strided = report.outcomes[1];
  const auto& weighted = report.outcomes[2];
  EXPECT_GT(contiguous.peak_dataset_bytes, 0u);
  // Zero-copy views (contiguous, weighted) hold just the full splits;
  // strided gathers per-rank copies on top.
  EXPECT_EQ(contiguous.peak_dataset_bytes, weighted.peak_dataset_bytes);
  EXPECT_GT(strided.peak_dataset_bytes, contiguous.peak_dataset_bytes);
  // All three modes share one cached full dataset; the strided scenario
  // adds one cached entry for its gather copies (so repeats would not
  // re-gather), hence two generations total.
  EXPECT_EQ(report.cache.generations, 2u);
  const auto rows = report.csv_rows();
  EXPECT_NE(rows[0].find("partition"), std::string::npos);
  EXPECT_NE(rows[0].find("peak_dataset_bytes"), std::string::npos);
}

TEST(SweepRun, FourScenarioSweepIsDeterministicAcrossPoolSizes) {
  const SweepSpec spec = tiny_spec();  // 2 solvers × 2 lambdas = 4 scenarios

  SweepOptions serial;
  serial.jobs = 1;
  const SweepReport a = run_sweep(spec, serial);

  SweepOptions pooled;
  pooled.jobs = 4;
  const SweepReport b = run_sweep(spec, pooled);

  ASSERT_EQ(a.outcomes.size(), 4u);
  ASSERT_EQ(b.outcomes.size(), 4u);
  EXPECT_EQ(a.failures(), 0u);
  EXPECT_EQ(b.failures(), 0u);

  const auto rows_a = a.csv_rows();
  const auto rows_b = b.csv_rows();
  ASSERT_EQ(rows_a.size(), 5u);  // header + one row per scenario
  // Byte-identical aggregation regardless of scheduler parallelism.
  EXPECT_EQ(rows_a, rows_b);

  // Every scenario ran its own configuration.
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const auto& o = a.outcomes[i];
    EXPECT_TRUE(o.ok);
    EXPECT_EQ(o.scenario.index, static_cast<int>(i));
    EXPECT_EQ(o.result.solver, o.scenario.solver);
    EXPECT_GT(o.result.total_sim_seconds, 0.0);
  }
}

TEST(SweepRun, ProgressCallbackSeesEveryScenario) {
  SweepOptions options;
  options.jobs = 2;
  std::vector<int> seen;
  std::size_t last_total = 0;
  options.on_scenario_done = [&](const ScenarioOutcome& o, std::size_t done,
                                 std::size_t total) {
    seen.push_back(o.scenario.index);
    EXPECT_EQ(done, seen.size());
    last_total = total;
  };
  const auto report = run_sweep(tiny_spec(), options);
  EXPECT_EQ(report.failures(), 0u);
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(last_total, 4u);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SweepRun, CapturesScenarioFailuresWithoutAborting) {
  SweepSpec spec = tiny_spec();
  spec.solvers = {"newton-admm", "no-such-solver"};
  spec.lambdas = {1e-3};
  SweepOptions options;
  options.jobs = 2;
  const auto report = run_sweep(spec, options);
  ASSERT_EQ(report.outcomes.size(), 2u);
  EXPECT_EQ(report.failures(), 1u);
  EXPECT_TRUE(report.outcomes[0].ok);
  EXPECT_FALSE(report.outcomes[1].ok);
  EXPECT_NE(report.outcomes[1].error.find("no-such-solver"),
            std::string::npos);
  const auto rows = report.csv_rows();
  EXPECT_NE(rows[1].find(",ok,"), std::string::npos);
  EXPECT_NE(rows[2].find(",error,"), std::string::npos);
}

TEST(SweepRun, WritesAggregateReportsAndTraces) {
  const std::string dir = testing::TempDir() + "/nadmm_sweep_out";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  SweepSpec spec = tiny_spec();
  spec.solvers = {"newton-admm"};
  spec.lambdas = {1e-3};
  SweepOptions options;
  options.trace_dir = dir + "/traces";
  const auto report = run_sweep(spec, options);
  ASSERT_EQ(report.failures(), 0u);

  report.write_csv(dir + "/report.csv");
  report.write_json(dir + "/report.json");

  std::ifstream csv(dir + "/report.csv");
  std::string line;
  int csv_lines = 0;
  while (std::getline(csv, line)) ++csv_lines;
  EXPECT_EQ(csv_lines, 2);  // header + 1 scenario

  std::ifstream json(dir + "/report.json");
  std::stringstream buffer;
  buffer << json.rdbuf();
  const std::string body = buffer.str();
  EXPECT_EQ(body.front(), '[');
  EXPECT_NE(body.find("\"solver\": \"newton-admm\""), std::string::npos);
  EXPECT_NE(body.find("\"status\": \"ok\""), std::string::npos);

  // One trace CSV per scenario, named by tag.
  const auto trace_path =
      options.trace_dir + "/" + report.outcomes[0].scenario.tag() + ".csv";
  EXPECT_TRUE(std::filesystem::exists(trace_path));
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------ caching

TEST(SweepCache, SolverOnlySweepGeneratesItsDatasetExactlyOnce) {
  // Two scenarios differing only in solver must share one dataset copy.
  SweepSpec spec = tiny_spec();
  spec.lambdas = {1e-3};  // 2 solvers × 1 dataset × 1 λ
  data::DatasetProvider provider;
  SweepOptions options;
  options.jobs = 2;
  options.provider = &provider;
  const auto report = run_sweep(spec, options);
  EXPECT_EQ(report.failures(), 0u);
  EXPECT_EQ(provider.stats().generations, 1u);
  EXPECT_EQ(provider.stats().hits + provider.stats().misses, 2u);
}

TEST(SweepCache, CacheBudgetZeroRegeneratesPerScenario) {
  SweepSpec spec = tiny_spec();
  spec.lambdas = {1e-3};
  SweepOptions options;
  options.cache_budget = 0;
  const auto report = run_sweep(spec, options);
  EXPECT_EQ(report.failures(), 0u);
  EXPECT_EQ(report.cache.generations, 0u);  // provider bypassed entirely
}

TEST(SweepCache, CachedAndUncachedSweepsProduceIdenticalReports) {
  const SweepSpec spec = tiny_spec();
  SweepOptions cached;
  cached.jobs = 4;
  SweepOptions uncached;
  uncached.cache_budget = 0;
  EXPECT_EQ(run_sweep(spec, cached).csv_rows(),
            run_sweep(spec, uncached).csv_rows());
}

// ------------------------------------------------------------ resume

TEST(SweepJournal, FingerprintTracksEverySpecAxisAndBaseKnob) {
  const SweepSpec base = tiny_spec();
  SweepSpec other = base;
  other.solvers.push_back("sync-sgd");
  EXPECT_NE(spec_fingerprint(base), spec_fingerprint(other));
  other = base;
  other.base.seed += 1;
  EXPECT_NE(spec_fingerprint(base), spec_fingerprint(other));
  other = base;
  other.lambdas = {1e-3, 1e-1};
  EXPECT_NE(spec_fingerprint(base), spec_fingerprint(other));
  EXPECT_EQ(spec_fingerprint(base), spec_fingerprint(tiny_spec()));
}

TEST(SweepJournal, InterruptedThenResumedReportIsByteIdentical) {
  const std::string dir = testing::TempDir() + "/nadmm_journal_resume";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string journal = dir + "/report.csv.journal.jsonl";
  const SweepSpec spec = tiny_spec();  // 4 scenarios

  SweepOptions reference;
  reference.jobs = 2;
  const auto full = run_sweep(spec, reference);

  SweepOptions interrupted;
  interrupted.journal_path = journal;
  interrupted.max_scenarios = 2;
  const auto partial = run_sweep(spec, interrupted);
  EXPECT_FALSE(partial.complete());
  EXPECT_EQ(partial.executed, 2u);

  SweepOptions resumed;
  resumed.jobs = 4;
  resumed.journal_path = journal;
  resumed.resume = true;
  std::size_t executed_callbacks = 0;
  resumed.on_scenario_done = [&](const ScenarioOutcome&, std::size_t,
                                 std::size_t total) {
    ++executed_callbacks;
    EXPECT_EQ(total, 2u);  // only the two remaining scenarios run
  };
  const auto rest = run_sweep(spec, resumed);
  EXPECT_TRUE(rest.complete());
  EXPECT_EQ(rest.resumed, 2u);
  EXPECT_EQ(rest.executed, 2u);
  EXPECT_EQ(executed_callbacks, 2u);
  for (const auto& o : rest.outcomes) EXPECT_TRUE(o.ok);

  EXPECT_EQ(full.csv_rows(), rest.csv_rows());
  // JSON reports must match byte-for-byte as well.
  rest.write_json(dir + "/resumed.json");
  full.write_json(dir + "/full.json");
  std::ifstream a(dir + "/resumed.json"), b(dir + "/full.json");
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  std::filesystem::remove_all(dir);
}

TEST(SweepJournal, CompletedTagsAreNotReRun) {
  const std::string dir = testing::TempDir() + "/nadmm_journal_skip";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string journal = dir + "/report.csv.journal.jsonl";
  const SweepSpec spec = tiny_spec();

  SweepOptions first;
  first.journal_path = journal;
  static_cast<void>(run_sweep(spec, first));

  SweepOptions again;
  again.journal_path = journal;
  again.resume = true;
  data::DatasetProvider provider;
  again.provider = &provider;
  const auto report = run_sweep(spec, again);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.resumed, 4u);
  EXPECT_EQ(report.executed, 0u);
  // Nothing ran, so nothing was generated.
  EXPECT_EQ(provider.stats().generations, 0u);
  std::filesystem::remove_all(dir);
}

TEST(SweepJournal, StaleJournalFromDifferentSpecIsRejected) {
  const std::string dir = testing::TempDir() + "/nadmm_journal_stale";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string journal = dir + "/report.csv.journal.jsonl";

  SweepSpec spec = tiny_spec();
  SweepOptions options;
  options.journal_path = journal;
  options.max_scenarios = 1;
  static_cast<void>(run_sweep(spec, options));

  SweepSpec other = spec;
  other.lambdas = {1e-3, 1e-1};  // same scenario count, different grid
  SweepOptions resume;
  resume.journal_path = journal;
  resume.resume = true;
  EXPECT_THROW(static_cast<void>(run_sweep(other, resume)), InvalidArgument);

  // Without --resume the stale journal is overwritten, not an error.
  SweepOptions fresh;
  fresh.journal_path = journal;
  const auto report = run_sweep(other, fresh);
  EXPECT_TRUE(report.complete());
  std::filesystem::remove_all(dir);
}

TEST(SweepJournal, OldJournalVersionIsRejectedOnResume) {
  // A v4 journal predates the faults axis and the wire counters; its
  // outcome records can't rehydrate a current report, so --resume must
  // refuse it with the version named (a rerun without --resume starts
  // fresh).
  const std::string dir = testing::TempDir() + "/nadmm_journal_old";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string journal = dir + "/report.csv.journal.jsonl";

  SweepSpec spec = tiny_spec();
  const auto scenarios = expand_scenarios(spec);
  {
    std::ofstream out(journal);
    out << "{\"kind\": \"nadmm-sweep-journal\", \"version\": 4, "
        << "\"fingerprint\": \"" << spec_fingerprint(spec)
        << "\", \"scenarios\": " << scenarios.size() << "}\n";
  }
  SweepOptions resume;
  resume.journal_path = journal;
  resume.resume = true;
  try {
    static_cast<void>(run_sweep(spec, resume));
    FAIL() << "v4 journal accepted on --resume";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported version 4"),
              std::string::npos)
        << e.what();
  }
  std::filesystem::remove_all(dir);
}

TEST(SweepJournal, V5JournalIsRejectedWithBothVersionsNamed) {
  // v5 journals carry five fixed wire-counter fields; v6 replaced them
  // with the generic sparse metrics map, so restoring a v5 record would
  // silently drop its counters. The rejection must name both the found
  // and the expected version so the fix (rerun without --resume) is
  // obvious from the message alone.
  const std::string dir = testing::TempDir() + "/nadmm_journal_v5";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string journal = dir + "/report.csv.journal.jsonl";

  SweepSpec spec = tiny_spec();
  const auto scenarios = expand_scenarios(spec);
  {
    std::ofstream out(journal);
    out << "{\"kind\": \"nadmm-sweep-journal\", \"version\": 5, "
        << "\"fingerprint\": \"" << spec_fingerprint(spec)
        << "\", \"scenarios\": " << scenarios.size() << "}\n";
  }
  SweepOptions resume;
  resume.journal_path = journal;
  resume.resume = true;
  try {
    static_cast<void>(run_sweep(spec, resume));
    FAIL() << "v5 journal accepted on --resume";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unsupported version 5"), std::string::npos) << what;
    EXPECT_NE(what.find("expected 6"), std::string::npos) << what;
  }
  std::filesystem::remove_all(dir);
}

TEST(SweepJournal, ErrorOutcomesRoundTripThroughTheJournal) {
  const std::string dir = testing::TempDir() + "/nadmm_journal_error";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string journal = dir + "/report.csv.journal.jsonl";

  SweepSpec spec = tiny_spec();
  spec.solvers = {"newton-admm", "no-such-solver"};
  spec.lambdas = {1e-3};

  SweepOptions first;
  first.journal_path = journal;
  const auto a = run_sweep(spec, first);
  EXPECT_EQ(a.failures(), 1u);

  SweepOptions resumed;
  resumed.journal_path = journal;
  resumed.resume = true;
  const auto b = run_sweep(spec, resumed);
  EXPECT_EQ(b.resumed, 2u);
  EXPECT_EQ(b.executed, 0u);
  EXPECT_EQ(a.csv_rows(), b.csv_rows());
  EXPECT_FALSE(b.outcomes[1].ok);
  EXPECT_NE(b.outcomes[1].error.find("no-such-solver"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(SweepJournal, TornFinalLineIsIgnoredOnResume) {
  const std::string dir = testing::TempDir() + "/nadmm_journal_torn";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string journal = dir + "/report.csv.journal.jsonl";
  const SweepSpec spec = tiny_spec();

  SweepOptions options;
  options.journal_path = journal;
  options.max_scenarios = 2;
  static_cast<void>(run_sweep(spec, options));
  {
    // Simulate a kill mid-write: a half-written trailing line.
    std::ofstream out(journal, std::ios::app);
    out << "{\"index\": 2, \"tag\": \"trunc";
  }
  SweepOptions resumed;
  resumed.journal_path = journal;
  resumed.resume = true;
  const auto report = run_sweep(spec, resumed);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.resumed, 2u);  // the torn line was discarded
  EXPECT_EQ(report.failures(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(SweepJournal, EmptyOrTornHeaderJournalResumesAsFreshStart) {
  // A kill inside the truncate-then-write-header window leaves an empty
  // or torn journal; --resume must start fresh, not dead-end.
  const std::string dir = testing::TempDir() + "/nadmm_journal_empty";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string journal = dir + "/report.csv.journal.jsonl";
  const SweepSpec spec = tiny_spec();
  for (const char* content : {"", "{\"kind\": \"nadmm-sweep-jour"}) {
    {
      std::ofstream out(journal);
      out << content;
    }
    SweepOptions options;
    options.journal_path = journal;
    options.resume = true;
    const auto report = run_sweep(spec, options);
    EXPECT_TRUE(report.complete());
    EXPECT_EQ(report.resumed, 0u);
    EXPECT_EQ(report.executed, 4u);
  }
  std::filesystem::remove_all(dir);
}

TEST(SweepJournal, LineTornInsideItsFinalNumberIsIgnoredOnResume) {
  // Every field extractor would succeed on this line — strtod happily
  // parses the truncated "1.2" — so only the missing closing brace marks
  // it as torn. Restoring it would silently corrupt the resumed report.
  const std::string dir = testing::TempDir() + "/nadmm_journal_torn_num";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string journal = dir + "/report.csv.journal.jsonl";
  const SweepSpec spec = tiny_spec();
  const auto full = run_sweep(spec, SweepOptions{});

  SweepOptions options;
  options.journal_path = journal;
  options.max_scenarios = 2;
  static_cast<void>(run_sweep(spec, options));
  {
    std::ofstream out(journal, std::ios::app);
    out << "{\"index\": 2, \"tag\": \""
        << expand_scenarios(spec)[2].tag()
        << "\", \"status\": \"ok\", \"iterations\": 3"
        << ", \"final_objective\": 1, \"final_test_accuracy\": 0.5"
        << ", \"total_sim_seconds\": 2, \"avg_epoch_sim_seconds\": 0.1"
        << ", \"total_comm_sim_seconds\": 1.2";  // torn before '}'
  }
  SweepOptions resumed;
  resumed.journal_path = journal;
  resumed.resume = true;
  const auto report = run_sweep(spec, resumed);
  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.resumed, 2u);  // scenario 2 re-ran instead
  EXPECT_EQ(full.csv_rows(), report.csv_rows());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace nadmm::runner
