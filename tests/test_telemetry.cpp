// Tests for the unified telemetry layer (support/telemetry.*): span
// recording against the virtual clock, the metrics registry, the
// deterministic merge/export, and the enablement gates that keep
// instrumented code free when no tracer is installed.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "comm/clock.hpp"
#include "la/flops.hpp"
#include "runner/harness.hpp"
#include "runner/registry.hpp"
#include "support/telemetry.hpp"

namespace nadmm {
namespace {

la::DeviceModel unit_device() { return {"unit", 1.0}; }  // 1 GF/s

TEST(Telemetry, DisabledByDefault) {
  EXPECT_FALSE(telem::active());
  EXPECT_EQ(telem::current(), nullptr);
  // All entry points must be safe no-ops without a tracer.
  {
    TELEM_SPAN("test", "noop");
    telem::instant("test", "noop");
    telem::count("noop");
    telem::gauge("noop", 1.0);
    telem::observe("noop", 1.0);
    telem::snapshot_metrics();
  }
  EXPECT_FALSE(telem::active());
}

TEST(Telemetry, SpanRecordsVirtualTimeAndDeltas) {
  telem::Tracer tracer("test");
  comm::SimClock clock(unit_device());
  clock.add_compute(1.5);  // spans start at sim t = 1.5
  {
    telem::TracerScope scope(tracer);
    telem::TrackScope track(0, &clock);
    EXPECT_TRUE(telem::active());
    TELEM_SPAN("kernel", "work");
    flops::add(2'000'000'000);  // 2 GF on a 1 GF/s device = 2 sim-seconds
  }
  const auto events = tracer.merged_events();
  ASSERT_EQ(events.size(), 1u);
  const auto& e = events[0];
  EXPECT_EQ(e.kind, telem::EventKind::kSpan);
  EXPECT_STREQ(e.category, "kernel");
  EXPECT_STREQ(e.name, "work");
  EXPECT_EQ(e.track, 0);
  EXPECT_DOUBLE_EQ(e.sim_begin, 1.5);
  EXPECT_DOUBLE_EQ(e.sim_end, 3.5);  // projected, not folded in
  EXPECT_EQ(e.flops, 2'000'000'000u);
  EXPECT_GE(e.wall_end, e.wall_begin);
  // Observation must not have mutated the clock itself.
  EXPECT_DOUBLE_EQ(clock.total_seconds(), 1.5);
}

TEST(Telemetry, SpansNeedABoundTrackButCountersDoNot) {
  telem::Tracer tracer("test");
  telem::TracerScope scope(tracer);
  // No TrackScope: spans/instants have no rank clock to stamp, so they
  // drop; counters only need the tracer.
  {
    TELEM_SPAN("test", "untracked");
    telem::instant("test", "untracked");
    telem::count("seen", 3);
  }
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.counters().at("seen"), 3u);
}

TEST(Telemetry, MergeIsSimTimeThenTrackThenSeq) {
  telem::Tracer tracer("test");
  comm::SimClock c0(unit_device());
  comm::SimClock c1(unit_device());
  telem::TracerScope scope(tracer);
  {
    // Track 1 records first in wall order, at sim t = 2.
    c1.add_compute(2.0);
    telem::TrackScope track(1, &c1);
    telem::instant("test", "late");
  }
  {
    telem::TrackScope track(0, &c0);
    telem::instant("test", "early");   // sim t = 0, seq 0
    telem::instant("test", "early2");  // sim t = 0, seq 1
  }
  const auto events = tracer.merged_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "early");
  EXPECT_STREQ(events[1].name, "early2");
  EXPECT_STREQ(events[2].name, "late");
}

TEST(Telemetry, ScopesRestoreThePreviousContext) {
  telem::Tracer outer("outer");
  telem::Tracer inner("inner");
  telem::TracerScope a(outer);
  EXPECT_EQ(telem::current(), &outer);
  {
    telem::TracerScope b(inner);
    EXPECT_EQ(telem::current(), &inner);
  }
  EXPECT_EQ(telem::current(), &outer);
}

TEST(Telemetry, MetricsRegistryAndSnapshot) {
  telem::Tracer tracer("test");
  comm::SimClock clock(unit_device());
  telem::TracerScope scope(tracer);
  telem::TrackScope track(0, &clock);
  telem::count("sends", 2);
  telem::count("sends");
  telem::gauge("rho", 0.25);
  telem::observe("staleness", 1.0);
  telem::observe("staleness", 3.0);
  clock.add_compute(1.0);
  telem::snapshot_metrics();

  EXPECT_EQ(tracer.counters().at("sends"), 3u);
  EXPECT_DOUBLE_EQ(tracer.gauges().at("rho"), 0.25);
  EXPECT_EQ(tracer.histograms().at("staleness").count(), 2u);

  // The snapshot lands one counter event per metric at sim t = 1.
  std::size_t counter_events = 0;
  for (const auto& e : tracer.merged_events()) {
    if (e.kind != telem::EventKind::kCounter) continue;
    ++counter_events;
    EXPECT_DOUBLE_EQ(e.sim_begin, 1.0);
  }
  EXPECT_EQ(counter_events, 2u);  // "sends" + "rho"
}

TEST(Telemetry, ChromeExportShapeAndStability) {
  telem::Tracer tracer("test");
  comm::SimClock clock(unit_device());
  {
    telem::TracerScope scope(tracer);
    telem::TrackScope track(0, &clock);
    {
      TELEM_SPAN("core", "outer");  // 0 → 2 sim-seconds
      {
        TELEM_SPAN("kernel", "inner");  // 0 → 1 sim-second
        flops::add(1'000'000'000);
      }
      flops::add(1'000'000'000);
      telem::instant("wire", "send");
    }
  }
  std::ostringstream a, b;
  tracer.write_chrome_trace(a);
  tracer.write_chrome_trace(b);
  const std::string json = a.str();
  EXPECT_EQ(json, b.str());  // export is a pure function of the events
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"inner\""), std::string::npos);
  // Wall time never leaks into the default export.
  EXPECT_EQ(json.find("wall_us"), std::string::npos);
  // At equal ts the longer (outer) span must be emitted first so slice
  // nesting reconstructs; both spans start at sim t = 0 here.
  EXPECT_LT(json.find("\"name\": \"outer\""), json.find("\"name\": \"inner\""));
}

TEST(Telemetry, AsciiTimelineListsTracksAndCategories) {
  telem::Tracer tracer("test");
  comm::SimClock clock(unit_device());
  {
    telem::TracerScope scope(tracer);
    telem::TrackScope track(2, &clock);
    TELEM_SPAN("kernel", "gemm");
    flops::add(1'000'000'000);
  }
  const std::string timeline = tracer.ascii_timeline(32);
  EXPECT_NE(timeline.find("rank 2"), std::string::npos);
  EXPECT_NE(timeline.find("kernel"), std::string::npos);
}

// ------------------------------------------- end-to-end via a solver

runner::ExperimentConfig tiny_config() {
  runner::ExperimentConfig c;
  c.dataset = "blobs";
  c.n_train = 240;
  c.n_test = 60;
  c.e18_features = 8;
  c.workers = 3;
  c.network = "eth1";
  c.iterations = 4;
  c.lambda = 1e-3;
  c.omp_threads = 1;
  return c;
}

std::string traced_run(const std::string& solver,
                       const runner::ExperimentConfig& config,
                       std::size_t* event_count = nullptr) {
  telem::Tracer tracer("e2e");
  {
    telem::TracerScope scope(tracer);
    const auto tt = runner::make_data(config);
    auto cluster = runner::make_cluster(config);
    static_cast<void>(runner::SolverRegistry::instance().run(
        solver, cluster,
        runner::shard_for_solver(solver, tt.train, &tt.test, config), config));
  }
  if (event_count != nullptr) *event_count = tracer.event_count();
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  return os.str();
}

TEST(Telemetry, AsyncSolverTraceIsByteDeterministic) {
  auto config = tiny_config();
  config.fault = "drop:0.05";
  std::size_t events = 0;
  const std::string a = traced_run("async-admm", config, &events);
  const std::string b = traced_run("async-admm", config);
  EXPECT_EQ(a, b);
  EXPECT_GT(events, 0u);
  // The instrumentation passes all show up: solver spans, wire
  // instants, kernel spans, and the epoch metric snapshots.
  EXPECT_NE(a.find("local_step"), std::string::npos);
  EXPECT_NE(a.find("consensus_merge"), std::string::npos);
  EXPECT_NE(a.find("\"deliver\""), std::string::npos);
  EXPECT_NE(a.find("\"send\""), std::string::npos);
  EXPECT_NE(a.find("\"ph\": \"C\""), std::string::npos);
}

TEST(Telemetry, UntracedRunRecordsNothing) {
  // A tracer that is merely alive (not installed on the running thread)
  // must stay empty: enablement is per-thread, not per-process.
  telem::Tracer tracer("idle");
  const auto config = tiny_config();
  const auto tt = runner::make_data(config);
  auto cluster = runner::make_cluster(config);
  static_cast<void>(runner::SolverRegistry::instance().run(
      "async-admm", cluster,
      runner::shard_for_solver("async-admm", tt.train, &tt.test, config),
      config));
  EXPECT_EQ(tracer.event_count(), 0u);
}

}  // namespace
}  // namespace nadmm
