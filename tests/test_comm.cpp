// Tests for the simulated distributed runtime: collectives correctness
// under varying rank counts (parameterized), network cost model,
// simulated clock, and failure propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "comm/cluster.hpp"
#include "comm/network_model.hpp"
#include "la/vector_ops.hpp"
#include "support/check.hpp"

namespace nadmm::comm {
namespace {

SimCluster make_cluster(int n, NetworkModel net = ideal_network()) {
  return SimCluster(n, la::DeviceModel{"test", 1.0}, std::move(net));
}

// ------------------------------------------------------- network model

TEST(NetworkModel, TreeDepth) {
  EXPECT_EQ(NetworkModel::tree_depth(1), 0);
  EXPECT_EQ(NetworkModel::tree_depth(2), 1);
  EXPECT_EQ(NetworkModel::tree_depth(3), 2);
  EXPECT_EQ(NetworkModel::tree_depth(8), 3);
  EXPECT_EQ(NetworkModel::tree_depth(9), 4);
}

TEST(NetworkModel, PointToPointIsAlphaBeta) {
  NetworkModel m{"t", 1e-3, 1e6};
  EXPECT_DOUBLE_EQ(m.point_to_point(1000), 1e-3 + 1e-3);
}

TEST(NetworkModel, CollectiveCostsScaleWithRanks) {
  NetworkModel m{"t", 1e-3, 1e6};
  EXPECT_DOUBLE_EQ(m.allreduce(1000, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.broadcast(1000, 1), 0.0);
  // allreduce = 2·depth·p2p
  EXPECT_DOUBLE_EQ(m.allreduce(1000, 4), 2 * 2 * m.point_to_point(1000));
  EXPECT_DOUBLE_EQ(m.broadcast(1000, 8), 3 * m.point_to_point(1000));
  // gather: depth·latency + (n−1)·bytes/bw
  EXPECT_DOUBLE_EQ(m.gather(1000, 4), 2 * 1e-3 + 3 * 1000 / 1e6);
  EXPECT_DOUBLE_EQ(m.scatter(1000, 4), m.gather(1000, 4));
}

TEST(NetworkModel, SlowerNetworksCostMore) {
  const double fast = infiniband_100g().allreduce(1 << 20, 8);
  const double slow = ethernet_1g().allreduce(1 << 20, 8);
  EXPECT_GT(slow, 10.0 * fast);
}

TEST(NetworkModel, PresetLookup) {
  EXPECT_EQ(network_from_string("ib100").name, "ib100");
  EXPECT_EQ(network_from_string("wan").name, "wan");
  EXPECT_THROW(network_from_string("zzz"), InvalidArgument);
}

// ------------------------------------------------------- clock

TEST(SimClock, AccruesComputeFromFlops) {
  SimClock clock(la::DeviceModel{"t", 1.0});  // 1 GF/s
  nadmm::flops::reset();
  nadmm::flops::add(2'000'000'000ULL);
  clock.sync_compute();
  EXPECT_DOUBLE_EQ(clock.compute_seconds(), 2.0);
  EXPECT_EQ(clock.total_flops(), 2'000'000'000ULL);
}

TEST(SimClock, PauseSuppressesAccrual) {
  SimClock clock(la::DeviceModel{"t", 1.0});
  nadmm::flops::reset();
  clock.pause();
  nadmm::flops::add(1'000'000'000ULL);
  clock.sync_compute();
  clock.add_comm(5.0);
  clock.resume();
  EXPECT_DOUBLE_EQ(clock.total_seconds(), 0.0);
  nadmm::flops::add(1'000'000'000ULL);
  clock.sync_compute();
  clock.add_comm(0.5);
  EXPECT_DOUBLE_EQ(clock.compute_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(clock.comm_seconds(), 0.5);
}

TEST(SimClock, ResetClearsState) {
  SimClock clock(la::DeviceModel{"t", 1.0});
  clock.add_comm(1.0);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.total_seconds(), 0.0);
}

TEST(SimClock, RooflinePricesBandwidthBoundIntervals) {
  // 1 GF/s and 1 GB/s: whichever of the flop and byte terms is larger
  // bounds each sync interval.
  nadmm::flops::reset();
  SimClock clock(la::DeviceModel{"t", 1.0, 1.0});
  nadmm::flops::add(1'000'000'000ULL);      // 1.0 s of flops
  nadmm::flops::add_bytes(500'000'000ULL);  // 0.5 s of traffic
  clock.sync_compute();
  EXPECT_DOUBLE_EQ(clock.compute_seconds(), 1.0);  // flop-bound
  nadmm::flops::add(1'000'000'000ULL);
  nadmm::flops::add_bytes(3'000'000'000ULL);
  clock.sync_compute();
  EXPECT_DOUBLE_EQ(clock.compute_seconds(), 4.0);  // + 3.0 s, byte-bound
  EXPECT_EQ(clock.total_bytes(), 3'500'000'000ULL);
}

TEST(SimClock, FlopOnlyDevicesIgnoreBytes) {
  nadmm::flops::reset();
  SimClock clock(la::DeviceModel{"t", 1.0});  // no bandwidth rating
  nadmm::flops::add(1'000'000'000ULL);
  nadmm::flops::add_bytes(50'000'000'000ULL);
  clock.sync_compute();
  EXPECT_DOUBLE_EQ(clock.compute_seconds(), 1.0);
}

// ------------------------------------------------------- collectives

class CollectivesTest : public testing::TestWithParam<int> {};

TEST_P(CollectivesTest, AllreduceSumsVectors) {
  const int n = GetParam();
  auto cluster = make_cluster(n);
  cluster.run([&](RankCtx& ctx) {
    std::vector<double> v(17);
    for (std::size_t j = 0; j < v.size(); ++j) {
      v[j] = static_cast<double>(ctx.rank() + 1) * (static_cast<double>(j) + 1);
    }
    ctx.allreduce_sum(v);
    const double rank_sum = n * (n + 1) / 2.0;
    for (std::size_t j = 0; j < v.size(); ++j) {
      EXPECT_DOUBLE_EQ(v[j], rank_sum * (static_cast<double>(j) + 1));
    }
  });
}

TEST_P(CollectivesTest, ScalarReductions) {
  const int n = GetParam();
  auto cluster = make_cluster(n);
  cluster.run([&](RankCtx& ctx) {
    const double r = static_cast<double>(ctx.rank());
    EXPECT_DOUBLE_EQ(ctx.allreduce_sum(r + 1), n * (n + 1) / 2.0);
    EXPECT_DOUBLE_EQ(ctx.allreduce_max(r), static_cast<double>(n - 1));
    EXPECT_DOUBLE_EQ(ctx.allreduce_min(r), 0.0);
  });
}

TEST_P(CollectivesTest, GatherConcatenatesInRankOrder) {
  const int n = GetParam();
  auto cluster = make_cluster(n);
  cluster.run([&](RankCtx& ctx) {
    std::vector<double> mine{static_cast<double>(ctx.rank()),
                             static_cast<double>(ctx.rank()) * 10};
    std::vector<double> all;
    ctx.gather(mine, all, 0);
    if (ctx.is_root()) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(2 * n));
      for (int r = 0; r < n; ++r) {
        EXPECT_DOUBLE_EQ(all[2 * r], r);
        EXPECT_DOUBLE_EQ(all[2 * r + 1], r * 10.0);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectivesTest, ScatterDistributesChunks) {
  const int n = GetParam();
  auto cluster = make_cluster(n);
  cluster.run([&](RankCtx& ctx) {
    std::vector<double> big;
    if (ctx.is_root()) {
      big.resize(3 * static_cast<std::size_t>(n));
      for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<double>(i);
    }
    std::vector<double> chunk(3);
    ctx.scatter(big, chunk, 0);
    for (int j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(chunk[j], 3.0 * ctx.rank() + j);
    }
  });
}

TEST_P(CollectivesTest, BroadcastFromNonZeroRoot) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP();
  auto cluster = make_cluster(n);
  cluster.run([&](RankCtx& ctx) {
    std::vector<double> v(5, ctx.rank() == 1 ? 42.0 : 0.0);
    ctx.broadcast(v, 1);
    for (double e : v) EXPECT_DOUBLE_EQ(e, 42.0);
  });
}

TEST_P(CollectivesTest, AllgatherGivesEveryoneEverything) {
  const int n = GetParam();
  auto cluster = make_cluster(n);
  cluster.run([&](RankCtx& ctx) {
    std::vector<double> mine{static_cast<double>(ctx.rank() * 2)};
    std::vector<double> all;
    ctx.allgather(mine, all);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) EXPECT_DOUBLE_EQ(all[r], 2.0 * r);
  });
}

// Regression for the two-barrier allreduce (the seed used three rounds):
// back-to-back collectives over rank-dependent data must agree across all
// ranks on every round, including when reductions are interleaved with
// other collectives reusing the shared staging slots.
TEST_P(CollectivesTest, AllreduceAgreesAcrossRanksUnderReuse) {
  const int n = GetParam();
  auto cluster = make_cluster(n);
  const std::size_t len = 37;
  cluster.run([&](RankCtx& ctx) {
    std::vector<double> v(len);
    for (int round = 0; round < 100; ++round) {
      for (std::size_t j = 0; j < len; ++j) {
        v[j] = static_cast<double>((ctx.rank() + 1) * (round + 1)) +
               0.25 * static_cast<double>(j);
      }
      ctx.allreduce_sum(v);
      for (std::size_t j = 0; j < len; ++j) {
        double expected = 0.0;
        for (int r = 0; r < n; ++r) {
          expected += static_cast<double>((r + 1) * (round + 1)) +
                      0.25 * static_cast<double>(j);
        }
        ASSERT_DOUBLE_EQ(v[j], expected)
            << "rank " << ctx.rank() << " round " << round << " elem " << j;
      }
      if (round % 10 == 0) {
        // Interleave other collectives so a straggler from the previous
        // allreduce would be caught corrupting the staging slots.
        std::vector<double> mine{static_cast<double>(ctx.rank())};
        std::vector<double> all;
        ctx.allgather(mine, all);
        ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
        EXPECT_DOUBLE_EQ(ctx.allreduce_max(static_cast<double>(ctx.rank())),
                         static_cast<double>(n - 1));
      }
    }
  });
}

TEST_P(CollectivesTest, RepeatedCollectivesStayConsistent) {
  const int n = GetParam();
  auto cluster = make_cluster(n);
  cluster.run([&](RankCtx& ctx) {
    for (int round = 0; round < 50; ++round) {
      double v = ctx.rank() + round;
      const double total = ctx.allreduce_sum(v);
      EXPECT_DOUBLE_EQ(total, n * (n - 1) / 2.0 + n * round);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectivesTest,
                         testing::Values(1, 2, 3, 4, 8));

// ------------------------------------------------------- cost accounting

TEST(Cluster, CollectivesChargeNetworkCost) {
  NetworkModel net{"t", 1e-3, 1e9};
  SimCluster cluster(4, la::DeviceModel{"t", 1.0}, net);
  const auto reports = cluster.run([&](RankCtx& ctx) {
    std::vector<double> v(1000, 1.0);
    ctx.allreduce_sum(v);
  });
  const double expected = net.allreduce(1000 * sizeof(double), 4);
  for (const auto& r : reports) {
    EXPECT_NEAR(r.comm_seconds, expected, 1e-12);
  }
}

TEST(Cluster, SingleRankPaysNoCommCost) {
  auto cluster = SimCluster(1, la::DeviceModel{"t", 1.0}, ethernet_1g());
  const auto reports = cluster.run([&](RankCtx& ctx) {
    std::vector<double> v(100, 1.0);
    ctx.allreduce_sum(v);
    ctx.broadcast(v, 0);
  });
  EXPECT_DOUBLE_EQ(reports[0].comm_seconds, 0.0);
}

TEST(Cluster, ComputeTimeComesFromFlops) {
  SimCluster cluster(2, la::DeviceModel{"t", 1.0}, ideal_network());
  const auto reports = cluster.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) nadmm::flops::add(3'000'000'000ULL);
    ctx.barrier();
  });
  EXPECT_DOUBLE_EQ(reports[0].compute_seconds, 3.0);
  EXPECT_DOUBLE_EQ(reports[1].compute_seconds, 0.0);
}

// ------------------------------------------------------- failures

TEST(Cluster, RankExceptionPropagatesAndAbortsPeers) {
  auto cluster = make_cluster(4);
  EXPECT_THROW(
      cluster.run([&](RankCtx& ctx) {
        if (ctx.rank() == 2) throw RuntimeError("rank 2 died");
        // Peers block in a collective; the abort must wake them.
        std::vector<double> v(10, 1.0);
        ctx.allreduce_sum(v);
        ctx.allreduce_sum(v);
      }),
      RuntimeError);
}

TEST(Cluster, FirstErrorWins) {
  auto cluster = make_cluster(2);
  try {
    cluster.run([&](RankCtx& ctx) {
      if (ctx.rank() == 0) throw RuntimeError("original failure");
      std::vector<double> v(4, 0.0);
      ctx.allreduce_sum(v);  // will observe ClusterAborted
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    // Either the original error or ClusterAborted may be recorded first,
    // but the run must throw and the message must be one of the two.
    const std::string msg = e.what();
    EXPECT_TRUE(msg.find("original failure") != std::string::npos ||
                msg.find("aborted") != std::string::npos)
        << msg;
  }
}

TEST(Cluster, ReusableAfterFailedRun) {
  auto cluster = make_cluster(3);
  EXPECT_THROW(cluster.run([&](RankCtx& ctx) {
                 if (ctx.rank() == 1) throw RuntimeError("boom");
                 ctx.barrier();
               }),
               RuntimeError);
  // A fresh run on the same cluster must succeed.
  std::atomic<int> visited{0};
  cluster.run([&](RankCtx& ctx) {
    ctx.barrier();
    ++visited;
  });
  EXPECT_EQ(visited.load(), 3);
}

TEST(Cluster, InvalidSizeThrows) {
  EXPECT_THROW(make_cluster(0), InvalidArgument);
}

TEST(Cluster, GatherMismatchedLengthsThrow) {
  auto cluster = make_cluster(2);
  EXPECT_THROW(cluster.run([&](RankCtx& ctx) {
                 std::vector<double> mine(ctx.rank() == 0 ? 2 : 3, 1.0);
                 std::vector<double> all;
                 ctx.gather(mine, all, 0);
               }),
               std::exception);
}

}  // namespace
}  // namespace nadmm::comm
