// Tests for src/baselines: GIANT, Synchronous SGD, InexactDANE, AIDE and
// DiSCO all decrease the objective and (where the algorithm promises it)
// converge to the single-node reference optimum.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/dane.hpp"
#include "baselines/disco.hpp"
#include "baselines/giant.hpp"
#include "baselines/sync_sgd.hpp"
#include "comm/cluster.hpp"
#include "core/reference.hpp"
#include "data/generators.hpp"
#include "support/check.hpp"

namespace nadmm::baselines {
namespace {

/// Contiguous zero-copy shards sized to the cluster — the explicit form
/// of what the deprecated (train, test) solver overloads did implicitly.
nadmm::data::ShardedDataset shards(const nadmm::comm::SimCluster& cluster,
                                   const nadmm::data::Dataset& train,
                                   const nadmm::data::Dataset* test) {
  nadmm::data::ShardPlan plan;
  plan.parts = cluster.size();
  return nadmm::data::make_sharded(train, test, plan);
}

comm::SimCluster test_cluster(int n) {
  return comm::SimCluster(n, la::DeviceModel{"test", 100.0},
                          comm::infiniband_100g());
}

data::TrainTest easy_problem(std::uint64_t seed) {
  return data::make_blobs(600, 150, 10, 4, 3.0, 1.0, seed);
}

// ------------------------------------------------------------ GIANT

class GiantRanks : public testing::TestWithParam<int> {};

TEST_P(GiantRanks, ConvergesToReferenceOptimum) {
  auto tt = easy_problem(31);
  const double lambda = 1e-3;
  const auto ref = core::solve_reference(tt.train, lambda);
  auto cluster = test_cluster(GetParam());
  GiantOptions opts;
  opts.max_iterations = 60;
  opts.lambda = lambda;
  const auto r = giant(cluster, shards(cluster, tt.train, &tt.test), opts);
  const double theta =
      (r.final_objective - ref.objective) / std::abs(ref.objective);
  EXPECT_LT(theta, 0.05) << "ranks=" << GetParam();
  EXPECT_EQ(r.solver, "giant");
}

INSTANTIATE_TEST_SUITE_P(Ranks, GiantRanks, testing::Values(1, 2, 4, 8));

TEST(Giant, ObjectiveDecreasesMonotonically) {
  auto tt = easy_problem(32);
  auto cluster = test_cluster(4);
  GiantOptions opts;
  opts.max_iterations = 25;
  opts.lambda = 1e-3;
  const auto r = giant(cluster, shards(cluster, tt.train, nullptr), opts);
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_LE(r.trace[i].objective, r.trace[i - 1].objective + 1e-9);
  }
}

TEST(Giant, TraceAndAccuracyPopulated) {
  auto tt = easy_problem(33);
  auto cluster = test_cluster(4);
  GiantOptions opts;
  opts.max_iterations = 10;
  const auto r = giant(cluster, shards(cluster, tt.train, &tt.test), opts);
  ASSERT_EQ(r.trace.size(), 10u);
  EXPECT_GT(r.final_test_accuracy, 0.4);
  EXPECT_GT(r.trace.back().comm_sim_seconds, 0.0);
  EXPECT_GT(r.avg_epoch_sim_seconds, 0.0);
}

TEST(Giant, ValidatesOptions) {
  auto tt = easy_problem(34);
  auto cluster = test_cluster(2);
  GiantOptions bad;
  bad.max_iterations = 0;
  EXPECT_THROW(giant(cluster, shards(cluster, tt.train, nullptr), bad), InvalidArgument);
}

// ------------------------------------------------------------ SGD

TEST(SyncSgd, DecreasesObjectiveAndImprovesAccuracy) {
  auto tt = easy_problem(35);
  auto cluster = test_cluster(4);
  SyncSgdOptions opts;
  opts.epochs = 30;
  opts.batch_size = 32;
  opts.step_size = 0.5;
  opts.lambda = 1e-3;
  const auto r = sync_sgd(cluster, shards(cluster, tt.train, &tt.test), opts);
  ASSERT_EQ(r.trace.size(), 30u);
  EXPECT_LT(r.final_objective, r.trace.front().objective);
  EXPECT_GT(r.final_test_accuracy, 0.5);
  EXPECT_EQ(r.solver, "sync-sgd");
}

TEST(SyncSgd, ManyCommRoundsPerEpoch) {
  // SGD must pay ~steps-per-epoch allreduces; with 600 samples, 4 ranks
  // and batch 32, that is ~4–5 rounds per epoch, so its per-epoch comm
  // time exceeds a single allreduce by that factor.
  auto tt = easy_problem(36);
  auto cluster = test_cluster(4);
  SyncSgdOptions opts;
  opts.epochs = 5;
  opts.batch_size = 32;
  opts.step_size = 0.1;
  const auto r = sync_sgd(cluster, shards(cluster, tt.train, nullptr), opts);
  const double per_epoch_comm =
      r.trace.back().comm_sim_seconds / static_cast<double>(r.iterations);
  const double one_round = cluster.network().allreduce(
      (tt.train.num_features() * 3 + 1) * sizeof(double), 4);
  EXPECT_GT(per_epoch_comm, 3.0 * one_round);
}

TEST(SyncSgd, ValidatesOptions) {
  auto tt = easy_problem(37);
  auto cluster = test_cluster(2);
  SyncSgdOptions bad;
  bad.step_size = 0.0;
  EXPECT_THROW(sync_sgd(cluster, shards(cluster, tt.train, nullptr), bad), InvalidArgument);
}

// ------------------------------------------------------------ DANE / AIDE

TEST(InexactDane, DecreasesObjective) {
  auto tt = easy_problem(38);
  auto cluster = test_cluster(4);
  DaneOptions opts;
  opts.max_iterations = 4;
  opts.lambda = 1e-3;
  opts.svrg.max_outer = 3;
  opts.svrg.step_size = 2e-4;
  const auto r = inexact_dane(cluster, shards(cluster, tt.train, &tt.test), opts);
  ASSERT_EQ(r.trace.size(), 4u);
  EXPECT_LT(r.final_objective, r.trace.front().objective * 1.2);
  EXPECT_LT(r.final_objective,
            600.0 * std::log(4.0));  // below the x = 0 value
  EXPECT_EQ(r.solver, "inexact-dane");
}

TEST(InexactDane, EpochsAreFarSlowerThanGiantEpochs) {
  // The Figure-1 phenomenon: SVRG inner loops make a DANE epoch orders of
  // magnitude more expensive in simulated compute time.
  auto tt = easy_problem(39);
  auto c1 = test_cluster(4);
  auto c2 = test_cluster(4);
  GiantOptions gopts;
  gopts.max_iterations = 5;
  DaneOptions dopts;
  dopts.max_iterations = 2;
  // Half the paper's inner budget (they use 100 SVRG outer iterations);
  // already enough to show the order-of-magnitude epoch gap.
  dopts.svrg.max_outer = 50;
  const auto g = giant(c1, shards(c1, tt.train, nullptr), gopts);
  const auto d = inexact_dane(c2, shards(c2, tt.train, nullptr), dopts);
  EXPECT_GT(d.avg_epoch_sim_seconds, 10.0 * g.avg_epoch_sim_seconds);
}

TEST(Aide, RunsAndDecreasesObjective) {
  auto tt = easy_problem(40);
  auto cluster = test_cluster(4);
  DaneOptions opts;
  opts.max_iterations = 4;
  opts.accelerate = true;
  opts.tau = 1.0;
  opts.lambda = 1e-3;
  opts.svrg.max_outer = 3;
  opts.svrg.step_size = 2e-4;
  const auto r = inexact_dane(cluster, shards(cluster, tt.train, nullptr), opts);
  EXPECT_EQ(r.solver, "aide");
  EXPECT_LT(r.final_objective, 600.0 * std::log(4.0));
}

TEST(Dane, ValidatesOptions) {
  auto tt = easy_problem(41);
  auto cluster = test_cluster(2);
  DaneOptions bad;
  bad.max_iterations = 0;
  EXPECT_THROW(inexact_dane(cluster, shards(cluster, tt.train, nullptr), bad), InvalidArgument);
  bad = DaneOptions{};
  bad.accelerate = true;
  bad.tau = 0.0;
  EXPECT_THROW(inexact_dane(cluster, shards(cluster, tt.train, nullptr), bad), InvalidArgument);
}

// ------------------------------------------------------------ DiSCO

TEST(Disco, ConvergesToReferenceOptimum) {
  auto tt = easy_problem(42);
  const double lambda = 1e-3;
  const auto ref = core::solve_reference(tt.train, lambda);
  auto cluster = test_cluster(4);
  DiscoOptions opts;
  opts.max_iterations = 60;
  opts.lambda = lambda;
  opts.cg.max_iterations = 20;
  const auto r = disco(cluster, shards(cluster, tt.train, nullptr), opts);
  const double theta =
      (r.final_objective - ref.objective) / std::abs(ref.objective);
  EXPECT_LT(theta, 0.05);
  EXPECT_EQ(r.solver, "disco");
}

TEST(Disco, PaysOneAllreducePerCgIteration) {
  // DiSCO's distributed CG means its per-epoch communication exceeds
  // GIANT's 3 rounds once CG budget > 3.
  auto tt = easy_problem(43);
  auto c1 = test_cluster(8);
  auto c2 = test_cluster(8);
  DiscoOptions dopts;
  dopts.max_iterations = 5;
  dopts.cg.max_iterations = 10;
  dopts.cg.rel_tol = 1e-12;  // force the full CG budget
  GiantOptions gopts;
  gopts.max_iterations = 5;
  gopts.cg.max_iterations = 10;
  const auto d = disco(c1, shards(c1, tt.train, nullptr), dopts);
  const auto g = giant(c2, shards(c2, tt.train, nullptr), gopts);
  const double d_comm = d.trace.back().comm_sim_seconds / d.iterations;
  const double g_comm = g.trace.back().comm_sim_seconds / g.iterations;
  EXPECT_GT(d_comm, 1.5 * g_comm);
}

}  // namespace
}  // namespace nadmm::baselines
