// Kernel-engine tests: parity of every rewired kernel against the seed
// reference implementations (kernels::reference) and an independent naive
// oracle, across degenerate shapes and the alpha/beta grid; dense-vs-CSR
// dispatch parity; fixed-thread-count bit-determinism of the two-phase
// reductions; the fused softmax forward; and the bytes-moved accounting
// feeding the device roofline.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <cmath>
#include <cstring>
#include <vector>

#include "data/dataset.hpp"
#include "la/dense_matrix.hpp"
#include "la/flops.hpp"
#include "la/kernels.hpp"
#include "la/sparse_matrix.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace nadmm::la {
namespace {

std::vector<double> random_vec(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (double& e : v) e = rng.normal();
  return v;
}

DenseMatrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  DenseMatrix m(r, c);
  for (double& e : m.data()) e = rng.normal();
  return m;
}

CsrMatrix random_csr(std::size_t r, std::size_t c, double density, Rng& rng) {
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      if (rng.bernoulli(density)) t.push_back({i, j, rng.normal()});
    }
  }
  return CsrMatrix(r, c, std::move(t));
}

void expect_matrices_near(const DenseMatrix& got, const DenseMatrix& want,
                          double tol, const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::size_t i = 0; i < got.rows(); ++i) {
    for (std::size_t j = 0; j < got.cols(); ++j) {
      const double scale = std::abs(want.at(i, j)) + 1.0;
      EXPECT_NEAR(got.at(i, j), want.at(i, j), tol * scale)
          << what << " at (" << i << "," << j << ")";
    }
  }
}

/// Temporarily pin the OpenMP thread count (no-op without OpenMP).
class ThreadGuard {
 public:
  explicit ThreadGuard(int threads) {
#ifdef _OPENMP
    prev_ = omp_get_max_threads();
    omp_set_num_threads(threads);
#else
    static_cast<void>(threads);
#endif
  }
  ~ThreadGuard() {
#ifdef _OPENMP
    omp_set_num_threads(prev_);
#endif
  }

 private:
  int prev_ = 1;
};

constexpr double kAlphas[] = {0.0, 1.0, 0.75};
constexpr double kBetas[] = {0.0, 1.0, -0.5};

// ---------------------------------------------------------- dense parity

TEST(KernelEngine, GemmNnMatchesReferenceAcrossShapesAndAlphaBeta) {
  Rng rng(11);
  // Row tails (m mod 4), strip tails (n mod 8), 1×N / N×1, tall and wide.
  const std::size_t shapes[][3] = {{1, 1, 1},   {5, 7, 3},   {64, 129, 9},
                                   {1, 300, 1}, {257, 2, 8}, {4, 8, 8},
                                   {6, 5, 16},  {7, 3, 17},  {3, 200, 23},
                                   {100, 1, 9}};
  for (const auto& sh : shapes) {
    const std::size_t m = sh[0], k = sh[1], n = sh[2];
    const auto a = random_matrix(m, k, rng);
    const auto b = random_matrix(k, n, rng);
    const auto c0 = random_matrix(m, n, rng);
    for (double alpha : kAlphas) {
      for (double beta : kBetas) {
        DenseMatrix c = c0, c_ref = c0;
        gemm_nn(alpha, a, b, beta, c);
        kernels::reference::gemm_nn(alpha, a, b, beta, c_ref);
        expect_matrices_near(c, c_ref, 1e-12, "gemm_nn");
      }
    }
  }
}

TEST(KernelEngine, GemmTnMatchesReferenceAcrossShapesAndAlphaBeta) {
  Rng rng(12);
  const std::size_t shapes[][3] = {{1, 1, 1},  {6, 4, 3},   {200, 33, 9},
                                   {1, 5, 2},  {513, 7, 1}, {3, 1, 19},
                                   {50, 64, 8}};
  for (const auto& sh : shapes) {
    const std::size_t k = sh[0], m = sh[1], n = sh[2];
    const auto a = random_matrix(k, m, rng);  // used transposed
    const auto b = random_matrix(k, n, rng);
    const auto c0 = random_matrix(m, n, rng);
    for (double alpha : kAlphas) {
      for (double beta : kBetas) {
        DenseMatrix c = c0, c_ref = c0;
        gemm_tn(alpha, a, b, beta, c);
        kernels::reference::gemm_tn(alpha, a, b, beta, c_ref);
        expect_matrices_near(c, c_ref, 1e-12, "gemm_tn");
      }
    }
  }
}

TEST(KernelEngine, GemvTMatchesReferenceAcrossShapesAndAlphaBeta) {
  Rng rng(13);
  const std::size_t shapes[][2] = {{1, 1}, {7, 5}, {300, 17}, {2, 257}, {129, 3}};
  for (const auto& sh : shapes) {
    const std::size_t k = sh[0], m = sh[1];
    const auto a = random_matrix(k, m, rng);
    const auto x = random_vec(k, rng);
    const auto y0 = random_vec(m, rng);
    for (double alpha : kAlphas) {
      for (double beta : kBetas) {
        auto y = y0, y_ref = y0;
        gemv_t(alpha, a, x, beta, y);
        kernels::reference::gemv_t(alpha, a, x, beta, y_ref);
        for (std::size_t j = 0; j < m; ++j) {
          EXPECT_NEAR(y[j], y_ref[j], 1e-12 * (std::abs(y_ref[j]) + 1.0));
        }
      }
    }
  }
}

TEST(KernelEngine, DegenerateShapesMatchBetaScaling) {
  Rng rng(14);
  // k = 0: C must become beta·C without reading any A/B data.
  const DenseMatrix a0(0, 4), b0(0, 3);
  const auto c0 = random_matrix(4, 3, rng);
  for (double beta : kBetas) {
    DenseMatrix c = c0;
    gemm_tn(0.5, a0, b0, beta, c);
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_DOUBLE_EQ(c.at(i, j), beta * c0.at(i, j));
      }
    }
  }
  // m = 0 / n = 0 outputs: must not touch anything (empty buffers).
  DenseMatrix c_empty(0, 5);
  gemm_nn(1.0, DenseMatrix(0, 7), DenseMatrix(7, 5), 0.0, c_empty);
  DenseMatrix c_nocols(5, 0);
  gemm_nn(1.0, DenseMatrix(5, 7), DenseMatrix(7, 0), 1.0, c_nocols);
  // Empty CSR: C = beta·C.
  const CsrMatrix empty(6, 4, {});
  const auto cs0 = random_matrix(4, 2, rng);
  DenseMatrix cs = cs0;
  spmm_tn(2.0, empty, DenseMatrix(6, 2), -0.5, cs);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ(cs.at(i, j), -0.5 * cs0.at(i, j));
    }
  }
  // k = 0 gemv_t.
  std::vector<double> y{1.0, 2.0};
  gemv_t(1.0, DenseMatrix(0, 2), std::vector<double>{}, 0.0, y);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
}

// ---------------------------------------------------------- sparse parity

TEST(KernelEngine, SpmmTnMatchesReferenceIncludingSkewedRows) {
  Rng rng(15);
  std::vector<CsrMatrix> mats;
  mats.push_back(random_csr(50, 20, 0.15, rng));
  mats.push_back(random_csr(100, 40, 0.02, rng));  // many empty rows
  // Wide output (cols ≫ nnz/team): exercises the transpose/gather path,
  // including trailing empty columns that only see the beta scaling.
  mats.push_back(random_csr(60, 800, 0.01, rng));
  {
    // Heavily skewed: one dense row dominates the nonzero count, which
    // exercises the nnz-balanced row partition.
    std::vector<Triplet> t;
    for (std::size_t j = 0; j < 30; ++j) t.push_back({0, j, rng.normal()});
    for (std::size_t i = 10; i < 40; ++i) t.push_back({i, i % 30, rng.normal()});
    mats.push_back(CsrMatrix(40, 30, std::move(t)));
  }
  for (const auto& a : mats) {
    const auto b = random_matrix(a.rows(), 5, rng);
    const auto c0 = random_matrix(a.cols(), 5, rng);
    for (double alpha : kAlphas) {
      for (double beta : kBetas) {
        DenseMatrix c = c0, c_ref = c0;
        spmm_tn(alpha, a, b, beta, c);
        kernels::reference::spmm_tn(alpha, a, b, beta, c_ref);
        expect_matrices_near(c, c_ref, 1e-12, "spmm_tn");
      }
    }
  }
}

TEST(KernelEngine, DenseAndCsrDispatchAgree) {
  Rng rng(16);
  const auto sp = random_csr(60, 25, 0.2, rng);
  const auto dn = sp.to_dense();
  std::vector<std::int32_t> labels(60);
  for (auto& y : labels) y = static_cast<std::int32_t>(rng.uniform_index(3));
  const auto ds_dense = data::Dataset::dense(dn, labels, 3);
  const auto ds_sparse = data::Dataset::sparse(sp, labels, 3);

  const auto x = random_matrix(25, 2, rng);
  DenseMatrix s_dense(60, 2), s_sparse(60, 2);
  ds_dense.scores(x, s_dense);
  ds_sparse.scores(x, s_sparse);
  expect_matrices_near(s_sparse, s_dense, 1e-11, "scores dispatch");

  const auto w = random_matrix(60, 2, rng);
  DenseMatrix g_dense(25, 2), g_sparse(25, 2);
  ds_dense.accumulate_gradient(1.0, w, 0.0, g_dense);
  ds_sparse.accumulate_gradient(1.0, w, 0.0, g_sparse);
  expect_matrices_near(g_sparse, g_dense, 1e-11, "gradient dispatch");
}

// ---------------------------------------------------------- determinism

TEST(KernelEngine, TwoPhaseReductionsAreBitDeterministicAtFixedThreads) {
  Rng rng(17);
  // Large enough to clear the parallel threshold (2·k·m·n ≥ 2^17).
  const auto a = random_matrix(2000, 64, rng);
  const auto b = random_matrix(2000, 9, rng);
  const auto sp = random_csr(500, 300, 0.05, rng);
  const auto bs = random_matrix(500, 9, rng);
  const auto sp_wide = random_csr(300, 2000, 0.01, rng);  // transpose path
  const auto bw = random_matrix(300, 9, rng);
  const auto x = random_vec(2000, rng);

  for (int threads : {1, 3, 4}) {
    ThreadGuard guard(threads);
    DenseMatrix c1(64, 9), c2(64, 9);
    gemm_tn(1.0, a, b, 0.0, c1);
    gemm_tn(1.0, a, b, 0.0, c2);
    ASSERT_EQ(0, std::memcmp(c1.data().data(), c2.data().data(),
                             c1.size() * sizeof(double)))
        << "gemm_tn not deterministic at " << threads << " threads";

    DenseMatrix s1(300, 9), s2(300, 9);
    spmm_tn(1.0, sp, bs, 0.0, s1);
    spmm_tn(1.0, sp, bs, 0.0, s2);
    ASSERT_EQ(0, std::memcmp(s1.data().data(), s2.data().data(),
                             s1.size() * sizeof(double)))
        << "spmm_tn not deterministic at " << threads << " threads";

    DenseMatrix w1(2000, 9), w2(2000, 9);
    spmm_tn(1.0, sp_wide, bw, 0.0, w1);
    spmm_tn(1.0, sp_wide, bw, 0.0, w2);
    ASSERT_EQ(0, std::memcmp(w1.data().data(), w2.data().data(),
                             w1.size() * sizeof(double)))
        << "spmm_tn (transpose path) not deterministic at " << threads
        << " threads";

    std::vector<double> y1(64, 0.0), y2(64, 0.0);
    gemv_t(1.0, a, x, 0.0, y1);
    gemv_t(1.0, a, x, 0.0, y2);
    ASSERT_EQ(0, std::memcmp(y1.data(), y2.data(), y1.size() * sizeof(double)))
        << "gemv_t not deterministic at " << threads << " threads";
  }
}

// ---------------------------------------------------------- softmax

/// Independent high-precision oracle for one softmax row.
void softmax_row_oracle(std::span<const double> s, std::vector<double>& p,
                        double& lse) {
  long double m = 0.0L;
  for (double v : s) m = std::max(m, static_cast<long double>(v));
  long double alpha = std::exp(-m);
  p.assign(s.size(), 0.0);
  for (std::size_t j = 0; j < s.size(); ++j) {
    const long double e = std::exp(static_cast<long double>(s[j]) - m);
    p[j] = static_cast<double>(e);
    alpha += e;
  }
  for (std::size_t j = 0; j < s.size(); ++j) {
    p[j] = static_cast<double>(p[j] / static_cast<double>(alpha));
  }
  lse = static_cast<double>(m + std::log(alpha));
}

TEST(KernelEngine, FusedSoftmaxForwardMatchesOracleAndReference) {
  const std::size_t c = 9;
  // Rows engineered to stress the online max: ascending (max updates every
  // step), descending (one update), all-negative (implicit class wins),
  // huge magnitudes (stabilization), plus random rows.
  std::vector<std::vector<double>> rows;
  rows.push_back({1, 2, 3, 4, 5, 6, 7, 8, 9});
  rows.push_back({9, 8, 7, 6, 5, 4, 3, 2, 1});
  rows.push_back({-5, -4, -3, -2, -1, -9, -8, -7, -6});
  rows.push_back({400, -400, 0, 1, -1, 200, -200, 0.5, -0.5});
  Rng rng(18);
  for (int i = 0; i < 40; ++i) {
    std::vector<double> r(c);
    for (double& v : r) v = 10.0 * rng.normal();
    rows.push_back(std::move(r));
  }

  const std::size_t n = rows.size();
  DenseMatrix scores(n, c);
  std::vector<std::int32_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::copy(rows[i].begin(), rows[i].end(), scores.row(i).begin());
    // Cycle through all labels including the implicit class c.
    labels[i] = static_cast<std::int32_t>(i % (c + 1));
  }

  DenseMatrix probs(n, c), probs_ref(n, c);
  std::vector<double> lse(n), lse_ref(n);
  const double loss = kernels::softmax_forward(scores, labels, probs, lse);
  const double loss_ref =
      kernels::reference::softmax_forward(scores, labels, probs_ref, lse_ref);

  double loss_oracle = 0.0;
  std::vector<double> p_oracle;
  for (std::size_t i = 0; i < n; ++i) {
    double lse_o = 0.0;
    softmax_row_oracle(scores.row(i), p_oracle, lse_o);
    EXPECT_NEAR(lse[i], lse_o, 1e-11 * (std::abs(lse_o) + 1.0)) << "row " << i;
    for (std::size_t j = 0; j < c; ++j) {
      EXPECT_NEAR(probs.at(i, j), p_oracle[j], 1e-12) << i << "," << j;
    }
    const auto y = static_cast<std::size_t>(labels[i]);
    loss_oracle += lse_o - (y < c ? scores.at(i, y) : 0.0);
  }
  EXPECT_NEAR(loss, loss_oracle, 1e-9 * (std::abs(loss_oracle) + 1.0));
  EXPECT_NEAR(loss, loss_ref, 1e-9 * (std::abs(loss_ref) + 1.0));
  expect_matrices_near(probs, probs_ref, 1e-11, "softmax probs");
}

TEST(KernelEngine, FusedSoftmaxForwardIsDeterministicAtFixedThreads) {
  Rng rng(19);
  const std::size_t n = 4000, c = 9;  // above the parallel-row threshold
  const auto scores = random_matrix(n, c, rng);
  std::vector<std::int32_t> labels(n);
  for (auto& y : labels) y = static_cast<std::int32_t>(rng.uniform_index(c + 1));
  for (int threads : {1, 4}) {
    ThreadGuard guard(threads);
    DenseMatrix p1(n, c), p2(n, c);
    std::vector<double> l1(n), l2(n);
    const double loss1 = kernels::softmax_forward(scores, labels, p1, l1);
    const double loss2 = kernels::softmax_forward(scores, labels, p2, l2);
    EXPECT_EQ(std::memcmp(&loss1, &loss2, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(p1.data().data(), p2.data().data(),
                          p1.size() * sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(l1.data(), l2.data(), n * sizeof(double)), 0);
  }
}

// ---------------------------------------------------------- bytes/roofline

TEST(KernelEngine, KernelsCreditBytesMoved) {
  flops::reset();
  DenseMatrix a(4, 5), b(5, 6), c(4, 6);
  gemm_nn(1.0, a, b, 0.0, c);
  // Compulsory traffic: A + B read once, C written once (beta = 0).
  EXPECT_EQ(flops::read_bytes(), 8u * (4 * 5 + 5 * 6 + 4 * 6));
  flops::reset();
  gemm_nn(1.0, a, b, 1.0, c);  // beta != 0: C is read and written
  EXPECT_EQ(flops::read_bytes(), 8u * (4 * 5 + 5 * 6 + 2 * 4 * 6));
  flops::reset();
  const CsrMatrix sp(2, 3, {{0, 1, 1.0}, {1, 2, 2.0}});
  DenseMatrix bs(2, 4), cs(3, 4);
  spmm_tn(1.0, sp, bs, 0.0, cs);
  EXPECT_EQ(flops::read_bytes(), 16u * 2 + 8u * 3 + 8u * (2 * 4 + 3 * 4));
  EXPECT_GT(flops::read(), 0u);
}

TEST(KernelEngine, FlopsScopeTracksBytes) {
  flops::reset();
  flops::Scope scope;
  flops::add_bytes(123);
  flops::add(7);
  EXPECT_EQ(scope.elapsed_bytes(), 123u);
  EXPECT_EQ(scope.elapsed(), 7u);
  flops::reset();
  EXPECT_EQ(flops::read_bytes(), 0u);
}

// --------------------------------------------------- row-range shard views
//
// The shard-native data plane runs every rank on a zero-copy row-range
// view of the parent matrix. These tests pin the contract the solvers
// rely on: a view's products are BIT-identical to running on a copied
// shard, at every thread count the engine supports.

TEST(ShardViews, DenseViewProductsMatchCopiedShardBitwise) {
  Rng rng(41);
  const std::size_t k = 300, m = 17, n = 5;  // samples × features × classes
  const auto full = random_matrix(k, m, rng);
  const auto b = random_matrix(k, n, rng);
  const auto bx = random_matrix(m, n, rng);
  const auto x = random_vec(k, rng);
  // An interior shard with awkward boundaries.
  const std::size_t lo = 37, hi = 221;
  DenseMatrix copy(hi - lo, m);
  for (std::size_t r = lo; r < hi; ++r) {
    const auto row = full.row(r);
    std::copy(row.begin(), row.end(), copy.row(r - lo).begin());
  }
  DenseMatrix b_sub(hi - lo, n);
  for (std::size_t r = lo; r < hi; ++r) {
    const auto row = b.row(r);
    std::copy(row.begin(), row.end(), b_sub.row(r - lo).begin());
  }
  const std::vector<double> x_sub(x.begin() + lo, x.begin() + hi);

  for (const int threads : {1, 2, 3, 4, 8}) {
    ThreadGuard guard(threads);
    // gemm_tn: view of A against the same panel as the copy.
    DenseMatrix g_view(m, n), g_copy(m, n);
    kernels::gemm_tn(1.0, full.view(lo, hi), b_sub, 0.0, g_view);
    kernels::gemm_tn(1.0, copy, b_sub, 0.0, g_copy);
    for (std::size_t e = 0; e < g_view.size(); ++e) {
      ASSERT_EQ(g_view.data()[e], g_copy.data()[e]) << "gemm_tn t=" << threads;
    }
    // gemm_nn (scores shape).
    DenseMatrix s_view(hi - lo, n), s_copy(hi - lo, n);
    kernels::gemm_nn(1.0, full.view(lo, hi), bx, 0.0, s_view);
    kernels::gemm_nn(1.0, copy, bx, 0.0, s_copy);
    for (std::size_t e = 0; e < s_view.size(); ++e) {
      ASSERT_EQ(s_view.data()[e], s_copy.data()[e]) << "gemm_nn t=" << threads;
    }
    // gemv_t.
    std::vector<double> y_view(m, 0.0), y_copy(m, 0.0);
    kernels::gemv_t(1.0, full.view(lo, hi), x_sub, 0.0, y_view);
    kernels::gemv_t(1.0, copy, x_sub, 0.0, y_copy);
    for (std::size_t j = 0; j < m; ++j) {
      ASSERT_EQ(y_view[j], y_copy[j]) << "gemv_t t=" << threads;
    }
  }
}

TEST(ShardViews, CsrViewProductsMatchCopiedShardBitwise) {
  Rng rng(43);
  // Narrow regime (two-phase reduction) and wide regime (CSC gather).
  const struct {
    std::size_t rows, cols, n;
    double density;
  } cases[] = {{240, 12, 4, 0.3}, {120, 600, 9, 0.02}};
  for (const auto& tc : cases) {
    const auto full = random_csr(tc.rows, tc.cols, tc.density, rng);
    const auto b = random_matrix(tc.rows, tc.n, rng);
    const std::size_t lo = tc.rows / 5, hi = (4 * tc.rows) / 5 + 1;
    const auto copy = full.row_slice(lo, hi);
    DenseMatrix b_sub(hi - lo, tc.n);
    for (std::size_t r = lo; r < hi; ++r) {
      const auto row = b.row(r);
      std::copy(row.begin(), row.end(), b_sub.row(r - lo).begin());
    }
    const auto xb = random_matrix(tc.cols, tc.n, rng);
    for (const int threads : {1, 2, 4, 8}) {
      ThreadGuard guard(threads);
      DenseMatrix g_view(tc.cols, tc.n), g_copy(tc.cols, tc.n);
      kernels::spmm_tn(1.0, full.view(lo, hi), b_sub, 0.0, g_view);
      kernels::spmm_tn(1.0, copy, b_sub, 0.0, g_copy);
      for (std::size_t e = 0; e < g_view.size(); ++e) {
        ASSERT_EQ(g_view.data()[e], g_copy.data()[e])
            << "spmm_tn rows=" << tc.rows << " t=" << threads;
      }
      DenseMatrix s_view(hi - lo, tc.n), s_copy(hi - lo, tc.n);
      spmm_nn(1.0, full.view(lo, hi), xb, 0.0, s_view);
      spmm_nn(1.0, copy, xb, 0.0, s_copy);
      for (std::size_t e = 0; e < s_view.size(); ++e) {
        ASSERT_EQ(s_view.data()[e], s_copy.data()[e])
            << "spmm_nn rows=" << tc.rows << " t=" << threads;
      }
    }
  }
}

TEST(ShardViews, CsrWideGatherIsThreadCountInvariantOnViews) {
  Rng rng(47);
  // Wide output forces the CSC gather; a shard view must give the same
  // bits at EVERY thread count (the full-matrix guarantee extends to
  // views via the per-column subrange restriction).
  const auto full = random_csr(90, 800, 0.015, rng);
  const auto b = random_matrix(40, 7, rng);
  DenseMatrix base(800, 7);
  {
    ThreadGuard guard(1);
    kernels::spmm_tn(1.0, full.view(25, 65), b, 0.0, base);
  }
  for (const int threads : {2, 3, 8}) {
    ThreadGuard guard(threads);
    DenseMatrix c(800, 7);
    kernels::spmm_tn(1.0, full.view(25, 65), b, 0.0, c);
    for (std::size_t e = 0; e < c.size(); ++e) {
      ASSERT_EQ(c.data()[e], base.data()[e]) << "t=" << threads;
    }
  }
}

TEST(ShardViews, DefaultConstructedMatricesStayWellDefinedNoOps) {
  // A default CsrMatrix carries the canonical one-element row_ptr {0},
  // so its implicit CsrView (and every product on it) is a well-defined
  // no-op — pinned here because the view conversion now sits on every
  // kernel call path.
  const CsrMatrix empty;
  const CsrView view(empty);
  EXPECT_EQ(view.rows(), 0u);
  EXPECT_EQ(view.nnz(), 0u);
  EXPECT_TRUE(view.covers_parent());
  std::vector<double> x, y;
  EXPECT_NO_THROW(spmv(1.0, empty, x, 0.0, y));
  DenseMatrix b(0, 3), c(0, 3);
  EXPECT_NO_THROW(spmm_nn(1.0, empty, b, 0.0, c));
  DenseMatrix ct(0, 3);
  EXPECT_NO_THROW(kernels::spmm_tn(1.0, empty, b, 0.0, ct));
  const CsrView unbound;  // no parent at all
  EXPECT_EQ(unbound.rows(), 0u);
  EXPECT_EQ(unbound.nnz(), 0u);
  EXPECT_FALSE(unbound.covers_parent());
}

TEST(ShardViews, EmptyAndFullRangeViewsBehave) {
  Rng rng(53);
  const auto full = random_csr(30, 20, 0.2, rng);
  EXPECT_EQ(full.view(0, 30).nnz(), full.nnz());
  EXPECT_TRUE(full.view(0, 30).covers_parent());
  EXPECT_EQ(full.view(10, 10).nnz(), 0u);
  EXPECT_EQ(full.view(10, 10).rows(), 0u);
  const auto dense = random_matrix(8, 3, rng);
  EXPECT_EQ(dense.view(8, 8).rows(), 0u);
  EXPECT_EQ(dense.view(0, 8).data().size(), dense.size());
  EXPECT_THROW(static_cast<void>(dense.view(3, 2)), InvalidArgument);
  EXPECT_THROW(static_cast<void>(full.view(0, 31)), InvalidArgument);
}

// ------------------------------------------------------ ISA dispatch parity
//
// The engine's SIMD contract (la/simd.hpp): lanes only span independent
// output elements and nothing fuses a multiply-add, so whatever backend
// the build selected — avx512, avx2, stdsimd or scalar — must be
// BIT-identical to the forced-scalar instantiation kernels::scalar at
// every thread count. CI compiles these same tests with -mavx2 and with
// -DNADMM_FORCE_SCALAR, so the ladder's rungs are each exercised
// somewhere even when the default runner has no wide vectors.

TEST(IsaDispatch, ActiveIsaNameIsOnTheLadder) {
  const std::string isa = kernels::active_isa();
  EXPECT_TRUE(isa == "avx512" || isa == "avx2" || isa == "stdsimd" ||
              isa == "scalar")
      << isa;
#ifdef NADMM_FORCE_SCALAR
  EXPECT_EQ(isa, "scalar");
#endif
}

TEST(IsaDispatch, GemmNnActiveBackendMatchesScalarBitwise) {
  Rng rng(61);
  const std::size_t shapes[][3] = {{1, 1, 1},   {5, 7, 3},   {64, 129, 9},
                                   {1, 300, 1}, {257, 2, 8}, {4, 8, 8},
                                   {6, 5, 16},  {7, 3, 17},  {3, 200, 23},
                                   {100, 1, 9}};
  for (const int threads : {1, 2, 3, 8}) {
    ThreadGuard guard(threads);
    for (const auto& sh : shapes) {
      const std::size_t m = sh[0], k = sh[1], n = sh[2];
      const auto a = random_matrix(m, k, rng);
      const auto b = random_matrix(k, n, rng);
      const auto c0 = random_matrix(m, n, rng);
      for (double alpha : kAlphas) {
        for (double beta : kBetas) {
          DenseMatrix c = c0, c_sc = c0;
          gemm_nn(alpha, a, b, beta, c);
          kernels::scalar::gemm_nn(alpha, a, b, beta, c_sc);
          for (std::size_t e = 0; e < c.size(); ++e) {
            ASSERT_EQ(c.data()[e], c_sc.data()[e])
                << kernels::active_isa() << " m=" << m << " k=" << k
                << " n=" << n << " t=" << threads;
          }
        }
      }
    }
  }
}

TEST(IsaDispatch, GemmTnAndGemvTActiveBackendMatchScalarBitwise) {
  Rng rng(62);
  const std::size_t shapes[][3] = {{1, 1, 1},  {6, 4, 3},   {200, 33, 9},
                                   {1, 5, 2},  {513, 7, 1}, {3, 1, 19},
                                   {50, 64, 8}};
  for (const int threads : {1, 2, 3, 8}) {
    ThreadGuard guard(threads);
    for (const auto& sh : shapes) {
      const std::size_t k = sh[0], m = sh[1], n = sh[2];
      const auto a = random_matrix(k, m, rng);
      const auto b = random_matrix(k, n, rng);
      const auto c0 = random_matrix(m, n, rng);
      const auto x = random_vec(k, rng);
      const auto y0 = random_vec(m, rng);
      for (double alpha : kAlphas) {
        for (double beta : kBetas) {
          DenseMatrix c = c0, c_sc = c0;
          gemm_tn(alpha, a, b, beta, c);
          kernels::scalar::gemm_tn(alpha, a, b, beta, c_sc);
          for (std::size_t e = 0; e < c.size(); ++e) {
            ASSERT_EQ(c.data()[e], c_sc.data()[e]) << "gemm_tn t=" << threads;
          }
          auto y = y0, y_sc = y0;
          gemv_t(alpha, a, x, beta, y);
          kernels::scalar::gemv_t(alpha, a, x, beta, y_sc);
          for (std::size_t j = 0; j < m; ++j) {
            ASSERT_EQ(y[j], y_sc[j]) << "gemv_t t=" << threads;
          }
        }
      }
    }
  }
}

TEST(IsaDispatch, SpmmTnActiveBackendMatchesScalarBitwiseBothStrategies) {
  Rng rng(63);
  // Narrow output (two-phase dense reduction) and wide output (CSC
  // gather with software prefetch) — both strategies must be clean.
  std::vector<CsrMatrix> mats;
  mats.push_back(random_csr(50, 20, 0.15, rng));
  mats.push_back(random_csr(500, 300, 0.05, rng));
  mats.push_back(random_csr(60, 800, 0.01, rng));   // wide, gather path
  mats.push_back(random_csr(300, 2000, 0.01, rng)); // wide, many columns
  for (const int threads : {1, 2, 3, 8}) {
    ThreadGuard guard(threads);
    for (const auto& sp : mats) {
      const auto b = random_matrix(sp.rows(), 5, rng);
      const auto c0 = random_matrix(sp.cols(), 5, rng);
      for (double alpha : kAlphas) {
        for (double beta : kBetas) {
          DenseMatrix c = c0, c_sc = c0;
          kernels::spmm_tn(alpha, sp, b, beta, c);
          kernels::scalar::spmm_tn(alpha, sp, b, beta, c_sc);
          for (std::size_t e = 0; e < c.size(); ++e) {
            ASSERT_EQ(c.data()[e], c_sc.data()[e])
                << sp.rows() << "x" << sp.cols() << " t=" << threads;
          }
        }
      }
    }
  }
}

TEST(IsaDispatch, SoftmaxForwardActiveBackendMatchesScalarBitwise) {
  Rng rng(64);
  for (const int threads : {1, 2, 3, 8}) {
    ThreadGuard guard(threads);
    for (const std::size_t n : {std::size_t{1}, std::size_t{37},
                                std::size_t{4000}}) {
      const std::size_t c = 9;
      auto scores = random_matrix(n, c, rng);
      // Large spread exercises the rescale branch (running max updates).
      for (double& v : scores.data()) v *= 30.0;
      std::vector<std::int32_t> labels(n);
      for (auto& l : labels) l = static_cast<std::int32_t>(rng.uniform_index(c + 1));
      DenseMatrix p1(n, c), p2(n, c);
      std::vector<double> l1(n), l2(n);
      const double loss1 = kernels::softmax_forward(scores, labels, p1, l1);
      const double loss2 = kernels::scalar::softmax_forward(scores, labels,
                                                            p2, l2);
      ASSERT_EQ(loss1, loss2) << "t=" << threads;
      for (std::size_t e = 0; e < p1.size(); ++e) {
        ASSERT_EQ(p1.data()[e], p2.data()[e]);
      }
      for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(l1[i], l2[i]);
    }
  }
}

}  // namespace
}  // namespace nadmm::la
