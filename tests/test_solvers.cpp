// Tests for src/solvers: CG against dense reference solves, Armijo line
// search invariants, Newton-CG convergence (with parameterized sweeps
// over conditioning and inexactness), SVRG on quadratic and softmax
// subproblems, minibatch slicing.
#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.hpp"
#include "la/dense_matrix.hpp"
#include "la/vector_ops.hpp"
#include "model/softmax.hpp"
#include "solvers/cg.hpp"
#include "solvers/linesearch.hpp"
#include "solvers/minibatch.hpp"
#include "solvers/newton.hpp"
#include "solvers/svrg.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace nadmm::solvers {
namespace {

/// SPD test matrix A = Qᵀ diag(eigs) Q via random Householder-ish mixing.
la::DenseMatrix spd_matrix(const std::vector<double>& eigs, std::uint64_t seed) {
  const std::size_t n = eigs.size();
  Rng rng(seed);
  // Start from diag(eigs), apply a few random rotations G A Gᵀ.
  la::DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) a.at(i, i) = eigs[i];
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double theta = rng.uniform(0.0, 3.14159);
      const double c = std::cos(theta), s = std::sin(theta);
      const std::size_t j = i + 1;
      for (std::size_t k = 0; k < n; ++k) {  // rows
        const double ai = a.at(i, k), aj = a.at(j, k);
        a.at(i, k) = c * ai - s * aj;
        a.at(j, k) = s * ai + c * aj;
      }
      for (std::size_t k = 0; k < n; ++k) {  // cols
        const double ai = a.at(k, i), aj = a.at(k, j);
        a.at(k, i) = c * ai - s * aj;
        a.at(k, j) = s * ai + c * aj;
      }
    }
  }
  return a;
}

HvpFn matrix_hvp(const la::DenseMatrix& a) {
  return [&a](std::span<const double> v, std::span<double> out) {
    la::gemv(1.0, a, v, 0.0, out);
  };
}

// ------------------------------------------------------------ CG

TEST(Cg, SolvesIdentityInOneIteration) {
  la::DenseMatrix eye(4, 4);
  for (std::size_t i = 0; i < 4; ++i) eye.at(i, i) = 1.0;
  std::vector<double> g{1, -2, 3, -4}, p(4);
  CgOptions opts;
  opts.rel_tol = 1e-12;
  const auto r = conjugate_gradient(matrix_hvp(eye), g, p, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 1);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(p[i], -g[i], 1e-12);
}

TEST(Cg, ExactSolveInDimIterations) {
  // CG on an n-dim SPD system converges in ≤ n iterations exactly.
  const auto a = spd_matrix({1.0, 3.0, 7.0, 20.0, 55.0}, 1);
  Rng rng(2);
  std::vector<double> g(5), p(5), check(5);
  for (double& v : g) v = rng.normal();
  CgOptions opts;
  opts.max_iterations = 5;
  opts.rel_tol = 1e-12;
  const auto r = conjugate_gradient(matrix_hvp(a), g, p, opts);
  EXPECT_TRUE(r.converged);
  la::gemv(1.0, a, p, 0.0, check);  // A p should equal −g
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(check[i], -g[i], 1e-8);
}

TEST(Cg, RespectsRelativeToleranceContract) {
  // Paper eq. (3b): on exit with converged=true, ‖Hp+g‖ ≤ θ‖g‖.
  const auto a = spd_matrix({0.1, 1.0, 5.0, 10.0, 40.0, 100.0}, 3);
  Rng rng(4);
  std::vector<double> g(6), p(6), residual(6);
  for (double& v : g) v = rng.normal();
  CgOptions opts;
  opts.max_iterations = 100;
  opts.rel_tol = 1e-3;
  const auto r = conjugate_gradient(matrix_hvp(a), g, p, opts);
  ASSERT_TRUE(r.converged);
  la::gemv(1.0, a, p, 0.0, residual);
  la::axpy(1.0, g, residual);  // Hp + g
  EXPECT_LE(la::nrm2(residual), opts.rel_tol * la::nrm2(g) * (1 + 1e-12));
  EXPECT_NEAR(r.rel_residual, la::nrm2(residual) / la::nrm2(g), 1e-9);
}

TEST(Cg, EarlyStoppingCapsIterations) {
  const auto a = spd_matrix({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 5);
  Rng rng(6);
  std::vector<double> g(10), p(10);
  for (double& v : g) v = rng.normal();
  CgOptions opts;
  opts.max_iterations = 3;
  opts.rel_tol = 1e-14;
  const auto r = conjugate_gradient(matrix_hvp(a), g, p, opts);
  EXPECT_EQ(r.iterations, 3);
  EXPECT_FALSE(r.converged);
  EXPECT_GT(la::nrm2(p), 0.0);  // still returns a useful direction
}

TEST(Cg, ZeroGradientReturnsZeroDirection) {
  const auto a = spd_matrix({1, 2, 3}, 7);
  std::vector<double> g(3, 0.0), p(3, 9.0);
  const auto r = conjugate_gradient(matrix_hvp(a), g, p, CgOptions{});
  EXPECT_TRUE(r.converged);
  for (double v : p) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Cg, NegativeCurvatureFallsBackToSteepestDescent) {
  la::DenseMatrix a(2, 2);
  a.at(0, 0) = -1.0;
  a.at(1, 1) = -1.0;
  std::vector<double> g{1.0, 2.0}, p(2);
  const auto r = conjugate_gradient(matrix_hvp(a), g, p, CgOptions{});
  EXPECT_TRUE(r.hit_negative_curvature);
  // p = −g (descent direction).
  EXPECT_DOUBLE_EQ(p[0], -1.0);
  EXPECT_DOUBLE_EQ(p[1], -2.0);
}

TEST(Cg, DescentDirectionProperty) {
  // For SPD systems CG directions satisfy pᵀg < 0 at any stopping point.
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> eigs(8);
    for (double& e : eigs) e = rng.uniform(0.01, 50.0);
    const auto a = spd_matrix(eigs, 100 + trial);
    std::vector<double> g(8), p(8);
    for (double& v : g) v = rng.normal();
    CgOptions opts;
    opts.max_iterations = 1 + static_cast<int>(rng.uniform_index(8));
    conjugate_gradient(matrix_hvp(a), g, p, opts);
    EXPECT_LT(la::dot(p, g), 0.0);
  }
}

TEST(Cg, ValidatesOptions) {
  std::vector<double> g{1.0}, p{0.0};
  CgOptions bad;
  bad.max_iterations = 0;
  EXPECT_THROW(conjugate_gradient(matrix_hvp(la::DenseMatrix(1, 1)), g, p, bad),
               InvalidArgument);
  bad = CgOptions{};
  bad.rel_tol = 0.0;
  EXPECT_THROW(conjugate_gradient(matrix_hvp(la::DenseMatrix(1, 1)), g, p, bad),
               InvalidArgument);
}

// ------------------------------------------------------------ line search

/// 1-D style quadratic objective ½ xᵀAx + bᵀx as a model::Objective.
class QuadraticObjective final : public model::Objective {
 public:
  QuadraticObjective(la::DenseMatrix a, std::vector<double> b)
      : a_(std::move(a)), b_(std::move(b)) {}
  [[nodiscard]] std::size_t dim() const override { return b_.size(); }
  [[nodiscard]] std::size_t num_samples() const override { return 0; }
  double value(std::span<const double> x) override {
    std::vector<double> ax(dim());
    la::gemv(1.0, a_, x, 0.0, ax);
    return 0.5 * la::dot(x, ax) + la::dot(b_, x);
  }
  void gradient(std::span<const double> x, std::span<double> g) override {
    la::gemv(1.0, a_, x, 0.0, g);
    la::axpy(1.0, b_, g);
  }
  void hessian_vec(std::span<const double>, std::span<const double> v,
                   std::span<double> hv) override {
    la::gemv(1.0, a_, v, 0.0, hv);
  }

 private:
  la::DenseMatrix a_;
  std::vector<double> b_;
};

TEST(LineSearch, AcceptsFullNewtonStepOnQuadratic) {
  // For a quadratic, the exact Newton step satisfies Armijo at α = 1.
  const auto a = spd_matrix({1, 4, 9}, 9);
  QuadraticObjective obj(a, {1.0, -2.0, 0.5});
  std::vector<double> x{0.2, -0.3, 0.8}, g(3), p(3);
  obj.gradient(x, g);
  CgOptions copts;
  copts.max_iterations = 10;
  copts.rel_tol = 1e-12;
  conjugate_gradient(
      [&](std::span<const double> v, std::span<double> hv) {
        obj.hessian_vec(x, v, hv);
      },
      g, p, copts);
  const auto r = armijo_backtrack(obj, x, p, obj.value(x), la::dot(p, g),
                                  LineSearchOptions{});
  EXPECT_TRUE(r.satisfied);
  EXPECT_DOUBLE_EQ(r.alpha, 1.0);
  EXPECT_EQ(r.iterations, 0);
}

TEST(LineSearch, BacktracksWhenFullStepOvershoots) {
  const auto a = spd_matrix({1, 1, 1}, 10);
  QuadraticObjective obj(a, {0.0, 0.0, 0.0});
  std::vector<double> x{1.0, 1.0, 1.0}, g(3);
  obj.gradient(x, g);
  // A deliberately overlong descent direction: p = −10 g.
  std::vector<double> p(3);
  for (std::size_t i = 0; i < 3; ++i) p[i] = -10.0 * g[i];
  const auto r = armijo_backtrack(obj, x, p, obj.value(x), la::dot(p, g),
                                  LineSearchOptions{});
  EXPECT_TRUE(r.satisfied);
  EXPECT_LT(r.alpha, 1.0);
  EXPECT_GT(r.iterations, 0);
  EXPECT_LT(r.f_new, obj.value(x));
}

TEST(LineSearch, ReturnsZeroWhenNoDecreasePossible) {
  const auto a = spd_matrix({1, 1}, 11);
  QuadraticObjective obj(a, {0.0, 0.0});
  std::vector<double> x{1.0, 0.0};
  std::vector<double> p{1.0, 0.0};  // ascent direction
  const double f0 = obj.value(x);
  // Lie about the directional derivative so Armijo can't ever pass.
  const auto r = armijo_backtrack(obj, x, p, f0, -1.0, LineSearchOptions{});
  EXPECT_FALSE(r.satisfied);
  EXPECT_DOUBLE_EQ(r.alpha, 0.0);
  EXPECT_DOUBLE_EQ(r.f_new, f0);
}

TEST(LineSearch, AcceptsDecreaseAfterImaxEvenIfArmijoFails) {
  // Tight beta makes Armijo essentially unsatisfiable, but the step still
  // decreases F — the paper's Algorithm 3 accepts it at i_max.
  const auto a = spd_matrix({1, 1}, 12);
  QuadraticObjective obj(a, {0.0, 0.0});
  std::vector<double> x{1.0, 1.0}, g(2), p(2);
  obj.gradient(x, g);
  for (std::size_t i = 0; i < 2; ++i) p[i] = -0.5 * g[i];
  LineSearchOptions opts;
  opts.beta = 0.999999;  // nearly exact decrease demanded
  opts.max_iterations = 3;
  const auto r = armijo_backtrack(obj, x, p, obj.value(x), la::dot(p, g), opts);
  EXPECT_GT(r.alpha, 0.0);
  EXPECT_LT(r.f_new, obj.value(x));
}

TEST(LineSearch, ValidatesOptions) {
  const auto a = spd_matrix({1}, 13);
  QuadraticObjective obj(a, {0.0});
  std::vector<double> x{1.0}, p{-1.0};
  LineSearchOptions bad;
  bad.alpha0 = 0.0;
  EXPECT_THROW(armijo_backtrack(obj, x, p, 0.5, -1.0, bad), InvalidArgument);
  bad = LineSearchOptions{};
  bad.backtrack = 1.0;
  EXPECT_THROW(armijo_backtrack(obj, x, p, 0.5, -1.0, bad), InvalidArgument);
  bad = LineSearchOptions{};
  bad.beta = 0.0;
  EXPECT_THROW(armijo_backtrack(obj, x, p, 0.5, -1.0, bad), InvalidArgument);
}

// ------------------------------------------------------------ Newton-CG

TEST(NewtonCg, SolvesQuadraticInOneIteration) {
  const auto a = spd_matrix({2, 5, 11, 31}, 14);
  QuadraticObjective obj(a, {1.0, -1.0, 2.0, 0.5});
  NewtonOptions opts;
  opts.cg.max_iterations = 50;
  opts.cg.rel_tol = 1e-12;
  opts.gradient_tol = 1e-10;
  const auto r = newton_cg(obj, {0, 0, 0, 0}, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2);
  EXPECT_LT(r.final_gradient_norm, 1e-10);
}

struct NewtonCase {
  int classes;
  std::size_t p;
  int cg_iters;
  double cg_tol;
};

class NewtonSweep : public testing::TestWithParam<NewtonCase> {};

TEST_P(NewtonSweep, ConvergesOnSoftmax) {
  const auto c = GetParam();
  auto tt = data::make_blobs(300, 50, c.p, c.classes, 3.0, 1.0, 15);
  model::SoftmaxObjective obj(tt.train, 1e-3);
  NewtonOptions opts;
  opts.max_iterations = 60;
  opts.gradient_tol = 1e-6;
  opts.cg.max_iterations = c.cg_iters;
  opts.cg.rel_tol = c.cg_tol;
  const auto r = newton_cg(obj, std::vector<double>(obj.dim(), 0.0), opts);
  EXPECT_TRUE(r.converged) << "C=" << c.classes << " p=" << c.p;
  EXPECT_LT(r.final_gradient_norm, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    InexactnessSweep, NewtonSweep,
    testing::Values(NewtonCase{3, 8, 10, 1e-4}, NewtonCase{3, 8, 100, 1e-10},
                    NewtonCase{5, 12, 10, 1e-2}, NewtonCase{10, 6, 20, 1e-4},
                    NewtonCase{2, 10, 10, 1e-4}));

TEST(NewtonCg, MonotonicDecreaseWithTrace) {
  auto tt = data::make_blobs(200, 50, 10, 4, 3.0, 1.0, 16);
  model::SoftmaxObjective obj(tt.train, 1e-3);
  NewtonOptions opts;
  opts.max_iterations = 20;
  opts.gradient_tol = 0.0;
  opts.record_trace = true;
  const auto r = newton_cg(obj, std::vector<double>(obj.dim(), 0.0), opts);
  ASSERT_GE(r.trace.size(), 2u);
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_LE(r.trace[i].value, r.trace[i - 1].value + 1e-12);
    EXPECT_GT(r.trace[i].step_size, 0.0);
  }
}

TEST(NewtonCg, RespectsIterationBudget) {
  auto tt = data::make_blobs(100, 10, 8, 3, 3.0, 1.0, 17);
  model::SoftmaxObjective obj(tt.train, 0.0);
  NewtonOptions opts;
  opts.max_iterations = 1;
  opts.gradient_tol = 0.0;
  const auto r = newton_cg(obj, std::vector<double>(obj.dim(), 0.0), opts);
  EXPECT_EQ(r.iterations, 1);
}

TEST(NewtonCg, StartingAtOptimumConvergesImmediately) {
  const auto a = spd_matrix({1, 2}, 18);
  QuadraticObjective obj(a, {0.0, 0.0});  // optimum at origin
  NewtonOptions opts;
  opts.gradient_tol = 1e-12;
  const auto r = newton_cg(obj, {0.0, 0.0}, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

TEST(NewtonCg, DimensionMismatchThrows) {
  const auto a = spd_matrix({1, 2}, 19);
  QuadraticObjective obj(a, {0.0, 0.0});
  EXPECT_THROW(newton_cg(obj, {0.0}, NewtonOptions{}), InvalidArgument);
}

// ------------------------------------------------------------ minibatch

TEST(Minibatch, SplitsCoverShard) {
  auto tt = data::make_blobs(103, 10, 5, 3, 3.0, 1.0, 20);
  const auto batches = make_batches(tt.train, 25);
  ASSERT_EQ(batches.size(), 5u);
  std::size_t total = 0;
  for (const auto& b : batches) total += b.num_samples();
  EXPECT_EQ(total, 103u);
  EXPECT_EQ(batches.back().num_samples(), 3u);
}

TEST(Minibatch, ZeroOrOversizedBatchGivesSingleBatch) {
  auto tt = data::make_blobs(10, 5, 5, 3, 3.0, 1.0, 21);
  EXPECT_EQ(make_batches(tt.train, 0).size(), 1u);
  EXPECT_EQ(make_batches(tt.train, 100).size(), 1u);
}

TEST(Minibatch, BatchGradientsSumToShardGradient) {
  auto tt = data::make_blobs(60, 10, 6, 4, 3.0, 1.0, 22);
  model::SoftmaxObjective full(tt.train, 0.0);
  const auto batches = make_batches(tt.train, 16);
  Rng rng(23);
  std::vector<double> x(full.dim());
  for (double& v : x) v = 0.2 * rng.normal();
  std::vector<double> g_full(full.dim()), g_sum(full.dim(), 0.0),
      g_b(full.dim());
  full.gradient(x, g_full);
  for (const auto& b : batches) {
    model::SoftmaxObjective bo(b, 0.0);
    bo.gradient(x, g_b);
    la::axpy(1.0, g_b, g_sum);
  }
  for (std::size_t i = 0; i < full.dim(); ++i) {
    EXPECT_NEAR(g_sum[i], g_full[i], 1e-9);
  }
}

// ------------------------------------------------------------ SVRG

TEST(Svrg, SolvesRegularizedSoftmaxSubproblem) {
  auto tt = data::make_blobs(120, 10, 6, 3, 3.0, 1.0, 24);
  auto batch_data = make_batches(tt.train, 16);
  std::vector<model::SoftmaxObjective> batches;
  for (const auto& b : batch_data) batches.emplace_back(b, 0.0);

  const std::size_t dim = batches.front().dim();
  std::vector<double> linear(dim, 0.0), center(dim, 0.0);
  SvrgOptions opts;
  opts.max_outer = 30;
  opts.step_size = 2e-3;
  const auto r = svrg_minimize(batches, linear, /*ridge=*/1.0, /*mu=*/0.0,
                               center, std::vector<double>(dim, 0.0), opts);
  // Compare against Newton on the same objective.
  model::SoftmaxObjective ref(tt.train, 1.0);
  NewtonOptions nopts;
  nopts.gradient_tol = 1e-10;
  nopts.cg.max_iterations = 100;
  nopts.cg.rel_tol = 1e-10;
  nopts.max_iterations = 50;
  const auto exact = newton_cg(ref, std::vector<double>(dim, 0.0), nopts);
  EXPECT_LT(r.final_subproblem_gradient_norm, 1.0);
  EXPECT_NEAR(ref.value(r.x), exact.final_value,
              0.05 * std::abs(exact.final_value) + 0.05);
}

TEST(Svrg, ProxTermPullsTowardCenter) {
  auto tt = data::make_blobs(60, 10, 5, 3, 3.0, 1.0, 25);
  auto batch_data = make_batches(tt.train, 20);
  std::vector<model::SoftmaxObjective> batches;
  for (const auto& b : batch_data) batches.emplace_back(b, 0.0);
  const std::size_t dim = batches.front().dim();
  std::vector<double> linear(dim, 0.0), center(dim, 0.7);
  SvrgOptions opts;
  opts.max_outer = 20;
  // step·µ must stay below 2 for the prox term's fixed-point iteration to
  // be stable; 0.5 converges fast.
  opts.step_size = 5e-5;
  const double mu = 1e4;
  const auto r = svrg_minimize(batches, linear, 0.0, mu, center,
                               std::vector<double>(dim, 0.0), opts);
  // The softmax gradient perturbs the minimizer away from the center by
  // roughly ‖∇f(center)‖/µ, well inside the tolerance below.
  for (std::size_t i = 0; i < dim; i += 7) {
    EXPECT_NEAR(r.x[i], 0.7, 0.02);
  }
}

TEST(Svrg, ValidatesInputs) {
  std::vector<model::SoftmaxObjective> empty;
  std::vector<double> v;
  EXPECT_THROW(svrg_minimize(empty, v, 0.0, 0.0, v, {}, SvrgOptions{}),
               InvalidArgument);
  auto tt = data::make_blobs(20, 5, 4, 3, 3.0, 1.0, 26);
  std::vector<model::SoftmaxObjective> batches;
  batches.emplace_back(tt.train, 0.0);
  std::vector<double> good(batches.front().dim(), 0.0);
  SvrgOptions bad;
  bad.step_size = 0.0;
  EXPECT_THROW(svrg_minimize(batches, good, 0.0, 0.0, good, good, bad),
               InvalidArgument);
  std::vector<double> wrong(3, 0.0);
  EXPECT_THROW(
      svrg_minimize(batches, wrong, 0.0, 0.0, good, good, SvrgOptions{}),
      InvalidArgument);
}

}  // namespace
}  // namespace nadmm::solvers
