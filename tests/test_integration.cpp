// Cross-module integration tests: the full harness (dataset → cluster →
// solver), cross-solver agreement on the same problem, the paper's
// headline qualitative claims (communication profile, epoch-cost
// ordering), and CSV trace output.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "core/reference.hpp"
#include "data/io.hpp"
#include "runner/harness.hpp"
#include "support/check.hpp"

namespace nadmm::runner {
namespace {

/// Contiguous zero-copy shards sized to the cluster — the explicit form
/// of what the deprecated (train, test) solver overloads did implicitly.
nadmm::data::ShardedDataset shards(const nadmm::comm::SimCluster& cluster,
                                   const nadmm::data::Dataset& train,
                                   const nadmm::data::Dataset* test) {
  nadmm::data::ShardPlan plan;
  plan.parts = cluster.size();
  return nadmm::data::make_sharded(train, test, plan);
}

ExperimentConfig small_config() {
  ExperimentConfig c;
  c.dataset = "blobs";
  c.n_train = 600;
  c.n_test = 150;
  c.e18_features = 64;  // also used as blobs dimension
  c.workers = 4;
  c.iterations = 40;
  c.lambda = 1e-3;
  return c;
}

TEST(Harness, MakeDataDispatchesAllDatasets) {
  ExperimentConfig c = small_config();
  c.n_train = 60;
  c.n_test = 20;
  for (const char* name : {"higgs", "mnist", "blobs"}) {
    c.dataset = name;
    const auto tt = make_data(c);
    EXPECT_EQ(tt.train.num_samples(), 60u) << name;
    EXPECT_EQ(tt.test.num_samples(), 20u) << name;
  }
  c.dataset = "e18";
  EXPECT_TRUE(make_data(c).train.is_sparse());
}

TEST(Harness, RunSolverDispatchesEverySolver) {
  auto c = small_config();
  c.iterations = 3;
  const auto tt = make_data(c);
  for (const char* solver : {"newton-admm", "giant", "sync-sgd", "disco"}) {
    auto cluster = make_cluster(c);
    const auto r = run_solver(solver, cluster,
      shard_for_solver(solver, tt.train, &tt.test, c), c);
    EXPECT_EQ(r.solver, solver);
    EXPECT_EQ(r.iterations, 3) << solver;
    EXPECT_FALSE(r.trace.empty()) << solver;
  }
  // DANE variants run fewer, expensive epochs.
  for (const char* solver : {"inexact-dane", "aide"}) {
    auto cluster = make_cluster(c);
    const auto r = run_solver(solver, cluster,
      shard_for_solver(solver, tt.train, &tt.test, c), c);
    EXPECT_EQ(r.solver, solver);
    EXPECT_GE(r.iterations, 1) << solver;
  }
  auto cluster = make_cluster(c);
  EXPECT_THROW(run_solver("nope", cluster,
      shard_for_solver("nope", tt.train, nullptr, c), c),
               InvalidArgument);
}

TEST(Harness, TraceCsvHasHeaderAndAllRows) {
  auto c = small_config();
  c.iterations = 5;
  const auto tt = make_data(c);
  auto cluster = make_cluster(c);
  const auto r = run_solver("newton-admm", cluster,
      shard_for_solver("newton-admm", tt.train, &tt.test, c), c);
  const std::string path = testing::TempDir() + "/nadmm_trace.csv";
  write_trace_csv(r, path);
  std::ifstream in(path);
  std::string line;
  int rows = 0;
  std::getline(in, line);
  EXPECT_NE(line.find("objective"), std::string::npos);
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 5);
  std::filesystem::remove(path);
}

TEST(Integration, SecondOrderSolversAgreeOnTheOptimum) {
  auto c = small_config();
  // Consensus ADMM's tail is linear; ~120 epochs reach θ < 0.05 on this
  // near-separable 10-class problem (F* is tiny, making θ strict).
  c.iterations = 120;
  const auto tt = make_data(c);
  const auto ref = core::solve_reference(tt.train, c.lambda);

  auto c1 = make_cluster(c);
  auto c2 = make_cluster(c);
  auto c3 = make_cluster(c);
  const auto admm = run_solver("newton-admm", c1,
      shard_for_solver("newton-admm", tt.train, nullptr, c), c);
  const auto gnt = run_solver("giant", c2,
      shard_for_solver("giant", tt.train, nullptr, c), c);
  const auto dsc = run_solver("disco", c3,
      shard_for_solver("disco", tt.train, nullptr, c), c);
  for (const auto* r : {&admm, &gnt, &dsc}) {
    const double theta =
        (r->final_objective - ref.objective) / std::abs(ref.objective);
    EXPECT_LT(theta, 0.05) << r->solver;
  }
}

TEST(Integration, AdmmUsesLessCommThanGiantPerEpoch) {
  // The paper's Remark 1: one round versus three. On a slow network the
  // per-epoch communication gap must be visible in the simulated clock.
  auto c = small_config();
  c.network = "eth1";
  c.iterations = 10;
  const auto tt = make_data(c);
  auto c1 = make_cluster(c);
  auto c2 = make_cluster(c);
  const auto admm = run_solver("newton-admm", c1,
      shard_for_solver("newton-admm", tt.train, nullptr, c), c);
  const auto gnt = run_solver("giant", c2,
      shard_for_solver("giant", tt.train, nullptr, c), c);
  const double admm_comm =
      admm.trace.back().comm_sim_seconds / admm.iterations;
  const double giant_comm = gnt.trace.back().comm_sim_seconds / gnt.iterations;
  EXPECT_LT(admm_comm, giant_comm);
}

TEST(Integration, SlowNetworkAmplifiesAdmmAdvantage) {
  // §3: "performance improvements are amplified by slower interconnects".
  auto cfg = small_config();
  cfg.iterations = 10;
  const auto tt = make_data(cfg);

  auto total_epoch_time = [&](const std::string& network,
                              const std::string& solver) {
    auto c = cfg;
    c.network = network;
    auto cluster = make_cluster(c);
    const auto r = run_solver(solver, cluster,
      shard_for_solver(solver, tt.train, nullptr, c), c);
    return r.avg_epoch_sim_seconds;
  };
  const double admm_fast = total_epoch_time("ib100", "newton-admm");
  const double admm_slow = total_epoch_time("wan", "newton-admm");
  const double giant_fast = total_epoch_time("ib100", "giant");
  const double giant_slow = total_epoch_time("wan", "giant");
  // GIANT's epoch-time blowup on the slow network exceeds Newton-ADMM's.
  EXPECT_GT(giant_slow / giant_fast, admm_slow / admm_fast);
}

TEST(Integration, SgdNeedsMoreTimeThanAdmmToGoodObjective) {
  // Figure-4 shape: to reach a near-optimal objective, Newton-ADMM's
  // simulated time is below Synchronous SGD's.
  auto c = small_config();
  c.iterations = 120;
  const auto tt = make_data(c);
  const auto ref = core::solve_reference(tt.train, c.lambda);
  const double target = ref.objective * 1.15;

  auto c1 = make_cluster(c);
  const auto admm = run_solver("newton-admm", c1,
      shard_for_solver("newton-admm", tt.train, nullptr, c), c);

  auto sgd_opts = sgd_options(c);
  sgd_opts.step_size = 0.5;  // generous, pre-tuned step
  sgd_opts.batch_size = 32;
  auto c2 = make_cluster(c);
  const auto sgd = baselines::sync_sgd(c2, shards(c2, tt.train, nullptr), sgd_opts);

  const double t_admm = admm.sim_time_to_objective(target);
  const double t_sgd = sgd.sim_time_to_objective(target);
  ASSERT_GT(t_admm, 0.0);
  if (t_sgd > 0.0) {
    EXPECT_LT(t_admm, t_sgd);
  }  // SGD never reaching the target is also consistent with the paper.
}

TEST(Integration, SparsePipelineEndToEnd) {
  ExperimentConfig c;
  c.dataset = "e18";
  c.n_train = 400;
  c.n_test = 100;
  c.e18_features = 256;
  c.workers = 4;
  c.iterations = 15;
  c.lambda = 1e-3;
  const auto tt = make_data(c);
  ASSERT_TRUE(tt.train.is_sparse());
  auto c1 = make_cluster(c);
  auto c2 = make_cluster(c);
  const auto admm = run_solver("newton-admm", c1,
      shard_for_solver("newton-admm", tt.train, &tt.test, c), c);
  const auto gnt = run_solver("giant", c2,
      shard_for_solver("giant", tt.train, &tt.test, c), c);
  EXPECT_GT(admm.final_test_accuracy, 0.10);
  EXPECT_GT(gnt.final_test_accuracy, 0.10);
  EXPECT_LT(admm.final_objective, admm.trace.front().objective);
}

TEST(Integration, StreamedLibsvmShardsTrainIdenticallyToMaterialized) {
  // Build a libsvm file, then run the same scenario two ways: zero-copy
  // views over the materialized matrix, and per-rank shards streamed
  // straight from disk. The shards are bit-identical, so training is too.
  const std::string path = testing::TempDir() + "/nadmm_stream_equiv.libsvm";
  {
    const auto tt = data::make_e18_like(300, 60, 96, 21);
    std::ofstream probe(path);  // save_libsvm opens itself; just reserve
    probe.close();
    data::save_libsvm(tt.train, path);
    std::ofstream app(path, std::ios::app);
    // Append the test rows so one file carries both splits.
    const std::string tmp = path + ".test";
    data::save_libsvm(tt.test, tmp);
    std::ifstream in(tmp);
    app << in.rdbuf();
    in.close();
    std::filesystem::remove(tmp);
  }
  ExperimentConfig c = small_config();
  c.dataset = "libsvm:" + path;
  c.n_train = 300;
  c.n_test = 60;
  c.workers = 4;
  c.iterations = 6;
  c.omp_threads = 1;

  const data::DatasetKey key = dataset_key(c);
  const data::ShardPlan plan = shard_plan(c);
  const data::TrainTest full = data::generate_dataset(key);
  const data::ShardedDataset views = data::make_sharded(full.train, &full.test, plan);
  const data::ShardedDataset streamed = data::generate_sharded_dataset(key, plan);
  ASSERT_FALSE(streamed.has_full());
  ASSERT_TRUE(views.has_full());

  for (const char* solver : {"newton-admm", "async-admm"}) {
    auto cluster_a = make_cluster(c);
    auto cluster_b = make_cluster(c);
    const auto a = run_solver(solver, cluster_a, views, c);
    const auto b = run_solver(solver, cluster_b, streamed, c);
    EXPECT_EQ(a.iterations, b.iterations) << solver;
    // Hit counts are integers, so accuracy matches exactly; the
    // objective matches exactly for newton-admm (per-shard allreduce in
    // both paths) and to float-association noise for async-admm (whose
    // coordinator sums per-shard values only when no full matrix
    // exists).
    EXPECT_EQ(a.final_test_accuracy, b.final_test_accuracy) << solver;
    if (std::string(solver) == "newton-admm") {
      EXPECT_EQ(a.final_objective, b.final_objective) << solver;
      ASSERT_EQ(a.x.size(), b.x.size());
      for (std::size_t j = 0; j < a.x.size(); ++j) {
        ASSERT_EQ(a.x[j], b.x[j]) << solver << " coeff " << j;
      }
    } else {
      EXPECT_NEAR(a.final_objective, b.final_objective,
                  1e-9 * (1.0 + std::abs(a.final_objective)))
          << solver;
    }
  }
  std::filesystem::remove(path);
}

TEST(Integration, WeightedPartitionFollowsDeviceSpeed) {
  // On a heterogeneous cluster the weighted plan gives the fast rank
  // proportionally more rows, which narrows the per-epoch straggler gap
  // versus an equal contiguous split.
  ExperimentConfig c = small_config();
  c.iterations = 4;
  c.workers = 4;
  c.device = "p100";
  c.straggler = "1:4";  // rank 1 runs at quarter speed
  ExperimentConfig weighted_cfg = c;
  weighted_cfg.partition = "weighted";
  const data::ShardPlan plan = shard_plan(weighted_cfg);
  ASSERT_EQ(plan.weights.size(), 4u);
  EXPECT_LT(plan.weights[1], plan.weights[0]);
  const auto ranges = plan.ranges(c.n_train);
  EXPECT_LT(ranges[1].size(), ranges[0].size());
  // End to end: weighted sharding beats contiguous on simulated epoch
  // time under the straggler (the slow rank has 4x less work).
  const auto tt = make_data(c);
  ExperimentConfig contiguous = c;
  ExperimentConfig weighted = c;
  weighted.partition = "weighted";
  auto cluster_a = make_cluster(contiguous);
  auto cluster_b = make_cluster(weighted);
  const auto even = run_solver("newton-admm", cluster_a,
      shard_for_solver("newton-admm", tt.train, &tt.test, contiguous), contiguous);
  const auto prop = run_solver("newton-admm", cluster_b,
      shard_for_solver("newton-admm", tt.train, &tt.test, weighted), weighted);
  EXPECT_LT(prop.total_sim_seconds, even.total_sim_seconds);
}

TEST(Integration, StrongScalingReducesEpochTime) {
  // Figure-2 shape: with the total problem fixed, more workers → smaller
  // average epoch time (compute dominates at these sizes).
  auto c = small_config();
  c.dataset = "mnist";
  c.n_train = 2000;
  c.n_test = 200;
  c.iterations = 5;
  const auto tt = make_data(c);
  double prev = 1e100;
  for (int workers : {1, 2, 4, 8}) {
    auto cc = c;
    cc.workers = workers;
    auto cluster = make_cluster(cc);
    const auto r = run_solver("newton-admm", cluster,
      shard_for_solver("newton-admm", tt.train, nullptr, cc), cc);
    EXPECT_LT(r.avg_epoch_sim_seconds, prev) << "workers=" << workers;
    prev = r.avg_epoch_sim_seconds;
  }
}

TEST(Integration, WeakScalingKeepsEpochTimeRoughlyConstant) {
  // Figure-2 weak-scaling shape: per-worker shard fixed → epoch time
  // roughly flat (within 2x here; the paper sees near-constant).
  auto base = small_config();
  base.dataset = "mnist";
  base.iterations = 5;
  double t1 = 0.0;
  for (int workers : {1, 4}) {
    auto c = base;
    c.workers = workers;
    c.n_train = 500 * static_cast<std::size_t>(workers);
    c.n_test = 100;
    const auto tt = make_data(c);
    auto cluster = make_cluster(c);
    const auto r = run_solver("newton-admm", cluster,
      shard_for_solver("newton-admm", tt.train, nullptr, c), c);
    if (workers == 1) {
      t1 = r.avg_epoch_sim_seconds;
    } else {
      // "Roughly constant": per-epoch local work is fixed, but line-search
      // and CG effort can vary with the (different) 4-worker dataset, so
      // allow a generous 3x band around the single-worker time.
      EXPECT_LT(r.avg_epoch_sim_seconds, 3.0 * t1);
      EXPECT_GT(r.avg_epoch_sim_seconds, t1 / 3.0);
    }
  }
}

}  // namespace
}  // namespace nadmm::runner
