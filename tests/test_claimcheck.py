#!/usr/bin/env python3
"""Unit tests for the reproduction pipeline's data layer
(tools/nadmm_results.py): CSV series extraction and the claim
evaluator. Registered with CTest (see tests/CMakeLists.txt); runs with
the stock unittest module, no third-party deps.

The non-negotiable behavior under test: a selector that matches no row,
an unknown column, or an lhs/rhs group mismatch is a hard ClaimError —
a harness that silently passes when its data vanishes gates nothing.
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "tools"))

from nadmm_results import (  # noqa: E402
    ClaimError,
    bench_entries,
    evaluate_claim,
    extract_series,
    load_claims,
    load_csv,
)

ROWS = [
    {"solver": "newton-admm", "dataset": "mnist", "workers": "1",
     "epoch": "4.0", "acc": "0.97"},
    {"solver": "newton-admm", "dataset": "mnist", "workers": "8",
     "epoch": "1.0", "acc": "0.97"},
    {"solver": "giant", "dataset": "mnist", "workers": "1",
     "epoch": "6.0", "acc": "0.96"},
    {"solver": "giant", "dataset": "mnist", "workers": "8",
     "epoch": "2.0", "acc": "0.96"},
    {"solver": "newton-admm", "dataset": "higgs", "workers": "1",
     "epoch": "0.4", "acc": "0.74"},
    {"solver": "newton-admm", "dataset": "higgs", "workers": "8",
     "epoch": "0.1", "acc": "0.74"},
    {"solver": "giant", "dataset": "higgs", "workers": "1",
     "epoch": "0.9", "acc": "0.73"},
    {"solver": "giant", "dataset": "higgs", "workers": "8",
     "epoch": "0.3", "acc": "0.73"},
]


class ExtractSeriesTest(unittest.TestCase):
    def test_selector_and_grouping(self):
        series = extract_series(ROWS, "epoch", {"workers": "8"},
                                group_by=("solver", "dataset"))
        self.assertEqual(series[("newton-admm", "mnist")], 1.0)
        self.assertEqual(series[("giant", "higgs")], 0.3)
        self.assertEqual(len(series), 4)

    def test_empty_selection_is_an_error_not_a_pass(self):
        with self.assertRaises(ClaimError):
            extract_series(ROWS, "epoch", {"workers": "16"})

    def test_unknown_column_is_an_error(self):
        with self.assertRaises(ClaimError):
            extract_series(ROWS, "epoch", {"solvr": "giant"})
        with self.assertRaises(ClaimError):
            extract_series(ROWS, "wall_seconds", {"workers": "8"})

    def test_ambiguous_selection_is_an_error(self):
        # workers=8 matches one row per (solver, dataset); without the
        # dataset in the key two rows collide.
        with self.assertRaises(ClaimError):
            extract_series(ROWS, "epoch", {"workers": "8"},
                           group_by=("solver",))

    def test_non_numeric_metric_is_an_error(self):
        with self.assertRaises(ClaimError):
            extract_series(ROWS, "solver", {"workers": "8", "solver": "giant",
                                            "dataset": "mnist"})


class EvaluateClaimTest(unittest.TestCase):
    def ordering(self, relation="<", metric="epoch"):
        return {
            "id": "c", "title": "t", "figure": "f", "kind": "ordering",
            "metric": metric, "group_by": ["solver", "dataset"],
            "lhs": {"workers": "8"}, "rhs": {"workers": "1"},
            "relation": relation,
        }

    def test_ordering_pass_and_fail(self):
        result = evaluate_claim(self.ordering("<"), ROWS)
        self.assertTrue(result["passed"])
        self.assertEqual(len(result["groups"]), 4)
        result = evaluate_claim(self.ordering(">"), ROWS)
        self.assertFalse(result["passed"])
        self.assertTrue(all(not g["passed"] for g in result["groups"]))

    def test_ordering_group_mismatch_is_an_error(self):
        claim = self.ordering()
        claim["lhs"] = {"workers": "8", "solver": "giant"}
        claim["group_by"] = ["dataset"]
        # rhs still covers both solvers per dataset -> ambiguous rows.
        with self.assertRaises(ClaimError):
            evaluate_claim(claim, ROWS)

    def test_ratio_bounds(self):
        claim = {
            "id": "r", "title": "t", "figure": "f", "kind": "ratio",
            "metric": "epoch", "group_by": ["solver", "dataset"],
            "num": {"workers": "1"}, "den": {"workers": "8"}, "min": 3.0,
        }
        result = evaluate_claim(claim, ROWS)  # ratios 4, 3, 4, 3
        self.assertTrue(result["passed"])
        claim["min"] = 3.5
        result = evaluate_claim(claim, ROWS)
        self.assertFalse(result["passed"])
        failed = [g for g in result["groups"] if not g["passed"]]
        self.assertEqual(len(failed), 2)  # both giant ratios are 3.0

    def test_ratio_missing_bounds_is_an_error(self):
        claim = {
            "id": "r", "title": "t", "figure": "f", "kind": "ratio",
            "metric": "epoch", "group_by": ["solver", "dataset"],
            "num": {"workers": "1"}, "den": {"workers": "8"},
        }
        with self.assertRaises(ClaimError):
            evaluate_claim(claim, ROWS)

    def test_threshold(self):
        claim = {
            "id": "t", "title": "t", "figure": "f", "kind": "threshold",
            "metric": "acc", "group_by": ["solver", "dataset"],
            "select": {"workers": "8"}, "min": 0.7,
        }
        self.assertTrue(evaluate_claim(claim, ROWS)["passed"])
        claim["min"] = 0.95
        result = evaluate_claim(claim, ROWS)
        self.assertFalse(result["passed"])  # higgs accuracies are ~0.74

    def test_missing_selector_field_is_an_error(self):
        claim = self.ordering()
        del claim["rhs"]
        with self.assertRaises(ClaimError):
            evaluate_claim(claim, ROWS)


class LoadersTest(unittest.TestCase):
    def test_load_csv_round_trip_and_empty_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "t.csv")
            with open(path, "w") as f:
                f.write("a,b\n1,x\n2,y\n")
            rows = load_csv(path)
            self.assertEqual(rows, [{"a": "1", "b": "x"},
                                    {"a": "2", "b": "y"}])
            with open(path, "w") as f:
                f.write("a,b\n")
            with self.assertRaises(ClaimError):
                load_csv(path)

    def test_load_claims_validates_structure(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "claims.toml")
            with open(path, "w") as f:
                f.write('[[claim]]\nid = "a"\ntitle = "t"\n'
                        'figure = "f"\nkind = "ratio"\nmetric = "m"\n')
            self.assertEqual(len(load_claims(path)), 1)
            with open(path, "a") as f:  # duplicate id
                f.write('[[claim]]\nid = "a"\ntitle = "t"\n'
                        'figure = "f"\nkind = "threshold"\nmetric = "m"\n')
            with self.assertRaises(ClaimError):
                load_claims(path)
            with open(path, "w") as f:  # bad kind
                f.write('[[claim]]\nid = "a"\ntitle = "t"\n'
                        'figure = "f"\nkind = "sideways"\nmetric = "m"\n')
            with self.assertRaises(ClaimError):
                load_claims(path)

    def test_bench_entries_requires_both_sides(self):
        pairs = {("BM_Gemv", 2): {"engine": 200.0, "seed": 100.0},
                 ("BM_Axpy", 2): {"engine": 50.0}}
        entries = bench_entries(pairs)
        self.assertEqual(len(entries), 1)
        self.assertEqual(entries[0]["speedup"], 2.0)


class CommittedArtifactsTest(unittest.TestCase):
    """The committed claims file and figure CSVs must stay structurally
    sound; thresholds/values are gated by reproduce.py --smoke in CI."""

    REPO = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir)

    def test_committed_claims_parse_and_cover_eight_plus(self):
        claims = load_claims(os.path.join(self.REPO, "docs", "claims.toml"))
        self.assertGreaterEqual(len(claims), 8)

    def test_async_claims_hold_against_committed_grid(self):
        claims = load_claims(os.path.join(self.REPO, "docs", "claims.toml"))
        figure = os.path.join(self.REPO, "docs", "figures",
                              "async_time_to_target.csv")
        rows = load_csv(figure)
        checked = 0
        for claim in claims:
            if claim["figure"] != "async_time_to_target":
                continue
            result = evaluate_claim(claim, rows)
            self.assertTrue(result["passed"], result)
            checked += 1
        self.assertGreaterEqual(checked, 2)


if __name__ == "__main__":
    unittest.main()
