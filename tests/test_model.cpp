// Tests for src/model: softmax objective correctness (values, gradients,
// Hessian-vector products — checked against finite differences across a
// parameterized sweep of class counts and dimensions), LSE stability,
// prox wrapper, prediction, metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.hpp"
#include "la/vector_ops.hpp"
#include "model/fd_check.hpp"
#include "model/metrics.hpp"
#include "model/prox.hpp"
#include "model/softmax.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace nadmm::model {
namespace {

std::vector<double> random_point(std::size_t dim, double scale,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(dim);
  for (double& v : x) v = scale * rng.normal();
  return x;
}

// ------------------------------------------------------------ basics

TEST(Softmax, DimIsClassesMinusOneTimesFeatures) {
  auto tt = data::make_blobs(30, 10, 7, 5, 3.0, 1.0, 1);
  SoftmaxObjective obj(tt.train, 0.0);
  EXPECT_EQ(obj.dim(), 7u * 4u);
  EXPECT_EQ(obj.num_samples(), 30u);
  EXPECT_EQ(obj.num_classes(), 5);
}

TEST(Softmax, ValueAtZeroIsNLogC) {
  // At x = 0 every class has probability 1/C, so the loss is n·log C.
  auto tt = data::make_blobs(64, 10, 5, 4, 3.0, 1.0, 2);
  SoftmaxObjective obj(tt.train, 0.0);
  std::vector<double> x(obj.dim(), 0.0);
  EXPECT_NEAR(obj.value(x), 64.0 * std::log(4.0), 1e-9);
}

TEST(Softmax, RegularizationAddsRidge) {
  auto tt = data::make_blobs(20, 5, 4, 3, 3.0, 1.0, 3);
  SoftmaxObjective plain(tt.train, 0.0);
  SoftmaxObjective ridged(tt.train, 0.5);
  const auto x = random_point(plain.dim(), 0.3, 4);
  EXPECT_NEAR(ridged.value(x), plain.value(x) + 0.25 * la::nrm2_sq(x), 1e-9);
}

TEST(Softmax, RejectsBadInputs) {
  auto tt = data::make_blobs(10, 5, 4, 3, 3.0, 1.0, 5);
  EXPECT_THROW(SoftmaxObjective(tt.train, -1.0), InvalidArgument);
  SoftmaxObjective obj(tt.train, 0.0);
  std::vector<double> wrong(obj.dim() + 1, 0.0);
  EXPECT_THROW(obj.value(wrong), InvalidArgument);
}

TEST(Softmax, ValueAndGradientMatchesSeparateCalls) {
  auto tt = data::make_blobs(40, 5, 6, 4, 3.0, 1.0, 6);
  SoftmaxObjective obj(tt.train, 1e-3);
  const auto x = random_point(obj.dim(), 0.2, 7);
  std::vector<double> g1(obj.dim()), g2(obj.dim());
  const double f_fused = obj.value_and_gradient(x, g1);
  const double f_plain = obj.value(x);
  obj.gradient(x, g2);
  EXPECT_DOUBLE_EQ(f_fused, f_plain);
  for (std::size_t i = 0; i < g1.size(); ++i) EXPECT_DOUBLE_EQ(g1[i], g2[i]);
}

// ------------------------------------------------------- derivatives (sweep)

struct SweepCase {
  int classes;
  std::size_t p;
  double lambda;
  bool sparse;
};

class DerivativeSweep : public testing::TestWithParam<SweepCase> {};

TEST_P(DerivativeSweep, GradientMatchesFiniteDifferences) {
  const auto c = GetParam();
  data::TrainTest tt =
      c.sparse ? data::make_e18_like(40, 5, std::max<std::size_t>(c.p, 64), 8)
               : data::make_blobs(40, 5, c.p, c.classes, 3.0, 1.0, 8);
  SoftmaxObjective obj(tt.train, c.lambda);
  const auto x = random_point(obj.dim(), 0.1, 9);
  EXPECT_LT(gradient_fd_error(obj, x, 4), 1e-5);
}

TEST_P(DerivativeSweep, HessianMatchesFiniteDifferences) {
  const auto c = GetParam();
  data::TrainTest tt =
      c.sparse ? data::make_e18_like(40, 5, std::max<std::size_t>(c.p, 64), 8)
               : data::make_blobs(40, 5, c.p, c.classes, 3.0, 1.0, 8);
  SoftmaxObjective obj(tt.train, c.lambda);
  const auto x = random_point(obj.dim(), 0.1, 10);
  EXPECT_LT(hessian_fd_error(obj, x, 4), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, DerivativeSweep,
    testing::Values(SweepCase{2, 6, 0.0, false}, SweepCase{2, 6, 1e-2, false},
                    SweepCase{3, 10, 0.0, false}, SweepCase{5, 8, 1e-3, false},
                    SweepCase{10, 12, 0.0, false}, SweepCase{7, 5, 1.0, false},
                    SweepCase{20, 64, 1e-3, true},
                    SweepCase{20, 128, 0.0, true}));

// ------------------------------------------------------------ Hessian PSD

TEST(Softmax, HessianIsPositiveSemidefinite) {
  auto tt = data::make_blobs(50, 5, 8, 4, 3.0, 1.0, 12);
  SoftmaxObjective obj(tt.train, 0.0);
  const auto x = random_point(obj.dim(), 0.3, 13);
  Rng rng(14);
  std::vector<double> hv(obj.dim());
  for (int t = 0; t < 20; ++t) {
    const auto v = random_point(obj.dim(), 1.0, 100 + t);
    obj.hessian_vec(x, v, hv);
    EXPECT_GE(la::dot(v, hv), -1e-9) << "vᵀHv must be >= 0 (convexity)";
  }
}

TEST(Softmax, HessianIsLinearInV) {
  auto tt = data::make_blobs(30, 5, 6, 3, 3.0, 1.0, 15);
  SoftmaxObjective obj(tt.train, 1e-2);
  const auto x = random_point(obj.dim(), 0.2, 16);
  const auto v1 = random_point(obj.dim(), 1.0, 17);
  const auto v2 = random_point(obj.dim(), 1.0, 18);
  std::vector<double> hv1(obj.dim()), hv2(obj.dim()), hsum(obj.dim()),
      combo(obj.dim());
  obj.hessian_vec(x, v1, hv1);
  obj.hessian_vec(x, v2, hv2);
  for (std::size_t i = 0; i < obj.dim(); ++i) combo[i] = 2.0 * v1[i] - 3.0 * v2[i];
  obj.hessian_vec(x, combo, hsum);
  for (std::size_t i = 0; i < obj.dim(); ++i) {
    EXPECT_NEAR(hsum[i], 2.0 * hv1[i] - 3.0 * hv2[i], 1e-8);
  }
}

TEST(Softmax, HessianIsSymmetric) {
  auto tt = data::make_blobs(30, 5, 5, 4, 3.0, 1.0, 19);
  SoftmaxObjective obj(tt.train, 0.0);
  const auto x = random_point(obj.dim(), 0.2, 20);
  const auto u = random_point(obj.dim(), 1.0, 21);
  const auto v = random_point(obj.dim(), 1.0, 22);
  std::vector<double> hu(obj.dim()), hv(obj.dim());
  obj.hessian_vec(x, u, hu);
  obj.hessian_vec(x, v, hv);
  EXPECT_NEAR(la::dot(v, hu), la::dot(u, hv), 1e-8 * (1.0 + std::abs(la::dot(v, hu))));
}

// ------------------------------------------------------------ LSE stability

TEST(Softmax, LogSumExpStableUnderHugeScores) {
  // Without the paper's §6 trick, scores of ±1000 overflow exp().
  la::DenseMatrix x(4, 2, {1000.0, 0.0, -1000.0, 0.0, 0.0, 1000.0, 0.0, -1000.0});
  auto ds = data::Dataset::dense(std::move(x), {0, 1, 1, 0}, 3);
  SoftmaxObjective obj(ds, 0.0);
  std::vector<double> w(obj.dim(), 1.0);
  const double f = obj.value(w);
  EXPECT_TRUE(std::isfinite(f));
  std::vector<double> g(obj.dim());
  obj.gradient(w, g);
  for (double v : g) EXPECT_TRUE(std::isfinite(v));
  std::vector<double> hv(obj.dim());
  obj.hessian_vec(w, w, hv);
  for (double v : hv) EXPECT_TRUE(std::isfinite(v));
}

TEST(Softmax, BinaryCaseMatchesLogisticRegression) {
  // C = 2 with implicit reference class reduces to logistic regression:
  // loss_i = log(1 + e^{s}) − b_i·s.
  la::DenseMatrix x(3, 2, {1.0, 2.0, -1.0, 0.5, 0.0, 1.0});
  auto feats = x;  // keep a copy for manual computation
  auto ds = data::Dataset::dense(std::move(x), {1, 0, 1}, 2);
  SoftmaxObjective obj(ds, 0.0);
  std::vector<double> w{0.3, -0.7};
  double expected = 0.0;
  const std::vector<int> labels{1, 0, 1};
  for (std::size_t i = 0; i < 3; ++i) {
    const double s = feats.at(i, 0) * w[0] + feats.at(i, 1) * w[1];
    // label 0 is the explicit class (score s), label 1 the implicit one.
    expected += std::log(1.0 + std::exp(s)) - (labels[i] == 0 ? s : 0.0);
  }
  EXPECT_NEAR(obj.value(w), expected, 1e-10);
}

// ------------------------------------------------------------ prediction

TEST(Softmax, PredictRecoversSeparableLabels) {
  auto tt = data::make_blobs(400, 100, 10, 4, 8.0, 0.3, 23);  // well separated
  SoftmaxObjective obj(tt.train, 0.0);
  // A few Newton-ish steps via gradient descent to get a decent model:
  std::vector<double> x(obj.dim(), 0.0), g(obj.dim());
  for (int it = 0; it < 200; ++it) {
    obj.gradient(x, g);
    la::axpy(-0.002, g, x);
  }
  EXPECT_GT(obj.accuracy(x), 0.95);
  const auto preds = obj.predict(x);
  EXPECT_EQ(preds.size(), 400u);
  for (auto p : preds) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 4);
  }
}

TEST(Metrics, AccuracyAndObjectiveHelpers) {
  auto tt = data::make_blobs(50, 50, 6, 3, 3.0, 1.0, 24);
  SoftmaxObjective obj(tt.test, 0.0);
  const auto x = random_point(obj.dim(), 0.1, 25);
  EXPECT_DOUBLE_EQ(accuracy(tt.test, x), obj.accuracy(x));
  SoftmaxObjective reg(tt.test, 1e-2);
  EXPECT_DOUBLE_EQ(objective_value(tt.test, x, 1e-2), reg.value(x));
}

// ------------------------------------------------------------ prox wrapper

TEST(Prox, ValueGradientHessianAugmented) {
  auto tt = data::make_blobs(30, 5, 5, 3, 3.0, 1.0, 26);
  SoftmaxObjective base(tt.train, 0.0);
  const std::size_t dim = base.dim();
  const auto center = random_point(dim, 0.5, 27);
  const double rho = 2.5;
  ProxAugmentedObjective prox(base, rho, center);
  const auto x = random_point(dim, 0.3, 28);

  const double d = la::dist2(x, center);
  EXPECT_NEAR(prox.value(x), base.value(x) + 0.5 * rho * d * d, 1e-9);

  std::vector<double> gp(dim), gb(dim);
  prox.gradient(x, gp);
  base.gradient(x, gb);
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(gp[i], gb[i] + rho * (x[i] - center[i]), 1e-10);
  }

  const auto v = random_point(dim, 1.0, 29);
  std::vector<double> hp(dim), hb(dim);
  prox.hessian_vec(x, v, hp);
  base.hessian_vec(x, v, hb);
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(hp[i], hb[i] + rho * v[i], 1e-10);
  }
}

TEST(Prox, FiniteDifferenceConsistency) {
  auto tt = data::make_blobs(25, 5, 4, 3, 3.0, 1.0, 30);
  SoftmaxObjective base(tt.train, 1e-2);
  ProxAugmentedObjective prox(base, 1.7, random_point(base.dim(), 0.5, 31));
  const auto x = random_point(base.dim(), 0.2, 32);
  EXPECT_LT(gradient_fd_error(prox, x, 4), 1e-5);
  EXPECT_LT(hessian_fd_error(prox, x, 4), 1e-4);
}

TEST(Prox, SetRhoAndCenterTakeEffect) {
  auto tt = data::make_blobs(20, 5, 4, 3, 3.0, 1.0, 33);
  SoftmaxObjective base(tt.train, 0.0);
  const std::size_t dim = base.dim();
  ProxAugmentedObjective prox(base, 1.0, std::vector<double>(dim, 0.0));
  const auto x = random_point(dim, 0.3, 34);
  const double v1 = prox.value(x);
  prox.set_rho(4.0);
  const double v4 = prox.value(x);
  EXPECT_NEAR(v4 - base.value(x), 4.0 * (v1 - base.value(x)), 1e-9);
  const auto c = random_point(dim, 1.0, 35);
  prox.set_center(c);
  const double d = la::dist2(x, c);
  EXPECT_NEAR(prox.value(x), base.value(x) + 2.0 * d * d, 1e-9);
}

TEST(Prox, ValidatesArguments) {
  auto tt = data::make_blobs(10, 5, 4, 3, 3.0, 1.0, 36);
  SoftmaxObjective base(tt.train, 0.0);
  EXPECT_THROW(
      ProxAugmentedObjective(base, -1.0, std::vector<double>(base.dim(), 0.0)),
      InvalidArgument);
  EXPECT_THROW(ProxAugmentedObjective(base, 1.0, std::vector<double>(3, 0.0)),
               InvalidArgument);
  ProxAugmentedObjective prox(base, 1.0, std::vector<double>(base.dim(), 0.0));
  EXPECT_THROW(prox.set_rho(-2.0), InvalidArgument);
  EXPECT_THROW(prox.set_center(std::vector<double>(2, 0.0)), InvalidArgument);
}

// ----------------------------------------------------- cache correctness

TEST(Softmax, ForwardCacheInvalidatesOnNewPoint) {
  auto tt = data::make_blobs(30, 5, 5, 3, 3.0, 1.0, 37);
  SoftmaxObjective obj(tt.train, 0.0);
  const auto x1 = random_point(obj.dim(), 0.2, 38);
  const auto x2 = random_point(obj.dim(), 0.2, 39);
  const double f1 = obj.value(x1);
  const double f2 = obj.value(x2);
  EXPECT_NE(f1, f2);
  // Going back must give the original value (not the cached new one).
  EXPECT_DOUBLE_EQ(obj.value(x1), f1);
}

TEST(Softmax, HvpAfterValueUsesConsistentPoint) {
  // Regression guard: hessian_vec(x2, ...) after value(x1) must use the
  // forward pass at x2, not the stale cache.
  auto tt = data::make_blobs(30, 5, 5, 3, 3.0, 1.0, 40);
  SoftmaxObjective obj1(tt.train, 0.0), obj2(tt.train, 0.0);
  const auto x1 = random_point(obj1.dim(), 0.2, 41);
  const auto x2 = random_point(obj1.dim(), 0.2, 42);
  const auto v = random_point(obj1.dim(), 1.0, 43);
  std::vector<double> hv_stale(obj1.dim()), hv_fresh(obj1.dim());
  (void)obj1.value(x1);
  obj1.hessian_vec(x2, v, hv_stale);
  obj2.hessian_vec(x2, v, hv_fresh);
  // Near-equality: OpenMP reductions are order-nondeterministic at the
  // ulp level (as with cuBLAS); a stale cache would differ at O(1).
  for (std::size_t i = 0; i < obj1.dim(); ++i) {
    EXPECT_NEAR(hv_stale[i], hv_fresh[i],
                1e-9 * (1.0 + std::abs(hv_fresh[i])));
  }
}

}  // namespace
}  // namespace nadmm::model
