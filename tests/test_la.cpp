// Unit + property tests for src/la: vector kernels, dense GEMM variants,
// CSR sparse kernels, flop accounting, device model.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <cmath>

#include "la/dense_matrix.hpp"
#include "la/device.hpp"
#include "la/flops.hpp"
#include "la/sparse_matrix.hpp"
#include "la/vector_ops.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace nadmm::la {
namespace {

std::vector<double> random_vec(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (double& e : v) e = rng.normal();
  return v;
}

DenseMatrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  DenseMatrix m(r, c);
  for (double& e : m.data()) e = rng.normal();
  return m;
}

/// Naive O(mnk) reference GEMM.
DenseMatrix ref_gemm(const DenseMatrix& a, const DenseMatrix& b,
                     bool transpose_a) {
  const std::size_t m = transpose_a ? a.cols() : a.rows();
  const std::size_t k = transpose_a ? a.rows() : a.cols();
  DenseMatrix c(m, b.cols());
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t t = 0; t < k; ++t) {
        acc += (transpose_a ? a.at(t, i) : a.at(i, t)) * b.at(t, j);
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

// ------------------------------------------------------------ vector ops

TEST(VectorOps, AxpyMatchesManual) {
  std::vector<double> x{1, 2, 3}, y{4, 5, 6};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
}

TEST(VectorOps, AxpbyMatchesManual) {
  std::vector<double> x{1, 2}, y{10, 20};
  axpby(3.0, x, 0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 8.0);
  EXPECT_DOUBLE_EQ(y[1], 16.0);
}

TEST(VectorOps, DotAndNorms) {
  std::vector<double> x{3, 4};
  EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(nrm2(x), 5.0);
  EXPECT_DOUBLE_EQ(nrm2_sq(x), 25.0);
}

TEST(VectorOps, ScalCopyFill) {
  std::vector<double> x{1, 2, 3}, y(3);
  scal(-2.0, x);
  EXPECT_DOUBLE_EQ(x[1], -4.0);
  copy(x, y);
  EXPECT_EQ(x, y);
  fill(y, 7.0);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[2], 7.0);
}

TEST(VectorOps, Dist2AmaxSum) {
  std::vector<double> x{1, 1}, y{4, 5};
  EXPECT_DOUBLE_EQ(dist2(x, y), 5.0);
  std::vector<double> z{-3, 2};
  EXPECT_DOUBLE_EQ(amax(z), 3.0);
  EXPECT_DOUBLE_EQ(sum(z), -1.0);
  EXPECT_DOUBLE_EQ(amax(std::vector<double>{}), 0.0);
}

TEST(VectorOps, SizeMismatchThrows) {
  std::vector<double> x{1, 2}, y{1};
  EXPECT_THROW(axpy(1.0, x, y), InvalidArgument);
  EXPECT_THROW(static_cast<void>(dot(x, y)), InvalidArgument);
  EXPECT_THROW(static_cast<void>(dist2(x, y)), InvalidArgument);
}

TEST(VectorOps, LargeVectorsUseParallelPathCorrectly) {
  // Above the OpenMP threshold (1<<15) the parallel path must agree.
  const std::size_t n = (1 << 16) + 3;
  Rng rng(1);
  auto x = random_vec(n, rng);
  auto y = random_vec(n, rng);
  double expect_dot = 0.0;
  for (std::size_t i = 0; i < n; ++i) expect_dot += x[i] * y[i];
  EXPECT_NEAR(dot(x, y), expect_dot, std::abs(expect_dot) * 1e-10 + 1e-8);

  auto y2 = y;
  for (std::size_t i = 0; i < n; ++i) y2[i] += 1.5 * x[i];
  axpy(1.5, x, y);
  for (std::size_t i = 0; i < n; i += 999) EXPECT_DOUBLE_EQ(y[i], y2[i]);
}

// ------------------------------------------------------------ dense

TEST(DenseMatrix, ConstructionAndAccess) {
  DenseMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.at(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.row(1)[2], 5.0);
  m.fill(2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_NEAR(m.frobenius_norm(), 2.0 * std::sqrt(6.0), 1e-12);
}

TEST(DenseMatrix, AdoptBufferValidatesSize) {
  EXPECT_NO_THROW(DenseMatrix(2, 2, {1, 2, 3, 4}));
  EXPECT_THROW(DenseMatrix(2, 2, {1, 2, 3}), InvalidArgument);
}

TEST(Gemm, NnMatchesReference) {
  Rng rng(2);
  for (auto [m, k, n] : {std::array<std::size_t, 3>{5, 7, 3},
                         {64, 129, 9}, {1, 300, 1}, {257, 2, 8}}) {
    const auto a = random_matrix(m, k, rng);
    const auto b = random_matrix(k, n, rng);
    DenseMatrix c(m, n);
    gemm_nn(1.0, a, b, 0.0, c);
    const auto ref = ref_gemm(a, b, false);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(c.at(i, j), ref.at(i, j), 1e-9) << m << "x" << k << "x" << n;
      }
    }
  }
}

TEST(Gemm, TnMatchesReference) {
  Rng rng(3);
  for (auto [k, m, n] : {std::array<std::size_t, 3>{6, 4, 3},
                         {200, 33, 9}, {1, 5, 2}}) {
    const auto a = random_matrix(k, m, rng);  // k×m, used transposed
    const auto b = random_matrix(k, n, rng);
    DenseMatrix c(m, n);
    gemm_tn(1.0, a, b, 0.0, c);
    const auto ref = ref_gemm(a, b, true);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(c.at(i, j), ref.at(i, j), 1e-9);
      }
    }
  }
}

TEST(Gemm, AlphaBetaScaling) {
  Rng rng(4);
  const auto a = random_matrix(8, 6, rng);
  const auto b = random_matrix(6, 4, rng);
  DenseMatrix c(8, 4);
  c.fill(1.0);
  gemm_nn(2.0, a, b, 0.5, c);
  const auto ref = ref_gemm(a, b, false);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(c.at(i, j), 2.0 * ref.at(i, j) + 0.5, 1e-9);
    }
  }
}

TEST(Gemm, ShapeMismatchThrows) {
  DenseMatrix a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(gemm_nn(1.0, a, b, 0.0, c), InvalidArgument);
  EXPECT_THROW(gemm_tn(1.0, a, b, 0.0, c), InvalidArgument);
}

TEST(Gemv, BothOrientationsMatchReference) {
  Rng rng(5);
  const auto a = random_matrix(7, 5, rng);
  const auto x5 = random_vec(5, rng);
  const auto x7 = random_vec(7, rng);
  std::vector<double> y7(7, 1.0), y5(5, 1.0);
  gemv(2.0, a, x5, 1.0, y7);
  gemv_t(1.0, a, x7, 0.0, y5);
  for (std::size_t i = 0; i < 7; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < 5; ++j) acc += a.at(i, j) * x5[j];
    EXPECT_NEAR(y7[i], 2.0 * acc + 1.0, 1e-9);
  }
  for (std::size_t j = 0; j < 5; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < 7; ++i) acc += a.at(i, j) * x7[i];
    EXPECT_NEAR(y5[j], acc, 1e-9);
  }
}

// ------------------------------------------------------------ sparse

TEST(Csr, TripletConstructionSortsAndMergesDuplicates) {
  CsrMatrix m(3, 4, {{2, 1, 5.0}, {0, 3, 1.0}, {0, 3, 2.0}, {1, 0, -1.0}});
  EXPECT_EQ(m.nnz(), 3u);
  const auto d = m.to_dense();
  EXPECT_DOUBLE_EQ(d.at(0, 3), 3.0);  // merged duplicate
  EXPECT_DOUBLE_EQ(d.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(d.at(2, 1), 5.0);
  EXPECT_DOUBLE_EQ(d.at(0, 0), 0.0);
}

TEST(Csr, OutOfRangeTripletThrows) {
  EXPECT_THROW(CsrMatrix(2, 2, {{2, 0, 1.0}}), InvalidArgument);
  EXPECT_THROW(CsrMatrix(2, 2, {{0, 2, 1.0}}), InvalidArgument);
}

TEST(Csr, RawConstructionValidation) {
  EXPECT_NO_THROW(CsrMatrix(2, 3, {0, 1, 2}, {1, 2}, {5.0, 6.0}));
  // row_ptr wrong length
  EXPECT_THROW(CsrMatrix(2, 3, {0, 1}, {1}, {5.0}), InvalidArgument);
  // non-monotone row_ptr
  EXPECT_THROW(CsrMatrix(2, 3, {0, 2, 1}, {0, 1}, {1.0, 2.0}),
               InvalidArgument);
  // column out of range
  EXPECT_THROW(CsrMatrix(2, 3, {0, 1, 2}, {1, 3}, {5.0, 6.0}),
               InvalidArgument);
}

TEST(Csr, Density) {
  CsrMatrix m(2, 4, {{0, 0, 1.0}, {1, 3, 1.0}});
  EXPECT_DOUBLE_EQ(m.density(), 0.25);
  EXPECT_DOUBLE_EQ(CsrMatrix().density(), 0.0);
}

TEST(Csr, RowSlicePreservesContent) {
  CsrMatrix m(4, 3, {{0, 0, 1.0}, {1, 1, 2.0}, {2, 2, 3.0}, {3, 0, 4.0}});
  const auto s = m.row_slice(1, 3);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.cols(), 3u);
  const auto d = s.to_dense();
  EXPECT_DOUBLE_EQ(d.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(d.at(1, 2), 3.0);
  EXPECT_THROW(m.row_slice(3, 2), InvalidArgument);
}

/// Random sparse matrix with ~density fraction of nonzeros.
CsrMatrix random_csr(std::size_t r, std::size_t c, double density, Rng& rng) {
  std::vector<Triplet> t;
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      if (rng.bernoulli(density)) t.push_back({i, j, rng.normal()});
    }
  }
  return CsrMatrix(r, c, std::move(t));
}

TEST(Csr, SpmmNnMatchesDense) {
  Rng rng(6);
  const auto a = random_csr(40, 30, 0.1, rng);
  const auto b = random_matrix(30, 7, rng);
  DenseMatrix c(40, 7), c_ref(40, 7);
  spmm_nn(1.0, a, b, 0.0, c);
  gemm_nn(1.0, a.to_dense(), b, 0.0, c_ref);
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t j = 0; j < 7; ++j) {
      EXPECT_NEAR(c.at(i, j), c_ref.at(i, j), 1e-10);
    }
  }
}

TEST(Csr, SpmmTnMatchesDense) {
  Rng rng(7);
  const auto a = random_csr(50, 20, 0.15, rng);
  const auto b = random_matrix(50, 5, rng);
  DenseMatrix c(20, 5), c_ref(20, 5);
  spmm_tn(1.0, a, b, 0.0, c);
  gemm_tn(1.0, a.to_dense(), b, 0.0, c_ref);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(c.at(i, j), c_ref.at(i, j), 1e-10);
    }
  }
}

TEST(Csr, SpmmBetaAccumulates) {
  Rng rng(8);
  const auto a = random_csr(10, 10, 0.3, rng);
  const auto b = random_matrix(10, 3, rng);
  DenseMatrix c(10, 3), base(10, 3);
  base.fill(2.0);
  c.fill(2.0);
  spmm_nn(1.5, a, b, 1.0, c);
  DenseMatrix expected(10, 3);
  gemm_nn(1.5, a.to_dense(), b, 0.0, expected);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(c.at(i, j), expected.at(i, j) + 2.0, 1e-10);
    }
  }
}

TEST(Csr, SpmvMatchesDense) {
  Rng rng(9);
  const auto a = random_csr(25, 18, 0.2, rng);
  const auto x = random_vec(18, rng);
  std::vector<double> y(25, 0.0), y_ref(25, 0.0);
  spmv(1.0, a, x, 0.0, y);
  gemv(1.0, a.to_dense(), x, 0.0, y_ref);
  for (std::size_t i = 0; i < 25; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-10);
}

// ------------------------------------------------- transposed (CSC) view

/// Pin the OpenMP thread count for a scope (no-op without OpenMP).
class ThreadGuard {
 public:
  explicit ThreadGuard(int threads) {
#ifdef _OPENMP
    prev_ = omp_get_max_threads();
    omp_set_num_threads(threads);
#else
    static_cast<void>(threads);
#endif
  }
  ~ThreadGuard() {
#ifdef _OPENMP
    omp_set_num_threads(prev_);
#endif
  }

 private:
  int prev_ = 1;
};

TEST(Csr, ParallelTransposeBuildMatchesSequentialBytes) {
  Rng rng(77);
  std::vector<CsrMatrix> mats;
  mats.emplace_back();                                 // empty, no rows
  mats.emplace_back(CsrMatrix(5, 400, {}));            // empty, wide
  mats.push_back(random_csr(60, 800, 0.01, rng));      // wide shard shape
  mats.push_back(random_csr(400, 3000, 0.04, rng));    // E18-shaped
  mats.push_back(random_csr(500, 40, 0.3, rng));       // tall, denser
  {
    // Skewed: a few heavy rows so nnz-balanced blocks cut unevenly.
    std::vector<Triplet> t;
    for (std::size_t j = 0; j < 200; ++j) t.push_back({0, j, rng.normal()});
    for (std::size_t j = 0; j < 200; ++j) t.push_back({63, j, rng.normal()});
    for (std::size_t i = 0; i < 64; ++i) t.push_back({i, i, 1.0 + double(i)});
    mats.emplace_back(64, 200, std::move(t));
  }
  for (const auto& m : mats) {
    const auto seq = detail::build_transposed(m.rows(), m.cols(), m.row_ptr(),
                                              m.col_idx(), m.values(), false);
    for (const int threads : {1, 2, 3, 8}) {
      ThreadGuard guard(threads);
      const auto par = detail::build_transposed(
          m.rows(), m.cols(), m.row_ptr(), m.col_idx(), m.values(), true);
      ASSERT_EQ(par.col_ptr, seq.col_ptr) << m.rows() << "x" << m.cols()
                                          << " t=" << threads;
      ASSERT_EQ(par.row_idx, seq.row_idx) << m.rows() << "x" << m.cols()
                                          << " t=" << threads;
      ASSERT_EQ(par.values.size(), seq.values.size());
      for (std::size_t e = 0; e < par.values.size(); ++e) {
        ASSERT_EQ(par.values[e], seq.values[e]) << "t=" << threads;
      }
    }
  }
}

TEST(Csr, TransposedCacheRebuildsAfterValueMutation) {
  Rng rng(78);
  auto m = random_csr(30, 50, 0.2, rng);
  const auto before = m.transposed();  // materialize, then copy out
  ASSERT_FALSE(before.values.empty());

  // Regression: mutating values after the CSC view exists used to leave
  // the cache silently stale forever (single-shot laziness).
  auto vals = m.values_mut();
  for (double& v : vals) v *= 2.0;
  const CsrTransposed& after = m.transposed();
  ASSERT_EQ(after.col_ptr, before.col_ptr);
  ASSERT_EQ(after.row_idx, before.row_idx);
  for (std::size_t e = 0; e < after.values.size(); ++e) {
    ASSERT_EQ(after.values[e], 2.0 * before.values[e]) << e;
  }
}

TEST(Csr, CopiesKeepTheirOwnTransposeCacheAcrossMutation) {
  Rng rng(79);
  auto m = random_csr(20, 30, 0.2, rng);
  static_cast<void>(m.transposed());
  const CsrMatrix copy = m;  // shares the already-built cache
  const double old0 = copy.transposed().values[0];

  m.values_mut()[0] = 1234.5;
  // The mutated matrix rebuilds; the copy keeps the cache that is
  // consistent with its own (deep-copied, unmutated) values.
  const std::size_t hot = static_cast<std::size_t>(
      std::find(m.transposed().values.begin(), m.transposed().values.end(),
                1234.5) -
      m.transposed().values.begin());
  ASSERT_LT(hot, m.transposed().values.size());
  EXPECT_EQ(copy.transposed().values[0], old0);
  EXPECT_NE(copy.transposed().values[hot], 1234.5);
}

// ------------------------------------------------------------ flops/device

TEST(Flops, KernelsCreditExpectedCounts) {
  flops::reset();
  std::vector<double> x(100, 1.0), y(100, 2.0);
  axpy(1.0, x, y);
  EXPECT_EQ(flops::read(), 200u);
  (void)dot(x, y);
  EXPECT_EQ(flops::read(), 400u);
  flops::Scope scope;
  (void)sum(x);
  EXPECT_EQ(scope.elapsed(), 100u);
}

TEST(Flops, GemmCountsTwoMNK) {
  flops::reset();
  DenseMatrix a(4, 5), b(5, 6), c(4, 6);
  gemm_nn(1.0, a, b, 0.0, c);
  EXPECT_EQ(flops::read(), 2u * 4 * 5 * 6);
}

TEST(Device, ConvertsFlopsToSeconds) {
  const DeviceModel d{"x", 10.0};  // 10 GF/s
  EXPECT_DOUBLE_EQ(d.seconds_for_flops(10'000'000'000ULL), 1.0);
  EXPECT_DOUBLE_EQ(d.seconds_for_flops(0), 0.0);
}

TEST(Device, RooflineTakesSlowerOfFlopAndByteTerms) {
  const DeviceModel d{"x", 10.0, 2.0};  // 10 GF/s, 2 GB/s
  // Flop-bound: 1 s of flops vs 0.5 s of traffic.
  EXPECT_DOUBLE_EQ(d.seconds_for(10'000'000'000ULL, 1'000'000'000ULL), 1.0);
  // Bandwidth-bound: 0.1 s of flops vs 5 s of traffic.
  EXPECT_DOUBLE_EQ(d.seconds_for(1'000'000'000ULL, 10'000'000'000ULL), 5.0);
  EXPECT_DOUBLE_EQ(d.balance(), 5.0);  // flops/byte
  // No bandwidth rating: flop-only pricing, balance undefined (0).
  const DeviceModel flat{"x", 10.0};
  EXPECT_DOUBLE_EQ(flat.seconds_for(1'000'000'000ULL, 1ULL << 40), 0.1);
  EXPECT_DOUBLE_EQ(flat.balance(), 0.0);
}

TEST(Device, PresetsAndParsing) {
  EXPECT_EQ(device_from_string("p100").name, "p100");
  EXPECT_EQ(device_from_string("cpu").name, "cpu");
  EXPECT_GT(device_from_string("p100").gbytes_per_s, 0.0);
  EXPECT_DOUBLE_EQ(device_from_string("123.5").gflops, 123.5);
  EXPECT_DOUBLE_EQ(device_from_string("123.5").gbytes_per_s, 0.0);
  const auto custom = device_from_string("3000:550");
  EXPECT_DOUBLE_EQ(custom.gflops, 3000.0);
  EXPECT_DOUBLE_EQ(custom.gbytes_per_s, 550.0);
  EXPECT_THROW(device_from_string("bogus"), InvalidArgument);
  EXPECT_THROW(device_from_string("-3"), InvalidArgument);
  EXPECT_THROW(device_from_string("100:"), InvalidArgument);
  EXPECT_THROW(device_from_string("100:-5"), InvalidArgument);
  EXPECT_THROW(device_from_string("100x5"), InvalidArgument);
}

}  // namespace
}  // namespace nadmm::la
