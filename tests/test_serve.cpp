// Tests for the serving plane (src/serve/*): quantile-sketch accuracy
// against exact percentiles, arrival-schedule determinism, batch-policy
// edge cases through the simulator (empty stream, bursts larger than
// the batch cap, deadline expiry), model save/load round trips, and
// byte-identical serving sweeps at any --jobs level.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "runner/harness.hpp"
#include "runner/sweep.hpp"
#include "serve/arrival.hpp"
#include "serve/batching.hpp"
#include "serve/model_io.hpp"
#include "serve/quantile.hpp"
#include "serve/server.hpp"
#include "support/check.hpp"

namespace nadmm::serve {
namespace {

// ------------------------------------------------------- quantile sketch

/// Deterministic pseudo-random latencies (no std::rand in tests).
std::vector<double> synthetic_latencies(std::size_t n) {
  std::vector<double> v;
  v.reserve(n);
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < n; ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    // Spread over ~4 decades, [1e-5, 1e-1): latency-shaped.
    const double u = static_cast<double>(s >> 11) / 9007199254740992.0;
    v.push_back(1e-5 * std::pow(10.0, 4.0 * u));
  }
  return v;
}

double exact_quantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

TEST(QuantileSketch, TracksExactPercentilesWithinRelativeError) {
  const auto values = synthetic_latencies(20'000);
  QuantileSketch sketch(0.01);
  for (const double v : values) sketch.add(v);
  EXPECT_EQ(sketch.count(), values.size());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = exact_quantile(values, q);
    const double approx = sketch.quantile(q);
    // ε = 1% sketch; allow 3% for the exact-index rounding at the tail.
    EXPECT_NEAR(approx, exact, 0.03 * exact) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(sketch.min(),
                   *std::min_element(values.begin(), values.end()));
  EXPECT_DOUBLE_EQ(sketch.max(),
                   *std::max_element(values.begin(), values.end()));
  EXPECT_NEAR(sketch.mean(), sketch.sum() / static_cast<double>(sketch.count()),
              1e-12);
}

TEST(QuantileSketch, IsInsertionOrderIndependent) {
  auto values = synthetic_latencies(5'000);
  QuantileSketch forward;
  for (const double v : values) forward.add(v);
  std::reverse(values.begin(), values.end());
  QuantileSketch reversed;
  for (const double v : values) reversed.add(v);
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(forward.quantile(q), reversed.quantile(q)) << q;
  }
}

TEST(QuantileSketch, EdgesAndErrors) {
  QuantileSketch sketch;
  EXPECT_THROW(static_cast<void>(sketch.quantile(0.5)), InvalidArgument);
  sketch.add(0.0);  // at/below the floor: shares the resolution bucket
  sketch.add(42.0);
  EXPECT_DOUBLE_EQ(sketch.min(), 0.0);
  EXPECT_LE(sketch.quantile(0.0), 1e-9);  // floor-bucket resolution
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 42.0);
  EXPECT_THROW(sketch.add(-1.0), InvalidArgument);
}

TEST(QuantileSketch, MergeOfSketchesEqualsSketchOfConcatenation) {
  // The bucket state is a pure function of the value multiset, so
  // merging per-rank sketches must be indistinguishable from one sketch
  // that saw every sample — exactly, not just within ε.
  const auto all = synthetic_latencies(8'000);
  QuantileSketch left, right, combined;
  for (std::size_t i = 0; i < all.size(); ++i) {
    (i < all.size() / 3 ? left : right).add(all[i]);
    combined.add(all[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_DOUBLE_EQ(left.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(left.min(), combined.min());
  EXPECT_DOUBLE_EQ(left.max(), combined.max());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(left.quantile(q), combined.quantile(q)) << "q=" << q;
  }
}

TEST(QuantileSketch, MergeWithEmptySketchIsIdentityBothWays) {
  QuantileSketch filled, empty;
  filled.add(0.5);
  filled.add(2.0);

  QuantileSketch a = filled;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), filled.quantile(0.5));
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 2.0);

  QuantileSketch b;  // empty absorbs filled
  b.merge(filled);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.min(), 0.5);
  EXPECT_DOUBLE_EQ(b.max(), 2.0);
  EXPECT_DOUBLE_EQ(b.quantile(1.0), 2.0);

  QuantileSketch c;
  c.merge(QuantileSketch());  // empty ∪ empty stays empty
  EXPECT_EQ(c.count(), 0u);
  EXPECT_THROW(static_cast<void>(c.quantile(0.5)), InvalidArgument);
}

TEST(QuantileSketch, MergeSingleSampleMatchesDirectInsert) {
  QuantileSketch single;
  single.add(3.25);
  QuantileSketch target;
  target.add(1.0);
  target.merge(single);

  QuantileSketch direct;
  direct.add(1.0);
  direct.add(3.25);
  EXPECT_EQ(target.count(), direct.count());
  for (const double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(target.quantile(q), direct.quantile(q)) << "q=" << q;
  }
}

TEST(QuantileSketch, MergeRejectsMismatchedResolution) {
  QuantileSketch fine(0.01), coarse(0.1);
  fine.add(1.0);
  coarse.add(1.0);
  EXPECT_THROW(fine.merge(coarse), InvalidArgument);
}

// ------------------------------------------------------ arrival streams

TEST(ArrivalStreams, SameSeedIsBitIdenticalAcrossModels) {
  for (const char* spec :
       {"poisson:800", "diurnal:1000:0.8:0.5", "bursty:400:4000:0.5:0.2"}) {
    const auto model = make_arrival(spec);
    const auto a = make_request_stream(*model, 500, 64, 7);
    const auto b = make_request_stream(*model, 500, 64, 7);
    ASSERT_EQ(a.size(), b.size()) << spec;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].row, b[i].row);
      EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s) << spec << " @" << i;
    }
    const auto c = make_request_stream(*model, 500, 64, 8);
    bool differs = false;
    for (std::size_t i = 0; i < c.size() && !differs; ++i) {
      differs = a[i].arrival_s != c[i].arrival_s || a[i].row != c[i].row;
    }
    EXPECT_TRUE(differs) << spec << ": seed must matter";
  }
}

TEST(ArrivalStreams, SchedulesAreNonDecreasingAndInPool) {
  const auto model = make_arrival("bursty");
  const auto stream = make_request_stream(*model, 1'000, 17, 42);
  ASSERT_EQ(stream.size(), 1'000u);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].id, i);
    EXPECT_LT(stream[i].row, 17u);
    if (i > 0) {
      EXPECT_GE(stream[i].arrival_s, stream[i - 1].arrival_s);
    }
  }
}

TEST(ArrivalStreams, FactoryValidatesSpecs) {
  EXPECT_EQ(make_arrival("poisson")->name(), "poisson:1000");
  EXPECT_NEAR(make_arrival("diurnal:100:0.5:2")->mean_rate(), 100.0, 1e-12);
  for (const char* bad :
       {"", "bogus", "poisson:0", "poisson:-5", "poisson:abc",
        "diurnal:1000:1.5", "bursty:400:100:0.5:0.2", "bursty:400:4000:0:0.2",
        "bursty:400:4000:0.5:1.5"}) {
    EXPECT_THROW(static_cast<void>(make_arrival(bad)), InvalidArgument) << bad;
  }
}

TEST(BatchPolicies, FactoryValidatesSpecs) {
  EXPECT_EQ(make_batch_policy("immediate")->max_batch(), 1u);
  EXPECT_EQ(make_batch_policy("size:32")->max_batch(), 32u);
  const auto deadline = make_batch_policy("deadline:16:0.005");
  EXPECT_EQ(deadline->max_batch(), 16u);
  EXPECT_DOUBLE_EQ(deadline->max_delay(), 0.005);
  EXPECT_FALSE(deadline->ready(15));
  EXPECT_TRUE(deadline->ready(16));
  for (const char* bad :
       {"", "sized:4", "size:0", "size:-2", "deadline:16", "deadline:0:0.01",
        "deadline:16:-1"}) {
    EXPECT_THROW(static_cast<void>(make_batch_policy(bad)), InvalidArgument)
        << bad;
  }
}

// ----------------------------------------------------------- simulator

/// Tiny blobs pool + an untrained (zero) softmax model: the simulator
/// exercises scheduling/batching/latency, not model quality.
struct Fixture {
  data::TrainTest tt;
  SavedModel model;
};

Fixture tiny_fixture() {
  runner::ExperimentConfig c;
  c.dataset = "blobs";
  c.n_train = 60;
  c.n_test = 40;
  c.e18_features = 8;
  Fixture f{runner::make_data(c), {}};
  f.model.objective = "softmax";
  f.model.num_features = f.tt.test.num_features();
  f.model.num_classes = f.tt.test.num_classes();
  f.model.x.assign(f.model.num_features * f.model.coef_cols(), 0.01);
  return f;
}

ServeConfig tiny_serve() {
  ServeConfig c;
  c.requests = 400;
  c.network = "ideal";
  c.omp_threads = 1;
  return c;
}

TEST(ServeSimulator, EmptyStreamYieldsZeroedReport) {
  const auto f = tiny_fixture();
  auto config = tiny_serve();
  config.requests = 0;
  const auto r = simulate(f.model, f.tt.test, config);
  EXPECT_EQ(r.requests, 0u);
  EXPECT_EQ(r.batches, 0u);
  EXPECT_DOUBLE_EQ(r.throughput_rps, 0.0);
  EXPECT_DOUBLE_EQ(r.p99_latency_s, 0.0);
}

TEST(ServeSimulator, ImmediateDispatchesEveryRequestAlone) {
  const auto f = tiny_fixture();
  auto config = tiny_serve();
  config.arrival = "poisson:200";
  config.batch = "immediate";
  const auto r = simulate(f.model, f.tt.test, config);
  EXPECT_EQ(r.requests, 400u);
  EXPECT_EQ(r.batches, 400u);
  EXPECT_EQ(r.max_batch_seen, 1u);
  EXPECT_EQ(r.deadline_flushes, 0u);
  EXPECT_GT(r.throughput_rps, 0.0);
  EXPECT_GE(r.p99_latency_s, r.p50_latency_s);
  EXPECT_GE(r.p999_latency_s, r.p99_latency_s);
  EXPECT_GE(r.max_latency_s, r.p999_latency_s);
}

TEST(ServeSimulator, BurstLargerThanCapSplitsAtMaxBatch) {
  const auto f = tiny_fixture();
  auto config = tiny_serve();
  // Bursts of ~4000 req/s against an 8-cap: queues exceed the cap, so
  // the server must split — never gathering more than max_batch rows.
  config.arrival = "bursty:50:4000:0.25:0.5";
  config.batch = "size:8";
  const auto r = simulate(f.model, f.tt.test, config);
  EXPECT_EQ(r.requests, 400u);
  EXPECT_LE(r.max_batch_seen, 8u);
  EXPECT_GE(r.batches, 400u / 8);
  EXPECT_GT(r.mean_batch, 1.0);
}

TEST(ServeSimulator, DeadlineExpiryFlushesInFlightRequests) {
  const auto f = tiny_fixture();
  auto config = tiny_serve();
  // Sparse traffic against a large cap: the 64-batch never fills, so
  // every dispatch is a deadline flush — and none may be lost.
  config.arrival = "poisson:50";
  config.batch = "deadline:64:0.002";
  const auto r = simulate(f.model, f.tt.test, config);
  EXPECT_EQ(r.requests, 400u);
  EXPECT_GT(r.deadline_flushes, 0u);
  // Tail stays near the deadline: queue wait <= 2ms plus service time.
  EXPECT_LT(r.p99_latency_s, 0.01);
}

TEST(ServeSimulator, RerunsAreBitIdentical) {
  const auto f = tiny_fixture();
  auto config = tiny_serve();
  config.arrival = "bursty:100:2000:0.5:0.2";
  config.batch = "deadline:16:0.005";
  const auto a = simulate(f.model, f.tt.test, config);
  const auto b = simulate(f.model, f.tt.test, config);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.deadline_flushes, b.deadline_flushes);
  EXPECT_DOUBLE_EQ(a.total_sim_seconds, b.total_sim_seconds);
  EXPECT_DOUBLE_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_DOUBLE_EQ(a.p50_latency_s, b.p50_latency_s);
  EXPECT_DOUBLE_EQ(a.p99_latency_s, b.p99_latency_s);
  EXPECT_DOUBLE_EQ(a.p999_latency_s, b.p999_latency_s);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
}

TEST(ServeSimulator, RejectsMismatchedPool) {
  const auto f = tiny_fixture();
  auto model = f.model;
  model.num_features += 1;
  model.x.assign(model.num_features * model.coef_cols(), 0.0);
  EXPECT_THROW(static_cast<void>(simulate(model, f.tt.test, tiny_serve())),
               InvalidArgument);
}

// ------------------------------------------------------------ model I/O

TEST(ModelIo, RoundTripsExactly) {
  SavedModel m;
  m.objective = "softmax";
  m.solver = "newton-admm";
  m.dataset = "blobs";
  m.num_features = 3;
  m.num_classes = 4;
  m.lambda = 1e-5;
  m.x = {0.125, -2.5, 3.0e-17, 1.0 / 3.0, -0.0, 5.0, 6.25, -7.125, 8.0};
  const std::string path = "test_model_roundtrip.txt";
  save_model(m, path);
  const auto loaded = load_model(path);
  EXPECT_EQ(loaded.objective, m.objective);
  EXPECT_EQ(loaded.solver, m.solver);
  EXPECT_EQ(loaded.dataset, m.dataset);
  EXPECT_EQ(loaded.num_features, m.num_features);
  EXPECT_EQ(loaded.num_classes, m.num_classes);
  EXPECT_DOUBLE_EQ(loaded.lambda, m.lambda);
  ASSERT_EQ(loaded.x.size(), m.x.size());
  for (std::size_t i = 0; i < m.x.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.x[i], m.x[i]) << i;  // %.17g: bit-exact
  }
  std::filesystem::remove(path);
}

TEST(ModelIo, RejectsMissingAndCorruptFiles) {
  EXPECT_THROW(static_cast<void>(load_model("no-such-model.txt")),
               RuntimeError);
  const std::string path = "test_model_corrupt.txt";
  {
    std::ofstream out(path);
    out << "nadmm-model v1\nobjective softmax\nsolver -\ndataset -\n"
           "features 2\nclasses 2\nlambda 0\ncoefficients 2\n1.0\n";
    // truncated: coefficient count promised 2, only 1 present, no `end`
  }
  try {
    static_cast<void>(load_model(path));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "loader errors must name the file";
  }
  std::filesystem::remove(path);
}

// ----------------------------------------------------- serving sweeps

TEST(ServingSweep, ReportIsByteIdenticalAcrossJobs) {
  runner::SweepSpec spec;
  spec.mode = "serving";
  spec.solvers = {"newton-admm"};
  spec.datasets = {"blobs"};
  spec.workers = {2};
  spec.arrivals = {"poisson:500", "bursty:100:2000:0.5:0.2"};
  spec.batch_policies = {"immediate", "deadline:8:0.01"};
  spec.serve_requests = 200;
  spec.base.n_train = 120;
  spec.base.n_test = 40;
  spec.base.e18_features = 8;
  spec.base.iterations = 2;
  ASSERT_EQ(runner::expand_scenarios(spec).size(), 4u);

  runner::SweepOptions serial;
  serial.jobs = 1;
  runner::SweepOptions threaded;
  threaded.jobs = 2;
  const auto a = runner::run_sweep(spec, serial);
  const auto b = runner::run_sweep(spec, threaded);
  ASSERT_EQ(a.failures(), 0u) << a.outcomes.front().error;
  const auto rows_a = a.csv_rows();
  const auto rows_b = b.csv_rows();
  ASSERT_EQ(rows_a.size(), rows_b.size());
  for (std::size_t i = 0; i < rows_a.size(); ++i) {
    EXPECT_EQ(rows_a[i], rows_b[i]) << "row " << i;
  }
  // Serving rows carry the serving columns (non-zero throughput).
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_TRUE(a.outcomes[i].scenario.serving);
    EXPECT_EQ(a.outcomes[i].serve_requests, 200u);
    EXPECT_GT(a.outcomes[i].throughput_rps, 0.0);
  }
}

}  // namespace
}  // namespace nadmm::serve
