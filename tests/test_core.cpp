// Tests for src/core: penalty policies, the Newton-ADMM driver
// (consensus convergence to the single-node optimum, fixed-point
// invariants, trace integrity — parameterized over rank counts and
// penalty rules), and the high-precision reference solver.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/cluster.hpp"
#include "core/newton_admm.hpp"
#include "core/penalty.hpp"
#include "core/reference.hpp"
#include "data/generators.hpp"
#include "la/vector_ops.hpp"
#include "model/softmax.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace nadmm::core {
namespace {

/// Contiguous zero-copy shards sized to the cluster — the explicit form
/// of what the deprecated (train, test) solver overloads did implicitly.
nadmm::data::ShardedDataset shards(const nadmm::comm::SimCluster& cluster,
                                   const nadmm::data::Dataset& train,
                                   const nadmm::data::Dataset* test) {
  nadmm::data::ShardPlan plan;
  plan.parts = cluster.size();
  return nadmm::data::make_sharded(train, test, plan);
}

comm::SimCluster test_cluster(int n) {
  return comm::SimCluster(n, la::DeviceModel{"test", 100.0},
                          comm::infiniband_100g());
}

// ------------------------------------------------------------ penalty

TEST(Penalty, RuleParsingRoundTrip) {
  EXPECT_EQ(penalty_rule_from_string("fixed"), PenaltyRule::kFixed);
  EXPECT_EQ(penalty_rule_from_string("rb"), PenaltyRule::kResidualBalancing);
  EXPECT_EQ(penalty_rule_from_string("sps"), PenaltyRule::kSpectral);
  EXPECT_EQ(penalty_rule_from_string("spectral"), PenaltyRule::kSpectral);
  EXPECT_THROW(penalty_rule_from_string("??"), InvalidArgument);
  EXPECT_EQ(to_string(PenaltyRule::kSpectral), "sps");
}

TEST(Penalty, FixedNeverChanges) {
  PenaltyOptions opts;
  opts.rule = PenaltyRule::kFixed;
  opts.rho0 = 2.0;
  PenaltyController pc(opts, 4);
  std::vector<double> a(4, 1.0), b(4, 2.0), c(4, 0.5), d(4, 0.0);
  for (int k = 0; k < 10; ++k) pc.observe(k, a, b, c, d, d);
  EXPECT_DOUBLE_EQ(pc.rho(), 2.0);
}

TEST(Penalty, ResidualBalancingIncreasesRhoOnLargePrimal) {
  PenaltyOptions opts;
  opts.rule = PenaltyRule::kResidualBalancing;
  opts.rho0 = 1.0;
  PenaltyController pc(opts, 3);
  // x far from z (huge primal residual), z static (zero dual residual).
  std::vector<double> x(3, 100.0), z(3, 0.0), z_prev(3, 0.0), y(3, 0.0);
  pc.observe(0, x, z, z_prev, y, y);
  EXPECT_DOUBLE_EQ(pc.rho(), 2.0);  // ×rb_factor
  pc.observe(1, x, z, z_prev, y, y);
  EXPECT_DOUBLE_EQ(pc.rho(), 4.0);
}

TEST(Penalty, ResidualBalancingDecreasesRhoOnLargeDual) {
  PenaltyOptions opts;
  opts.rule = PenaltyRule::kResidualBalancing;
  opts.rho0 = 8.0;
  PenaltyController pc(opts, 3);
  // x equals z (zero primal), z moved a lot (large dual residual).
  std::vector<double> x(3, 5.0), z(3, 5.0), z_prev(3, 0.0), y(3, 0.0);
  pc.observe(0, x, z, z_prev, y, y);
  EXPECT_DOUBLE_EQ(pc.rho(), 4.0);
}

TEST(Penalty, ResidualBalancingRespectsBounds) {
  PenaltyOptions opts;
  opts.rule = PenaltyRule::kResidualBalancing;
  opts.rho0 = 1.0;
  opts.rho_max = 4.0;
  PenaltyController pc(opts, 2);
  std::vector<double> x(2, 100.0), z(2, 0.0), zp(2, 0.0), y(2, 0.0);
  for (int k = 0; k < 10; ++k) pc.observe(k, x, z, zp, y, y);
  EXPECT_LE(pc.rho(), 4.0);
}

TEST(Penalty, SpectralEstimatesQuadraticCurvature) {
  // For f(x) = (a/2)‖x‖², the dual ĥ tracks ∇f(x) = a·x, so the spectral
  // stepsize from (Δĥ, Δx) should recover ≈ a.
  PenaltyOptions opts;
  opts.rule = PenaltyRule::kSpectral;
  opts.rho0 = 1.0;
  opts.sps_period = 1;
  PenaltyController pc(opts, 4);
  const double a = 3.0;
  Rng rng(5);
  std::vector<double> x(4), yhat(4), z(4), y(4);
  for (int k = 0; k < 12; ++k) {
    for (std::size_t j = 0; j < 4; ++j) {
      x[j] = rng.normal();
      yhat[j] = a * x[j];      // ∇f(x) for the quadratic
      z[j] = rng.normal();
      y[j] = a * z[j];         // consensus side with the same curvature
    }
    pc.observe(k, x, z, z, y, yhat);
  }
  EXPECT_NEAR(pc.rho(), a, 0.5);
}

TEST(Penalty, SpectralKeepsRhoFiniteOnUncorrelatedPairs) {
  PenaltyOptions opts;
  opts.rule = PenaltyRule::kSpectral;
  opts.rho0 = 1.5;
  opts.sps_period = 1;
  PenaltyController pc(opts, 8);
  Rng rng(6);
  std::vector<double> x(8), yhat(8), z(8), y(8);
  // Pure noise: correlations hover near zero, so rho stays positive and
  // finite (it may move when noise correlates above eps_cor by chance).
  for (int k = 0; k < 5; ++k) {
    for (std::size_t j = 0; j < 8; ++j) {
      x[j] = rng.normal();
      yhat[j] = rng.normal();
      z[j] = rng.normal();
      y[j] = rng.normal();
    }
    pc.observe(k, x, z, z, y, yhat);
  }
  EXPECT_GT(pc.rho(), 0.0);
  EXPECT_TRUE(std::isfinite(pc.rho()));
}

TEST(Penalty, ValidatesOptions) {
  PenaltyOptions opts;
  opts.rho0 = 0.0;
  EXPECT_THROW(PenaltyController(opts, 3), InvalidArgument);
  opts = PenaltyOptions{};
  opts.sps_period = 0;
  EXPECT_THROW(PenaltyController(opts, 3), InvalidArgument);
}

// ------------------------------------------------------------ reference

TEST(Reference, ReachesTightGradientNorm) {
  auto tt = data::make_blobs(200, 50, 8, 4, 3.0, 1.0, 7);
  const auto ref = solve_reference(tt.train, 1e-3);
  EXPECT_TRUE(ref.converged);
  model::SoftmaxObjective obj(tt.train, 1e-3);
  std::vector<double> g(obj.dim());
  obj.gradient(ref.x, g);
  EXPECT_LT(la::nrm2(g), 1e-8);
}

// ------------------------------------------------------------ newton-admm

struct AdmmCase {
  int ranks;
  PenaltyRule rule;
};

class AdmmSweep : public testing::TestWithParam<AdmmCase> {};

TEST_P(AdmmSweep, ConvergesToSingleNodeOptimum) {
  const auto c = GetParam();
  auto tt = data::make_blobs(600, 150, 10, 4, 3.0, 1.0, 8);
  const double lambda = 1e-3;
  const auto ref = solve_reference(tt.train, lambda);

  auto cluster = test_cluster(c.ranks);
  NewtonAdmmOptions opts;
  opts.max_iterations = 60;
  opts.lambda = lambda;
  opts.penalty.rule = c.rule;
  const auto result = newton_admm(cluster, shards(cluster, tt.train, &tt.test), opts);

  // Paper Fig. 3 criterion: relative objective θ < 0.05.
  const double theta =
      (result.final_objective - ref.objective) / std::abs(ref.objective);
  EXPECT_LT(theta, 0.05) << "ranks=" << c.ranks
                         << " rule=" << to_string(c.rule);
  EXPECT_EQ(result.solver, "newton-admm");
  EXPECT_EQ(static_cast<int>(result.trace.size()), result.iterations);
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndRules, AdmmSweep,
    testing::Values(AdmmCase{1, PenaltyRule::kSpectral},
                    AdmmCase{2, PenaltyRule::kSpectral},
                    AdmmCase{4, PenaltyRule::kSpectral},
                    AdmmCase{8, PenaltyRule::kSpectral},
                    AdmmCase{4, PenaltyRule::kFixed},
                    AdmmCase{4, PenaltyRule::kResidualBalancing}));

TEST(NewtonAdmm, PrimalResidualShrinks) {
  auto tt = data::make_blobs(400, 100, 8, 3, 3.0, 1.0, 9);
  auto cluster = test_cluster(4);
  NewtonAdmmOptions opts;
  opts.max_iterations = 50;
  opts.lambda = 1e-3;
  const auto r = newton_admm(cluster, shards(cluster, tt.train, nullptr), opts);
  ASSERT_GE(r.trace.size(), 10u);
  const double early = r.trace[2].primal_residual;
  const double late = r.trace.back().primal_residual;
  EXPECT_LT(late, 0.2 * early);
}

TEST(NewtonAdmm, ConsensusSatisfiesGlobalStationarity) {
  // Fixed-point invariant (DESIGN.md §5): Σ∇f_i(z) + λz ≈ 0 at the end.
  auto tt = data::make_blobs(500, 50, 8, 4, 3.0, 1.0, 10);
  auto cluster = test_cluster(4);
  NewtonAdmmOptions opts;
  opts.max_iterations = 120;
  opts.lambda = 1e-2;
  const auto r = newton_admm(cluster, shards(cluster, tt.train, nullptr), opts);
  model::SoftmaxObjective full(tt.train, 1e-2);
  std::vector<double> g(full.dim());
  full.gradient(r.x, g);
  // Compare to the gradient magnitude at the start (z = 0).
  std::vector<double> g0(full.dim());
  full.gradient(std::vector<double>(full.dim(), 0.0), g0);
  EXPECT_LT(la::nrm2(g), 1e-3 * la::nrm2(g0));
}

TEST(NewtonAdmm, TraceTimingFieldsAreSane) {
  auto tt = data::make_blobs(300, 60, 6, 3, 3.0, 1.0, 11);
  auto cluster = test_cluster(4);
  NewtonAdmmOptions opts;
  opts.max_iterations = 12;
  const auto r = newton_admm(cluster, shards(cluster, tt.train, &tt.test), opts);
  ASSERT_EQ(r.trace.size(), 12u);
  double prev = 0.0;
  for (const auto& it : r.trace) {
    EXPECT_GT(it.epoch_sim_seconds, 0.0);
    EXPECT_GT(it.sim_seconds, prev);
    EXPECT_GE(it.test_accuracy, 0.0);
    EXPECT_LE(it.test_accuracy, 1.0);
    EXPECT_GT(it.rho_mean, 0.0);
    prev = it.sim_seconds;
  }
  EXPECT_NEAR(r.avg_epoch_sim_seconds, r.total_sim_seconds / 12.0, 1e-12);
  EXPECT_GT(r.trace.back().comm_sim_seconds, 0.0);
}

TEST(NewtonAdmm, NoTestSetReportsMinusOneAccuracy) {
  auto tt = data::make_blobs(200, 10, 5, 3, 3.0, 1.0, 12);
  auto cluster = test_cluster(2);
  NewtonAdmmOptions opts;
  opts.max_iterations = 5;
  const auto r = newton_admm(cluster, shards(cluster, tt.train, nullptr), opts);
  EXPECT_DOUBLE_EQ(r.final_test_accuracy, -1.0);
  for (const auto& it : r.trace) EXPECT_DOUBLE_EQ(it.test_accuracy, -1.0);
}

TEST(NewtonAdmm, ResidualToleranceStopsEarly) {
  auto tt = data::make_blobs(300, 10, 6, 3, 5.0, 0.8, 13);
  auto cluster = test_cluster(4);
  NewtonAdmmOptions opts;
  opts.max_iterations = 200;
  opts.lambda = 1e-2;
  opts.primal_tol = 1e-2;
  opts.dual_tol = 1e-2;
  const auto r = newton_admm(cluster, shards(cluster, tt.train, nullptr), opts);
  EXPECT_LT(r.iterations, 200);
  EXPECT_LE(r.trace.back().primal_residual, 1e-2);
}

TEST(NewtonAdmm, WorksOnSparseE18LikeData) {
  auto tt = data::make_e18_like(400, 100, 256, 14);
  auto cluster = test_cluster(4);
  NewtonAdmmOptions opts;
  opts.max_iterations = 30;
  opts.lambda = 1e-3;
  const auto r = newton_admm(cluster, shards(cluster, tt.train, &tt.test), opts);
  ASSERT_FALSE(r.trace.empty());
  EXPECT_LT(r.final_objective, r.trace.front().objective);
  EXPECT_GT(r.final_test_accuracy, 1.5 / 20.0);  // well above chance
}

TEST(NewtonAdmm, MultipleLocalNewtonStepsAccelerateConsensus) {
  auto tt = data::make_blobs(400, 50, 8, 3, 3.0, 1.0, 15);
  NewtonAdmmOptions one;
  one.max_iterations = 10;
  one.lambda = 1e-3;
  NewtonAdmmOptions three = one;
  three.local_newton_steps = 3;
  auto c1 = test_cluster(4);
  auto c3 = test_cluster(4);
  const auto r1 = newton_admm(c1, shards(c1, tt.train, nullptr), one);
  const auto r3 = newton_admm(c3, shards(c3, tt.train, nullptr), three);
  EXPECT_LE(r3.final_objective, r1.final_objective * 1.05);
  // More local work must cost more simulated compute per epoch.
  EXPECT_GT(r3.avg_epoch_sim_seconds, r1.avg_epoch_sim_seconds);
}

TEST(NewtonAdmm, SingleRankMatchesNewtonTrajectory) {
  // With N=1 and λ handled by the z-update, ADMM should still reach the
  // regularized optimum.
  auto tt = data::make_blobs(300, 30, 6, 3, 3.0, 1.0, 16);
  auto cluster = test_cluster(1);
  NewtonAdmmOptions opts;
  opts.max_iterations = 80;
  opts.lambda = 1e-2;
  const auto r = newton_admm(cluster, shards(cluster, tt.train, nullptr), opts);
  const auto ref = solve_reference(tt.train, 1e-2);
  EXPECT_NEAR(r.final_objective, ref.objective,
              0.02 * std::abs(ref.objective));
}

TEST(NewtonAdmm, ValidatesOptions) {
  auto tt = data::make_blobs(50, 10, 4, 3, 3.0, 1.0, 17);
  auto cluster = test_cluster(2);
  NewtonAdmmOptions bad;
  bad.max_iterations = 0;
  EXPECT_THROW(newton_admm(cluster, shards(cluster, tt.train, nullptr), bad), InvalidArgument);
  bad = NewtonAdmmOptions{};
  bad.lambda = -1.0;
  EXPECT_THROW(newton_admm(cluster, shards(cluster, tt.train, nullptr), bad), InvalidArgument);
  bad = NewtonAdmmOptions{};
  bad.local_newton_steps = 0;
  EXPECT_THROW(newton_admm(cluster, shards(cluster, tt.train, nullptr), bad), InvalidArgument);
}

TEST(NewtonAdmm, ReproducibleAcrossRuns) {
  // Data generation and the algorithm are deterministic; the only run-to-
  // run variation is ulp-level parallel-reduction reordering (as with
  // cuBLAS), which iteration dynamics can amplify slightly — hence tight
  // NEAR rather than bitwise equality.
  auto tt = data::make_blobs(200, 20, 5, 3, 3.0, 1.0, 18);
  NewtonAdmmOptions opts;
  opts.max_iterations = 10;
  auto c1 = test_cluster(4);
  auto c2 = test_cluster(4);
  const auto r1 = newton_admm(c1, shards(c1, tt.train, nullptr), opts);
  const auto r2 = newton_admm(c2, shards(c2, tt.train, nullptr), opts);
  ASSERT_EQ(r1.x.size(), r2.x.size());
  for (std::size_t i = 0; i < r1.x.size(); ++i) {
    EXPECT_NEAR(r1.x[i], r2.x[i], 1e-7 * (1.0 + std::abs(r2.x[i])));
  }
  EXPECT_NEAR(r1.total_sim_seconds, r2.total_sim_seconds,
              0.02 * r2.total_sim_seconds);
  EXPECT_NEAR(r1.final_objective, r2.final_objective,
              1e-6 * std::abs(r2.final_objective));
}

}  // namespace
}  // namespace nadmm::core
