// Tests for the solver registry (src/runner/registry.*): every built-in
// name resolves, unknown names are rejected with a helpful message, and
// the uniform factory signature runs both solver families.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "runner/registry.hpp"
#include "support/check.hpp"

namespace nadmm::runner {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig c;
  c.dataset = "blobs";
  c.n_train = 120;
  c.n_test = 40;
  c.e18_features = 8;
  c.workers = 2;
  c.iterations = 3;
  c.lambda = 1e-3;
  c.omp_threads = 1;
  return c;
}

TEST(SolverRegistry, ResolvesEveryBuiltinName) {
  const auto& registry = SolverRegistry::instance();
  for (const char* name :
       {"newton-admm", "async-admm", "stale-sync-admm", "giant", "sync-sgd",
        "inexact-dane", "aide", "disco", "newton-cg", "gd", "momentum",
        "adagrad", "adam"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_EQ(registry.info(name).name, name);
  }
}

TEST(SolverRegistry, KindsAreClassified) {
  const auto& registry = SolverRegistry::instance();
  EXPECT_EQ(registry.info("newton-admm").kind, SolverKind::kDistributed);
  EXPECT_EQ(registry.info("disco").kind, SolverKind::kDistributed);
  EXPECT_EQ(registry.info("newton-cg").kind, SolverKind::kSingleNode);
  EXPECT_EQ(registry.info("adam").kind, SolverKind::kSingleNode);
  EXPECT_EQ(to_string(SolverKind::kDistributed), "distributed");
  EXPECT_EQ(to_string(SolverKind::kSingleNode), "single-node");
}

TEST(SolverRegistry, CommClassAndKnobsComeFromTheRegistry) {
  const auto& registry = SolverRegistry::instance();
  EXPECT_EQ(registry.info("newton-admm").comm_class, CommClass::kSynchronous);
  EXPECT_EQ(registry.info("async-admm").comm_class, CommClass::kAsynchronous);
  EXPECT_EQ(registry.info("stale-sync-admm").comm_class,
            CommClass::kAsynchronous);
  EXPECT_EQ(registry.info("adam").comm_class, CommClass::kNone);
  EXPECT_EQ(to_string(CommClass::kSynchronous), "sync");
  EXPECT_EQ(to_string(CommClass::kAsynchronous), "async");
  EXPECT_EQ(to_string(CommClass::kNone), "-");
  // Every distributed solver documents its knobs; the async pair names
  // its staleness/barrier controls so `nadmm list` cannot drift. The
  // --partition shard-plan knob applies to every distributed solver (the
  // harness shards before dispatch), so each one must list it.
  for (const auto& info : registry.list()) {
    if (info.kind == SolverKind::kDistributed) {
      EXPECT_FALSE(info.knobs.empty()) << info.name;
      EXPECT_NE(info.knobs.find("partition"), std::string::npos) << info.name;
    }
  }
  EXPECT_NE(registry.info("async-admm").knobs.find("staleness"),
            std::string::npos);
  EXPECT_NE(registry.info("stale-sync-admm").knobs.find("sync-every"),
            std::string::npos);
}

TEST(SolverRegistry, ListIsSortedAndMatchesNames) {
  const auto& registry = SolverRegistry::instance();
  const auto names = registry.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  const auto infos = registry.list();
  ASSERT_EQ(infos.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(infos[i].name, names[i]);
    EXPECT_FALSE(infos[i].description.empty()) << names[i];
  }
}

TEST(SolverRegistry, RejectsUnknownNames) {
  const auto& registry = SolverRegistry::instance();
  EXPECT_FALSE(registry.contains("sgd"));
  EXPECT_THROW(static_cast<void>(registry.info("sgd")), InvalidArgument);
  try {
    static_cast<void>(registry.info("bogus-solver"));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus-solver"), std::string::npos);
    EXPECT_NE(what.find("newton-admm"), std::string::npos)
        << "error should list the known solvers";
  }
}

TEST(SolverRegistry, RejectsDuplicateAndEmptyRegistration) {
  auto& registry = SolverRegistry::instance();
  const auto factory = [](comm::SimCluster&, const data::ShardedDataset&,
                          const ExperimentConfig&) {
    return core::RunResult{};
  };
  EXPECT_THROW(registry.add({"newton-admm", SolverKind::kDistributed, "dup",
                             CommClass::kSynchronous, ""},
                            factory),
               InvalidArgument);
  EXPECT_THROW(registry.add({"", SolverKind::kDistributed, "unnamed",
                             CommClass::kSynchronous, ""},
                            factory),
               InvalidArgument);
}

TEST(SolverRegistry, RunsDistributedSolver) {
  const auto c = tiny_config();
  const auto tt = make_data(c);
  auto cluster = make_cluster(c);
  const auto r = SolverRegistry::instance().run("newton-admm", cluster,
                                                tt.train, &tt.test, c);
  EXPECT_EQ(r.solver, "newton-admm");
  EXPECT_GT(r.iterations, 0);
  EXPECT_FALSE(r.trace.empty());
  EXPECT_TRUE(std::isfinite(r.final_objective));
  EXPECT_GT(r.total_sim_seconds, 0.0);
}

TEST(SolverRegistry, RunsSingleNodeSolverWithFlopDerivedTime) {
  auto c = tiny_config();
  c.iterations = 5;
  const auto tt = make_data(c);
  auto cluster = make_cluster(c);
  const auto r = SolverRegistry::instance().run("newton-cg", cluster, tt.train,
                                                &tt.test, c);
  EXPECT_EQ(r.solver, "newton-cg");
  EXPECT_GT(r.iterations, 0);
  ASSERT_FALSE(r.trace.empty());
  // Objectives decrease on this convex problem.
  EXPECT_LE(r.trace.back().objective, r.trace.front().objective);
  EXPECT_GT(r.total_sim_seconds, 0.0);
  EXPECT_GE(r.final_test_accuracy, 0.0);
}

TEST(SolverRegistry, RunThrowsOnUnknownName) {
  const auto c = tiny_config();
  const auto tt = make_data(c);
  auto cluster = make_cluster(c);
  EXPECT_THROW(static_cast<void>(SolverRegistry::instance().run(
                   "no-such-solver", cluster, tt.train, &tt.test, c)),
               InvalidArgument);
  // The legacy harness entry point routes through the registry too.
  EXPECT_THROW(static_cast<void>(
                   run_solver("no-such-solver", cluster, tt.train, &tt.test, c)),
               InvalidArgument);
}

}  // namespace
}  // namespace nadmm::runner
