// Tests for the solver registry (src/runner/registry.*): every built-in
// name resolves, unknown names are rejected with a helpful message, and
// the uniform factory signature runs both solver families.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "runner/registry.hpp"
#include "support/check.hpp"

namespace nadmm::runner {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig c;
  c.dataset = "blobs";
  c.n_train = 120;
  c.n_test = 40;
  c.e18_features = 8;
  c.workers = 2;
  c.iterations = 3;
  c.lambda = 1e-3;
  c.omp_threads = 1;
  return c;
}

TEST(SolverRegistry, ResolvesEveryBuiltinName) {
  const auto& registry = SolverRegistry::instance();
  for (const char* name :
       {"newton-admm", "async-admm", "stale-sync-admm", "giant", "sync-sgd",
        "inexact-dane", "aide", "disco", "newton-cg", "gd", "momentum",
        "adagrad", "adam"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_EQ(registry.info(name).name, name);
  }
}

TEST(SolverRegistry, KindsAreClassified) {
  const auto& registry = SolverRegistry::instance();
  EXPECT_EQ(registry.info("newton-admm").kind, SolverKind::kDistributed);
  EXPECT_EQ(registry.info("disco").kind, SolverKind::kDistributed);
  EXPECT_EQ(registry.info("newton-cg").kind, SolverKind::kSingleNode);
  EXPECT_EQ(registry.info("adam").kind, SolverKind::kSingleNode);
  EXPECT_EQ(to_string(SolverKind::kDistributed), "distributed");
  EXPECT_EQ(to_string(SolverKind::kSingleNode), "single-node");
}

TEST(SolverRegistry, CommClassAndKnobsComeFromTheRegistry) {
  const auto& registry = SolverRegistry::instance();
  EXPECT_EQ(registry.info("newton-admm").comm_class, CommClass::kSynchronous);
  EXPECT_EQ(registry.info("async-admm").comm_class, CommClass::kAsynchronous);
  EXPECT_EQ(registry.info("stale-sync-admm").comm_class,
            CommClass::kAsynchronous);
  EXPECT_EQ(registry.info("adam").comm_class, CommClass::kNone);
  EXPECT_EQ(to_string(CommClass::kSynchronous), "sync");
  EXPECT_EQ(to_string(CommClass::kAsynchronous), "async");
  EXPECT_EQ(to_string(CommClass::kNone), "-");
  // Every distributed solver documents its knobs; the async pair names
  // its staleness/barrier controls so `nadmm list` cannot drift. The
  // --partition shard-plan knob applies to every distributed solver (the
  // harness shards before dispatch), so each one must list it.
  const auto has = [](const SolverInfo& info, const std::string& knob) {
    const auto& k = info.knob_names;
    return std::find(k.begin(), k.end(), knob) != k.end();
  };
  for (const auto& info : registry.list()) {
    if (info.kind == SolverKind::kDistributed) {
      EXPECT_FALSE(info.knob_names.empty()) << info.name;
      EXPECT_TRUE(has(info, "partition")) << info.name;
    }
  }
  EXPECT_TRUE(has(registry.info("async-admm"), "staleness"));
  EXPECT_TRUE(has(registry.info("stale-sync-admm"), "sync-every"));
}

TEST(SolverRegistry, KnobNamesResolveToTypedMetadata) {
  // Every registered knob name must resolve through the shared option
  // tables — knobs() throws if the registry references a flag that the
  // CLI does not actually define.
  const auto& registry = SolverRegistry::instance();
  for (const auto& info : registry.list()) {
    const auto knobs = info.knobs();
    ASSERT_EQ(knobs.size(), info.knob_names.size()) << info.name;
    for (const auto& k : knobs) {
      EXPECT_FALSE(k.type.empty()) << info.name << " --" << k.name;
      EXPECT_FALSE(k.description.empty()) << info.name << " --" << k.name;
    }
  }
  const auto staleness = describe_knob("staleness");
  EXPECT_EQ(staleness.type, "int");
  EXPECT_EQ(staleness.default_value, "4");
  EXPECT_THROW(static_cast<void>(describe_knob("no-such-knob")),
               InvalidArgument);
  EXPECT_EQ(registry.info("sync-sgd").knobs_csv(),
            "sgd-batch,sgd-step,devices,straggler,partition");
}

TEST(SolverRegistry, RegistryJsonListsEverySolverWithKnobs) {
  const std::string json = registry_json();
  for (const auto& info : SolverRegistry::instance().list()) {
    EXPECT_NE(json.find("\"name\": \"" + info.name + "\""), std::string::npos)
        << info.name;
  }
  // Typed knob metadata is embedded, not just the names.
  EXPECT_NE(json.find("\"default\": \"sps\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"double\""), std::string::npos);
}

TEST(SolverRegistry, ListIsSortedAndMatchesNames) {
  const auto& registry = SolverRegistry::instance();
  const auto names = registry.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  const auto infos = registry.list();
  ASSERT_EQ(infos.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(infos[i].name, names[i]);
    EXPECT_FALSE(infos[i].description.empty()) << names[i];
  }
}

TEST(SolverRegistry, RejectsUnknownNames) {
  const auto& registry = SolverRegistry::instance();
  EXPECT_FALSE(registry.contains("sgd"));
  EXPECT_THROW(static_cast<void>(registry.info("sgd")), InvalidArgument);
  try {
    static_cast<void>(registry.info("bogus-solver"));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus-solver"), std::string::npos);
    EXPECT_NE(what.find("newton-admm"), std::string::npos)
        << "error should list the known solvers";
  }
}

TEST(SolverRegistry, RejectsDuplicateAndEmptyRegistration) {
  auto& registry = SolverRegistry::instance();
  const auto factory = [](comm::SimCluster&, const data::ShardedDataset&,
                          const ExperimentConfig&) {
    return core::RunResult{};
  };
  EXPECT_THROW(registry.add({"newton-admm", SolverKind::kDistributed, "dup",
                             CommClass::kSynchronous, {}},
                            factory),
               InvalidArgument);
  EXPECT_THROW(registry.add({"", SolverKind::kDistributed, "unnamed",
                             CommClass::kSynchronous, {}},
                            factory),
               InvalidArgument);
}

TEST(SolverRegistry, RunsDistributedSolver) {
  const auto c = tiny_config();
  const auto tt = make_data(c);
  auto cluster = make_cluster(c);
  const auto r = SolverRegistry::instance().run("newton-admm", cluster,
      shard_for_solver("newton-admm", tt.train, &tt.test, c), c);
  EXPECT_EQ(r.solver, "newton-admm");
  EXPECT_GT(r.iterations, 0);
  EXPECT_FALSE(r.trace.empty());
  EXPECT_TRUE(std::isfinite(r.final_objective));
  EXPECT_GT(r.total_sim_seconds, 0.0);
}

TEST(SolverRegistry, RunsSingleNodeSolverWithFlopDerivedTime) {
  auto c = tiny_config();
  c.iterations = 5;
  const auto tt = make_data(c);
  auto cluster = make_cluster(c);
  const auto r = SolverRegistry::instance().run("newton-cg", cluster,
      shard_for_solver("newton-cg", tt.train, &tt.test, c), c);
  EXPECT_EQ(r.solver, "newton-cg");
  EXPECT_GT(r.iterations, 0);
  ASSERT_FALSE(r.trace.empty());
  // Objectives decrease on this convex problem.
  EXPECT_LE(r.trace.back().objective, r.trace.front().objective);
  EXPECT_GT(r.total_sim_seconds, 0.0);
  EXPECT_GE(r.final_test_accuracy, 0.0);
}

TEST(SolverRegistry, RunThrowsOnUnknownName) {
  const auto c = tiny_config();
  const auto tt = make_data(c);
  auto cluster = make_cluster(c);
  EXPECT_THROW(static_cast<void>(SolverRegistry::instance().run("no-such-solver", cluster,
      shard_for_solver("no-such-solver", tt.train, &tt.test, c), c)),
               InvalidArgument);
  // The legacy harness entry point routes through the registry too.
  EXPECT_THROW(static_cast<void>(
                   run_solver("no-such-solver", cluster,
      shard_for_solver("no-such-solver", tt.train, &tt.test, c), c)),
               InvalidArgument);
}

// The deprecated (train, test) compat overload keeps working while
// out-of-tree callers migrate; it must match the explicit sharded path
// bit-for-bit (it is documented as sugar for shard_for_solver).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(SolverRegistry, DeprecatedTrainTestOverloadMatchesShardedPath) {
  const auto c = tiny_config();
  const auto tt = make_data(c);
  auto c1 = make_cluster(c);
  auto c2 = make_cluster(c);
  const auto legacy = run_solver("newton-admm", c1, tt.train, &tt.test, c);
  const auto explicit_path = run_solver(
      "newton-admm", c2,
      shard_for_solver("newton-admm", tt.train, &tt.test, c), c);
  EXPECT_EQ(legacy.final_objective, explicit_path.final_objective);
  EXPECT_EQ(legacy.total_sim_seconds, explicit_path.total_sim_seconds);
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace nadmm::runner
