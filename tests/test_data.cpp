// Tests for src/data: dataset container, the four paper-dataset
// generators (shape/conditioning/sparsity properties), partitioning,
// standardization, and file I/O round trips.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>

#include "data/dataset.hpp"
#include "data/generators.hpp"
#include "data/io.hpp"
#include "data/partition.hpp"
#include "data/standardize.hpp"
#include "support/check.hpp"

namespace nadmm::data {
namespace {

// ------------------------------------------------------------ dataset

TEST(Dataset, DenseConstructionAndAccessors) {
  la::DenseMatrix x(3, 2, {1, 2, 3, 4, 5, 6});
  auto ds = Dataset::dense(std::move(x), {0, 1, 2}, 3);
  EXPECT_EQ(ds.num_samples(), 3u);
  EXPECT_EQ(ds.num_features(), 2u);
  EXPECT_EQ(ds.num_classes(), 3);
  EXPECT_FALSE(ds.is_sparse());
  EXPECT_FALSE(ds.empty());
  EXPECT_THROW(static_cast<void>(ds.sparse_features()), InvalidArgument);
  EXPECT_DOUBLE_EQ(ds.dense_features().at(2, 1), 6.0);
}

TEST(Dataset, LabelValidation) {
  la::DenseMatrix x(2, 1, {1, 2});
  EXPECT_THROW(Dataset::dense(std::move(x), {0, 3}, 3), InvalidArgument);
  la::DenseMatrix x2(2, 1, {1, 2});
  EXPECT_THROW(Dataset::dense(std::move(x2), {0, -1}, 3), InvalidArgument);
  la::DenseMatrix x3(2, 1, {1, 2});
  EXPECT_THROW(Dataset::dense(std::move(x3), {0}, 3), InvalidArgument);
  la::DenseMatrix x4(2, 1, {1, 2});
  EXPECT_THROW(Dataset::dense(std::move(x4), {0, 1}, 1), InvalidArgument);
}

TEST(Dataset, RowSliceDense) {
  la::DenseMatrix x(4, 2, {1, 2, 3, 4, 5, 6, 7, 8});
  auto ds = Dataset::dense(std::move(x), {0, 1, 0, 1}, 2);
  auto s = ds.row_slice(1, 3);
  EXPECT_EQ(s.num_samples(), 2u);
  EXPECT_DOUBLE_EQ(s.dense_features().at(0, 0), 3.0);
  EXPECT_EQ(s.labels()[1], 0);
}

TEST(Dataset, RowSliceSparse) {
  la::CsrMatrix x(3, 4, {{0, 0, 1.0}, {1, 2, 2.0}, {2, 3, 3.0}});
  auto ds = Dataset::sparse(std::move(x), {0, 1, 1}, 2);
  auto s = ds.row_slice(1, 3);
  EXPECT_TRUE(s.is_sparse());
  EXPECT_EQ(s.num_samples(), 2u);
  EXPECT_DOUBLE_EQ(s.sparse_features().to_dense().at(0, 2), 2.0);
}

TEST(Dataset, ScoresDispatchMatchesAcrossStorage) {
  // Same logical matrix, dense vs sparse, must give identical scores.
  la::CsrMatrix xs(2, 3, {{0, 1, 2.0}, {1, 0, 1.0}, {1, 2, -1.0}});
  auto dense_feats = xs.to_dense();
  auto ds_sparse = Dataset::sparse(std::move(xs), {0, 1}, 2);
  auto ds_dense = Dataset::dense(std::move(dense_feats), {0, 1}, 2);
  la::DenseMatrix w(3, 1, {1.0, 2.0, 3.0});
  la::DenseMatrix s1(2, 1), s2(2, 1);
  ds_sparse.scores(w, s1);
  ds_dense.scores(w, s2);
  EXPECT_DOUBLE_EQ(s1.at(0, 0), s2.at(0, 0));
  EXPECT_DOUBLE_EQ(s1.at(1, 0), s2.at(1, 0));
}

TEST(Dataset, ClassHistogramAndDensity) {
  la::DenseMatrix x(4, 2, {0, 1, 0, 0, 2, 0, 0, 0});
  auto ds = Dataset::dense(std::move(x), {0, 1, 1, 1}, 2);
  const auto hist = ds.class_histogram();
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 3u);
  EXPECT_DOUBLE_EQ(ds.feature_density(), 2.0 / 8.0);
}

// ------------------------------------------------------------ generators

TEST(Generators, PaperTable1HasFourDatasets) {
  const auto info = paper_table1();
  ASSERT_EQ(info.size(), 4u);
  EXPECT_EQ(info[0].name, "HIGGS");
  EXPECT_EQ(info[0].classes, 2);
  EXPECT_EQ(info[3].features, 27'998u);
}

TEST(Generators, BlobsShapeAndDeterminism) {
  auto a = make_blobs(200, 50, 10, 4, 3.0, 1.0, 99);
  auto b = make_blobs(200, 50, 10, 4, 3.0, 1.0, 99);
  EXPECT_EQ(a.train.num_samples(), 200u);
  EXPECT_EQ(a.test.num_samples(), 50u);
  EXPECT_EQ(a.train.num_features(), 10u);
  EXPECT_EQ(a.train.num_classes(), 4);
  // Determinism: identical seeds → identical bytes.
  const auto da = a.train.dense_features().data();
  const auto db = b.train.dense_features().data();
  for (std::size_t i = 0; i < da.size(); i += 37) {
    ASSERT_DOUBLE_EQ(da[i], db[i]);
  }
  EXPECT_TRUE(std::equal(a.train.labels().begin(), a.train.labels().end(),
                         b.train.labels().begin()));
}

TEST(Generators, BlobsDifferentSeedsDiffer) {
  auto a = make_blobs(50, 10, 8, 3, 3.0, 1.0, 1);
  auto b = make_blobs(50, 10, 8, 3, 3.0, 1.0, 2);
  const auto da = a.train.dense_features().data();
  const auto db = b.train.dense_features().data();
  int same = 0;
  for (std::size_t i = 0; i < da.size(); ++i) same += (da[i] == db[i]);
  EXPECT_LT(same, 5);
}

TEST(Generators, HiggsLikeShape) {
  auto tt = make_higgs_like(500, 100, 7);
  EXPECT_EQ(tt.train.num_features(), 28u);  // paper Table 1
  EXPECT_EQ(tt.train.num_classes(), 2);
  // Both classes present.
  const auto hist = tt.train.class_histogram();
  EXPECT_GT(hist[0], 50u);
  EXPECT_GT(hist[1], 50u);
}

TEST(Generators, MnistLikeShapeAndSparsityPattern) {
  auto tt = make_mnist_like(300, 60, 11);
  EXPECT_EQ(tt.train.num_features(), 784u);
  EXPECT_EQ(tt.train.num_classes(), 10);
  // Pixel-like: values in [0,1], mostly background zeros.
  double lo = 1e9, hi = -1e9;
  for (double v : tt.train.dense_features().data()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GE(lo, 0.0);
  EXPECT_LE(hi, 1.0);
  EXPECT_LT(tt.train.feature_density(), 0.6);
  EXPECT_GT(tt.train.feature_density(), 0.02);
}

TEST(Generators, CifarLikeNeighbourCorrelation) {
  auto tt = make_cifar_like(400, 50, 13);
  EXPECT_EQ(tt.train.num_features(), 3072u);
  EXPECT_EQ(tt.train.num_classes(), 10);
  // The moving-average construction must correlate adjacent features far
  // more than distant ones — the ill-conditioning mechanism.
  const auto& x = tt.train.dense_features();
  auto column_corr = [&](std::size_t j1, std::size_t j2) {
    double m1 = 0, m2 = 0;
    for (std::size_t i = 0; i < x.rows(); ++i) {
      m1 += x.at(i, j1);
      m2 += x.at(i, j2);
    }
    m1 /= static_cast<double>(x.rows());
    m2 /= static_cast<double>(x.rows());
    double c = 0, v1 = 0, v2 = 0;
    for (std::size_t i = 0; i < x.rows(); ++i) {
      const double d1 = x.at(i, j1) - m1;
      const double d2 = x.at(i, j2) - m2;
      c += d1 * d2;
      v1 += d1 * d1;
      v2 += d2 * d2;
    }
    return c / std::sqrt(v1 * v2);
  };
  EXPECT_GT(column_corr(1000, 1001), 0.8);
  EXPECT_LT(std::abs(column_corr(100, 2500)), 0.3);
}

TEST(Generators, E18LikeSparseCounts) {
  auto tt = make_e18_like(300, 50, 800, 17);
  EXPECT_TRUE(tt.train.is_sparse());
  EXPECT_EQ(tt.train.num_features(), 800u);
  EXPECT_EQ(tt.train.num_classes(), 20);
  // scRNA-like sparsity: low density, strictly positive stored values
  // (log1p of counts).
  EXPECT_LT(tt.train.feature_density(), 0.30);
  EXPECT_GT(tt.train.feature_density(), 0.005);
  for (double v : tt.train.sparse_features().values()) EXPECT_GT(v, 0.0);
}

TEST(Generators, E18RejectsTinyDimension) {
  EXPECT_THROW(make_e18_like(10, 5, 8, 1), InvalidArgument);
}

TEST(Generators, MakeByNameDispatch) {
  EXPECT_EQ(make_by_name("higgs", 50, 10, 0, 1).train.num_classes(), 2);
  EXPECT_EQ(make_by_name("mnist", 50, 10, 0, 1).train.num_features(), 784u);
  EXPECT_EQ(make_by_name("cifar", 50, 10, 0, 1).train.num_features(), 3072u);
  EXPECT_TRUE(make_by_name("e18", 50, 10, 256, 1).train.is_sparse());
  EXPECT_EQ(make_by_name("blobs", 50, 10, 20, 1).train.num_features(), 20u);
  EXPECT_THROW(make_by_name("nope", 10, 10, 10, 1), InvalidArgument);
}

TEST(Generators, TrainAndTestDrawnFromSameDistribution) {
  // Class histograms of train and test should be roughly proportional.
  auto tt = make_blobs(4000, 4000, 10, 5, 3.0, 1.0, 3);
  const auto ht = tt.train.class_histogram();
  const auto he = tt.test.class_histogram();
  for (std::size_t c = 0; c < ht.size(); ++c) {
    EXPECT_NEAR(static_cast<double>(ht[c]), static_cast<double>(he[c]),
                0.25 * static_cast<double>(ht[c]) + 30);
  }
}

// ------------------------------------------------------------ partition

TEST(Partition, BalancedRanges) {
  const auto r = partition_rows(10, 3);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].size(), 4u);
  EXPECT_EQ(r[1].size(), 3u);
  EXPECT_EQ(r[2].size(), 3u);
  EXPECT_EQ(r[0].begin, 0u);
  EXPECT_EQ(r[2].end, 10u);
}

TEST(Partition, SingletonAndEdgeCases) {
  EXPECT_EQ(partition_rows(5, 1)[0].size(), 5u);
  const auto r = partition_rows(2, 4);  // more parts than rows
  EXPECT_EQ(r[0].size(), 1u);
  EXPECT_EQ(r[1].size(), 1u);
  EXPECT_EQ(r[2].size(), 0u);
  EXPECT_THROW(partition_rows(5, 0), InvalidArgument);
}

TEST(Partition, ContiguousShardsCoverDataset) {
  auto tt = make_blobs(101, 10, 6, 3, 3.0, 1.0, 5);
  std::size_t total = 0;
  for (int r = 0; r < 4; ++r) {
    total += shard_contiguous(tt.train, 4, r).num_samples();
  }
  EXPECT_EQ(total, 101u);
  EXPECT_THROW(shard_contiguous(tt.train, 4, 4), InvalidArgument);
}

TEST(Partition, StridedShardsCoverDatasetDense) {
  auto tt = make_blobs(57, 10, 4, 3, 3.0, 1.0, 5);
  std::size_t total = 0;
  std::vector<std::size_t> class_sum(3, 0);
  for (int r = 0; r < 4; ++r) {
    const auto s = shard_strided(tt.train, 4, r);
    total += s.num_samples();
    const auto h = s.class_histogram();
    for (std::size_t c = 0; c < 3; ++c) class_sum[c] += h[c];
  }
  EXPECT_EQ(total, 57u);
  const auto full_hist = tt.train.class_histogram();
  for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(class_sum[c], full_hist[c]);
}

TEST(Partition, StridedShardsSparse) {
  auto tt = make_e18_like(60, 10, 128, 5);
  std::size_t total_nnz = 0, total_rows = 0;
  for (int r = 0; r < 3; ++r) {
    const auto s = shard_strided(tt.train, 3, r);
    EXPECT_TRUE(s.is_sparse());
    total_rows += s.num_samples();
    total_nnz += s.sparse_features().nnz();
  }
  EXPECT_EQ(total_rows, 60u);
  EXPECT_EQ(total_nnz, tt.train.sparse_features().nnz());
}

TEST(Partition, WeightedRangesSumToNAndFollowWeights) {
  const double weights[] = {3.0, 1.0, 1.0, 1.0};
  const auto r = partition_rows_weighted(120, weights);
  ASSERT_EQ(r.size(), 4u);
  std::size_t total = 0;
  for (const auto& range : r) total += range.size();
  EXPECT_EQ(total, 120u);
  EXPECT_EQ(r[0].size(), 60u);  // 3/6 of 120
  EXPECT_EQ(r[1].size(), 20u);
  EXPECT_EQ(r[0].begin, 0u);
  EXPECT_EQ(r[3].end, 120u);
  // Remainder rows land deterministically and the sizes still sum to n,
  // whatever the (positive) weights.
  const double awkward[] = {0.37, 1.9, 2.71};
  for (const std::size_t n : {0ul, 1ul, 2ul, 7ul, 97ul}) {
    const auto w = partition_rows_weighted(n, awkward);
    std::size_t sum = 0;
    for (const auto& range : w) sum += range.size();
    EXPECT_EQ(sum, n);
  }
  EXPECT_THROW(
      static_cast<void>(partition_rows_weighted(10, std::vector<double>{})),
      InvalidArgument);
  const double bad[] = {1.0, 0.0};
  EXPECT_THROW(static_cast<void>(partition_rows_weighted(10, bad)),
               InvalidArgument);
}

TEST(Partition, ModeNamesRoundTrip) {
  EXPECT_EQ(partition_mode_from_string("contiguous"),
            PartitionMode::kContiguous);
  EXPECT_EQ(partition_mode_from_string("strided"), PartitionMode::kStrided);
  EXPECT_EQ(partition_mode_from_string("weighted"), PartitionMode::kWeighted);
  EXPECT_EQ(to_string(PartitionMode::kWeighted), "weighted");
  EXPECT_THROW(static_cast<void>(partition_mode_from_string("zigzag")),
               InvalidArgument);
}

TEST(Partition, ShardDatasetViewMatchesCopyOracle) {
  // The zero-copy view shard must agree with the copying oracle
  // element-for-element, dense and sparse.
  auto dense_tt = make_blobs(101, 10, 6, 3, 3.0, 1.0, 5);
  auto sparse_tt = make_e18_like(60, 10, 128, 5);
  ShardPlan plan;
  plan.parts = 4;
  for (const Dataset* full : {&dense_tt.train, &sparse_tt.train}) {
    for (int r = 0; r < 4; ++r) {
      const Dataset view = shard_dataset(*full, plan, r);
      const Dataset copy = shard_contiguous(*full, 4, r);
      ASSERT_EQ(view.num_samples(), copy.num_samples());
      EXPECT_TRUE(view.is_view());
      EXPECT_EQ(view.approx_bytes(), 0u) << "views own no storage";
      ASSERT_TRUE(std::equal(view.labels().begin(), view.labels().end(),
                             copy.labels().begin()));
      if (full->is_sparse()) {
        EXPECT_EQ(view.csr_view().nnz(), copy.sparse_features().nnz());
      } else {
        const auto v = view.dense_view();
        const auto& c = copy.dense_features();
        for (std::size_t i = 0; i < v.rows(); ++i) {
          for (std::size_t j = 0; j < v.cols(); ++j) {
            ASSERT_EQ(v.at(i, j), c.at(i, j));
          }
        }
      }
    }
  }
}

TEST(Partition, MoreRanksThanRowsYieldsEmptyShards) {
  auto tt = make_blobs(3, 2, 4, 2, 3.0, 1.0, 9);
  ShardPlan plan;
  plan.parts = 8;
  std::size_t total = 0, empties = 0;
  for (int r = 0; r < 8; ++r) {
    const Dataset s = shard_dataset(tt.train, plan, r);
    total += s.num_samples();
    empties += s.empty() ? 1 : 0;
    // Empty shards keep the global shape so objectives still construct.
    EXPECT_EQ(s.num_features(), tt.train.num_features());
    EXPECT_EQ(s.num_classes(), tt.train.num_classes());
  }
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(empties, 5u);
  // Strided and weighted plans cover the rows too.
  plan.mode = PartitionMode::kStrided;
  total = 0;
  for (int r = 0; r < 8; ++r) {
    total += shard_dataset(tt.train, plan, r).num_samples();
  }
  EXPECT_EQ(total, 3u);
  plan.mode = PartitionMode::kWeighted;
  plan.weights.assign(8, 1.0);
  plan.weights[0] = 5.0;
  total = 0;
  for (int r = 0; r < 8; ++r) {
    total += shard_dataset(tt.train, plan, r).num_samples();
  }
  EXPECT_EQ(total, 3u);
}

TEST(Partition, MakeShardedAccountsResidentBytes) {
  auto tt = make_blobs(64, 16, 6, 3, 3.0, 1.0, 5);
  ShardPlan plan;
  plan.parts = 4;
  const auto sharded = make_sharded(tt.train, &tt.test, plan);
  EXPECT_EQ(sharded.parts(), 4);
  EXPECT_TRUE(sharded.has_full());
  EXPECT_EQ(sharded.train_samples, 64u);
  EXPECT_EQ(sharded.test_samples, 16u);
  EXPECT_EQ(sharded.dim(), 6u * 2u);
  // Zero-copy views: resident bytes are exactly the full splits.
  EXPECT_EQ(sharded.resident_bytes, tt.approx_bytes());
  // Strided shards are gather copies, so the copies add on top.
  ShardPlan strided = plan;
  strided.mode = PartitionMode::kStrided;
  const auto sharded_strided = make_sharded(tt.train, &tt.test, strided);
  EXPECT_GT(sharded_strided.resident_bytes, tt.approx_bytes());
}

TEST(Partition, PlacementSingleNodeIsAllZeros) {
  ShardPlan plan;
  plan.parts = 6;
  EXPECT_EQ(plan.placement(1), (std::vector<int>(6, 0)));
  EXPECT_EQ(plan.placement(0), (std::vector<int>(6, 0)));
  EXPECT_EQ(plan.placement(-3), (std::vector<int>(6, 0)));
}

TEST(Partition, PlacementSplitsUniformRanksEvenly) {
  ShardPlan plan;
  plan.parts = 4;
  EXPECT_EQ(plan.placement(2), (std::vector<int>{0, 0, 1, 1}));
  EXPECT_EQ(plan.placement(4), (std::vector<int>{0, 1, 2, 3}));
  plan.parts = 5;
  // 5 ranks over 2 nodes: the cursor only advances once the cumulative
  // share reaches 1/2, which happens at rank 2 — node 0 takes the extra.
  EXPECT_EQ(plan.placement(2), (std::vector<int>{0, 0, 0, 1, 1}));
}

TEST(Partition, PlacementFollowsWeightsAndStaysMonotonic) {
  ShardPlan plan;
  plan.parts = 4;
  plan.mode = PartitionMode::kWeighted;
  plan.weights = {0.7, 0.1, 0.1, 0.1};
  // Rank 0 alone covers 70% of the weight — past node 0's half — so the
  // remaining light ranks all land on node 1.
  EXPECT_EQ(plan.placement(2), (std::vector<int>{0, 1, 1, 1}));
  // Determinism: repeated calls agree.
  EXPECT_EQ(plan.placement(2), plan.placement(2));
  // More nodes than ranks: assignments stay monotonic and in range.
  const auto spread = plan.placement(8);
  ASSERT_EQ(spread.size(), 4u);
  for (std::size_t r = 1; r < spread.size(); ++r) {
    EXPECT_GE(spread[r], spread[r - 1]);
    EXPECT_LT(spread[r], 8);
  }
}

TEST(Partition, MakeShardedFillsNumaPlacementHint) {
  auto tt = make_blobs(40, 0, 4, 3, 3.0, 1.0, 9);
  ShardPlan plan;
  plan.parts = 4;
  const auto sharded = make_sharded(tt.train, nullptr, plan);
  ASSERT_EQ(sharded.numa_node.size(), 4u);
  // Whatever the host topology, hints are valid node indices and monotone.
  for (std::size_t r = 0; r < sharded.numa_node.size(); ++r) {
    EXPECT_GE(sharded.numa_node[r], 0);
    if (r > 0) EXPECT_GE(sharded.numa_node[r], sharded.numa_node[r - 1]);
  }
}

TEST(Dataset, ViewsComposeAndShareStorage) {
  auto tt = make_blobs(30, 0, 4, 3, 3.0, 1.0, 11);
  Dataset view;
  {
    // The parent dataset dies; the view must keep the storage alive.
    const Dataset parent = tt.train.view(5, 25);
    view = parent.view(10, 20);  // rows 15..25 of the original
  }
  EXPECT_EQ(view.num_samples(), 10u);
  EXPECT_TRUE(view.is_view());
  const Dataset copy = tt.train.row_slice(15, 25);
  ASSERT_TRUE(std::equal(view.labels().begin(), view.labels().end(),
                         copy.labels().begin()));
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      ASSERT_EQ(view.dense_view().at(i, j), copy.dense_features().at(i, j));
    }
  }
  // dense_features() refuses on proper sub-views (would lie about rows).
  EXPECT_THROW(static_cast<void>(view.dense_features()), InvalidArgument);
  // A full-range view still grants whole-matrix access.
  EXPECT_NO_THROW(static_cast<void>(tt.train.view(0, 30).dense_features()));
}

// ------------------------------------------------------------ standardize

TEST(Standardize, DenseZeroMeanUnitVariance) {
  auto tt = make_blobs(500, 100, 6, 3, 4.0, 2.0, 21);
  Standardizer sc;
  sc.fit(tt.train);
  ASSERT_TRUE(sc.fitted());
  const auto scaled = sc.transform(tt.train);
  const auto& x = scaled.dense_features();
  for (std::size_t j = 0; j < x.cols(); ++j) {
    double mean = 0;
    for (std::size_t i = 0; i < x.rows(); ++i) mean += x.at(i, j);
    mean /= static_cast<double>(x.rows());
    double var = 0;
    for (std::size_t i = 0; i < x.rows(); ++i) {
      var += (x.at(i, j) - mean) * (x.at(i, j) - mean);
    }
    var /= static_cast<double>(x.rows());
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-6);
  }
}

TEST(Standardize, SparseMaxAbsPreservesSparsity) {
  auto tt = make_e18_like(120, 20, 256, 9);
  Standardizer sc;
  sc.fit(tt.train);
  const auto scaled = sc.transform(tt.train);
  EXPECT_TRUE(scaled.is_sparse());
  EXPECT_EQ(scaled.sparse_features().nnz(), tt.train.sparse_features().nnz());
  // All scaled magnitudes within [0, 1] on the fit split.
  for (double v : scaled.sparse_features().values()) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(Standardize, TransformBeforeFitThrows) {
  auto tt = make_blobs(20, 5, 4, 2, 3.0, 1.0, 2);
  Standardizer sc;
  EXPECT_THROW(sc.transform(tt.train), InvalidArgument);
}

TEST(Standardize, StorageKindMismatchThrows) {
  auto dense = make_blobs(20, 5, 64, 2, 3.0, 1.0, 2);
  auto sparse = make_e18_like(20, 5, 64, 2);
  Standardizer sc;
  sc.fit(dense.train);
  EXPECT_THROW(sc.transform(sparse.train), InvalidArgument);
}

TEST(Standardize, ConstantColumnHandled) {
  la::DenseMatrix x(3, 2, {5, 1, 5, 2, 5, 3});
  auto ds = Dataset::dense(std::move(x), {0, 1, 0}, 2);
  Standardizer sc;
  sc.fit(ds);
  const auto scaled = sc.transform(ds);
  // Constant column becomes exactly zero (scale guard keeps it finite).
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(scaled.dense_features().at(i, 0), 0.0);
    EXPECT_TRUE(std::isfinite(scaled.dense_features().at(i, 1)));
  }
}

// ------------------------------------------------------------ io

TEST(Io, LibsvmRoundTripSparse) {
  auto tt = make_e18_like(40, 5, 128, 33);
  const std::string path = testing::TempDir() + "/nadmm_e18.libsvm";
  save_libsvm(tt.train, path);
  const auto loaded = load_libsvm(path, 128);
  EXPECT_EQ(loaded.num_samples(), tt.train.num_samples());
  EXPECT_EQ(loaded.sparse_features().nnz(), tt.train.sparse_features().nnz());
  // The loader remaps labels to a dense [0, C) range in ascending order of
  // the raw values; classes absent from this 40-sample draw collapse the
  // numbering, so compare against the expected remap rather than raw labels.
  std::map<std::int32_t, std::int32_t> remap;
  for (auto l : tt.train.labels()) remap.emplace(l, 0);
  std::int32_t next = 0;
  for (auto& [raw, mapped] : remap) mapped = next++;
  for (std::size_t i = 0; i < loaded.num_samples(); ++i) {
    EXPECT_EQ(loaded.labels()[i], remap.at(tt.train.labels()[i]));
  }
  for (std::size_t e = 0; e < loaded.sparse_features().nnz(); ++e) {
    EXPECT_DOUBLE_EQ(loaded.sparse_features().values()[e],
                     tt.train.sparse_features().values()[e]);
  }
  std::filesystem::remove(path);
}

TEST(Io, LibsvmSavesDenseSkipsZeros) {
  la::DenseMatrix x(2, 3, {1.0, 0.0, 2.0, 0.0, 0.0, 3.0});
  auto ds = Dataset::dense(std::move(x), {0, 1}, 2);
  const std::string path = testing::TempDir() + "/nadmm_dense.libsvm";
  save_libsvm(ds, path);
  const auto loaded = load_libsvm(path, 3);
  EXPECT_EQ(loaded.sparse_features().nnz(), 3u);
  EXPECT_DOUBLE_EQ(loaded.sparse_features().to_dense().at(1, 2), 3.0);
  std::filesystem::remove(path);
}

TEST(Io, LibsvmRemapsArbitraryLabels) {
  const std::string path = testing::TempDir() + "/nadmm_labels.libsvm";
  {
    std::ofstream out(path);
    out << "-1 1:1.0\n7 2:2.0\n-1 1:0.5\n";
  }
  const auto ds = load_libsvm(path);
  EXPECT_EQ(ds.num_classes(), 2);
  EXPECT_EQ(ds.labels()[0], 0);  // −1 → 0 (ascending remap)
  EXPECT_EQ(ds.labels()[1], 1);  // 7 → 1
  std::filesystem::remove(path);
}

TEST(Io, LibsvmMalformedInputThrows) {
  const std::string path = testing::TempDir() + "/nadmm_bad.libsvm";
  {
    std::ofstream out(path);
    out << "1 0:1.0\n";  // 0-based index is invalid
  }
  EXPECT_THROW(load_libsvm(path), RuntimeError);
  {
    std::ofstream out(path);
    out << "1 2:1.0 1:2.0\n";  // non-increasing indices
  }
  EXPECT_THROW(load_libsvm(path), RuntimeError);
  EXPECT_THROW(load_libsvm("/does/not/exist.libsvm"), RuntimeError);
  std::filesystem::remove(path);
}

// A strict parser rejects what the old one silently misparsed: `1x:2`
// used to load as feature 1, `2:1.5junk` as value 1.5. Every rejection
// must carry a file:line position.
TEST(Io, LibsvmRejectsMalformedTokensWithFileAndLine) {
  const std::string path = testing::TempDir() + "/nadmm_strict.libsvm";
  const auto expect_rejects = [&](const std::string& content,
                                  const std::string& fragment) {
    {
      std::ofstream out(path);
      out << "0 1:1.0\n" << content << '\n';
    }
    try {
      static_cast<void>(load_libsvm(path));
      FAIL() << "expected rejection of: " << content;
    } catch (const RuntimeError& e) {
      EXPECT_NE(std::string(e.what()).find(path + ":2"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_rejects("1 a:2.0", "non-numeric feature index");
  expect_rejects("1 1x:2.0", "non-numeric feature index");
  expect_rejects("1 1:2.5junk", "malformed feature value");
  expect_rejects("1 1:", "malformed feature token");
  expect_rejects("1 :2.0", "malformed feature token");
  expect_rejects("1 1:inf", "malformed feature value");
  expect_rejects("1.5 1:2.0", "cannot parse label");
  expect_rejects("abc 1:2.0", "cannot parse label");
  expect_rejects("1 3:1.0 2:1.0", "strictly increasing");
  std::filesystem::remove(path);
}

TEST(Io, LibsvmAcceptsPlusPrefixedLabelsAndValues) {
  // Standard LIBSVM binary sets (a9a, rcv1, ...) label positives "+1".
  const std::string path = testing::TempDir() + "/nadmm_plus.libsvm";
  {
    std::ofstream out(path);
    out << "+1 1:+0.5 3:1.0\n-1 2:0.25\n";
  }
  const auto ds = load_libsvm(path);
  EXPECT_EQ(ds.num_samples(), 2u);
  EXPECT_EQ(ds.num_classes(), 2);
  EXPECT_EQ(ds.labels()[0], 1);  // −1 → 0, +1 → 1 (ascending remap)
  EXPECT_EQ(ds.labels()[1], 0);
  EXPECT_DOUBLE_EQ(ds.sparse_features().to_dense().at(0, 0), 0.5);
  {
    std::ofstream out(path);
    out << "+-1 1:0.5\n";  // only a single leading '+' is tolerated
  }
  EXPECT_THROW(static_cast<void>(load_libsvm(path)), RuntimeError);
  std::filesystem::remove(path);
}

TEST(Io, ScanLibsvmReportsRowsFeaturesAndLabels) {
  const std::string path = testing::TempDir() + "/nadmm_scan.libsvm";
  {
    std::ofstream out(path);
    out << "# comment\n"
        << "5 1:1.0 9:2.0\n"
        << "-1 3:4.0\n"
        << "\n"
        << "5 2:1.0\n";
  }
  const LibsvmInfo info = scan_libsvm(path);
  EXPECT_EQ(info.num_rows, 3u);
  EXPECT_EQ(info.num_features, 9u);
  EXPECT_EQ(info.label_values, (std::vector<std::int64_t>{-1, 5}));
  std::filesystem::remove(path);
}

TEST(Io, ShardReaderStreamsRowsInBoundedChunks) {
  auto tt = make_e18_like(10, 5, 64, 9);
  const std::string path = testing::TempDir() + "/nadmm_shards.libsvm";
  save_libsvm(tt.train, path);

  const LibsvmInfo info = scan_libsvm(path);
  const Dataset whole = load_libsvm(path, 64);
  LibsvmShardReader reader(path, 64, info.label_values);
  std::size_t rows = 0, nnz = 0;
  int shards = 0;
  while (true) {
    const Dataset shard = reader.next_shard(4);
    if (shard.num_samples() == 0) break;
    ++shards;
    EXPECT_LE(shard.num_samples(), 4u);
    EXPECT_EQ(shard.num_features(), whole.num_features());
    EXPECT_EQ(shard.num_classes(), whole.num_classes());
    // Shard labels agree with the whole-file load at the same offset.
    for (std::size_t i = 0; i < shard.num_samples(); ++i) {
      EXPECT_EQ(shard.labels()[i], whole.labels()[rows + i]);
    }
    rows += shard.num_samples();
    nnz += shard.sparse_features().nnz();
  }
  EXPECT_TRUE(reader.done());
  EXPECT_EQ(shards, 3);  // 4 + 4 + 2 rows
  EXPECT_EQ(rows, 10u);
  EXPECT_EQ(reader.rows_read(), 10u);
  EXPECT_EQ(nnz, whole.sparse_features().nnz());
  std::filesystem::remove(path);
}

TEST(Io, ShardReaderNumbersDuplicatedOrUnsortedLabelsAscending) {
  const std::string path = testing::TempDir() + "/nadmm_dup_labels.libsvm";
  {
    std::ofstream out(path);
    out << "5 1:1.0\n-1 2:1.0\n";
  }
  // Duplicates and descending order must not distort the ascending remap.
  LibsvmShardReader reader(path, 2, {5, 5, -1});
  const Dataset shard = reader.next_shard(2);
  EXPECT_EQ(shard.num_classes(), 2);
  EXPECT_EQ(shard.labels()[0], 1);  // 5 → 1
  EXPECT_EQ(shard.labels()[1], 0);  // −1 → 0
  std::filesystem::remove(path);
}

TEST(Io, CsvToleratesSpacePaddingButStaysStrict) {
  const std::string path = testing::TempDir() + "/nadmm_padded.csv";
  {
    std::ofstream out(path);
    out << "1, 0.5,\t2.0\n0,1.5, -3.0\n";
  }
  const auto ds = load_csv(path, 2);
  EXPECT_EQ(ds.num_samples(), 2u);
  EXPECT_DOUBLE_EQ(ds.dense_features().at(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(ds.dense_features().at(1, 1), -3.0);
  {
    std::ofstream out(path);
    out << "1,0.5x,2.0\n";
  }
  EXPECT_THROW(static_cast<void>(load_csv(path, 2)), RuntimeError);
  std::filesystem::remove(path);
}

TEST(Io, LoadLibsvmTrainTestSplitsConsistently) {
  const std::string path = testing::TempDir() + "/nadmm_split.libsvm";
  {
    std::ofstream out(path);
    for (int i = 0; i < 20; ++i) {
      out << (i % 2 == 0 ? 3 : 8) << ' ' << (i + 1) << ":1.0\n";
    }
  }
  const TrainTest tt = load_libsvm_train_test(path, 15, 5);
  EXPECT_EQ(tt.train.num_samples(), 15u);
  EXPECT_EQ(tt.test.num_samples(), 5u);
  // Both splits share the file-global shape even though the test rows
  // only touch high feature indices.
  EXPECT_EQ(tt.train.num_features(), 20u);
  EXPECT_EQ(tt.test.num_features(), 20u);
  EXPECT_EQ(tt.train.num_classes(), 2);
  EXPECT_EQ(tt.test.num_classes(), 2);
  // All rows train when n_train = 0.
  const TrainTest all = load_libsvm_train_test(path, 0, 0);
  EXPECT_EQ(all.train.num_samples(), 20u);
  EXPECT_EQ(all.test.num_samples(), 0u);
  // Asking for more rows than the file has is an error, not a clamp.
  EXPECT_THROW(static_cast<void>(load_libsvm_train_test(path, 18, 5)),
               InvalidArgument);
  std::filesystem::remove(path);
}

TEST(Io, LoadLibsvmShardedMatchesMaterializedPath) {
  const std::string path = testing::TempDir() + "/nadmm_sharded.libsvm";
  {
    std::ofstream out(path);
    // 37 rows, 3 labels, irregular sparsity; values exercise the
    // max-abs standardize scale.
    for (int i = 0; i < 37; ++i) {
      out << (i % 3) << ' ' << (i % 7 + 1) << ':' << (0.25 * (i + 1)) << ' '
          << (i % 5 + 8) << ':' << (-1.5 * (i % 4 + 1)) << '\n';
    }
  }
  for (const bool standardize : {false, true}) {
    const TrainTest full = [&] {
      TrainTest tt = load_libsvm_train_test(path, 30, 7);
      if (standardize) {
        Standardizer sc;
        sc.fit(tt.train);
        tt.train = sc.transform(tt.train);
        tt.test = sc.transform(tt.test);
      }
      return tt;
    }();
    for (const PartitionMode mode :
         {PartitionMode::kContiguous, PartitionMode::kStrided,
          PartitionMode::kWeighted}) {
      ShardPlan plan;
      plan.mode = mode;
      plan.parts = 4;
      if (mode == PartitionMode::kWeighted) {
        plan.weights = {2.0, 1.0, 1.0, 1.0};
      }
      const ShardedDataset streamed =
          load_libsvm_sharded(path, 30, 7, plan, standardize);
      ASSERT_EQ(streamed.parts(), 4);
      EXPECT_FALSE(streamed.has_full());
      EXPECT_EQ(streamed.train_samples, 30u);
      EXPECT_EQ(streamed.test_samples, 7u);
      EXPECT_EQ(streamed.num_features, full.train.num_features());
      EXPECT_EQ(streamed.num_classes, full.train.num_classes());
      std::size_t rows = 0;
      for (int r = 0; r < 4; ++r) {
        // Each streamed shard must be bit-identical to sharding the
        // materialized (and standardized) matrix the same way.
        const Dataset want = shard_dataset(full.train, plan, r);
        const Dataset& got = streamed.ranks[static_cast<std::size_t>(r)].train;
        ASSERT_EQ(got.num_samples(), want.num_samples());
        rows += got.num_samples();
        ASSERT_TRUE(std::equal(got.labels().begin(), got.labels().end(),
                               want.labels().begin()));
        const auto gv = got.csr_view();
        const auto wv = want.csr_view();
        ASSERT_EQ(gv.nnz(), wv.nnz());
        const auto gb = gv.row_ptr().front();
        const auto wb = wv.row_ptr().front();
        for (std::size_t e = 0; e < gv.nnz(); ++e) {
          ASSERT_EQ(gv.values()[static_cast<std::size_t>(gb) + e],
                    wv.values()[static_cast<std::size_t>(wb) + e])
              << "mode " << to_string(mode) << " standardize " << standardize;
          ASSERT_EQ(gv.col_idx()[static_cast<std::size_t>(gb) + e],
                    wv.col_idx()[static_cast<std::size_t>(wb) + e]);
        }
        const Dataset want_test = shard_dataset(full.test, plan, r);
        const Dataset& got_test =
            streamed.ranks[static_cast<std::size_t>(r)].test;
        ASSERT_EQ(got_test.num_samples(), want_test.num_samples());
      }
      EXPECT_EQ(rows, 30u);
      // Peak accounting: the streamed path holds only the shards — less
      // than the materialized path's full matrix + shard copies.
      std::size_t copy_path = full.approx_bytes();
      for (int r = 0; r < 4; ++r) {
        copy_path += shard_contiguous(full.train, 4, r).approx_bytes();
        copy_path += shard_contiguous(full.test, 4, r).approx_bytes();
      }
      EXPECT_LT(streamed.resident_bytes, copy_path);
    }
  }
  std::filesystem::remove(path);
}

TEST(Io, CsvRoundTripDense) {
  auto tt = make_blobs(25, 5, 6, 3, 3.0, 1.0, 44);
  const std::string path = testing::TempDir() + "/nadmm_blobs.csv";
  save_csv(tt.train, path);
  const auto loaded = load_csv(path, 3);
  EXPECT_EQ(loaded.num_samples(), 25u);
  EXPECT_EQ(loaded.num_features(), 6u);
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(loaded.labels()[i], tt.train.labels()[i]);
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(loaded.dense_features().at(i, j),
                       tt.train.dense_features().at(i, j));
    }
  }
  std::filesystem::remove(path);
}

TEST(Io, CsvRejectsSparseAndRaggedRows) {
  auto sparse = make_e18_like(10, 5, 128, 1);
  EXPECT_THROW(save_csv(sparse.train, "/tmp/x.csv"), InvalidArgument);
  const std::string path = testing::TempDir() + "/nadmm_ragged.csv";
  {
    std::ofstream out(path);
    out << "0,1.0,2.0\n1,3.0\n";
  }
  EXPECT_THROW(load_csv(path, 2), InvalidArgument);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace nadmm::data
