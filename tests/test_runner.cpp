// Tests for the experiment harness (src/runner) and the solver option
// plumbing the benches rely on.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "runner/harness.hpp"
#include "runner/options.hpp"
#include "support/check.hpp"

namespace nadmm::runner {
namespace {

/// Contiguous zero-copy shards sized to the cluster — the explicit form
/// of what the deprecated (train, test) solver overloads did implicitly.
nadmm::data::ShardedDataset shards(const nadmm::comm::SimCluster& cluster,
                                   const nadmm::data::Dataset& train,
                                   const nadmm::data::Dataset* test) {
  nadmm::data::ShardPlan plan;
  plan.parts = cluster.size();
  return nadmm::data::make_sharded(train, test, plan);
}

TEST(HarnessOptions, AdmmOptionsMirrorConfig) {
  ExperimentConfig c;
  c.iterations = 17;
  c.lambda = 0.25;
  c.cg_iterations = 23;
  c.cg_tol = 1e-6;
  c.line_search_iterations = 4;
  const auto o = admm_options(c);
  EXPECT_EQ(o.max_iterations, 17);
  EXPECT_DOUBLE_EQ(o.lambda, 0.25);
  EXPECT_EQ(o.cg.max_iterations, 23);
  EXPECT_DOUBLE_EQ(o.cg.rel_tol, 1e-6);
  EXPECT_EQ(o.line_search.max_iterations, 4);
}

TEST(HarnessOptions, GiantOptionsMirrorConfig) {
  ExperimentConfig c;
  c.iterations = 9;
  c.lambda = 0.5;
  c.cg_iterations = 7;
  c.line_search_iterations = 6;
  const auto o = giant_options(c);
  EXPECT_EQ(o.max_iterations, 9);
  EXPECT_DOUBLE_EQ(o.lambda, 0.5);
  EXPECT_EQ(o.cg.max_iterations, 7);
  EXPECT_EQ(o.line_search_steps, 6);
}

TEST(HarnessOptions, DaneEpochsCappedAtTen) {
  // The paper runs InexactDANE/AIDE for only 10 epochs.
  ExperimentConfig c;
  c.iterations = 100;
  EXPECT_EQ(dane_options(c).max_iterations, 10);
  c.iterations = 3;
  EXPECT_EQ(dane_options(c).max_iterations, 3);
}

TEST(HarnessOptions, SgdAndDiscoMirrorConfig) {
  ExperimentConfig c;
  c.iterations = 12;
  c.lambda = 2.0;
  EXPECT_EQ(sgd_options(c).epochs, 12);
  EXPECT_DOUBLE_EQ(sgd_options(c).lambda, 2.0);
  EXPECT_EQ(disco_options(c).max_iterations, 12);
}

TEST(HarnessCluster, BuildsConfiguredClusterAndRejectsBadSpecs) {
  ExperimentConfig c;
  c.workers = 3;
  c.device = "cpu";
  c.network = "eth10";
  auto cluster = make_cluster(c);
  EXPECT_EQ(cluster.size(), 3);
  EXPECT_EQ(cluster.network().name, "eth10");
  c.network = "bogus";
  EXPECT_THROW(make_cluster(c), InvalidArgument);
  c.network = "ib100";
  c.device = "bogus";
  EXPECT_THROW(make_cluster(c), InvalidArgument);
}

TEST(HarnessData, E18FeatureCountHonoured) {
  ExperimentConfig c;
  c.dataset = "e18";
  c.n_train = 50;
  c.n_test = 10;
  c.e18_features = 256;
  const auto tt = make_data(c);
  EXPECT_EQ(tt.train.num_features(), 256u);
}

TEST(HarnessData, SeedChangesData) {
  ExperimentConfig c;
  c.dataset = "blobs";
  c.n_train = 40;
  c.n_test = 10;
  c.e18_features = 16;
  c.seed = 1;
  const auto a = make_data(c);
  c.seed = 2;
  const auto b = make_data(c);
  int same = 0;
  const auto da = a.train.dense_features().data();
  const auto db = b.train.dense_features().data();
  for (std::size_t i = 0; i < da.size(); ++i) same += (da[i] == db[i]);
  EXPECT_LT(same, 5);
}

TEST(HarnessCsv, EmptyTraceProducesHeaderOnly) {
  core::RunResult r;
  const std::string path = testing::TempDir() + "/nadmm_empty_trace.csv";
  write_trace_csv(r, path);
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1);  // header only
  std::filesystem::remove(path);
}

TEST(HarnessTrace, TimeToObjectiveHelpers) {
  core::RunResult r;
  core::IterationStats a;
  a.iteration = 1;
  a.objective = 10.0;
  a.sim_seconds = 0.5;
  core::IterationStats b;
  b.iteration = 2;
  b.objective = 2.0;
  b.sim_seconds = 1.5;
  r.trace = {a, b};
  EXPECT_DOUBLE_EQ(r.sim_time_to_objective(5.0), 1.5);
  EXPECT_EQ(r.iterations_to_objective(5.0), 2);
  EXPECT_DOUBLE_EQ(r.sim_time_to_objective(11.0), 0.5);
  EXPECT_DOUBLE_EQ(r.sim_time_to_objective(1.0), -1.0);
  EXPECT_EQ(r.iterations_to_objective(1.0), -1);
}

TEST(HarnessEarlyStop, AdmmObjectiveTargetStopsRun) {
  ExperimentConfig c;
  c.dataset = "blobs";
  c.n_train = 300;
  c.n_test = 50;
  c.e18_features = 10;
  c.workers = 2;
  c.iterations = 100;
  c.lambda = 1e-3;
  const auto tt = make_data(c);
  auto opts = admm_options(c);
  // A loose target the very first iterations can reach.
  opts.objective_target = 300.0 * 1.5;
  auto cluster = make_cluster(c);
  const auto r = core::newton_admm(cluster, shards(cluster, tt.train, nullptr), opts);
  EXPECT_LT(r.iterations, 100);
  EXPECT_LE(r.final_objective, opts.objective_target);
}

TEST(HarnessEarlyStop, GiantObjectiveTargetStopsRun) {
  ExperimentConfig c;
  c.dataset = "blobs";
  c.n_train = 300;
  c.n_test = 50;
  c.e18_features = 10;
  c.workers = 2;
  c.iterations = 100;
  c.lambda = 1e-3;
  const auto tt = make_data(c);
  auto opts = giant_options(c);
  opts.objective_target = 300.0 * 1.5;
  auto cluster = make_cluster(c);
  const auto r = baselines::giant(cluster, shards(cluster, tt.train, nullptr), opts);
  EXPECT_LT(r.iterations, 100);
  EXPECT_LE(r.final_objective, opts.objective_target);
}


// ------------------------------------------------- declarative options

TEST(OptionSpecs, RegisterValidateAndRejectWithFlagName) {
  OptionSet opts;
  opts.add_int("count", 4, "how many", v_int_min(1));
  opts.add_string("mode", "fast", "speed", v_one_of({"fast", "slow"}));
  opts.add_double("rate", 0.5, "per second", v_double_min(0.0, false));
  CliParser cli("test");
  opts.register_into(cli);
  const char* good[] = {"prog", "--count", "2", "--mode=slow", "--rate", "1.5"};
  ASSERT_TRUE(cli.parse(6, good));
  opts.validate(cli);  // no throw
  EXPECT_EQ(cli.get_int("count"), 2);
  EXPECT_EQ(cli.get_string("mode"), "slow");

  CliParser bad("test");
  opts.register_into(bad);
  const char* argv[] = {"prog", "--count", "0"};
  ASSERT_TRUE(bad.parse(3, argv));
  try {
    opts.validate(bad);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("--count"), std::string::npos)
        << "rejection must name the flag: " << e.what();
  }
}

TEST(OptionSpecs, DuplicateNamesAreRejected) {
  OptionSet opts;
  opts.add_int("n", 1, "first");
  EXPECT_THROW(opts.add_string("n", "x", "dup"), InvalidArgument);
  OptionSet other;
  other.add_int("n", 2, "also n");
  EXPECT_THROW(opts.extend(other), InvalidArgument);
}

TEST(OptionSpecs, DomainValidatorsCoverTheSharedAxes) {
  const auto ok = [](const OptionValidator& v, const std::string& value) {
    v("--x", value);  // must not throw
  };
  const auto rejects = [](const OptionValidator& v, const std::string& value) {
    EXPECT_THROW(v("--x", value), InvalidArgument) << value;
  };
  ok(v_device_list(), "p100+cpu");
  rejects(v_device_list(), "p100+warp9");
  ok(v_network(), "ideal");
  rejects(v_network(), "carrier-pigeon");
  ok(v_straggler(), "1:4");
  rejects(v_straggler(), "1:");
  ok(v_partition(), "weighted");
  rejects(v_partition(), "sharded");
  ok(v_solver(), "newton-admm");
  rejects(v_solver(), "sgd");
  ok(v_arrival(), "bursty:400:4000:0.5:0.2");
  rejects(v_arrival(), "bursty:400:100:0.5:0.2");
  ok(v_batch_policy(), "deadline:16:0.005");
  rejects(v_batch_policy(), "deadline:16");
  ok(v_each(',', v_network()), "ideal, eth10,wan");
  rejects(v_each(',', v_network()), "ideal,nope");
  EXPECT_EQ(parse_byte_size("--b", "512m"), 512u << 20);
  EXPECT_EQ(parse_byte_size("--b", "2G"), std::size_t{2} << 30);
  EXPECT_EQ(parse_byte_size("--b", "0"), 0u);
  EXPECT_THROW(parse_byte_size("--b", "12q"), InvalidArgument);
}

TEST(OptionSpecs, SharedTablesStayConsistent) {
  // run/sweep/serve all build on these tables; the names the registry's
  // knob catalog uses must keep resolving here.
  EXPECT_NE(scenario_options().find("penalty"), nullptr);
  EXPECT_NE(scenario_options().find("sgd-batch"), nullptr);
  EXPECT_NE(serving_options().find("arrival"), nullptr);
  EXPECT_EQ(serving_options().find("penalty"), nullptr);
  const auto knob = describe_knob("cg-iterations");
  EXPECT_EQ(knob.type, "int");
  EXPECT_EQ(knob.default_value, "10");
  EXPECT_FALSE(knob.description.empty());
}

}  // namespace
}  // namespace nadmm::runner
