// Property-based sweeps across randomized instances: invariants that
// must hold for *every* shape/seed, exercised with parameterized suites.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/cluster.hpp"
#include "data/generators.hpp"
#include "data/partition.hpp"
#include "la/dense_matrix.hpp"
#include "la/vector_ops.hpp"
#include "model/softmax.hpp"
#include "solvers/cg.hpp"
#include "support/rng.hpp"

namespace nadmm {
namespace {

// ---------------------------------------------------------------- GEMM

struct GemmShape {
  std::size_t m, k, n;
};

class GemmProperty : public testing::TestWithParam<GemmShape> {};

TEST_P(GemmProperty, TransposeIdentity) {
  // (Aᵀ B)ᵀ computed via gemm_tn must match B ᵀ A computed via gemm_tn
  // with roles swapped: C1 = AᵀB and C2 = BᵀA satisfy C1 = C2ᵀ.
  const auto [m, k, n] = GetParam();
  Rng rng(m * 73 + k * 7 + n);
  la::DenseMatrix a(k, m), b(k, n);
  for (double& v : a.data()) v = rng.normal();
  for (double& v : b.data()) v = rng.normal();
  la::DenseMatrix c1(m, n), c2(n, m);
  la::gemm_tn(1.0, a, b, 0.0, c1);
  la::gemm_tn(1.0, b, a, 0.0, c2);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(c1.at(i, j), c2.at(j, i), 1e-9);
    }
  }
}

TEST_P(GemmProperty, LinearityInInput) {
  const auto [m, k, n] = GetParam();
  Rng rng(m + k * 31 + n * 17);
  la::DenseMatrix a(m, k), b1(k, n), b2(k, n), bsum(k, n);
  for (double& v : a.data()) v = rng.normal();
  for (std::size_t e = 0; e < b1.size(); ++e) {
    b1.data()[e] = rng.normal();
    b2.data()[e] = rng.normal();
    bsum.data()[e] = 2.0 * b1.data()[e] - 0.5 * b2.data()[e];
  }
  la::DenseMatrix c1(m, n), c2(m, n), cs(m, n);
  la::gemm_nn(1.0, a, b1, 0.0, c1);
  la::gemm_nn(1.0, a, b2, 0.0, c2);
  la::gemm_nn(1.0, a, bsum, 0.0, cs);
  for (std::size_t e = 0; e < cs.size(); ++e) {
    EXPECT_NEAR(cs.data()[e], 2.0 * c1.data()[e] - 0.5 * c2.data()[e], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmProperty,
                         testing::Values(GemmShape{3, 4, 5},
                                         GemmShape{17, 33, 9},
                                         GemmShape{64, 128, 19},
                                         GemmShape{1, 300, 2},
                                         GemmShape{301, 2, 1}));

// ---------------------------------------------------------------- softmax

class SoftmaxProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SoftmaxProperty, ProbabilitiesImplyConvexLowerBound) {
  // Convexity: F(y) >= F(x) + <g(x), y-x> for random pairs.
  auto tt = data::make_blobs(40, 5, 6, 4, 3.0, 1.0, GetParam());
  model::SoftmaxObjective obj(tt.train, 1e-3);
  Rng rng(GetParam() * 1000 + 1);
  std::vector<double> x(obj.dim()), y(obj.dim()), g(obj.dim());
  for (int trial = 0; trial < 5; ++trial) {
    for (std::size_t i = 0; i < obj.dim(); ++i) {
      x[i] = 0.5 * rng.normal();
      y[i] = 0.5 * rng.normal();
    }
    const double fx = obj.value_and_gradient(x, g);
    double linear = fx;
    for (std::size_t i = 0; i < obj.dim(); ++i) linear += g[i] * (y[i] - x[i]);
    EXPECT_GE(obj.value(y), linear - 1e-8 * (1.0 + std::abs(linear)));
  }
}

TEST_P(SoftmaxProperty, GradientNormZeroOnlyNearStationarity) {
  // ‖g‖ = 0 would require P = Y exactly; at random points it is > 0.
  auto tt = data::make_blobs(30, 5, 5, 3, 3.0, 1.0, GetParam());
  model::SoftmaxObjective obj(tt.train, 0.0);
  Rng rng(GetParam() * 997 + 3);
  std::vector<double> x(obj.dim()), g(obj.dim());
  for (double& v : x) v = rng.normal();
  obj.gradient(x, g);
  EXPECT_GT(la::nrm2(g), 1e-6);
}

TEST_P(SoftmaxProperty, ShardValueAdditivity) {
  // Σ_shards f_shard(x) == f_full(x): the identity distributed solvers
  // rely on when they allreduce local values/gradients.
  auto tt = data::make_blobs(57, 5, 6, 4, 3.0, 1.0, GetParam());
  model::SoftmaxObjective full(tt.train, 0.0);
  Rng rng(GetParam() * 31 + 5);
  std::vector<double> x(full.dim());
  for (double& v : x) v = 0.3 * rng.normal();
  double sum = 0.0;
  std::vector<double> g_sum(full.dim(), 0.0), g_part(full.dim());
  for (int r = 0; r < 3; ++r) {
    const auto shard = data::shard_contiguous(tt.train, 3, r);
    model::SoftmaxObjective part(shard, 0.0);
    sum += part.value_and_gradient(x, g_part);
    la::axpy(1.0, g_part, g_sum);
  }
  std::vector<double> g_full(full.dim());
  const double f_full = full.value_and_gradient(x, g_full);
  EXPECT_NEAR(sum, f_full, 1e-8 * (1.0 + std::abs(f_full)));
  for (std::size_t i = 0; i < full.dim(); i += 5) {
    EXPECT_NEAR(g_sum[i], g_full[i], 1e-8 * (1.0 + std::abs(g_full[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftmaxProperty,
                         testing::Values(11u, 22u, 33u, 44u));

// ---------------------------------------------------------------- CG

class CgProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(CgProperty, ErrorEnergyNormDecreasesWithBudget) {
  // The classical CG guarantee: the A-norm of the error ‖p_k − p*‖_A is
  // monotonically non-increasing in the iteration count. (The plain
  // 2-norm residual is NOT monotone — a classic CG gotcha.)
  Rng rng(GetParam());
  const std::size_t n = 12;
  la::DenseMatrix a(n, n);
  // A = MᵀM + I (SPD).
  la::DenseMatrix mfac(n, n);
  for (double& v : mfac.data()) v = rng.normal();
  la::gemm_tn(1.0, mfac, mfac, 0.0, a);
  for (std::size_t i = 0; i < n; ++i) a.at(i, i) += 1.0;
  std::vector<double> g(n);
  for (double& v : g) v = rng.normal();
  const auto hvp = [&](std::span<const double> v, std::span<double> out) {
    la::gemv(1.0, a, v, 0.0, out);
  };
  // Reference solution from a full-budget run.
  std::vector<double> p_star(n);
  solvers::CgOptions exact;
  exact.max_iterations = static_cast<int>(n) + 4;
  exact.rel_tol = 1e-14;
  solvers::conjugate_gradient(hvp, g, p_star, exact);

  std::vector<double> err(n), aerr(n);
  double previous = 1e100;
  for (int budget : {1, 2, 4, 8, 12}) {
    std::vector<double> p(n);
    solvers::CgOptions opts;
    opts.max_iterations = budget;
    opts.rel_tol = 1e-14;
    solvers::conjugate_gradient(hvp, g, p, opts);
    for (std::size_t i = 0; i < n; ++i) err[i] = p[i] - p_star[i];
    hvp(err, aerr);
    const double energy = la::dot(err, aerr);
    EXPECT_LE(energy, previous * (1.0 + 1e-9) + 1e-12) << "budget=" << budget;
    previous = energy;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CgProperty, testing::Values(1u, 2u, 3u, 4u));

// ---------------------------------------------------------------- comm

class CollectiveProperty : public testing::TestWithParam<int> {};

TEST_P(CollectiveProperty, GatherScatterRoundTrip) {
  // scatter(gather(x)) must reproduce every rank's contribution.
  const int n = GetParam();
  comm::SimCluster cluster(n, la::DeviceModel{"t", 1.0},
                           comm::ideal_network());
  cluster.run([&](comm::RankCtx& ctx) {
    std::vector<double> mine(13);
    Rng rng(static_cast<std::uint64_t>(ctx.rank()) + 100);
    for (double& v : mine) v = rng.normal();
    const std::vector<double> original = mine;
    std::vector<double> all;
    ctx.gather(mine, all, 0);
    std::vector<double> back(13);
    ctx.scatter(all, back, 0);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_DOUBLE_EQ(back[i], original[i]);
    }
  });
}

TEST_P(CollectiveProperty, AllreduceLinearity) {
  // allreduce(αx + βy) == α·allreduce(x) + β·allreduce(y).
  const int n = GetParam();
  comm::SimCluster cluster(n, la::DeviceModel{"t", 1.0},
                           comm::ideal_network());
  cluster.run([&](comm::RankCtx& ctx) {
    Rng rng(static_cast<std::uint64_t>(ctx.rank()) + 7);
    std::vector<double> x(9), y(9), combo(9);
    for (std::size_t i = 0; i < 9; ++i) {
      x[i] = rng.normal();
      y[i] = rng.normal();
      combo[i] = 2.0 * x[i] - 3.0 * y[i];
    }
    ctx.allreduce_sum(x);
    ctx.allreduce_sum(y);
    ctx.allreduce_sum(combo);
    for (std::size_t i = 0; i < 9; ++i) {
      EXPECT_NEAR(combo[i], 2.0 * x[i] - 3.0 * y[i], 1e-9);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, CollectiveProperty, testing::Values(2, 3, 5, 8));

// ---------------------------------------------------------------- data

TEST(DataProperty, EveryGeneratorIsSeedDeterministic) {
  for (const char* name : {"higgs", "mnist", "cifar", "e18", "blobs"}) {
    auto a = data::make_by_name(name, 40, 10, 128, 77);
    auto b = data::make_by_name(name, 40, 10, 128, 77);
    ASSERT_EQ(a.train.num_samples(), b.train.num_samples()) << name;
    EXPECT_TRUE(std::equal(a.train.labels().begin(), a.train.labels().end(),
                           b.train.labels().begin()))
        << name;
    if (a.train.is_sparse()) {
      EXPECT_TRUE(std::equal(a.train.sparse_features().values().begin(),
                             a.train.sparse_features().values().end(),
                             b.train.sparse_features().values().begin()))
          << name;
    } else {
      EXPECT_TRUE(std::equal(a.train.dense_features().data().begin(),
                             a.train.dense_features().data().end(),
                             b.train.dense_features().data().begin()))
          << name;
    }
  }
}

TEST(DataProperty, ShardingPreservesEveryLabelOnce) {
  auto tt = data::make_blobs(83, 10, 5, 4, 3.0, 1.0, 9);
  for (int parts : {1, 2, 3, 7}) {
    std::vector<std::int32_t> collected;
    for (int r = 0; r < parts; ++r) {
      const auto s = data::shard_contiguous(tt.train, parts, r);
      collected.insert(collected.end(), s.labels().begin(), s.labels().end());
    }
    ASSERT_EQ(collected.size(), tt.train.num_samples());
    EXPECT_TRUE(std::equal(collected.begin(), collected.end(),
                           tt.train.labels().begin()))
        << "parts=" << parts;
  }
}

}  // namespace
}  // namespace nadmm
