// Tests for the single-node first-order solvers (GD, momentum, Adagrad,
// Adam): convergence on convex problems, agreement with Newton-CG, and
// the step-size sensitivity the paper's §1.2 attributes to this family.
#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.hpp"
#include "la/vector_ops.hpp"
#include "model/softmax.hpp"
#include "solvers/first_order.hpp"
#include "solvers/minibatch.hpp"
#include "solvers/newton.hpp"
#include "support/check.hpp"

namespace nadmm::solvers {
namespace {

data::TrainTest problem(std::uint64_t seed) {
  return data::make_blobs(200, 50, 8, 3, 3.0, 1.0, seed);
}

class RuleSweep : public testing::TestWithParam<FirstOrderRule> {};

TEST_P(RuleSweep, DecreasesConvexObjective) {
  auto tt = problem(1);
  model::SoftmaxObjective obj(tt.train, 1e-2);
  FirstOrderOptions opts;
  opts.rule = GetParam();
  opts.max_iterations = 300;
  // Scale-appropriate steps per rule (sum-objective gradients are large).
  switch (opts.rule) {
    case FirstOrderRule::kGradientDescent: opts.step_size = 2e-3; break;
    case FirstOrderRule::kMomentum:
      opts.step_size = 5e-4;
      break;
    case FirstOrderRule::kAdagrad: opts.step_size = 0.5; break;
    case FirstOrderRule::kAdam: opts.step_size = 0.05; break;
  }
  std::vector<double> x0(obj.dim(), 0.0);
  const double f0 = obj.value(x0);
  const auto r = first_order_minimize(obj, {}, std::move(x0), opts);
  EXPECT_LT(r.final_value, 0.5 * f0) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllRules, RuleSweep,
                         testing::Values(FirstOrderRule::kGradientDescent,
                                         FirstOrderRule::kMomentum,
                                         FirstOrderRule::kAdagrad,
                                         FirstOrderRule::kAdam));

TEST(FirstOrder, GdAgreesWithNewtonOnStronglyConvexProblem) {
  auto tt = problem(2);
  model::SoftmaxObjective obj(tt.train, 1.0);  // strong convexity
  FirstOrderOptions opts;
  opts.max_iterations = 5000;
  opts.step_size = 2e-3;
  opts.gradient_tol = 1e-6;
  const auto gd = first_order_minimize(obj, {}, std::vector<double>(obj.dim(), 0.0),
                                       opts);
  NewtonOptions nopts;
  nopts.gradient_tol = 1e-10;
  nopts.cg.max_iterations = 100;
  nopts.cg.rel_tol = 1e-10;
  const auto newton =
      newton_cg(obj, std::vector<double>(obj.dim(), 0.0), nopts);
  EXPECT_TRUE(gd.converged);
  EXPECT_NEAR(gd.final_value, newton.final_value,
              1e-4 * std::abs(newton.final_value) + 1e-6);
}

TEST(FirstOrder, NewtonNeedsFarFewerIterations) {
  // The paper's core motivation, in miniature.
  auto tt = problem(3);
  model::SoftmaxObjective obj(tt.train, 1e-2);
  FirstOrderOptions opts;
  opts.max_iterations = 100000;
  opts.step_size = 2e-3;
  opts.gradient_tol = 1e-4;
  const auto gd = first_order_minimize(obj, {}, std::vector<double>(obj.dim(), 0.0),
                                       opts);
  NewtonOptions nopts;
  nopts.gradient_tol = 1e-4;
  const auto newton =
      newton_cg(obj, std::vector<double>(obj.dim(), 0.0), nopts);
  ASSERT_TRUE(gd.converged);
  ASSERT_TRUE(newton.converged);
  EXPECT_GT(gd.iterations, 20 * newton.iterations);
}

TEST(FirstOrder, StepSizeSensitivity) {
  // Too-large steps diverge, tiny steps crawl — the tuning burden the
  // paper contrasts with second-order robustness.
  auto tt = problem(4);
  model::SoftmaxObjective obj(tt.train, 1e-2);
  FirstOrderOptions big;
  big.max_iterations = 50;
  big.step_size = 1.0;
  const auto diverged =
      first_order_minimize(obj, {}, std::vector<double>(obj.dim(), 0.0), big);
  FirstOrderOptions good = big;
  good.step_size = 2e-3;
  const auto ok =
      first_order_minimize(obj, {}, std::vector<double>(obj.dim(), 0.0), good);
  EXPECT_TRUE(!std::isfinite(diverged.final_value) ||
              diverged.final_value > 10.0 * ok.final_value);
}

TEST(FirstOrder, StochasticModeUsesBatches) {
  auto tt = problem(5);
  model::SoftmaxObjective obj(tt.train, 1e-2);
  auto batch_data = make_batches(tt.train, 32);
  std::vector<model::SoftmaxObjective> owned;
  std::vector<model::Objective*> batches;
  for (const auto& b : batch_data) owned.emplace_back(b, 0.0);
  for (auto& b : owned) batches.push_back(&b);
  FirstOrderOptions opts;
  opts.max_iterations = 2000;
  opts.step_size = 1e-3;
  opts.batch_size = 32;
  std::vector<double> x0(obj.dim(), 0.0);
  const double f0 = obj.value(x0);
  const auto r = first_order_minimize(obj, batches, std::move(x0), opts);
  EXPECT_LT(r.final_value, 0.5 * f0);
}

TEST(FirstOrder, TraceRecordsEveryIteration) {
  auto tt = problem(6);
  model::SoftmaxObjective obj(tt.train, 1e-2);
  FirstOrderOptions opts;
  opts.max_iterations = 25;
  opts.step_size = 1e-3;
  opts.record_trace = true;
  const auto r = first_order_minimize(obj, {}, std::vector<double>(obj.dim(), 0.0),
                                      opts);
  EXPECT_EQ(r.value_trace.size(), 25u);
  EXPECT_LT(r.value_trace.back(), r.value_trace.front());
}

TEST(FirstOrder, RuleParsing) {
  EXPECT_EQ(first_order_rule_from_string("gd"), FirstOrderRule::kGradientDescent);
  EXPECT_EQ(first_order_rule_from_string("adam"), FirstOrderRule::kAdam);
  EXPECT_EQ(to_string(FirstOrderRule::kAdagrad), "adagrad");
  EXPECT_THROW(first_order_rule_from_string("??"), InvalidArgument);
}

TEST(FirstOrder, ValidatesOptions) {
  auto tt = problem(7);
  model::SoftmaxObjective obj(tt.train, 0.0);
  FirstOrderOptions bad;
  bad.step_size = 0.0;
  EXPECT_THROW(first_order_minimize(obj, {}, std::vector<double>(obj.dim(), 0.0),
                                    bad),
               InvalidArgument);
  FirstOrderOptions stochastic;
  stochastic.batch_size = 16;  // but no batches supplied
  EXPECT_THROW(first_order_minimize(
                   obj, {}, std::vector<double>(obj.dim(), 0.0), stochastic),
               InvalidArgument);
  EXPECT_THROW(first_order_minimize(obj, {}, std::vector<double>(3, 0.0),
                                    FirstOrderOptions{}),
               InvalidArgument);
}

}  // namespace
}  // namespace nadmm::solvers
