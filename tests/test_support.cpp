// Unit tests for src/support: CLI parser, RNG, table, CSV, checks.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "support/topology.hpp"

namespace nadmm {
namespace {

// ---------------------------------------------------------------- checks

TEST(Check, ThrowsInvalidArgumentWithMessage) {
  try {
    NADMM_CHECK(1 == 2, "custom context");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Check, AssertThrowsRuntimeError) {
  EXPECT_THROW(NADMM_ASSERT(false), RuntimeError);
  EXPECT_NO_THROW(NADMM_ASSERT(true));
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(123), b(124);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  const int trials = 80000;
  for (int i = 0; i < trials; ++i) ++counts[rng.uniform_index(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, trials / 8, trials / 8 * 0.1);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, PoissonMeanMatchesSmallAndLargeLambda) {
  Rng rng(17);
  for (double lambda : {0.5, 3.0, 80.0}) {
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(lambda));
    EXPECT_NEAR(sum / n, lambda, lambda * 0.05 + 0.02) << "lambda=" << lambda;
  }
}

TEST(Rng, PoissonZeroRate) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, SplitGivesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  // Parent's continued stream should not equal the child's.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == child.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

// ---------------------------------------------------------------- cli

TEST(Cli, ParsesIntsDoublesStringsFlags) {
  CliParser cli("test");
  cli.add_int("count", 5, "a count")
      .add_double("rate", 0.5, "a rate")
      .add_string("name", "default", "a name")
      .add_flag("verbose", "verbosity");
  const char* argv[] = {"prog", "--count", "10", "--rate=2.25",
                        "--name", "hello", "--verbose", "positional"};
  ASSERT_TRUE(cli.parse(8, argv));
  EXPECT_EQ(cli.get_int("count"), 10);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 2.25);
  EXPECT_EQ(cli.get_string("name"), "hello");
  EXPECT_TRUE(cli.get_flag("verbose"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, DefaultsApplyWhenUnset) {
  CliParser cli("test");
  cli.add_int("count", 5, "a count").add_flag("verbose", "v");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("count"), 5);
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, UnknownOptionThrows) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(cli.parse(3, argv), InvalidArgument);
}

TEST(Cli, MalformedIntThrowsOnAccess) {
  CliParser cli("test");
  cli.add_int("count", 5, "a count");
  const char* argv[] = {"prog", "--count", "xyz"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW(static_cast<void>(cli.get_int("count")), InvalidArgument);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli("test");
  cli.add_int("count", 5, "a count");
  const char* argv[] = {"prog", "--count"};
  EXPECT_THROW(cli.parse(2, argv), InvalidArgument);
}

TEST(Cli, WrongTypeAccessThrows) {
  CliParser cli("test");
  cli.add_int("count", 5, "a count");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_THROW(static_cast<void>(cli.get_double("count")), InvalidArgument);
  EXPECT_THROW(static_cast<void>(cli.get_int("never-registered")), InvalidArgument);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

// ---------------------------------------------------------------- table

TEST(Table, AlignsColumnsAndCountsRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22222 |"), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt_int(-42), "-42");
}

// ---------------------------------------------------------------- csv

TEST(Csv, RoundTripNumericRows) {
  const std::string path = testing::TempDir() + "/nadmm_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.add_row(std::vector<double>{1.5, 2.5});
    csv.add_row(std::vector<std::string>{"x", "y"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::filesystem::remove(path);
}

TEST(Csv, ArityMismatchThrows) {
  const std::string path = testing::TempDir() + "/nadmm_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.add_row(std::vector<std::string>{"one"}), InvalidArgument);
  std::filesystem::remove(path);
}

TEST(Csv, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), RuntimeError);
}

// ------------------------------------------------------------- topology

using support::NumaNode;
using support::Topology;
using support::current_node;
using support::parse_cpulist;

TEST(Topology, ParseCpulistHandlesSysfsShapes) {
  using V = std::vector<int>;
  EXPECT_EQ(parse_cpulist("0-3,8,10-11\n"), (V{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(parse_cpulist("5"), (V{5}));
  EXPECT_EQ(parse_cpulist("0-0"), (V{0}));
  EXPECT_EQ(parse_cpulist(""), V{});
  EXPECT_EQ(parse_cpulist("\n"), V{});
  // Malformed pieces are skipped, valid ones kept — a probe never throws.
  EXPECT_EQ(parse_cpulist("junk,2,x-y,4-6"), (V{2, 4, 5, 6}));
  // Duplicates collapse.
  EXPECT_EQ(parse_cpulist("1,1,0-2"), (V{0, 1, 2}));
}

TEST(Topology, DefaultAndProbeAlwaysYieldAtLeastOneNode) {
  const Topology fallback;
  EXPECT_EQ(fallback.node_count(), 1);
  EXPECT_TRUE(fallback.single_node());
  EXPECT_EQ(fallback.node_of_cpu(0), 0);
  EXPECT_EQ(fallback.node_of_cpu(9999), 0);

  const Topology probed = Topology::probe();
  EXPECT_GE(probed.node_count(), 1);
  EXPECT_EQ(Topology::system().node_count(), probed.node_count());
  // current_node always lands on a real node id (0 on fallback).
  const int node = current_node();
  bool known = node == 0;
  for (const NumaNode& n : probed.nodes()) known = known || n.id == node;
  EXPECT_TRUE(known);
}

TEST(Topology, ExplicitNodesMapCpusToOwners) {
  const Topology topo({NumaNode{0, {0, 1, 2, 3}}, NumaNode{1, {4, 5, 6, 7}}});
  EXPECT_EQ(topo.node_count(), 2);
  EXPECT_FALSE(topo.single_node());
  EXPECT_EQ(topo.node_of_cpu(2), 0);
  EXPECT_EQ(topo.node_of_cpu(6), 1);
  EXPECT_EQ(topo.node_of_cpu(42), 0);  // unknown cpu → node 0
  EXPECT_THROW(Topology(std::vector<NumaNode>{}), InvalidArgument);
}

// ---------------------------------------------------------------- timer

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  const double t0 = t.seconds();
  EXPECT_GE(t0, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), t0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace nadmm
