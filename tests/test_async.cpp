// Tests for the event-driven async runtime (comm/async.*), the
// stale-consensus solvers built on it (solvers/async_admm.*), and the
// heterogeneous-cluster / straggler plumbing in the runner.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "comm/async.hpp"
#include "comm/fault.hpp"
#include "core/trace.hpp"
#include "runner/harness.hpp"
#include "runner/registry.hpp"
#include "runner/sweep.hpp"
#include "support/check.hpp"

namespace nadmm {
namespace {

// ------------------------------------------------------------- engine

la::DeviceModel unit_device() { return {"unit", 1.0}; }  // 1 GF/s

TEST(AsyncEngine, DeliversInVirtualTimeOrder) {
  // Rank 0 posts three self-timers out of order; delivery must follow
  // (delivery_time, seq) regardless of send order.
  comm::AsyncEngine engine({unit_device()}, comm::ideal_network());
  std::vector<int> tags;
  engine.run(
      [&](comm::AsyncRank& ctx) {
        ctx.send_self(/*tag=*/3, /*delay=*/3.0);
        ctx.send_self(/*tag=*/1, /*delay=*/1.0);
        ctx.send_self(/*tag=*/2, /*delay=*/2.0);
        ctx.send_self(/*tag=*/11, /*delay=*/1.0);  // ties break by seq
      },
      [&](comm::AsyncRank&, const comm::AsyncMessage& msg) {
        tags.push_back(msg.tag);
      });
  EXPECT_EQ(tags, (std::vector<int>{1, 11, 2, 3}));
}

TEST(AsyncEngine, SenderPaysSerializationReceiverWaits) {
  // A 125-double message travels as a wire frame: 48-byte header +
  // 1000 payload bytes. On a 1 ms / 1 MB/s network the sender's clock
  // must be charged the serialization term only (not the full in-flight
  // time), and the idle receiver books the delivery gap as wait time —
  // nobody is double-charged.
  comm::NetworkModel net{"t", 1e-3, 1e6};
  const std::uint64_t bytes = comm::wire::frame_bytes(125);
  EXPECT_EQ(bytes, 1048u);
  const double ser = net.serialization(bytes);
  EXPECT_DOUBLE_EQ(ser, 1.048e-3);
  EXPECT_DOUBLE_EQ(net.point_to_point(bytes), net.latency_s + ser);

  comm::AsyncEngine engine({unit_device(), unit_device()}, net);
  double delivery = -1.0;
  const auto reports = engine.run(
      [&](comm::AsyncRank& ctx) {
        if (ctx.rank() == 0) {
          ctx.send(1, /*tag=*/7, std::vector<double>(125, 1.0));
        }
      },
      [&](comm::AsyncRank& ctx, const comm::AsyncMessage& msg) {
        delivery = msg.delivery_time;
        EXPECT_EQ(ctx.rank(), 1);
        EXPECT_EQ(msg.from, 0);
        EXPECT_EQ(msg.tag, 7);
      });
  EXPECT_DOUBLE_EQ(delivery, net.latency_s + ser);
  EXPECT_DOUBLE_EQ(reports[0].comm_seconds, ser);    // serialization only
  EXPECT_DOUBLE_EQ(reports[0].wait_seconds, 0.0);
  EXPECT_DOUBLE_EQ(reports[1].comm_seconds, 0.0);    // receiving is free
  EXPECT_DOUBLE_EQ(reports[1].wait_seconds, delivery);  // idle until then
  EXPECT_EQ(reports[0].messages_sent, 1u);
  EXPECT_EQ(reports[1].messages_received, 1u);
}

TEST(AsyncEngine, LoopbackSendsAreFree) {
  comm::AsyncEngine engine({unit_device()}, comm::wan());
  const auto reports = engine.run(
      [&](comm::AsyncRank& ctx) {
        ctx.send(0, /*tag=*/1, std::vector<double>(1000, 0.0));
      },
      [&](comm::AsyncRank&, const comm::AsyncMessage& msg) {
        EXPECT_DOUBLE_EQ(msg.delivery_time, msg.send_time);
      });
  EXPECT_DOUBLE_EQ(reports[0].comm_seconds, 0.0);
  EXPECT_EQ(engine.messages_delivered(), 1u);
}

TEST(AsyncEngine, HaltDropsInFlightMessagesAndCountsThem) {
  comm::AsyncEngine engine({unit_device(), unit_device()},
                           comm::ideal_network());
  int delivered_to_1 = 0;
  const auto reports = engine.run(
      [&](comm::AsyncRank& ctx) {
        if (ctx.rank() == 0) {
          ctx.send(1, /*tag=*/1, {});
          ctx.send(1, /*tag=*/2, {});
        }
      },
      [&](comm::AsyncRank& ctx, const comm::AsyncMessage&) {
        ++delivered_to_1;
        ctx.halt();  // the second message must be dropped
      });
  EXPECT_EQ(delivered_to_1, 1);
  // Conservation: the in-flight message is counted against the halted
  // destination, so sent == received + dropped across the engine (the
  // engine itself asserts this at teardown; check the report surface).
  EXPECT_EQ(reports[0].messages_sent, 2u);
  EXPECT_EQ(reports[1].messages_received, 1u);
  EXPECT_EQ(reports[1].messages_dropped, 1u);
  EXPECT_EQ(reports[0].messages_dropped, 0u);
}

TEST(AsyncEngine, ComputeIsPricedPerRankDevice) {
  // Same flops, 1 GF/s vs 4 GF/s devices: rank 1 finishes 4x faster.
  comm::AsyncEngine engine({unit_device(), {"fast", 4.0}},
                           comm::ideal_network());
  const auto reports = engine.run(
      [&](comm::AsyncRank&) { nadmm::flops::add(2'000'000'000ULL); },
      [](comm::AsyncRank&, const comm::AsyncMessage&) {});
  EXPECT_DOUBLE_EQ(reports[0].compute_seconds, 2.0);
  EXPECT_DOUBLE_EQ(reports[1].compute_seconds, 0.5);
}

// ------------------------------------------- engine fault injection

TEST(AsyncEngineFaults, ReorderedBurstDeliversInSeqOrderViaGapRecovery) {
  // A burst of frames on one link under heavy reordering: later frames
  // overtake earlier ones in flight, the receiver detects the sequence
  // gaps (hold + nack) and still hands the application every message in
  // send order.
  comm::NetworkModel net{"t", 1e-3, 1e6};
  comm::AsyncEngine engine({unit_device(), unit_device()}, net);
  engine.set_faults(comm::FaultSpec::parse("reorder:1.0"), /*seed=*/3);
  std::vector<int> tags;
  const auto reports = engine.run(
      [&](comm::AsyncRank& ctx) {
        if (ctx.rank() == 0) {
          for (int t = 0; t < 20; ++t) ctx.send(1, t, {double(t)});
        }
      },
      [&](comm::AsyncRank&, const comm::AsyncMessage& msg) {
        tags.push_back(msg.tag);
      });
  ASSERT_EQ(tags.size(), 20u);
  for (int t = 0; t < 20; ++t) EXPECT_EQ(tags[std::size_t(t)], t);
  EXPECT_EQ(reports[1].messages_received, 20u);
  EXPECT_GT(reports[1].gaps_detected, 0u);
}

TEST(AsyncEngineFaults, DroppedFramesAreRetransmittedUntilDelivered) {
  comm::NetworkModel net{"t", 1e-3, 1e6};
  comm::AsyncEngine engine({unit_device(), unit_device()}, net);
  engine.set_faults(comm::FaultSpec::parse("drop:0.3"), /*seed=*/7);
  std::vector<int> tags;
  const auto reports = engine.run(
      [&](comm::AsyncRank& ctx) {
        if (ctx.rank() == 0) {
          for (int t = 0; t < 20; ++t) ctx.send(1, t, {double(t)});
        }
      },
      [&](comm::AsyncRank&, const comm::AsyncMessage& msg) {
        tags.push_back(msg.tag);
      });
  ASSERT_EQ(tags.size(), 20u);
  for (int t = 0; t < 20; ++t) EXPECT_EQ(tags[std::size_t(t)], t);
  EXPECT_GT(reports[0].retransmits, 0u);
  EXPECT_EQ(reports[1].messages_dropped, 0u);  // every loss was repaired
}

TEST(AsyncEngineFaults, CorruptedFramesFailChecksumAndAreRepaired) {
  comm::NetworkModel net{"t", 1e-3, 1e6};
  comm::AsyncEngine engine({unit_device(), unit_device()}, net);
  engine.set_faults(comm::FaultSpec::parse("corrupt:0.5"), /*seed=*/11);
  int received = 0;
  const auto reports = engine.run(
      [&](comm::AsyncRank& ctx) {
        if (ctx.rank() == 0) {
          for (int t = 0; t < 20; ++t) {
            ctx.send(1, t, {1.0, 2.0, double(t)});
          }
        }
      },
      [&](comm::AsyncRank&, const comm::AsyncMessage& msg) {
        // Delivered payloads are the originals — corruption never leaks
        // through the checksum.
        ASSERT_EQ(msg.payload.size(), 3u);
        EXPECT_DOUBLE_EQ(msg.payload[0], 1.0);
        EXPECT_DOUBLE_EQ(msg.payload[1], 2.0);
        ++received;
      });
  EXPECT_EQ(received, 20);
  EXPECT_GT(reports[0].retransmits, 0u);
}

TEST(AsyncEngineFaults, SenderHaltWithFramesInFlightKeepsConservation) {
  // Regression: a sender that halts right after a burst leaves frames
  // (and their acks) in flight. The channel must not count those sends
  // as dropped the moment the sender's retry timer fires — a
  // reorder-delayed copy can still reach the live receiver, and the
  // early verdict would double-count the send as both dropped and
  // received, tripping the engine's teardown conservation assert.
  comm::NetworkModel net{"t", 1e-3, 1e6};
  comm::AsyncEngine engine({unit_device(), unit_device()}, net);
  engine.set_faults(comm::FaultSpec::parse("reorder:1.0"), /*seed=*/17);
  std::vector<int> tags;
  const auto reports = engine.run(
      [&](comm::AsyncRank& ctx) {
        if (ctx.rank() == 0) {
          for (int t = 0; t < 10; ++t) ctx.send(1, t, {double(t)});
          ctx.halt();  // never services its retry timers again
        }
      },
      [&](comm::AsyncRank&, const comm::AsyncMessage& msg) {
        tags.push_back(msg.tag);
      });
  // Nothing was actually lost (reorder only delays), so every send must
  // be delivered exactly once, in order, and counted as received.
  ASSERT_EQ(tags.size(), 10u);
  for (int t = 0; t < 10; ++t) EXPECT_EQ(tags[std::size_t(t)], t);
  EXPECT_EQ(reports[0].messages_sent, 10u);
  EXPECT_EQ(reports[1].messages_received, 10u);
  EXPECT_EQ(reports[1].messages_dropped, 0u);
}

TEST(AsyncEngineFaults, FaultyRunsReplayByteIdentically) {
  const auto spec = comm::FaultSpec::parse("drop:0.2,dup:0.1,reorder:0.3");
  const auto run_once = [&spec] {
    comm::NetworkModel net{"t", 1e-3, 1e6};
    comm::AsyncEngine engine({unit_device(), unit_device()}, net);
    engine.set_faults(spec, /*seed=*/5);
    std::vector<double> deliveries;
    engine.run(
        [&](comm::AsyncRank& ctx) {
          if (ctx.rank() == 0) {
            for (int t = 0; t < 12; ++t) ctx.send(1, t, {double(t)});
          }
        },
        [&](comm::AsyncRank&, const comm::AsyncMessage& msg) {
          deliveries.push_back(msg.delivery_time);
        });
    return deliveries;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << "delivery " << i;
  }
}

// ----------------------------------------------- async-admm solvers

runner::ExperimentConfig tiny_config(const std::string& network = "eth1") {
  runner::ExperimentConfig c;
  c.dataset = "blobs";
  c.n_train = 240;
  c.n_test = 60;
  c.e18_features = 8;
  c.workers = 3;
  c.network = network;
  c.iterations = 4;
  c.lambda = 1e-3;
  c.omp_threads = 1;
  return c;
}

core::RunResult run_registry(const std::string& solver,
                             const runner::ExperimentConfig& config) {
  const auto tt = runner::make_data(config);
  auto cluster = runner::make_cluster(config);
  return runner::SolverRegistry::instance().run(
      solver, cluster,
      runner::shard_for_solver(solver, tt.train, &tt.test, config), config);
}

/// Deterministic fields of a trace, serialized for byte comparison
/// (wall-clock stays out by design).
std::string trace_fingerprint(const core::RunResult& r) {
  std::string out;
  char buf[256];
  for (const auto& it : r.trace) {
    std::snprintf(buf, sizeof buf, "%d,%.17g,%.17g,%.17g,%.17g,%.17g\n",
                  it.iteration, it.objective, it.test_accuracy, it.sim_seconds,
                  it.epoch_sim_seconds, it.comm_sim_seconds);
    out += buf;
  }
  for (const double w : r.rank_wait_seconds) {
    std::snprintf(buf, sizeof buf, "w%.17g\n", w);
    out += buf;
  }
  for (const auto h : r.staleness_hist) {
    std::snprintf(buf, sizeof buf, "h%llu\n",
                  static_cast<unsigned long long>(h));
    out += buf;
  }
  return out;
}

TEST(AsyncAdmm, ConvergesAndReportsAsyncColumns) {
  const auto config = tiny_config();
  const auto r = run_registry("async-admm", config);
  EXPECT_EQ(r.solver, "async-admm");
  EXPECT_EQ(r.iterations, config.iterations);
  ASSERT_EQ(r.trace.size(), static_cast<std::size_t>(config.iterations));
  EXPECT_LT(r.trace.back().objective, r.trace.front().objective);
  EXPECT_TRUE(std::isfinite(r.final_objective));
  EXPECT_GE(r.final_test_accuracy, 0.0);
  EXPECT_GT(r.total_sim_seconds, 0.0);
  EXPECT_EQ(r.rank_wait_seconds.size(),
            static_cast<std::size_t>(config.workers));
  EXPECT_FALSE(r.staleness_hist.empty());
}

TEST(AsyncAdmm, ReachesSynchronousQualityObjective) {
  // Same budget of local solves: the stale-consensus result should land
  // in the same objective ballpark as the synchronous solver.
  auto config = tiny_config();
  config.iterations = 8;
  const auto sync = run_registry("newton-admm", config);
  const auto async = run_registry("async-admm", config);
  EXPECT_LT(async.final_objective, 1.15 * sync.final_objective);
}

TEST(AsyncAdmm, DeterministicAcrossConcurrentReruns) {
  // The delivery order is a total order on (delivery_time, seq), so
  // rerunning the same configuration — here 10 times on concurrently
  // racing threads — must reproduce the trace byte-for-byte.
  const auto config = tiny_config();
  const auto reference = trace_fingerprint(run_registry("async-admm", config));
  ASSERT_FALSE(reference.empty());
  constexpr int kRuns = 10;
  std::vector<std::string> fingerprints(kRuns);
  {
    std::vector<std::thread> threads;
    threads.reserve(kRuns);
    for (int i = 0; i < kRuns; ++i) {
      threads.emplace_back([&, i] {
        fingerprints[static_cast<std::size_t>(i)] =
            trace_fingerprint(run_registry("async-admm", config));
      });
    }
    for (auto& t : threads) t.join();
  }
  for (int i = 0; i < kRuns; ++i) {
    EXPECT_EQ(fingerprints[static_cast<std::size_t>(i)], reference)
        << "run " << i << " diverged";
  }
}

TEST(AsyncAdmm, StalenessBoundIsEnforced) {
  // With a straggling rank the fast workers run ahead — but never past
  // the τ bound: every bucket above τ must stay empty.
  auto config = tiny_config("wan");
  config.device = "0.2";  // slow enough that compute dominates the wire
  config.straggler = "1:4";
  config.iterations = 6;
  for (const int tau : {0, 1, 3}) {
    config.staleness = tau;
    const auto r = run_registry("async-admm", config);
    ASSERT_FALSE(r.staleness_hist.empty()) << "tau=" << tau;
    EXPECT_LE(static_cast<int>(r.staleness_hist.size()) - 1, tau)
        << "tau=" << tau;
  }
  // A generous bound must actually be exercised by the straggler run.
  config.staleness = 8;
  const auto r = run_registry("async-admm", config);
  EXPECT_GT(r.staleness_hist.size(), 1u)
      << "straggler run never went stale — bound untested";
}

TEST(AsyncAdmm, StaleSyncBarrierEveryRoundIsLockstep) {
  // sync_every=1 parks every worker at the coordinator each round: no
  // update can ever be stale.
  auto config = tiny_config();
  config.sync_every = 1;
  const auto r = run_registry("stale-sync-admm", config);
  EXPECT_EQ(r.solver, "stale-sync-admm");
  ASSERT_EQ(r.staleness_hist.size(), 1u);
  EXPECT_GT(r.staleness_hist[0], 0u);
}

TEST(AsyncAdmm, StaleSyncBarrierPeriodBoundsStaleness) {
  auto config = tiny_config("wan");
  config.device = "0.2";
  config.straggler = "0:4";
  config.iterations = 6;
  config.sync_every = 3;
  const auto r = run_registry("stale-sync-admm", config);
  // Between barriers a worker can lead by at most sync_every − 1 rounds.
  EXPECT_LE(static_cast<int>(r.staleness_hist.size()) - 1,
            config.sync_every - 1);
}

TEST(AsyncAdmm, StragglerShiftsWaitTime) {
  auto config = tiny_config("eth1");
  config.device = "0.2";
  config.iterations = 5;
  config.staleness = 2;
  const auto even = run_registry("async-admm", config);
  config.straggler = "1:4";
  const auto skewed = run_registry("async-admm", config);
  ASSERT_EQ(even.rank_wait_seconds.size(), skewed.rank_wait_seconds.size());
  // The straggler slows every consensus round, so the fast ranks spend
  // strictly more simulated time idle than in the balanced run.
  double even_fast = 0.0, skewed_fast = 0.0;
  for (std::size_t r = 0; r < even.rank_wait_seconds.size(); ++r) {
    if (r == 1) continue;  // rank 1 is the straggler
    even_fast += even.rank_wait_seconds[r];
    skewed_fast += skewed.rank_wait_seconds[r];
  }
  EXPECT_GT(skewed_fast, even_fast);
  EXPECT_GT(skewed.total_sim_seconds, even.total_sim_seconds);
}

// ------------------------------------- solver-level faults and kill

TEST(AsyncAdmmFaults, ConvergesUnderLossAndCountsRetransmits) {
  auto config = tiny_config();
  config.iterations = 6;
  const auto clean = run_registry("async-admm", config);
  config.fault = "drop:0.05,dup:0.02";
  const auto faulty = run_registry("async-admm", config);
  EXPECT_GT(faulty.metric("retransmits"), 0u);
  EXPECT_TRUE(std::isfinite(faulty.final_objective));
  // Losses cost latency, not quality: the recovered run lands in the
  // same objective ballpark as the clean one.
  EXPECT_LE(faulty.final_objective, 1.2 * clean.final_objective);
}

TEST(AsyncAdmmFaults, FaultyRunsAreByteDeterministic) {
  auto config = tiny_config();
  config.iterations = 5;
  config.fault = "drop:0.1,reorder:0.1";
  const auto a = run_registry("async-admm", config);
  const auto b = run_registry("async-admm", config);
  EXPECT_EQ(trace_fingerprint(a), trace_fingerprint(b));
  EXPECT_EQ(a.metric("retransmits"), b.metric("retransmits"));
  EXPECT_EQ(a.metric("messages_dropped"), b.metric("messages_dropped"));
}

TEST(AsyncAdmmFaults, KillAndRejoinIsBitIdenticalToNoKill) {
  // Kill a worker mid-run: it restores from the coordinator's last
  // checkpoint, replays the consensus messages it already processed,
  // and the run finishes bit-identical to one that never lost the rank.
  auto config = tiny_config();
  config.iterations = 6;
  config.fault = "drop:0.05";
  config.checkpoint_every = 4;
  const auto baseline = run_registry("async-admm", config);
  EXPECT_GT(baseline.metric("checkpoints"), 0u);
  EXPECT_EQ(baseline.metric("restores"), 0u);

  config.kill = "1:2";
  const auto killed = run_registry("async-admm", config);
  EXPECT_EQ(killed.metric("restores"), 1u);
  EXPECT_EQ(trace_fingerprint(killed), trace_fingerprint(baseline));

  // The coordinator rank replays its own commit log the same way.
  config.kill = "0:3";
  const auto coord = run_registry("async-admm", config);
  EXPECT_EQ(coord.metric("restores"), 1u);
  EXPECT_EQ(trace_fingerprint(coord), trace_fingerprint(baseline));
}

TEST(AsyncAdmmFaults, StaleSyncSupportsKillToo) {
  auto config = tiny_config();
  config.iterations = 6;
  config.sync_every = 2;
  config.checkpoint_every = 3;
  const auto baseline = run_registry("stale-sync-admm", config);
  config.kill = "1:2";
  const auto killed = run_registry("stale-sync-admm", config);
  EXPECT_EQ(killed.metric("restores"), 1u);
  EXPECT_EQ(trace_fingerprint(killed), trace_fingerprint(baseline));
}

TEST(AsyncAdmmFaults, KillWithoutCheckpointsIsRejected) {
  auto config = tiny_config();
  config.kill = "1:2";
  EXPECT_THROW(static_cast<void>(run_registry("async-admm", config)),
               InvalidArgument);
}

TEST(AsyncAdmmFaults, MalformedSpecsAreRejected) {
  auto config = tiny_config();
  config.fault = "vanish:0.5";
  EXPECT_THROW(static_cast<void>(run_registry("async-admm", config)),
               InvalidArgument);
  config.fault = "none";
  config.kill = "1";
  EXPECT_THROW(static_cast<void>(run_registry("async-admm", config)),
               InvalidArgument);
}

// --------------------------------------- heterogeneous clusters / runner

TEST(ClusterDevices, PerRankListsCycleAndStragglerApplies) {
  runner::ExperimentConfig config;
  config.workers = 5;
  config.device = "p100+cpu";
  const auto cycled = runner::cluster_devices(config);
  ASSERT_EQ(cycled.size(), 5u);
  EXPECT_EQ(cycled[0].name, "p100");
  EXPECT_EQ(cycled[1].name, "cpu");
  EXPECT_EQ(cycled[2].name, "p100");
  EXPECT_EQ(cycled[4].name, "p100");

  config.device = "100:50";
  config.straggler = "2:4";
  const auto skewed = runner::cluster_devices(config);
  EXPECT_DOUBLE_EQ(skewed[0].gflops, 100.0);
  EXPECT_DOUBLE_EQ(skewed[2].gflops, 25.0);
  EXPECT_DOUBLE_EQ(skewed[2].gbytes_per_s, 12.5);
  EXPECT_NE(skewed[2].name.find("x4"), std::string::npos);

  config.straggler = "9:4";  // rank out of range
  EXPECT_THROW(static_cast<void>(runner::cluster_devices(config)),
               InvalidArgument);
  config.straggler = "1:being-slow";
  EXPECT_THROW(static_cast<void>(runner::cluster_devices(config)),
               InvalidArgument);
}

TEST(ClusterDevices, SynchronousSolverPaysForTheStraggler) {
  auto config = tiny_config("ib100");
  config.device = "0.2";
  config.iterations = 3;
  const auto even = run_registry("newton-admm", config);
  config.straggler = "2:8";
  const auto skewed = run_registry("newton-admm", config);
  // Every barrier waits for rank 2, so epochs slow down by roughly the
  // slowdown factor, and the fast ranks' barrier skew shows up as wait.
  EXPECT_GT(skewed.total_sim_seconds, 3.0 * even.total_sim_seconds);
  ASSERT_EQ(skewed.rank_wait_seconds.size(), 3u);
  EXPECT_GT(skewed.rank_wait_seconds[0], 0.0);
  EXPECT_LT(skewed.rank_wait_seconds[2], skewed.rank_wait_seconds[0]);
}

// --------------------------------------------------- sweep integration

TEST(AsyncSweep, StragglerAxisExpandsAndTagsStayUnique) {
  runner::SweepSpec spec;
  spec.solvers = {"async-admm"};
  spec.stragglers = {"none", "1:4"};
  spec.networks = {"eth1", "wan"};
  const auto scenarios = runner::expand_scenarios(spec);
  ASSERT_EQ(scenarios.size(), 4u);
  EXPECT_EQ(scenarios[0].config.straggler, "none");
  EXPECT_EQ(scenarios[1].config.straggler, "1:4");
  EXPECT_NE(scenarios[0].tag(), scenarios[1].tag());
  EXPECT_EQ(scenarios[1].tag().find(':'), std::string::npos);
  EXPECT_NE(scenarios[1].tag().find("_st1-4"), std::string::npos);

  // The straggler axis and the async knobs are part of the fingerprint.
  const std::string base_fp = runner::spec_fingerprint(spec);
  runner::SweepSpec other = spec;
  other.stragglers = {"none"};
  EXPECT_NE(runner::spec_fingerprint(other), base_fp);
  other = spec;
  other.base.staleness += 1;
  EXPECT_NE(runner::spec_fingerprint(other), base_fp);
  other = spec;
  other.base.sync_every += 1;
  EXPECT_NE(runner::spec_fingerprint(other), base_fp);
}

TEST(AsyncSweep, FaultsAxisExpandsTagsAndFingerprint) {
  runner::SweepSpec spec;
  spec.solvers = {"async-admm"};
  spec.faults = {"none", "drop:0.05+dup:0.02"};
  const auto scenarios = runner::expand_scenarios(spec);
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].config.fault, "none");
  EXPECT_EQ(scenarios[1].config.fault, "drop:0.05+dup:0.02");
  // Clean scenarios keep the pre-fault tag; faulty ones get a
  // filesystem-safe suffix.
  EXPECT_EQ(scenarios[0].tag().find("_f"), std::string::npos);
  EXPECT_NE(scenarios[1].tag().find("_fdrop-0.05"), std::string::npos);
  EXPECT_EQ(scenarios[1].tag().find(':'), std::string::npos);
  EXPECT_EQ(scenarios[1].tag().find('+'), std::string::npos);

  // The faults axis and the kill/checkpoint knobs are fingerprinted.
  const std::string base_fp = runner::spec_fingerprint(spec);
  runner::SweepSpec other = spec;
  other.faults = {"none"};
  EXPECT_NE(runner::spec_fingerprint(other), base_fp);
  other = spec;
  other.base.kill = "1:2";
  EXPECT_NE(runner::spec_fingerprint(other), base_fp);
  other = spec;
  other.base.checkpoint_every = 4;
  EXPECT_NE(runner::spec_fingerprint(other), base_fp);
}

TEST(AsyncSweep, ReportCarriesWaitAndStalenessColumns) {
  runner::SweepSpec spec;
  spec.solvers = {"async-admm", "newton-admm"};
  spec.workers = {2};
  spec.networks = {"eth1"};
  spec.stragglers = {"1:2"};
  spec.base.n_train = 120;
  spec.base.n_test = 40;
  spec.base.e18_features = 8;
  spec.base.iterations = 2;
  runner::SweepOptions options;
  const auto report = runner::run_sweep(spec, options);
  ASSERT_EQ(report.outcomes.size(), 2u);
  ASSERT_TRUE(report.outcomes[0].ok) << report.outcomes[0].error;
  ASSERT_TRUE(report.outcomes[1].ok) << report.outcomes[1].error;
  const auto rows = report.csv_rows();
  EXPECT_NE(rows[0].find("straggler"), std::string::npos);
  EXPECT_NE(rows[0].find("max_wait_seconds"), std::string::npos);
  EXPECT_NE(rows[0].find("staleness_hist"), std::string::npos);
  EXPECT_NE(rows[0].find("retransmits"), std::string::npos);
  EXPECT_NE(rows[0].find("gaps_detected"), std::string::npos);
  EXPECT_NE(rows[0].find("checkpoints"), std::string::npos);
  // The async scenario populates the histogram; the sync one leaves it
  // empty but still reports per-rank waits.
  EXPECT_FALSE(report.outcomes[0].staleness_hist.empty());
  EXPECT_TRUE(report.outcomes[1].staleness_hist.empty());
  EXPECT_FALSE(report.outcomes[1].rank_waits.empty());
}

TEST(AsyncSweep, JournalRoundTripsAsyncColumnsByteIdentically) {
  runner::SweepSpec spec;
  spec.solvers = {"async-admm"};
  spec.workers = {2};
  spec.networks = {"eth1"};
  spec.stragglers = {"none", "0:2"};
  // The faults axis rides along so the wire counters round-trip through
  // the journal too.
  spec.faults = {"none", "drop:0.2"};
  spec.base.n_train = 120;
  spec.base.n_test = 40;
  spec.base.e18_features = 8;
  spec.base.iterations = 2;
  spec.base.checkpoint_every = 2;

  const std::string journal =
      testing::TempDir() + "/nadmm_async_journal.jsonl";
  std::remove(journal.c_str());

  runner::SweepOptions first;
  first.journal_path = journal;
  first.max_scenarios = 1;  // deterministic interruption
  const auto partial = runner::run_sweep(spec, first);
  EXPECT_FALSE(partial.complete());

  runner::SweepOptions resumed;
  resumed.journal_path = journal;
  resumed.resume = true;
  const auto rest = runner::run_sweep(spec, resumed);
  EXPECT_EQ(rest.resumed, 1u);

  runner::SweepOptions fresh;
  const auto full = runner::run_sweep(spec, fresh);
  EXPECT_EQ(full.csv_rows(), rest.csv_rows());
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace nadmm
