// Tests for the event-driven async runtime (comm/async.*), the
// stale-consensus solvers built on it (solvers/async_admm.*), and the
// heterogeneous-cluster / straggler plumbing in the runner.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "comm/async.hpp"
#include "core/trace.hpp"
#include "runner/harness.hpp"
#include "runner/registry.hpp"
#include "runner/sweep.hpp"
#include "support/check.hpp"

namespace nadmm {
namespace {

// ------------------------------------------------------------- engine

la::DeviceModel unit_device() { return {"unit", 1.0}; }  // 1 GF/s

TEST(AsyncEngine, DeliversInVirtualTimeOrder) {
  // Rank 0 posts three self-timers out of order; delivery must follow
  // (delivery_time, seq) regardless of send order.
  comm::AsyncEngine engine({unit_device()}, comm::ideal_network());
  std::vector<int> tags;
  engine.run(
      [&](comm::AsyncRank& ctx) {
        ctx.send_self(/*tag=*/3, /*delay=*/3.0);
        ctx.send_self(/*tag=*/1, /*delay=*/1.0);
        ctx.send_self(/*tag=*/2, /*delay=*/2.0);
        ctx.send_self(/*tag=*/11, /*delay=*/1.0);  // ties break by seq
      },
      [&](comm::AsyncRank&, const comm::AsyncMessage& msg) {
        tags.push_back(msg.tag);
      });
  EXPECT_EQ(tags, (std::vector<int>{1, 11, 2, 3}));
}

TEST(AsyncEngine, SenderPaysSerializationReceiverWaits) {
  // 1 kB message on a 1 ms / 1 MB/s network: serialization = 1 ms,
  // in-flight = 2 ms. The sender's clock must be charged 1 ms of comm
  // (not the full 2 ms), and the idle receiver books the delivery gap as
  // wait time — nobody is double-charged.
  comm::NetworkModel net{"t", 1e-3, 1e6};
  EXPECT_DOUBLE_EQ(net.serialization(1000), 1e-3);
  EXPECT_DOUBLE_EQ(net.point_to_point(1000), net.latency_s +
                                                 net.serialization(1000));

  comm::AsyncEngine engine({unit_device(), unit_device()}, net);
  double delivery = -1.0;
  const auto reports = engine.run(
      [&](comm::AsyncRank& ctx) {
        if (ctx.rank() == 0) {
          ctx.send(1, /*tag=*/7, std::vector<double>(125, 1.0));  // 1000 B
        }
      },
      [&](comm::AsyncRank& ctx, const comm::AsyncMessage& msg) {
        delivery = msg.delivery_time;
        EXPECT_EQ(ctx.rank(), 1);
        EXPECT_EQ(msg.from, 0);
        EXPECT_EQ(msg.tag, 7);
      });
  EXPECT_DOUBLE_EQ(delivery, 2e-3);
  EXPECT_DOUBLE_EQ(reports[0].comm_seconds, 1e-3);   // serialization only
  EXPECT_DOUBLE_EQ(reports[0].wait_seconds, 0.0);
  EXPECT_DOUBLE_EQ(reports[1].comm_seconds, 0.0);    // receiving is free
  EXPECT_DOUBLE_EQ(reports[1].wait_seconds, 2e-3);   // idle until delivery
  EXPECT_EQ(reports[0].messages_sent, 1u);
  EXPECT_EQ(reports[1].messages_received, 1u);
}

TEST(AsyncEngine, LoopbackSendsAreFree) {
  comm::AsyncEngine engine({unit_device()}, comm::wan());
  const auto reports = engine.run(
      [&](comm::AsyncRank& ctx) {
        ctx.send(0, /*tag=*/1, std::vector<double>(1000, 0.0));
      },
      [&](comm::AsyncRank&, const comm::AsyncMessage& msg) {
        EXPECT_DOUBLE_EQ(msg.delivery_time, msg.send_time);
      });
  EXPECT_DOUBLE_EQ(reports[0].comm_seconds, 0.0);
  EXPECT_EQ(engine.messages_delivered(), 1u);
}

TEST(AsyncEngine, HaltDropsInFlightMessages) {
  comm::AsyncEngine engine({unit_device(), unit_device()},
                           comm::ideal_network());
  int delivered_to_1 = 0;
  engine.run(
      [&](comm::AsyncRank& ctx) {
        if (ctx.rank() == 0) {
          ctx.send(1, /*tag=*/1, {});
          ctx.send(1, /*tag=*/2, {});
        }
      },
      [&](comm::AsyncRank& ctx, const comm::AsyncMessage&) {
        ++delivered_to_1;
        ctx.halt();  // the second message must be dropped
      });
  EXPECT_EQ(delivered_to_1, 1);
}

TEST(AsyncEngine, ComputeIsPricedPerRankDevice) {
  // Same flops, 1 GF/s vs 4 GF/s devices: rank 1 finishes 4x faster.
  comm::AsyncEngine engine({unit_device(), {"fast", 4.0}},
                           comm::ideal_network());
  const auto reports = engine.run(
      [&](comm::AsyncRank&) { nadmm::flops::add(2'000'000'000ULL); },
      [](comm::AsyncRank&, const comm::AsyncMessage&) {});
  EXPECT_DOUBLE_EQ(reports[0].compute_seconds, 2.0);
  EXPECT_DOUBLE_EQ(reports[1].compute_seconds, 0.5);
}

// ----------------------------------------------- async-admm solvers

runner::ExperimentConfig tiny_config(const std::string& network = "eth1") {
  runner::ExperimentConfig c;
  c.dataset = "blobs";
  c.n_train = 240;
  c.n_test = 60;
  c.e18_features = 8;
  c.workers = 3;
  c.network = network;
  c.iterations = 4;
  c.lambda = 1e-3;
  c.omp_threads = 1;
  return c;
}

core::RunResult run_registry(const std::string& solver,
                             const runner::ExperimentConfig& config) {
  const auto tt = runner::make_data(config);
  auto cluster = runner::make_cluster(config);
  return runner::SolverRegistry::instance().run(
      solver, cluster,
      runner::shard_for_solver(solver, tt.train, &tt.test, config), config);
}

/// Deterministic fields of a trace, serialized for byte comparison
/// (wall-clock stays out by design).
std::string trace_fingerprint(const core::RunResult& r) {
  std::string out;
  char buf[256];
  for (const auto& it : r.trace) {
    std::snprintf(buf, sizeof buf, "%d,%.17g,%.17g,%.17g,%.17g,%.17g\n",
                  it.iteration, it.objective, it.test_accuracy, it.sim_seconds,
                  it.epoch_sim_seconds, it.comm_sim_seconds);
    out += buf;
  }
  for (const double w : r.rank_wait_seconds) {
    std::snprintf(buf, sizeof buf, "w%.17g\n", w);
    out += buf;
  }
  for (const auto h : r.staleness_hist) {
    std::snprintf(buf, sizeof buf, "h%llu\n",
                  static_cast<unsigned long long>(h));
    out += buf;
  }
  return out;
}

TEST(AsyncAdmm, ConvergesAndReportsAsyncColumns) {
  const auto config = tiny_config();
  const auto r = run_registry("async-admm", config);
  EXPECT_EQ(r.solver, "async-admm");
  EXPECT_EQ(r.iterations, config.iterations);
  ASSERT_EQ(r.trace.size(), static_cast<std::size_t>(config.iterations));
  EXPECT_LT(r.trace.back().objective, r.trace.front().objective);
  EXPECT_TRUE(std::isfinite(r.final_objective));
  EXPECT_GE(r.final_test_accuracy, 0.0);
  EXPECT_GT(r.total_sim_seconds, 0.0);
  EXPECT_EQ(r.rank_wait_seconds.size(),
            static_cast<std::size_t>(config.workers));
  EXPECT_FALSE(r.staleness_hist.empty());
}

TEST(AsyncAdmm, ReachesSynchronousQualityObjective) {
  // Same budget of local solves: the stale-consensus result should land
  // in the same objective ballpark as the synchronous solver.
  auto config = tiny_config();
  config.iterations = 8;
  const auto sync = run_registry("newton-admm", config);
  const auto async = run_registry("async-admm", config);
  EXPECT_LT(async.final_objective, 1.15 * sync.final_objective);
}

TEST(AsyncAdmm, DeterministicAcrossConcurrentReruns) {
  // The delivery order is a total order on (delivery_time, seq), so
  // rerunning the same configuration — here 10 times on concurrently
  // racing threads — must reproduce the trace byte-for-byte.
  const auto config = tiny_config();
  const auto reference = trace_fingerprint(run_registry("async-admm", config));
  ASSERT_FALSE(reference.empty());
  constexpr int kRuns = 10;
  std::vector<std::string> fingerprints(kRuns);
  {
    std::vector<std::thread> threads;
    threads.reserve(kRuns);
    for (int i = 0; i < kRuns; ++i) {
      threads.emplace_back([&, i] {
        fingerprints[static_cast<std::size_t>(i)] =
            trace_fingerprint(run_registry("async-admm", config));
      });
    }
    for (auto& t : threads) t.join();
  }
  for (int i = 0; i < kRuns; ++i) {
    EXPECT_EQ(fingerprints[static_cast<std::size_t>(i)], reference)
        << "run " << i << " diverged";
  }
}

TEST(AsyncAdmm, StalenessBoundIsEnforced) {
  // With a straggling rank the fast workers run ahead — but never past
  // the τ bound: every bucket above τ must stay empty.
  auto config = tiny_config("wan");
  config.device = "0.2";  // slow enough that compute dominates the wire
  config.straggler = "1:4";
  config.iterations = 6;
  for (const int tau : {0, 1, 3}) {
    config.staleness = tau;
    const auto r = run_registry("async-admm", config);
    ASSERT_FALSE(r.staleness_hist.empty()) << "tau=" << tau;
    EXPECT_LE(static_cast<int>(r.staleness_hist.size()) - 1, tau)
        << "tau=" << tau;
  }
  // A generous bound must actually be exercised by the straggler run.
  config.staleness = 8;
  const auto r = run_registry("async-admm", config);
  EXPECT_GT(r.staleness_hist.size(), 1u)
      << "straggler run never went stale — bound untested";
}

TEST(AsyncAdmm, StaleSyncBarrierEveryRoundIsLockstep) {
  // sync_every=1 parks every worker at the coordinator each round: no
  // update can ever be stale.
  auto config = tiny_config();
  config.sync_every = 1;
  const auto r = run_registry("stale-sync-admm", config);
  EXPECT_EQ(r.solver, "stale-sync-admm");
  ASSERT_EQ(r.staleness_hist.size(), 1u);
  EXPECT_GT(r.staleness_hist[0], 0u);
}

TEST(AsyncAdmm, StaleSyncBarrierPeriodBoundsStaleness) {
  auto config = tiny_config("wan");
  config.device = "0.2";
  config.straggler = "0:4";
  config.iterations = 6;
  config.sync_every = 3;
  const auto r = run_registry("stale-sync-admm", config);
  // Between barriers a worker can lead by at most sync_every − 1 rounds.
  EXPECT_LE(static_cast<int>(r.staleness_hist.size()) - 1,
            config.sync_every - 1);
}

TEST(AsyncAdmm, StragglerShiftsWaitTime) {
  auto config = tiny_config("eth1");
  config.device = "0.2";
  config.iterations = 5;
  config.staleness = 2;
  const auto even = run_registry("async-admm", config);
  config.straggler = "1:4";
  const auto skewed = run_registry("async-admm", config);
  ASSERT_EQ(even.rank_wait_seconds.size(), skewed.rank_wait_seconds.size());
  // The straggler slows every consensus round, so the fast ranks spend
  // strictly more simulated time idle than in the balanced run.
  double even_fast = 0.0, skewed_fast = 0.0;
  for (std::size_t r = 0; r < even.rank_wait_seconds.size(); ++r) {
    if (r == 1) continue;  // rank 1 is the straggler
    even_fast += even.rank_wait_seconds[r];
    skewed_fast += skewed.rank_wait_seconds[r];
  }
  EXPECT_GT(skewed_fast, even_fast);
  EXPECT_GT(skewed.total_sim_seconds, even.total_sim_seconds);
}

// --------------------------------------- heterogeneous clusters / runner

TEST(ClusterDevices, PerRankListsCycleAndStragglerApplies) {
  runner::ExperimentConfig config;
  config.workers = 5;
  config.device = "p100+cpu";
  const auto cycled = runner::cluster_devices(config);
  ASSERT_EQ(cycled.size(), 5u);
  EXPECT_EQ(cycled[0].name, "p100");
  EXPECT_EQ(cycled[1].name, "cpu");
  EXPECT_EQ(cycled[2].name, "p100");
  EXPECT_EQ(cycled[4].name, "p100");

  config.device = "100:50";
  config.straggler = "2:4";
  const auto skewed = runner::cluster_devices(config);
  EXPECT_DOUBLE_EQ(skewed[0].gflops, 100.0);
  EXPECT_DOUBLE_EQ(skewed[2].gflops, 25.0);
  EXPECT_DOUBLE_EQ(skewed[2].gbytes_per_s, 12.5);
  EXPECT_NE(skewed[2].name.find("x4"), std::string::npos);

  config.straggler = "9:4";  // rank out of range
  EXPECT_THROW(static_cast<void>(runner::cluster_devices(config)),
               InvalidArgument);
  config.straggler = "1:being-slow";
  EXPECT_THROW(static_cast<void>(runner::cluster_devices(config)),
               InvalidArgument);
}

TEST(ClusterDevices, SynchronousSolverPaysForTheStraggler) {
  auto config = tiny_config("ib100");
  config.device = "0.2";
  config.iterations = 3;
  const auto even = run_registry("newton-admm", config);
  config.straggler = "2:8";
  const auto skewed = run_registry("newton-admm", config);
  // Every barrier waits for rank 2, so epochs slow down by roughly the
  // slowdown factor, and the fast ranks' barrier skew shows up as wait.
  EXPECT_GT(skewed.total_sim_seconds, 3.0 * even.total_sim_seconds);
  ASSERT_EQ(skewed.rank_wait_seconds.size(), 3u);
  EXPECT_GT(skewed.rank_wait_seconds[0], 0.0);
  EXPECT_LT(skewed.rank_wait_seconds[2], skewed.rank_wait_seconds[0]);
}

// --------------------------------------------------- sweep integration

TEST(AsyncSweep, StragglerAxisExpandsAndTagsStayUnique) {
  runner::SweepSpec spec;
  spec.solvers = {"async-admm"};
  spec.stragglers = {"none", "1:4"};
  spec.networks = {"eth1", "wan"};
  const auto scenarios = runner::expand_scenarios(spec);
  ASSERT_EQ(scenarios.size(), 4u);
  EXPECT_EQ(scenarios[0].config.straggler, "none");
  EXPECT_EQ(scenarios[1].config.straggler, "1:4");
  EXPECT_NE(scenarios[0].tag(), scenarios[1].tag());
  EXPECT_EQ(scenarios[1].tag().find(':'), std::string::npos);
  EXPECT_NE(scenarios[1].tag().find("_st1-4"), std::string::npos);

  // The straggler axis and the async knobs are part of the fingerprint.
  const std::string base_fp = runner::spec_fingerprint(spec);
  runner::SweepSpec other = spec;
  other.stragglers = {"none"};
  EXPECT_NE(runner::spec_fingerprint(other), base_fp);
  other = spec;
  other.base.staleness += 1;
  EXPECT_NE(runner::spec_fingerprint(other), base_fp);
  other = spec;
  other.base.sync_every += 1;
  EXPECT_NE(runner::spec_fingerprint(other), base_fp);
}

TEST(AsyncSweep, ReportCarriesWaitAndStalenessColumns) {
  runner::SweepSpec spec;
  spec.solvers = {"async-admm", "newton-admm"};
  spec.workers = {2};
  spec.networks = {"eth1"};
  spec.stragglers = {"1:2"};
  spec.base.n_train = 120;
  spec.base.n_test = 40;
  spec.base.e18_features = 8;
  spec.base.iterations = 2;
  runner::SweepOptions options;
  const auto report = runner::run_sweep(spec, options);
  ASSERT_EQ(report.outcomes.size(), 2u);
  ASSERT_TRUE(report.outcomes[0].ok) << report.outcomes[0].error;
  ASSERT_TRUE(report.outcomes[1].ok) << report.outcomes[1].error;
  const auto rows = report.csv_rows();
  EXPECT_NE(rows[0].find("straggler"), std::string::npos);
  EXPECT_NE(rows[0].find("max_wait_seconds"), std::string::npos);
  EXPECT_NE(rows[0].find("staleness_hist"), std::string::npos);
  // The async scenario populates the histogram; the sync one leaves it
  // empty but still reports per-rank waits.
  EXPECT_FALSE(report.outcomes[0].staleness_hist.empty());
  EXPECT_TRUE(report.outcomes[1].staleness_hist.empty());
  EXPECT_FALSE(report.outcomes[1].rank_waits.empty());
}

TEST(AsyncSweep, JournalRoundTripsAsyncColumnsByteIdentically) {
  runner::SweepSpec spec;
  spec.solvers = {"async-admm"};
  spec.workers = {2};
  spec.networks = {"eth1"};
  spec.stragglers = {"none", "0:2"};
  spec.base.n_train = 120;
  spec.base.n_test = 40;
  spec.base.e18_features = 8;
  spec.base.iterations = 2;

  const std::string journal =
      testing::TempDir() + "/nadmm_async_journal.jsonl";
  std::remove(journal.c_str());

  runner::SweepOptions first;
  first.journal_path = journal;
  first.max_scenarios = 1;  // deterministic interruption
  const auto partial = runner::run_sweep(spec, first);
  EXPECT_FALSE(partial.complete());

  runner::SweepOptions resumed;
  resumed.journal_path = journal;
  resumed.resume = true;
  const auto rest = runner::run_sweep(spec, resumed);
  EXPECT_EQ(rest.resumed, 1u);

  runner::SweepOptions fresh;
  const auto full = runner::run_sweep(spec, fresh);
  EXPECT_EQ(full.csv_rows(), rest.csv_rows());
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace nadmm
