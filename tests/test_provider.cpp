// Tests for the DatasetProvider (src/data/provider.*): cache-key
// identity, shared immutable copies, single-flight generation under
// concurrency, and LRU eviction under a byte budget.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include "data/io.hpp"
#include "data/provider.hpp"
#include "support/check.hpp"

namespace nadmm::data {
namespace {

DatasetKey blobs_key(std::uint64_t seed = 7, std::size_t n_train = 60) {
  DatasetKey key;
  key.source = "blobs";
  key.n_train = n_train;
  key.n_test = 20;
  key.features = 8;
  key.seed = seed;
  return key;
}

// ------------------------------------------------------------ keys

TEST(DatasetKey, IdenticalParametersProduceIdenticalTags) {
  EXPECT_EQ(blobs_key(), blobs_key());
  EXPECT_EQ(blobs_key().cache_tag(), blobs_key().cache_tag());
}

TEST(DatasetKey, EveryContentParameterChangesTheTag) {
  const DatasetKey base = blobs_key();
  std::set<std::string> tags{base.cache_tag()};
  DatasetKey k = base;
  k.source = "higgs";
  tags.insert(k.cache_tag());
  k = base;
  k.n_train = base.n_train + 1;
  tags.insert(k.cache_tag());
  k = base;
  k.n_test = base.n_test + 1;
  tags.insert(k.cache_tag());
  k = base;
  k.features = base.features + 1;
  tags.insert(k.cache_tag());
  k = base;
  k.seed = base.seed + 1;
  tags.insert(k.cache_tag());
  k = base;
  k.standardize = true;
  tags.insert(k.cache_tag());
  EXPECT_EQ(tags.size(), 7u);  // base + 6 distinct variations
}

// ------------------------------------------------------------ sharing

TEST(DatasetProvider, SecondGetSharesTheFirstCopy) {
  DatasetProvider provider;
  const auto a = provider.get(blobs_key());
  const auto b = provider.get(blobs_key());
  EXPECT_EQ(a.get(), b.get());
  const auto s = provider.stats();
  EXPECT_EQ(s.generations, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(provider.bytes_in_use(), a->approx_bytes());
}

TEST(DatasetProvider, DifferentKeysGenerateSeparately) {
  DatasetProvider provider;
  const auto a = provider.get(blobs_key(7));
  const auto b = provider.get(blobs_key(8));
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(provider.stats().generations, 2u);
}

TEST(DatasetProvider, ConcurrentGetsOnOneKeyGenerateOnce) {
  DatasetProvider provider;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const TrainTest>> results(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back(
        [&, t] { results[static_cast<std::size_t>(t)] = provider.get(blobs_key()); });
  }
  for (auto& t : pool) t.join();
  for (const auto& r : results) EXPECT_EQ(r.get(), results[0].get());
  EXPECT_EQ(provider.stats().generations, 1u);
}

TEST(DatasetProvider, GenerationFailurePropagatesAndRetries) {
  DatasetProvider provider;
  DatasetKey bad = blobs_key();
  bad.source = "no-such-generator";
  EXPECT_THROW(static_cast<void>(provider.get(bad)), InvalidArgument);
  // The failed entry must not poison the cache.
  EXPECT_THROW(static_cast<void>(provider.get(bad)), InvalidArgument);
  EXPECT_EQ(provider.stats().generations, 0u);
  EXPECT_EQ(provider.bytes_in_use(), 0u);
}

// ------------------------------------------------------------ eviction

TEST(DatasetProvider, LruEvictionUnderSmallByteBudget) {
  DatasetProvider provider;
  const auto a = provider.get(blobs_key(1));
  const std::size_t one = a->approx_bytes();
  // Room for one-and-a-half datasets: the second get must evict the
  // least-recently-used entry.
  provider.set_byte_budget(one + one / 2);
  static_cast<void>(provider.get(blobs_key(2)));  // evicts key 1
  EXPECT_LE(provider.bytes_in_use(), provider.byte_budget());
  static_cast<void>(provider.get(blobs_key(1)));  // regenerated
  const auto s = provider.stats();
  EXPECT_EQ(s.generations, 3u);
  EXPECT_GE(s.evictions, 2u);
  // The evicted dataset handed out earlier is still alive for its holder.
  EXPECT_EQ(a->train.num_samples(), 60u);
}

TEST(DatasetProvider, RecentlyUsedEntrySurvivesEviction) {
  DatasetProvider provider;
  const auto a = provider.get(blobs_key(1));
  const std::size_t one = a->approx_bytes();
  provider.set_byte_budget(2 * one + one / 2);  // fits two datasets
  static_cast<void>(provider.get(blobs_key(2)));
  static_cast<void>(provider.get(blobs_key(1)));  // touch 1 → LRU is 2
  const auto c = provider.get(blobs_key(3));      // evicts 2, not 1
  static_cast<void>(c);
  const auto before = provider.stats().generations;
  static_cast<void>(provider.get(blobs_key(1)));  // still cached
  EXPECT_EQ(provider.stats().generations, before);
}

TEST(DatasetProvider, OversizedDatasetIsHandedOutButNotRetained) {
  DatasetProvider provider(1);  // 1-byte budget: nothing fits
  const auto a = provider.get(blobs_key());
  EXPECT_GT(a->approx_bytes(), 1u);
  EXPECT_EQ(provider.bytes_in_use(), 0u);
  static_cast<void>(provider.get(blobs_key()));
  EXPECT_EQ(provider.stats().generations, 2u);  // cache effectively off
}

TEST(DatasetProvider, ClearDropsEntriesButNotHeldPointers) {
  DatasetProvider provider;
  const auto a = provider.get(blobs_key());
  provider.clear();
  EXPECT_EQ(provider.bytes_in_use(), 0u);
  EXPECT_EQ(a->train.num_samples(), 60u);
  static_cast<void>(provider.get(blobs_key()));
  EXPECT_EQ(provider.stats().generations, 2u);
}

// ------------------------------------------------------------ sources

TEST(DatasetProvider, LibsvmSourceStreamsAndSplits) {
  const std::string path = testing::TempDir() + "/nadmm_provider.libsvm";
  {
    std::ofstream out(path);
    for (int i = 0; i < 30; ++i) {
      out << (i % 3) << ' ' << (i % 5 + 1) << ":1.5 7:" << i << ".0\n";
    }
  }
  DatasetProvider provider;
  DatasetKey key;
  key.source = "libsvm:" + path;
  key.n_train = 24;
  key.n_test = 6;
  const auto tt = provider.get(key);
  EXPECT_EQ(tt->train.num_samples(), 24u);
  EXPECT_EQ(tt->test.num_samples(), 6u);
  EXPECT_EQ(tt->train.num_classes(), 3);
  EXPECT_EQ(tt->train.num_features(), 7u);
  EXPECT_EQ(tt->test.num_features(), 7u);
  EXPECT_EQ(provider.stats().generations, 1u);
  std::filesystem::remove(path);
}

TEST(DatasetProvider, StandardizedKeyIsADistinctEntry) {
  DatasetProvider provider;
  DatasetKey plain = blobs_key();
  DatasetKey scaled = plain;
  scaled.standardize = true;
  const auto a = provider.get(plain);
  const auto b = provider.get(scaled);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(provider.stats().generations, 2u);
}

// ------------------------------------------------------------ sharded

TEST(DatasetProvider, ShardedInMemorySourceSharesTheFullEntry) {
  DatasetProvider provider;
  ShardPlan plan;
  plan.parts = 4;
  const auto sharded = provider.get_sharded(blobs_key(), plan);
  ASSERT_EQ(sharded->parts(), 4);
  EXPECT_TRUE(sharded->has_full());
  // Shards are zero-copy views of the cached full dataset: only the full
  // entry is generated and only its bytes are resident.
  EXPECT_EQ(provider.stats().generations, 1u);
  EXPECT_EQ(provider.bytes_in_use(), sharded->resident_bytes);
  for (const auto& rd : sharded->ranks) {
    EXPECT_EQ(rd.train.approx_bytes(), 0u);
  }
  // A second plan over the same key re-slices the same cached entry.
  ShardPlan other = plan;
  other.parts = 2;
  const auto resliced = provider.get_sharded(blobs_key(), other);
  EXPECT_EQ(resliced->parts(), 2);
  EXPECT_EQ(provider.stats().generations, 1u);
  EXPECT_GE(provider.stats().hits, 1u);
  // Strided shards are real gather copies: they get their own cached
  // entry (re-sliced from the cached full dataset) whose bytes join the
  // budget, and a repeat request shares it instead of re-gathering.
  ShardPlan strided = plan;
  strided.mode = PartitionMode::kStrided;
  const auto gathered = provider.get_sharded(blobs_key(), strided);
  EXPECT_EQ(provider.stats().generations, 2u);
  EXPECT_GT(provider.bytes_in_use(), gathered->resident_bytes -
                                         gathered->full_train.approx_bytes());
  const auto again = provider.get_sharded(blobs_key(), strided);
  EXPECT_EQ(gathered.get(), again.get());
  EXPECT_EQ(provider.stats().generations, 2u);
}

TEST(DatasetProvider, ShardedLibsvmStreamsIntoCachedPerRankShards) {
  const std::string path = testing::TempDir() + "/nadmm_sharded_cache.libsvm";
  {
    std::ofstream out(path);
    for (int i = 0; i < 40; ++i) {
      out << (i % 2) << ' ' << (i % 6 + 1) << ":2.0 9:" << (i + 1) << ".5\n";
    }
  }
  DatasetProvider provider;
  DatasetKey key;
  key.source = "libsvm:" + path;
  key.n_train = 32;
  key.n_test = 8;
  ShardPlan plan;
  plan.parts = 4;
  const auto a = provider.get_sharded(key, plan);
  EXPECT_FALSE(a->has_full());
  EXPECT_EQ(a->train_samples, 32u);
  EXPECT_EQ(a->test_samples, 8u);
  EXPECT_EQ(provider.stats().generations, 1u);
  EXPECT_EQ(provider.bytes_in_use(), a->resident_bytes);
  // Same (key, plan) is a cache hit returning the same shards.
  const auto b = provider.get_sharded(key, plan);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(provider.stats().generations, 1u);
  // A different plan is a distinct streamed entry (no full matrix exists
  // to re-slice), accounted separately.
  ShardPlan strided = plan;
  strided.mode = PartitionMode::kStrided;
  const auto c = provider.get_sharded(key, strided);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(provider.stats().generations, 2u);
  EXPECT_EQ(provider.bytes_in_use(),
            a->resident_bytes + c->resident_bytes);
  std::filesystem::remove(path);
}

TEST(DatasetProvider, StreamedShardsStayBelowMaterializedPathPeak) {
  const std::string path = testing::TempDir() + "/nadmm_peak.libsvm";
  {
    std::ofstream out(path);
    for (int i = 0; i < 200; ++i) {
      out << (i % 4) << ' ' << (i % 17 + 1) << ":1.25 " << (i % 9 + 20)
          << ":-0.5 40:" << (i + 1) << ".0\n";
    }
  }
  const int parts = 4;
  const TrainTest full = load_libsvm_train_test(path, 160, 40);
  ShardPlan plan;
  plan.parts = parts;
  const ShardedDataset streamed = load_libsvm_sharded(path, 160, 40, plan,
                                                      /*standardize=*/false);
  // The seed data plane materialized the full matrix AND copied one
  // shard per rank — its peak was full + Σ copies. Streaming holds only
  // the shards, comfortably below that.
  std::size_t copy_path_peak = full.approx_bytes();
  for (int r = 0; r < parts; ++r) {
    copy_path_peak += shard_contiguous(full.train, parts, r).approx_bytes();
    copy_path_peak += shard_contiguous(full.test, parts, r).approx_bytes();
  }
  EXPECT_LT(streamed.resident_bytes, copy_path_peak);
  EXPECT_LT(static_cast<double>(streamed.resident_bytes),
            0.75 * static_cast<double>(copy_path_peak));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace nadmm::data
