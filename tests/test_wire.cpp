// Wire codec, fault-spec parsing, and fault-model determinism.
//
// The codec tests pin the byte layout (the header comment in
// comm/wire.hpp is a contract, not documentation) and the rejection
// paths a receiver relies on: truncation, bad magic, wrong version,
// length mismatch, and checksum failure must all throw with a message
// naming the violation. The fault-model tests pin the fixed-draw
// discipline that keeps faulty runs byte-deterministic.
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "comm/fault.hpp"
#include "comm/wire.hpp"
#include "support/binio.hpp"
#include "support/check.hpp"

namespace {

using namespace nadmm;
using comm::wire::Frame;
using comm::wire::FrameKind;

Frame data_frame(std::vector<double> payload) {
  Frame f;
  f.kind = FrameKind::kData;
  f.from = 2;
  f.to = 0;
  f.tag = 7;
  f.link_seq = 41;
  f.payload = std::move(payload);
  return f;
}

TEST(WireCodec, RoundTripsHeaderAndPayload) {
  const Frame f = data_frame({1.0, -2.5, 3.25});
  const auto bytes = comm::wire::encode(f);
  ASSERT_EQ(bytes.size(), comm::wire::frame_bytes(3));

  const Frame g = comm::wire::decode(bytes);
  EXPECT_EQ(g.kind, FrameKind::kData);
  EXPECT_EQ(g.from, 2);
  EXPECT_EQ(g.to, 0);
  EXPECT_EQ(g.tag, 7);
  EXPECT_EQ(g.link_seq, 41u);
  EXPECT_EQ(g.payload, f.payload);
}

TEST(WireCodec, ZeroLengthPayloadRoundTrips) {
  Frame f = data_frame({});
  f.kind = FrameKind::kAck;
  f.link_seq = 0;
  const auto bytes = comm::wire::encode(f);
  ASSERT_EQ(bytes.size(), comm::wire::kHeaderBytes);
  const Frame g = comm::wire::decode(bytes);
  EXPECT_EQ(g.kind, FrameKind::kAck);
  EXPECT_TRUE(g.payload.empty());
  EXPECT_EQ(g.link_seq, 0u);
}

TEST(WireCodec, MaxTagAndSeqSurvive) {
  Frame f = data_frame({0.0});
  f.tag = std::numeric_limits<int>::max();
  f.link_seq = std::numeric_limits<std::uint64_t>::max();
  const Frame g = comm::wire::decode(comm::wire::encode(f));
  EXPECT_EQ(g.tag, std::numeric_limits<int>::max());
  EXPECT_EQ(g.link_seq, std::numeric_limits<std::uint64_t>::max());
}

TEST(WireCodec, NonFiniteAndDenormalDoublesAreBitExact) {
  const double denormal = std::numeric_limits<double>::denorm_min();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const Frame f = data_frame({denormal, -denormal, inf, -inf, nan, -0.0});
  const Frame g = comm::wire::decode(comm::wire::encode(f));
  ASSERT_EQ(g.payload.size(), f.payload.size());
  for (std::size_t i = 0; i < f.payload.size(); ++i) {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::memcpy(&a, &f.payload[i], sizeof(a));
    std::memcpy(&b, &g.payload[i], sizeof(b));
    EXPECT_EQ(a, b) << "payload[" << i << "] not bit-exact";
  }
}

TEST(WireCodec, HeaderLayoutIsLittleEndianAtFixedOffsets) {
  const Frame f = data_frame({1.0});
  const auto bytes = comm::wire::encode(f);
  // magic "NADM" little-endian at offset 0.
  EXPECT_EQ(bytes[0], 'N');
  EXPECT_EQ(bytes[1], 'A');
  EXPECT_EQ(bytes[2], 'D');
  EXPECT_EQ(bytes[3], 'M');
  // version 1 at offset 4, kind kData at offset 6.
  EXPECT_EQ(bytes[4], 1);
  EXPECT_EQ(bytes[5], 0);
  EXPECT_EQ(bytes[6], 0);
  EXPECT_EQ(bytes[7], 0);
  // from=2 at offset 8, to=0 at 12, tag=7 at 16, reserved zero at 20.
  EXPECT_EQ(bytes[8], 2);
  EXPECT_EQ(bytes[12], 0);
  EXPECT_EQ(bytes[16], 7);
  EXPECT_EQ(bytes[20], 0);
  // link_seq=41 at offset 24, payload_len=1 at 32.
  EXPECT_EQ(bytes[24], 41);
  EXPECT_EQ(bytes[32], 1);
}

TEST(WireCodec, TruncatedHeaderRejectedPrecisely) {
  const auto bytes = comm::wire::encode(data_frame({1.0}));
  const std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + 20);
  try {
    static_cast<void>(comm::wire::decode(cut));
    FAIL() << "truncated header accepted";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST(WireCodec, TruncatedPayloadRejectedPrecisely) {
  auto bytes = comm::wire::encode(data_frame({1.0, 2.0}));
  bytes.resize(bytes.size() - 8);  // drop the last double
  try {
    static_cast<void>(comm::wire::decode(bytes));
    FAIL() << "truncated payload accepted";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("length mismatch"), std::string::npos)
        << e.what();
  }
}

TEST(WireCodec, BadMagicRejected) {
  auto bytes = comm::wire::encode(data_frame({1.0}));
  bytes[0] ^= 0xFF;
  try {
    static_cast<void>(comm::wire::decode(bytes));
    FAIL() << "bad magic accepted";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos)
        << e.what();
  }
}

TEST(WireCodec, UnsupportedVersionRejected) {
  auto bytes = comm::wire::encode(data_frame({1.0}));
  bytes[4] = 9;  // version field, offset 4
  try {
    static_cast<void>(comm::wire::decode(bytes));
    FAIL() << "wrong version accepted";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(WireCodec, FlippedPayloadBitFailsChecksum) {
  auto bytes = comm::wire::encode(data_frame({1.0, 2.0}));
  bytes[comm::wire::kHeaderBytes + 3] ^= 0x10;
  try {
    static_cast<void>(comm::wire::decode(bytes));
    FAIL() << "corrupted payload accepted";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST(WireCodec, FlippedHeaderBitFailsChecksum) {
  auto bytes = comm::wire::encode(data_frame({1.0}));
  bytes[17] ^= 0x01;  // inside the tag field
  EXPECT_THROW(static_cast<void>(comm::wire::decode(bytes)), RuntimeError);
}

// ---------------------------------------------------------------------------
// FaultSpec parsing.
// ---------------------------------------------------------------------------

TEST(FaultSpec, ParsesSubsetsInAnyOrder) {
  const auto s = comm::FaultSpec::parse("dup:0.02,drop:0.05");
  EXPECT_DOUBLE_EQ(s.drop, 0.05);
  EXPECT_DOUBLE_EQ(s.duplicate, 0.02);
  EXPECT_DOUBLE_EQ(s.reorder, 0.0);
  EXPECT_DOUBLE_EQ(s.corrupt, 0.0);
  EXPECT_TRUE(s.any());
}

TEST(FaultSpec, NoneAndEmptyAreCleanLinks) {
  EXPECT_FALSE(comm::FaultSpec::parse("none").any());
  EXPECT_FALSE(comm::FaultSpec::parse("").any());
}

TEST(FaultSpec, PlusJoinsClausesForSweepAxisEntries) {
  const auto s = comm::FaultSpec::parse("drop:0.1+reorder:0.03");
  EXPECT_DOUBLE_EQ(s.drop, 0.1);
  EXPECT_DOUBLE_EQ(s.reorder, 0.03);
}

TEST(FaultSpec, RoundTripsThroughToString) {
  const auto s =
      comm::FaultSpec::parse("drop:0.05,dup:0.01,reorder:0.02,corrupt:0.005");
  const auto t = comm::FaultSpec::parse(s.to_string());
  EXPECT_DOUBLE_EQ(t.drop, s.drop);
  EXPECT_DOUBLE_EQ(t.duplicate, s.duplicate);
  EXPECT_DOUBLE_EQ(t.reorder, s.reorder);
  EXPECT_DOUBLE_EQ(t.corrupt, s.corrupt);
}

TEST(FaultSpec, RejectsUnknownKindBadNumberAndOutOfRange) {
  EXPECT_THROW(static_cast<void>(comm::FaultSpec::parse("lose:0.1")),
               InvalidArgument);
  EXPECT_THROW(static_cast<void>(comm::FaultSpec::parse("drop:zero")),
               InvalidArgument);
  EXPECT_THROW(static_cast<void>(comm::FaultSpec::parse("drop:1.5")),
               InvalidArgument);
  EXPECT_THROW(static_cast<void>(comm::FaultSpec::parse("drop")),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// FaultModel determinism.
// ---------------------------------------------------------------------------

TEST(FaultModel, SameSeedAndLinkReplaysIdenticalDecisions) {
  const auto spec = comm::FaultSpec::parse("drop:0.2,dup:0.1,reorder:0.1");
  comm::FaultModel a(spec, 42, 1, 0);
  comm::FaultModel b(spec, 42, 1, 0);
  for (int i = 0; i < 200; ++i) {
    const auto da = a.next(1e-3);
    const auto db = b.next(1e-3);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.duplicate, db.duplicate);
    EXPECT_EQ(da.corrupt, db.corrupt);
    EXPECT_DOUBLE_EQ(da.delay, db.delay);
    EXPECT_DOUBLE_EQ(da.dup_delay, db.dup_delay);
    EXPECT_EQ(da.corrupt_bit, db.corrupt_bit);
  }
}

TEST(FaultModel, LinksDrawIndependentStreams) {
  const auto spec = comm::FaultSpec::parse("drop:0.5");
  comm::FaultModel ab(spec, 42, 0, 1);
  comm::FaultModel ba(spec, 42, 1, 0);
  int differing = 0;
  for (int i = 0; i < 200; ++i) {
    if (ab.next(1e-3).drop != ba.next(1e-3).drop) ++differing;
  }
  EXPECT_GT(differing, 0) << "reverse link mirrors the forward link";
}

TEST(FaultModel, DrawCountIsFixedRegardlessOfOutcomes) {
  // A model that never fires and one that always drops must consume the
  // same number of uniforms per decision: after N decisions each, a
  // third model seeded identically to the first must still agree with
  // it. (If firing consumed extra draws, the streams would diverge.)
  const auto never = comm::FaultSpec::parse("none");
  const auto always = comm::FaultSpec::parse("drop:1.0");
  comm::FaultModel quiet(never, 7, 0, 1);
  comm::FaultModel noisy(always, 7, 0, 1);
  for (int i = 0; i < 50; ++i) {
    static_cast<void>(quiet.next(1e-3));
    const auto d = noisy.next(1e-3);
    EXPECT_TRUE(d.drop);
  }
  // Both consumed 50 decisions; replay decision 51 on fresh models and
  // the underlying streams must line up with a 51-step fresh run.
  comm::FaultModel fresh(always, 7, 0, 1);
  comm::FaultDecision last;
  for (int i = 0; i < 51; ++i) last = fresh.next(1e-3);
  const auto next_noisy = noisy.next(1e-3);
  EXPECT_EQ(last.drop, next_noisy.drop);
  EXPECT_DOUBLE_EQ(last.delay, next_noisy.delay);
  EXPECT_EQ(last.corrupt_bit, next_noisy.corrupt_bit);
}

// ---------------------------------------------------------------------------
// binio bounds checking (the checkpoint reader's failure mode).
// ---------------------------------------------------------------------------

TEST(ByteReader, TruncationNamesTheMissingField) {
  binio::ByteWriter w;
  w.put_u64(3);
  const auto bytes = w.take();
  binio::ByteReader r(bytes, "test blob");
  EXPECT_EQ(r.get_u64(), 3u);
  try {
    static_cast<void>(r.get_f64());
    FAIL() << "read past the end accepted";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("test blob"), std::string::npos)
        << e.what();
  }
}

TEST(ByteReader, GetRawIsBoundsChecked) {
  binio::ByteWriter w;
  w.put_u64(7);
  const auto bytes = w.take();
  binio::ByteReader r(bytes, "raw blob");
  EXPECT_EQ(r.get_raw(8).size(), 8u);
  EXPECT_THROW(static_cast<void>(r.get_raw(1)), RuntimeError);
}

TEST(ByteReader, ExpectEndRejectsTrailingBytes) {
  binio::ByteWriter w;
  w.put_u32(1);
  const auto bytes = w.take();
  binio::ByteReader r(bytes, "trailing blob");
  EXPECT_THROW(r.expect_end(), RuntimeError);
}

}  // namespace
