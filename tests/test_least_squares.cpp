// Tests for the regularized least-squares objective — the constant-
// Hessian reference problem for the Hessian-free solver stack.
#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.hpp"
#include "la/vector_ops.hpp"
#include "model/fd_check.hpp"
#include "model/least_squares.hpp"
#include "solvers/cg.hpp"
#include "solvers/newton.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace nadmm::model {
namespace {

std::vector<double> random_point(std::size_t dim, double scale,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(dim);
  for (double& v : x) v = scale * rng.normal();
  return x;
}

la::DenseMatrix random_targets(std::size_t n, std::size_t m,
                               std::uint64_t seed) {
  Rng rng(seed);
  la::DenseMatrix t(n, m);
  for (double& v : t.data()) v = rng.normal();
  return t;
}

TEST(LeastSquares, DimensionsAndValueAtZero) {
  auto tt = data::make_blobs(30, 5, 7, 3, 3.0, 1.0, 1);
  auto targets = random_targets(30, 4, 2);
  const double target_sq = la::nrm2_sq(targets.data());
  LeastSquaresObjective obj(tt.train, std::move(targets), 0.0);
  EXPECT_EQ(obj.dim(), 7u * 4u);
  EXPECT_EQ(obj.outputs(), 4u);
  // At X = 0 the residual is −B, so F = ½‖B‖².
  std::vector<double> x(obj.dim(), 0.0);
  EXPECT_NEAR(obj.value(x), 0.5 * target_sq, 1e-9);
}

TEST(LeastSquares, GradientAndHessianMatchFiniteDifferences) {
  auto tt = data::make_blobs(40, 5, 6, 3, 3.0, 1.0, 3);
  LeastSquaresObjective obj(tt.train, random_targets(40, 3, 4), 1e-2);
  const auto x = random_point(obj.dim(), 0.3, 5);
  EXPECT_LT(gradient_fd_error(obj, x, 4), 1e-6);
  EXPECT_LT(hessian_fd_error(obj, x, 4), 1e-6);
}

TEST(LeastSquares, HessianIsConstantInX) {
  auto tt = data::make_blobs(25, 5, 5, 3, 3.0, 1.0, 6);
  LeastSquaresObjective obj(tt.train, random_targets(25, 2, 7), 0.5);
  const auto x1 = random_point(obj.dim(), 0.5, 8);
  const auto x2 = random_point(obj.dim(), 2.0, 9);
  const auto v = random_point(obj.dim(), 1.0, 10);
  std::vector<double> h1(obj.dim()), h2(obj.dim());
  obj.hessian_vec(x1, v, h1);
  obj.hessian_vec(x2, v, h2);
  for (std::size_t i = 0; i < obj.dim(); ++i) EXPECT_DOUBLE_EQ(h1[i], h2[i]);
}

TEST(LeastSquares, NewtonSolvesInOneStep) {
  // Quadratic objective: exact Newton converges in a single iteration.
  auto tt = data::make_blobs(60, 5, 8, 3, 3.0, 1.0, 11);
  LeastSquaresObjective obj(tt.train, random_targets(60, 3, 12), 1.0);
  solvers::NewtonOptions opts;
  opts.cg.max_iterations = 200;
  opts.cg.rel_tol = 1e-12;
  opts.gradient_tol = 1e-8;
  opts.max_iterations = 3;
  const auto r = solvers::newton_cg(obj, std::vector<double>(obj.dim(), 0.0),
                                    opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2);
}

TEST(LeastSquares, SolutionSatisfiesNormalEquations) {
  auto tt = data::make_blobs(50, 5, 6, 3, 3.0, 1.0, 13);
  LeastSquaresObjective obj(tt.train, random_targets(50, 2, 14), 0.1);
  solvers::NewtonOptions opts;
  opts.cg.max_iterations = 300;
  opts.cg.rel_tol = 1e-12;
  opts.gradient_tol = 1e-10;
  const auto r = solvers::newton_cg(obj, std::vector<double>(obj.dim(), 0.0),
                                    opts);
  // Normal equations: ∇F = Aᵀ(AX−B) + λX = 0.
  std::vector<double> g(obj.dim());
  obj.gradient(r.x, g);
  EXPECT_LT(la::nrm2(g), 1e-8);
}

TEST(LeastSquares, OneHotBuildsClassifierTargets) {
  auto tt = data::make_blobs(200, 100, 8, 4, 6.0, 0.6, 15);
  auto obj = LeastSquaresObjective::one_hot(tt.train, 1e-3);
  EXPECT_EQ(obj.outputs(), 4u);
  solvers::NewtonOptions opts;
  opts.cg.max_iterations = 200;
  opts.cg.rel_tol = 1e-10;
  opts.gradient_tol = 1e-8;
  const auto r = solvers::newton_cg(obj, std::vector<double>(obj.dim(), 0.0),
                                    opts);
  // Ridge classifier on well-separated blobs: argmax of A·X recovers most
  // labels.
  const auto& feats = tt.train.dense_features();
  la::DenseMatrix xm(8, 4);
  std::copy(r.x.begin(), r.x.end(), xm.data().begin());
  la::DenseMatrix scores(200, 4);
  la::gemm_nn(1.0, feats, xm, 0.0, scores);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    std::size_t arg = 0;
    for (std::size_t c = 1; c < 4; ++c) {
      if (scores.at(i, c) > scores.at(i, arg)) arg = c;
    }
    hits += (static_cast<std::int32_t>(arg) == tt.train.labels()[i]);
  }
  EXPECT_GT(static_cast<double>(hits) / 200.0, 0.9);
}

TEST(LeastSquares, WorksOnSparseFeatures) {
  auto tt = data::make_e18_like(60, 10, 128, 16);
  auto obj = LeastSquaresObjective::one_hot(tt.train, 1e-2);
  const auto x = random_point(obj.dim(), 0.2, 17);
  EXPECT_LT(gradient_fd_error(obj, x, 3), 1e-6);
  EXPECT_LT(hessian_fd_error(obj, x, 3), 1e-6);
}

TEST(LeastSquares, ValidatesInputs) {
  auto tt = data::make_blobs(10, 5, 4, 3, 3.0, 1.0, 18);
  EXPECT_THROW(LeastSquaresObjective(tt.train, random_targets(9, 2, 19), 0.0),
               InvalidArgument);
  EXPECT_THROW(LeastSquaresObjective(tt.train, random_targets(10, 2, 20), -1.0),
               InvalidArgument);
  LeastSquaresObjective obj(tt.train, random_targets(10, 2, 21), 0.0);
  std::vector<double> wrong(obj.dim() + 1, 0.0);
  EXPECT_THROW(obj.value(wrong), InvalidArgument);
}

TEST(LeastSquares, FusedValueGradientMatchesSeparate) {
  auto tt = data::make_blobs(30, 5, 5, 3, 3.0, 1.0, 22);
  LeastSquaresObjective obj(tt.train, random_targets(30, 3, 23), 0.2);
  const auto x = random_point(obj.dim(), 0.4, 24);
  std::vector<double> g1(obj.dim()), g2(obj.dim());
  const double f1 = obj.value_and_gradient(x, g1);
  const double f2 = obj.value(x);
  obj.gradient(x, g2);
  EXPECT_NEAR(f1, f2, 1e-10 * (1.0 + std::abs(f2)));
  for (std::size_t i = 0; i < obj.dim(); ++i) EXPECT_DOUBLE_EQ(g1[i], g2[i]);
}

}  // namespace
}  // namespace nadmm::model
