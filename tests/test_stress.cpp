// Stress and scale tests: the 16-rank paths the paper's E18 experiments
// use, heavy collective traffic, cluster reuse across many runs, and a
// larger end-to-end solve — slower than unit tests, still seconds.
#include <gtest/gtest.h>

#include <atomic>

#include "comm/cluster.hpp"
#include "core/newton_admm.hpp"
#include "data/generators.hpp"
#include "runner/harness.hpp"
#include "support/rng.hpp"

namespace nadmm {
namespace {

/// Contiguous zero-copy shards sized to the cluster — the explicit form
/// of what the deprecated (train, test) solver overloads did implicitly.
nadmm::data::ShardedDataset shards(const nadmm::comm::SimCluster& cluster,
                                   const nadmm::data::Dataset& train,
                                   const nadmm::data::Dataset* test) {
  nadmm::data::ShardPlan plan;
  plan.parts = cluster.size();
  return nadmm::data::make_sharded(train, test, plan);
}

TEST(Stress, SixteenRankCollectiveStorm) {
  comm::SimCluster cluster(16, la::DeviceModel{"t", 100.0},
                           comm::infiniband_100g());
  cluster.run([&](comm::RankCtx& ctx) {
    Rng rng(static_cast<std::uint64_t>(ctx.rank()));
    std::vector<double> v(257);
    std::vector<double> gathered, all;
    for (int round = 0; round < 200; ++round) {
      for (double& e : v) e = static_cast<double>(ctx.rank()) + e * 0.5;
      ctx.allreduce_sum(v);
      const double check = ctx.allreduce_max(v[0]);
      EXPECT_DOUBLE_EQ(check, v[0]);  // allreduce made v identical
      if (round % 10 == 0) {
        ctx.gather(std::span<const double>(v).subspan(0, 16), gathered, 0);
        ctx.allgather(std::span<const double>(v).subspan(0, 4), all);
        ASSERT_EQ(all.size(), 64u);
      }
    }
  });
}

TEST(Stress, ClusterReuseAcrossManyRuns) {
  comm::SimCluster cluster(6, la::DeviceModel{"t", 100.0},
                           comm::ideal_network());
  std::atomic<int> total{0};
  for (int run = 0; run < 30; ++run) {
    cluster.run([&](comm::RankCtx& ctx) {
      const double s = ctx.allreduce_sum(1.0);
      EXPECT_DOUBLE_EQ(s, 6.0);
      ++total;
    });
  }
  EXPECT_EQ(total.load(), 180);
}

TEST(Stress, SixteenRankNewtonAdmmOnSparseData) {
  // The paper's Figure-5 configuration shape: 16 workers, sparse E18-like.
  auto tt = data::make_e18_like(800, 160, 256, 5);
  comm::SimCluster cluster(16, la::DeviceModel{"t", 100.0},
                           comm::infiniband_100g());
  core::NewtonAdmmOptions opts;
  opts.max_iterations = 15;
  opts.lambda = 1e-3;
  const auto r = core::newton_admm(cluster, shards(cluster, tt.train, &tt.test), opts);
  ASSERT_EQ(r.trace.size(), 15u);
  EXPECT_LT(r.final_objective, r.trace.front().objective);
  EXPECT_GT(r.final_test_accuracy, 1.0 / 20.0);  // above chance
}

TEST(Stress, UnevenShardSizesStillConverge) {
  // 7 ranks over 100 samples: shards of 15 and 14 rows; collectives must
  // stay consistent despite unequal local work.
  auto tt = data::make_blobs(100, 20, 6, 3, 4.0, 1.0, 8);
  comm::SimCluster cluster(7, la::DeviceModel{"t", 100.0},
                           comm::infiniband_100g());
  core::NewtonAdmmOptions opts;
  opts.max_iterations = 30;
  opts.lambda = 1e-2;
  const auto r = core::newton_admm(cluster, shards(cluster, tt.train, nullptr), opts);
  EXPECT_LT(r.final_objective, 100.0 * std::log(3.0));
}

TEST(Stress, MoreRanksThanInterestingWork) {
  // 12 ranks over 24 samples — two rows each; the degenerate-but-legal
  // configuration must not deadlock or corrupt the consensus.
  auto tt = data::make_blobs(24, 8, 4, 2, 4.0, 0.5, 9);
  comm::SimCluster cluster(12, la::DeviceModel{"t", 100.0},
                           comm::infiniband_100g());
  core::NewtonAdmmOptions opts;
  opts.max_iterations = 10;
  opts.lambda = 1e-2;
  const auto r = core::newton_admm(cluster, shards(cluster, tt.train, nullptr), opts);
  EXPECT_EQ(r.iterations, 10);
  EXPECT_TRUE(std::isfinite(r.final_objective));
}

TEST(Stress, RepeatedSolverRunsOnOneClusterViaHarness) {
  runner::ExperimentConfig c;
  c.dataset = "blobs";
  c.n_train = 200;
  c.n_test = 40;
  c.e18_features = 12;
  c.workers = 4;
  c.iterations = 5;
  const auto tt = runner::make_data(c);
  auto cluster = runner::make_cluster(c);
  // The same cluster object must serve several solver runs back to back.
  for (const char* solver : {"newton-admm", "giant", "sync-sgd", "disco"}) {
    const auto r = runner::run_solver(solver, cluster,
      runner::shard_for_solver(solver, tt.train, &tt.test, c), c);
    EXPECT_EQ(r.iterations, 5) << solver;
    EXPECT_TRUE(std::isfinite(r.final_objective)) << solver;
  }
}

}  // namespace
}  // namespace nadmm
