#!/usr/bin/env python3
"""Unit tests for tools/trace_report.py: Chrome-trace parsing and the
per-rank / per-category / top-N aggregation. Registered with CTest
(tests/CMakeLists.txt); stock unittest, no third-party deps."""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "tools"))

from trace_report import load_trace, summarize  # noqa: E402

TRACE = {
    "displayTimeUnit": "ms",
    "otherData": {"label": "test"},
    "traceEvents": [
        {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
         "args": {"name": "rank 0"}},
        # rank 0: 2 µs of kernel work + 5 µs of core work
        {"ph": "X", "pid": 0, "tid": 0, "cat": "core", "name": "local_step",
         "ts": 0.0, "dur": 5.0, "args": {"flops": 100, "bytes": 800}},
        {"ph": "X", "pid": 0, "tid": 0, "cat": "kernel", "name": "gemm_nn",
         "ts": 1.0, "dur": 2.0, "args": {"flops": 90, "bytes": 700}},
        # rank 1: 3 µs of wire work + two instants
        {"ph": "X", "pid": 1, "tid": 0, "cat": "wire", "name": "encode",
         "ts": 4.0, "dur": 3.0},
        {"ph": "i", "pid": 1, "tid": 0, "cat": "wire", "name": "send",
         "ts": 5.0, "s": "p"},
        {"ph": "i", "pid": 1, "tid": 0, "cat": "wire", "name": "send",
         "ts": 6.0, "s": "p"},
        {"ph": "C", "pid": 1, "tid": 0, "name": "sends", "ts": 6.0,
         "args": {"value": 2}},
    ],
}


class LoadTraceTest(unittest.TestCase):
    def write(self, payload):
        f = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False)
        self.addCleanup(os.unlink, f.name)
        json.dump(payload, f)
        f.close()
        return f.name

    def test_object_and_bare_array_forms(self):
        self.assertEqual(len(load_trace(self.write(TRACE))), 7)
        bare = self.write(TRACE["traceEvents"])
        self.assertEqual(len(load_trace(bare)), 7)

    def test_non_trace_json_is_rejected(self):
        with self.assertRaises(ValueError):
            load_trace(self.write({"whatever": 1}))


class SummarizeTest(unittest.TestCase):
    def setUp(self):
        self.report = summarize(TRACE["traceEvents"])

    def test_per_category_totals(self):
        cats = self.report["categories"]
        self.assertAlmostEqual(cats["core"], 5e-6)
        self.assertAlmostEqual(cats["kernel"], 2e-6)
        self.assertAlmostEqual(cats["wire"], 3e-6)

    def test_per_rank_breakdown(self):
        r0 = self.report["ranks"][0]
        self.assertEqual(r0["span_count"], 2)
        self.assertAlmostEqual(r0["span_seconds"]["core"], 5e-6)
        self.assertAlmostEqual(r0["sim_end_s"], 5e-6)
        r1 = self.report["ranks"][1]
        self.assertEqual(r1["instants"], {"send": 2})
        self.assertAlmostEqual(r1["sim_end_s"], 7e-6)  # encode ends at 7 µs

    def test_top_spans_longest_first(self):
        spans = self.report["spans"]
        self.assertEqual([s["name"] for s in spans],
                         ["local_step", "encode", "gemm_nn"])
        self.assertEqual(spans[0]["flops"], 100)
        self.assertEqual(spans[2]["bytes"], 700)

    def test_metadata_and_counter_events_are_ignored(self):
        # 3 spans only — M and C phases must not count as work.
        self.assertEqual(sum(r["span_count"]
                             for r in self.report["ranks"].values()), 3)


if __name__ == "__main__":
    unittest.main()
