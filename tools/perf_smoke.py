#!/usr/bin/env python3
"""Perf-smoke gate for the kernel engine.

Consumes the JSON emitted by `bench_kernels --benchmark_format=json`.
Every kernel is benchmarked twice in the same run — the engine version and
the seed (pre-engine, critical-section) version preserved under
la::kernels::reference — so the engine-vs-seed *speedup* per
(kernel, threads) is a same-machine ratio that transfers across runner
hardware far better than absolute timings.

Alongside the ratio gate there is a *fraction-of-peak* gate: bench runs
that carry the BM_HostPeak_* probes (STREAM-style triad GB/s, unfused
mul+add GFLOP/s) record each single-thread kernel's throughput as a
fraction of whichever host resource binds it tighter — a roofline-style
max(gflops/fma_peak, gb_per_s/triad_peak). Both sides of that gate are
normalized by the *same run's* probes, so it transfers across machines
like the speedup ratio does. Entries or runs without the data skip the
gate silently (older bench binaries, non-kernel benches).

Modes:
  check (default)   compare measured speedups (and peak fractions, when
                    available) against the committed baseline
                    (BENCH_kernels.json); exit 1 if any entry regresses
                    more than `tolerance` (default 25%) below baseline.
  --write-baseline  regenerate the baseline from a bench run.

Usage:
  bench_kernels --benchmark_format=json > bench.json
  tools/perf_smoke.py bench.json                     # gate against baseline
  tools/perf_smoke.py bench.json --write-baseline    # refresh baseline
"""

import argparse
import json
import sys

from nadmm_results import bench_entries, host_peak, load_bench_pairs

BASELINE_DEFAULT = "BENCH_kernels.json"

# Parsing lives in tools/nadmm_results.py (shared with tools/reproduce.py
# and the claim-check tests); these aliases keep existing imports working.
load_pairs = load_bench_pairs
to_entries = bench_entries


def peak_fraction(entry, host):
    """Roofline-style fraction of host peak for one single-thread entry.

    Returns max(compute fraction, bandwidth fraction) over whichever of
    the two the entry + host data support, or None when neither does.
    The max is deliberate: a memory-bound kernel sits far from the FMA
    roof forever, so gating its *closest* roof is the meaningful check.
    Fractions cap at 1.0 — a cache-resident kernel can stream far above
    the DRAM triad roof, and *how far* above depends on the runner's
    cache size, which is exactly the machine lottery this gate avoids.
    """
    if entry.get("threads") != 1 or not host:
        return None
    fractions = []
    if entry.get("engine_gops") and host.get("fma_gflops"):
        fractions.append(entry["engine_gops"] / host["fma_gflops"])
    if entry.get("engine_gb_per_s") and host.get("triad_gb_per_s"):
        fractions.append(entry["engine_gb_per_s"] / host["triad_gb_per_s"])
    return min(max(fractions), 1.0) if fractions else None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_json", help="output of bench_kernels --benchmark_format=json")
    ap.add_argument("--baseline", default=BASELINE_DEFAULT)
    ap.add_argument("--bench-name", default="kernels",
                    help="label written into the baseline with "
                         "--write-baseline (e.g. 'async')")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative speedup regression (default 0.25)")
    ap.add_argument("--max-threads", type=int, default=None,
                    help="ignore entries above this thread count (set to the "
                         "runner's core count: an 8-thread ratio measured on "
                         "a 4-core machine gates nothing meaningful)")
    ap.add_argument("--write-baseline", action="store_true")
    args = ap.parse_args()

    entries = to_entries(load_pairs(args.bench_json))
    if args.max_threads is not None and not args.write_baseline:
        entries = [e for e in entries if e["threads"] <= args.max_threads]
    if not entries:
        print("perf_smoke: no engine/seed benchmark pairs found", file=sys.stderr)
        return 1
    host = host_peak(args.bench_json)

    if args.write_baseline:
        for e in entries:
            frac = peak_fraction(e, host)
            if frac is not None:
                e["peak_fraction"] = round(frac, 4)
        baseline = {
            "bench": args.bench_name,
            "gate": "engine-vs-seed speedup per (kernel, threads); "
                    "fails when measured < baseline * (1 - tolerance); "
                    "single-thread entries additionally gate roofline "
                    "fraction-of-host-peak, normalized per run by the "
                    "BM_HostPeak_* probes",
            "tolerance": args.tolerance,
            "entries": entries,
        }
        if host:
            baseline["host"] = host
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print(f"perf_smoke: wrote {len(entries)} entries to {args.baseline}")
        return 0

    with open(args.baseline) as f:
        baseline = json.load(f)
    base = {(e["kernel"], e["threads"]): e["speedup"]
            for e in baseline["entries"]
            if args.max_threads is None or e["threads"] <= args.max_threads}
    tolerance = args.tolerance

    failures, missing = [], []
    width = max(len(e["kernel"]) for e in entries)
    print(f"{'kernel':<{width}}  thr  speedup  baseline  floor")
    for e in entries:
        key = (e["kernel"], e["threads"])
        if key not in base:
            missing.append(key)
            continue
        floor = base[key] * (1.0 - tolerance)
        status = "ok" if e["speedup"] >= floor else "REGRESSION"
        print(f"{e['kernel']:<{width}}  {e['threads']:>3}  "
              f"{e['speedup']:>7.3f}  {base[key]:>8.3f}  {floor:>5.3f}  {status}")
        if e["speedup"] < floor:
            failures.append((key, e["speedup"], floor))

    for key in sorted(set(base) - {(e["kernel"], e["threads"]) for e in entries}):
        print(f"perf_smoke: baseline entry {key} missing from bench run",
              file=sys.stderr)
        failures.append((key, 0.0, base[key]))

    # Fraction-of-peak gate: only for single-thread entries where both the
    # baseline (recorded fraction) and this run (host probes + absolute
    # columns) carry the data. Normalizing each side by its own machine's
    # probes is what makes the fraction portable.
    base_frac = {(e["kernel"], e["threads"]): e["peak_fraction"]
                 for e in baseline["entries"] if "peak_fraction" in e}
    frac_rows = []
    for e in entries:
        key = (e["kernel"], e["threads"])
        measured = peak_fraction(e, host)
        if key not in base_frac or measured is None:
            continue
        floor = base_frac[key] * (1.0 - tolerance)
        frac_rows.append((key, measured, base_frac[key], floor))
    if frac_rows:
        print(f"\n{'kernel':<{width}}  thr  peak-frac  baseline  floor")
        for key, measured, base_val, floor in frac_rows:
            status = "ok" if measured >= floor else "REGRESSION"
            print(f"{key[0]:<{width}}  {key[1]:>3}  {measured:>9.3f}  "
                  f"{base_val:>8.3f}  {floor:>5.3f}  {status}")
            if measured < floor:
                failures.append((key, measured, floor))
    elif base_frac and not host:
        print("perf_smoke: note: baseline has peak fractions but this run "
              "lacks BM_HostPeak_* probes; fraction gate skipped")

    if missing:
        print(f"perf_smoke: note: {len(missing)} measured pairs have no "
              f"baseline entry (new benchmarks?): {missing}")
    if failures:
        print(f"perf_smoke: {len(failures)} kernel(s) regressed >"
              f"{tolerance:.0%} against {args.baseline}", file=sys.stderr)
        for (kernel, threads), measured, floor in failures:
            print(f"perf_smoke:   {kernel} (threads={threads}): current "
                  f"{measured:.3f} below floor {floor:.3f}", file=sys.stderr)
        return 1
    gated = len(entries) + len(frac_rows)
    print(f"perf_smoke: all {gated} gated values within "
          f"{tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
