#!/usr/bin/env python3
"""Perf-smoke gate for the kernel engine.

Consumes the JSON emitted by `bench_kernels --benchmark_format=json`.
Every kernel is benchmarked twice in the same run — the engine version and
the seed (pre-engine, critical-section) version preserved under
la::kernels::reference — so the engine-vs-seed *speedup* per
(kernel, threads) is a same-machine ratio that transfers across runner
hardware far better than absolute timings.

Modes:
  check (default)   compare measured speedups against the committed
                    baseline (BENCH_kernels.json); exit 1 if any entry
                    regresses more than `tolerance` (default 25%) below
                    its baseline speedup.
  --write-baseline  regenerate the baseline from a bench run.

Usage:
  bench_kernels --benchmark_format=json > bench.json
  tools/perf_smoke.py bench.json                     # gate against baseline
  tools/perf_smoke.py bench.json --write-baseline    # refresh baseline
"""

import argparse
import json
import sys

from nadmm_results import bench_entries, load_bench_pairs

BASELINE_DEFAULT = "BENCH_kernels.json"

# Parsing lives in tools/nadmm_results.py (shared with tools/reproduce.py
# and the claim-check tests); these aliases keep existing imports working.
load_pairs = load_bench_pairs
to_entries = bench_entries


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_json", help="output of bench_kernels --benchmark_format=json")
    ap.add_argument("--baseline", default=BASELINE_DEFAULT)
    ap.add_argument("--bench-name", default="kernels",
                    help="label written into the baseline with "
                         "--write-baseline (e.g. 'async')")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative speedup regression (default 0.25)")
    ap.add_argument("--max-threads", type=int, default=None,
                    help="ignore entries above this thread count (set to the "
                         "runner's core count: an 8-thread ratio measured on "
                         "a 4-core machine gates nothing meaningful)")
    ap.add_argument("--write-baseline", action="store_true")
    args = ap.parse_args()

    entries = to_entries(load_pairs(args.bench_json))
    if args.max_threads is not None and not args.write_baseline:
        entries = [e for e in entries if e["threads"] <= args.max_threads]
    if not entries:
        print("perf_smoke: no engine/seed benchmark pairs found", file=sys.stderr)
        return 1

    if args.write_baseline:
        baseline = {
            "bench": args.bench_name,
            "gate": "engine-vs-seed speedup per (kernel, threads); "
                    "fails when measured < baseline * (1 - tolerance)",
            "tolerance": args.tolerance,
            "entries": entries,
        }
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print(f"perf_smoke: wrote {len(entries)} entries to {args.baseline}")
        return 0

    with open(args.baseline) as f:
        baseline = json.load(f)
    base = {(e["kernel"], e["threads"]): e["speedup"]
            for e in baseline["entries"]
            if args.max_threads is None or e["threads"] <= args.max_threads}
    tolerance = args.tolerance

    failures, missing = [], []
    width = max(len(e["kernel"]) for e in entries)
    print(f"{'kernel':<{width}}  thr  speedup  baseline  floor")
    for e in entries:
        key = (e["kernel"], e["threads"])
        if key not in base:
            missing.append(key)
            continue
        floor = base[key] * (1.0 - tolerance)
        status = "ok" if e["speedup"] >= floor else "REGRESSION"
        print(f"{e['kernel']:<{width}}  {e['threads']:>3}  "
              f"{e['speedup']:>7.3f}  {base[key]:>8.3f}  {floor:>5.3f}  {status}")
        if e["speedup"] < floor:
            failures.append((key, e["speedup"], floor))

    for key in sorted(set(base) - {(e["kernel"], e["threads"]) for e in entries}):
        print(f"perf_smoke: baseline entry {key} missing from bench run",
              file=sys.stderr)
        failures.append((key, 0.0, base[key]))

    if missing:
        print(f"perf_smoke: note: {len(missing)} measured pairs have no "
              f"baseline entry (new benchmarks?): {missing}")
    if failures:
        print(f"perf_smoke: {len(failures)} kernel(s) regressed >"
              f"{tolerance:.0%} against {args.baseline}", file=sys.stderr)
        for (kernel, threads), measured, floor in failures:
            base_speedup = base[(kernel, threads)]
            ratio = measured / base_speedup if base_speedup > 0 else float("inf")
            print(f"perf_smoke:   {kernel} (threads={threads}): baseline "
                  f"speedup {base_speedup:.3f}, current {measured:.3f} "
                  f"({ratio:.2f}x of baseline; floor {floor:.3f})",
                  file=sys.stderr)
        return 1
    print(f"perf_smoke: all {len(entries)} kernel speedups within "
          f"{tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
