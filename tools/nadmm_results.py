#!/usr/bin/env python3
"""Shared result-loading layer for the nadmm tooling.

Three consumers sit on top of this module:

  * tools/perf_smoke.py   — engine-vs-seed speedup gating against the
                            committed BENCH_*.json baselines,
  * tools/reproduce.py    — the paper-reproduction pipeline (figure
                            distillation + claim checking),
  * tests/test_claimcheck.py — unit tests for the extractor/evaluator.

It has no third-party dependencies (stdlib only) and never imports
matplotlib; rendering lives with the consumers.

Contents:
  Google-Benchmark JSON     load_bench_pairs(), bench_entries(), host_peak()
  sweep report CSVs         load_csv(), distinct(), extract_series()
  claim checking            load_claims(), evaluate_claim(), ClaimError

Claim semantics (docs/claims.toml) — every claim names a `figure`
(a CSV under docs/figures/) and one of three kinds:

  ordering   value(lhs-selector)  <relation>  value(rhs-selector)
  ratio      value(num) / value(den)  within [min, max]
  threshold  value(select)            within [min, max]

With `group_by = ["solver", "dataset"]` the claim is evaluated once per
distinct combination found in the figure CSV and passes only when every
group passes. A selector that matches no row — or several — is a hard
ClaimError, never a silent pass: a renamed column or a dropped series
must fail the harness loudly.
"""

from __future__ import annotations

import csv
import json
import re

try:  # Python ≥ 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.10 fallback, unused in CI
    tomllib = None

# --------------------------------------------------------------------------
# Google-Benchmark JSON (bench_kernels / bench_async / ... --benchmark_format=json)
# --------------------------------------------------------------------------

BENCH_NAME_RE = re.compile(r"^(BM_\w+?)_(Engine|Seed)/(\d+)$")


def load_bench_pairs(bench_json_path):
    """Return {(kernel, threads): {"engine": ips, "seed": ips}}.

    Every kernel is benchmarked twice in the same run — the engine
    version and the preserved seed version — so the engine-vs-seed
    speedup per (kernel, threads) is a same-machine ratio that
    transfers across runner hardware far better than absolute timings.
    When the run used --benchmark_repetitions, median aggregates are
    preferred over per-iteration entries for noise robustness.
    """
    with open(bench_json_path) as f:
        data = json.load(f)
    has_aggregates = any(
        b.get("run_type") == "aggregate" for b in data.get("benchmarks", []))
    pairs = {}
    for b in data.get("benchmarks", []):
        name = b["name"]
        if has_aggregates:
            if b.get("aggregate_name") != "median":
                continue
            name = name.removesuffix("_median")
        elif b.get("run_type") == "aggregate":
            continue
        m = BENCH_NAME_RE.match(name)
        if not m:
            continue
        kernel, side, threads = m.group(1), m.group(2), int(m.group(3))
        ips = b.get("items_per_second")
        if ips is None:
            # Fall back to inverse real time when items were not set.
            ips = 1.0 / b["real_time"] if b.get("real_time") else None
        if ips is None:
            continue
        sides = pairs.setdefault((kernel, threads), {})
        sides[side.lower()] = ips
        # Absolute memory traffic, when the bench set bytes (optional —
        # older bench binaries and the unit-test fixtures omit it).
        bps = b.get("bytes_per_second")
        if bps is not None:
            sides[side.lower() + "_bytes"] = bps
    return pairs


def bench_entries(pairs):
    """Flatten load_bench_pairs() output into sorted baseline entries.

    Alongside the machine-portable engine-vs-seed speedup, entries carry
    absolute engine throughput when the bench recorded it:
    `engine_gops` is giga work-items/s (flops for the gemm/gemv/spmm
    kernels, elements for softmax, nnz for the CSC build) and
    `engine_gb_per_s` is memory traffic. Absolute numbers only mean
    something next to the same run's host-peak probes — see host_peak().
    """
    entries = []
    for (kernel, threads), sides in sorted(pairs.items()):
        if "engine" not in sides or "seed" not in sides:
            continue
        entry = {
            "kernel": kernel,
            "threads": threads,
            "engine_items_per_s": round(sides["engine"], 1),
            "seed_items_per_s": round(sides["seed"], 1),
            "speedup": round(sides["engine"] / sides["seed"], 3),
        }
        entry["engine_gops"] = round(sides["engine"] / 1e9, 3)
        if "engine_bytes" in sides:
            entry["engine_gb_per_s"] = round(sides["engine_bytes"] / 1e9, 3)
        entries.append(entry)
    return entries


HOST_PEAK_BENCHES = {
    "BM_HostPeak_Triad": ("triad_gb_per_s", "bytes_per_second"),
    "BM_HostPeak_Fma": ("fma_gflops", "items_per_second"),
}


def host_peak(bench_json_path):
    """Extract the host-peak probes from a bench_kernels JSON run.

    Returns {"triad_gb_per_s": ..., "fma_gflops": ..., "isa": ...} with
    only the keys the run actually contains — {} for bench binaries that
    predate the probes. The triad probe is STREAM-style sustainable
    bandwidth; the FMA probe is unfused mul+add peak on the active SIMD
    backend, i.e. the ceiling an engine kernel can reach under the
    bit-identity (no-FMA) contract.
    """
    with open(bench_json_path) as f:
        data = json.load(f)
    out = {}
    isa = data.get("context", {}).get("nadmm_isa")
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "median":
            continue
        name = b.get("name", "").removesuffix("_median")
        if name in HOST_PEAK_BENCHES:
            key, field = HOST_PEAK_BENCHES[name]
            if b.get(field) is not None:
                out[key] = round(b[field] / 1e9, 3)
    if out and isa:
        out["isa"] = isa
    return out


# --------------------------------------------------------------------------
# Sweep-report / figure CSVs
# --------------------------------------------------------------------------


def load_csv(path):
    """Read a CSV into a list of {column: str} dicts (header row keys).

    Values stay strings; numeric interpretation happens at the point of
    use (extract_series) so selector matching can compare exact text.
    """
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    if not rows:
        raise ClaimError(f"{path}: no data rows")
    return rows


def distinct(rows, column):
    """Ordered distinct values of one column (first-seen order)."""
    seen = []
    for row in rows:
        if column not in row:
            raise ClaimError(f"unknown column '{column}'")
        if row[column] not in seen:
            seen.append(row[column])
    return seen


def _matches(row, selector):
    return all(str(row.get(col)) == str(val) for col, val in selector.items())


def extract_series(rows, metric, selector=None, group_by=()):
    """Return {group_key_tuple: float(metric)} for matching rows.

    `selector` filters rows by exact string equality per column;
    `group_by` columns form the key. Exactly one row must survive per
    group — zero or several raise ClaimError (a vanished series must
    never read as an empty-but-passing result).
    """
    selector = selector or {}
    for col in list(selector) + list(group_by) + [metric]:
        if rows and col not in rows[0]:
            raise ClaimError(
                f"unknown column '{col}' (have: {', '.join(rows[0])})")
    out = {}
    for row in rows:
        if not _matches(row, selector):
            continue
        key = tuple(row[c] for c in group_by)
        if key in out:
            raise ClaimError(
                f"selector {selector} matches multiple rows for group "
                f"{dict(zip(group_by, key)) or '<all>'}; add group_by or "
                "selector columns until each series point is unique")
        try:
            out[key] = float(row[metric])
        except ValueError as exc:
            raise ClaimError(f"column '{metric}' is not numeric: {exc}")
    if not out:
        raise ClaimError(f"selector {selector} matched no rows")
    return out


# --------------------------------------------------------------------------
# Claim checking
# --------------------------------------------------------------------------


class ClaimError(RuntimeError):
    """Malformed claim or missing/ambiguous data. Distinct from a claim
    FAILING: a failed claim is a result, a ClaimError is a broken
    harness and always exits non-zero."""


_RELATIONS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_KINDS = ("ordering", "ratio", "threshold")


def load_claims(path):
    """Parse docs/claims.toml; returns the list of claim dicts."""
    if tomllib is None:  # pragma: no cover
        raise ClaimError("tomllib unavailable (needs Python >= 3.11)")
    with open(path, "rb") as f:
        doc = tomllib.load(f)
    claims = doc.get("claim")
    if not claims:
        raise ClaimError(f"{path}: no [[claim]] entries")
    ids = set()
    for c in claims:
        for field in ("id", "title", "figure", "kind", "metric"):
            if field not in c:
                raise ClaimError(f"claim {c.get('id', '?')}: missing '{field}'")
        if c["kind"] not in _KINDS:
            raise ClaimError(
                f"claim {c['id']}: kind must be one of {_KINDS}")
        if c["id"] in ids:
            raise ClaimError(f"duplicate claim id '{c['id']}'")
        ids.add(c["id"])
    return claims


def _bounds_ok(value, claim):
    lo, hi = claim.get("min"), claim.get("max")
    if lo is None and hi is None:
        raise ClaimError(f"claim {claim['id']}: needs 'min' and/or 'max'")
    return (lo is None or value >= lo) and (hi is None or value <= hi)


def evaluate_claim(claim, rows):
    """Evaluate one claim against a figure CSV's rows.

    Returns {"id", "passed": bool, "groups": [per-group detail dicts]}.
    Each group dict has "group" (column→value), "passed", and the
    measured "value" (ordering claims report lhs/rhs instead).
    Raises ClaimError on structural problems (see extract_series).
    """
    kind = claim["kind"]
    metric = claim["metric"]
    group_by = tuple(claim.get("group_by", ()))

    def series(selector_field):
        sel = claim.get(selector_field)
        if sel is None:
            raise ClaimError(
                f"claim {claim['id']}: kind '{kind}' needs '{selector_field}'")
        return extract_series(rows, metric, sel, group_by)

    groups = []
    if kind == "ordering":
        relation = claim.get("relation")
        if relation not in _RELATIONS:
            raise ClaimError(
                f"claim {claim['id']}: relation must be one of "
                f"{sorted(_RELATIONS)}")
        lhs, rhs = series("lhs"), series("rhs")
        if set(lhs) != set(rhs):
            raise ClaimError(
                f"claim {claim['id']}: lhs and rhs cover different groups "
                f"({sorted(set(lhs) ^ set(rhs))})")
        for key in sorted(lhs):
            ok = _RELATIONS[relation](lhs[key], rhs[key])
            groups.append({"group": dict(zip(group_by, key)), "passed": ok,
                           "lhs": lhs[key], "rhs": rhs[key]})
    elif kind == "ratio":
        num, den = series("num"), series("den")
        if set(num) != set(den):
            raise ClaimError(
                f"claim {claim['id']}: num and den cover different groups "
                f"({sorted(set(num) ^ set(den))})")
        for key in sorted(num):
            if den[key] == 0.0:
                raise ClaimError(f"claim {claim['id']}: zero denominator "
                                 f"for group {key}")
            value = num[key] / den[key]
            groups.append({"group": dict(zip(group_by, key)),
                           "passed": _bounds_ok(value, claim),
                           "value": value})
    else:  # threshold
        sel = claim.get("select", {})
        values = extract_series(rows, metric, sel, group_by)
        for key in sorted(values):
            groups.append({"group": dict(zip(group_by, key)),
                           "passed": _bounds_ok(values[key], claim),
                           "value": values[key]})

    return {"id": claim["id"], "passed": all(g["passed"] for g in groups),
            "groups": groups}
