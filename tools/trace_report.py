#!/usr/bin/env python3
"""Summarize a telemetry Chrome trace (from `nadmm run --trace-out`,
`nadmm serve --trace-out`, or `nadmm sweep --trace-out=<dir>`).

The trace stamps virtual SimClock time, so every number here is
simulated seconds — deterministic across hosts and sweep --jobs levels.
Reports:

  * per-rank breakdown: span time per category, instant counts;
  * per-category totals across ranks (where does simulated time go);
  * top-N longest spans (the stalls worth opening in Perfetto).

Pure stdlib; shares no state with the C++ exporter beyond the
trace_event format itself.

Usage:
  tools/trace_report.py TRACE.json [--top N] [--json]
"""

import argparse
import json
import sys
from collections import defaultdict


def load_trace(path):
    """Parse one Chrome trace_event JSON file into its event list."""
    with open(path) as f:
        data = json.load(f)
    if isinstance(data, list):  # bare trace-event array variant
        return data
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError(f"{path}: no traceEvents array — not a Chrome trace")
    return events


def summarize(events):
    """Aggregate spans/instants into the report structure.

    Returns {"ranks": {pid: {...}}, "categories": {cat: seconds},
    "spans": [longest-first]}. Durations convert from the trace's
    microseconds to seconds.
    """
    ranks = defaultdict(lambda: {
        "span_seconds": defaultdict(float),
        "span_count": 0,
        "instants": defaultdict(int),
        "end_us": 0.0,
    })
    categories = defaultdict(float)
    spans = []
    for e in events:
        ph = e.get("ph")
        pid = e.get("pid", 0)
        if ph == "X":
            cat = e.get("cat", "?")
            dur_s = float(e.get("dur", 0.0)) * 1e-6
            r = ranks[pid]
            r["span_seconds"][cat] += dur_s
            r["span_count"] += 1
            r["end_us"] = max(r["end_us"], float(e.get("ts", 0.0)) +
                              float(e.get("dur", 0.0)))
            categories[cat] += dur_s
            spans.append({
                "rank": pid,
                "category": cat,
                "name": e.get("name", "?"),
                "ts_s": float(e.get("ts", 0.0)) * 1e-6,
                "dur_s": dur_s,
                "flops": e.get("args", {}).get("flops", 0),
                "bytes": e.get("args", {}).get("bytes", 0),
            })
        elif ph == "i":
            r = ranks[pid]
            r["instants"][e.get("name", "?")] += 1
            r["end_us"] = max(r["end_us"], float(e.get("ts", 0.0)))
    spans.sort(key=lambda s: (-s["dur_s"], s["ts_s"], s["rank"], s["name"]))
    return {
        "ranks": {pid: {
            "span_seconds": dict(r["span_seconds"]),
            "span_count": r["span_count"],
            "instants": dict(r["instants"]),
            "sim_end_s": r["end_us"] * 1e-6,
        } for pid, r in sorted(ranks.items())},
        "categories": dict(categories),
        "spans": spans,
    }


def print_report(path, report, top):
    print(f"trace report — {path}")
    total = sum(report["categories"].values())
    print(f"\nper-category simulated span time ({total:.6g}s total):")
    for cat, secs in sorted(report["categories"].items(),
                            key=lambda kv: -kv[1]):
        share = secs / total if total > 0 else 0.0
        print(f"  {cat:<10} {secs:.6g}s  ({share:.1%})")

    print("\nper-rank breakdown:")
    for pid, r in report["ranks"].items():
        cats = "  ".join(f"{c}={s:.6g}s"
                         for c, s in sorted(r["span_seconds"].items(),
                                            key=lambda kv: -kv[1]))
        print(f"  rank {pid}: {r['span_count']} spans, "
              f"sim end {r['sim_end_s']:.6g}s  {cats}")
        if r["instants"]:
            inst = "  ".join(f"{n}={c}"
                             for n, c in sorted(r["instants"].items()))
            print(f"    instants: {inst}")

    shown = report["spans"][:top]
    if shown:
        print(f"\ntop {len(shown)} longest spans:")
        width = max(len(f"{s['category']}/{s['name']}") for s in shown)
        for s in shown:
            label = f"{s['category']}/{s['name']}"
            print(f"  {label:<{width}}  rank {s['rank']}  "
                  f"t={s['ts_s']:.6g}s  dur={s['dur_s']:.6g}s  "
                  f"flops={s['flops']}  bytes={s['bytes']}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace_event JSON file")
    ap.add_argument("--top", type=int, default=10,
                    help="longest spans to list (default 10)")
    ap.add_argument("--json", action="store_true",
                    help="emit the report as JSON instead of text")
    args = ap.parse_args()

    report = summarize(load_trace(args.trace))
    if args.json:
        report["spans"] = report["spans"][:args.top]
        json.dump(report, sys.stdout, indent=2)
        print()
    else:
        print_report(args.trace, report, args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
