#!/usr/bin/env python3
"""Paper-reproduction pipeline: figures, claim checks, report.

Drives the five per-figure sweep specs (sweeps/fig1_solvers.sweep …
fig5_weak_scaling.sweep) through `nadmm sweep --resume`, distills each
figure's data series into docs/figures/<figure>.csv, renders
matplotlib-free SVG + ASCII charts, evaluates every claim in
docs/claims.toml against the distilled series, and writes the generated
docs/REPRODUCTION.md. The async time-to-target figure distills from the
committed sweeps/async_grid.csv (its objective_target is calibrated for
the committed problem size, and CI already regenerates that file
byte-for-byte), so it is never re-run here.

Everything emitted is a pure function of the sweep reports: no
timestamps, hostnames, or git state. Re-running against the same
journals reproduces docs/ byte-for-byte, which is what the CI jobs
check.

Usage:
  tools/reproduce.py                 # full scale-1 run (needs build/nadmm)
  tools/reproduce.py --scale=4 --out-dir=/tmp/repro4   # paper-scale
  tools/reproduce.py --figures=fig2_epoch_time         # subset
  tools/reproduce.py --skip-sweeps   # re-distill from existing raw CSVs
  tools/reproduce.py --smoke         # no binary: re-derive everything
                                     # from committed artifacts and fail
                                     # on any byte drift or claim
                                     # regression

Exit codes: 0 all claims pass (and, with --smoke, no drift);
1 claim failure, drift, or broken harness (ClaimError).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from nadmm_results import (  # noqa: E402
    ClaimError,
    evaluate_claim,
    load_claims,
    load_csv,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

PALETTE = ["#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
           "#9467bd", "#8c564b", "#e377c2", "#7f7f7f"]


def fmt_g(value, digits=6):
    return format(float(value), f".{digits}g")


# --------------------------------------------------------------------------
# Figure distillers: raw sweep report rows -> (header, rows) of the
# committed docs/figures/<key>.csv. Raw metric strings are copied
# verbatim where possible so reruns stay byte-identical; computed
# columns (fig3 speedup) use fmt_g.
# --------------------------------------------------------------------------


def _ok(rows):
    bad = [r for r in rows if r["status"] != "ok"]
    if bad:
        raise ClaimError(
            "sweep report has failed scenarios: "
            + ", ".join(r["scenario"] for r in bad))
    return rows


def distill_fig1(raw):
    header = ["solver", "iterations", "avg_epoch_sim_seconds",
              "total_sim_seconds", "final_objective", "final_test_accuracy"]
    return header, [[r[c] for c in header] for r in _ok(raw)]


def distill_fig2(raw):
    header = ["solver", "dataset", "workers", "avg_epoch_sim_seconds"]
    return header, [[r[c] for c in header] for r in _ok(raw)]


def distill_fig3(raw):
    epochs = {}
    for r in _ok(raw):
        epochs[(r["dataset"], r["workers"], r["solver"])] = \
            r["avg_epoch_sim_seconds"]
    header = ["dataset", "workers", "newton_admm_epoch_s", "giant_epoch_s",
              "speedup"]
    rows, seen = [], set()
    for r in raw:
        key = (r["dataset"], r["workers"])
        if key in seen:
            continue
        seen.add(key)
        admm = epochs[(key[0], key[1], "newton-admm")]
        giant = epochs[(key[0], key[1], "giant")]
        rows.append([key[0], key[1], admm, giant,
                     fmt_g(float(giant) / float(admm))])
    return header, rows


def distill_fig4(raw):
    header = ["solver", "dataset", "total_sim_seconds", "final_objective",
              "final_test_accuracy"]
    return header, [[r[c] for c in header] for r in _ok(raw)]


def distill_fig5(raw):
    header = ["solver", "lambda", "workers", "n_train",
              "avg_epoch_sim_seconds"]
    rows = []
    for r in _ok(raw):
        rows.append([r["solver"], fmt_g(r["lambda"]), r["workers"],
                     r["n_train"], r["avg_epoch_sim_seconds"]])
    return header, rows


def distill_async(raw):
    header = ["solver", "network", "straggler", "iterations",
              "total_sim_seconds"]
    return header, [[r[c] for c in header] for r in _ok(raw)]


def distill_wait(raw):
    """Per-rank telemetry from the committed async grid: explode the
    ';'-joined rank_wait_seconds column into one row per rank for the
    async runtimes on wan, carrying the sparse staleness histogram
    alongside. The wait strings are copied verbatim so reruns stay
    byte-identical."""
    header = ["solver", "straggler", "rank", "wait_seconds",
              "staleness_hist"]
    rows = []
    for r in _ok(raw):
        if r["network"] != "wan" or r["solver"] == "newton-admm":
            continue
        for rank, wait in enumerate(r["rank_wait_seconds"].split(";")):
            rows.append([r["solver"], r["straggler"], str(rank), wait,
                         r["staleness_hist"]])
    return header, rows


def distill_fault(raw):
    header = ["solver", "network", "fault", "iterations", "final_objective",
              "total_sim_seconds", "retransmits", "messages_dropped"]
    return header, [[r[c] for c in header] for r in _ok(raw)]


# Chart config: how to read the distilled rows for rendering.
#   type: line (numeric x) | bar (categorical x)
#   x / series: column names; series labels join with " ".
FIGURES = [
    {
        "key": "fig1_solvers",
        "spec": "sweeps/fig1_solvers.sweep",
        "title": "Figure 1 — per-epoch solver cost, MNIST stand-in",
        "caption": (
            "Average simulated epoch cost per solver (MNIST stand-in, "
            "8 workers, eth10, λ=1e-5). Newton-ADMM's single CG+allreduce "
            "epoch is an order of magnitude cheaper than the "
            "SVRG-inner-loop epochs of InexactDANE/AIDE — the paper's "
            "Fig. 1 gap — while every solver reaches the same test "
            "accuracy."),
        "distill": distill_fig1,
        "chart": {"type": "bar", "x": ["solver"], "series": [],
                  "y": "avg_epoch_sim_seconds",
                  "ylabel": "avg epoch (sim s)"},
    },
    {
        "key": "fig2_epoch_time",
        "spec": "sweeps/fig2_epoch_time.sweep",
        "title": "Figure 2 — strong scaling: epoch time vs workers",
        "caption": (
            "Average simulated epoch time against worker count on ib100 "
            "(log y). Epoch time falls from 1 to 8 ranks for both solvers "
            "on all four dataset stand-ins; Newton-ADMM stays below GIANT "
            "throughout."),
        "distill": distill_fig2,
        "chart": {"type": "line", "x": "workers",
                  "series": ["solver", "dataset"],
                  "y": "avg_epoch_sim_seconds", "logy": True,
                  "xlabel": "workers", "ylabel": "avg epoch (sim s)"},
    },
    {
        "key": "fig3_speedup",
        "spec": "sweeps/fig3_speedup.sweep",
        "title": "Figure 3 — Newton-ADMM speedup over GIANT",
        "caption": (
            "Per-epoch cost ratio epoch_GIANT / epoch_NADMM on eth10 "
            "under a fixed 8-epoch budget (the fixed-budget proxy for the "
            "paper's time-to-θ speedup — see Deviations). Ratio > 1 "
            "everywhere: one allreduce per epoch instead of two."),
        "distill": distill_fig3,
        "chart": {"type": "line", "x": "workers", "series": ["dataset"],
                  "y": "speedup", "xlabel": "workers",
                  "ylabel": "speedup (×)"},
    },
    {
        "key": "fig4_sgd",
        "spec": "sweeps/fig4_sgd.sweep",
        "title": "Figure 4 — Newton-ADMM vs synchronous SGD",
        "caption": (
            "Total simulated time for a 20-epoch budget on eth10. "
            "Sync-SGD pays an allreduce per minibatch, so Newton-ADMM "
            "finishes faster and lands on a better objective and test "
            "accuracy on every dataset stand-in."),
        "distill": distill_fig4,
        "chart": {"type": "bar", "x": ["dataset"], "series": ["solver"],
                  "y": "total_sim_seconds",
                  "ylabel": "total sim time (s)"},
    },
    {
        "key": "fig5_weak_scaling",
        "spec": "sweeps/fig5_weak_scaling.sweep",
        "title": "Figure 5 — weak scaling on E18",
        "caption": (
            "Epoch time with a fixed per-worker shard (E18 stand-in, "
            "ib100, λ ∈ {1e-3, 1e-5}). Per-rank load is constant along "
            "the x-axis, so growth is pure communication; 8-rank "
            "weak-scaling efficiency stays above 0.6 and Newton-ADMM's "
            "epochs stay cheaper than GIANT's at both λ."),
        "distill": distill_fig5,
        "chart": {"type": "line", "x": "workers",
                  "series": ["solver", "lambda"],
                  "y": "avg_epoch_sim_seconds", "xlabel": "workers",
                  "ylabel": "avg epoch (sim s)"},
    },
    {
        "key": "async_time_to_target",
        "spec": None,  # distilled from the committed async-grid report
        "raw": "sweeps/async_grid.csv",
        "title": "Async consensus — time to objective target",
        "caption": (
            "Simulated time for each ADMM runtime to reach the shared "
            "objective target across interconnects and straggler "
            "injection (from the committed sweeps/async_grid.csv). "
            "Synchronous Newton-ADMM wins on a clean ib100 cluster; "
            "stale-consensus async-admm wins under wan latency plus a "
            "4× straggler."),
        "distill": distill_async,
        "chart": {"type": "bar", "x": ["network", "straggler"],
                  "series": ["solver"], "y": "total_sim_seconds",
                  "ylabel": "time to target (sim s)"},
    },
    {
        "key": "rank_wait_breakdown",
        "spec": None,  # distilled from the committed async-grid report
        "raw": "sweeps/async_grid.csv",
        "title": "Rank wait-time breakdown — async runtimes on wan",
        "caption": (
            "Cumulative per-rank wait time from the telemetry metrics "
            "(rank_wait_seconds in the committed sweeps/async_grid.csv), "
            "async runtimes on wan. With rank 1 injected as a 4× "
            "straggler, the straggler itself waits the *least*: it is "
            "always the last to arrive, so its fast peers absorb the "
            "idle time — bounded by the staleness window rather than a "
            "full barrier. The staleness_hist column records how stale "
            "the consensus inputs actually were."),
        "distill": distill_wait,
        "chart": {"type": "bar", "x": ["solver", "straggler"],
                  "series": ["rank"], "y": "wait_seconds",
                  "ylabel": "cumulative wait (sim s)"},
    },
    {
        "key": "fault_tolerance",
        "spec": None,  # distilled from the committed fault-grid report
        "raw": "sweeps/fault_grid.csv",
        "title": "Fault tolerance — time to target under link faults",
        "caption": (
            "Simulated time for the async runtimes to reach the shared "
            "objective target while the reliable channel injects frame "
            "loss, duplication, and reordering (from the committed "
            "sweeps/fault_grid.csv). Every faulty scenario still reaches "
            "the target with retransmits > 0 — recovery, not luck — and "
            "the extra time over the fault-free bar is the latency cost "
            "of ack/timeout retransmission, largest on the "
            "high-latency wan."),
        "distill": distill_fault,
        "chart": {"type": "bar", "x": ["network", "fault"],
                  "series": ["solver"], "y": "total_sim_seconds",
                  "ylabel": "time to target (sim s)"},
    },
]


# --------------------------------------------------------------------------
# Matplotlib-free renderers
# --------------------------------------------------------------------------


def _svg_header(width, height, title):
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="monospace" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2:.1f}" y="20" text-anchor="middle" '
        f'font-size="14">{title}</text>',
    ]


def _y_axis(parts, lo, hi, ticks, plot, ylabel, fmt=fmt_g):
    left, top, right, bottom = plot
    for value, y in ticks:
        parts.append(f'<line x1="{left}" y1="{y:.1f}" x2="{right}" '
                     f'y2="{y:.1f}" stroke="#dddddd"/>')
        parts.append(f'<text x="{left - 6}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{fmt(value, 3)}</text>')
    parts.append(f'<text x="14" y="{(top + bottom) / 2:.1f}" '
                 f'text-anchor="middle" transform="rotate(-90 14 '
                 f'{(top + bottom) / 2:.1f})">{ylabel}</text>')
    parts.append(f'<line x1="{left}" y1="{top}" x2="{left}" y2="{bottom}" '
                 'stroke="black"/>')
    parts.append(f'<line x1="{left}" y1="{bottom}" x2="{right}" '
                 f'y2="{bottom}" stroke="black"/>')


def _legend(parts, labels, x, top):
    for i, label in enumerate(labels):
        y = top + 18 * i
        parts.append(f'<rect x="{x}" y="{y}" width="12" height="12" '
                     f'fill="{PALETTE[i % len(PALETTE)]}"/>')
        parts.append(f'<text x="{x + 18}" y="{y + 10}">{label}</text>')


def svg_line_chart(series, title, xlabel, ylabel, logy=False):
    """series: ordered {label: [(x, y), ...]} with numeric x, y > 0."""
    import math
    width, height = 880, 420
    left, top, right, bottom = 70, 40, 600, height - 50
    xs = sorted({x for pts in series.values() for x, _ in pts})
    ys = [y for pts in series.values() for _, y in pts]
    if logy:
        lo = math.floor(math.log10(min(ys)))
        hi = math.ceil(math.log10(max(ys)))
        if lo == hi:
            hi += 1
        to_frac = lambda v: (math.log10(v) - lo) / (hi - lo)
        tick_values = [10.0 ** p for p in range(lo, hi + 1)]
    else:
        lo, hi = 0.0, max(ys) * 1.05
        to_frac = lambda v: (v - lo) / (hi - lo)
        tick_values = [lo + (hi - lo) * i / 5 for i in range(6)]
    y_px = lambda v: bottom - to_frac(v) * (bottom - top)
    x_px = lambda v: left + (right - left) * (
        0.5 if len(xs) == 1 else (xs.index(v) / (len(xs) - 1)))

    parts = _svg_header(width, height, title)
    _y_axis(parts, lo, hi, [(v, y_px(v)) for v in tick_values],
            (left, top, right, bottom), ylabel)
    for x in xs:
        parts.append(f'<text x="{x_px(x):.1f}" y="{bottom + 18}" '
                     f'text-anchor="middle">{fmt_g(x)}</text>')
    parts.append(f'<text x="{(left + right) / 2:.1f}" y="{height - 12}" '
                 f'text-anchor="middle">{xlabel}</text>')
    for i, (label, pts) in enumerate(series.items()):
        color = PALETTE[i % len(PALETTE)]
        coords = " ".join(f"{x_px(x):.1f},{y_px(y):.1f}"
                          for x, y in sorted(pts))
        parts.append(f'<polyline points="{coords}" fill="none" '
                     f'stroke="{color}" stroke-width="2"/>')
        for x, y in pts:
            parts.append(f'<circle cx="{x_px(x):.1f}" cy="{y_px(y):.1f}" '
                         f'r="3" fill="{color}"/>')
    _legend(parts, list(series), right + 20, top)
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def svg_bar_chart(categories, series, title, ylabel):
    """categories: [label, ...]; series: ordered {label: [value per cat]}."""
    width, height = 880, 420
    left, top, right, bottom = 70, 40, 600, height - 50
    ys = [v for vals in series.values() for v in vals]
    hi = max(ys) * 1.05
    y_px = lambda v: bottom - (v / hi) * (bottom - top)
    ncat, nser = len(categories), len(series)
    slot = (right - left) / ncat
    bar = slot / (nser + 1)

    parts = _svg_header(width, height, title)
    _y_axis(parts, 0.0, hi,
            [(hi * i / 5, y_px(hi * i / 5)) for i in range(6)],
            (left, top, right, bottom), ylabel)
    for c, cat in enumerate(categories):
        parts.append(f'<text x="{left + slot * (c + 0.5):.1f}" '
                     f'y="{bottom + 18}" text-anchor="middle">{cat}</text>')
        for s, vals in enumerate(series.values()):
            x = left + slot * c + bar * (s + 0.5)
            y = y_px(vals[c])
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar:.1f}" '
                f'height="{bottom - y:.1f}" '
                f'fill="{PALETTE[s % len(PALETTE)]}"/>')
    _legend(parts, list(series), right + 20, top)
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def render_svg(fig, rows):
    chart = fig["chart"]
    y = chart["y"]
    if chart["type"] == "line":
        series = {}
        for r in rows:
            label = " ".join(r[c] for c in chart["series"]) or y
            series.setdefault(label, []).append(
                (float(r[chart["x"]]), float(r[y])))
        return svg_line_chart(series, fig["title"], chart["xlabel"],
                              chart["ylabel"], logy=chart.get("logy", False))
    categories, series = [], {}
    for r in rows:
        cat = " ".join(r[c] for c in chart["x"])
        if cat not in categories:
            categories.append(cat)
        label = " ".join(r[c] for c in chart["series"]) or y
        series.setdefault(label, {})[cat] = float(r[y])
    table = {label: [vals[c] for c in categories]
             for label, vals in series.items()}
    return svg_bar_chart(categories, table, fig["title"], chart["ylabel"])


def render_ascii(fig, rows, width=40):
    chart = fig["chart"]
    y = chart["y"]
    labelled = []
    for r in rows:
        cols = (chart["series"] if chart["type"] == "line"
                else chart["x"] + chart["series"])
        label_bits = [r[c] for c in cols]
        if chart["type"] == "line":
            label_bits.append(f"{chart['x']}={r[chart['x']]}")
        labelled.append(("  ".join(label_bits), float(r[y])))
    peak = max(v for _, v in labelled)
    pad = max(len(l) for l, _ in labelled)
    lines = [f"{label:<{pad}} | "
             f"{'#' * max(1, round(v / peak * width)):<{width}} {fmt_g(v)}"
             for label, v in labelled]
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Pipeline
# --------------------------------------------------------------------------


def run_sweep(fig, args, raw_csv):
    cmd = [args.binary, "sweep", f"--spec={os.path.join(REPO, fig['spec'])}",
           f"--jobs={args.jobs}", f"--out={raw_csv}", "--resume", "--quiet"]
    if args.scale != 1.0:
        cmd.append(f"--scale={fmt_g(args.scale)}")
    print(f"reproduce: {' '.join(cmd)}", flush=True)
    subprocess.run(cmd, check=True)


def journal_meta(raw_csv):
    journal = raw_csv + ".journal.jsonl"
    with open(journal) as f:
        head = json.loads(f.readline())
    return {"fingerprint": head["fingerprint"],
            "scenarios": head["scenarios"]}


def spec_seed(spec_path):
    with open(spec_path) as f:
        for line in f:
            line = line.split("#", 1)[0].strip()
            if line.startswith("seed"):
                return int(line.split("=", 1)[1])
    return 42  # ExperimentConfig default


def write_csv_text(header, rows):
    return "\n".join([",".join(header)] + [",".join(r) for r in rows]) + "\n"


def md_table(header, rows):
    out = ["| " + " | ".join(header) + " |",
           "|" + "|".join("---" for _ in header) + "|"]
    out += ["| " + " | ".join(r) + " |" for r in rows]
    return "\n".join(out)


def claim_describe(claim):
    kind, metric = claim["kind"], claim["metric"]
    group = ", ".join(claim.get("group_by", ())) or "all rows"
    if kind == "ordering":
        return (f"{metric}({_sel(claim['lhs'])}) {claim['relation']} "
                f"{metric}({_sel(claim['rhs'])}) per ({group})")
    if kind == "ratio":
        return (f"{metric}({_sel(claim['num'])}) / "
                f"{metric}({_sel(claim['den'])}) {_bounds(claim)} "
                f"per ({group})")
    return f"{metric} {_bounds(claim)} per ({group})"


def _sel(selector):
    return ", ".join(f"{k}={v}" for k, v in selector.items()) or "*"


def _bounds(claim):
    lo, hi = claim.get("min"), claim.get("max")
    if lo is not None and hi is not None:
        return f"in [{lo}, {hi}]"
    return f">= {lo}" if lo is not None else f"<= {hi}"


def build_report(figures, metadata, claims, results, artifacts):
    """Assemble REPRODUCTION.md from distilled figures + claim results."""
    md = []
    md.append("# Reproduction report")
    md.append("")
    md.append("> Generated by `tools/reproduce.py` — do not edit by hand. "
              "Regenerate with `python3 tools/reproduce.py` (full run, "
              "needs `build/nadmm`) or validate the committed artifacts "
              "with `python3 tools/reproduce.py --smoke`.")
    md.append("")
    md.append("Simulated reproduction of the paper's figures: every metric "
              "is deterministic simulated time (device roofline + α–β "
              "network model), not wall time, so the numbers are "
              "machine-independent and byte-stable across reruns. Dataset "
              "stand-ins are generated synthetically at the committed "
              "sizes; `--scale` grows them toward paper scale.")
    md.append("")

    md.append("## Provenance")
    md.append("")
    rows = []
    for fig in figures:
        meta = metadata[fig["key"]]
        rows.append([fig["key"], meta["source"], str(meta["seed"]),
                     str(meta["scenarios"]), meta["fingerprint"]])
    md.append(md_table(
        ["figure", "source", "seed", "scenarios", "journal fingerprint"],
        rows))
    md.append("")
    md.append(f"Scale: **{fmt_g(metadata['scale'])}** "
              "(sample-count multiplier over the committed spec sizes; "
              "each scale keeps its own resume journal).")
    md.append("")

    md.append("## Claim check")
    md.append("")
    claim_rows = []
    for claim, result in zip(claims, results):
        n = len(result["groups"])
        status = "PASS" if result["passed"] else "**FAIL**"
        claim_rows.append([claim["id"], claim["figure"], claim["title"],
                           claim_describe(claim),
                           f"{status} ({n} group{'s' if n != 1 else ''})"])
    md.append(md_table(
        ["id", "figure", "claim", "assertion", "result"], claim_rows))
    md.append("")
    passed = sum(1 for r in results if r["passed"])
    md.append(f"**{passed}/{len(results)} claims pass.** A FAIL here is a "
              "regression against the paper's qualitative results; the "
              "thresholds are calibrated with margin at scale 1 (see "
              "docs/claims.toml).")
    md.append("")

    md.append("## Figures")
    for fig in figures:
        header, rows = artifacts[fig["key"]]
        md.append("")
        md.append(f"### {fig['title']}")
        md.append("")
        md.append(f"![{fig['key']}](figures/{fig['key']}.svg)")
        md.append("")
        md.append(fig["caption"])
        md.append("")
        md.append("```text")
        md.append(render_ascii(fig, [dict(zip(header, r)) for r in rows]))
        md.append("```")
        md.append("")
        md.append(f"Data: [figures/{fig['key']}.csv]"
                  f"(figures/{fig['key']}.csv)")
        md.append("")
        md.append("<details><summary>data table</summary>")
        md.append("")
        md.append(md_table(header, rows))
        md.append("")
        md.append("</details>")

    md.append("")
    md.append("## Deviations from the paper")
    md.append("")
    md.append(
        "- **Synthetic stand-ins.** HIGGS / MNIST / CIFAR-10 / E18 are "
        "generated surrogates matching the paper's shapes "
        "(dimensionality, conditioning), not the real datasets; absolute "
        "objectives differ, orderings are what the claims assert.")
    md.append(
        "- **Simulated time.** All timings are simulated seconds from the "
        "device roofline + α–β network model, not wall-clock GPU time.")
    md.append(
        "- **Figure 3 proxy.** The paper reports t_GIANT/t_NADMM to reach "
        "a relative-error threshold from solver traces; the sweep report "
        "carries final metrics only, so Figure 3 plots the per-epoch cost "
        "ratio under a fixed 8-epoch budget instead.")
    md.append(
        "- **Figure 2 network.** Strong scaling runs on ib100: at the "
        "committed sample counts the eth10/wan problems are latency-bound "
        "and epoch time *grows* with worker count (see "
        "bench/bench_util.hpp), which would invert the paper's figure. "
        "Raising --scale moves the crossover back toward slower networks.")
    md.append(
        "- **Figure 1 budget.** InexactDANE/AIDE epochs are ~16× costlier "
        "in *simulated* time and dominate *host* time too, so Figure 1 "
        "trains a reduced split for 5 epochs; the epoch-cost ratios the "
        "claims assert are budget-independent.")
    md.append(
        "- **Async grid.** The async time-to-target and rank-wait "
        "figures read the committed sweeps/async_grid.csv (its "
        "objective target is calibrated to the committed problem size) "
        "and do not scale with --scale.")
    md.append("")
    return "\n".join(md)


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--scale", type=float, default=1.0,
                    help="sample-count multiplier passed to nadmm sweep")
    ap.add_argument("--jobs", type=int, default=8)
    ap.add_argument("--binary", default=os.path.join(REPO, "build", "nadmm"))
    ap.add_argument("--out-dir", default=os.path.join(REPO, "docs"),
                    help="report root (default: docs/; point elsewhere for "
                         "scale != 1 so committed scale-1 artifacts stay "
                         "untouched)")
    ap.add_argument("--figures", default="",
                    help="comma-separated figure keys to (re)run; empty = all")
    ap.add_argument("--skip-sweeps", action="store_true",
                    help="distill/render/check from existing raw CSVs")
    ap.add_argument("--smoke", action="store_true",
                    help="no binary: regenerate figures/report from "
                         "committed artifacts, byte-compare, check claims")
    args = ap.parse_args()

    docs = args.out_dir
    fig_dir = os.path.join(docs, "figures")
    raw_dir = os.path.join(fig_dir, "raw")
    os.makedirs(raw_dir, exist_ok=True)

    wanted = [f.strip() for f in args.figures.split(",") if f.strip()]
    figures = [f for f in FIGURES if not wanted or f["key"] in wanted]
    if wanted and len(figures) != len(wanted):
        known = {f["key"] for f in FIGURES}
        sys.exit(f"reproduce: unknown figure(s): "
                 f"{sorted(set(wanted) - known)}")

    drift = []

    def emit(path, text):
        """Write text, or byte-compare against the committed file in
        smoke mode (recording drift instead of writing)."""
        if args.smoke:
            try:
                with open(path, newline="") as f:
                    committed = f.read()
            except FileNotFoundError:
                drift.append(f"{os.path.relpath(path, REPO)}: missing")
                return
            if committed != text:
                drift.append(f"{os.path.relpath(path, REPO)}: differs from "
                             "regenerated content")
            return
        with open(path, "w", newline="") as f:
            f.write(text)

    # 1. run sweeps + distill + render
    if args.smoke:
        metadata = json.load(open(os.path.join(fig_dir, "metadata.json")))
    else:
        metadata = {"scale": args.scale}
    artifacts = {}
    for fig in figures:
        if fig["spec"] is None:
            raw_csv = os.path.join(REPO, fig["raw"])
        else:
            raw_csv = os.path.join(
                raw_dir, f"{fig['key']}@s{fmt_g(args.scale)}.csv")
            if not args.smoke and not args.skip_sweeps:
                run_sweep(fig, args, raw_csv)
        if args.smoke and fig["spec"] is not None:
            # Smoke re-derives only figures whose raw input is committed;
            # the sweep-backed ones are validated claim-side below.
            artifacts[fig["key"]] = load_committed(fig_dir, fig["key"])
            continue
        header, rows = fig["distill"](load_csv(raw_csv))
        artifacts[fig["key"]] = (header, rows)
        emit(os.path.join(fig_dir, f"{fig['key']}.csv"),
             write_csv_text(header, rows))
        if not args.smoke:
            meta = ({"source": fig["spec"], **journal_meta(raw_csv),
                     "seed": spec_seed(os.path.join(REPO, fig["spec"]))}
                    if fig["spec"] is not None else
                    {"source": fig["raw"] + " (committed report)",
                     "fingerprint": "-", "scenarios": len(rows),
                     "seed": 42})
            metadata[fig["key"]] = meta

    for fig in figures:
        header, rows = artifacts[fig["key"]]
        emit(os.path.join(fig_dir, f"{fig['key']}.svg"),
             render_svg(fig, [dict(zip(header, r)) for r in rows]))

    if not args.smoke and not wanted:
        emit(os.path.join(fig_dir, "metadata.json"),
             json.dumps(metadata, indent=2, sort_keys=True) + "\n")

    # 2. claims (always the committed file — claims are an input, the
    # out-dir holds outputs; subset runs check only the figures in play
    # and the full report below is skipped then, so the table never lies)
    claims = load_claims(os.path.join(REPO, "docs", "claims.toml"))
    if wanted:
        claims = [c for c in claims if c["figure"] in artifacts]
    results = []
    for claim in claims:
        header, rows = artifacts.get(claim["figure"]) or load_committed(
            fig_dir, claim["figure"])
        results.append(evaluate_claim(
            claim, [dict(zip(header, r)) for r in rows]))

    failures = [r for r in results if not r["passed"]]
    for result in results:
        mark = "PASS" if result["passed"] else "FAIL"
        print(f"reproduce: [{mark}] {result['id']} "
              f"({len(result['groups'])} groups)")
        if not result["passed"]:
            for g in result["groups"]:
                if not g["passed"]:
                    print(f"reproduce:        failed group: {g}")

    # 3. report (only when every figure is in play, else the table lies)
    if not wanted:
        emit(os.path.join(docs, "REPRODUCTION.md"),
             build_report(FIGURES, metadata, claims, results, artifacts))

    if drift:
        print("reproduce: committed artifacts drifted:", file=sys.stderr)
        for d in drift:
            print(f"reproduce:   {d}", file=sys.stderr)
    if failures:
        print(f"reproduce: {len(failures)} claim(s) FAILED", file=sys.stderr)
    if drift or failures:
        return 1
    print(f"reproduce: all {len(results)} claims pass"
          + (" and committed artifacts are byte-identical" if args.smoke
             else ""))
    return 0


def load_committed(fig_dir, key):
    rows = load_csv(os.path.join(fig_dir, f"{key}.csv"))
    header = list(rows[0].keys())
    return header, [[r[c] for c in header] for r in rows]


if __name__ == "__main__":
    try:
        sys.exit(main())
    except ClaimError as exc:
        print(f"reproduce: harness error: {exc}", file=sys.stderr)
        sys.exit(1)
