// Reusable per-rank ADMM state.
//
// The synchronous solver (core/newton_admm.cpp) and the asynchronous
// runtimes (solvers/async_admm.cpp) execute the same local algebra —
// the eq. 6a Newton-CG x-update, the SPS intermediate dual, the packed
// [ρ·x − y ; ρ] message, and the eq. 6c dual update with penalty
// adaptation. AdmmWorker owns that state so the two runtimes differ only
// in *when* consensus arrives, not in what each rank computes; the
// synchronous solver's numerics are bit-identical to the pre-refactor
// inline code (same operations in the same order, same flop credits).
//
// ConsensusState is the coordinator-side half: the eq. 7 z-update
// maintained incrementally, so folding one worker's new contribution in
// costs O(dim) instead of the O(workers · dim) recompute-from-scratch
// (bench/bench_async.cpp gates this ratio in CI).
#pragma once

#include <span>
#include <vector>

#include "core/newton_admm.hpp"
#include "core/penalty.hpp"
#include "data/dataset.hpp"
#include "model/prox.hpp"
#include "model/softmax.hpp"
#include "solvers/newton.hpp"
#include "support/binio.hpp"

namespace nadmm::core {

class AdmmWorker {
 public:
  /// Takes ownership of this rank's shard. `dim` is the global parameter
  /// dimension p·(C−1).
  AdmmWorker(data::Dataset shard, const NewtonAdmmOptions& options,
             std::size_t dim);

  // The prox objective holds a reference into local_, which points into
  // shard_ — the worker must stay put (heap-allocate to store in
  // containers).
  AdmmWorker(const AdmmWorker&) = delete;
  AdmmWorker& operator=(const AdmmWorker&) = delete;

  /// One local x-update (eq. 6a) against the stored consensus z: warm-
  /// started Newton-CG on the prox-augmented objective, the SPS
  /// intermediate dual ĥ, and the packed message [ρ·x − y ; ρ] (dim+1
  /// values) ready to gather or send. The ρ used here is remembered as
  /// round_rho() until the matching apply_consensus.
  std::span<const double> local_step();

  /// Snapshot z into z_prev before new consensus overwrites it (the
  /// synchronous broadcast writes straight into z()).
  void snapshot_z_prev();

  /// Dual update (eq. 6c) with this round's ρ, then penalty adaptation
  /// (paper step 8) from the fresh iterates. `k` is the 0-based round.
  void apply_consensus(int k);

  /// Mutable consensus buffer: the coordinator's merge and the broadcast
  /// land here.
  [[nodiscard]] std::span<double> z() { return z_; }
  [[nodiscard]] std::span<const double> z_prev() const { return z_prev_; }
  [[nodiscard]] std::span<const double> x() const { return x_; }
  /// Current controller penalty (for the next round / diagnostics).
  [[nodiscard]] double rho() const { return penalty_.rho(); }
  /// The penalty used by the last local_step (diagnostic residuals).
  [[nodiscard]] double round_rho() const { return round_rho_; }
  [[nodiscard]] model::SoftmaxObjective& objective() { return local_; }
  [[nodiscard]] const data::Dataset& shard() const { return shard_; }

  /// Versioned binary snapshot of the iterate state (x, y, ĥ, z, z_prev,
  /// round ρ, penalty memory). The shard and options are not serialized:
  /// a restored worker must be constructed over the same shard and
  /// configuration, after which replaying the post-checkpoint consensus
  /// stream reproduces the live worker bit-for-bit (center_/packed_ are
  /// per-step scratch rebuilt by the next local_step).
  void save_checkpoint(binio::ByteWriter& w) const;
  void restore_checkpoint(binio::ByteReader& r);

 private:
  std::size_t dim_;
  data::Dataset shard_;
  model::SoftmaxObjective local_;
  std::vector<double> x_, y_, y_hat_, z_, z_prev_, center_, packed_;
  model::ProxAugmentedObjective prox_;
  PenaltyController penalty_;
  solvers::NewtonOptions newton_opts_;
  double round_rho_ = 0.0;
};

/// Incremental eq. 7 coordinator state:
///   z = Σᵢ(ρᵢ·xᵢ − yᵢ) / (λ + Σᵢρᵢ).
/// Contributions arrive per worker as the packed [c ; ρ] message;
/// `apply` replaces that worker's previous contribution by delta-updating
/// the running sums.
class ConsensusState {
 public:
  ConsensusState(int workers, std::size_t dim, double lambda);

  /// Fold worker `w`'s packed contribution [c₀..c_{dim−1} ; ρ] in,
  /// replacing whatever `w` contributed before. O(dim).
  void apply(int w, std::span<const double> packed);

  /// Write the current consensus into `z`. O(dim).
  void compute_z(std::span<double> z) const;

  [[nodiscard]] double rho(int w) const {
    return rho_[static_cast<std::size_t>(w)];
  }
  [[nodiscard]] double rho_sum() const { return rho_sum_; }
  [[nodiscard]] std::size_t dim() const { return sum_.size(); }

  /// Versioned binary snapshot of the merge state (running sums + the
  /// per-worker contributions they were built from). λ comes from the
  /// constructor; restore validates worker count and dimension.
  void save(binio::ByteWriter& w) const;
  void restore(binio::ByteReader& r);

 private:
  double lambda_;
  double rho_sum_ = 0.0;
  std::vector<double> sum_;                   ///< Σᵢ cᵢ
  std::vector<std::vector<double>> contrib_;  ///< last cᵢ per worker
  std::vector<double> rho_;                   ///< last ρᵢ per worker
};

}  // namespace nadmm::core
