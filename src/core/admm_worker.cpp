#include "core/admm_worker.hpp"

#include <utility>

#include "la/flops.hpp"
#include "la/vector_ops.hpp"
#include "support/check.hpp"

namespace nadmm::core {

AdmmWorker::AdmmWorker(data::Dataset shard, const NewtonAdmmOptions& options,
                       std::size_t dim)
    : dim_(dim),
      shard_(std::move(shard)),
      local_(shard_, /*l2_lambda=*/0.0),
      x_(dim, 0.0),
      y_(dim, 0.0),
      y_hat_(dim, 0.0),
      z_(dim, 0.0),
      z_prev_(dim, 0.0),
      center_(dim, 0.0),
      packed_(dim + 1, 0.0),
      prox_(local_, options.penalty.rho0, std::vector<double>(dim, 0.0)),
      penalty_(options.penalty, dim) {
  NADMM_CHECK(dim_ == local_.dim(), "admm worker: dimension mismatch");
  newton_opts_.max_iterations = options.local_newton_steps;
  newton_opts_.gradient_tol = 0.0;  // always take the configured steps
  newton_opts_.cg = options.cg;
  newton_opts_.line_search = options.line_search;
}

std::span<const double> AdmmWorker::local_step() {
  const double rho = penalty_.rho();
  round_rho_ = rho;
  // --- local x-update (eq. 6a) ---
  for (std::size_t j = 0; j < dim_; ++j) center_[j] = z_[j] + y_[j] / rho;
  nadmm::flops::add(2 * dim_);
  prox_.set_center(center_);
  prox_.set_rho(rho);
  auto local_result = solvers::newton_cg(prox_, x_, newton_opts_);
  x_ = std::move(local_result.x);

  // Intermediate dual ĥ_i = y_i + ρ_i(z^k − x_i^{k+1}) for SPS.
  for (std::size_t j = 0; j < dim_; ++j) {
    y_hat_[j] = y_[j] + rho * (z_[j] - x_[j]);
  }
  nadmm::flops::add(3 * dim_);

  // Packed consensus contribution [ρ·x − y ; ρ].
  for (std::size_t j = 0; j < dim_; ++j) packed_[j] = rho * x_[j] - y_[j];
  packed_[dim_] = rho;
  nadmm::flops::add(2 * dim_);
  return packed_;
}

void AdmmWorker::snapshot_z_prev() { la::copy(z_, z_prev_); }

void AdmmWorker::apply_consensus(int k) {
  const double rho = round_rho_;
  // --- local dual update (eq. 6c) and penalty adaptation (step 8) ---
  for (std::size_t j = 0; j < dim_; ++j) y_[j] += rho * (z_[j] - x_[j]);
  nadmm::flops::add(3 * dim_);
  penalty_.observe(k, x_, z_, z_prev_, y_, y_hat_);
}

ConsensusState::ConsensusState(int workers, std::size_t dim, double lambda)
    : lambda_(lambda),
      sum_(dim, 0.0),
      contrib_(static_cast<std::size_t>(workers),
               std::vector<double>(dim, 0.0)),
      rho_(static_cast<std::size_t>(workers), 0.0) {
  NADMM_CHECK(workers >= 1, "consensus state needs at least one worker");
  NADMM_CHECK(lambda >= 0.0, "consensus state: lambda must be >= 0");
}

void ConsensusState::apply(int w, std::span<const double> packed) {
  NADMM_CHECK(w >= 0 && static_cast<std::size_t>(w) < contrib_.size(),
              "consensus apply: worker index out of range");
  NADMM_CHECK(packed.size() == sum_.size() + 1,
              "consensus apply: expected [c ; rho] of dim+1 values");
  auto& prev = contrib_[static_cast<std::size_t>(w)];
  for (std::size_t j = 0; j < sum_.size(); ++j) {
    sum_[j] += packed[j] - prev[j];
    prev[j] = packed[j];
  }
  nadmm::flops::add(2 * sum_.size());
  rho_sum_ += packed[sum_.size()] - rho_[static_cast<std::size_t>(w)];
  rho_[static_cast<std::size_t>(w)] = packed[sum_.size()];
}

void ConsensusState::compute_z(std::span<double> z) const {
  NADMM_CHECK(z.size() == sum_.size(), "consensus z: dimension mismatch");
  const double denom = lambda_ + rho_sum_;
  const double inv = 1.0 / denom;
  for (std::size_t j = 0; j < sum_.size(); ++j) z[j] = sum_[j] * inv;
  nadmm::flops::add(sum_.size());
}

}  // namespace nadmm::core
