#include "core/admm_worker.hpp"

#include <utility>

#include "la/flops.hpp"
#include "la/vector_ops.hpp"
#include "support/check.hpp"
#include "support/telemetry.hpp"

namespace nadmm::core {

AdmmWorker::AdmmWorker(data::Dataset shard, const NewtonAdmmOptions& options,
                       std::size_t dim)
    : dim_(dim),
      shard_(std::move(shard)),
      local_(shard_, /*l2_lambda=*/0.0),
      x_(dim, 0.0),
      y_(dim, 0.0),
      y_hat_(dim, 0.0),
      z_(dim, 0.0),
      z_prev_(dim, 0.0),
      center_(dim, 0.0),
      packed_(dim + 1, 0.0),
      prox_(local_, options.penalty.rho0, std::vector<double>(dim, 0.0)),
      penalty_(options.penalty, dim) {
  NADMM_CHECK(dim_ == local_.dim(), "admm worker: dimension mismatch");
  newton_opts_.max_iterations = options.local_newton_steps;
  newton_opts_.gradient_tol = 0.0;  // always take the configured steps
  newton_opts_.cg = options.cg;
  newton_opts_.line_search = options.line_search;
}

std::span<const double> AdmmWorker::local_step() {
  TELEM_SPAN("core", "local_step");
  const double rho = penalty_.rho();
  round_rho_ = rho;
  // --- local x-update (eq. 6a) ---
  for (std::size_t j = 0; j < dim_; ++j) center_[j] = z_[j] + y_[j] / rho;
  nadmm::flops::add(2 * dim_);
  prox_.set_center(center_);
  prox_.set_rho(rho);
  auto local_result = solvers::newton_cg(prox_, x_, newton_opts_);
  x_ = std::move(local_result.x);

  // Intermediate dual ĥ_i = y_i + ρ_i(z^k − x_i^{k+1}) for SPS.
  for (std::size_t j = 0; j < dim_; ++j) {
    y_hat_[j] = y_[j] + rho * (z_[j] - x_[j]);
  }
  nadmm::flops::add(3 * dim_);

  // Packed consensus contribution [ρ·x − y ; ρ].
  for (std::size_t j = 0; j < dim_; ++j) packed_[j] = rho * x_[j] - y_[j];
  packed_[dim_] = rho;
  nadmm::flops::add(2 * dim_);
  return packed_;
}

void AdmmWorker::snapshot_z_prev() { la::copy(z_, z_prev_); }

namespace {
constexpr std::uint16_t kWorkerSnapshotVersion = 1;
constexpr std::uint16_t kConsensusSnapshotVersion = 1;
}  // namespace

void AdmmWorker::save_checkpoint(binio::ByteWriter& w) const {
  w.put_u16(kWorkerSnapshotVersion);
  w.put_u64(dim_);
  w.put_f64_span(x_);
  w.put_f64_span(y_);
  w.put_f64_span(y_hat_);
  w.put_f64_span(z_);
  w.put_f64_span(z_prev_);
  w.put_f64(round_rho_);
  penalty_.save(w);
}

void AdmmWorker::restore_checkpoint(binio::ByteReader& r) {
  const std::uint16_t version = r.get_u16();
  NADMM_CHECK(version == kWorkerSnapshotVersion,
              "worker snapshot: unsupported version " +
                  std::to_string(version));
  NADMM_CHECK(r.get_u64() == dim_, "worker snapshot: dimension mismatch");
  x_ = r.get_f64_vector();
  y_ = r.get_f64_vector();
  y_hat_ = r.get_f64_vector();
  z_ = r.get_f64_vector();
  z_prev_ = r.get_f64_vector();
  NADMM_CHECK(x_.size() == dim_ && y_.size() == dim_ && y_hat_.size() == dim_ &&
                  z_.size() == dim_ && z_prev_.size() == dim_,
              "worker snapshot: iterate dimension mismatch");
  round_rho_ = r.get_f64();
  penalty_.restore(r);
}

void AdmmWorker::apply_consensus(int k) {
  const double rho = round_rho_;
  // --- local dual update (eq. 6c) and penalty adaptation (step 8) ---
  for (std::size_t j = 0; j < dim_; ++j) y_[j] += rho * (z_[j] - x_[j]);
  nadmm::flops::add(3 * dim_);
  penalty_.observe(k, x_, z_, z_prev_, y_, y_hat_);
}

ConsensusState::ConsensusState(int workers, std::size_t dim, double lambda)
    : lambda_(lambda),
      sum_(dim, 0.0),
      contrib_(static_cast<std::size_t>(workers),
               std::vector<double>(dim, 0.0)),
      rho_(static_cast<std::size_t>(workers), 0.0) {
  NADMM_CHECK(workers >= 1, "consensus state needs at least one worker");
  NADMM_CHECK(lambda >= 0.0, "consensus state: lambda must be >= 0");
}

void ConsensusState::apply(int w, std::span<const double> packed) {
  TELEM_SPAN("core", "consensus_apply");
  NADMM_CHECK(w >= 0 && static_cast<std::size_t>(w) < contrib_.size(),
              "consensus apply: worker index out of range");
  NADMM_CHECK(packed.size() == sum_.size() + 1,
              "consensus apply: expected [c ; rho] of dim+1 values");
  auto& prev = contrib_[static_cast<std::size_t>(w)];
  for (std::size_t j = 0; j < sum_.size(); ++j) {
    sum_[j] += packed[j] - prev[j];
    prev[j] = packed[j];
  }
  nadmm::flops::add(2 * sum_.size());
  rho_sum_ += packed[sum_.size()] - rho_[static_cast<std::size_t>(w)];
  rho_[static_cast<std::size_t>(w)] = packed[sum_.size()];
}

void ConsensusState::save(binio::ByteWriter& w) const {
  w.put_u16(kConsensusSnapshotVersion);
  w.put_u64(contrib_.size());
  w.put_u64(sum_.size());
  w.put_f64(rho_sum_);
  w.put_f64_span(sum_);
  for (const auto& c : contrib_) w.put_f64_span(c);
  w.put_f64_span(rho_);
}

void ConsensusState::restore(binio::ByteReader& r) {
  const std::uint16_t version = r.get_u16();
  NADMM_CHECK(version == kConsensusSnapshotVersion,
              "consensus snapshot: unsupported version " +
                  std::to_string(version));
  NADMM_CHECK(r.get_u64() == contrib_.size(),
              "consensus snapshot: worker count mismatch");
  NADMM_CHECK(r.get_u64() == sum_.size(),
              "consensus snapshot: dimension mismatch");
  const std::size_t dim = sum_.size();
  rho_sum_ = r.get_f64();
  sum_ = r.get_f64_vector();
  NADMM_CHECK(sum_.size() == dim, "consensus snapshot: sum dimension mismatch");
  for (auto& c : contrib_) {
    c = r.get_f64_vector();
    NADMM_CHECK(c.size() == sum_.size(),
                "consensus snapshot: contribution dimension mismatch");
  }
  rho_ = r.get_f64_vector();
  NADMM_CHECK(rho_.size() == contrib_.size(),
              "consensus snapshot: rho count mismatch");
}

void ConsensusState::compute_z(std::span<double> z) const {
  TELEM_SPAN("core", "consensus_merge");
  NADMM_CHECK(z.size() == sum_.size(), "consensus z: dimension mismatch");
  const double denom = lambda_ + rho_sum_;
  const double inv = 1.0 / denom;
  for (std::size_t j = 0; j < sum_.size(); ++j) z[j] = sum_[j] * inv;
  nadmm::flops::add(sum_.size());
}

}  // namespace nadmm::core
