// ADMM penalty-parameter policies (paper §2.2).
//
// * Fixed ρ — the classical baseline.
// * Residual Balancing (He et al.; Boyd §3.4.1) — the "most common"
//   adaptive rule the paper contrasts against.
// * Spectral Penalty Selection (Xu et al., Adaptive Consensus ADMM) — the
//   policy the paper adopts: per-node Barzilai–Borwein curvature
//   estimates of the local term (from Δĥ, Δx) and the consensus term
//   (from Δy, Δz), combined through a hybrid stepsize rule with
//   correlation safeguards.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/binio.hpp"

namespace nadmm::core {

enum class PenaltyRule { kFixed, kResidualBalancing, kSpectral };

PenaltyRule penalty_rule_from_string(const std::string& name);
std::string to_string(PenaltyRule rule);

struct PenaltyOptions {
  PenaltyRule rule = PenaltyRule::kSpectral;
  double rho0 = 1.0;          ///< initial penalty on every node
  // Residual balancing (μ, τ in Boyd's notation):
  double rb_threshold = 10.0;
  double rb_factor = 2.0;
  // Spectral penalty selection:
  int sps_period = 2;         ///< T_f: adapt every T_f iterations
  double sps_eps_cor = 0.2;   ///< correlation threshold ε_cor
  double sps_safeguard = 1e6; ///< C_cg: bounds relative change by 1 + C/k²
  double rho_min = 1e-8;
  double rho_max = 1e8;
};

/// Per-node penalty state machine. The solver feeds it the iterates after
/// every ADMM round; `rho()` is the penalty to use for the next round.
class PenaltyController {
 public:
  PenaltyController(const PenaltyOptions& options, std::size_t dim);

  [[nodiscard]] double rho() const { return rho_; }

  /// Called once per ADMM iteration after the z / y updates.
  ///   k        — iteration index (0-based)
  ///   x        — this node's x_i^{k+1}
  ///   z        — new consensus z^{k+1}
  ///   z_prev   — previous consensus z^k
  ///   y        — this node's new dual y_i^{k+1}
  ///   y_hat    — intermediate dual ĥ_i^{k+1} = y_i^k + ρ_i(z^k − x_i^{k+1})
  void observe(int k, std::span<const double> x, std::span<const double> z,
               std::span<const double> z_prev, std::span<const double> y,
               std::span<const double> y_hat);

  /// Versioned binary snapshot of the adaptive state (ρ and the spectral
  /// secant memory). Options are not serialized — a restored controller
  /// must be constructed from the same configuration.
  void save(binio::ByteWriter& w) const;
  void restore(binio::ByteReader& r);

 private:
  void observe_residual_balancing(std::span<const double> x,
                                  std::span<const double> z,
                                  std::span<const double> z_prev);
  void observe_spectral(int k, std::span<const double> x,
                        std::span<const double> z, std::span<const double> y,
                        std::span<const double> y_hat);

  /// Hybrid Barzilai–Borwein stepsize from the secant pair (Δdual, Δprimal).
  /// Returns {stepsize, correlation}; stepsize ≤ 0 means "unusable pair".
  static std::pair<double, double> spectral_stepsize(
      std::span<const double> d_dual, std::span<const double> d_primal);

  void clamp_and_safeguard(double proposed, int k);

  PenaltyOptions options_;
  double rho_;
  // Spectral memory from the last adaptation point k0.
  bool has_memory_ = false;
  std::vector<double> x0_, yhat0_, z0_, y0_;
};

}  // namespace nadmm::core
