// Newton-ADMM (paper Algorithm 2): distributed consensus ADMM where each
// node's subproblem (eq. 6a) is solved by inexact Newton-CG (Algorithm 1).
//
// Per outer iteration:
//   1. locally minimize f_i(x) + (ρ_i/2)‖x − (z + y_i/ρ_i)‖²  (Newton-CG,
//      warm-started from x_i^k);
//   2. one communication round: gather [ρ_i·x_i − y_i ; ρ_i] at the master,
//      form z^{k+1} = Σ(ρ_i x_i − y_i) / (λ + Σρ_i)  (eq. 7, the closed
//      form for ℓ2 regularization), broadcast z^{k+1};
//   3. locally update the dual y_i ← y_i + ρ_i(z^{k+1} − x_i)  (eq. 6c)
//      and adapt ρ_i with spectral penalty selection (paper step 8).
//
// This is the single gather+scatter round the paper credits for the
// method's low communication cost (Remark 1).
#pragma once

#include "comm/cluster.hpp"
#include "core/penalty.hpp"
#include "core/trace.hpp"
#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "solvers/cg.hpp"
#include "solvers/linesearch.hpp"

namespace nadmm::core {

struct NewtonAdmmOptions {
  int max_iterations = 100;           ///< ADMM outer iterations (epochs)
  int local_newton_steps = 1;         ///< Algorithm-1 iterations per epoch
  double lambda = 1e-5;               ///< ℓ2 regularization on z (paper λ)
  solvers::CgOptions cg;              ///< paper: 10 iters, tol 1e-4
  solvers::LineSearchOptions line_search;  ///< paper: i_max = 10
  PenaltyOptions penalty;
  double primal_tol = 0.0;            ///< 0 disables residual-based stopping
  double dual_tol = 0.0;
  /// Stop as soon as the (diagnostic) global objective F(z) falls to or
  /// below this value; ≤ 0 disables. Used by the time-to-θ benches.
  double objective_target = 0.0;
  bool record_trace = true;
  bool evaluate_accuracy = true;      ///< evaluate test accuracy per epoch
};

/// Run Newton-ADMM on `cluster` over pre-sharded data: rank r trains on
/// `data.ranks[r].train` and evaluates accuracy on `data.ranks[r].test`
/// (the harness plans the shards — zero-copy views for contiguous /
/// weighted plans, streamed per-rank shards for `libsvm:` sources).
/// Diagnostics run on a paused simulated clock, so trace timings reflect
/// only algorithm work.
RunResult newton_admm(comm::SimCluster& cluster,
                      const data::ShardedDataset& data,
                      const NewtonAdmmOptions& options);

/// Convenience overload: shard `train` / `test` as contiguous zero-copy
/// views across the cluster's ranks, then run.
[[deprecated(
    "shard explicitly: pass a data::ShardedDataset (see "
    "runner::shard_for_solver) — this overload re-shards per call")]]
RunResult newton_admm(comm::SimCluster& cluster, const data::Dataset& train,
                      const data::Dataset* test,
                      const NewtonAdmmOptions& options);

}  // namespace nadmm::core
