// High-precision single-node reference solve.
//
// The paper's Figure 3 defines the relative objective
// θ = (F(x_k) − F(x*)) / F(x*) with x* "obtained by running Newton's
// method on a single node to high precision". This helper is that run.
#pragma once

#include <vector>

#include "data/dataset.hpp"

namespace nadmm::core {

struct ReferenceResult {
  std::vector<double> x;
  double objective = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Minimize the full regularized softmax objective on one node with
/// Newton-CG at tight tolerances.
ReferenceResult solve_reference(const data::Dataset& train, double lambda,
                                double gradient_tol = 1e-9,
                                int max_iterations = 200);

}  // namespace nadmm::core
