#include "core/newton_admm.hpp"

#include <cmath>
#include <memory>

#include "core/admm_worker.hpp"
#include "data/partition.hpp"
#include "la/vector_ops.hpp"
#include "model/softmax.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace nadmm::core {

RunResult newton_admm(comm::SimCluster& cluster,
                      const data::ShardedDataset& data,
                      const NewtonAdmmOptions& options) {
  NADMM_CHECK(options.max_iterations >= 1, "newton_admm: need >= 1 iteration");
  NADMM_CHECK(options.local_newton_steps >= 1,
              "newton_admm: need >= 1 local Newton step");
  NADMM_CHECK(options.lambda >= 0.0, "newton_admm: lambda must be >= 0");
  NADMM_CHECK(data.parts() == cluster.size(),
              "newton_admm: shard plan does not match the cluster size");

  RunResult result;
  result.solver = "newton-admm";
  const int n_ranks = cluster.size();
  const std::size_t dim = data.dim();
  // Whether the accuracy allreduce runs is a global property (uniform
  // across ranks even when some rank's test shard is empty).
  const bool eval_accuracy =
      options.evaluate_accuracy && data.test_samples > 0;

  const auto reports = cluster.run([&](comm::RankCtx& ctx) {
    const int rank = ctx.rank();
    // --- setup (untimed: data distribution is not part of an epoch) ---
    ctx.clock().pause();
    const data::RankData& rd = data.ranks[static_cast<std::size_t>(rank)];
    AdmmWorker worker(rd.train, options, dim);
    const data::Dataset& test_shard = rd.test;
    model::SoftmaxObjective* test_eval = nullptr;
    std::unique_ptr<model::SoftmaxObjective> test_eval_owner;
    if (eval_accuracy && !test_shard.empty()) {
      test_eval_owner = std::make_unique<model::SoftmaxObjective>(test_shard, 0.0);
      test_eval = test_eval_owner.get();
    }
    ctx.clock().resume();

    std::vector<double> gathered;  // root only

    WallTimer wall;
    double prev_sim_time = 0.0;
    bool stop = false;

    for (int k = 0; k < options.max_iterations && !stop; ++k) {
      // --- local x-update (eq. 6a), ĥ, and the packed contribution ---
      const auto packed = worker.local_step();
      const double rho = worker.round_rho();

      // --- one communication round: gather, z-update (eq. 7), scatter ---
      ctx.gather(packed, gathered, /*root=*/0);
      worker.snapshot_z_prev();
      const auto z = worker.z();
      if (ctx.is_root()) {
        double rho_sum = 0.0;
        la::fill(z, 0.0);
        for (int r = 0; r < n_ranks; ++r) {
          const double* src = gathered.data() +
                              static_cast<std::size_t>(r) * (dim + 1);
          for (std::size_t j = 0; j < dim; ++j) z[j] += src[j];
          rho_sum += src[dim];
        }
        const double denom = options.lambda + rho_sum;
        la::scal(1.0 / denom, z);
        nadmm::flops::add(static_cast<std::uint64_t>(n_ranks) * dim + dim);
      }
      ctx.broadcast(z, /*root=*/0);

      // --- local dual update (eq. 6c) and penalty adaptation (step 8) ---
      worker.apply_consensus(k);

      // --- diagnostics on the paused clock ---
      ctx.clock().pause();
      const double iter_sim_time = ctx.allreduce_max(ctx.clock().total_seconds());
      double objective = ctx.allreduce_sum(worker.objective().value(z));
      if (options.lambda > 0.0) {
        objective += 0.5 * options.lambda * la::nrm2_sq(z);
      }
      const double primal_sq = ctx.allreduce_sum(
          [&] {
            const double d = la::dist2(worker.x(), z);
            return d * d;
          }());
      const double dz = la::dist2(z, worker.z_prev());
      const double dual_sq = ctx.allreduce_sum(rho * rho * dz * dz);
      const double rho_mean = ctx.allreduce_sum(worker.rho()) / n_ranks;
      double accuracy = -1.0;
      if (eval_accuracy) {
        // Every rank joins the allreduce; a rank whose test shard is
        // empty (more ranks than test rows) contributes zero hits.
        const double local_hits =
            test_eval != nullptr
                ? test_eval->accuracy(z) *
                      static_cast<double>(test_shard.num_samples())
                : 0.0;
        accuracy = ctx.allreduce_sum(local_hits) /
                   static_cast<double>(data.test_samples);
      }
      if (ctx.is_root() && options.record_trace) {
        IterationStats s;
        s.iteration = k + 1;
        s.objective = objective;
        s.test_accuracy = accuracy;
        s.sim_seconds = iter_sim_time;
        s.wall_seconds = wall.seconds();
        s.epoch_sim_seconds = iter_sim_time - prev_sim_time;
        s.comm_sim_seconds = ctx.clock().comm_seconds();
        s.primal_residual = std::sqrt(primal_sq);
        s.dual_residual = std::sqrt(dual_sq);
        s.rho_mean = rho_mean;
        result.trace.push_back(s);
      }
      prev_sim_time = iter_sim_time;
      if (options.primal_tol > 0.0 && options.dual_tol > 0.0 &&
          std::sqrt(primal_sq) <= options.primal_tol &&
          std::sqrt(dual_sq) <= options.dual_tol) {
        stop = true;  // identical on every rank: residuals came via allreduce
      }
      if (options.objective_target > 0.0 &&
          objective <= options.objective_target) {
        stop = true;  // objective came via allreduce: uniform across ranks
      }
      if (ctx.is_root()) {
        result.iterations = k + 1;
        result.final_objective = objective;
        result.final_test_accuracy = accuracy;
        result.total_sim_seconds = iter_sim_time;
        result.total_wall_seconds = wall.seconds();
      }
      ctx.clock().resume();
    }
    if (ctx.is_root()) result.x.assign(worker.z().begin(), worker.z().end());
  });

  result.rank_wait_seconds.reserve(reports.size());
  for (const auto& r : reports) {
    result.rank_wait_seconds.push_back(r.wait_seconds);
  }
  if (result.iterations > 0) {
    result.avg_epoch_sim_seconds =
        result.total_sim_seconds / result.iterations;
  }
  return result;
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
RunResult newton_admm(comm::SimCluster& cluster, const data::Dataset& train,
                      const data::Dataset* test,
                      const NewtonAdmmOptions& options) {
  data::ShardPlan plan;
  plan.parts = cluster.size();
  return newton_admm(cluster, data::make_sharded(train, test, plan), options);
}
#pragma GCC diagnostic pop

}  // namespace nadmm::core
