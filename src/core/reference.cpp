#include "core/reference.hpp"

#include "model/softmax.hpp"
#include "solvers/newton.hpp"

namespace nadmm::core {

ReferenceResult solve_reference(const data::Dataset& train, double lambda,
                                double gradient_tol, int max_iterations) {
  model::SoftmaxObjective objective(train, lambda);
  solvers::NewtonOptions opts;
  opts.max_iterations = max_iterations;
  opts.gradient_tol = gradient_tol;
  opts.cg.max_iterations = 250;
  opts.cg.rel_tol = 1e-8;
  opts.line_search.max_iterations = 40;
  auto newton = solvers::newton_cg(
      objective, std::vector<double>(objective.dim(), 0.0), opts);
  ReferenceResult result;
  result.x = std::move(newton.x);
  result.objective = newton.final_value;
  result.iterations = newton.iterations;
  result.converged = newton.converged;
  return result;
}

}  // namespace nadmm::core
