#include "core/penalty.hpp"

#include <algorithm>
#include <cmath>

#include "la/vector_ops.hpp"
#include "support/check.hpp"

namespace nadmm::core {

PenaltyRule penalty_rule_from_string(const std::string& name) {
  if (name == "fixed") return PenaltyRule::kFixed;
  if (name == "rb" || name == "residual-balancing")
    return PenaltyRule::kResidualBalancing;
  if (name == "sps" || name == "spectral") return PenaltyRule::kSpectral;
  throw InvalidArgument("unknown penalty rule '" + name +
                        "' (expected fixed|rb|sps)");
}

std::string to_string(PenaltyRule rule) {
  switch (rule) {
    case PenaltyRule::kFixed: return "fixed";
    case PenaltyRule::kResidualBalancing: return "rb";
    case PenaltyRule::kSpectral: return "sps";
  }
  return "?";
}

PenaltyController::PenaltyController(const PenaltyOptions& options,
                                     std::size_t dim)
    : options_(options), rho_(options.rho0) {
  NADMM_CHECK(options.rho0 > 0.0, "penalty: rho0 must be positive");
  NADMM_CHECK(options.sps_period >= 1, "penalty: sps_period must be >= 1");
  x0_.assign(dim, 0.0);
  yhat0_.assign(dim, 0.0);
  z0_.assign(dim, 0.0);
  y0_.assign(dim, 0.0);
}

namespace {
constexpr std::uint16_t kPenaltySnapshotVersion = 1;
}  // namespace

void PenaltyController::save(binio::ByteWriter& w) const {
  w.put_u16(kPenaltySnapshotVersion);
  w.put_f64(rho_);
  w.put_u8(has_memory_ ? 1 : 0);
  w.put_f64_span(x0_);
  w.put_f64_span(yhat0_);
  w.put_f64_span(z0_);
  w.put_f64_span(y0_);
}

void PenaltyController::restore(binio::ByteReader& r) {
  const std::uint16_t version = r.get_u16();
  NADMM_CHECK(version == kPenaltySnapshotVersion,
              "penalty snapshot: unsupported version " +
                  std::to_string(version));
  const std::size_t dim = x0_.size();
  rho_ = r.get_f64();
  has_memory_ = r.get_u8() != 0;
  x0_ = r.get_f64_vector();
  yhat0_ = r.get_f64_vector();
  z0_ = r.get_f64_vector();
  y0_ = r.get_f64_vector();
  NADMM_CHECK(x0_.size() == dim && yhat0_.size() == dim &&
                  z0_.size() == dim && y0_.size() == dim,
              "penalty snapshot: dimension mismatch");
}

void PenaltyController::observe(int k, std::span<const double> x,
                                std::span<const double> z,
                                std::span<const double> z_prev,
                                std::span<const double> y,
                                std::span<const double> y_hat) {
  switch (options_.rule) {
    case PenaltyRule::kFixed:
      return;
    case PenaltyRule::kResidualBalancing:
      observe_residual_balancing(x, z, z_prev);
      return;
    case PenaltyRule::kSpectral:
      observe_spectral(k, x, z, y, y_hat);
      return;
  }
}

void PenaltyController::observe_residual_balancing(
    std::span<const double> x, std::span<const double> z,
    std::span<const double> z_prev) {
  // r = ‖x_i − z‖ (primal), s = ρ‖z − z_prev‖ (dual, per node).
  const double r = la::dist2(x, z);
  const double s = rho_ * la::dist2(z, z_prev);
  if (r > options_.rb_threshold * s) {
    rho_ = std::min(rho_ * options_.rb_factor, options_.rho_max);
  } else if (s > options_.rb_threshold * r) {
    rho_ = std::max(rho_ / options_.rb_factor, options_.rho_min);
  }
}

std::pair<double, double> PenaltyController::spectral_stepsize(
    std::span<const double> d_dual, std::span<const double> d_primal) {
  const double dd = la::dot(d_dual, d_dual);
  const double dp = la::dot(d_dual, d_primal);
  const double pp = la::dot(d_primal, d_primal);
  if (dd <= 0.0 || pp <= 0.0) return {-1.0, 0.0};
  const double correlation = dp / std::sqrt(dd * pp);
  if (dp <= 0.0) return {-1.0, correlation};
  const double alpha_sd = dd / dp;  // steepest descent stepsize
  const double alpha_mg = dp / pp;  // minimum gradient stepsize
  // Hybrid rule of Zhou–Gao–Dai, as used by adaptive consensus ADMM.
  const double alpha =
      (2.0 * alpha_mg > alpha_sd) ? alpha_mg : (alpha_sd - 0.5 * alpha_mg);
  return {alpha, correlation};
}

void PenaltyController::observe_spectral(int k, std::span<const double> x,
                                         std::span<const double> z,
                                         std::span<const double> y,
                                         std::span<const double> y_hat) {
  const bool adapt = has_memory_ && ((k + 1) % options_.sps_period == 0);
  if (adapt) {
    const std::size_t dim = x.size();
    std::vector<double> d_yhat(dim), d_x(dim), d_y(dim), d_z(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      d_yhat[j] = y_hat[j] - yhat0_[j];
      d_x[j] = x[j] - x0_[j];
      d_y[j] = y[j] - y0_[j];
      d_z[j] = z[j] - z0_[j];
    }
    // Curvature of the local term f_i from (Δĥ, Δx); ĥ plays ∇f_i(x).
    const auto [alpha, alpha_cor] = spectral_stepsize(d_yhat, d_x);
    // Curvature of the consensus/regularizer term from (Δy, Δz).
    const auto [beta, beta_cor] = spectral_stepsize(d_y, d_z);

    const bool alpha_ok = alpha > 0.0 && alpha_cor > options_.sps_eps_cor;
    const bool beta_ok = beta > 0.0 && beta_cor > options_.sps_eps_cor;
    if (alpha_ok && beta_ok) {
      clamp_and_safeguard(std::sqrt(alpha * beta), k);
    } else if (alpha_ok) {
      clamp_and_safeguard(alpha, k);
    } else if (beta_ok) {
      clamp_and_safeguard(beta, k);
    }
    // else: keep rho unchanged (uncorrelated secant pairs).
  }
  if (adapt || !has_memory_) {
    std::copy(x.begin(), x.end(), x0_.begin());
    std::copy(y_hat.begin(), y_hat.end(), yhat0_.begin());
    std::copy(y.begin(), y.end(), y0_.begin());
    std::copy(z.begin(), z.end(), z0_.begin());
    has_memory_ = true;
  }
}

void PenaltyController::clamp_and_safeguard(double proposed, int k) {
  // Convergence safeguard: bound the relative change by 1 + C/k².
  const double bound = 1.0 + options_.sps_safeguard /
                                 (static_cast<double>(k + 1) * (k + 1));
  proposed = std::min(proposed, rho_ * bound);
  proposed = std::max(proposed, rho_ / bound);
  rho_ = std::clamp(proposed, options_.rho_min, options_.rho_max);
}

}  // namespace nadmm::core
