// Per-iteration trace types shared by Newton-ADMM and all baselines, so
// the experiment harness can plot every solver in the same coordinates
// the paper's figures use (objective / accuracy vs. time).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nadmm::core {

/// One outer iteration ("epoch") of any distributed solver.
struct IterationStats {
  int iteration = 0;
  double objective = 0.0;        ///< F(x) on the full training set
  double test_accuracy = -1.0;   ///< fraction in [0,1]; −1 if no test set
  double sim_seconds = 0.0;      ///< cumulative simulated time (max over ranks)
  double wall_seconds = 0.0;     ///< cumulative wall-clock time
  double epoch_sim_seconds = 0.0;///< this iteration's simulated time
  double comm_sim_seconds = 0.0; ///< cumulative simulated communication time
  // ADMM-specific (0 for other solvers):
  double primal_residual = 0.0;  ///< √Σ‖x_i − z‖²
  double dual_residual = 0.0;    ///< √Σ‖ρ_i(z^{k+1} − z^k)‖²
  double rho_mean = 0.0;         ///< mean per-node penalty
};

/// Final result of a distributed solver run.
struct RunResult {
  std::string solver;
  std::vector<double> x;              ///< final consensus / global iterate
  std::vector<IterationStats> trace;
  int iterations = 0;
  double final_objective = 0.0;
  double final_test_accuracy = -1.0;
  double total_sim_seconds = 0.0;
  double total_wall_seconds = 0.0;
  double avg_epoch_sim_seconds = 0.0;

  /// Simulated idle seconds per rank: barrier skew for synchronous
  /// solvers, mailbox/staleness-gate waits for asynchronous ones. Empty
  /// for solvers that do not report it (single-node, SGD baselines).
  std::vector<double> rank_wait_seconds;
  /// staleness_hist[s] counts consensus updates applied while their
  /// worker was `s` rounds ahead of the slowest worker (asynchronous
  /// solvers only; empty otherwise). The bounded-staleness gate
  /// guarantees the top non-zero bucket is <= the --staleness bound.
  std::vector<std::uint64_t> staleness_hist;

  /// Generic run metrics (sorted, sparse: only non-zero values are
  /// stored so journal round-trips are byte-exact). Async engine
  /// solvers populate the wire/fault-tolerance counters: "retransmits"
  /// (data frames re-sent, all ranks), "gaps_detected" (out-of-order
  /// holds), "messages_dropped" (sends never delivered), "checkpoints"
  /// (coordinator snapshots), "restores" (kill-and-rejoin recoveries).
  /// New subsystems add keys without touching this struct; sweep
  /// CSV/JSON/journal carry the map generically.
  std::map<std::string, std::uint64_t> metrics;

  /// Value of a metric, 0 when absent.
  [[nodiscard]] std::uint64_t metric(const std::string& name) const {
    const auto it = metrics.find(name);
    return it == metrics.end() ? 0 : it->second;
  }

  /// Add to a metric, keeping the map sparse (no zero entries).
  void add_metric(const std::string& name, std::uint64_t delta) {
    if (delta != 0) metrics[name] += delta;
  }

  [[nodiscard]] double max_wait_seconds() const {
    double w = 0.0;
    for (const double v : rank_wait_seconds) w = v > w ? v : w;
    return w;
  }

  /// Earliest cumulative simulated time at which the trace objective is
  /// ≤ threshold; −1 if never reached.
  [[nodiscard]] double sim_time_to_objective(double threshold) const {
    for (const auto& it : trace) {
      if (it.objective <= threshold) return it.sim_seconds;
    }
    return -1.0;
  }

  /// Earliest iteration index reaching the threshold; −1 if never.
  [[nodiscard]] int iterations_to_objective(double threshold) const {
    for (const auto& it : trace) {
      if (it.objective <= threshold) return it.iteration;
    }
    return -1;
  }
};

}  // namespace nadmm::core
