// Shared per-epoch diagnostics for the distributed baselines.
//
// Runs on a paused simulated clock so that trace timings measure only the
// algorithm's own compute + communication (same convention as the
// Newton-ADMM driver).
#pragma once

#include <memory>
#include <span>

#include "comm/cluster.hpp"
#include "core/trace.hpp"
#include "data/dataset.hpp"
#include "model/softmax.hpp"
#include "support/timer.hpp"

namespace nadmm::baselines {

/// Per-rank diagnostics state for one solver run.
class EpochRecorder {
 public:
  /// `test_total` is the global test-set size for averaging the
  /// per-shard hit counts; it gates the accuracy allreduce and MUST be
  /// the same on every rank (0 reports accuracy as −1). `test_shard`
  /// may be empty on an individual rank (more ranks than test rows) —
  /// that rank still joins the allreduce with zero hits. The shard is
  /// taken by value (an O(1) shared-storage view copy) and owned by the
  /// recorder, so callers can pass a temporary.
  EpochRecorder(comm::RankCtx& ctx, model::SoftmaxObjective& local_loss,
                double lambda, data::Dataset test_shard,
                std::size_t test_total, core::RunResult& result);

  /// Record iteration k (1-based in the trace) at global iterate `w`.
  /// Every rank must call this collectively. Returns the objective F(w).
  double record(int k, std::span<const double> w);

 private:
  comm::RankCtx* ctx_;
  model::SoftmaxObjective* local_loss_;
  double lambda_;
  std::size_t test_total_;
  data::Dataset test_shard_;  ///< owned: test_eval_ points into it
  std::unique_ptr<model::SoftmaxObjective> test_eval_;
  std::size_t test_shard_size_ = 0;
  core::RunResult* result_;
  WallTimer wall_;
  double prev_sim_time_ = 0.0;
};

}  // namespace nadmm::baselines
