#include "baselines/giant.hpp"

#include <cmath>

#include "baselines/diag.hpp"
#include "data/partition.hpp"
#include "la/vector_ops.hpp"
#include "model/softmax.hpp"
#include "support/check.hpp"

namespace nadmm::baselines {

core::RunResult giant(comm::SimCluster& cluster,
                      const data::ShardedDataset& data,
                      const GiantOptions& options) {
  NADMM_CHECK(options.max_iterations >= 1, "giant: need >= 1 iteration");
  NADMM_CHECK(options.line_search_steps >= 0, "giant: bad line_search_steps");
  NADMM_CHECK(data.parts() == cluster.size(),
              "giant: shard plan does not match the cluster size");

  core::RunResult result;
  result.solver = "giant";
  const int n_ranks = cluster.size();
  const std::size_t dim = data.dim();
  const std::size_t n_steps =
      static_cast<std::size_t>(options.line_search_steps) + 1;
  const bool eval_accuracy =
      options.evaluate_accuracy && data.test_samples > 0;

  cluster.run([&](comm::RankCtx& ctx) {
    const int rank = ctx.rank();
    ctx.clock().pause();
    const data::RankData& rd = data.ranks[static_cast<std::size_t>(rank)];
    model::SoftmaxObjective local(rd.train, /*l2_lambda=*/0.0);
    EpochRecorder recorder(ctx, local, options.lambda,
                           eval_accuracy ? rd.test : data::Dataset{},
                           eval_accuracy ? data.test_samples : 0, result);
    ctx.clock().resume();

    std::vector<double> w(dim, 0.0), g(dim), p(dim), trial(dim);
    std::vector<double> ls_values(n_steps + 1);  // + slot for f_i(w)
    const double scale = static_cast<double>(n_ranks);

    for (int k = 0; k < options.max_iterations; ++k) {
      // Round 1: global gradient.
      local.gradient(w, g);
      ctx.allreduce_sum(g);
      la::axpy(options.lambda, w, g);

      // Local Newton system with the rank's Hessian as a (scaled)
      // estimator of the global one: (N·H_i + λI) p_i = −g.
      solvers::conjugate_gradient(
          [&](std::span<const double> v, std::span<double> hv) {
            local.hessian_vec(w, v, hv);
            la::scal(scale, hv);
            la::axpy(options.lambda, v, hv);
          },
          g, p, options.cg);

      // Round 2: average the local directions.
      ctx.allreduce_sum(p);
      la::scal(1.0 / scale, p);

      // Round 3: distributed line search over the fixed step set
      // S = {2^0 … 2^-k}. Every worker evaluates every step (the cost
      // structure the paper contrasts with Newton-ADMM's local search).
      for (std::size_t s = 0; s < n_steps; ++s) {
        const double alpha = std::ldexp(1.0, -static_cast<int>(s));
        la::copy(w, trial);
        la::axpy(alpha, p, trial);
        ls_values[s] = local.value(trial);
      }
      ls_values[n_steps] = local.value(w);
      ctx.allreduce_sum(ls_values);

      const double pg = la::dot(p, g);
      const double w_sq = la::nrm2_sq(w);
      const double pw = la::dot(p, w);
      const double p_sq = la::nrm2_sq(p);
      const double f0 = ls_values[n_steps] + 0.5 * options.lambda * w_sq;
      double accepted = 0.0;
      double f_accepted = f0;
      for (std::size_t s = 0; s < n_steps; ++s) {
        const double alpha = std::ldexp(1.0, -static_cast<int>(s));
        const double reg = 0.5 * options.lambda *
                           (w_sq + 2.0 * alpha * pw + alpha * alpha * p_sq);
        const double f_alpha = ls_values[s] + reg;
        if (f_alpha <= f0 + alpha * options.armijo_beta * pg) {
          accepted = alpha;
          f_accepted = f_alpha;
          break;  // steps are sorted descending: first hit is the largest
        }
      }
      if (accepted == 0.0) {
        // No Armijo step: fall back to the best decreasing step, if any.
        for (std::size_t s = 0; s < n_steps; ++s) {
          const double alpha = std::ldexp(1.0, -static_cast<int>(s));
          const double reg = 0.5 * options.lambda *
                             (w_sq + 2.0 * alpha * pw + alpha * alpha * p_sq);
          const double f_alpha = ls_values[s] + reg;
          if (f_alpha < f_accepted) {
            accepted = alpha;
            f_accepted = f_alpha;
          }
        }
      }
      if (accepted > 0.0) la::axpy(accepted, p, w);

      if (options.record_trace) {
        const double objective = recorder.record(k + 1, w);
        if (options.objective_target > 0.0 &&
            objective <= options.objective_target) {
          break;  // objective came via allreduce: uniform across ranks
        }
      }
      if (accepted == 0.0) break;  // stagnated
    }
    if (ctx.is_root()) result.x = w;
  });

  if (result.iterations > 0) {
    result.avg_epoch_sim_seconds = result.total_sim_seconds / result.iterations;
  }
  return result;
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
core::RunResult giant(comm::SimCluster& cluster, const data::Dataset& train,
                      const data::Dataset* test, const GiantOptions& options) {
  data::ShardPlan plan;
  plan.parts = cluster.size();
  return giant(cluster, data::make_sharded(train, test, plan), options);
}
#pragma GCC diagnostic pop

}  // namespace nadmm::baselines
