// DiSCO (Zhang & Lin): distributed inexact damped Newton.
//
// Cited by the paper as related work; implemented here as an extension
// (DESIGN.md §6) because it demonstrates the opposite end of the
// communication spectrum: its Newton system is solved by a *distributed*
// CG in which every Hessian-vector product is an allreduce — 1 + #CG
// rounds per iteration versus Newton-ADMM's single round.
#pragma once

#include "comm/cluster.hpp"
#include "core/trace.hpp"
#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "solvers/cg.hpp"

namespace nadmm::baselines {

struct DiscoOptions {
  int max_iterations = 100;
  double lambda = 1e-5;
  solvers::CgOptions cg;  ///< distributed CG budget per outer iteration
  bool record_trace = true;
  bool evaluate_accuracy = true;
};

/// Run DiSCO over pre-sharded data (rank r trains on
/// `data.ranks[r].train`; the harness plans the shards).
core::RunResult disco(comm::SimCluster& cluster,
                      const data::ShardedDataset& data,
                      const DiscoOptions& options);

/// Convenience overload: contiguous zero-copy view shards.
[[deprecated(
    "shard explicitly: pass a data::ShardedDataset (see "
    "runner::shard_for_solver) — this overload re-shards per call")]]
core::RunResult disco(comm::SimCluster& cluster, const data::Dataset& train,
                      const data::Dataset* test, const DiscoOptions& options);

}  // namespace nadmm::baselines
