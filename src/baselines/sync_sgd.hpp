// Synchronous distributed minibatch SGD — the paper's first-order
// comparator (Figure 4).
//
// Every step: each worker computes the gradient of one local minibatch,
// the gradients are allreduced, and all workers apply the same update.
// One allreduce per *minibatch* — ~n/(N·batch) communication rounds per
// epoch versus Newton-ADMM's single round, which is the communication
// profile the paper's comparison hinges on.
#pragma once

#include <cstdint>

#include "comm/cluster.hpp"
#include "core/trace.hpp"
#include "data/dataset.hpp"

namespace nadmm::baselines {

struct SyncSgdOptions {
  int epochs = 100;
  std::size_t batch_size = 128;  ///< paper: 128
  double step_size = 0.1;        ///< applied to the *mean* gradient
  double lambda = 1e-5;
  std::uint64_t seed = 7;
  bool record_trace = true;
  bool evaluate_accuracy = true;
};

core::RunResult sync_sgd(comm::SimCluster& cluster, const data::Dataset& train,
                         const data::Dataset* test,
                         const SyncSgdOptions& options);

}  // namespace nadmm::baselines
