// Synchronous distributed minibatch SGD — the paper's first-order
// comparator (Figure 4).
//
// Every step: each worker computes the gradient of one local minibatch,
// the gradients are allreduced, and all workers apply the same update.
// One allreduce per *minibatch* — ~n/(N·batch) communication rounds per
// epoch versus Newton-ADMM's single round, which is the communication
// profile the paper's comparison hinges on.
#pragma once

#include <cstdint>

#include "comm/cluster.hpp"
#include "core/trace.hpp"
#include "data/dataset.hpp"
#include "data/partition.hpp"

namespace nadmm::baselines {

struct SyncSgdOptions {
  int epochs = 100;
  std::size_t batch_size = 128;  ///< paper: 128
  double step_size = 0.1;        ///< applied to the *mean* gradient
  double lambda = 1e-5;
  std::uint64_t seed = 7;
  bool record_trace = true;
  bool evaluate_accuracy = true;
};

/// Run synchronous SGD over pre-sharded data (rank r trains on
/// `data.ranks[r].train`; minibatches are zero-copy views of the shard).
core::RunResult sync_sgd(comm::SimCluster& cluster,
                         const data::ShardedDataset& data,
                         const SyncSgdOptions& options);

/// Convenience overload: contiguous zero-copy view shards.
[[deprecated(
    "shard explicitly: pass a data::ShardedDataset (see "
    "runner::shard_for_solver) — this overload re-shards per call")]]
core::RunResult sync_sgd(comm::SimCluster& cluster, const data::Dataset& train,
                         const data::Dataset* test,
                         const SyncSgdOptions& options);

}  // namespace nadmm::baselines
