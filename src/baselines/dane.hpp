// InexactDANE and AIDE (Reddi et al.), the paper's slow-epoch
// second-order comparators in Figure 1.
//
// InexactDANE iteration (η, µ as in the paper's setup: η = 1, µ = 0):
//   1. allreduce the local gradients of φ_i(w) = f_i(w) + (λ/2N)‖w‖² to
//      form the average gradient ḡ;
//   2. each node solves, with SVRG,
//        min_x φ_i(x) − ⟨∇φ_i(w) − η·ḡ, x⟩ + (µ/2)‖x − w‖²;
//   3. allreduce to average the local solutions into w⁺.
// The SVRG inner loop is what makes each epoch orders of magnitude more
// expensive than a Newton-CG epoch — the effect Figure 1 shows.
//
// AIDE wraps InexactDANE in catalyst acceleration: the inner solve runs
// on F + (τ/2)‖x − y_t‖² and iterates are extrapolated with
// ζ = (1 − √q)/(1 + √q), q = λ/(λ + τ).
#pragma once

#include "comm/cluster.hpp"
#include "core/trace.hpp"
#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "solvers/svrg.hpp"

namespace nadmm::baselines {

struct DaneOptions {
  int max_iterations = 10;    ///< paper runs only 10 epochs (they are slow)
  double lambda = 1e-5;
  double eta = 1.0;           ///< paper: η = 1.0
  double mu = 0.0;            ///< paper: µ = 0.0
  std::size_t svrg_batch = 16;
  solvers::SvrgOptions svrg;  ///< inner-solver budget
  // AIDE acceleration:
  bool accelerate = false;    ///< false → InexactDANE, true → AIDE
  double tau = 1.0;           ///< catalyst smoothing (paper sweeps this)
  bool record_trace = true;
  bool evaluate_accuracy = true;
};

/// Run InexactDANE / AIDE over pre-sharded data (rank r trains on
/// `data.ranks[r].train`; the harness plans the shards).
core::RunResult inexact_dane(comm::SimCluster& cluster,
                             const data::ShardedDataset& data,
                             const DaneOptions& options);

/// Convenience overload: contiguous zero-copy view shards.
[[deprecated(
    "shard explicitly: pass a data::ShardedDataset (see "
    "runner::shard_for_solver) — this overload re-shards per call")]]
core::RunResult inexact_dane(comm::SimCluster& cluster,
                             const data::Dataset& train,
                             const data::Dataset* test,
                             const DaneOptions& options);

}  // namespace nadmm::baselines
