#include "baselines/sync_sgd.hpp"

#include <algorithm>
#include <numeric>

#include "baselines/diag.hpp"
#include "data/partition.hpp"
#include "la/vector_ops.hpp"
#include "model/softmax.hpp"
#include "solvers/minibatch.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace nadmm::baselines {

core::RunResult sync_sgd(comm::SimCluster& cluster,
                         const data::ShardedDataset& data,
                         const SyncSgdOptions& options) {
  NADMM_CHECK(options.epochs >= 1, "sync_sgd: need >= 1 epoch");
  NADMM_CHECK(options.step_size > 0.0, "sync_sgd: step size must be positive");
  NADMM_CHECK(data.parts() == cluster.size(),
              "sync_sgd: shard plan does not match the cluster size");

  core::RunResult result;
  result.solver = "sync-sgd";
  const std::size_t dim = data.dim();
  const double n_total = static_cast<double>(data.train_samples);
  const double lambda_mean = options.lambda / n_total;
  const bool eval_accuracy =
      options.evaluate_accuracy && data.test_samples > 0;

  cluster.run([&](comm::RankCtx& ctx) {
    const int rank = ctx.rank();
    ctx.clock().pause();
    const data::RankData& rd = data.ranks[static_cast<std::size_t>(rank)];
    const data::Dataset& shard = rd.train;
    model::SoftmaxObjective local(shard, /*l2_lambda=*/0.0);
    EpochRecorder recorder(ctx, local, options.lambda,
                           eval_accuracy ? rd.test : data::Dataset{},
                           eval_accuracy ? data.test_samples : 0, result);

    auto batch_data = solvers::make_batches(shard, options.batch_size);
    std::vector<model::SoftmaxObjective> batches;
    batches.reserve(batch_data.size());
    for (const auto& b : batch_data) batches.emplace_back(b, 0.0);
    // Every rank must execute the same number of allreduces per epoch.
    const auto steps_per_epoch = static_cast<std::size_t>(
        ctx.allreduce_min(static_cast<double>(batches.size())));
    ctx.clock().resume();

    std::vector<double> w(dim, 0.0), packed(dim + 1);
    std::vector<std::size_t> order(batches.size());
    std::iota(order.begin(), order.end(), 0);
    Rng rng(options.seed + 1315423911ULL * static_cast<std::uint64_t>(rank));

    for (int epoch = 0; epoch < options.epochs; ++epoch) {
      // Shuffle the local batch visit order (Fisher–Yates).
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.uniform_index(i)]);
      }
      for (std::size_t s = 0; s < steps_per_epoch; ++s) {
        auto& batch = batches[order[s % order.size()]];
        batch.gradient(w, std::span<double>(packed.data(), dim));
        packed[dim] = static_cast<double>(batch.num_samples());
        ctx.allreduce_sum(packed);
        const double batch_total = packed[dim];
        // Mean-gradient step: w ← w − η (Σ∇f_b / Σ|b| + (λ/n)·w).
        const double inv = 1.0 / batch_total;
        for (std::size_t j = 0; j < dim; ++j) {
          w[j] -= options.step_size * (packed[j] * inv + lambda_mean * w[j]);
        }
        nadmm::flops::add(4 * dim);
      }
      if (options.record_trace) recorder.record(epoch + 1, w);
    }
    if (ctx.is_root()) result.x = w;
  });

  if (result.iterations > 0) {
    result.avg_epoch_sim_seconds = result.total_sim_seconds / result.iterations;
  }
  return result;
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
core::RunResult sync_sgd(comm::SimCluster& cluster, const data::Dataset& train,
                         const data::Dataset* test,
                         const SyncSgdOptions& options) {
  data::ShardPlan plan;
  plan.parts = cluster.size();
  return sync_sgd(cluster, data::make_sharded(train, test, plan), options);
}
#pragma GCC diagnostic pop

}  // namespace nadmm::baselines
