// GIANT: Globally Improved Approximate Newton (Wang et al.), the paper's
// main second-order comparator.
//
// Per iteration, three communication rounds (vs. Newton-ADMM's one):
//   1. allreduce of local gradients → global gradient g;
//   2. each worker solves its *local* Newton system
//        (N·H_i + λI) p_i = −g  with CG, then allreduce to average p_i;
//   3. distributed line search: every worker evaluates its local objective
//      at ALL steps in the fixed set S = {2⁰, 2⁻¹, …, 2⁻ᵏ} and the values
//      are allreduced — the redundant evaluations the paper calls out as
//      GIANT's extra per-epoch cost.
#pragma once

#include "comm/cluster.hpp"
#include "core/trace.hpp"
#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "solvers/cg.hpp"

namespace nadmm::baselines {

struct GiantOptions {
  int max_iterations = 100;
  double lambda = 1e-5;
  solvers::CgOptions cg;          ///< paper: 10 iterations, tol 1e-4
  int line_search_steps = 10;     ///< k: S = {2^0 … 2^-k}, paper i_max = 10
  double armijo_beta = 1e-4;
  /// Stop once the diagnostic global objective reaches this value; ≤ 0
  /// disables. Used by the time-to-θ benches.
  double objective_target = 0.0;
  bool record_trace = true;
  bool evaluate_accuracy = true;
};

/// Run GIANT over pre-sharded data (rank r trains on
/// `data.ranks[r].train`; the harness plans the shards).
core::RunResult giant(comm::SimCluster& cluster,
                      const data::ShardedDataset& data,
                      const GiantOptions& options);

/// Convenience overload: contiguous zero-copy view shards.
[[deprecated(
    "shard explicitly: pass a data::ShardedDataset (see "
    "runner::shard_for_solver) — this overload re-shards per call")]]
core::RunResult giant(comm::SimCluster& cluster, const data::Dataset& train,
                      const data::Dataset* test, const GiantOptions& options);

}  // namespace nadmm::baselines
