#include "baselines/diag.hpp"

#include "la/vector_ops.hpp"

namespace nadmm::baselines {

EpochRecorder::EpochRecorder(comm::RankCtx& ctx,
                             model::SoftmaxObjective& local_loss,
                             double lambda, data::Dataset test_shard,
                             std::size_t test_total, core::RunResult& result)
    : ctx_(&ctx),
      local_loss_(&local_loss),
      lambda_(lambda),
      test_total_(test_total),
      test_shard_(std::move(test_shard)),
      result_(&result) {
  if (!test_shard_.empty()) {
    test_eval_ = std::make_unique<model::SoftmaxObjective>(test_shard_, 0.0);
    test_shard_size_ = test_shard_.num_samples();
  }
}

double EpochRecorder::record(int k, std::span<const double> w) {
  ctx_->clock().pause();
  const double sim_time = ctx_->allreduce_max(ctx_->clock().total_seconds());
  double objective = ctx_->allreduce_sum(local_loss_->value(w));
  if (lambda_ > 0.0) objective += 0.5 * lambda_ * la::nrm2_sq(w);
  double accuracy = -1.0;
  if (test_total_ > 0) {
    const double hits =
        test_eval_ != nullptr
            ? test_eval_->accuracy(w) * static_cast<double>(test_shard_size_)
            : 0.0;
    accuracy = ctx_->allreduce_sum(hits) / static_cast<double>(test_total_);
  }
  if (ctx_->is_root()) {
    core::IterationStats s;
    s.iteration = k;
    s.objective = objective;
    s.test_accuracy = accuracy;
    s.sim_seconds = sim_time;
    s.wall_seconds = wall_.seconds();
    s.epoch_sim_seconds = sim_time - prev_sim_time_;
    s.comm_sim_seconds = ctx_->clock().comm_seconds();
    result_->trace.push_back(s);
    result_->iterations = k;
    result_->final_objective = objective;
    result_->final_test_accuracy = accuracy;
    result_->total_sim_seconds = sim_time;
    result_->total_wall_seconds = wall_.seconds();
  }
  prev_sim_time_ = sim_time;
  ctx_->clock().resume();
  return objective;
}

}  // namespace nadmm::baselines
