#include "baselines/disco.hpp"

#include <cmath>

#include "baselines/diag.hpp"
#include "data/partition.hpp"
#include "la/vector_ops.hpp"
#include "model/softmax.hpp"
#include "support/check.hpp"

namespace nadmm::baselines {

core::RunResult disco(comm::SimCluster& cluster, const data::Dataset& train,
                      const data::Dataset* test, const DiscoOptions& options) {
  NADMM_CHECK(options.max_iterations >= 1, "disco: need >= 1 iteration");

  core::RunResult result;
  result.solver = "disco";
  const int n_ranks = cluster.size();
  const std::size_t dim =
      train.num_features() * (static_cast<std::size_t>(train.num_classes()) - 1);

  cluster.run([&](comm::RankCtx& ctx) {
    const int rank = ctx.rank();
    ctx.clock().pause();
    const data::Dataset shard = data::shard_contiguous(train, n_ranks, rank);
    const data::Dataset test_shard =
        (test != nullptr && options.evaluate_accuracy && test->num_samples() > 0)
            ? data::shard_contiguous(*test, n_ranks, rank)
            : data::Dataset{};
    model::SoftmaxObjective local(shard, /*l2_lambda=*/0.0);
    EpochRecorder recorder(ctx, local, options.lambda, test_shard,
                           test != nullptr ? test->num_samples() : 0, result);
    ctx.clock().resume();

    std::vector<double> w(dim, 0.0), g(dim), p(dim), hp(dim);

    for (int k = 0; k < options.max_iterations; ++k) {
      // Global gradient (one allreduce).
      local.gradient(w, g);
      ctx.allreduce_sum(g);
      la::axpy(options.lambda, w, g);

      // Distributed CG: the TRUE global Hessian, one allreduce per product.
      solvers::conjugate_gradient(
          [&](std::span<const double> v, std::span<double> hv) {
            local.hessian_vec(w, v, hv);
            ctx.allreduce_sum(hv);
            la::axpy(options.lambda, v, hv);
          },
          g, p, options.cg);

      // Damped Newton step of self-concordant analysis: δ = √(pᵀHp) on the
      // *standardized* (mean) objective — DiSCO's analysis is stated for
      // averaged losses, so the sum-scaled decrement is divided by n.
      // w ← w − p/(1+δ) … our p already solves Hp = −g, so apply +.
      local.hessian_vec(w, p, hp);
      ctx.allreduce_sum(hp);
      la::axpy(options.lambda, p, hp);
      const double n_total = static_cast<double>(train.num_samples());
      const double delta =
          std::sqrt(std::max(0.0, la::dot(p, hp) / n_total));
      la::axpy(1.0 / (1.0 + delta), p, w);

      if (options.record_trace) recorder.record(k + 1, w);
    }
    if (ctx.is_root()) result.x = w;
  });

  if (result.iterations > 0) {
    result.avg_epoch_sim_seconds = result.total_sim_seconds / result.iterations;
  }
  return result;
}

}  // namespace nadmm::baselines
