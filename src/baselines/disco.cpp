#include "baselines/disco.hpp"

#include <cmath>

#include "baselines/diag.hpp"
#include "data/partition.hpp"
#include "la/vector_ops.hpp"
#include "model/softmax.hpp"
#include "support/check.hpp"

namespace nadmm::baselines {

core::RunResult disco(comm::SimCluster& cluster,
                      const data::ShardedDataset& data,
                      const DiscoOptions& options) {
  NADMM_CHECK(options.max_iterations >= 1, "disco: need >= 1 iteration");
  NADMM_CHECK(data.parts() == cluster.size(),
              "disco: shard plan does not match the cluster size");

  core::RunResult result;
  result.solver = "disco";
  const std::size_t dim = data.dim();
  const bool eval_accuracy =
      options.evaluate_accuracy && data.test_samples > 0;

  cluster.run([&](comm::RankCtx& ctx) {
    const int rank = ctx.rank();
    ctx.clock().pause();
    const data::RankData& rd = data.ranks[static_cast<std::size_t>(rank)];
    model::SoftmaxObjective local(rd.train, /*l2_lambda=*/0.0);
    EpochRecorder recorder(ctx, local, options.lambda,
                           eval_accuracy ? rd.test : data::Dataset{},
                           eval_accuracy ? data.test_samples : 0, result);
    ctx.clock().resume();

    std::vector<double> w(dim, 0.0), g(dim), p(dim), hp(dim);

    for (int k = 0; k < options.max_iterations; ++k) {
      // Global gradient (one allreduce).
      local.gradient(w, g);
      ctx.allreduce_sum(g);
      la::axpy(options.lambda, w, g);

      // Distributed CG: the TRUE global Hessian, one allreduce per product.
      solvers::conjugate_gradient(
          [&](std::span<const double> v, std::span<double> hv) {
            local.hessian_vec(w, v, hv);
            ctx.allreduce_sum(hv);
            la::axpy(options.lambda, v, hv);
          },
          g, p, options.cg);

      // Damped Newton step of self-concordant analysis: δ = √(pᵀHp) on the
      // *standardized* (mean) objective — DiSCO's analysis is stated for
      // averaged losses, so the sum-scaled decrement is divided by n.
      // w ← w − p/(1+δ) … our p already solves Hp = −g, so apply +.
      local.hessian_vec(w, p, hp);
      ctx.allreduce_sum(hp);
      la::axpy(options.lambda, p, hp);
      const double n_total = static_cast<double>(data.train_samples);
      const double delta =
          std::sqrt(std::max(0.0, la::dot(p, hp) / n_total));
      la::axpy(1.0 / (1.0 + delta), p, w);

      if (options.record_trace) recorder.record(k + 1, w);
    }
    if (ctx.is_root()) result.x = w;
  });

  if (result.iterations > 0) {
    result.avg_epoch_sim_seconds = result.total_sim_seconds / result.iterations;
  }
  return result;
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
core::RunResult disco(comm::SimCluster& cluster, const data::Dataset& train,
                      const data::Dataset* test, const DiscoOptions& options) {
  data::ShardPlan plan;
  plan.parts = cluster.size();
  return disco(cluster, data::make_sharded(train, test, plan), options);
}
#pragma GCC diagnostic pop

}  // namespace nadmm::baselines
