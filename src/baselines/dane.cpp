#include "baselines/dane.hpp"

#include <cmath>

#include "baselines/diag.hpp"
#include "data/partition.hpp"
#include "la/vector_ops.hpp"
#include "model/softmax.hpp"
#include "solvers/minibatch.hpp"
#include "support/check.hpp"

namespace nadmm::baselines {

core::RunResult inexact_dane(comm::SimCluster& cluster,
                             const data::Dataset& train,
                             const data::Dataset* test,
                             const DaneOptions& options) {
  NADMM_CHECK(options.max_iterations >= 1, "dane: need >= 1 iteration");
  NADMM_CHECK(options.tau > 0.0 || !options.accelerate,
              "dane: AIDE needs tau > 0");

  core::RunResult result;
  result.solver = options.accelerate ? "aide" : "inexact-dane";
  const int n_ranks = cluster.size();
  const std::size_t dim =
      train.num_features() * (static_cast<std::size_t>(train.num_classes()) - 1);
  const double n_ranks_d = static_cast<double>(n_ranks);

  cluster.run([&](comm::RankCtx& ctx) {
    const int rank = ctx.rank();
    ctx.clock().pause();
    const data::Dataset shard = data::shard_contiguous(train, n_ranks, rank);
    const data::Dataset test_shard =
        (test != nullptr && options.evaluate_accuracy && test->num_samples() > 0)
            ? data::shard_contiguous(*test, n_ranks, rank)
            : data::Dataset{};
    model::SoftmaxObjective local(shard, /*l2_lambda=*/0.0);
    auto batch_data = solvers::make_batches(shard, options.svrg_batch);
    std::vector<model::SoftmaxObjective> batches;
    batches.reserve(batch_data.size());
    for (const auto& b : batch_data) batches.emplace_back(b, 0.0);
    EpochRecorder recorder(ctx, local, options.lambda, test_shard,
                           test != nullptr ? test->num_samples() : 0, result);
    ctx.clock().resume();

    std::vector<double> w(dim, 0.0), x_prev(dim, 0.0), y_t(dim, 0.0),
        g_loc(dim), g_avg(dim), linear(dim);
    const double reg_share = options.lambda / n_ranks_d;
    const double cat_share = options.accelerate ? options.tau / n_ranks_d : 0.0;
    const double q = options.lambda / (options.lambda + options.tau);
    const double zeta =
        options.accelerate ? (1.0 - std::sqrt(q)) / (1.0 + std::sqrt(q)) : 0.0;

    solvers::SvrgOptions svrg_opts = options.svrg;

    for (int k = 0; k < options.max_iterations; ++k) {
      // Round 1: average gradient of the (catalyst-augmented) objective.
      local.gradient(w, g_loc);
      for (std::size_t j = 0; j < dim; ++j) {
        g_loc[j] += reg_share * w[j] + cat_share * (w[j] - y_t[j]);
      }
      nadmm::flops::add(4 * dim);
      la::copy(g_loc, g_avg);
      ctx.allreduce_sum(g_avg);
      la::scal(1.0 / n_ranks_d, g_avg);

      // Local subproblem: min f_i(x) + ⟨linear,x⟩ + ridge/2‖x‖² + µ/2‖x−w‖².
      // ridge = reg_share + cat_share carries φ_i's quadratic terms, so the
      // linear part is the DANE correction plus the catalyst cross-term:
      //   linear = −(∇φ_i(w) − η·ḡ) − cat_share·y_t.
      for (std::size_t j = 0; j < dim; ++j) {
        linear[j] = -(g_loc[j] - options.eta * g_avg[j]) - cat_share * y_t[j];
      }
      nadmm::flops::add(3 * dim);
      svrg_opts.seed = options.svrg.seed +
                       static_cast<std::uint64_t>(k) * 1000003ULL +
                       static_cast<std::uint64_t>(rank);
      auto sv = solvers::svrg_minimize(batches, linear,
                                       reg_share + cat_share, options.mu, w,
                                       w, svrg_opts);

      // Round 2: average the local solutions.
      ctx.allreduce_sum(sv.x);
      la::scal(1.0 / n_ranks_d, sv.x);

      if (options.accelerate) {
        // Catalyst extrapolation.
        for (std::size_t j = 0; j < dim; ++j) {
          y_t[j] = sv.x[j] + zeta * (sv.x[j] - x_prev[j]);
        }
        nadmm::flops::add(3 * dim);
        la::copy(sv.x, x_prev);
      }
      la::copy(sv.x, w);

      if (options.record_trace) recorder.record(k + 1, w);
    }
    if (ctx.is_root()) result.x = w;
  });

  if (result.iterations > 0) {
    result.avg_epoch_sim_seconds = result.total_sim_seconds / result.iterations;
  }
  return result;
}

}  // namespace nadmm::baselines
