#include "baselines/dane.hpp"

#include <cmath>

#include "baselines/diag.hpp"
#include "data/partition.hpp"
#include "la/vector_ops.hpp"
#include "model/softmax.hpp"
#include "solvers/minibatch.hpp"
#include "support/check.hpp"

namespace nadmm::baselines {

core::RunResult inexact_dane(comm::SimCluster& cluster,
                             const data::ShardedDataset& data,
                             const DaneOptions& options) {
  NADMM_CHECK(options.max_iterations >= 1, "dane: need >= 1 iteration");
  NADMM_CHECK(options.tau > 0.0 || !options.accelerate,
              "dane: AIDE needs tau > 0");
  NADMM_CHECK(data.parts() == cluster.size(),
              "dane: shard plan does not match the cluster size");

  core::RunResult result;
  result.solver = options.accelerate ? "aide" : "inexact-dane";
  const int n_ranks = cluster.size();
  const std::size_t dim = data.dim();
  const double n_ranks_d = static_cast<double>(n_ranks);
  const bool eval_accuracy =
      options.evaluate_accuracy && data.test_samples > 0;

  cluster.run([&](comm::RankCtx& ctx) {
    const int rank = ctx.rank();
    ctx.clock().pause();
    const data::RankData& rd = data.ranks[static_cast<std::size_t>(rank)];
    const data::Dataset& shard = rd.train;
    model::SoftmaxObjective local(shard, /*l2_lambda=*/0.0);
    auto batch_data = solvers::make_batches(shard, options.svrg_batch);
    std::vector<model::SoftmaxObjective> batches;
    batches.reserve(batch_data.size());
    for (const auto& b : batch_data) batches.emplace_back(b, 0.0);
    EpochRecorder recorder(ctx, local, options.lambda,
                           eval_accuracy ? rd.test : data::Dataset{},
                           eval_accuracy ? data.test_samples : 0, result);
    ctx.clock().resume();

    std::vector<double> w(dim, 0.0), x_prev(dim, 0.0), y_t(dim, 0.0),
        g_loc(dim), g_avg(dim), linear(dim);
    const double reg_share = options.lambda / n_ranks_d;
    const double cat_share = options.accelerate ? options.tau / n_ranks_d : 0.0;
    const double q = options.lambda / (options.lambda + options.tau);
    const double zeta =
        options.accelerate ? (1.0 - std::sqrt(q)) / (1.0 + std::sqrt(q)) : 0.0;

    solvers::SvrgOptions svrg_opts = options.svrg;

    for (int k = 0; k < options.max_iterations; ++k) {
      // Round 1: average gradient of the (catalyst-augmented) objective.
      local.gradient(w, g_loc);
      for (std::size_t j = 0; j < dim; ++j) {
        g_loc[j] += reg_share * w[j] + cat_share * (w[j] - y_t[j]);
      }
      nadmm::flops::add(4 * dim);
      la::copy(g_loc, g_avg);
      ctx.allreduce_sum(g_avg);
      la::scal(1.0 / n_ranks_d, g_avg);

      // Local subproblem: min f_i(x) + ⟨linear,x⟩ + ridge/2‖x‖² + µ/2‖x−w‖².
      // ridge = reg_share + cat_share carries φ_i's quadratic terms, so the
      // linear part is the DANE correction plus the catalyst cross-term:
      //   linear = −(∇φ_i(w) − η·ḡ) − cat_share·y_t.
      for (std::size_t j = 0; j < dim; ++j) {
        linear[j] = -(g_loc[j] - options.eta * g_avg[j]) - cat_share * y_t[j];
      }
      nadmm::flops::add(3 * dim);
      svrg_opts.seed = options.svrg.seed +
                       static_cast<std::uint64_t>(k) * 1000003ULL +
                       static_cast<std::uint64_t>(rank);
      auto sv = solvers::svrg_minimize(batches, linear,
                                       reg_share + cat_share, options.mu, w,
                                       w, svrg_opts);

      // Round 2: average the local solutions.
      ctx.allreduce_sum(sv.x);
      la::scal(1.0 / n_ranks_d, sv.x);

      if (options.accelerate) {
        // Catalyst extrapolation.
        for (std::size_t j = 0; j < dim; ++j) {
          y_t[j] = sv.x[j] + zeta * (sv.x[j] - x_prev[j]);
        }
        nadmm::flops::add(3 * dim);
        la::copy(sv.x, x_prev);
      }
      la::copy(sv.x, w);

      if (options.record_trace) recorder.record(k + 1, w);
    }
    if (ctx.is_root()) result.x = w;
  });

  if (result.iterations > 0) {
    result.avg_epoch_sim_seconds = result.total_sim_seconds / result.iterations;
  }
  return result;
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
core::RunResult inexact_dane(comm::SimCluster& cluster,
                             const data::Dataset& train,
                             const data::Dataset* test,
                             const DaneOptions& options) {
  data::ShardPlan plan;
  plan.parts = cluster.size();
  return inexact_dane(cluster, data::make_sharded(train, test, plan), options);
}
#pragma GCC diagnostic pop

}  // namespace nadmm::baselines
