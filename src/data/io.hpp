// Dataset file I/O.
//
// LIBSVM format (sparse, `label idx:value ...`, 1-based indices) and a
// simple dense CSV (`label,f0,f1,...`). Loaders let users run the solver
// stack on the real HIGGS / MNIST / CIFAR-10 / E18 data unchanged.
#pragma once

#include <string>

#include "data/dataset.hpp"

namespace nadmm::data {

/// Load a LIBSVM file as a sparse dataset. Labels may be arbitrary
/// integers; they are remapped to [0, C) in ascending order.
/// `num_features` = 0 infers the dimension from the file.
Dataset load_libsvm(const std::string& path, std::size_t num_features = 0);

/// Write a dataset (dense or sparse) in LIBSVM format.
void save_libsvm(const Dataset& ds, const std::string& path);

/// Load a dense CSV: one sample per line, first column is the integer
/// label (already in [0, C)), remaining columns are features.
Dataset load_csv(const std::string& path, int num_classes);

/// Write a dense dataset as CSV (label first).
void save_csv(const Dataset& ds, const std::string& path);

}  // namespace nadmm::data
