// Dataset file I/O.
//
// LIBSVM format (sparse, `label idx:value ...`, 1-based indices) and a
// simple dense CSV (`label,f0,f1,...`). Loaders let users run the solver
// stack on the real HIGGS / MNIST / CIFAR-10 / E18 data unchanged.
//
// LIBSVM files can also be consumed as bounded-memory row shards via
// `LibsvmShardReader`, so paper-scale inputs never have to fit in memory
// at once: `scan_libsvm` makes one streaming pass to fix the global label
// set and feature dimension, then every shard agrees on both. All parsing
// is strict: malformed input fails with a `path:line:` message rather
// than silently misparsing (e.g. `1x:2` or `1:2.5junk`).
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "data/partition.hpp"

namespace nadmm::data {

/// Load a LIBSVM file as a sparse dataset. Labels may be arbitrary
/// integers; they are remapped to [0, C) in ascending order.
/// `num_features` = 0 infers the dimension from the file.
Dataset load_libsvm(const std::string& path, std::size_t num_features = 0);

/// Write a dataset (dense or sparse) in LIBSVM format.
void save_libsvm(const Dataset& ds, const std::string& path);

/// Global metadata gathered by one streaming pass over a LIBSVM file
/// (O(1) memory beyond the distinct-label set).
struct LibsvmInfo {
  std::size_t num_rows = 0;
  std::size_t num_features = 0;            ///< max 1-based index seen
  std::vector<std::int64_t> label_values;  ///< distinct raw labels, ascending
};

/// Streaming pre-scan: row count, feature dimension and the label set.
/// Validates every line with the same strict parser the loaders use.
LibsvmInfo scan_libsvm(const std::string& path);

/// Incremental row-shard reader over a LIBSVM file. The feature dimension
/// and raw-label set are fixed up front (typically from `scan_libsvm`) so
/// every shard shares one consistent (p, C) shape; only `max_rows` rows
/// are resident at a time.
class LibsvmShardReader {
 public:
  LibsvmShardReader(const std::string& path, std::size_t num_features,
                    const std::vector<std::int64_t>& label_values);

  /// Read up to `max_rows` further rows as a sparse dataset. Returns an
  /// empty dataset (num_samples() == 0) once the file is exhausted.
  Dataset next_shard(std::size_t max_rows);

  [[nodiscard]] std::size_t rows_read() const { return rows_read_; }
  [[nodiscard]] bool done() const { return done_; }

 private:
  std::string path_;
  std::ifstream in_;
  std::size_t num_features_ = 0;
  std::map<std::int64_t, std::int32_t> label_map_;
  std::size_t line_no_ = 0;
  std::size_t rows_read_ = 0;
  bool done_ = false;
};

/// Stream a LIBSVM file into a (train, test) pair: the first `n_train`
/// rows train, the next `n_test` rows test. `n_train` = 0 means "all rows
/// not claimed by the test split". Both splits share the file-global
/// feature dimension and label mapping. Throws when the file has fewer
/// than `n_train + n_test` rows.
TrainTest load_libsvm_train_test(const std::string& path, std::size_t n_train,
                                 std::size_t n_test,
                                 std::size_t num_features = 0);

/// Stream a LIBSVM file *directly into per-rank shards* under `plan`:
/// the first `train_rows` rows (0 = all rows not claimed by the test
/// split) are routed row-by-row into each rank's train shard, the next
/// `n_test` rows into its test shard, and the full matrix is never
/// assembled in one allocation — peak resident dataset bytes stay at the
/// sum of the shards instead of full + copies. With `standardize`, a
/// second streaming pass fits the sparse max-abs scale on the train rows
/// first (max is order-independent, so the fit — and therefore every
/// shard — is bit-identical to materializing the file and running
/// data::Standardizer). The returned ShardedDataset has no full_train /
/// full_test; resident_bytes is the summed shard footprint.
ShardedDataset load_libsvm_sharded(const std::string& path,
                                   std::size_t train_rows, std::size_t n_test,
                                   const ShardPlan& plan, bool standardize);

/// Load a dense CSV: one sample per line, first column is the integer
/// label (already in [0, C)), remaining columns are features.
Dataset load_csv(const std::string& path, int num_classes);

/// Write a dense dataset as CSV (label first).
void save_csv(const Dataset& ds, const std::string& path);

}  // namespace nadmm::data
