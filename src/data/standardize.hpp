// Feature scaling.
//
// Dense data: per-feature z-scoring (mean 0, std 1), fit on the training
// split only. Sparse data: per-feature max-abs scaling, which preserves
// sparsity (zero stays zero) — the standard choice for count features.
#pragma once

#include <vector>

#include "data/dataset.hpp"

namespace nadmm::data {

class Standardizer {
 public:
  /// Learn scaling parameters from `train`.
  void fit(const Dataset& train);

  /// Return a scaled copy. The dataset must have the same feature count
  /// and storage kind as the one `fit` saw.
  [[nodiscard]] Dataset transform(const Dataset& ds) const;

  [[nodiscard]] bool fitted() const { return fitted_; }
  [[nodiscard]] const std::vector<double>& shift() const { return shift_; }
  [[nodiscard]] const std::vector<double>& scale() const { return scale_; }

 private:
  bool fitted_ = false;
  bool sparse_mode_ = false;
  std::vector<double> shift_;  // dense: column mean; sparse: 0
  std::vector<double> scale_;  // dense: 1/std; sparse: 1/max-abs
};

}  // namespace nadmm::data
