// Dataset container: features (dense or CSR) + integer class labels.
//
// The objective code (src/model) is storage-agnostic: it calls the
// dispatching products below, so the same solver stack runs MNIST-like
// dense shards and E18-like sparse shards (DESIGN.md §2).
//
// Storage is shared, not owned per instance: a Dataset holds
// shared_ptr'd feature/label buffers plus a row range, so
// `Dataset::view(RowRange)` hands out a rank shard as O(1) metadata —
// no copy, and the shard keeps the parent storage alive even after the
// parent Dataset is gone. The dispatching products run on la::DenseView
// / la::CsrView row-range views, so a view shard computes in place on
// the parent's buffers (bit-identical to a copied shard; see
// la/kernels.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "la/dense_matrix.hpp"
#include "la/sparse_matrix.hpp"

namespace nadmm::data {

class Dataset {
 public:
  Dataset() = default;

  /// Dense dataset. Labels must be in [0, num_classes).
  static Dataset dense(la::DenseMatrix features, std::vector<std::int32_t> labels,
                       int num_classes);

  /// Sparse (CSR) dataset. Labels must be in [0, num_classes).
  static Dataset sparse(la::CsrMatrix features, std::vector<std::int32_t> labels,
                        int num_classes);

  [[nodiscard]] std::size_t num_samples() const { return row_count_; }
  [[nodiscard]] std::size_t num_features() const { return num_features_; }
  [[nodiscard]] int num_classes() const { return num_classes_; }
  [[nodiscard]] bool is_sparse() const { return is_sparse_; }
  [[nodiscard]] bool empty() const { return row_count_ == 0; }

  [[nodiscard]] std::span<const std::int32_t> labels() const {
    if (labels_ == nullptr) return {};
    return {labels_->data() + row_begin_, row_count_};
  }

  /// Whole stored feature matrix. Throws unless the dataset is
  /// dense / sparse respectively, or when this dataset is a proper
  /// sub-view (use dense_view() / csr_view() for shards).
  [[nodiscard]] const la::DenseMatrix& dense_features() const;
  [[nodiscard]] const la::CsrMatrix& sparse_features() const;

  /// Row-range feature views over the shared storage (valid while any
  /// Dataset sharing the storage is alive).
  [[nodiscard]] la::DenseView dense_view() const;
  [[nodiscard]] la::CsrView csr_view() const;

  /// O(1) zero-copy view of rows [begin, end) of this dataset. The view
  /// shares (and keeps alive) this dataset's storage.
  [[nodiscard]] Dataset view(std::size_t begin, std::size_t end) const;

  /// True when this dataset references only part of its shared storage
  /// (a rank shard or minibatch view).
  [[nodiscard]] bool is_view() const;

  /// Contiguous row shard [begin, end) as an owning deep copy. Prefer
  /// view() on hot paths; this remains for callers that need detached
  /// storage (and as the oracle for view-vs-copy bit-identity tests).
  [[nodiscard]] Dataset row_slice(std::size_t begin, std::size_t end) const;

  /// S = A · X  (A = features, n×p; X: p×c; S: n×c).
  void scores(const la::DenseMatrix& x, la::DenseMatrix& s) const;

  /// G = alpha · Aᵀ · W + beta · G  (W: n×c; G: p×c).
  void accumulate_gradient(double alpha, const la::DenseMatrix& w, double beta,
                           la::DenseMatrix& g) const;

  /// Per-class sample counts (diagnostics and stratified checks).
  [[nodiscard]] std::vector<std::size_t> class_histogram() const;

  /// Fraction of nonzero feature entries (1.0 reported for dense data is
  /// the true stored density of the dense buffer).
  [[nodiscard]] double feature_density() const;

  /// Resident bytes this dataset is responsible for: the full feature +
  /// label storage for an owning dataset, and 0 for a proper sub-view
  /// (its storage is accounted to the parent). Used by the
  /// DatasetProvider's LRU byte budget and the sweep's
  /// peak_dataset_bytes column.
  [[nodiscard]] std::size_t approx_bytes() const;

 private:
  [[nodiscard]] std::size_t storage_rows() const;

  bool is_sparse_ = false;
  std::size_t num_features_ = 0;
  int num_classes_ = 0;
  std::shared_ptr<const la::DenseMatrix> dense_;
  std::shared_ptr<const la::CsrMatrix> sparse_;
  std::shared_ptr<const std::vector<std::int32_t>> labels_;
  std::size_t row_begin_ = 0;
  std::size_t row_count_ = 0;
};

/// A train/test pair drawn from the same source (generator or file).
struct TrainTest {
  Dataset train;
  Dataset test;

  /// Combined resident size, used by the DatasetProvider byte budget.
  [[nodiscard]] std::size_t approx_bytes() const {
    return train.approx_bytes() + test.approx_bytes();
  }
};

}  // namespace nadmm::data
