// Dataset container: features (dense or CSR) + integer class labels.
//
// The objective code (src/model) is storage-agnostic: it calls the
// dispatching products below, so the same solver stack runs MNIST-like
// dense shards and E18-like sparse shards (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "la/dense_matrix.hpp"
#include "la/sparse_matrix.hpp"

namespace nadmm::data {

class Dataset {
 public:
  Dataset() = default;

  /// Dense dataset. Labels must be in [0, num_classes).
  static Dataset dense(la::DenseMatrix features, std::vector<std::int32_t> labels,
                       int num_classes);

  /// Sparse (CSR) dataset. Labels must be in [0, num_classes).
  static Dataset sparse(la::CsrMatrix features, std::vector<std::int32_t> labels,
                        int num_classes);

  [[nodiscard]] std::size_t num_samples() const { return labels_.size(); }
  [[nodiscard]] std::size_t num_features() const { return num_features_; }
  [[nodiscard]] int num_classes() const { return num_classes_; }
  [[nodiscard]] bool is_sparse() const { return is_sparse_; }
  [[nodiscard]] bool empty() const { return labels_.empty(); }

  [[nodiscard]] std::span<const std::int32_t> labels() const { return labels_; }

  /// Throws unless the dataset is dense / sparse respectively.
  [[nodiscard]] const la::DenseMatrix& dense_features() const;
  [[nodiscard]] const la::CsrMatrix& sparse_features() const;

  /// Contiguous row shard [begin, end).
  [[nodiscard]] Dataset row_slice(std::size_t begin, std::size_t end) const;

  /// S = A · X  (A = features, n×p; X: p×c; S: n×c).
  void scores(const la::DenseMatrix& x, la::DenseMatrix& s) const;

  /// G = alpha · Aᵀ · W + beta · G  (W: n×c; G: p×c).
  void accumulate_gradient(double alpha, const la::DenseMatrix& w, double beta,
                           la::DenseMatrix& g) const;

  /// Per-class sample counts (diagnostics and stratified checks).
  [[nodiscard]] std::vector<std::size_t> class_histogram() const;

  /// Fraction of nonzero feature entries (1.0 reported for dense data is
  /// the true stored density of the dense buffer).
  [[nodiscard]] double feature_density() const;

  /// Approximate resident size of the feature + label buffers, used by
  /// the DatasetProvider's LRU byte budget (src/data/provider.hpp).
  [[nodiscard]] std::size_t approx_bytes() const;

 private:
  bool is_sparse_ = false;
  std::size_t num_features_ = 0;
  int num_classes_ = 0;
  la::DenseMatrix dense_;
  la::CsrMatrix sparse_;
  std::vector<std::int32_t> labels_;
};

/// A train/test pair drawn from the same source (generator or file).
struct TrainTest {
  Dataset train;
  Dataset test;

  /// Combined resident size, used by the DatasetProvider byte budget.
  [[nodiscard]] std::size_t approx_bytes() const {
    return train.approx_bytes() + test.approx_bytes();
  }
};

}  // namespace nadmm::data
