// Synthetic dataset generators matching the paper's evaluation datasets.
//
// We do not have the real HIGGS / MNIST / CIFAR-10 / E18 data in this
// environment, so each generator reproduces the *axes the figures depend
// on* (DESIGN.md §2): class count, feature dimension, conditioning, and
// sparsity. Generation is deterministic (per-sample derived RNG streams,
// independent of thread count) so every experiment is reproducible.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.hpp"

namespace nadmm::data {

// TrainTest lives in data/dataset.hpp (shared with the file loaders and
// the DatasetProvider).

/// Paper Table 1 metadata, used by the Table-1 bench to print the
/// paper-scale numbers next to the generated ones.
struct PaperDatasetInfo {
  std::string name;
  int classes;
  std::size_t samples;
  std::size_t test_size;
  std::size_t features;
};

/// The four rows of the paper's Table 1.
std::vector<PaperDatasetInfo> paper_table1();

/// Generic Gaussian-blob multiclass problem (workhorse for unit tests):
/// class prototypes ~ N(0, (sep²/p)·I), samples = prototype + noise·N(0,I).
TrainTest make_blobs(std::size_t n_train, std::size_t n_test, std::size_t p,
                     int classes, double separation, double noise,
                     std::uint64_t seed);

/// HIGGS-like: binary, p=28, well-conditioned. Features are isotropic
/// normals plus a few quadratic "derived" features (as in the physics
/// dataset); labels from a ground-truth logistic model, so the problem is
/// realizable and the Hessian well-conditioned — the regime where the
/// paper observes both Newton-ADMM and GIANT converging in ~1 iteration.
TrainTest make_higgs_like(std::size_t n_train, std::size_t n_test,
                          std::uint64_t seed);

/// MNIST-like: 10 classes, p=784 pixel-like features in [0,1] with ~75%
/// zeros. Each class has a smooth random stroke prototype on a 28×28
/// grid; samples modulate intensity and add clipped noise.
TrainTest make_mnist_like(std::size_t n_train, std::size_t n_test,
                          std::uint64_t seed);

/// CIFAR-like: 10 classes, p=3072, deliberately ill-conditioned: features
/// are a windowed moving average of a latent normal field (banded, highly
/// correlated covariance, like neighbouring pixels), and class means are
/// small relative to the noise. This is the regime where GIANT needs many
/// more iterations than Newton-ADMM in the paper's Figure 3.
TrainTest make_cifar_like(std::size_t n_train, std::size_t n_test,
                          std::uint64_t seed);

/// E18-like: 20 classes, high-dimensional sparse nonnegative counts
/// (single-cell RNA-seq profile): ~4% density, per-class marker genes
/// with elevated Poisson rates, log1p-transformed. `p` is configurable
/// because the real dataset's 27,998 genes are scaled down by default.
TrainTest make_e18_like(std::size_t n_train, std::size_t n_test, std::size_t p,
                        std::uint64_t seed);

/// Dispatch by name: "higgs" | "mnist" | "cifar" | "e18" | "blobs".
/// `n_train`/`n_test` scale the problem; `p` is honoured for e18/blobs.
TrainTest make_by_name(const std::string& name, std::size_t n_train,
                       std::size_t n_test, std::size_t p, std::uint64_t seed);

}  // namespace nadmm::data
