#include "data/standardize.hpp"

#include <cmath>

#include "support/check.hpp"

namespace nadmm::data {

void Standardizer::fit(const Dataset& train) {
  NADMM_CHECK(!train.empty(), "Standardizer: empty training set");
  const std::size_t p = train.num_features();
  shift_.assign(p, 0.0);
  scale_.assign(p, 1.0);
  sparse_mode_ = train.is_sparse();

  if (sparse_mode_) {
    const auto& a = train.sparse_features();
    const auto ci = a.col_idx();
    const auto va = a.values();
    std::vector<double> max_abs(p, 0.0);
    for (std::size_t e = 0; e < a.nnz(); ++e) {
      const auto c = static_cast<std::size_t>(ci[e]);
      max_abs[c] = std::max(max_abs[c], std::abs(va[e]));
    }
    for (std::size_t j = 0; j < p; ++j) {
      scale_[j] = max_abs[j] > 0.0 ? 1.0 / max_abs[j] : 1.0;
    }
  } else {
    const auto& a = train.dense_features();
    const auto n = static_cast<double>(train.num_samples());
    for (std::size_t i = 0; i < train.num_samples(); ++i) {
      const auto row = a.row(i);
      for (std::size_t j = 0; j < p; ++j) shift_[j] += row[j];
    }
    for (std::size_t j = 0; j < p; ++j) shift_[j] /= n;
    std::vector<double> var(p, 0.0);
    for (std::size_t i = 0; i < train.num_samples(); ++i) {
      const auto row = a.row(i);
      for (std::size_t j = 0; j < p; ++j) {
        const double d = row[j] - shift_[j];
        var[j] += d * d;
      }
    }
    for (std::size_t j = 0; j < p; ++j) {
      const double sd = std::sqrt(var[j] / n);
      scale_[j] = sd > 1e-12 ? 1.0 / sd : 1.0;
    }
  }
  fitted_ = true;
}

Dataset Standardizer::transform(const Dataset& ds) const {
  NADMM_CHECK(fitted_, "Standardizer: transform before fit");
  NADMM_CHECK(ds.num_features() == shift_.size(),
              "Standardizer: feature count mismatch");
  NADMM_CHECK(ds.is_sparse() == sparse_mode_,
              "Standardizer: storage kind mismatch with fitted data");
  std::vector<std::int32_t> labels(ds.labels().begin(), ds.labels().end());

  if (sparse_mode_) {
    const auto& a = ds.sparse_features();
    std::vector<std::int64_t> rp(a.row_ptr().begin(), a.row_ptr().end());
    std::vector<std::int64_t> ci(a.col_idx().begin(), a.col_idx().end());
    std::vector<double> va(a.values().begin(), a.values().end());
    for (std::size_t e = 0; e < va.size(); ++e) {
      va[e] *= scale_[static_cast<std::size_t>(ci[e])];
    }
    la::CsrMatrix scaled(a.rows(), a.cols(), std::move(rp), std::move(ci),
                         std::move(va));
    return Dataset::sparse(std::move(scaled), std::move(labels),
                           ds.num_classes());
  }
  const auto& a = ds.dense_features();
  la::DenseMatrix scaled(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto src = a.row(i);
    auto dst = scaled.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) {
      dst[j] = (src[j] - shift_[j]) * scale_[j];
    }
  }
  return Dataset::dense(std::move(scaled), std::move(labels), ds.num_classes());
}

}  // namespace nadmm::data
