// DatasetProvider: one immutable copy of each dataset, shared across
// every consumer whose scenario differs only in knobs that do not affect
// the data (solver, workers, device, network, penalty, λ).
//
// Datasets are keyed by their content-defining parameters (source name,
// sample counts, feature dimension, seed, standardization). A `get` on a
// cached key returns the same `shared_ptr<const TrainTest>`; a miss
// generates (or loads) the dataset exactly once even when many scheduler
// threads request the same key concurrently (single-flight). Cached
// entries are evicted least-recently-used once the resident bytes exceed
// the provider's byte budget; evicted datasets stay alive for callers
// that still hold the pointer and are simply regenerated on the next
// request.
//
// Sources: any generator name accepted by data::make_by_name, or
// "libsvm:<path>" to stream a LIBSVM file from disk (io.hpp).
//
// `get_sharded` is the shard-native entry point: for in-memory sources it
// builds O(1) zero-copy rank views over the cached full dataset (nothing
// extra is cached — the views share the full entry's storage); for
// `libsvm:` sources it streams the file *directly into per-rank shards*
// (io.hpp load_libsvm_sharded), so the full matrix never exists in one
// allocation. Streamed sharded entries are cached under key ⊕ shard-plan
// and account the summed per-shard bytes against the same LRU budget.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "data/dataset.hpp"
#include "data/partition.hpp"

namespace nadmm::data {

/// Content-defining parameters of a dataset. Two keys comparing equal
/// means the corresponding datasets are byte-identical.
struct DatasetKey {
  std::string source;        ///< generator name or "libsvm:<path>"
  std::size_t n_train = 0;
  std::size_t n_test = 0;
  std::size_t features = 0;  ///< p knob (honoured by e18/blobs; 0 = infer)
  std::uint64_t seed = 0;
  bool standardize = false;  ///< z-score the splits after generation

  bool operator==(const DatasetKey&) const = default;

  /// True for file-backed sources that can stream into per-rank shards.
  [[nodiscard]] bool is_streamable() const {
    return source.rfind("libsvm:", 0) == 0;
  }

  /// Canonical string form — the cache-map key and journal/debug label.
  [[nodiscard]] std::string cache_tag() const;
};

/// Generate or load the dataset a key names (no caching). Shared by the
/// provider and the one-shot `runner::make_data` path.
TrainTest generate_dataset(const DatasetKey& key);

/// Sharded analogue of generate_dataset: streams `libsvm:` sources
/// directly into per-rank shards, and shards everything else as zero-copy
/// views of the materialized data (no caching).
ShardedDataset generate_sharded_dataset(const DatasetKey& key,
                                        const ShardPlan& plan);

class DatasetProvider {
 public:
  /// Default budget: large enough that paper-scale sweeps share every
  /// dataset, small enough to bound an unbounded grid.
  static constexpr std::size_t kDefaultByteBudget = 2ull << 30;  // 2 GiB

  explicit DatasetProvider(std::size_t byte_budget = kDefaultByteBudget);

  /// Fetch the dataset for `key`, generating it on a miss. Thread-safe;
  /// concurrent misses on one key generate once and share the result.
  std::shared_ptr<const TrainTest> get(const DatasetKey& key);

  /// Fetch the per-rank sharding of `key` under `plan`. In-memory
  /// sources: zero-copy views over the cached full dataset (one cache
  /// entry regardless of plan). Streamed sources: a dedicated cached
  /// entry per (key, plan) holding the per-rank shards, with their
  /// summed bytes in the LRU budget.
  std::shared_ptr<const ShardedDataset> get_sharded(const DatasetKey& key,
                                                    const ShardPlan& plan);

  /// Change the byte budget; evicts immediately if now over budget.
  void set_byte_budget(std::size_t bytes);
  [[nodiscard]] std::size_t byte_budget() const;

  /// Resident bytes across cached entries (excludes evicted datasets
  /// callers still hold).
  [[nodiscard]] std::size_t bytes_in_use() const;

  struct Stats {
    std::size_t generations = 0;  ///< datasets actually generated/loaded
    std::size_t hits = 0;         ///< gets served from cache
    std::size_t misses = 0;       ///< gets that had to generate
    std::size_t evictions = 0;    ///< entries dropped by the LRU budget
  };
  [[nodiscard]] Stats stats() const;

  /// Drop every cached entry (callers' shared_ptrs stay valid).
  void clear();

 private:
  struct Slot;

  /// One cached value: either a full TrainTest or a streamed
  /// ShardedDataset (exactly one pointer is set per entry).
  struct Entry {
    std::shared_ptr<const TrainTest> full;
    std::shared_ptr<const ShardedDataset> sharded;

    [[nodiscard]] std::size_t bytes() const {
      if (full != nullptr) return full->approx_bytes();
      if (sharded != nullptr) return sharded->resident_bytes;
      return 0;
    }
  };

  std::shared_ptr<const Entry> get_entry(const std::string& tag,
                                         const std::function<Entry()>& make);
  void evict_over_budget_locked(const std::string& keep_tag);

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Slot>> entries_;
  std::list<std::string> lru_;  ///< most-recent first
  std::size_t byte_budget_;
  std::size_t bytes_in_use_ = 0;
  Stats stats_;
};

}  // namespace nadmm::data
