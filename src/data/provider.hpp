// DatasetProvider: one immutable copy of each dataset, shared across
// every consumer whose scenario differs only in knobs that do not affect
// the data (solver, workers, device, network, penalty, λ).
//
// Datasets are keyed by their content-defining parameters (source name,
// sample counts, feature dimension, seed, standardization). A `get` on a
// cached key returns the same `shared_ptr<const TrainTest>`; a miss
// generates (or loads) the dataset exactly once even when many scheduler
// threads request the same key concurrently (single-flight). Cached
// entries are evicted least-recently-used once the resident bytes exceed
// the provider's byte budget; evicted datasets stay alive for callers
// that still hold the pointer and are simply regenerated on the next
// request.
//
// Sources: any generator name accepted by data::make_by_name, or
// "libsvm:<path>" to stream a LIBSVM file from disk as row shards
// (io.hpp) split into the keyed train/test sizes.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "data/dataset.hpp"

namespace nadmm::data {

/// Content-defining parameters of a dataset. Two keys comparing equal
/// means the corresponding datasets are byte-identical.
struct DatasetKey {
  std::string source;        ///< generator name or "libsvm:<path>"
  std::size_t n_train = 0;
  std::size_t n_test = 0;
  std::size_t features = 0;  ///< p knob (honoured by e18/blobs; 0 = infer)
  std::uint64_t seed = 0;
  bool standardize = false;  ///< z-score the splits after generation

  bool operator==(const DatasetKey&) const = default;

  /// Canonical string form — the cache-map key and journal/debug label.
  [[nodiscard]] std::string cache_tag() const;
};

/// Generate or load the dataset a key names (no caching). Shared by the
/// provider and the one-shot `runner::make_data` path.
TrainTest generate_dataset(const DatasetKey& key);

class DatasetProvider {
 public:
  /// Default budget: large enough that paper-scale sweeps share every
  /// dataset, small enough to bound an unbounded grid.
  static constexpr std::size_t kDefaultByteBudget = 2ull << 30;  // 2 GiB

  explicit DatasetProvider(std::size_t byte_budget = kDefaultByteBudget);

  /// Fetch the dataset for `key`, generating it on a miss. Thread-safe;
  /// concurrent misses on one key generate once and share the result.
  std::shared_ptr<const TrainTest> get(const DatasetKey& key);

  /// Change the byte budget; evicts immediately if now over budget.
  void set_byte_budget(std::size_t bytes);
  [[nodiscard]] std::size_t byte_budget() const;

  /// Resident bytes across cached entries (excludes evicted datasets
  /// callers still hold).
  [[nodiscard]] std::size_t bytes_in_use() const;

  struct Stats {
    std::size_t generations = 0;  ///< datasets actually generated/loaded
    std::size_t hits = 0;         ///< gets served from cache
    std::size_t misses = 0;       ///< gets that had to generate
    std::size_t evictions = 0;    ///< entries dropped by the LRU budget
  };
  [[nodiscard]] Stats stats() const;

  /// Drop every cached entry (callers' shared_ptrs stay valid).
  void clear();

 private:
  struct Slot;

  void evict_over_budget_locked(const std::string& keep_tag);

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Slot>> entries_;
  std::list<std::string> lru_;  ///< most-recent first
  std::size_t byte_budget_;
  std::size_t bytes_in_use_ = 0;
  Stats stats_;
};

}  // namespace nadmm::data
