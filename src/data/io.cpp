#include "data/io.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "support/check.hpp"

namespace nadmm::data {

Dataset load_libsvm(const std::string& path, std::size_t num_features) {
  std::ifstream in(path);
  if (!in) throw RuntimeError("cannot open LIBSVM file: " + path);

  std::vector<std::int64_t> row_ptr{0};
  std::vector<std::int64_t> col_idx;
  std::vector<double> values;
  std::vector<std::int64_t> raw_labels;
  std::size_t max_col = 0;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::int64_t label = 0;
    if (!(ls >> label)) {
      throw RuntimeError(path + ":" + std::to_string(line_no) +
                         ": cannot parse label");
    }
    raw_labels.push_back(label);
    std::string token;
    std::int64_t prev_idx = 0;
    while (ls >> token) {
      const auto colon = token.find(':');
      if (colon == std::string::npos) {
        throw RuntimeError(path + ":" + std::to_string(line_no) +
                           ": malformed feature token '" + token + "'");
      }
      const std::int64_t idx = std::stoll(token.substr(0, colon));
      const double val = std::stod(token.substr(colon + 1));
      if (idx < 1) {
        throw RuntimeError(path + ":" + std::to_string(line_no) +
                           ": LIBSVM indices are 1-based");
      }
      if (idx <= prev_idx) {
        throw RuntimeError(path + ":" + std::to_string(line_no) +
                           ": feature indices must be strictly increasing");
      }
      prev_idx = idx;
      col_idx.push_back(idx - 1);
      values.push_back(val);
      max_col = std::max(max_col, static_cast<std::size_t>(idx));
    }
    row_ptr.push_back(static_cast<std::int64_t>(values.size()));
  }

  const std::size_t p = num_features > 0 ? num_features : max_col;
  NADMM_CHECK(max_col <= p, "load_libsvm: file has feature index beyond " +
                                std::to_string(p));

  // Remap labels to [0, C) in ascending order of the raw values.
  std::map<std::int64_t, std::int32_t> remap;
  for (std::int64_t l : raw_labels) remap.emplace(l, 0);
  std::int32_t next = 0;
  for (auto& [raw, mapped] : remap) mapped = next++;
  std::vector<std::int32_t> labels;
  labels.reserve(raw_labels.size());
  for (std::int64_t l : raw_labels) labels.push_back(remap.at(l));

  la::CsrMatrix features(raw_labels.size(), p, std::move(row_ptr),
                         std::move(col_idx), std::move(values));
  return Dataset::sparse(std::move(features), std::move(labels),
                         std::max<std::int32_t>(next, 2));
}

void save_libsvm(const Dataset& ds, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw RuntimeError("cannot open file for writing: " + path);
  const auto labels = ds.labels();
  char buf[64];
  if (ds.is_sparse()) {
    const auto& a = ds.sparse_features();
    const auto rp = a.row_ptr();
    const auto ci = a.col_idx();
    const auto va = a.values();
    for (std::size_t i = 0; i < ds.num_samples(); ++i) {
      out << labels[i];
      for (std::int64_t e = rp[i]; e < rp[i + 1]; ++e) {
        std::snprintf(buf, sizeof buf, " %lld:%.17g",
                      static_cast<long long>(ci[e] + 1), va[e]);
        out << buf;
      }
      out << '\n';
    }
  } else {
    const auto& a = ds.dense_features();
    for (std::size_t i = 0; i < ds.num_samples(); ++i) {
      out << labels[i];
      const auto row = a.row(i);
      for (std::size_t j = 0; j < row.size(); ++j) {
        if (row[j] == 0.0) continue;
        std::snprintf(buf, sizeof buf, " %lld:%.17g",
                      static_cast<long long>(j + 1), row[j]);
        out << buf;
      }
      out << '\n';
    }
  }
}

Dataset load_csv(const std::string& path, int num_classes) {
  std::ifstream in(path);
  if (!in) throw RuntimeError("cannot open CSV file: " + path);
  std::vector<std::vector<double>> rows;
  std::vector<std::int32_t> labels;
  std::string line;
  std::size_t line_no = 0;
  std::size_t p = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<double> vals;
    std::stringstream ls(line);
    std::string cell;
    while (std::getline(ls, cell, ',')) vals.push_back(std::stod(cell));
    NADMM_CHECK(vals.size() >= 2, path + ":" + std::to_string(line_no) +
                                      ": need label plus >=1 feature");
    if (p == 0) {
      p = vals.size() - 1;
    } else {
      NADMM_CHECK(vals.size() - 1 == p,
                  path + ":" + std::to_string(line_no) + ": ragged row");
    }
    labels.push_back(static_cast<std::int32_t>(vals[0]));
    vals.erase(vals.begin());
    rows.push_back(std::move(vals));
  }
  la::DenseMatrix x(rows.size(), p);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::copy(rows[i].begin(), rows[i].end(), x.row(i).begin());
  }
  return Dataset::dense(std::move(x), std::move(labels), num_classes);
}

void save_csv(const Dataset& ds, const std::string& path) {
  NADMM_CHECK(!ds.is_sparse(), "save_csv supports dense datasets only");
  std::ofstream out(path);
  if (!out) throw RuntimeError("cannot open file for writing: " + path);
  const auto labels = ds.labels();
  const auto& a = ds.dense_features();
  char buf[64];
  for (std::size_t i = 0; i < ds.num_samples(); ++i) {
    out << labels[i];
    for (double v : a.row(i)) {
      std::snprintf(buf, sizeof buf, ",%.17g", v);
      out << buf;
    }
    out << '\n';
  }
}

}  // namespace nadmm::data
