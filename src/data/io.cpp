#include "data/io.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "support/check.hpp"

namespace nadmm::data {

namespace {

[[noreturn]] void parse_error(const std::string& path, std::size_t line_no,
                              const std::string& what) {
  throw RuntimeError(path + ":" + std::to_string(line_no) + ": " + what);
}

/// from_chars does not recognize a leading '+', but LIBSVM files in the
/// wild label positive samples "+1" — accept exactly one.
std::string_view strip_plus(std::string_view token) {
  if (token.size() > 1 && token[0] == '+' && token[1] != '-') {
    token.remove_prefix(1);
  }
  return token;
}

/// Strict full-token integer parse: the whole token must be consumed, so
/// `12abc` is an error rather than a silent `12`.
bool parse_full_int(std::string_view token, std::int64_t& out) {
  token = strip_plus(token);
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

/// Strict full-token double parse; rejects trailing garbage and
/// non-finite values (`inf`/`nan` have no meaning as features here).
bool parse_full_double(std::string_view token, double& out) {
  token = strip_plus(token);
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end && std::isfinite(out);
}

struct LibsvmRow {
  std::int64_t label = 0;
  std::vector<std::int64_t> cols;  ///< 0-based, strictly increasing
  std::vector<double> vals;
};

/// `\r` from CRLF files, comment lines and blank lines are all handled by
/// the caller; this parses one data line strictly.
void parse_libsvm_row(const std::string& line, const std::string& path,
                      std::size_t line_no, LibsvmRow& row) {
  row.cols.clear();
  row.vals.clear();
  std::istringstream ls(line);
  std::string token;
  if (!(ls >> token)) parse_error(path, line_no, "empty data line");
  if (!parse_full_int(token, row.label)) {
    parse_error(path, line_no,
                "cannot parse label '" + token + "' (integer expected)");
  }
  std::int64_t prev_idx = 0;
  while (ls >> token) {
    const auto colon = token.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == token.size()) {
      parse_error(path, line_no,
                  "malformed feature token '" + token +
                      "' (expected index:value)");
    }
    std::int64_t idx = 0;
    if (!parse_full_int(std::string_view(token).substr(0, colon), idx)) {
      parse_error(path, line_no,
                  "non-numeric feature index in token '" + token + "'");
    }
    double val = 0.0;
    if (!parse_full_double(std::string_view(token).substr(colon + 1), val)) {
      parse_error(path, line_no,
                  "malformed feature value in token '" + token + "'");
    }
    if (idx < 1) parse_error(path, line_no, "LIBSVM indices are 1-based");
    if (idx <= prev_idx) {
      parse_error(path, line_no,
                  "feature indices must be strictly increasing (" +
                      std::to_string(idx) + " after " +
                      std::to_string(prev_idx) + ")");
    }
    prev_idx = idx;
    row.cols.push_back(idx - 1);
    row.vals.push_back(val);
  }
}

/// Strip CRLF remnants; returns true when the line carries data.
bool is_data_line(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return !line.empty() && line[0] != '#';
}

std::map<std::int64_t, std::int32_t> build_label_map(
    const std::vector<std::int64_t>& label_values) {
  // Tolerate duplicates / arbitrary order in the caller's vector: insert
  // first, then number in ascending raw-label order (the same remap
  // load_libsvm documents).
  std::map<std::int64_t, std::int32_t> map;
  for (const std::int64_t raw : label_values) map.emplace(raw, 0);
  std::int32_t next = 0;
  for (auto& [raw, mapped] : map) mapped = next++;
  return map;
}

}  // namespace

LibsvmInfo scan_libsvm(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw RuntimeError("cannot open LIBSVM file: " + path);
  LibsvmInfo info;
  std::map<std::int64_t, std::int32_t> labels;
  LibsvmRow row;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!is_data_line(line)) continue;
    parse_libsvm_row(line, path, line_no, row);
    ++info.num_rows;
    labels.emplace(row.label, 0);
    if (!row.cols.empty()) {
      info.num_features = std::max(
          info.num_features, static_cast<std::size_t>(row.cols.back() + 1));
    }
  }
  info.label_values.reserve(labels.size());
  for (const auto& [raw, _] : labels) info.label_values.push_back(raw);
  return info;
}

LibsvmShardReader::LibsvmShardReader(
    const std::string& path, std::size_t num_features,
    const std::vector<std::int64_t>& label_values)
    : path_(path), in_(path), num_features_(num_features),
      label_map_(build_label_map(label_values)) {
  if (!in_) throw RuntimeError("cannot open LIBSVM file: " + path);
  NADMM_CHECK(num_features_ > 0, "LibsvmShardReader needs num_features > 0");
  NADMM_CHECK(label_map_.size() >= 2,
              "LibsvmShardReader needs at least two label values");
}

Dataset LibsvmShardReader::next_shard(std::size_t max_rows) {
  NADMM_CHECK(max_rows > 0, "next_shard: max_rows must be positive");
  std::vector<std::int64_t> row_ptr{0};
  std::vector<std::int64_t> col_idx;
  std::vector<double> values;
  std::vector<std::int32_t> labels;

  LibsvmRow row;
  std::string line;
  while (labels.size() < max_rows && std::getline(in_, line)) {
    ++line_no_;
    if (!is_data_line(line)) continue;
    parse_libsvm_row(line, path_, line_no_, row);
    const auto it = label_map_.find(row.label);
    if (it == label_map_.end()) {
      parse_error(path_, line_no_,
                  "label " + std::to_string(row.label) +
                      " not in the reader's label set");
    }
    if (!row.cols.empty() &&
        static_cast<std::size_t>(row.cols.back()) >= num_features_) {
      parse_error(path_, line_no_,
                  "feature index " + std::to_string(row.cols.back() + 1) +
                      " beyond declared dimension " +
                      std::to_string(num_features_));
    }
    labels.push_back(it->second);
    col_idx.insert(col_idx.end(), row.cols.begin(), row.cols.end());
    values.insert(values.end(), row.vals.begin(), row.vals.end());
    row_ptr.push_back(static_cast<std::int64_t>(values.size()));
  }
  if (labels.empty()) {
    done_ = true;
    return {};
  }
  rows_read_ += labels.size();
  la::CsrMatrix features(labels.size(), num_features_, std::move(row_ptr),
                         std::move(col_idx), std::move(values));
  return Dataset::sparse(std::move(features), std::move(labels),
                         static_cast<int>(label_map_.size()));
}

Dataset load_libsvm(const std::string& path, std::size_t num_features) {
  // Single pass: buffer rows with their raw labels, remap at the end
  // (sharded consumers pay the extra scan_libsvm pass instead so every
  // shard agrees on (p, C); the whole-file path does not need to).
  std::ifstream in(path);
  if (!in) throw RuntimeError("cannot open LIBSVM file: " + path);

  std::vector<std::int64_t> row_ptr{0};
  std::vector<std::int64_t> col_idx;
  std::vector<double> values;
  std::vector<std::int64_t> raw_labels;
  std::size_t max_col = 0;

  LibsvmRow row;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!is_data_line(line)) continue;
    parse_libsvm_row(line, path, line_no, row);
    raw_labels.push_back(row.label);
    if (!row.cols.empty()) {
      max_col = std::max(max_col, static_cast<std::size_t>(row.cols.back() + 1));
    }
    col_idx.insert(col_idx.end(), row.cols.begin(), row.cols.end());
    values.insert(values.end(), row.vals.begin(), row.vals.end());
    row_ptr.push_back(static_cast<std::int64_t>(values.size()));
  }
  NADMM_CHECK(!raw_labels.empty(), "load_libsvm: " + path + " has no samples");

  const std::size_t p = num_features > 0 ? num_features : max_col;
  NADMM_CHECK(max_col <= p, "load_libsvm: " + path +
                                " has feature index beyond " +
                                std::to_string(p));

  // Remap labels to [0, C) in ascending order of the raw values.
  std::map<std::int64_t, std::int32_t> remap;
  for (const std::int64_t l : raw_labels) remap.emplace(l, 0);
  std::int32_t next = 0;
  for (auto& [raw, mapped] : remap) mapped = next++;
  std::vector<std::int32_t> labels;
  labels.reserve(raw_labels.size());
  for (const std::int64_t l : raw_labels) labels.push_back(remap.at(l));

  la::CsrMatrix features(raw_labels.size(), p, std::move(row_ptr),
                         std::move(col_idx), std::move(values));
  return Dataset::sparse(std::move(features), std::move(labels),
                         std::max<std::int32_t>(next, 2));
}

TrainTest load_libsvm_train_test(const std::string& path, std::size_t n_train,
                                 std::size_t n_test,
                                 std::size_t num_features) {
  const LibsvmInfo info = scan_libsvm(path);
  const std::size_t p = num_features > 0 ? num_features : info.num_features;
  NADMM_CHECK(info.num_features <= p,
              "load_libsvm_train_test: " + path +
                  " has feature index beyond " + std::to_string(p));
  NADMM_CHECK(info.label_values.size() >= 2,
              "load_libsvm_train_test: " + path +
                  " needs at least two distinct labels");
  NADMM_CHECK(n_test < info.num_rows,
              "load_libsvm_train_test: test split (" + std::to_string(n_test) +
                  " rows) leaves no training rows in " + path);
  const std::size_t train_rows =
      n_train > 0 ? n_train : info.num_rows - n_test;
  NADMM_CHECK(train_rows + n_test <= info.num_rows,
              "load_libsvm_train_test: " + path + " has " +
                  std::to_string(info.num_rows) + " rows; need " +
                  std::to_string(train_rows + n_test));

  LibsvmShardReader reader(path, p, info.label_values);
  TrainTest tt;
  tt.train = reader.next_shard(train_rows);
  if (n_test > 0) tt.test = reader.next_shard(n_test);
  return tt;
}

namespace {

/// Streaming row router: maps the i-th row of an n-row split to its rank
/// under a plan. Contiguous/weighted walk the precomputed ranges with a
/// cursor (rows arrive in order); strided is i mod parts.
class ShardRouter {
 public:
  ShardRouter(const ShardPlan& plan, std::size_t n) : plan_(&plan) {
    if (plan.mode != PartitionMode::kStrided) ranges_ = plan.ranges(n);
  }

  [[nodiscard]] std::size_t rank_of(std::size_t i) {
    if (plan_->mode == PartitionMode::kStrided) {
      return i % static_cast<std::size_t>(plan_->parts);
    }
    while (i >= ranges_[at_].end) ++at_;
    return at_;
  }

 private:
  const ShardPlan* plan_;
  std::vector<RowRange> ranges_;
  std::size_t at_ = 0;
};

/// Per-rank CSR shard under construction.
struct ShardBuilder {
  std::vector<std::int64_t> row_ptr{0};
  std::vector<std::int64_t> col_idx;
  std::vector<double> values;
  std::vector<std::int32_t> labels;

  void append(const LibsvmRow& row, std::int32_t label,
              std::span<const double> scale) {
    labels.push_back(label);
    for (std::size_t e = 0; e < row.cols.size(); ++e) {
      const auto c = static_cast<std::size_t>(row.cols[e]);
      col_idx.push_back(row.cols[e]);
      values.push_back(scale.empty() ? row.vals[e] : row.vals[e] * scale[c]);
    }
    row_ptr.push_back(static_cast<std::int64_t>(values.size()));
  }

  [[nodiscard]] Dataset build(std::size_t num_features, int num_classes) {
    la::CsrMatrix features(labels.size(), num_features, std::move(row_ptr),
                           std::move(col_idx), std::move(values));
    return Dataset::sparse(std::move(features), std::move(labels),
                           num_classes);
  }
};

}  // namespace

ShardedDataset load_libsvm_sharded(const std::string& path,
                                   std::size_t train_rows, std::size_t n_test,
                                   const ShardPlan& plan, bool standardize) {
  NADMM_CHECK(plan.parts >= 1, "load_libsvm_sharded: need >= 1 part");
  const LibsvmInfo info = scan_libsvm(path);
  const std::size_t p = info.num_features;
  NADMM_CHECK(info.label_values.size() >= 2,
              "load_libsvm_sharded: " + path +
                  " needs at least two distinct labels");
  NADMM_CHECK(n_test < info.num_rows,
              "load_libsvm_sharded: test split (" + std::to_string(n_test) +
                  " rows) leaves no training rows in " + path);
  const std::size_t n_train =
      train_rows > 0 ? train_rows : info.num_rows - n_test;
  NADMM_CHECK(n_train + n_test <= info.num_rows,
              "load_libsvm_sharded: " + path + " has " +
                  std::to_string(info.num_rows) + " rows; need " +
                  std::to_string(n_train + n_test));
  const auto label_map = build_label_map(info.label_values);
  const int num_classes = static_cast<int>(label_map.size());

  // Streaming standardize, pass 1 of 2: per-column max-abs over exactly
  // the train rows. Max is order-independent, so the resulting scale —
  // and every value scaled by it in pass 2 — is bit-identical to fitting
  // data::Standardizer on the materialized train split.
  std::vector<double> scale;
  if (standardize) {
    std::ifstream in(path);
    if (!in) throw RuntimeError("cannot open LIBSVM file: " + path);
    std::vector<double> max_abs(p, 0.0);
    LibsvmRow row;
    std::string line;
    std::size_t line_no = 0;
    std::size_t seen = 0;
    while (seen < n_train && std::getline(in, line)) {
      ++line_no;
      if (!is_data_line(line)) continue;
      parse_libsvm_row(line, path, line_no, row);
      for (std::size_t e = 0; e < row.cols.size(); ++e) {
        const auto c = static_cast<std::size_t>(row.cols[e]);
        max_abs[c] = std::max(max_abs[c], std::abs(row.vals[e]));
      }
      ++seen;
    }
    scale.assign(p, 1.0);
    for (std::size_t j = 0; j < p; ++j) {
      scale[j] = max_abs[j] > 0.0 ? 1.0 / max_abs[j] : 1.0;
    }
  }

  // Pass 2: route every row into its rank's builder as it is parsed.
  const auto parts = static_cast<std::size_t>(plan.parts);
  std::vector<ShardBuilder> train_builders(parts);
  std::vector<ShardBuilder> test_builders(parts);
  ShardRouter train_router(plan, n_train);
  ShardRouter test_router(plan, n_test);
  {
    std::ifstream in(path);
    if (!in) throw RuntimeError("cannot open LIBSVM file: " + path);
    LibsvmRow row;
    std::string line;
    std::size_t line_no = 0;
    std::size_t seen = 0;
    while (seen < n_train + n_test && std::getline(in, line)) {
      ++line_no;
      if (!is_data_line(line)) continue;
      parse_libsvm_row(line, path, line_no, row);
      const auto it = label_map.find(row.label);
      NADMM_ASSERT(it != label_map.end());  // scan fixed the label set
      const bool is_train = seen < n_train;
      ShardBuilder& builder =
          is_train
              ? train_builders[train_router.rank_of(seen)]
              : test_builders[test_router.rank_of(seen - n_train)];
      builder.append(row, it->second, scale);
      ++seen;
    }
    NADMM_CHECK(seen == n_train + n_test,
                "load_libsvm_sharded: " + path + " ended early");
  }

  ShardedDataset out;
  out.plan = plan;
  out.train_samples = n_train;
  out.test_samples = n_test;
  out.num_features = p;
  out.num_classes = num_classes;
  out.ranks.reserve(parts);
  for (std::size_t r = 0; r < parts; ++r) {
    RankData rd;
    rd.train = train_builders[r].build(p, num_classes);
    if (n_test > 0) rd.test = test_builders[r].build(p, num_classes);
    out.resident_bytes += rd.train.approx_bytes() + rd.test.approx_bytes();
    out.ranks.push_back(std::move(rd));
  }
  return out;
}

void save_libsvm(const Dataset& ds, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw RuntimeError("cannot open file for writing: " + path);
  const auto labels = ds.labels();
  char buf[64];
  if (ds.is_sparse()) {
    const auto& a = ds.sparse_features();
    const auto rp = a.row_ptr();
    const auto ci = a.col_idx();
    const auto va = a.values();
    for (std::size_t i = 0; i < ds.num_samples(); ++i) {
      out << labels[i];
      for (std::int64_t e = rp[i]; e < rp[i + 1]; ++e) {
        std::snprintf(buf, sizeof buf, " %lld:%.17g",
                      static_cast<long long>(ci[e] + 1), va[e]);
        out << buf;
      }
      out << '\n';
    }
  } else {
    const auto& a = ds.dense_features();
    for (std::size_t i = 0; i < ds.num_samples(); ++i) {
      out << labels[i];
      const auto row = a.row(i);
      for (std::size_t j = 0; j < row.size(); ++j) {
        if (row[j] == 0.0) continue;
        std::snprintf(buf, sizeof buf, " %lld:%.17g",
                      static_cast<long long>(j + 1), row[j]);
        out << buf;
      }
      out << '\n';
    }
  }
}

Dataset load_csv(const std::string& path, int num_classes) {
  std::ifstream in(path);
  if (!in) throw RuntimeError("cannot open CSV file: " + path);
  std::vector<std::vector<double>> rows;
  std::vector<std::int32_t> labels;
  std::string line;
  std::size_t line_no = 0;
  std::size_t p = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!is_data_line(line)) continue;
    std::vector<double> vals;
    std::stringstream ls(line);
    std::string cell;
    while (std::getline(ls, cell, ',')) {
      // Tolerate "label, 0.5" padding; the value itself stays strict.
      const auto b = cell.find_first_not_of(" \t");
      const auto e = cell.find_last_not_of(" \t");
      const std::string_view trimmed =
          b == std::string::npos
              ? std::string_view{}
              : std::string_view(cell).substr(b, e - b + 1);
      double v = 0.0;
      if (!parse_full_double(trimmed, v)) {
        parse_error(path, line_no, "malformed CSV number '" + cell + "'");
      }
      vals.push_back(v);
    }
    NADMM_CHECK(vals.size() >= 2, path + ":" + std::to_string(line_no) +
                                      ": need label plus >=1 feature");
    if (p == 0) {
      p = vals.size() - 1;
    } else {
      NADMM_CHECK(vals.size() - 1 == p,
                  path + ":" + std::to_string(line_no) + ": ragged row");
    }
    labels.push_back(static_cast<std::int32_t>(vals[0]));
    vals.erase(vals.begin());
    rows.push_back(std::move(vals));
  }
  la::DenseMatrix x(rows.size(), p);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::copy(rows[i].begin(), rows[i].end(), x.row(i).begin());
  }
  return Dataset::dense(std::move(x), std::move(labels), num_classes);
}

void save_csv(const Dataset& ds, const std::string& path) {
  NADMM_CHECK(!ds.is_sparse(), "save_csv supports dense datasets only");
  std::ofstream out(path);
  if (!out) throw RuntimeError("cannot open file for writing: " + path);
  const auto labels = ds.labels();
  const auto& a = ds.dense_features();
  char buf[64];
  for (std::size_t i = 0; i < ds.num_samples(); ++i) {
    out << labels[i];
    for (double v : a.row(i)) {
      std::snprintf(buf, sizeof buf, ",%.17g", v);
      out << buf;
    }
    out << '\n';
  }
}

}  // namespace nadmm::data
