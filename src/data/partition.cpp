#include "data/partition.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "la/sparse_matrix.hpp"
#include "support/check.hpp"
#include "support/topology.hpp"

namespace nadmm::data {

PartitionMode partition_mode_from_string(const std::string& name) {
  if (name == "contiguous") return PartitionMode::kContiguous;
  if (name == "strided") return PartitionMode::kStrided;
  if (name == "weighted") return PartitionMode::kWeighted;
  throw InvalidArgument("unknown partition mode '" + name +
                        "' (expected contiguous|strided|weighted)");
}

std::string to_string(PartitionMode mode) {
  switch (mode) {
    case PartitionMode::kContiguous: return "contiguous";
    case PartitionMode::kStrided: return "strided";
    case PartitionMode::kWeighted: return "weighted";
  }
  return "?";
}

std::vector<RowRange> partition_rows(std::size_t n, int parts) {
  NADMM_CHECK(parts >= 1, "partition_rows: parts must be >= 1");
  std::vector<RowRange> out;
  out.reserve(static_cast<std::size_t>(parts));
  const std::size_t base = n / static_cast<std::size_t>(parts);
  const std::size_t extra = n % static_cast<std::size_t>(parts);
  std::size_t at = 0;
  for (int r = 0; r < parts; ++r) {
    const std::size_t len = base + (static_cast<std::size_t>(r) < extra ? 1 : 0);
    out.push_back({at, at + len});
    at += len;
  }
  NADMM_ASSERT(at == n);
  return out;
}

std::vector<RowRange> partition_rows_weighted(std::size_t n,
                                              std::span<const double> weights) {
  NADMM_CHECK(!weights.empty(), "partition_rows_weighted: no weights");
  double total = 0.0;
  for (const double w : weights) {
    NADMM_CHECK(w > 0.0, "partition_rows_weighted: weights must be positive");
    total += w;
  }
  const std::size_t parts = weights.size();
  // Largest-remainder rounding: floor every quota, then hand the leftover
  // rows to the largest fractional parts (ties to the lower rank index).
  // Deterministic, and the sizes sum to n exactly.
  std::vector<std::size_t> size(parts, 0);
  std::vector<double> frac(parts, 0.0);
  std::size_t assigned = 0;
  for (std::size_t r = 0; r < parts; ++r) {
    const double quota = static_cast<double>(n) * weights[r] / total;
    size[r] = static_cast<std::size_t>(quota);
    frac[r] = quota - static_cast<double>(size[r]);
    assigned += size[r];
  }
  std::vector<std::size_t> order(parts);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return frac[a] > frac[b];
  });
  for (std::size_t i = 0; assigned < n; ++i) {
    ++size[order[i % parts]];
    ++assigned;
  }
  std::vector<RowRange> out;
  out.reserve(parts);
  std::size_t at = 0;
  for (std::size_t r = 0; r < parts; ++r) {
    out.push_back({at, at + size[r]});
    at += size[r];
  }
  NADMM_ASSERT(at == n);
  return out;
}

std::vector<RowRange> ShardPlan::ranges(std::size_t n) const {
  NADMM_CHECK(parts >= 1, "ShardPlan: parts must be >= 1");
  switch (mode) {
    case PartitionMode::kContiguous:
      return partition_rows(n, parts);
    case PartitionMode::kWeighted: {
      if (weights.empty()) return partition_rows(n, parts);
      NADMM_CHECK(static_cast<int>(weights.size()) == parts,
                  "ShardPlan: weight count != parts");
      return partition_rows_weighted(n, weights);
    }
    case PartitionMode::kStrided:
      break;
  }
  throw InvalidArgument("ShardPlan::ranges: strided shards are not contiguous");
}

std::string ShardPlan::cache_tag() const {
  std::string tag = to_string(mode) + std::to_string(parts);
  if (mode == PartitionMode::kWeighted && !weights.empty()) {
    tag += ':';
    char buf[32];
    for (std::size_t r = 0; r < weights.size(); ++r) {
      if (r > 0) tag += ';';
      std::snprintf(buf, sizeof buf, "%.17g", weights[r]);
      tag += buf;
    }
  }
  return tag;
}

std::vector<int> ShardPlan::placement(int node_count) const {
  NADMM_CHECK(parts >= 1, "ShardPlan::placement: parts must be >= 1");
  std::vector<int> node(static_cast<std::size_t>(parts), 0);
  if (node_count <= 1) return node;
  // Cumulative-weight cuts: rank r goes to the node whose share of the
  // total weight its running sum falls into. Contiguous rank blocks keep
  // a weighted plan's row ranges contiguous per node, and a heavy rank
  // advances the cursor further — so device-heavy shards spread across
  // sockets the same way their rows spread across ranks.
  const bool weighted = mode == PartitionMode::kWeighted &&
                        static_cast<int>(weights.size()) == parts;
  double total = 0.0;
  for (int r = 0; r < parts; ++r) {
    total += weighted ? weights[static_cast<std::size_t>(r)] : 1.0;
  }
  double acc = 0.0;
  int cur = 0;
  for (int r = 0; r < parts; ++r) {
    node[static_cast<std::size_t>(r)] = cur;
    acc += weighted ? weights[static_cast<std::size_t>(r)] : 1.0;
    while (cur + 1 < node_count &&
           acc * static_cast<double>(node_count) >=
               total * static_cast<double>(cur + 1)) {
      ++cur;
    }
  }
  return node;
}

Dataset shard_dataset(const Dataset& full, const ShardPlan& plan, int rank) {
  NADMM_CHECK(rank >= 0 && rank < plan.parts, "shard_dataset: bad rank");
  if (plan.mode == PartitionMode::kStrided) {
    return shard_strided(full, plan.parts, rank);
  }
  const auto ranges = plan.ranges(full.num_samples());
  const RowRange r = ranges[static_cast<std::size_t>(rank)];
  return full.view(r.begin, r.end);
}

Dataset shard_contiguous(const Dataset& full, int parts, int rank) {
  NADMM_CHECK(rank >= 0 && rank < parts, "shard_contiguous: bad rank");
  const auto ranges = partition_rows(full.num_samples(), parts);
  const RowRange r = ranges[static_cast<std::size_t>(rank)];
  return full.row_slice(r.begin, r.end);
}

Dataset shard_strided(const Dataset& full, int parts, int rank) {
  NADMM_CHECK(rank >= 0 && rank < parts, "shard_strided: bad rank");
  const std::size_t n = full.num_samples();
  std::vector<std::size_t> mine;
  for (std::size_t i = static_cast<std::size_t>(rank); i < n;
       i += static_cast<std::size_t>(parts)) {
    mine.push_back(i);
  }
  std::vector<std::int32_t> labels;
  labels.reserve(mine.size());
  const auto full_labels = full.labels();
  for (std::size_t i : mine) labels.push_back(full_labels[i]);

  if (!full.is_sparse()) {
    const la::DenseView src = full.dense_view();
    la::DenseMatrix x(mine.size(), full.num_features());
    for (std::size_t k = 0; k < mine.size(); ++k) {
      const auto row = src.row(mine[k]);
      std::copy(row.begin(), row.end(), x.row(k).begin());
    }
    return Dataset::dense(std::move(x), std::move(labels), full.num_classes());
  }
  const la::CsrView src = full.csr_view();
  const auto rp = src.row_ptr();
  const auto ci = src.col_idx();
  const auto va = src.values();
  std::vector<std::int64_t> row_ptr(mine.size() + 1, 0);
  for (std::size_t k = 0; k < mine.size(); ++k) {
    row_ptr[k + 1] = row_ptr[k] + (rp[mine[k] + 1] - rp[mine[k]]);
  }
  std::vector<std::int64_t> col_idx(static_cast<std::size_t>(row_ptr.back()));
  std::vector<double> values(static_cast<std::size_t>(row_ptr.back()));
  for (std::size_t k = 0; k < mine.size(); ++k) {
    auto dst = static_cast<std::size_t>(row_ptr[k]);
    for (std::int64_t e = rp[mine[k]]; e < rp[mine[k] + 1]; ++e, ++dst) {
      col_idx[dst] = ci[e];
      values[dst] = va[e];
    }
  }
  la::CsrMatrix shard(mine.size(), full.num_features(), std::move(row_ptr),
                      std::move(col_idx), std::move(values));
  return Dataset::sparse(std::move(shard), std::move(labels),
                         full.num_classes());
}

ShardedDataset make_sharded(const Dataset& train, const Dataset* test,
                            const ShardPlan& plan) {
  NADMM_CHECK(plan.parts >= 1, "make_sharded: need >= 1 part");
  ShardedDataset out;
  out.plan = plan;
  out.full_train = train;
  out.train_samples = train.num_samples();
  out.num_features = train.num_features();
  out.num_classes = train.num_classes();
  const bool have_test = test != nullptr && !test->empty();
  if (have_test) {
    out.full_test = *test;
    out.test_samples = test->num_samples();
  }
  out.ranks.reserve(static_cast<std::size_t>(plan.parts));
  for (int r = 0; r < plan.parts; ++r) {
    RankData rd;
    rd.train = shard_dataset(train, plan, r);
    if (have_test) rd.test = shard_dataset(*test, plan, r);
    out.ranks.push_back(std::move(rd));
  }
  // Resident bytes: the full storage plus whatever the shards own.
  // Contiguous/weighted shards are views sharing the full storage and add
  // nothing (a one-part "view" covers the whole set, so summing its
  // approx_bytes would double-count); strided gather copies add their
  // buffers.
  out.resident_bytes = train.approx_bytes();
  if (have_test) out.resident_bytes += test->approx_bytes();
  if (plan.mode == PartitionMode::kStrided) {
    for (const auto& rd : out.ranks) {
      out.resident_bytes += rd.train.approx_bytes() + rd.test.approx_bytes();
    }
  }
  out.numa_node = plan.placement(support::Topology::system().node_count());
  return out;
}

}  // namespace nadmm::data
