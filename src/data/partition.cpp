#include "data/partition.hpp"

#include "la/sparse_matrix.hpp"
#include "support/check.hpp"

namespace nadmm::data {

std::vector<RowRange> partition_rows(std::size_t n, int parts) {
  NADMM_CHECK(parts >= 1, "partition_rows: parts must be >= 1");
  std::vector<RowRange> out;
  out.reserve(static_cast<std::size_t>(parts));
  const std::size_t base = n / static_cast<std::size_t>(parts);
  const std::size_t extra = n % static_cast<std::size_t>(parts);
  std::size_t at = 0;
  for (int r = 0; r < parts; ++r) {
    const std::size_t len = base + (static_cast<std::size_t>(r) < extra ? 1 : 0);
    out.push_back({at, at + len});
    at += len;
  }
  NADMM_ASSERT(at == n);
  return out;
}

Dataset shard_contiguous(const Dataset& full, int parts, int rank) {
  NADMM_CHECK(rank >= 0 && rank < parts, "shard_contiguous: bad rank");
  const auto ranges = partition_rows(full.num_samples(), parts);
  const RowRange r = ranges[static_cast<std::size_t>(rank)];
  return full.row_slice(r.begin, r.end);
}

Dataset shard_strided(const Dataset& full, int parts, int rank) {
  NADMM_CHECK(rank >= 0 && rank < parts, "shard_strided: bad rank");
  const std::size_t n = full.num_samples();
  std::vector<std::size_t> mine;
  for (std::size_t i = static_cast<std::size_t>(rank); i < n;
       i += static_cast<std::size_t>(parts)) {
    mine.push_back(i);
  }
  std::vector<std::int32_t> labels;
  labels.reserve(mine.size());
  const auto full_labels = full.labels();
  for (std::size_t i : mine) labels.push_back(full_labels[i]);

  if (!full.is_sparse()) {
    const auto& src = full.dense_features();
    la::DenseMatrix x(mine.size(), full.num_features());
    for (std::size_t k = 0; k < mine.size(); ++k) {
      const auto row = src.row(mine[k]);
      std::copy(row.begin(), row.end(), x.row(k).begin());
    }
    return Dataset::dense(std::move(x), std::move(labels), full.num_classes());
  }
  const auto& src = full.sparse_features();
  const auto rp = src.row_ptr();
  const auto ci = src.col_idx();
  const auto va = src.values();
  std::vector<std::int64_t> row_ptr(mine.size() + 1, 0);
  for (std::size_t k = 0; k < mine.size(); ++k) {
    row_ptr[k + 1] = row_ptr[k] + (rp[mine[k] + 1] - rp[mine[k]]);
  }
  std::vector<std::int64_t> col_idx(static_cast<std::size_t>(row_ptr.back()));
  std::vector<double> values(static_cast<std::size_t>(row_ptr.back()));
  for (std::size_t k = 0; k < mine.size(); ++k) {
    auto dst = static_cast<std::size_t>(row_ptr[k]);
    for (std::int64_t e = rp[mine[k]]; e < rp[mine[k] + 1]; ++e, ++dst) {
      col_idx[dst] = ci[e];
      values[dst] = va[e];
    }
  }
  la::CsrMatrix shard(mine.size(), full.num_features(), std::move(row_ptr),
                      std::move(col_idx), std::move(values));
  return Dataset::sparse(std::move(shard), std::move(labels),
                         full.num_classes());
}

}  // namespace nadmm::data
