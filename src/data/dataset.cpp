#include "data/dataset.hpp"

#include "support/check.hpp"

namespace nadmm::data {

namespace {
void validate_labels(std::span<const std::int32_t> labels, int num_classes) {
  NADMM_CHECK(num_classes >= 2, "dataset needs at least two classes");
  for (std::int32_t y : labels) {
    NADMM_CHECK(y >= 0 && y < num_classes, "label out of [0, num_classes)");
  }
}

const la::DenseMatrix& empty_dense() {
  static const la::DenseMatrix kEmpty;
  return kEmpty;
}

const la::CsrMatrix& empty_sparse() {
  static const la::CsrMatrix kEmpty;
  return kEmpty;
}
}  // namespace

Dataset Dataset::dense(la::DenseMatrix features,
                       std::vector<std::int32_t> labels, int num_classes) {
  NADMM_CHECK(features.rows() == labels.size(),
              "dense dataset: row/label count mismatch");
  validate_labels(labels, num_classes);
  Dataset d;
  d.is_sparse_ = false;
  d.num_features_ = features.cols();
  d.num_classes_ = num_classes;
  d.row_count_ = labels.size();
  d.dense_ = std::make_shared<const la::DenseMatrix>(std::move(features));
  d.labels_ =
      std::make_shared<const std::vector<std::int32_t>>(std::move(labels));
  return d;
}

Dataset Dataset::sparse(la::CsrMatrix features,
                        std::vector<std::int32_t> labels, int num_classes) {
  NADMM_CHECK(features.rows() == labels.size(),
              "sparse dataset: row/label count mismatch");
  validate_labels(labels, num_classes);
  Dataset d;
  d.is_sparse_ = true;
  d.num_features_ = features.cols();
  d.num_classes_ = num_classes;
  d.row_count_ = labels.size();
  d.sparse_ = std::make_shared<const la::CsrMatrix>(std::move(features));
  d.labels_ =
      std::make_shared<const std::vector<std::int32_t>>(std::move(labels));
  return d;
}

std::size_t Dataset::storage_rows() const {
  return labels_ == nullptr ? 0 : labels_->size();
}

bool Dataset::is_view() const {
  return row_begin_ != 0 || row_count_ != storage_rows();
}

const la::DenseMatrix& Dataset::dense_features() const {
  NADMM_CHECK(!is_sparse_, "dataset is sparse; dense_features() unavailable");
  NADMM_CHECK(!is_view(),
              "dataset is a row-range view; use dense_view() instead of "
              "dense_features()");
  return dense_ == nullptr ? empty_dense() : *dense_;
}

const la::CsrMatrix& Dataset::sparse_features() const {
  NADMM_CHECK(is_sparse_, "dataset is dense; sparse_features() unavailable");
  NADMM_CHECK(!is_view(),
              "dataset is a row-range view; use csr_view() instead of "
              "sparse_features()");
  return sparse_ == nullptr ? empty_sparse() : *sparse_;
}

la::DenseView Dataset::dense_view() const {
  NADMM_CHECK(!is_sparse_, "dataset is sparse; dense_view() unavailable");
  if (dense_ == nullptr) return {};
  return dense_->view(row_begin_, row_begin_ + row_count_);
}

la::CsrView Dataset::csr_view() const {
  NADMM_CHECK(is_sparse_, "dataset is dense; csr_view() unavailable");
  if (sparse_ == nullptr) return {};
  return sparse_->view(row_begin_, row_begin_ + row_count_);
}

Dataset Dataset::view(std::size_t begin, std::size_t end) const {
  NADMM_CHECK(begin <= end && end <= row_count_, "view: bad range");
  Dataset v = *this;  // shares storage
  v.row_begin_ = row_begin_ + begin;
  v.row_count_ = end - begin;
  return v;
}

Dataset Dataset::row_slice(std::size_t begin, std::size_t end) const {
  NADMM_CHECK(begin <= end && end <= num_samples(), "row_slice: bad range");
  const auto lab = labels();
  std::vector<std::int32_t> labels_out(lab.begin() + static_cast<std::ptrdiff_t>(begin),
                                       lab.begin() + static_cast<std::ptrdiff_t>(end));
  if (is_sparse_) {
    return Dataset::sparse(
        sparse_->row_slice(row_begin_ + begin, row_begin_ + end),
        std::move(labels_out), num_classes_);
  }
  const la::DenseView src = dense_view();
  la::DenseMatrix sub(end - begin, num_features_);
  for (std::size_t r = begin; r < end; ++r) {
    const auto row = src.row(r);
    std::copy(row.begin(), row.end(), sub.row(r - begin).begin());
  }
  return Dataset::dense(std::move(sub), std::move(labels_out), num_classes_);
}

void Dataset::scores(const la::DenseMatrix& x, la::DenseMatrix& s) const {
  if (is_sparse_) {
    la::spmm_nn(1.0, csr_view(), x, 0.0, s);
  } else {
    la::gemm_nn(1.0, dense_view(), x, 0.0, s);
  }
}

void Dataset::accumulate_gradient(double alpha, const la::DenseMatrix& w,
                                  double beta, la::DenseMatrix& g) const {
  if (is_sparse_) {
    la::spmm_tn(alpha, csr_view(), w, beta, g);
  } else {
    la::gemm_tn(alpha, dense_view(), w, beta, g);
  }
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(static_cast<std::size_t>(num_classes_), 0);
  for (std::int32_t y : labels()) ++hist[static_cast<std::size_t>(y)];
  return hist;
}

double Dataset::feature_density() const {
  if (num_samples() == 0 || num_features_ == 0) return 0.0;
  const auto denom = static_cast<double>(num_samples()) *
                     static_cast<double>(num_features_);
  if (is_sparse_) return static_cast<double>(csr_view().nnz()) / denom;
  std::size_t nz = 0;
  for (double v : dense_view().data()) nz += (v != 0.0);
  return static_cast<double>(nz) / denom;
}

std::size_t Dataset::approx_bytes() const {
  // A proper sub-view owns nothing: its bytes belong to the parent
  // storage, which the owning dataset (or sharded cache entry) accounts.
  if (is_view()) return 0;
  std::size_t bytes = storage_rows() * sizeof(std::int32_t);
  if (is_sparse_) {
    // Includes the lazily built transposed view (la/sparse_matrix.hpp),
    // so the provider's LRU byte budget holds once the gradient kernels
    // materialize it.
    if (sparse_ != nullptr) bytes += sparse_->approx_bytes();
  } else if (dense_ != nullptr) {
    bytes += dense_->size() * sizeof(double);
  }
  return bytes;
}

}  // namespace nadmm::data
