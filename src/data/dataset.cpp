#include "data/dataset.hpp"

#include "support/check.hpp"

namespace nadmm::data {

namespace {
void validate_labels(std::span<const std::int32_t> labels, int num_classes) {
  NADMM_CHECK(num_classes >= 2, "dataset needs at least two classes");
  for (std::int32_t y : labels) {
    NADMM_CHECK(y >= 0 && y < num_classes, "label out of [0, num_classes)");
  }
}
}  // namespace

Dataset Dataset::dense(la::DenseMatrix features,
                       std::vector<std::int32_t> labels, int num_classes) {
  NADMM_CHECK(features.rows() == labels.size(),
              "dense dataset: row/label count mismatch");
  validate_labels(labels, num_classes);
  Dataset d;
  d.is_sparse_ = false;
  d.num_features_ = features.cols();
  d.num_classes_ = num_classes;
  d.dense_ = std::move(features);
  d.labels_ = std::move(labels);
  return d;
}

Dataset Dataset::sparse(la::CsrMatrix features,
                        std::vector<std::int32_t> labels, int num_classes) {
  NADMM_CHECK(features.rows() == labels.size(),
              "sparse dataset: row/label count mismatch");
  validate_labels(labels, num_classes);
  Dataset d;
  d.is_sparse_ = true;
  d.num_features_ = features.cols();
  d.num_classes_ = num_classes;
  d.sparse_ = std::move(features);
  d.labels_ = std::move(labels);
  return d;
}

const la::DenseMatrix& Dataset::dense_features() const {
  NADMM_CHECK(!is_sparse_, "dataset is sparse; dense_features() unavailable");
  return dense_;
}

const la::CsrMatrix& Dataset::sparse_features() const {
  NADMM_CHECK(is_sparse_, "dataset is dense; sparse_features() unavailable");
  return sparse_;
}

Dataset Dataset::row_slice(std::size_t begin, std::size_t end) const {
  NADMM_CHECK(begin <= end && end <= num_samples(), "row_slice: bad range");
  std::vector<std::int32_t> labels(labels_.begin() + static_cast<std::ptrdiff_t>(begin),
                                   labels_.begin() + static_cast<std::ptrdiff_t>(end));
  if (is_sparse_) {
    return Dataset::sparse(sparse_.row_slice(begin, end), std::move(labels),
                           num_classes_);
  }
  la::DenseMatrix sub(end - begin, num_features_);
  for (std::size_t r = begin; r < end; ++r) {
    const auto src = dense_.row(r);
    std::copy(src.begin(), src.end(), sub.row(r - begin).begin());
  }
  return Dataset::dense(std::move(sub), std::move(labels), num_classes_);
}

void Dataset::scores(const la::DenseMatrix& x, la::DenseMatrix& s) const {
  if (is_sparse_) {
    la::spmm_nn(1.0, sparse_, x, 0.0, s);
  } else {
    la::gemm_nn(1.0, dense_, x, 0.0, s);
  }
}

void Dataset::accumulate_gradient(double alpha, const la::DenseMatrix& w,
                                  double beta, la::DenseMatrix& g) const {
  if (is_sparse_) {
    la::spmm_tn(alpha, sparse_, w, beta, g);
  } else {
    la::gemm_tn(alpha, dense_, w, beta, g);
  }
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(static_cast<std::size_t>(num_classes_), 0);
  for (std::int32_t y : labels_) ++hist[static_cast<std::size_t>(y)];
  return hist;
}

double Dataset::feature_density() const {
  if (num_samples() == 0 || num_features_ == 0) return 0.0;
  if (is_sparse_) return sparse_.density();
  std::size_t nz = 0;
  for (double v : dense_.data()) nz += (v != 0.0);
  return static_cast<double>(nz) /
         (static_cast<double>(num_samples()) * static_cast<double>(num_features_));
}

std::size_t Dataset::approx_bytes() const {
  std::size_t bytes = labels_.size() * sizeof(std::int32_t);
  if (is_sparse_) {
    // Includes the lazily built transposed view (la/sparse_matrix.hpp),
    // so the provider's LRU byte budget holds once the gradient kernels
    // materialize it.
    bytes += sparse_.approx_bytes();
  } else {
    bytes += dense_.size() * sizeof(double);
  }
  return bytes;
}

}  // namespace nadmm::data
