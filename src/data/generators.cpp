#include "data/generators.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace nadmm::data {

namespace {

/// Derive a deterministic per-sample RNG: independent of how samples are
/// distributed over threads.
Rng sample_rng(std::uint64_t seed, std::uint64_t stream, std::uint64_t index) {
  Rng r(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  r.next_u64();
  Rng derived(r.next_u64() ^ (index * 0xbf58476d1ce4e5b9ULL + 0x94d049bb133111ebULL));
  derived.next_u64();
  return derived;
}

constexpr std::uint64_t kTrainStream = 1;
constexpr std::uint64_t kTestStream = 2;
constexpr std::uint64_t kModelStream = 3;

}  // namespace

std::vector<PaperDatasetInfo> paper_table1() {
  return {
      {"HIGGS", 2, 11'000'000, 1'000'000, 28},
      {"MNIST", 10, 70'000, 10'000, 784},
      {"CIFAR-10", 10, 60'000, 10'000, 3'072},
      {"E18", 20, 1'306'128, 6'000, 27'998},
  };
}

// ---------------------------------------------------------------------------
// blobs
// ---------------------------------------------------------------------------

namespace {

la::DenseMatrix blob_prototypes(std::size_t p, int classes, double separation,
                                std::uint64_t seed) {
  la::DenseMatrix mu(static_cast<std::size_t>(classes), p);
  Rng rng = sample_rng(seed, kModelStream, 0);
  const double scale = separation / std::sqrt(static_cast<double>(p));
  for (std::size_t c = 0; c < static_cast<std::size_t>(classes); ++c) {
    for (std::size_t j = 0; j < p; ++j) mu.at(c, j) = scale * rng.normal();
  }
  return mu;
}

Dataset blob_split(std::size_t n, std::size_t p, int classes,
                   const la::DenseMatrix& mu, double noise, std::uint64_t seed,
                   std::uint64_t stream) {
  la::DenseMatrix x(n, p);
  std::vector<std::int32_t> y(n);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    Rng rng = sample_rng(seed, stream, static_cast<std::uint64_t>(i));
    const auto c = static_cast<std::int32_t>(
        rng.uniform_index(static_cast<std::uint64_t>(classes)));
    y[i] = c;
    auto row = x.row(static_cast<std::size_t>(i));
    const auto proto = mu.row(static_cast<std::size_t>(c));
    for (std::size_t j = 0; j < p; ++j) row[j] = proto[j] + noise * rng.normal();
  }
  return Dataset::dense(std::move(x), std::move(y), classes);
}

}  // namespace

TrainTest make_blobs(std::size_t n_train, std::size_t n_test, std::size_t p,
                     int classes, double separation, double noise,
                     std::uint64_t seed) {
  NADMM_CHECK(n_train > 0 && p > 0 && classes >= 2, "make_blobs: bad shape");
  const la::DenseMatrix mu = blob_prototypes(p, classes, separation, seed);
  TrainTest tt;
  tt.train = blob_split(n_train, p, classes, mu, noise, seed, kTrainStream);
  tt.test = blob_split(n_test, p, classes, mu, noise, seed, kTestStream);
  return tt;
}

// ---------------------------------------------------------------------------
// HIGGS-like
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kHiggsBase = 21;     // "low-level" features
constexpr std::size_t kHiggsDerived = 7;   // quadratic "high-level" features
constexpr std::size_t kHiggsP = kHiggsBase + kHiggsDerived;  // 28, as in HIGGS

Dataset higgs_split(std::size_t n, std::span<const double> w, double bias,
                    std::uint64_t seed, std::uint64_t stream) {
  la::DenseMatrix x(n, kHiggsP);
  std::vector<std::int32_t> y(n);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    Rng rng = sample_rng(seed, stream, static_cast<std::uint64_t>(i));
    auto row = x.row(static_cast<std::size_t>(i));
    for (std::size_t j = 0; j < kHiggsBase; ++j) row[j] = rng.normal();
    // Derived features mimic the HIGGS "high-level" kinematic quantities:
    // bounded products of the low-level features.
    for (std::size_t j = 0; j < kHiggsDerived; ++j) {
      const double prod = row[2 * j] * row[2 * j + 1];
      row[kHiggsBase + j] = std::tanh(prod);
    }
    double score = bias;
    for (std::size_t j = 0; j < kHiggsP; ++j) score += w[j] * row[j];
    const double prob = 1.0 / (1.0 + std::exp(-score));
    y[i] = rng.bernoulli(prob) ? 1 : 0;
  }
  return Dataset::dense(std::move(x), std::move(y), 2);
}

}  // namespace

TrainTest make_higgs_like(std::size_t n_train, std::size_t n_test,
                          std::uint64_t seed) {
  // Ground-truth logistic model => realizable, well-conditioned problem.
  std::vector<double> w(kHiggsP);
  Rng rng = sample_rng(seed, kModelStream, 1);
  for (double& v : w) v = 1.5 * rng.normal() / std::sqrt(double(kHiggsP));
  const double bias = 0.1 * rng.normal();
  TrainTest tt;
  tt.train = higgs_split(n_train, w, bias, seed, kTrainStream);
  tt.test = higgs_split(n_test, w, bias, seed, kTestStream);
  return tt;
}

// ---------------------------------------------------------------------------
// MNIST-like
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kMnistSide = 28;
constexpr std::size_t kMnistP = kMnistSide * kMnistSide;
constexpr int kMnistClasses = 10;

/// One stroke prototype per class: a random walk on the 28×28 grid,
/// blurred so the pattern is smooth like handwriting.
la::DenseMatrix mnist_prototypes(std::uint64_t seed) {
  la::DenseMatrix proto(kMnistClasses, kMnistP);
  for (int c = 0; c < kMnistClasses; ++c) {
    Rng rng = sample_rng(seed, kModelStream, 100 + static_cast<std::uint64_t>(c));
    auto row = proto.row(static_cast<std::size_t>(c));
    // Random walk: ~120 steps starting near the centre.
    double px = 14.0 + 4.0 * rng.normal();
    double py = 14.0 + 4.0 * rng.normal();
    for (int s = 0; s < 120; ++s) {
      px = std::clamp(px + 1.4 * rng.normal(), 2.0, 25.0);
      py = std::clamp(py + 1.4 * rng.normal(), 2.0, 25.0);
      const auto cx = static_cast<std::size_t>(px);
      const auto cy = static_cast<std::size_t>(py);
      row[cy * kMnistSide + cx] = 1.0;
    }
    // 3x3 box blur, two passes.
    std::vector<double> tmp(kMnistP);
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t yy = 0; yy < kMnistSide; ++yy) {
        for (std::size_t xx = 0; xx < kMnistSide; ++xx) {
          double acc = 0.0;
          int cnt = 0;
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const auto nx = static_cast<std::ptrdiff_t>(xx) + dx;
              const auto ny = static_cast<std::ptrdiff_t>(yy) + dy;
              if (nx < 0 || ny < 0 || nx >= static_cast<std::ptrdiff_t>(kMnistSide) ||
                  ny >= static_cast<std::ptrdiff_t>(kMnistSide)) {
                continue;
              }
              acc += row[static_cast<std::size_t>(ny) * kMnistSide +
                         static_cast<std::size_t>(nx)];
              ++cnt;
            }
          }
          tmp[yy * kMnistSide + xx] = acc / cnt;
        }
      }
      std::copy(tmp.begin(), tmp.end(), row.begin());
    }
    // Normalize prototype to peak 1.
    double peak = 1e-12;
    for (double v : row) peak = std::max(peak, v);
    for (double& v : row) v /= peak;
  }
  return proto;
}

Dataset mnist_split(std::size_t n, const la::DenseMatrix& proto,
                    std::uint64_t seed, std::uint64_t stream) {
  la::DenseMatrix x(n, kMnistP);
  std::vector<std::int32_t> y(n);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    Rng rng = sample_rng(seed, stream, static_cast<std::uint64_t>(i));
    const auto c = static_cast<std::int32_t>(rng.uniform_index(kMnistClasses));
    // ~2% label noise keeps Bayes accuracy below 1 (like real handwriting
    // ambiguity) so accuracy-vs-time curves carry information.
    y[i] = rng.bernoulli(0.02)
               ? static_cast<std::int32_t>(rng.uniform_index(kMnistClasses))
               : c;
    auto row = x.row(static_cast<std::size_t>(i));
    const auto pr = proto.row(static_cast<std::size_t>(c));
    const double intensity = 0.6 + 0.6 * rng.uniform();
    // Random translation of the stroke by up to ±2 pixels each way —
    // the within-class variability of handwriting.
    const int dx = static_cast<int>(rng.uniform_index(5)) - 2;
    const int dy = static_cast<int>(rng.uniform_index(5)) - 2;
    for (std::size_t yy = 0; yy < kMnistSide; ++yy) {
      for (std::size_t xx = 0; xx < kMnistSide; ++xx) {
        const auto sx = static_cast<std::ptrdiff_t>(xx) - dx;
        const auto sy = static_cast<std::ptrdiff_t>(yy) - dy;
        double v = 0.0;
        if (sx >= 0 && sy >= 0 && sx < static_cast<std::ptrdiff_t>(kMnistSide) &&
            sy < static_cast<std::ptrdiff_t>(kMnistSide)) {
          v = intensity * pr[static_cast<std::size_t>(sy) * kMnistSide +
                             static_cast<std::size_t>(sx)];
        }
        if (v > 0.02) v += 0.15 * rng.normal();  // ink jitter on the stroke
        v = std::clamp(v, 0.0, 1.0);
        if (v < 0.02) v = 0.0;  // background stays exactly zero
        row[yy * kMnistSide + xx] = v;
      }
    }
  }
  return Dataset::dense(std::move(x), std::move(y), kMnistClasses);
}

}  // namespace

TrainTest make_mnist_like(std::size_t n_train, std::size_t n_test,
                          std::uint64_t seed) {
  const la::DenseMatrix proto = mnist_prototypes(seed);
  TrainTest tt;
  tt.train = mnist_split(n_train, proto, seed, kTrainStream);
  tt.test = mnist_split(n_test, proto, seed, kTestStream);
  return tt;
}

// ---------------------------------------------------------------------------
// CIFAR-like
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kCifarP = 3072;
constexpr int kCifarClasses = 10;
constexpr std::size_t kCifarWindow = 32;  // moving-average width => banded cov

Dataset cifar_split(std::size_t n, const la::DenseMatrix& mu,
                    std::uint64_t seed, std::uint64_t stream) {
  la::DenseMatrix x(n, kCifarP);
  std::vector<std::int32_t> y(n);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    Rng rng = sample_rng(seed, stream, static_cast<std::uint64_t>(i));
    const auto c = static_cast<std::int32_t>(rng.uniform_index(kCifarClasses));
    // ~5% label noise: natural-image classes genuinely overlap for a
    // linear model.
    y[i] = rng.bernoulli(0.05)
               ? static_cast<std::int32_t>(rng.uniform_index(kCifarClasses))
               : c;
    auto row = x.row(static_cast<std::size_t>(i));
    const auto proto = mu.row(static_cast<std::size_t>(c));
    // Latent field, then windowed moving average: neighbouring features are
    // strongly correlated (like neighbouring pixels) which makes the data
    // covariance — and hence the softmax Hessian — badly conditioned.
    std::vector<double> latent(kCifarP + kCifarWindow);
    for (double& v : latent) v = rng.normal();
    const double inv = 1.0 / std::sqrt(static_cast<double>(kCifarWindow));
    double acc = 0.0;
    for (std::size_t j = 0; j < kCifarWindow; ++j) acc += latent[j];
    for (std::size_t j = 0; j < kCifarP; ++j) {
      row[j] = proto[j] + inv * acc;
      acc += latent[j + kCifarWindow] - latent[j];
    }
  }
  return Dataset::dense(std::move(x), std::move(y), kCifarClasses);
}

}  // namespace

TrainTest make_cifar_like(std::size_t n_train, std::size_t n_test,
                          std::uint64_t seed) {
  // Small class separation relative to the (correlated) noise: a linear
  // model on raw CIFAR pixels tops out around 40% accuracy, so the class
  // means barely poke out of the banded noise.
  la::DenseMatrix mu(kCifarClasses, kCifarP);
  Rng rng = sample_rng(seed, kModelStream, 2);
  for (std::size_t c = 0; c < kCifarClasses; ++c) {
    for (std::size_t j = 0; j < kCifarP; ++j) {
      mu.at(c, j) = 0.13 * rng.normal() / std::sqrt(32.0);
    }
  }
  TrainTest tt;
  tt.train = cifar_split(n_train, mu, seed, kTrainStream);
  tt.test = cifar_split(n_test, mu, seed, kTestStream);
  return tt;
}

// ---------------------------------------------------------------------------
// E18-like (sparse scRNA-seq counts)
// ---------------------------------------------------------------------------

namespace {

constexpr int kE18Classes = 20;

Dataset e18_split(std::size_t n, std::size_t p, const la::DenseMatrix& rates,
                  std::uint64_t seed, std::uint64_t stream) {
  // Two passes: count nonzeros per row, then fill CSR directly; both passes
  // draw from per-sample RNGs so the result is thread-count independent.
  std::vector<std::vector<std::pair<std::int64_t, double>>> rows(n);
  std::vector<std::int32_t> y(n);
#pragma omp parallel for schedule(dynamic, 64)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    Rng rng = sample_rng(seed, stream, static_cast<std::uint64_t>(i));
    const auto c = static_cast<std::int32_t>(rng.uniform_index(kE18Classes));
    // ~3% annotation noise (cell-type labels are themselves clustering
    // outputs in the real data).
    y[i] = rng.bernoulli(0.03)
               ? static_cast<std::int32_t>(rng.uniform_index(kE18Classes))
               : c;
    // Cell "size factor": total mRNA content varies per cell.
    const double size_factor = std::exp(0.35 * rng.normal());
    auto& entries = rows[static_cast<std::size_t>(i)];
    for (std::size_t g = 0; g < p; ++g) {
      const double lambda = size_factor * rates.at(static_cast<std::size_t>(c), g);
      if (lambda <= 1e-9) continue;
      // For tiny rates, short-circuit: P(count>0) ~= lambda.
      std::uint64_t count;
      if (lambda < 0.02) {
        count = rng.bernoulli(lambda) ? 1 : 0;
      } else {
        count = rng.poisson(lambda);
      }
      if (count > 0) {
        entries.emplace_back(static_cast<std::int64_t>(g),
                             std::log1p(static_cast<double>(count)));
      }
    }
  }
  std::vector<std::int64_t> row_ptr(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    row_ptr[i + 1] = row_ptr[i] + static_cast<std::int64_t>(rows[i].size());
  }
  std::vector<std::int64_t> col_idx(static_cast<std::size_t>(row_ptr[n]));
  std::vector<double> values(static_cast<std::size_t>(row_ptr[n]));
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t at = static_cast<std::size_t>(row_ptr[i]);
    for (const auto& [col, val] : rows[i]) {
      col_idx[at] = col;
      values[at] = val;
      ++at;
    }
  }
  la::CsrMatrix csr(n, p, std::move(row_ptr), std::move(col_idx),
                    std::move(values));
  return Dataset::sparse(std::move(csr), std::move(y), kE18Classes);
}

}  // namespace

TrainTest make_e18_like(std::size_t n_train, std::size_t n_test, std::size_t p,
                        std::uint64_t seed) {
  NADMM_CHECK(p >= 64, "e18_like: p must be at least 64");
  // Per-class expression rates: a shared low baseline plus ~4% marker genes
  // with strongly elevated rates — mirroring cell-type marker structure.
  la::DenseMatrix rates(kE18Classes, p);
  Rng rng = sample_rng(seed, kModelStream, 3);
  std::vector<double> baseline(p);
  for (std::size_t g = 0; g < p; ++g) {
    // Most genes barely expressed; a few housekeeping genes common to all.
    baseline[g] = rng.bernoulli(0.05) ? 0.6 * rng.uniform() : 0.02 * rng.uniform();
  }
  // Cell types come in related pairs (sibling types share a lineage):
  // siblings share most markers, so the classifier must rely on the few
  // type-specific ones — like real scRNA data, where closely related cell
  // types are the hard distinctions.
  la::DenseMatrix lineage(kE18Classes / 2, p);
  for (std::size_t l = 0; l < kE18Classes / 2; ++l) {
    for (std::size_t g = 0; g < p; ++g) {
      double r = baseline[g];
      if (rng.bernoulli(0.04)) r += 1.2 + 1.6 * rng.uniform();  // lineage marker
      lineage.at(l, g) = r;
    }
  }
  for (std::size_t c = 0; c < kE18Classes; ++c) {
    for (std::size_t g = 0; g < p; ++g) {
      double r = lineage.at(c / 2, g);
      if (rng.bernoulli(0.008)) r += 0.8 + 1.0 * rng.uniform();  // type marker
      rates.at(c, g) = r;
    }
  }
  TrainTest tt;
  tt.train = e18_split(n_train, p, rates, seed, kTrainStream);
  tt.test = e18_split(n_test, p, rates, seed, kTestStream);
  return tt;
}

TrainTest make_by_name(const std::string& name, std::size_t n_train,
                       std::size_t n_test, std::size_t p, std::uint64_t seed) {
  if (name == "higgs") return make_higgs_like(n_train, n_test, seed);
  if (name == "mnist") return make_mnist_like(n_train, n_test, seed);
  if (name == "cifar") return make_cifar_like(n_train, n_test, seed);
  if (name == "e18") return make_e18_like(n_train, n_test, p, seed);
  if (name == "blobs") return make_blobs(n_train, n_test, p, 10, 3.0, 1.0, seed);
  throw InvalidArgument("unknown dataset '" + name +
                        "' (expected higgs|mnist|cifar|e18|blobs)");
}

}  // namespace nadmm::data
