#include "data/provider.hpp"

#include <future>
#include <sstream>

#include "data/generators.hpp"
#include "data/io.hpp"
#include "data/standardize.hpp"
#include "support/check.hpp"

namespace nadmm::data {

namespace {
constexpr std::string_view kLibsvmPrefix = "libsvm:";
}  // namespace

std::string DatasetKey::cache_tag() const {
  std::ostringstream os;
  os << source << "|n" << n_train << "|t" << n_test << "|p" << features
     << "|s" << seed << "|z" << (standardize ? 1 : 0);
  return os.str();
}

TrainTest generate_dataset(const DatasetKey& key) {
  TrainTest tt;
  if (key.is_streamable()) {
    const std::string path(key.source.substr(kLibsvmPrefix.size()));
    NADMM_CHECK(!path.empty(), "libsvm source needs a path: 'libsvm:<path>'");
    // The feature dimension comes from the file itself; the `features`
    // knob is a generator parameter (e18/blobs) and is ignored here —
    // dataset_key() zeroes it so equivalent keys share one cache entry.
    tt = load_libsvm_train_test(path, key.n_train, key.n_test, 0);
  } else {
    tt = make_by_name(key.source, key.n_train, key.n_test, key.features,
                      key.seed);
  }
  if (key.standardize) {
    Standardizer sc;
    sc.fit(tt.train);
    tt.train = sc.transform(tt.train);
    if (tt.test.num_samples() > 0) tt.test = sc.transform(tt.test);
  }
  return tt;
}

ShardedDataset generate_sharded_dataset(const DatasetKey& key,
                                        const ShardPlan& plan) {
  if (key.is_streamable()) {
    const std::string path(key.source.substr(kLibsvmPrefix.size()));
    NADMM_CHECK(!path.empty(), "libsvm source needs a path: 'libsvm:<path>'");
    return load_libsvm_sharded(path, key.n_train, key.n_test, plan,
                               key.standardize);
  }
  const TrainTest tt = generate_dataset(key);
  return make_sharded(tt.train, &tt.test, plan);
}

struct DatasetProvider::Slot {
  std::shared_future<std::shared_ptr<const Entry>> future;
  std::size_t bytes = 0;
  std::list<std::string>::iterator lru_it;
  bool ready = false;  ///< bytes accounted toward the budget
};

DatasetProvider::DatasetProvider(std::size_t byte_budget)
    : byte_budget_(byte_budget) {}

std::shared_ptr<const DatasetProvider::Entry> DatasetProvider::get_entry(
    const std::string& tag, const std::function<Entry()>& make) {
  std::promise<std::shared_ptr<const Entry>> promise;
  std::shared_ptr<Slot> slot;
  bool creator = false;
  {
    const std::scoped_lock lock(mutex_);
    const auto it = entries_.find(tag);
    if (it != entries_.end()) {
      slot = it->second;
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, slot->lru_it);
    } else {
      ++stats_.misses;
      slot = std::make_shared<Slot>();
      slot->future = promise.get_future().share();
      lru_.push_front(tag);
      slot->lru_it = lru_.begin();
      entries_.emplace(tag, slot);
      creator = true;
    }
  }

  // Cache hit (or a miss already in flight): wait on the shared future —
  // a failed generation propagates its exception to every waiter.
  if (!creator) return slot->future.get();

  try {
    auto entry = std::make_shared<const Entry>(make());
    const std::size_t bytes = entry->bytes();
    promise.set_value(entry);
    {
      const std::scoped_lock lock(mutex_);
      ++stats_.generations;
      // The entry may have been cleared/evicted while we generated; only
      // account for it if our slot is still the cached one.
      const auto it = entries_.find(tag);
      if (it != entries_.end() && it->second == slot) {
        slot->bytes = bytes;
        slot->ready = true;
        bytes_in_use_ += bytes;
        evict_over_budget_locked(tag);
      }
    }
    return entry;
  } catch (...) {
    promise.set_exception(std::current_exception());
    const std::scoped_lock lock(mutex_);
    const auto it = entries_.find(tag);
    if (it != entries_.end() && it->second == slot) {
      lru_.erase(slot->lru_it);
      entries_.erase(it);
    }
    throw;
  }
}

std::shared_ptr<const TrainTest> DatasetProvider::get(const DatasetKey& key) {
  const auto entry = get_entry(key.cache_tag(), [&key] {
    return Entry{std::make_shared<const TrainTest>(generate_dataset(key)),
                 nullptr};
  });
  NADMM_ASSERT(entry->full != nullptr);
  return entry->full;
}

std::shared_ptr<const ShardedDataset> DatasetProvider::get_sharded(
    const DatasetKey& key, const ShardPlan& plan) {
  if (!key.is_streamable() && plan.mode != PartitionMode::kStrided) {
    // In-memory view plans (contiguous/weighted): shard the cached full
    // dataset as zero-copy views. The views share (and keep alive) the
    // full entry's storage, so no second cache entry — and no extra
    // bytes — are created.
    const auto full = get(key);
    return std::make_shared<const ShardedDataset>(
        make_sharded(full->train, &full->test, plan));
  }
  // Streamed sources and strided gather copies own real per-shard
  // buffers: cache them per (key, plan) with their bytes in the budget.
  // A strided in-memory entry re-slices the cached full dataset, so
  // repeated scenarios on the same plan share one set of copies instead
  // of re-gathering per scenario.
  const std::string tag = key.cache_tag() + "|shard:" + plan.cache_tag();
  const auto entry = get_entry(tag, [this, &key, &plan] {
    if (key.is_streamable()) {
      return Entry{nullptr, std::make_shared<const ShardedDataset>(
                                generate_sharded_dataset(key, plan))};
    }
    const auto full = get(key);
    return Entry{nullptr, std::make_shared<const ShardedDataset>(
                              make_sharded(full->train, &full->test, plan))};
  });
  NADMM_ASSERT(entry->sharded != nullptr);
  return entry->sharded;
}

void DatasetProvider::evict_over_budget_locked(const std::string& keep_tag) {
  // LRU-first pass over everything except the entry just used; the
  // in-flight (non-ready) slots have unknown size and are skipped.
  for (auto it = lru_.end();
       it != lru_.begin() && bytes_in_use_ > byte_budget_;) {
    --it;
    if (*it == keep_tag) continue;
    const auto e = entries_.find(*it);
    if (e == entries_.end() || !e->second->ready) continue;
    bytes_in_use_ -= e->second->bytes;
    ++stats_.evictions;
    entries_.erase(e);
    it = lru_.erase(it);
  }
  // A single dataset larger than the whole budget is handed to the caller
  // but not retained.
  if (bytes_in_use_ > byte_budget_) {
    const auto e = entries_.find(keep_tag);
    if (e != entries_.end() && e->second->ready) {
      bytes_in_use_ -= e->second->bytes;
      ++stats_.evictions;
      lru_.erase(e->second->lru_it);
      entries_.erase(e);
    }
  }
}

void DatasetProvider::set_byte_budget(std::size_t bytes) {
  const std::scoped_lock lock(mutex_);
  byte_budget_ = bytes;
  evict_over_budget_locked("");
}

std::size_t DatasetProvider::byte_budget() const {
  const std::scoped_lock lock(mutex_);
  return byte_budget_;
}

std::size_t DatasetProvider::bytes_in_use() const {
  const std::scoped_lock lock(mutex_);
  return bytes_in_use_;
}

DatasetProvider::Stats DatasetProvider::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

void DatasetProvider::clear() {
  const std::scoped_lock lock(mutex_);
  entries_.clear();
  lru_.clear();
  bytes_in_use_ = 0;
}

}  // namespace nadmm::data
