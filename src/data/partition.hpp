// Row partitioning of a dataset across workers — the shard planner of
// the shard-native data plane.
//
// Strong scaling splits a fixed dataset into N shards; weak scaling keeps
// the shard size fixed and grows N. Three modes:
//   * contiguous — balanced contiguous ranges, the paper's setup (data
//     pre-sharded per node); shards are O(1) zero-copy views.
//   * strided    — rank r takes rows r, r+N, r+2N, … for label balance
//     when the row order is not shuffled; shards are gather copies
//     (a stride cannot be a contiguous view).
//   * weighted   — contiguous ranges sized proportionally to per-rank
//     weights (the harness passes each rank's DeviceModel gflops), so a
//     heterogeneous cluster's fast ranks get more rows; zero-copy views.
//
// A ShardPlan captures (mode, parts, weights) once; `ranges(n)` re-plans
// the same layout for any row count, so the train and test splits shard
// consistently. `make_sharded` turns a TrainTest into one RankData
// {train, test} per rank plus the byte accounting the sweep reports as
// peak_dataset_bytes.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace nadmm::data {

struct RowRange {
  std::size_t begin;
  std::size_t end;
  [[nodiscard]] std::size_t size() const { return end - begin; }
};

enum class PartitionMode { kContiguous, kStrided, kWeighted };

/// "contiguous" | "strided" | "weighted"; throws InvalidArgument otherwise.
PartitionMode partition_mode_from_string(const std::string& name);
std::string to_string(PartitionMode mode);

/// Balanced contiguous ranges: first (n % parts) ranges get one extra row.
std::vector<RowRange> partition_rows(std::size_t n, int parts);

/// Contiguous ranges sized proportionally to `weights` (largest-remainder
/// rounding, ties broken by rank index; sizes always sum to n exactly).
/// Weights must be positive.
std::vector<RowRange> partition_rows_weighted(std::size_t n,
                                              std::span<const double> weights);

/// How a dataset is split across `parts` ranks.
struct ShardPlan {
  PartitionMode mode = PartitionMode::kContiguous;
  int parts = 1;
  /// Per-rank weights for kWeighted (ignored otherwise; empty = uniform).
  std::vector<double> weights;

  /// Per-rank contiguous ranges for `n` rows (kContiguous / kWeighted).
  /// Throws for kStrided, whose shards are not contiguous.
  [[nodiscard]] std::vector<RowRange> ranges(std::size_t n) const;

  /// Stable identifier ("contiguous4", "weighted4:0.6;0.2;…") used by
  /// the sharded dataset cache key.
  [[nodiscard]] std::string cache_tag() const;

  /// NUMA placement hint: the node each rank's shard (and its worker
  /// thread) should land on, given `node_count` nodes. Ranks stay in
  /// contiguous blocks and the cut points balance cumulative rank
  /// weight (uniform when `weights` is empty), so under a weighted plan
  /// the device-heavy shards spread across sockets instead of piling
  /// onto node 0. Deterministic in (parts, weights, node_count); all
  /// zeros when node_count <= 1 — the single-node fallback.
  [[nodiscard]] std::vector<int> placement(int node_count) const;
};

/// The shard of `full` that `rank` owns under `plan`: an O(1) zero-copy
/// view for contiguous/weighted plans, a gather copy for strided ones.
Dataset shard_dataset(const Dataset& full, const ShardPlan& plan, int rank);

/// Shard `parts` ways, returning the shard for `rank` (contiguous rows)
/// as an owning deep copy. Superseded by shard_dataset on hot paths;
/// kept as the copy oracle for view-vs-copy bit-identity tests.
Dataset shard_contiguous(const Dataset& full, int parts, int rank);

/// Shard by striding: rank r takes rows r, r+parts, r+2·parts, ...
/// Keeps class balance when rows are ordered by label.
Dataset shard_strided(const Dataset& full, int parts, int rank);

/// One rank's slice of the experiment data. `test` is empty when the
/// scenario has no test split.
struct RankData {
  Dataset train;
  Dataset test;
};

/// The whole experiment's data, pre-sharded: what the harness hands every
/// distributed solver through the registry (no solver re-shards).
struct ShardedDataset {
  std::vector<RankData> ranks;
  ShardPlan plan;

  /// Full splits when the data was materialized in one piece (views of /
  /// the same storage the rank shards reference). Empty for streamed
  /// sources, where the full matrix never exists — solvers must not
  /// require them (single-node solvers do, and say so).
  Dataset full_train;
  Dataset full_test;

  // Global shape, valid in both the materialized and streamed cases.
  std::size_t train_samples = 0;
  std::size_t test_samples = 0;
  std::size_t num_features = 0;
  int num_classes = 0;

  /// Resident dataset bytes for this layout: full storage plus whatever
  /// the shards own (0 for views, their buffers for strided copies and
  /// streamed shards). The sweep reports this as peak_dataset_bytes.
  std::size_t resident_bytes = 0;

  /// Per-rank NUMA node hints from plan.placement() against the host
  /// topology (support::Topology::system()). All zeros on single-node
  /// hosts; advisory — the simulated cluster runs ranks as threads and
  /// uses this to co-locate a shard's pages with its worker.
  std::vector<int> numa_node;

  [[nodiscard]] int parts() const { return static_cast<int>(ranks.size()); }
  [[nodiscard]] bool has_full() const { return !full_train.empty(); }
  /// Parameter dimension p·(C−1) of the softmax model.
  [[nodiscard]] std::size_t dim() const {
    return num_features * (static_cast<std::size_t>(num_classes) - 1);
  }
};

/// Shard a materialized train/test pair under `plan`. `test` may be null
/// or empty (rank test shards stay empty).
ShardedDataset make_sharded(const Dataset& train, const Dataset* test,
                            const ShardPlan& plan);

}  // namespace nadmm::data
