// Row partitioning of a dataset across workers.
//
// Strong scaling splits a fixed dataset into N shards; weak scaling keeps
// the shard size fixed and grows N. Contiguous partitioning matches the
// paper's setup (data pre-sharded per node); striped partitioning is
// provided for label-balance when the row order is not shuffled.
#pragma once

#include <vector>

#include "data/dataset.hpp"

namespace nadmm::data {

struct RowRange {
  std::size_t begin;
  std::size_t end;
  [[nodiscard]] std::size_t size() const { return end - begin; }
};

/// Balanced contiguous ranges: first (n % parts) ranges get one extra row.
std::vector<RowRange> partition_rows(std::size_t n, int parts);

/// Shard `parts` ways, returning the shard for `rank` (contiguous rows).
Dataset shard_contiguous(const Dataset& full, int parts, int rank);

/// Shard by striding: rank r takes rows r, r+parts, r+2·parts, ...
/// Keeps class balance when rows are ordered by label.
Dataset shard_strided(const Dataset& full, int parts, int rank);

}  // namespace nadmm::data
