#include "serve/quantile.hpp"

#include <cmath>

#include "support/check.hpp"

namespace nadmm::serve {

QuantileSketch::QuantileSketch(double relative_error, double floor)
    : floor_(floor) {
  NADMM_CHECK(relative_error > 0.0 && relative_error <= 0.5,
              "quantile sketch: relative error must be in (0, 0.5]");
  NADMM_CHECK(floor > 0.0, "quantile sketch: floor must be positive");
  growth_ = (1.0 + relative_error) * (1.0 + relative_error);
  inv_log_growth_ = 1.0 / std::log(growth_);
}

void QuantileSketch::add(double value) {
  NADMM_CHECK(std::isfinite(value) && value >= 0.0,
              "quantile sketch: values must be finite and non-negative");
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  sum_ += value;
  std::size_t idx = 0;
  if (value > floor_) {
    idx = 1 + static_cast<std::size_t>(
                  std::floor(std::log(value / floor_) * inv_log_growth_));
  }
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
}

void QuantileSketch::merge(const QuantileSketch& other) {
  NADMM_CHECK(floor_ == other.floor_ && growth_ == other.growth_,
              "quantile sketch: merge requires matching error/floor");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (buckets_.size() < other.buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

double QuantileSketch::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double QuantileSketch::min() const {
  NADMM_CHECK(count_ > 0, "quantile sketch: min() of an empty sketch");
  return min_;
}

double QuantileSketch::max() const {
  NADMM_CHECK(count_ > 0, "quantile sketch: max() of an empty sketch");
  return max_;
}

double QuantileSketch::quantile(double q) const {
  NADMM_CHECK(q >= 0.0 && q <= 1.0, "quantile sketch: q must be in [0, 1]");
  NADMM_CHECK(count_ > 0, "quantile sketch: quantile() of an empty sketch");
  // Nearest-rank on the bucket CDF: rank r ∈ [0, count) selects the
  // bucket holding the ⌈q·(count−1)⌉-th smallest value.
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_ - 1)));
  std::uint64_t cumulative = 0;
  std::size_t hit = buckets_.size() - 1;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative > target) {
      hit = i;
      break;
    }
  }
  // Bucket 0 holds values <= floor; other buckets answer with their
  // geometric midpoint floor·g^(hit−1)·√g.
  double v = floor_;
  if (hit > 0) {
    v = floor_ * std::pow(growth_, static_cast<double>(hit) - 0.5);
  }
  if (v < min_) v = min_;
  if (v > max_) v = max_;
  return v;
}

}  // namespace nadmm::serve
