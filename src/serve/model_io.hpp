// Trained-model persistence: the bridge between `nadmm run` and
// `nadmm serve`.
//
// A SavedModel is the flat parameter vector a solver produced plus the
// shape metadata the serving plane needs to rebuild the p×c coefficient
// panel and validate it against a request pool. The on-disk format is a
// versioned line-oriented text file with %.17g coefficients, so a
// save/load round trip is bit-exact (the same convention the sweep
// journal uses) and the file diffs cleanly under git.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nadmm::serve {

struct SavedModel {
  /// "softmax" (x is p×(C−1), implicit reference class) or
  /// "least-squares" (x is p×c).
  std::string objective = "softmax";
  std::string solver;   ///< provenance: the solver that trained x
  std::string dataset;  ///< provenance: the training dataset spec
  std::size_t num_features = 0;
  int num_classes = 0;
  double lambda = 0.0;  ///< l2 regularization used in training
  std::vector<double> x;  ///< row-major p×c coefficient panel

  /// Coefficient columns implied by the objective (C−1 for softmax).
  [[nodiscard]] std::size_t coef_cols() const;
};

/// Write `model` to `path`. Throws RuntimeError on I/O failure and
/// InvalidArgument when the model shape is inconsistent.
void save_model(const SavedModel& model, const std::string& path);

/// Read a model back; strict parse — throws InvalidArgument naming the
/// offending path/line on any malformed or truncated input.
SavedModel load_model(const std::string& path);

}  // namespace nadmm::serve
