// Online quantile sketch for serving-latency percentiles.
//
// HDR-histogram-style log-bucketed counting: a value lands in the
// geometric bucket [floor·g^(i−1), floor·g^i) with growth g = (1 + ε)²,
// and a quantile query walks the cumulative counts and answers with the
// bucket's geometric midpoint, so the relative error is bounded by
// √g − 1 = ε. Inserts are O(1), queries O(buckets), and — unlike P² or
// t-digest — the state after n inserts depends only on the multiset of
// values, never on insertion order, which is what keeps serving reports
// byte-identical across sweep `--jobs` levels.
#pragma once

#include <cstdint>
#include <vector>

namespace nadmm::serve {

class QuantileSketch {
 public:
  /// `relative_error` ε ∈ (0, 0.5] bounds the quantile error; `floor` is
  /// the resolution limit — values at or below it share one exact-ish
  /// bucket (1 ns default, far below any simulated latency of interest).
  explicit QuantileSketch(double relative_error = 0.01, double floor = 1e-9);

  /// Insert one value (must be finite and >= 0).
  void add(double value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  /// Exact extremes (tracked outside the buckets).
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Value at quantile q ∈ [0, 1] with relative error <= ε, clamped to
  /// the exact [min, max]. Throws InvalidArgument on an empty sketch.
  [[nodiscard]] double quantile(double q) const;

  /// Fold `other` into this sketch. Because the state is a pure function
  /// of the value multiset, merge(a, b) is exactly the sketch of the
  /// concatenated samples — which is what lets telemetry combine
  /// per-rank histograms. Both sketches must share ε and floor.
  void merge(const QuantileSketch& other);

 private:
  double floor_;
  double growth_;          // bucket width ratio g = (1 + ε)²
  double inv_log_growth_;  // 1 / log g
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<std::uint64_t> buckets_;  // grown on demand
};

}  // namespace nadmm::serve
