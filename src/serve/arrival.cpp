#include "serve/arrival.hpp"

#include <cmath>
#include <cstdio>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace nadmm::serve {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// Split `spec` on ':' into at most `max_fields + 1` tokens (kind first).
std::vector<std::string> split_spec(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (true) {
    const auto colon = spec.find(':', begin);
    if (colon == std::string::npos) {
      out.push_back(spec.substr(begin));
      return out;
    }
    out.push_back(spec.substr(begin, colon - begin));
    begin = colon + 1;
  }
}

double parse_field(const std::string& spec, const std::vector<std::string>& f,
                   std::size_t i, double fallback) {
  if (i >= f.size()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(f[i], &pos);
    NADMM_CHECK(pos == f[i].size(), "trailing characters");
    return v;
  } catch (const std::exception&) {
    throw InvalidArgument("arrival spec '" + spec + "': malformed number '" +
                          f[i] + "'");
  }
}

}  // namespace

PoissonArrival::PoissonArrival(double rate) : rate_(rate) {
  NADMM_CHECK(rate > 0.0, "poisson arrival: rate must be positive");
}

std::string PoissonArrival::name() const { return "poisson:" + fmt(rate_); }

DiurnalArrival::DiurnalArrival(double mean, double amplitude, double period)
    : mean_(mean), amplitude_(amplitude), period_(period) {
  NADMM_CHECK(mean > 0.0, "diurnal arrival: mean rate must be positive");
  NADMM_CHECK(amplitude >= 0.0 && amplitude <= 1.0,
              "diurnal arrival: amplitude must be in [0, 1]");
  NADMM_CHECK(period > 0.0, "diurnal arrival: period must be positive");
}

std::string DiurnalArrival::name() const {
  return "diurnal:" + fmt(mean_) + ':' + fmt(amplitude_) + ':' + fmt(period_);
}

double DiurnalArrival::rate_at(double t) const {
  return mean_ * (1.0 + amplitude_ * std::sin(kTwoPi * t / period_));
}

BurstyArrival::BurstyArrival(double base, double burst, double period,
                             double duty)
    : base_(base), burst_(burst), period_(period), duty_(duty) {
  NADMM_CHECK(base > 0.0, "bursty arrival: base rate must be positive");
  NADMM_CHECK(burst >= base,
              "bursty arrival: burst rate must be >= base rate");
  NADMM_CHECK(period > 0.0, "bursty arrival: period must be positive");
  NADMM_CHECK(duty > 0.0 && duty < 1.0,
              "bursty arrival: duty must be in (0, 1)");
}

std::string BurstyArrival::name() const {
  return "bursty:" + fmt(base_) + ':' + fmt(burst_) + ':' + fmt(period_) +
         ':' + fmt(duty_);
}

double BurstyArrival::rate_at(double t) const {
  const double phase = t - period_ * std::floor(t / period_);
  return phase < duty_ * period_ ? burst_ : base_;
}

std::unique_ptr<ArrivalModel> make_arrival(const std::string& spec) {
  NADMM_CHECK(!spec.empty(), "arrival spec must not be empty");
  const auto f = split_spec(spec);
  const std::string& kind = f[0];
  if (kind == "poisson") {
    NADMM_CHECK(f.size() <= 2, "arrival spec '" + spec + "': too many fields");
    return std::make_unique<PoissonArrival>(parse_field(spec, f, 1, 1000.0));
  }
  if (kind == "diurnal") {
    NADMM_CHECK(f.size() <= 4, "arrival spec '" + spec + "': too many fields");
    return std::make_unique<DiurnalArrival>(parse_field(spec, f, 1, 1000.0),
                                            parse_field(spec, f, 2, 0.8),
                                            parse_field(spec, f, 3, 1.0));
  }
  if (kind == "bursty") {
    NADMM_CHECK(f.size() <= 5, "arrival spec '" + spec + "': too many fields");
    return std::make_unique<BurstyArrival>(parse_field(spec, f, 1, 400.0),
                                           parse_field(spec, f, 2, 4000.0),
                                           parse_field(spec, f, 3, 0.5),
                                           parse_field(spec, f, 4, 0.2));
  }
  throw InvalidArgument("arrival spec '" + spec +
                        "': unknown kind '" + kind +
                        "' (expected poisson|diurnal|bursty)");
}

std::vector<Request> make_request_stream(const ArrivalModel& model,
                                         std::size_t count,
                                         std::size_t pool_size,
                                         std::uint64_t seed) {
  NADMM_CHECK(count == 0 || pool_size > 0,
              "request stream needs a non-empty pool");
  std::vector<Request> out;
  out.reserve(count);
  const double peak = model.peak_rate();
  NADMM_CHECK(peak > 0.0, "arrival model peak rate must be positive");
  Rng rng(seed);
  double t = 0.0;
  std::uint64_t id = 0;
  while (out.size() < count) {
    // Candidate gap at the envelope rate; accept with λ(t)/peak (thinning),
    // so the accepted stream is a non-homogeneous Poisson process.
    double u = 1.0 - rng.uniform();  // (0, 1]
    t += -std::log(u) / peak;
    if (rng.uniform() * peak <= model.rate_at(t)) {
      Request r;
      r.id = id++;
      r.arrival_s = t;
      r.row = static_cast<std::size_t>(rng.uniform_index(pool_size));
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace nadmm::serve
