// Virtual-time streaming inference server.
//
// Two ranks on the async event engine (comm/async.hpp): rank 0 replays a
// deterministic request schedule (serve/arrival.hpp) by timer, rank 1
// queues the requests, cuts batches under a pluggable policy
// (serve/batching.hpp), and runs each batch through the fused
// softmax-forward kernel (la/kernels.hpp) on the configured device
// model. Batch compute is priced by the device roofline through the
// rank's SimClock — the coefficient panel is re-read per dispatch, so
// batching amortizes real bandwidth — plus a fixed per-dispatch overhead
// (kernel launch + result framing), the cost that makes the
// immediate-dispatch policy collapse under load. Latency is
// completion-clock minus delivery-time per request, accumulated in an
// online quantile sketch (serve/quantile.hpp).
//
// Everything — schedule, event order, kernel flops, clock arithmetic —
// is deterministic, so a serving scenario reports byte-identical numbers
// at any sweep --jobs level.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.hpp"
#include "serve/model_io.hpp"

namespace nadmm::serve {

struct ServeConfig {
  std::string arrival = "poisson:1000";  ///< serve/arrival.hpp spec
  std::string batch = "immediate";       ///< serve/batching.hpp spec
  std::size_t requests = 10'000;         ///< stream length
  std::uint64_t seed = 42;               ///< schedule seed
  std::string device = "p100";           ///< server device model
  std::string network = "ideal";         ///< request transport
  /// Fixed per-dispatch cost (kernel launch, result framing) charged to
  /// the server clock on top of the batch's roofline time — the term
  /// batching amortizes.
  double dispatch_overhead_s = 1e-4;
  int omp_threads = 1;  ///< handler compute threads (1 = deterministic)
};

struct ServeResult {
  std::string arrival;  ///< canonical arrival spec served
  std::string batch;    ///< canonical batch-policy spec served
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t deadline_flushes = 0;  ///< dispatches cut by the timer
  double total_sim_seconds = 0.0;      ///< server clock at last completion
  double throughput_rps = 0.0;         ///< requests / total_sim_seconds
  double mean_batch = 0.0;
  std::uint64_t max_batch_seen = 0;
  double mean_latency_s = 0.0;
  double p50_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double p999_latency_s = 0.0;
  double max_latency_s = 0.0;
  /// Served-prediction accuracy against the pool labels (softmax only).
  double accuracy = 0.0;
  double server_compute_seconds = 0.0;
  double server_wait_seconds = 0.0;
};

/// Serve `config.requests` synthetic requests drawn from `pool` rows
/// against `model`. The pool's feature dimension (and, for softmax, its
/// class count) must match the model. Throws InvalidArgument on
/// mismatched shapes or malformed specs.
ServeResult simulate(const SavedModel& model, const data::Dataset& pool,
                     const ServeConfig& config);

}  // namespace nadmm::serve
