#include "serve/model_io.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace nadmm::serve {

namespace {

constexpr const char* kMagic = "nadmm-model v1";
constexpr std::size_t kCoefPerLine = 16;

std::string fmt_exact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

[[noreturn]] void fail(const std::string& path, int line,
                       const std::string& what) {
  throw InvalidArgument("model file " + path + ":" + std::to_string(line) +
                        ": " + what);
}

}  // namespace

std::size_t SavedModel::coef_cols() const {
  NADMM_CHECK(num_classes >= 2, "saved model: needs >= 2 classes");
  return objective == "softmax"
             ? static_cast<std::size_t>(num_classes) - 1
             : static_cast<std::size_t>(num_classes);
}

void save_model(const SavedModel& model, const std::string& path) {
  NADMM_CHECK(model.objective == "softmax" ||
                  model.objective == "least-squares",
              "saved model: unknown objective '" + model.objective + "'");
  NADMM_CHECK(model.num_features > 0, "saved model: needs >= 1 feature");
  NADMM_CHECK(model.x.size() == model.num_features * model.coef_cols(),
              "saved model: coefficient count does not match features × "
              "classes");
  std::ofstream out(path);
  if (!out) throw RuntimeError("cannot open model file for writing: " + path);
  out << kMagic << '\n'
      << "objective " << model.objective << '\n'
      << "solver " << (model.solver.empty() ? "-" : model.solver) << '\n'
      << "dataset " << (model.dataset.empty() ? "-" : model.dataset) << '\n'
      << "features " << model.num_features << '\n'
      << "classes " << model.num_classes << '\n'
      << "lambda " << fmt_exact(model.lambda) << '\n'
      << "coefficients " << model.x.size() << '\n';
  for (std::size_t i = 0; i < model.x.size(); ++i) {
    out << fmt_exact(model.x[i])
        << ((i % kCoefPerLine == kCoefPerLine - 1 || i + 1 == model.x.size())
                ? '\n'
                : ' ');
  }
  out << "end\n";
  out.flush();
  if (!out) throw RuntimeError("failed writing model file: " + path);
}

SavedModel load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw RuntimeError("cannot open model file: " + path);
  int line_no = 0;
  std::string line;
  const auto next_line = [&]() -> std::string& {
    if (!std::getline(in, line)) fail(path, line_no + 1, "unexpected EOF");
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return line;
  };
  const auto field = [&](const std::string& key) {
    next_line();
    if (line.rfind(key + ' ', 0) != 0) {
      fail(path, line_no, "expected '" + key + " <value>', got '" + line + "'");
    }
    return line.substr(key.size() + 1);
  };

  if (next_line() != kMagic) {
    fail(path, line_no, std::string("expected header '") + kMagic + "'");
  }
  SavedModel m;
  m.objective = field("objective");
  if (m.objective != "softmax" && m.objective != "least-squares") {
    fail(path, line_no, "unknown objective '" + m.objective + "'");
  }
  m.solver = field("solver");
  if (m.solver == "-") m.solver.clear();
  m.dataset = field("dataset");
  if (m.dataset == "-") m.dataset.clear();
  try {
    m.num_features = std::stoull(field("features"));
    m.num_classes = std::stoi(field("classes"));
    m.lambda = std::stod(field("lambda"));
  } catch (const std::exception&) {
    fail(path, line_no, "malformed numeric field");
  }
  if (m.num_features == 0) fail(path, line_no, "features must be positive");
  if (m.num_classes < 2) fail(path, line_no, "classes must be >= 2");

  std::size_t count = 0;
  try {
    count = std::stoull(field("coefficients"));
  } catch (const std::exception&) {
    fail(path, line_no, "malformed coefficient count");
  }
  if (count != m.num_features * m.coef_cols()) {
    fail(path, line_no,
         "coefficient count does not match features × classes");
  }
  m.x.reserve(count);
  while (m.x.size() < count) {
    std::istringstream row(next_line());
    std::string token;
    while (row >> token) {
      if (m.x.size() == count) {
        fail(path, line_no, "more coefficients than declared");
      }
      char* end = nullptr;
      const double v = std::strtod(token.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        fail(path, line_no, "malformed coefficient '" + token + "'");
      }
      m.x.push_back(v);
    }
  }
  if (next_line() != "end") fail(path, line_no, "missing 'end' marker");
  return m;
}

}  // namespace nadmm::serve
