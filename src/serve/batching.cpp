#include "serve/batching.hpp"

#include <cstdio>

#include "support/check.hpp"

namespace nadmm::serve {

namespace {

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::size_t parse_batch(const std::string& spec, const std::string& field) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(field, &pos);
    NADMM_CHECK(pos == field.size(), "trailing characters");
    NADMM_CHECK(v > 0, "batch size must be positive");
    return static_cast<std::size_t>(v);
  } catch (const InvalidArgument&) {
    throw;
  } catch (const std::exception&) {
    throw InvalidArgument("batch spec '" + spec + "': malformed batch size '" +
                          field + "'");
  }
}

double parse_delay(const std::string& spec, const std::string& field) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(field, &pos);
    NADMM_CHECK(pos == field.size(), "trailing characters");
    return v;
  } catch (const std::exception&) {
    throw InvalidArgument("batch spec '" + spec + "': malformed deadline '" +
                          field + "'");
  }
}

}  // namespace

MaxSizePolicy::MaxSizePolicy(std::size_t batch) : batch_(batch) {
  NADMM_CHECK(batch >= 1, "size policy: batch must be >= 1");
}

std::string MaxSizePolicy::name() const {
  return "size:" + std::to_string(batch_);
}

DeadlinePolicy::DeadlinePolicy(std::size_t batch, double delay_s)
    : batch_(batch), delay_s_(delay_s) {
  NADMM_CHECK(batch >= 1, "deadline policy: batch must be >= 1");
  NADMM_CHECK(delay_s >= 0.0, "deadline policy: delay must be >= 0 seconds");
}

std::string DeadlinePolicy::name() const {
  return "deadline:" + std::to_string(batch_) + ':' + fmt(delay_s_);
}

std::unique_ptr<BatchPolicy> make_batch_policy(const std::string& spec) {
  NADMM_CHECK(!spec.empty(), "batch spec must not be empty");
  if (spec == "immediate") return std::make_unique<ImmediatePolicy>();
  const auto first = spec.find(':');
  const std::string kind = spec.substr(0, first);
  if (kind == "size") {
    NADMM_CHECK(first != std::string::npos, "batch spec '" + spec +
                                                "': size needs a batch size "
                                                "(size:<B>)");
    return std::make_unique<MaxSizePolicy>(
        parse_batch(spec, spec.substr(first + 1)));
  }
  if (kind == "deadline") {
    NADMM_CHECK(first != std::string::npos,
                "batch spec '" + spec +
                    "': deadline needs <B>:<seconds> (deadline:16:0.005)");
    const std::string rest = spec.substr(first + 1);
    const auto second = rest.find(':');
    NADMM_CHECK(second != std::string::npos,
                "batch spec '" + spec +
                    "': deadline needs <B>:<seconds> (deadline:16:0.005)");
    return std::make_unique<DeadlinePolicy>(
        parse_batch(spec, rest.substr(0, second)),
        parse_delay(spec, rest.substr(second + 1)));
  }
  throw InvalidArgument("batch spec '" + spec + "': unknown kind '" + kind +
                        "' (expected immediate|size:<B>|deadline:<B>:<T>)");
}

}  // namespace nadmm::serve
