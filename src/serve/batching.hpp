// Pluggable request-batching policies for the serving loop.
//
// The server queues arriving requests and asks its policy when to cut a
// batch for the fused forward kernel:
//   * immediate      — every request dispatches alone (lowest latency at
//                      low load; collapses when per-dispatch overhead
//                      saturates the device);
//   * size:<B>       — wait for B requests (best amortization; the tail
//                      latency is unbounded during traffic lulls);
//   * deadline:<B>:<T> — dispatch at B requests or once the oldest queued
//                      request has waited T seconds, whichever comes
//                      first (near-size throughput with a bounded tail).
// Policies are pure decision rules; the timer mechanics live in the
// server (serve/server.hpp).
#pragma once

#include <memory>
#include <string>

namespace nadmm::serve {

class BatchPolicy {
 public:
  virtual ~BatchPolicy() = default;
  /// Canonical spec string ("deadline:16:0.005"), echoed in reports.
  [[nodiscard]] virtual std::string name() const = 0;
  /// Most requests one dispatch may gather.
  [[nodiscard]] virtual std::size_t max_batch() const = 0;
  /// True when `queued` pending requests should dispatch without waiting.
  [[nodiscard]] virtual bool ready(std::size_t queued) const = 0;
  /// Longest the oldest queued request may wait before a flush timer
  /// fires (seconds); < 0 disables the timer (flush only on `ready` or
  /// end of stream).
  [[nodiscard]] virtual double max_delay() const { return -1.0; }
};

class ImmediatePolicy final : public BatchPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "immediate"; }
  [[nodiscard]] std::size_t max_batch() const override { return 1; }
  [[nodiscard]] bool ready(std::size_t queued) const override {
    return queued >= 1;
  }
};

class MaxSizePolicy final : public BatchPolicy {
 public:
  explicit MaxSizePolicy(std::size_t batch);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t max_batch() const override { return batch_; }
  [[nodiscard]] bool ready(std::size_t queued) const override {
    return queued >= batch_;
  }

 private:
  std::size_t batch_;
};

class DeadlinePolicy final : public BatchPolicy {
 public:
  DeadlinePolicy(std::size_t batch, double delay_s);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t max_batch() const override { return batch_; }
  [[nodiscard]] bool ready(std::size_t queued) const override {
    return queued >= batch_;
  }
  [[nodiscard]] double max_delay() const override { return delay_s_; }

 private:
  std::size_t batch_;
  double delay_s_;
};

/// Build a policy from its spec string:
///   immediate | size:<B> | deadline:<B>:<seconds>
/// Throws InvalidArgument (naming the spec) on malformed input.
std::unique_ptr<BatchPolicy> make_batch_policy(const std::string& spec);

}  // namespace nadmm::serve
