#include "serve/server.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <vector>

#include "comm/async.hpp"
#include "la/flops.hpp"
#include "la/kernels.hpp"
#include "serve/arrival.hpp"
#include "serve/batching.hpp"
#include "serve/quantile.hpp"
#include "support/check.hpp"
#include "support/telemetry.hpp"

namespace nadmm::serve {

namespace {

constexpr int kGenerator = 0;
constexpr int kServer = 1;
constexpr int kTickTag = 1;     // generator self-timer: emit next request
constexpr int kRequestTag = 2;  // generator → server: one request
constexpr int kDoneTag = 3;     // generator → server: stream exhausted
constexpr int kFlushTag = 4;    // server self-timer: deadline flush

struct Pending {
  std::uint64_t id;
  double arrival_s;  // delivery time at the server
  std::size_t row;
};

/// Copy pool rows into a dense batch panel (densifying CSR rows), and
/// credit the copy's memory traffic so the roofline prices the gather.
void gather_rows(const data::Dataset& pool, const std::deque<Pending>& queue,
                 std::size_t count, la::DenseMatrix& rows,
                 std::vector<std::int32_t>& labels) {
  const std::size_t p = pool.num_features();
  const auto pool_labels = pool.labels();
  std::uint64_t moved = 0;
  if (pool.is_sparse()) {
    const la::CsrView view = pool.csr_view();
    const auto rp = view.row_ptr();
    const auto cols = view.col_idx();
    const auto vals = view.values();
    rows.fill(0.0);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t r = queue[i].row;
      auto out = rows.row(i);
      for (std::int64_t k = rp[r]; k < rp[r + 1]; ++k) {
        out[static_cast<std::size_t>(cols[k])] = vals[k];
      }
      moved += static_cast<std::uint64_t>(rp[r + 1] - rp[r]) * 16 + p * 8;
      labels[i] = pool_labels[r];
    }
  } else {
    const la::DenseView view = pool.dense_view();
    for (std::size_t i = 0; i < count; ++i) {
      const auto src = view.row(queue[i].row);
      std::memcpy(rows.row(i).data(), src.data(), p * sizeof(double));
      moved += p * 16;
      labels[i] = pool_labels[queue[i].row];
    }
  }
  nadmm::flops::add_bytes(moved);
}

}  // namespace

ServeResult simulate(const SavedModel& model, const data::Dataset& pool,
                     const ServeConfig& config) {
  NADMM_CHECK(!pool.empty(), "serving needs a non-empty request pool");
  NADMM_CHECK(pool.num_features() == model.num_features,
              "request pool has " + std::to_string(pool.num_features()) +
                  " features but the model expects " +
                  std::to_string(model.num_features));
  const bool softmax = model.objective == "softmax";
  if (softmax) {
    NADMM_CHECK(pool.num_classes() == model.num_classes,
                "request pool has " + std::to_string(pool.num_classes()) +
                    " classes but the model expects " +
                    std::to_string(model.num_classes));
  }
  NADMM_CHECK(config.dispatch_overhead_s >= 0.0,
              "dispatch overhead must be >= 0 seconds");

  const auto arrival = make_arrival(config.arrival);
  const auto policy = make_batch_policy(config.batch);
  const auto stream = make_request_stream(*arrival, config.requests,
                                          pool.num_samples(), config.seed);

  const std::size_t p = model.num_features;
  const std::size_t c = model.coef_cols();
  NADMM_CHECK(model.x.size() == p * c,
              "model coefficient count does not match features × classes");
  const la::DenseMatrix coef(p, c, model.x);
  const auto implicit_class = static_cast<std::int32_t>(c);
  const std::size_t cap = policy->max_batch();

  // --- server state, mutated only by the single-threaded event loop ----
  std::deque<Pending> queue;
  QuantileSketch sketch;
  double latency_sum = 0.0;
  double latency_max = 0.0;
  double finish_time = 0.0;
  std::uint64_t served = 0, batches = 0, deadline_flushes = 0, correct = 0;
  std::uint64_t max_batch_seen = 0;
  bool draining = false;
  constexpr std::uint64_t kNoTimer = ~0ull;
  std::uint64_t timer_armed_for = kNoTimer;
  std::size_t next_request = 0;  // generator cursor into `stream`

  la::DenseMatrix rows(cap, p);
  std::vector<std::int32_t> labels(cap);

  auto dispatch = [&](comm::AsyncRank& rank) {
    TELEM_SPAN("serve", "batch_dispatch");
    telem::count("batches_dispatched");
    const std::size_t b = std::min(queue.size(), cap);
    gather_rows(pool, queue, b, rows, labels);
    la::DenseMatrix scores(b, c);
    la::kernels::gemm_nn(1.0, rows.view(0, b), coef, 0.0, scores);
    if (softmax) {
      la::DenseMatrix probs(b, c);
      std::vector<double> lse(b);
      la::kernels::softmax_forward(
          scores, {labels.data(), b}, probs, lse);
      for (std::size_t i = 0; i < b; ++i) {
        const auto s = scores.row(i);
        double best = 0.0;  // implicit reference class
        std::int32_t pred = implicit_class;
        for (std::size_t j = 0; j < c; ++j) {
          if (s[j] > best) {
            best = s[j];
            pred = static_cast<std::int32_t>(j);
          }
        }
        correct += (pred == labels[i]) ? 1 : 0;
      }
    }
    rank.clock().add_compute(config.dispatch_overhead_s);
    rank.clock().sync_compute();
    const double done_t = rank.now();
    finish_time = done_t;
    for (std::size_t i = 0; i < b; ++i) {
      const double latency = done_t - queue[i].arrival_s;
      sketch.add(latency);
      latency_sum += latency;
      latency_max = std::max(latency_max, latency);
    }
    queue.erase(queue.begin(), queue.begin() + static_cast<std::ptrdiff_t>(b));
    served += b;
    ++batches;
    max_batch_seen = std::max<std::uint64_t>(max_batch_seen, b);
  };

  auto arm_timer = [&](comm::AsyncRank& rank) {
    if (draining || queue.empty() || policy->max_delay() < 0.0) return;
    if (timer_armed_for == queue.front().id) return;
    timer_armed_for = queue.front().id;
    const double fire_at = queue.front().arrival_s + policy->max_delay();
    rank.send_self(kFlushTag, std::max(0.0, fire_at - rank.now()),
                   {static_cast<double>(timer_armed_for)});
  };

  auto pump = [&](comm::AsyncRank& rank) {
    while (!queue.empty() && (draining || policy->ready(queue.size()))) {
      dispatch(rank);
    }
    arm_timer(rank);
  };

  const auto on_start = [&](comm::AsyncRank& rank) {
    if (rank.rank() != kGenerator) return;
    if (stream.empty()) {
      rank.send(kServer, kDoneTag, {});
      rank.halt();
      return;
    }
    rank.send_self(kTickTag, stream[0].arrival_s);
  };

  const auto on_message = [&](comm::AsyncRank& rank,
                              const comm::AsyncMessage& m) {
    if (rank.rank() == kGenerator) {
      if (m.tag != kTickTag) return;
      const Request& r = stream[next_request];
      rank.send(kServer, kRequestTag,
                {static_cast<double>(r.id), static_cast<double>(r.row)});
      ++next_request;
      if (next_request < stream.size()) {
        rank.send_self(kTickTag,
                       std::max(0.0, stream[next_request].arrival_s -
                                         rank.now()));
      } else {
        rank.send(kServer, kDoneTag, {});
        rank.halt();
      }
      return;
    }
    switch (m.tag) {
      case kRequestTag: {
        Pending pending;
        pending.id = static_cast<std::uint64_t>(m.payload[0]);
        pending.arrival_s = m.delivery_time;
        pending.row = static_cast<std::size_t>(m.payload[1]);
        queue.push_back(pending);
        pump(rank);
        break;
      }
      case kFlushTag: {
        // Stale when the armed head was already dispatched by a size or
        // drain trigger — the queue front moved past it.
        const auto armed = static_cast<std::uint64_t>(m.payload[0]);
        if (!queue.empty() && queue.front().id == armed) {
          ++deadline_flushes;
          dispatch(rank);
        }
        if (timer_armed_for == armed) timer_armed_for = kNoTimer;
        pump(rank);
        break;
      }
      case kDoneTag: {
        draining = true;
        pump(rank);
        rank.halt();
        break;
      }
      default: break;
    }
  };

  comm::AsyncEngine engine(
      {la::cpu_device(), la::device_from_string(config.device)},
      comm::network_from_string(config.network), config.omp_threads);
  const auto reports = engine.run(on_start, on_message);

  ServeResult result;
  result.arrival = arrival->name();
  result.batch = policy->name();
  result.requests = served;
  result.batches = batches;
  result.deadline_flushes = deadline_flushes;
  result.total_sim_seconds = finish_time;
  result.max_batch_seen = max_batch_seen;
  result.server_compute_seconds = reports[kServer].compute_seconds;
  result.server_wait_seconds = reports[kServer].wait_seconds;
  if (served > 0) {
    result.throughput_rps =
        finish_time > 0.0 ? static_cast<double>(served) / finish_time : 0.0;
    result.mean_batch =
        static_cast<double>(served) / static_cast<double>(batches);
    result.mean_latency_s = latency_sum / static_cast<double>(served);
    result.p50_latency_s = sketch.quantile(0.50);
    result.p99_latency_s = sketch.quantile(0.99);
    result.p999_latency_s = sketch.quantile(0.999);
    result.max_latency_s = latency_max;
    if (softmax) {
      result.accuracy =
          static_cast<double>(correct) / static_cast<double>(served);
    }
  }
  return result;
}

}  // namespace nadmm::serve
