// Synthetic request-arrival models for the serving plane.
//
// A pluggable intensity-function hierarchy drives the request generator:
// steady Poisson traffic, a diurnal curve (sinusoidal intensity, the
// day/night swing of a user-facing service), and bursty imbalance
// (alternating quiet/burst regimes). Schedules are drawn by thinning a
// peak-rate Poisson process through nadmm::Rng, so for a given
// (spec, seed, count, pool) the event schedule is bit-identical on every
// machine and at any sweep --jobs level — the serving determinism
// contract starts here.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace nadmm::serve {

/// One synthetic inference request.
struct Request {
  std::uint64_t id = 0;
  double arrival_s = 0.0;  ///< virtual seconds since stream start
  std::size_t row = 0;     ///< index into the request pool (test rows)
};

/// Time-varying arrival intensity λ(t) in requests/second.
class ArrivalModel {
 public:
  virtual ~ArrivalModel() = default;
  /// Canonical spec string ("poisson:1000", ...), echoed in reports.
  [[nodiscard]] virtual std::string name() const = 0;
  /// Instantaneous intensity at time t (>= 0 for all t).
  [[nodiscard]] virtual double rate_at(double t) const = 0;
  /// Upper bound on rate_at over all t — the thinning envelope.
  [[nodiscard]] virtual double peak_rate() const = 0;
  /// Long-run mean intensity (reporting only).
  [[nodiscard]] virtual double mean_rate() const = 0;
};

/// Homogeneous Poisson stream: λ(t) = rate.
class PoissonArrival final : public ArrivalModel {
 public:
  explicit PoissonArrival(double rate);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double rate_at(double /*t*/) const override { return rate_; }
  [[nodiscard]] double peak_rate() const override { return rate_; }
  [[nodiscard]] double mean_rate() const override { return rate_; }

 private:
  double rate_;
};

/// Diurnal curve: λ(t) = mean·(1 + amplitude·sin(2πt / period)).
class DiurnalArrival final : public ArrivalModel {
 public:
  DiurnalArrival(double mean, double amplitude, double period);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double rate_at(double t) const override;
  [[nodiscard]] double peak_rate() const override {
    return mean_ * (1.0 + amplitude_);
  }
  [[nodiscard]] double mean_rate() const override { return mean_; }

 private:
  double mean_;
  double amplitude_;
  double period_;
};

/// Bursty imbalance: λ(t) = burst for the first duty·period seconds of
/// every period, base otherwise.
class BurstyArrival final : public ArrivalModel {
 public:
  BurstyArrival(double base, double burst, double period, double duty);
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double rate_at(double t) const override;
  [[nodiscard]] double peak_rate() const override { return burst_; }
  [[nodiscard]] double mean_rate() const override {
    return duty_ * burst_ + (1.0 - duty_) * base_;
  }

 private:
  double base_;
  double burst_;
  double period_;
  double duty_;
};

/// Build a model from its spec string:
///   poisson[:<rate>]                        (default rate 1000)
///   diurnal[:<mean>[:<amplitude>[:<period>]]]   (1000, 0.8, 1.0)
///   bursty[:<base>[:<burst>[:<period>[:<duty>]]]] (400, 4000, 0.5, 0.2)
/// Throws InvalidArgument (naming the spec) on malformed input.
std::unique_ptr<ArrivalModel> make_arrival(const std::string& spec);

/// Deterministic schedule of `count` requests: non-decreasing arrival
/// times drawn by thinning a peak-rate exponential stream, rows uniform
/// over [0, pool_size). Bit-identical for a given (model, count,
/// pool_size, seed).
std::vector<Request> make_request_stream(const ArrivalModel& model,
                                         std::size_t count,
                                         std::size_t pool_size,
                                         std::uint64_t seed);

}  // namespace nadmm::serve
