#include "solvers/newton.hpp"

#include "la/vector_ops.hpp"
#include "support/check.hpp"

namespace nadmm::solvers {

NewtonResult newton_cg(model::Objective& objective, std::vector<double> x0,
                       const NewtonOptions& options) {
  NADMM_CHECK(x0.size() == objective.dim(), "newton_cg: x0 dimension mismatch");
  NADMM_CHECK(options.max_iterations >= 0, "newton_cg: bad max_iterations");

  NewtonResult result;
  result.x = std::move(x0);
  const std::size_t dim = objective.dim();
  std::vector<double> g(dim), p(dim);

  double f = objective.value_and_gradient(result.x, g);
  double g_norm = la::nrm2(g);

  for (int k = 0; k < options.max_iterations; ++k) {
    if (g_norm < options.gradient_tol) {
      result.converged = true;
      break;
    }
    const CgResult cg = conjugate_gradient(
        [&](std::span<const double> v, std::span<double> hv) {
          objective.hessian_vec(result.x, v, hv);
        },
        g, p, options.cg);

    const double directional = la::dot(p, g);
    // CG from p=0 on an SPD system always yields a descent direction;
    // guard anyway (negative-curvature fallback is −g, also descent).
    if (directional >= 0.0) {
      result.converged = g_norm < options.gradient_tol;
      break;
    }
    const LineSearchResult ls = armijo_backtrack(objective, result.x, p, f,
                                                 directional, options.line_search);
    if (ls.alpha == 0.0) {
      // No decrease possible along p: stagnation; stop.
      break;
    }
    la::axpy(ls.alpha, p, result.x);
    f = objective.value_and_gradient(result.x, g);
    g_norm = la::nrm2(g);
    result.iterations = k + 1;
    if (options.record_trace) {
      result.trace.push_back(
          {f, g_norm, ls.alpha, cg.iterations, cg.rel_residual});
    }
  }
  if (g_norm < options.gradient_tol) result.converged = true;
  result.final_value = f;
  result.final_gradient_norm = g_norm;
  return result;
}

}  // namespace nadmm::solvers
