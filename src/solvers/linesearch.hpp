// Armijo backtracking line search (paper Algorithm 3, condition eq. 3c):
// find the largest α = ρ^i·α₀ with F(x + αp) ≤ F(x) + αβ pᵀg.
#pragma once

#include <span>

#include "model/objective.hpp"

namespace nadmm::solvers {

struct LineSearchOptions {
  double alpha0 = 1.0;      ///< initial step size
  double beta = 1e-4;       ///< sufficient-decrease constant (0,1)
  double backtrack = 0.5;   ///< ρ in Algorithm 3
  int max_iterations = 10;  ///< i_max; paper uses 10
};

struct LineSearchResult {
  double alpha = 0.0;       ///< accepted step (0 if no decrease at all)
  double f_new = 0.0;       ///< objective at x + alpha·p
  int iterations = 0;       ///< backtracking steps taken
  bool satisfied = false;   ///< Armijo condition met within i_max
};

/// `f0` = F(x), `directional` = pᵀg (must be negative for a descent
/// direction). Following the paper's Algorithm 3, if i_max is exhausted
/// the current α is accepted as long as it still decreases F; otherwise
/// α = 0 is returned (caller keeps x).
LineSearchResult armijo_backtrack(model::Objective& objective,
                                  std::span<const double> x,
                                  std::span<const double> p, double f0,
                                  double directional,
                                  const LineSearchOptions& options);

}  // namespace nadmm::solvers
