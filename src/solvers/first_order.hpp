// Single-node first-order methods: full-batch gradient descent and the
// stochastic family the paper's §1.2 surveys (SGD with momentum,
// Adagrad, Adam).
//
// They serve two roles: as reference optimizers in tests (every convex
// objective they minimize must agree with Newton-CG), and as the
// single-node counterparts of the distributed first-order baselines —
// showing why the paper moves to second-order methods: many more
// iterations, step-size sensitivity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/objective.hpp"

namespace nadmm::solvers {

enum class FirstOrderRule { kGradientDescent, kMomentum, kAdagrad, kAdam };

FirstOrderRule first_order_rule_from_string(const std::string& name);
std::string to_string(FirstOrderRule rule);

struct FirstOrderOptions {
  FirstOrderRule rule = FirstOrderRule::kGradientDescent;
  int max_iterations = 1000;
  double step_size = 1e-3;
  double momentum = 0.9;          ///< kMomentum
  double beta1 = 0.9;             ///< kAdam
  double beta2 = 0.999;           ///< kAdam
  double epsilon = 1e-8;          ///< kAdagrad / kAdam denominator guard
  double gradient_tol = 0.0;      ///< stop when ‖g‖ < tol (0: run all)
  std::size_t batch_size = 0;     ///< 0 = full batch (deterministic GD)
  std::uint64_t seed = 99;        ///< batch sampling seed
  bool record_trace = false;
};

struct FirstOrderResult {
  std::vector<double> x;
  int iterations = 0;
  double final_value = 0.0;
  double final_gradient_norm = 0.0;
  bool converged = false;
  std::vector<double> value_trace;  ///< per-iteration F(x) if recorded
};

/// Minimize `objective` with the selected rule. With batch_size == 0 the
/// full gradient is used each step; otherwise `batches` (pre-sliced
/// objectives whose gradients sum to the full one) drive stochastic
/// steps — pass an empty vector for full-batch mode.
FirstOrderResult first_order_minimize(
    model::Objective& objective,
    std::vector<model::Objective*> batches,  // may be empty
    std::vector<double> x0, const FirstOrderOptions& options);

}  // namespace nadmm::solvers
