// Inexact Newton-CG (paper Algorithm 1).
//
// Each iteration: form gradient; solve H p = −g inexactly with CG
// (eq. 3b); Armijo backtracking (eq. 3c); update x ← x + αp. Globally
// linearly convergent on strongly convex problems with a
// problem-independent local rate (Roosta-Khorasani & Mahoney).
#pragma once

#include <vector>

#include "model/objective.hpp"
#include "solvers/cg.hpp"
#include "solvers/linesearch.hpp"

namespace nadmm::solvers {

struct NewtonOptions {
  int max_iterations = 100;
  double gradient_tol = 1e-8;  ///< ε in Algorithm 1: stop when ‖g‖ < ε
  CgOptions cg;
  LineSearchOptions line_search;
  bool record_trace = false;   ///< keep per-iteration diagnostics
};

struct NewtonIterate {
  double value;
  double gradient_norm;
  double step_size;
  int cg_iterations;
  double cg_rel_residual;
};

struct NewtonResult {
  std::vector<double> x;          ///< final iterate
  int iterations = 0;
  double final_value = 0.0;
  double final_gradient_norm = 0.0;
  bool converged = false;         ///< gradient tolerance reached
  std::vector<NewtonIterate> trace;
};

/// Minimize `objective` starting from `x0`.
NewtonResult newton_cg(model::Objective& objective, std::vector<double> x0,
                       const NewtonOptions& options);

}  // namespace nadmm::solvers
