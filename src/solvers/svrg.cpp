#include "solvers/svrg.hpp"

#include "la/vector_ops.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace nadmm::solvers {

namespace {

/// Exact gradient of the smooth finite-sum part: Σ_b ∇f_b(x).
void full_loss_gradient(std::vector<model::SoftmaxObjective>& batches,
                        std::span<const double> x, std::span<double> g,
                        std::span<double> scratch) {
  la::fill(g, 0.0);
  for (auto& b : batches) {
    b.gradient(x, scratch);
    la::axpy(1.0, scratch, g);
  }
}

}  // namespace

SvrgResult svrg_minimize(std::vector<model::SoftmaxObjective>& batches,
                         std::span<const double> linear, double ridge,
                         double mu, std::span<const double> center,
                         std::vector<double> x0, const SvrgOptions& options) {
  NADMM_CHECK(ridge >= 0.0, "svrg: ridge must be nonnegative");
  NADMM_CHECK(!batches.empty(), "svrg: need at least one batch");
  const std::size_t dim = batches.front().dim();
  NADMM_CHECK(x0.size() == dim && linear.size() == dim && center.size() == dim,
              "svrg: dimension mismatch");
  NADMM_CHECK(options.step_size > 0.0, "svrg: step size must be positive");

  std::size_t n_local = 0;
  for (auto& b : batches) n_local += b.num_samples();
  const std::size_t freq = options.update_frequency > 0
                               ? options.update_frequency
                               : 2 * n_local;  // paper: updating frequency 2n

  SvrgResult result;
  result.x = std::move(x0);
  std::vector<double> snapshot(result.x);
  std::vector<double> snapshot_grad(dim), g_batch(dim), g_snap_batch(dim),
      v(dim), scratch(dim);
  Rng rng(options.seed);

  for (int outer = 0; outer < options.max_outer; ++outer) {
    la::copy(result.x, snapshot);
    full_loss_gradient(batches, snapshot, snapshot_grad, scratch);
    result.outer_iterations = outer + 1;

    for (std::size_t t = 0; t < freq; ++t) {
      auto& batch = batches[rng.uniform_index(batches.size())];
      // Unbiased full-loss estimate scale: E[B · ∇f_b] = Σ_b ∇f_b for
      // equal-probability sampling over B batches.
      const double scale = static_cast<double>(batches.size());
      batch.gradient(result.x, g_batch);
      batch.gradient(snapshot, g_snap_batch);
      for (std::size_t j = 0; j < dim; ++j) {
        v[j] = scale * (g_batch[j] - g_snap_batch[j]) + snapshot_grad[j] +
               linear[j] + ridge * result.x[j] +
               mu * (result.x[j] - center[j]);
      }
      la::axpy(-options.step_size, v, result.x);
    }
  }
  // Report ‖∇φ‖ at exit for diagnostics.
  full_loss_gradient(batches, result.x, snapshot_grad, scratch);
  for (std::size_t j = 0; j < dim; ++j) {
    snapshot_grad[j] += linear[j] + ridge * result.x[j] +
                        mu * (result.x[j] - center[j]);
  }
  result.final_subproblem_gradient_norm = la::nrm2(snapshot_grad);
  return result;
}

}  // namespace nadmm::solvers
