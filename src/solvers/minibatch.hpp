// Minibatch slicing for the stochastic solvers (Synchronous SGD, SVRG).
//
// Batches are zero-copy row-range views of the shard (O(1) metadata, no
// per-batch buffer), built once and reused across epochs: shuffling
// permutes the batch visit order, not the rows, which keeps the
// per-batch objective caches (and their GEMM buffers) warm.
#pragma once

#include <vector>

#include "data/dataset.hpp"

namespace nadmm::solvers {

/// Split `shard` into contiguous batches of `batch_size` rows (the final
/// batch may be smaller). batch_size == 0 yields a single full batch.
std::vector<data::Dataset> make_batches(const data::Dataset& shard,
                                        std::size_t batch_size);

}  // namespace nadmm::solvers
