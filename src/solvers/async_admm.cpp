#include "solvers/async_admm.hpp"

#include <algorithm>
#include <climits>
#include <memory>
#include <utility>

#include "comm/async.hpp"
#include "core/admm_worker.hpp"
#include "data/partition.hpp"
#include "la/vector_ops.hpp"
#include "model/metrics.hpp"
#include "model/softmax.hpp"
#include "support/binio.hpp"
#include "support/check.hpp"
#include "support/telemetry.hpp"
#include "support/timer.hpp"

namespace nadmm::solvers {

namespace {

enum : int {
  kTagUpdate = 1,     ///< worker → coordinator: [round, barrier, c.. , ρ]
  kTagConsensus = 2,  ///< coordinator → worker: [z..]
  kTagStop = 3,       ///< coordinator → worker: run is over
};

constexpr std::uint16_t kCheckpointVersion = 1;

/// One applied update, as logged since the last checkpoint: enough to
/// replay the coordinator's commit + reply-gate decisions.
struct CommitEntry {
  int w = 0;
  int round = 0;
  bool flagged = false;
  std::vector<double> packed;  ///< [c ; ρ], dim+1 values
};

/// One consensus delivery a worker applied since the last checkpoint.
struct ReplyEntry {
  int k = 0;              ///< round index passed to apply_consensus
  std::vector<double> z;  ///< the payload the worker copied in
};

std::vector<std::uint8_t> worker_bytes(const core::AdmmWorker& worker) {
  binio::ByteWriter w;
  worker.save_checkpoint(w);
  return w.take();
}

std::vector<std::uint8_t> consensus_bytes(const core::ConsensusState& acc) {
  binio::ByteWriter w;
  acc.save(w);
  return w.take();
}

}  // namespace

core::RunResult async_admm(comm::SimCluster& cluster,
                           const data::ShardedDataset& data,
                           const AsyncAdmmOptions& options) {
  const core::NewtonAdmmOptions& admm = options.admm;
  NADMM_CHECK(admm.max_iterations >= 1, "async_admm: need >= 1 iteration");
  NADMM_CHECK(admm.lambda >= 0.0, "async_admm: lambda must be >= 0");
  NADMM_CHECK(options.staleness >= 0, "async_admm: staleness must be >= 0");
  NADMM_CHECK(options.sync_every >= 0, "async_admm: sync_every must be >= 0");
  NADMM_CHECK(data.parts() == cluster.size(),
              "async_admm: shard plan does not match the cluster size");
  NADMM_CHECK(options.checkpoint_every >= 0,
              "async_admm: checkpoint_every must be >= 0");
  const comm::FaultSpec fault_spec = comm::FaultSpec::parse(options.fault);
  if (options.kill_rank >= 0) {
    NADMM_CHECK(options.kill_rank < cluster.size(),
                "async_admm: kill rank out of range");
    NADMM_CHECK(options.kill_epoch >= 1,
                "async_admm: kill epoch must be >= 1");
    NADMM_CHECK(options.checkpoint_every > 0,
                "async_admm: a kill needs checkpoints — set "
                "--checkpoint-every > 0");
  }

  const int n = cluster.size();
  const std::size_t dim = data.dim();
  // In stale-sync mode the barrier is the only brake on fast workers.
  const int staleness =
      options.sync_every > 0 ? INT_MAX : options.staleness;

  core::RunResult result;
  result.solver = options.sync_every > 0 ? "stale-sync-admm" : "async-admm";

  // --- untimed setup: shards, workers, diagnostic objective ---
  std::vector<std::unique_ptr<core::AdmmWorker>> workers;
  workers.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    workers.push_back(std::make_unique<core::AdmmWorker>(
        data.ranks[static_cast<std::size_t>(r)].train, admm, dim));
  }
  const bool eval_accuracy = admm.evaluate_accuracy && data.test_samples > 0;

  // Coordinator diagnostics. Materialized plans evaluate the full splits
  // (identical numerics to the pre-shard-plan solver); streamed sources
  // have no full matrix, so the objective is the per-shard sum (rank
  // order) and accuracy is the summed per-shard hit count — the same
  // value up to float association, and exactly the same hit count.
  std::unique_ptr<model::SoftmaxObjective> global;
  if (data.has_full()) {
    global = std::make_unique<model::SoftmaxObjective>(data.full_train,
                                                       /*l2_lambda=*/0.0);
  }
  std::vector<std::unique_ptr<model::SoftmaxObjective>> test_evals;
  if (eval_accuracy && !data.has_full()) {
    for (int r = 0; r < n; ++r) {
      const data::Dataset& shard = data.ranks[static_cast<std::size_t>(r)].test;
      test_evals.push_back(
          shard.empty() ? nullptr
                        : std::make_unique<model::SoftmaxObjective>(shard, 0.0));
    }
  }
  const auto diag_objective = [&](std::span<const double> zv) {
    if (global != nullptr) return global->value(zv);
    double sum = 0.0;
    for (auto& w : workers) sum += w->objective().value(zv);
    return sum;
  };
  const auto diag_accuracy = [&](std::span<const double> zv) {
    if (data.has_full()) return model::accuracy(data.full_test, zv);
    double hits = 0.0;
    for (int r = 0; r < n; ++r) {
      auto& eval = test_evals[static_cast<std::size_t>(r)];
      if (eval == nullptr) continue;
      hits += eval->accuracy(zv) *
              static_cast<double>(
                  data.ranks[static_cast<std::size_t>(r)].test.num_samples());
    }
    return hits / static_cast<double>(data.test_samples);
  };

  // --- coordinator state (the event loop is single-threaded) ---
  core::ConsensusState acc(n, dim, admm.lambda);
  std::vector<double> z(dim, 0.0);
  std::vector<int> rounds(static_cast<std::size_t>(n), 0);
  std::vector<int> worker_round(static_cast<std::size_t>(n), 0);
  std::vector<char> deferred(static_cast<std::size_t>(n), 0);
  std::vector<int> barrier;  // arrival order of parked sync-round workers
  barrier.reserve(static_cast<std::size_t>(n));
  std::uint64_t commits = 0;
  int epochs = 0;
  bool stopping = false;
  double prev_sim_time = 0.0;
  std::vector<std::uint64_t>& hist = result.staleness_hist;
  WallTimer wall;

  // --- checkpoint/restart state (all untimed: crash-consistency
  // machinery, not part of the simulated protocol cost) ---
  const bool checkpointing = options.checkpoint_every > 0;
  std::vector<std::uint8_t> checkpoint;      ///< last serialized snapshot
  std::uint64_t checkpoint_commits = 0;      ///< commits at that snapshot
  std::vector<CommitEntry> commit_log;       ///< updates since the snapshot
  std::vector<std::vector<ReplyEntry>> reply_log(static_cast<std::size_t>(n));
  bool pending_kill = false;
  bool killed = false;

  comm::AsyncEngine engine(cluster.devices(), cluster.network(),
                           cluster.omp_threads_per_rank());
  if (options.fault != "none" && !options.fault.empty()) {
    engine.set_faults(fault_spec, options.seed);
  }

  // One local Newton round on this rank, then ship the contribution.
  const auto do_round = [&](comm::AsyncRank& ctx) {
    const int r = ctx.rank();
    const auto packed = workers[static_cast<std::size_t>(r)]->local_step();
    const int round = ++worker_round[static_cast<std::size_t>(r)];
    std::vector<double> payload(dim + 3);
    payload[0] = round;
    payload[1] =
        (options.sync_every > 0 && round % options.sync_every == 0) ? 1.0 : 0.0;
    std::copy(packed.begin(), packed.end(), payload.begin() + 2);
    ctx.send(0, kTagUpdate, std::move(payload));
  };

  const auto reply_z = [&](comm::AsyncRank& ctx, int to) {
    ctx.send(to, kTagConsensus, z);
  };
  const auto reply_stop = [&](comm::AsyncRank& ctx, int to) {
    ctx.send(to, kTagStop, {});
  };

  // Serialize the full recoverable state: coordinator bookkeeping, the
  // consensus accumulator, and every worker's iterate snapshot. Taken at
  // handler exit (the triggering update fully applied), so replaying the
  // since-checkpoint logs reproduces any later handler state exactly.
  const auto take_checkpoint = [&] {
    binio::ByteWriter w;
    w.put_u16(kCheckpointVersion);
    w.put_u64(commits);
    w.put_i64(epochs);
    for (int r = 0; r < n; ++r) {
      w.put_i64(rounds[static_cast<std::size_t>(r)]);
    }
    for (int r = 0; r < n; ++r) {
      w.put_i64(worker_round[static_cast<std::size_t>(r)]);
    }
    for (int r = 0; r < n; ++r) {
      w.put_u8(
          static_cast<std::uint8_t>(deferred[static_cast<std::size_t>(r)]));
    }
    w.put_u64(barrier.size());
    for (const int b : barrier) w.put_i64(b);
    acc.save(w);
    for (int r = 0; r < n; ++r) {
      binio::ByteWriter inner;
      workers[static_cast<std::size_t>(r)]->save_checkpoint(inner);
      w.put_u64(inner.size());
      w.put_bytes(inner.bytes());
    }
    checkpoint = w.take();
    checkpoint_commits = commits;
    commit_log.clear();
    for (auto& log : reply_log) log.clear();
    result.add_metric("checkpoints", 1);
    telem::count("checkpoints");
    telem::instant("fault", "checkpoint");
  };

  const auto maybe_checkpoint = [&](comm::AsyncRank& ctx) {
    if (!checkpointing || stopping) return;
    if (commits - checkpoint_commits <
        static_cast<std::uint64_t>(options.checkpoint_every)) {
      return;
    }
    ctx.clock().pause();  // crash-consistency machinery is untimed
    take_checkpoint();
    ctx.clock().resume();
  };

  // Kill-and-rejoin: discard the victim's live state, restore from the
  // last checkpoint, replay the since-checkpoint logs, and prove the
  // rebuilt state byte-identical to what was lost before adopting it.
  const auto perform_kill = [&](comm::AsyncRank& ctx) {
    pending_kill = false;
    killed = true;
    const int victim = options.kill_rank;
    NADMM_CHECK(!checkpoint.empty(),
                "async_admm: kill at epoch " +
                    std::to_string(options.kill_epoch) +
                    " precedes the first checkpoint — lower "
                    "--checkpoint-every");
    ctx.clock().pause();
    binio::ByteReader r(checkpoint, "solver checkpoint");
    const std::uint16_t version = r.get_u16();
    NADMM_CHECK(version == kCheckpointVersion,
                "solver checkpoint: unsupported version " +
                    std::to_string(version));
    const std::uint64_t commits0 = r.get_u64();
    const int epochs0 = static_cast<int>(r.get_i64());
    std::vector<int> rounds0(static_cast<std::size_t>(n), 0);
    for (auto& v : rounds0) v = static_cast<int>(r.get_i64());
    std::vector<int> worker_round0(static_cast<std::size_t>(n), 0);
    for (auto& v : worker_round0) v = static_cast<int>(r.get_i64());
    std::vector<char> deferred0(static_cast<std::size_t>(n), 0);
    for (auto& v : deferred0) v = static_cast<char>(r.get_u8());
    std::vector<int> barrier0(static_cast<std::size_t>(r.get_u64()), 0);
    for (auto& v : barrier0) v = static_cast<int>(r.get_i64());
    core::ConsensusState acc2(n, dim, admm.lambda);
    acc2.restore(r);

    // Rebuild the victim worker over the same shard/config and replay
    // every consensus delivery it applied since the checkpoint.
    std::unique_ptr<core::AdmmWorker> rejoined;
    for (int rank = 0; rank < n; ++rank) {
      const std::uint64_t len = r.get_u64();
      const auto record = r.get_raw(static_cast<std::size_t>(len));
      if (rank != victim) continue;
      rejoined = std::make_unique<core::AdmmWorker>(
          data.ranks[static_cast<std::size_t>(victim)].train, admm, dim);
      binio::ByteReader wr(record, "worker checkpoint record");
      rejoined->restore_checkpoint(wr);
      wr.expect_end();
    }
    r.expect_end();
    for (const ReplyEntry& e : reply_log[static_cast<std::size_t>(victim)]) {
      rejoined->snapshot_z_prev();
      std::copy(e.z.begin(), e.z.end(), rejoined->z().begin());
      rejoined->apply_consensus(e.k);
      rejoined->local_step();
    }
    // The live worker it replaces holds a warm softmax forward pass at
    // its current x (the last point its Newton-CG evaluated); a cold
    // cache would make the rejoined worker's next local_step recompute
    // it, leaking extra flops into the simulated timeline. Warm it here
    // on the paused clock so the flop ledger matches a run that never
    // lost the rank.
    static_cast<void>(rejoined->objective().value(rejoined->x()));
    NADMM_CHECK(
        worker_bytes(*workers[static_cast<std::size_t>(victim)]) ==
            worker_bytes(*rejoined),
        "async_admm kill-rejoin: worker replay diverged from the lost state");
    workers[static_cast<std::size_t>(victim)] = std::move(rejoined);

    if (victim == 0) {
      // The coordinator died too: replay the commit log through the same
      // per-update logic the live handler ran, then prove every piece of
      // coordinator state matches before adopting the rebuilt copy.
      std::vector<int> rounds2 = rounds0;
      std::vector<char> deferred2 = deferred0;
      std::vector<int> barrier2 = barrier0;
      std::uint64_t commits2 = commits0;
      int epochs2 = epochs0;
      for (const CommitEntry& e : commit_log) {
        rounds2[static_cast<std::size_t>(e.w)] = e.round;
        acc2.apply(e.w, e.packed);
        ++commits2;
        if (commits2 % static_cast<std::uint64_t>(n) == 0) ++epochs2;
        if (e.flagged) {
          barrier2.push_back(e.w);
          if (static_cast<int>(barrier2.size()) == n) barrier2.clear();
          continue;
        }
        const int min_r = *std::min_element(rounds2.begin(), rounds2.end());
        if (rounds2[static_cast<std::size_t>(e.w)] - min_r > staleness) {
          deferred2[static_cast<std::size_t>(e.w)] = 1;
        }
        for (int d = 0; d < n; ++d) {
          if (deferred2[static_cast<std::size_t>(d)] &&
              rounds2[static_cast<std::size_t>(d)] - min_r <= staleness) {
            deferred2[static_cast<std::size_t>(d)] = 0;
          }
        }
      }
      std::vector<int> worker_round2 = worker_round0;
      for (int rank = 0; rank < n; ++rank) {
        worker_round2[static_cast<std::size_t>(rank)] += static_cast<int>(
            reply_log[static_cast<std::size_t>(rank)].size());
      }
      NADMM_CHECK(consensus_bytes(acc2) == consensus_bytes(acc),
                  "async_admm kill-rejoin: consensus replay diverged");
      NADMM_CHECK(rounds2 == rounds && worker_round2 == worker_round &&
                      deferred2 == deferred && barrier2 == barrier &&
                      commits2 == commits && epochs2 == epochs,
                  "async_admm kill-rejoin: coordinator replay diverged");
      std::vector<double> z2(dim, 0.0);
      acc2.compute_z(z2);
      NADMM_CHECK(z2 == z,
                  "async_admm kill-rejoin: consensus iterate diverged");
      acc = std::move(acc2);
      z = std::move(z2);
      rounds = std::move(rounds2);
      worker_round = std::move(worker_round2);
      deferred = std::move(deferred2);
      barrier = std::move(barrier2);
    }
    result.add_metric("restores", 1);
    telem::count("restores");
    telem::instant("fault", "restore");
    ctx.clock().resume();
  };

  const auto coordinator_handle = [&](comm::AsyncRank& ctx,
                                      const comm::AsyncMessage& msg) {
    const int w = msg.from;
    if (stopping) {
      reply_stop(ctx, w);
      return;
    }
    // Deferred to the start of the next update so the kill lands on a
    // clean handler boundary (the logs cut exactly at applied updates).
    if (pending_kill) perform_kill(ctx);
    // Observed staleness: completed rounds ahead of the slowest worker
    // when this update's round started. The reply gate bounded it then,
    // and the minimum only grows, so hist's top bucket stays <= τ.
    const int min_before = *std::min_element(rounds.begin(), rounds.end());
    const auto s = static_cast<std::size_t>(
        rounds[static_cast<std::size_t>(w)] - min_before);
    if (hist.size() <= s) hist.resize(s + 1, 0);
    ++hist[s];

    rounds[static_cast<std::size_t>(w)] = static_cast<int>(msg.payload[0]);
    const bool flagged = msg.payload[1] != 0.0;
    acc.apply(w, std::span<const double>(msg.payload).subspan(2));
    acc.compute_z(z);
    ++commits;
    if (checkpointing) {
      commit_log.push_back(
          {w, rounds[static_cast<std::size_t>(w)], flagged,
           std::vector<double>(msg.payload.begin() + 2, msg.payload.end())});
    }

    if (commits % static_cast<std::uint64_t>(n) == 0) {
      // --- epoch diagnostics on the paused clock ---
      ctx.clock().pause();
      ++epochs;
      double objective = diag_objective(z);
      if (admm.lambda > 0.0) {
        objective += 0.5 * admm.lambda * la::nrm2_sq(z);
      }
      const double accuracy = eval_accuracy ? diag_accuracy(z) : -1.0;
      const double sim_time = ctx.now();
      if (admm.record_trace) {
        core::IterationStats it;
        it.iteration = epochs;
        it.objective = objective;
        it.test_accuracy = accuracy;
        it.sim_seconds = sim_time;
        it.wall_seconds = wall.seconds();
        it.epoch_sim_seconds = sim_time - prev_sim_time;
        it.comm_sim_seconds = ctx.clock().comm_seconds();
        it.rho_mean = acc.rho_sum() / n;
        result.trace.push_back(it);
      }
      prev_sim_time = sim_time;
      result.iterations = epochs;
      result.final_objective = objective;
      result.final_test_accuracy = accuracy;
      result.total_sim_seconds = sim_time;
      result.total_wall_seconds = wall.seconds();
      if (epochs >= admm.max_iterations ||
          (admm.objective_target > 0.0 &&
           objective <= admm.objective_target)) {
        stopping = true;
      }
      if (options.kill_rank >= 0 && !killed && !stopping &&
          epochs == options.kill_epoch) {
        pending_kill = true;
      }
      // Epoch boundary: sample every registered telemetry counter as a
      // Chrome counter event (virtual-time x-axis in the trace).
      telem::snapshot_metrics();
      ctx.clock().resume();
    }

    if (stopping) {
      reply_stop(ctx, w);
      for (int d = 0; d < n; ++d) {
        if (deferred[static_cast<std::size_t>(d)]) {
          deferred[static_cast<std::size_t>(d)] = 0;
          reply_stop(ctx, d);
        }
      }
      for (const int b : barrier) reply_stop(ctx, b);
      barrier.clear();
      return;
    }

    if (flagged) {
      barrier.push_back(w);
      if (static_cast<int>(barrier.size()) == n) {
        for (const int b : barrier) reply_z(ctx, b);
        barrier.clear();
      }
      maybe_checkpoint(ctx);
      return;
    }
    const int min_r = *std::min_element(rounds.begin(), rounds.end());
    if (rounds[static_cast<std::size_t>(w)] - min_r <= staleness) {
      reply_z(ctx, w);
    } else {
      deferred[static_cast<std::size_t>(w)] = 1;
    }
    // This commit may have raised the minimum round; release any parked
    // worker whose lead is back within the bound (rank order — the loop
    // is deterministic either way, but keep replies canonical).
    for (int d = 0; d < n; ++d) {
      if (deferred[static_cast<std::size_t>(d)] &&
          rounds[static_cast<std::size_t>(d)] - min_r <= staleness) {
        deferred[static_cast<std::size_t>(d)] = 0;
        reply_z(ctx, d);
      }
    }
    maybe_checkpoint(ctx);
  };

  const auto reports = engine.run(
      [&](comm::AsyncRank& ctx) { do_round(ctx); },
      [&](comm::AsyncRank& ctx, const comm::AsyncMessage& msg) {
        switch (msg.tag) {
          case kTagUpdate:
            coordinator_handle(ctx, msg);
            break;
          case kTagConsensus: {
            if (checkpointing) {
              reply_log[static_cast<std::size_t>(ctx.rank())].push_back(
                  {worker_round[static_cast<std::size_t>(ctx.rank())] - 1,
                   msg.payload});
            }
            auto& worker = *workers[static_cast<std::size_t>(ctx.rank())];
            worker.snapshot_z_prev();
            std::copy(msg.payload.begin(), msg.payload.end(),
                      worker.z().begin());
            worker.apply_consensus(
                worker_round[static_cast<std::size_t>(ctx.rank())] - 1);
            do_round(ctx);
            break;
          }
          case kTagStop:
            ctx.halt();
            break;
          default:
            NADMM_CHECK(false, "async_admm: unknown message tag");
        }
      });

  result.x = z;
  result.rank_wait_seconds.reserve(reports.size());
  for (const auto& r : reports) {
    result.rank_wait_seconds.push_back(r.wait_seconds);
    result.add_metric("retransmits", r.retransmits);
    result.add_metric("gaps_detected", r.gaps_detected);
    result.add_metric("messages_dropped", r.messages_dropped);
  }
  if (result.iterations > 0) {
    result.avg_epoch_sim_seconds =
        result.total_sim_seconds / result.iterations;
  }
  return result;
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
core::RunResult async_admm(comm::SimCluster& cluster,
                           const data::Dataset& train,
                           const data::Dataset* test,
                           const AsyncAdmmOptions& options) {
  data::ShardPlan plan;
  plan.parts = cluster.size();
  return async_admm(cluster, data::make_sharded(train, test, plan), options);
}
#pragma GCC diagnostic pop

}  // namespace nadmm::solvers
