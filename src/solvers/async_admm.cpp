#include "solvers/async_admm.hpp"

#include <algorithm>
#include <climits>
#include <memory>
#include <utility>

#include "comm/async.hpp"
#include "core/admm_worker.hpp"
#include "data/partition.hpp"
#include "la/vector_ops.hpp"
#include "model/metrics.hpp"
#include "model/softmax.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace nadmm::solvers {

namespace {

enum : int {
  kTagUpdate = 1,     ///< worker → coordinator: [round, barrier, c.. , ρ]
  kTagConsensus = 2,  ///< coordinator → worker: [z..]
  kTagStop = 3,       ///< coordinator → worker: run is over
};

}  // namespace

core::RunResult async_admm(comm::SimCluster& cluster,
                           const data::ShardedDataset& data,
                           const AsyncAdmmOptions& options) {
  const core::NewtonAdmmOptions& admm = options.admm;
  NADMM_CHECK(admm.max_iterations >= 1, "async_admm: need >= 1 iteration");
  NADMM_CHECK(admm.lambda >= 0.0, "async_admm: lambda must be >= 0");
  NADMM_CHECK(options.staleness >= 0, "async_admm: staleness must be >= 0");
  NADMM_CHECK(options.sync_every >= 0, "async_admm: sync_every must be >= 0");
  NADMM_CHECK(data.parts() == cluster.size(),
              "async_admm: shard plan does not match the cluster size");

  const int n = cluster.size();
  const std::size_t dim = data.dim();
  // In stale-sync mode the barrier is the only brake on fast workers.
  const int staleness =
      options.sync_every > 0 ? INT_MAX : options.staleness;

  core::RunResult result;
  result.solver = options.sync_every > 0 ? "stale-sync-admm" : "async-admm";

  // --- untimed setup: shards, workers, diagnostic objective ---
  std::vector<std::unique_ptr<core::AdmmWorker>> workers;
  workers.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    workers.push_back(std::make_unique<core::AdmmWorker>(
        data.ranks[static_cast<std::size_t>(r)].train, admm, dim));
  }
  const bool eval_accuracy = admm.evaluate_accuracy && data.test_samples > 0;

  // Coordinator diagnostics. Materialized plans evaluate the full splits
  // (identical numerics to the pre-shard-plan solver); streamed sources
  // have no full matrix, so the objective is the per-shard sum (rank
  // order) and accuracy is the summed per-shard hit count — the same
  // value up to float association, and exactly the same hit count.
  std::unique_ptr<model::SoftmaxObjective> global;
  if (data.has_full()) {
    global = std::make_unique<model::SoftmaxObjective>(data.full_train,
                                                       /*l2_lambda=*/0.0);
  }
  std::vector<std::unique_ptr<model::SoftmaxObjective>> test_evals;
  if (eval_accuracy && !data.has_full()) {
    for (int r = 0; r < n; ++r) {
      const data::Dataset& shard = data.ranks[static_cast<std::size_t>(r)].test;
      test_evals.push_back(
          shard.empty() ? nullptr
                        : std::make_unique<model::SoftmaxObjective>(shard, 0.0));
    }
  }
  const auto diag_objective = [&](std::span<const double> zv) {
    if (global != nullptr) return global->value(zv);
    double sum = 0.0;
    for (auto& w : workers) sum += w->objective().value(zv);
    return sum;
  };
  const auto diag_accuracy = [&](std::span<const double> zv) {
    if (data.has_full()) return model::accuracy(data.full_test, zv);
    double hits = 0.0;
    for (int r = 0; r < n; ++r) {
      auto& eval = test_evals[static_cast<std::size_t>(r)];
      if (eval == nullptr) continue;
      hits += eval->accuracy(zv) *
              static_cast<double>(
                  data.ranks[static_cast<std::size_t>(r)].test.num_samples());
    }
    return hits / static_cast<double>(data.test_samples);
  };

  // --- coordinator state (the event loop is single-threaded) ---
  core::ConsensusState acc(n, dim, admm.lambda);
  std::vector<double> z(dim, 0.0);
  std::vector<int> rounds(static_cast<std::size_t>(n), 0);
  std::vector<int> worker_round(static_cast<std::size_t>(n), 0);
  std::vector<char> deferred(static_cast<std::size_t>(n), 0);
  std::vector<int> barrier;  // arrival order of parked sync-round workers
  barrier.reserve(static_cast<std::size_t>(n));
  std::uint64_t commits = 0;
  int epochs = 0;
  bool stopping = false;
  double prev_sim_time = 0.0;
  std::vector<std::uint64_t>& hist = result.staleness_hist;
  WallTimer wall;

  comm::AsyncEngine engine(cluster.devices(), cluster.network(),
                           cluster.omp_threads_per_rank());

  // One local Newton round on this rank, then ship the contribution.
  const auto do_round = [&](comm::AsyncRank& ctx) {
    const int r = ctx.rank();
    const auto packed = workers[static_cast<std::size_t>(r)]->local_step();
    const int round = ++worker_round[static_cast<std::size_t>(r)];
    std::vector<double> payload(dim + 3);
    payload[0] = round;
    payload[1] =
        (options.sync_every > 0 && round % options.sync_every == 0) ? 1.0 : 0.0;
    std::copy(packed.begin(), packed.end(), payload.begin() + 2);
    ctx.send(0, kTagUpdate, std::move(payload));
  };

  const auto reply_z = [&](comm::AsyncRank& ctx, int to) {
    ctx.send(to, kTagConsensus, z);
  };
  const auto reply_stop = [&](comm::AsyncRank& ctx, int to) {
    ctx.send(to, kTagStop, {});
  };

  const auto coordinator_handle = [&](comm::AsyncRank& ctx,
                                      const comm::AsyncMessage& msg) {
    const int w = msg.from;
    if (stopping) {
      reply_stop(ctx, w);
      return;
    }
    // Observed staleness: completed rounds ahead of the slowest worker
    // when this update's round started. The reply gate bounded it then,
    // and the minimum only grows, so hist's top bucket stays <= τ.
    const int min_before = *std::min_element(rounds.begin(), rounds.end());
    const auto s = static_cast<std::size_t>(
        rounds[static_cast<std::size_t>(w)] - min_before);
    if (hist.size() <= s) hist.resize(s + 1, 0);
    ++hist[s];

    rounds[static_cast<std::size_t>(w)] = static_cast<int>(msg.payload[0]);
    const bool flagged = msg.payload[1] != 0.0;
    acc.apply(w, std::span<const double>(msg.payload).subspan(2));
    acc.compute_z(z);
    ++commits;

    if (commits % static_cast<std::uint64_t>(n) == 0) {
      // --- epoch diagnostics on the paused clock ---
      ctx.clock().pause();
      ++epochs;
      double objective = diag_objective(z);
      if (admm.lambda > 0.0) {
        objective += 0.5 * admm.lambda * la::nrm2_sq(z);
      }
      const double accuracy = eval_accuracy ? diag_accuracy(z) : -1.0;
      const double sim_time = ctx.now();
      if (admm.record_trace) {
        core::IterationStats it;
        it.iteration = epochs;
        it.objective = objective;
        it.test_accuracy = accuracy;
        it.sim_seconds = sim_time;
        it.wall_seconds = wall.seconds();
        it.epoch_sim_seconds = sim_time - prev_sim_time;
        it.comm_sim_seconds = ctx.clock().comm_seconds();
        it.rho_mean = acc.rho_sum() / n;
        result.trace.push_back(it);
      }
      prev_sim_time = sim_time;
      result.iterations = epochs;
      result.final_objective = objective;
      result.final_test_accuracy = accuracy;
      result.total_sim_seconds = sim_time;
      result.total_wall_seconds = wall.seconds();
      if (epochs >= admm.max_iterations ||
          (admm.objective_target > 0.0 &&
           objective <= admm.objective_target)) {
        stopping = true;
      }
      ctx.clock().resume();
    }

    if (stopping) {
      reply_stop(ctx, w);
      for (int d = 0; d < n; ++d) {
        if (deferred[static_cast<std::size_t>(d)]) {
          deferred[static_cast<std::size_t>(d)] = 0;
          reply_stop(ctx, d);
        }
      }
      for (const int b : barrier) reply_stop(ctx, b);
      barrier.clear();
      return;
    }

    if (flagged) {
      barrier.push_back(w);
      if (static_cast<int>(barrier.size()) == n) {
        for (const int b : barrier) reply_z(ctx, b);
        barrier.clear();
      }
      return;
    }
    const int min_r = *std::min_element(rounds.begin(), rounds.end());
    if (rounds[static_cast<std::size_t>(w)] - min_r <= staleness) {
      reply_z(ctx, w);
    } else {
      deferred[static_cast<std::size_t>(w)] = 1;
    }
    // This commit may have raised the minimum round; release any parked
    // worker whose lead is back within the bound (rank order — the loop
    // is deterministic either way, but keep replies canonical).
    for (int d = 0; d < n; ++d) {
      if (deferred[static_cast<std::size_t>(d)] &&
          rounds[static_cast<std::size_t>(d)] - min_r <= staleness) {
        deferred[static_cast<std::size_t>(d)] = 0;
        reply_z(ctx, d);
      }
    }
  };

  const auto reports = engine.run(
      [&](comm::AsyncRank& ctx) { do_round(ctx); },
      [&](comm::AsyncRank& ctx, const comm::AsyncMessage& msg) {
        switch (msg.tag) {
          case kTagUpdate:
            coordinator_handle(ctx, msg);
            break;
          case kTagConsensus: {
            auto& worker = *workers[static_cast<std::size_t>(ctx.rank())];
            worker.snapshot_z_prev();
            std::copy(msg.payload.begin(), msg.payload.end(),
                      worker.z().begin());
            worker.apply_consensus(
                worker_round[static_cast<std::size_t>(ctx.rank())] - 1);
            do_round(ctx);
            break;
          }
          case kTagStop:
            ctx.halt();
            break;
          default:
            NADMM_CHECK(false, "async_admm: unknown message tag");
        }
      });

  result.x = z;
  result.rank_wait_seconds.reserve(reports.size());
  for (const auto& r : reports) {
    result.rank_wait_seconds.push_back(r.wait_seconds);
  }
  if (result.iterations > 0) {
    result.avg_epoch_sim_seconds =
        result.total_sim_seconds / result.iterations;
  }
  return result;
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
core::RunResult async_admm(comm::SimCluster& cluster,
                           const data::Dataset& train,
                           const data::Dataset* test,
                           const AsyncAdmmOptions& options) {
  data::ShardPlan plan;
  plan.parts = cluster.size();
  return async_admm(cluster, data::make_sharded(train, test, plan), options);
}
#pragma GCC diagnostic pop

}  // namespace nadmm::solvers
