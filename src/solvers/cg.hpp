// Conjugate gradient for the Newton system H p = −g (paper eq. 4).
//
// Hessian-free: H enters only through a product callback. Termination is
// the paper's θ-relative inexactness condition (eq. 3b):
//   ‖H p + g‖ ≤ θ ‖g‖,
// equivalently the CG residual dropping below θ‖g‖. Early stopping with a
// mild θ preserves Newton's convergence (Roosta-Khorasani & Mahoney).
#pragma once

#include <functional>
#include <span>

namespace nadmm::solvers {

struct CgOptions {
  int max_iterations = 10;   ///< paper default: 10 CG iterations
  double rel_tol = 1e-4;     ///< θ in eq. (3b); paper default 1e-4
};

struct CgResult {
  int iterations = 0;
  double rel_residual = 0.0;      ///< ‖Hp + g‖ / ‖g‖ at exit
  bool hit_negative_curvature = false;
  bool converged = false;         ///< rel_residual ≤ θ
};

/// Hessian-vector product callback: out = H · v.
using HvpFn = std::function<void(std::span<const double>, std::span<double>)>;

/// Solves H p = −g starting from p = 0. On negative curvature (possible
/// only through numerical noise for convex objectives) returns the best
/// iterate so far — or the steepest-descent direction −g if it occurs on
/// the first iteration — which keeps the outer line search descending.
CgResult conjugate_gradient(const HvpFn& hvp, std::span<const double> g,
                            std::span<double> p, const CgOptions& options);

}  // namespace nadmm::solvers
