#include "solvers/minibatch.hpp"

namespace nadmm::solvers {

std::vector<data::Dataset> make_batches(const data::Dataset& shard,
                                        std::size_t batch_size) {
  std::vector<data::Dataset> batches;
  const std::size_t n = shard.num_samples();
  // Zero-copy row-range views: a batch is O(1) metadata over the shard's
  // shared storage (which it keeps alive), not a copied buffer — the
  // numerics are bit-identical to the old copying slices because the
  // kernels run the same code path on views (la/kernels.hpp).
  if (batch_size == 0 || batch_size >= n) {
    batches.push_back(shard.view(0, n));
    return batches;
  }
  for (std::size_t at = 0; at < n; at += batch_size) {
    batches.push_back(shard.view(at, std::min(n, at + batch_size)));
  }
  return batches;
}

}  // namespace nadmm::solvers
