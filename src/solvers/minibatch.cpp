#include "solvers/minibatch.hpp"

namespace nadmm::solvers {

std::vector<data::Dataset> make_batches(const data::Dataset& shard,
                                        std::size_t batch_size) {
  std::vector<data::Dataset> batches;
  const std::size_t n = shard.num_samples();
  if (batch_size == 0 || batch_size >= n) {
    batches.push_back(shard.row_slice(0, n));
    return batches;
  }
  for (std::size_t at = 0; at < n; at += batch_size) {
    batches.push_back(shard.row_slice(at, std::min(n, at + batch_size)));
  }
  return batches;
}

}  // namespace nadmm::solvers
