// Stale-consensus ADMM on the event-driven runtime (comm/async.hpp).
//
// All ranks are workers; rank 0 additionally coordinates. Each worker
// loops: local Newton-CG x-update (the same core::AdmmWorker step the
// synchronous solver uses) → send [ρ·x − y ; ρ] to the coordinator →
// wait for a consensus reply → dual update → next round. The coordinator
// folds every update into the incremental eq. 7 z-update *on arrival*
// (core::ConsensusState) and replies with the freshest z — no barrier.
//
// Two controls bound how stale the consensus may get:
//   * staleness τ (fully asynchronous mode, sync_every == 0): a worker's
//     reply is deferred while it is more than τ completed rounds ahead of
//     the slowest worker. τ = 0 degenerates to lockstep (synchronous)
//     ADMM; larger τ lets fast ranks run ahead of stragglers.
//   * sync_every k (stale-sync mode, sync_every > 0): workers run freely
//     between barriers, but every k-th round the coordinator holds all
//     replies until the whole cluster reaches the barrier.
//
// An "epoch" is size() applied updates (the same number of local solves
// as one synchronous iteration), which keeps traces and time-to-target
// comparisons between the three solvers meaningful.
#pragma once

#include "comm/cluster.hpp"
#include "core/newton_admm.hpp"
#include "core/trace.hpp"
#include "data/dataset.hpp"

namespace nadmm::solvers {

struct AsyncAdmmOptions {
  /// Local-step knobs, λ, iteration budget, objective target and
  /// accuracy evaluation are shared with the synchronous solver.
  core::NewtonAdmmOptions admm;
  /// τ: how many completed rounds a worker may be ahead of the slowest
  /// worker before its reply is deferred. Ignored when sync_every > 0.
  int staleness = 4;
  /// k > 0: barrier every k rounds (the stale-sync solver); 0: fully
  /// asynchronous with the τ gate.
  int sync_every = 0;
  /// Link-fault injection spec for the engine's reliable channel
  /// ("none" disables the channel; see comm::FaultSpec::parse).
  std::string fault = "none";
  /// Seed for the per-link fault RNG (the experiment seed).
  std::uint64_t seed = 42;
  /// Checkpoint the coordinator + worker mirrors every K applied
  /// updates (0 = off). Required > 0 when a kill is scheduled.
  int checkpoint_every = 0;
  /// Kill rank `kill_rank` once epoch `kill_epoch` completes, then
  /// rejoin it as a fresh worker restored from the last checkpoint +
  /// replay. kill_rank < 0 disables. The restore is validated in-run:
  /// the rejoined state must be byte-identical to the lost one.
  int kill_rank = -1;
  int kill_epoch = 1;
};

/// Run stale-consensus ADMM on the cluster's rank/device/network spec
/// (the cluster's threads are not used — the async engine replays the
/// protocol on virtual time). Rank r trains on `data.ranks[r].train`.
/// Coordinator diagnostics use the materialized full splits when the
/// plan provides them, and fall back to summing per-shard objectives /
/// hit counts for streamed sources (where no full matrix exists).
/// `result.solver` is "async-admm" when sync_every == 0 and
/// "stale-sync-admm" otherwise.
core::RunResult async_admm(comm::SimCluster& cluster,
                           const data::ShardedDataset& data,
                           const AsyncAdmmOptions& options);

/// Convenience overload: shard `train` / `test` as contiguous zero-copy
/// views across the cluster's ranks, then run.
[[deprecated(
    "shard explicitly: pass a data::ShardedDataset (see "
    "runner::shard_for_solver) — this overload re-shards per call")]]
core::RunResult async_admm(comm::SimCluster& cluster,
                           const data::Dataset& train,
                           const data::Dataset* test,
                           const AsyncAdmmOptions& options);

}  // namespace nadmm::solvers
