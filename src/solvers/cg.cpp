#include "solvers/cg.hpp"

#include <cmath>
#include <vector>

#include "la/vector_ops.hpp"
#include "support/check.hpp"

namespace nadmm::solvers {

CgResult conjugate_gradient(const HvpFn& hvp, std::span<const double> g,
                            std::span<double> p, const CgOptions& options) {
  NADMM_CHECK(g.size() == p.size(), "cg: size mismatch");
  NADMM_CHECK(options.max_iterations >= 1, "cg: max_iterations must be >= 1");
  NADMM_CHECK(options.rel_tol > 0.0, "cg: rel_tol must be positive");

  const std::size_t n = g.size();
  CgResult result;

  la::fill(p, 0.0);
  const double g_norm = la::nrm2(g);
  if (g_norm == 0.0) {
    result.converged = true;
    return result;
  }
  const double target = options.rel_tol * g_norm;

  // r = −g − Hp = −g at p = 0;  d = r.
  std::vector<double> r(n), d(n), hd(n);
  for (std::size_t i = 0; i < n; ++i) r[i] = -g[i];
  la::copy(r, d);
  double r_sq = la::nrm2_sq(r);

  for (int k = 0; k < options.max_iterations; ++k) {
    hvp(d, hd);
    const double curvature = la::dot(d, hd);
    if (curvature <= 0.0) {
      result.hit_negative_curvature = true;
      if (k == 0) {
        // Fall back to steepest descent so the outer loop still descends.
        la::copy(r, p);
      }
      break;
    }
    const double alpha = r_sq / curvature;
    la::axpy(alpha, d, p);
    la::axpy(-alpha, hd, r);
    const double r_sq_new = la::nrm2_sq(r);
    result.iterations = k + 1;
    if (std::sqrt(r_sq_new) <= target) {
      r_sq = r_sq_new;
      result.converged = true;
      break;
    }
    const double beta = r_sq_new / r_sq;
    r_sq = r_sq_new;
    // d = r + beta d
    la::axpby(1.0, r, beta, d);
  }
  result.rel_residual = std::sqrt(r_sq) / g_norm;
  if (result.rel_residual <= options.rel_tol) result.converged = true;
  return result;
}

}  // namespace nadmm::solvers
