#include "solvers/linesearch.hpp"

#include <vector>

#include "la/vector_ops.hpp"
#include "support/check.hpp"

namespace nadmm::solvers {

LineSearchResult armijo_backtrack(model::Objective& objective,
                                  std::span<const double> x,
                                  std::span<const double> p, double f0,
                                  double directional,
                                  const LineSearchOptions& options) {
  NADMM_CHECK(x.size() == p.size(), "linesearch: size mismatch");
  NADMM_CHECK(options.alpha0 > 0.0, "linesearch: alpha0 must be positive");
  NADMM_CHECK(options.backtrack > 0.0 && options.backtrack < 1.0,
              "linesearch: backtrack factor must be in (0,1)");
  NADMM_CHECK(options.beta > 0.0 && options.beta < 1.0,
              "linesearch: beta must be in (0,1)");

  LineSearchResult result;
  std::vector<double> trial(x.size());
  double alpha = options.alpha0;
  double f_trial = f0;

  for (int i = 0; i <= options.max_iterations; ++i) {
    la::copy(x, trial);
    la::axpy(alpha, p, trial);
    f_trial = objective.value(trial);
    result.iterations = i;
    if (f_trial <= f0 + alpha * options.beta * directional) {
      result.alpha = alpha;
      result.f_new = f_trial;
      result.satisfied = true;
      return result;
    }
    if (i == options.max_iterations) break;
    alpha *= options.backtrack;
  }
  // i_max exhausted (paper Algorithm 3 `break`): accept the final α if it
  // still decreases the objective, otherwise refuse the step.
  if (f_trial < f0) {
    result.alpha = alpha;
    result.f_new = f_trial;
  } else {
    result.alpha = 0.0;
    result.f_new = f0;
  }
  return result;
}

}  // namespace nadmm::solvers
