#include "solvers/first_order.hpp"

#include <cmath>

#include "la/vector_ops.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace nadmm::solvers {

FirstOrderRule first_order_rule_from_string(const std::string& name) {
  if (name == "gd") return FirstOrderRule::kGradientDescent;
  if (name == "momentum") return FirstOrderRule::kMomentum;
  if (name == "adagrad") return FirstOrderRule::kAdagrad;
  if (name == "adam") return FirstOrderRule::kAdam;
  throw InvalidArgument("unknown first-order rule '" + name +
                        "' (expected gd|momentum|adagrad|adam)");
}

std::string to_string(FirstOrderRule rule) {
  switch (rule) {
    case FirstOrderRule::kGradientDescent: return "gd";
    case FirstOrderRule::kMomentum: return "momentum";
    case FirstOrderRule::kAdagrad: return "adagrad";
    case FirstOrderRule::kAdam: return "adam";
  }
  return "?";
}

FirstOrderResult first_order_minimize(
    model::Objective& objective, std::vector<model::Objective*> batches,
    std::vector<double> x0, const FirstOrderOptions& options) {
  NADMM_CHECK(x0.size() == objective.dim(), "first_order: x0 size mismatch");
  NADMM_CHECK(options.step_size > 0.0, "first_order: step size must be > 0");
  NADMM_CHECK(options.max_iterations >= 1, "first_order: bad max_iterations");
  const bool stochastic = options.batch_size > 0;
  NADMM_CHECK(!stochastic || !batches.empty(),
              "first_order: stochastic mode needs batch objectives");
  for (auto* b : batches) {
    NADMM_CHECK(b != nullptr && b->dim() == objective.dim(),
                "first_order: batch dimension mismatch");
  }

  const std::size_t dim = objective.dim();
  FirstOrderResult result;
  result.x = std::move(x0);
  std::vector<double> g(dim), velocity(dim, 0.0), accum(dim, 0.0),
      moment1(dim, 0.0), moment2(dim, 0.0);
  Rng rng(options.seed);
  const double total_samples = static_cast<double>(objective.num_samples());

  for (int k = 0; k < options.max_iterations; ++k) {
    if (stochastic) {
      auto* batch = batches[rng.uniform_index(batches.size())];
      batch->gradient(result.x, g);
      // Unbiased full-sum estimate: scale by n / |batch|.
      const double scale =
          total_samples / static_cast<double>(batch->num_samples());
      la::scal(scale, g);
    } else {
      objective.gradient(result.x, g);
    }

    switch (options.rule) {
      case FirstOrderRule::kGradientDescent:
        la::axpy(-options.step_size, g, result.x);
        break;
      case FirstOrderRule::kMomentum:
        // Heavy-ball: v ← µv − ηg; x ← x + v.
        for (std::size_t i = 0; i < dim; ++i) {
          velocity[i] = options.momentum * velocity[i] -
                        options.step_size * g[i];
          result.x[i] += velocity[i];
        }
        break;
      case FirstOrderRule::kAdagrad:
        for (std::size_t i = 0; i < dim; ++i) {
          accum[i] += g[i] * g[i];
          result.x[i] -= options.step_size * g[i] /
                         (std::sqrt(accum[i]) + options.epsilon);
        }
        break;
      case FirstOrderRule::kAdam: {
        const double t = static_cast<double>(k + 1);
        const double bc1 = 1.0 - std::pow(options.beta1, t);
        const double bc2 = 1.0 - std::pow(options.beta2, t);
        for (std::size_t i = 0; i < dim; ++i) {
          moment1[i] = options.beta1 * moment1[i] + (1.0 - options.beta1) * g[i];
          moment2[i] =
              options.beta2 * moment2[i] + (1.0 - options.beta2) * g[i] * g[i];
          const double m_hat = moment1[i] / bc1;
          const double v_hat = moment2[i] / bc2;
          result.x[i] -=
              options.step_size * m_hat / (std::sqrt(v_hat) + options.epsilon);
        }
        break;
      }
    }
    result.iterations = k + 1;
    if (options.record_trace) {
      result.value_trace.push_back(objective.value(result.x));
    }
    if (options.gradient_tol > 0.0 && !stochastic) {
      objective.gradient(result.x, g);
      if (la::nrm2(g) < options.gradient_tol) {
        result.converged = true;
        break;
      }
    }
  }
  objective.gradient(result.x, g);
  result.final_gradient_norm = la::nrm2(g);
  if (options.gradient_tol > 0.0 &&
      result.final_gradient_norm < options.gradient_tol) {
    result.converged = true;
  }
  result.final_value = objective.value(result.x);
  return result;
}

}  // namespace nadmm::solvers
