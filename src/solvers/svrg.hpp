// SVRG (Johnson & Zhang) for composite local objectives.
//
// InexactDANE solves its per-node subproblem
//   φ(x) = f_loc(x) + ⟨linear, x⟩ + (ridge/2)‖x‖² + (µ/2)‖x − center‖²
// with SVRG (paper §3, "using SVRG to solve subproblems"). The smooth
// finite-sum part f_loc is given as minibatch softmax objectives whose sum
// equals the shard loss; the deterministic linear / proximal terms are
// evaluated exactly at every inner step, and only the randomized batch
// gradient goes through variance reduction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/softmax.hpp"

namespace nadmm::solvers {

struct SvrgOptions {
  int max_outer = 100;              ///< snapshot rounds (paper: SVRG iters 100)
  std::size_t update_frequency = 0; ///< inner steps per snapshot; 0 → 2·n_local
  double step_size = 1e-3;
  std::uint64_t seed = 1234;
};

struct SvrgResult {
  std::vector<double> x;
  int outer_iterations = 0;
  double final_subproblem_gradient_norm = 0.0;
};

SvrgResult svrg_minimize(std::vector<model::SoftmaxObjective>& batches,
                         std::span<const double> linear, double ridge,
                         double mu, std::span<const double> center,
                         std::vector<double> x0, const SvrgOptions& options);

}  // namespace nadmm::solvers
