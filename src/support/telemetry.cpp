#include "support/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "comm/clock.hpp"
#include "la/flops.hpp"
#include "support/check.hpp"

namespace nadmm::telem {

namespace {

// %.3f of microseconds: nanosecond resolution, deterministic printf
// rounding, compact files. Virtual times are doubles in seconds.
std::string fmt_us(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

// Shortest exact round-trip for counter samples.
std::string fmt_val(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // labels only
    out.push_back(c);
  }
  return out;
}

}  // namespace

Tracer::Tracer(std::string label)
    : label_(std::move(label)),
      wall_epoch_(std::chrono::steady_clock::now()) {}

Track& Tracer::track(int id) {
  NADMM_CHECK(id >= 0, "telemetry track id must be non-negative");
  const auto n = static_cast<std::size_t>(id);
  while (tracks_.size() <= n) {
    auto t = std::make_unique<Track>();
    t->id = static_cast<int>(tracks_.size());
    tracks_.push_back(std::move(t));
  }
  return *tracks_[n];
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  for (const auto& t : tracks_) n += t->events.size();
  return n;
}

std::vector<Event> Tracer::merged_events() const {
  std::vector<Event> all;
  all.reserve(event_count());
  for (const auto& t : tracks_) {
    all.insert(all.end(), t->events.begin(), t->events.end());
  }
  std::sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    if (a.sim_begin != b.sim_begin) return a.sim_begin < b.sim_begin;
    if (a.track != b.track) return a.track < b.track;
    return a.seq < b.seq;
  });
  return all;
}

double Tracer::wall_now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       wall_epoch_)
      .count();
}

void Tracer::add_counter(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

void Tracer::set_gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

void Tracer::observe(const std::string& name, double value) {
  histograms_[name].add(value);
}

void Tracer::snapshot_metrics(int track_id, double sim_time) {
  Track& t = track(track_id);
  for (const auto& [name, value] : counters_) {
    Event e;
    e.kind = EventKind::kCounter;
    e.category = "metric";
    e.name = name.c_str();  // std::map node storage: stable
    e.track = t.id;
    e.seq = t.next_seq++;
    e.sim_begin = e.sim_end = sim_time;
    e.wall_begin = e.wall_end = wall_now();
    e.value = static_cast<double>(value);
    t.events.push_back(e);
  }
  for (const auto& [name, value] : gauges_) {
    Event e;
    e.kind = EventKind::kCounter;
    e.category = "metric";
    e.name = name.c_str();
    e.track = t.id;
    e.seq = t.next_seq++;
    e.sim_begin = e.sim_end = sim_time;
    e.wall_begin = e.wall_end = wall_now();
    e.value = value;
    t.events.push_back(e);
  }
}

void Tracer::write_chrome_trace(std::ostream& os, bool include_wall) const {
  std::vector<Event> events = merged_events();
  // At equal (ts, track), Chrome/Perfetto rebuild slice nesting from
  // input order, expecting the enclosing span first. Spans record at
  // scope *exit*, so per-track seq alone would put inner spans first;
  // break sim_begin ties by descending duration instead.
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.sim_begin != b.sim_begin) return a.sim_begin < b.sim_begin;
    if (a.track != b.track) return a.track < b.track;
    const double da = a.sim_end - a.sim_begin;
    const double db = b.sim_end - b.sim_begin;
    if (da != db) return da > db;
    return a.seq < b.seq;
  });

  os << "{\"displayTimeUnit\": \"ms\",\n";
  os << "\"otherData\": {\"label\": \"" << json_escape(label_) << "\"},\n";
  os << "\"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const auto& t : tracks_) {
    sep();
    os << "{\"ph\": \"M\", \"pid\": " << t->id
       << ", \"tid\": 0, \"name\": \"process_name\", \"args\": {\"name\": "
          "\"rank "
       << t->id << "\"}}";
  }
  for (const Event& e : events) {
    sep();
    switch (e.kind) {
      case EventKind::kSpan:
        os << "{\"ph\": \"X\", \"pid\": " << e.track
           << ", \"tid\": 0, \"cat\": \"" << e.category << "\", \"name\": \""
           << e.name << "\", \"ts\": " << fmt_us(e.sim_begin)
           << ", \"dur\": " << fmt_us(e.sim_end - e.sim_begin);
        if (e.flops != 0 || e.bytes != 0 || include_wall) {
          os << ", \"args\": {\"flops\": " << e.flops
             << ", \"bytes\": " << e.bytes;
          if (include_wall) {
            os << ", \"wall_us\": " << fmt_us(e.wall_end - e.wall_begin);
          }
          os << "}";
        }
        os << "}";
        break;
      case EventKind::kInstant:
        os << "{\"ph\": \"i\", \"pid\": " << e.track
           << ", \"tid\": 0, \"s\": \"p\", \"cat\": \"" << e.category
           << "\", \"name\": \"" << e.name
           << "\", \"ts\": " << fmt_us(e.sim_begin) << "}";
        break;
      case EventKind::kCounter:
        os << "{\"ph\": \"C\", \"pid\": " << e.track
           << ", \"tid\": 0, \"name\": \"" << e.name
           << "\", \"ts\": " << fmt_us(e.sim_begin)
           << ", \"args\": {\"value\": " << fmt_val(e.value) << "}}";
        break;
    }
  }
  os << "\n]}\n";
}

void Tracer::write_chrome_trace_file(const std::string& path,
                                     bool include_wall) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw RuntimeError("telemetry: cannot open trace output '" + path + "'");
  }
  write_chrome_trace(os, include_wall);
  os.flush();
  if (!os) {
    throw RuntimeError("telemetry: failed writing trace output '" + path +
                       "'");
  }
}

std::string Tracer::ascii_timeline(int width) const {
  if (width < 8) width = 8;
  const std::vector<Event> events = merged_events();
  double t_end = 0.0;
  for (const Event& e : events) t_end = std::max(t_end, e.sim_end);

  // Distinct span categories, in first-appearance order of the merge.
  std::vector<const char*> cats;
  for (const Event& e : events) {
    if (e.kind != EventKind::kSpan) continue;
    bool known = false;
    for (const char* c : cats) {
      if (std::strcmp(c, e.category) == 0) known = true;
    }
    if (!known) cats.push_back(e.category);
  }
  // One glyph per category: first character of the name not already
  // taken ("core"→c, "comm"→o), falling back to '#'.
  std::string glyphs;
  for (const char* c : cats) {
    char pick = '#';
    for (const char* p = c; *p != '\0'; ++p) {
      if (glyphs.find(*p) == std::string::npos) {
        pick = *p;
        break;
      }
    }
    glyphs.push_back(pick);
  }
  auto cat_index = [&](const char* c) {
    for (std::size_t i = 0; i < cats.size(); ++i) {
      if (std::strcmp(cats[i], c) == 0) return i;
    }
    return cats.size();
  };

  std::ostringstream os;
  os << "telemetry timeline — " << label_ << " (" << fmt_val(t_end)
     << " sim s, " << event_count() << " events)\n";
  if (t_end <= 0.0 || tracks_.empty()) {
    os << "  (no timed events)\n";
    return os.str();
  }
  const double bucket = t_end / width;
  for (const auto& t : tracks_) {
    // Per-bucket coverage per category; the dominant one paints the cell.
    std::vector<std::vector<double>> cover(
        static_cast<std::size_t>(width),
        std::vector<double>(cats.size(), 0.0));
    std::vector<double> totals(cats.size(), 0.0);
    for (const Event& e : t->events) {
      if (e.kind != EventKind::kSpan) continue;
      const std::size_t ci = cat_index(e.category);
      totals[ci] += e.sim_end - e.sim_begin;
      int b0 = static_cast<int>(e.sim_begin / bucket);
      int b1 = static_cast<int>(e.sim_end / bucket);
      b0 = std::clamp(b0, 0, width - 1);
      b1 = std::clamp(b1, 0, width - 1);
      for (int b = b0; b <= b1; ++b) {
        const double lo = std::max(e.sim_begin, b * bucket);
        const double hi = std::min(e.sim_end, (b + 1) * bucket);
        if (hi > lo) cover[static_cast<std::size_t>(b)][ci] += hi - lo;
      }
    }
    os << "rank " << t->id << " |";
    for (int b = 0; b < width; ++b) {
      std::size_t best = cats.size();
      double best_cover = 0.0;
      for (std::size_t ci = 0; ci < cats.size(); ++ci) {
        if (cover[static_cast<std::size_t>(b)][ci] > best_cover) {
          best_cover = cover[static_cast<std::size_t>(b)][ci];
          best = ci;
        }
      }
      os << (best < cats.size() ? glyphs[best] : '.');
    }
    os << "|";
    for (std::size_t ci = 0; ci < cats.size(); ++ci) {
      if (totals[ci] > 0.0) {
        os << ' ' << cats[ci] << '=' << fmt_val(totals[ci]) << 's';
      }
    }
    os << "\n";
  }
  if (!cats.empty()) {
    os << "legend:";
    for (std::size_t ci = 0; ci < cats.size(); ++ci) {
      os << ' ' << glyphs[ci] << '=' << cats[ci];
    }
    os << " .=idle\n";
  }
  if (!counters_.empty()) {
    os << "counters:";
    for (const auto& [name, v] : counters_) os << ' ' << name << '=' << v;
    os << "\n";
  }
  if (!gauges_.empty()) {
    os << "gauges:";
    for (const auto& [name, v] : gauges_) {
      os << ' ' << name << '=' << fmt_val(v);
    }
    os << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << "hist " << name << ": n=" << h.count();
    if (h.count() > 0) {
      os << " p50=" << fmt_val(h.quantile(0.5))
         << " p99=" << fmt_val(h.quantile(0.99)) << " max=" << fmt_val(h.max());
    }
    os << "\n";
  }
  return os.str();
}

TracerScope::TracerScope(Tracer& tracer) : prev_(detail::g_ctx.tracer) {
  detail::g_ctx.tracer = &tracer;
  detail::g_active.fetch_add(1, std::memory_order_relaxed);
}

TracerScope::~TracerScope() {
  detail::g_active.fetch_sub(1, std::memory_order_relaxed);
  detail::g_ctx.tracer = prev_;
}

TrackScope::TrackScope(int track, const comm::SimClock* clock)
    : prev_track_(detail::g_ctx.track), prev_clock_(detail::g_ctx.clock) {
  detail::g_ctx.track = track;
  detail::g_ctx.clock = clock;
}

TrackScope::~TrackScope() {
  detail::g_ctx.track = prev_track_;
  detail::g_ctx.clock = prev_clock_;
}

void SpanGuard::begin(const char* category, const char* name) {
  const detail::Context& ctx = detail::g_ctx;
  if (ctx.tracer == nullptr || ctx.clock == nullptr || ctx.track < 0) return;
  track_ = &ctx.tracer->track(ctx.track);
  clock_ = ctx.clock;
  category_ = category;
  name_ = name;
  sim_begin_ = clock_->projected_seconds();
  wall_begin_ = ctx.tracer->wall_now();
  flops_begin_ = nadmm::flops::read();
  bytes_begin_ = nadmm::flops::read_bytes();
}

void SpanGuard::end() {
  Event e;
  e.kind = EventKind::kSpan;
  e.category = category_;
  e.name = name_;
  e.track = track_->id;
  e.seq = track_->next_seq++;
  e.sim_begin = sim_begin_;
  e.sim_end = std::max(sim_begin_, clock_->projected_seconds());
  e.wall_begin = wall_begin_;
  Tracer* tracer = detail::g_ctx.tracer;
  e.wall_end = tracer != nullptr ? tracer->wall_now() : wall_begin_;
  const std::uint64_t f = nadmm::flops::read();
  const std::uint64_t b = nadmm::flops::read_bytes();
  e.flops = f >= flops_begin_ ? f - flops_begin_ : 0;
  e.bytes = b >= bytes_begin_ ? b - bytes_begin_ : 0;
  track_->events.push_back(e);
}

namespace detail {

void instant_impl(const char* category, const char* name) {
  if (!active()) return;
  const detail::Context& ctx = detail::g_ctx;
  if (ctx.track < 0) return;
  Track& t = ctx.tracer->track(ctx.track);
  Event e;
  e.kind = EventKind::kInstant;
  e.category = category;
  e.name = name;
  e.track = t.id;
  e.seq = t.next_seq++;
  e.sim_begin = e.sim_end = ctx.clock->projected_seconds();
  e.wall_begin = e.wall_end = ctx.tracer->wall_now();
  t.events.push_back(e);
}

void count_impl(const char* name, std::uint64_t delta) {
  Tracer* t = current();
  if (t != nullptr) t->add_counter(name, delta);
}

void gauge_impl(const char* name, double value) {
  Tracer* t = current();
  if (t != nullptr) t->set_gauge(name, value);
}

void observe_impl(const char* name, double value) {
  Tracer* t = current();
  if (t != nullptr) t->observe(name, value);
}

void snapshot_metrics_impl() {
  if (!active()) return;
  const detail::Context& ctx = detail::g_ctx;
  if (ctx.track < 0) return;
  ctx.tracer->snapshot_metrics(ctx.track, ctx.clock->projected_seconds());
}

}  // namespace detail

}  // namespace nadmm::telem
