// Error-handling primitives shared across the library.
//
// We favour exceptions for precondition violations in the public API
// (callers can recover / report) and use NADMM_ASSERT for internal
// invariants that indicate a library bug.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nadmm {

/// Exception thrown when a public-API precondition is violated.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Exception thrown when a runtime operation cannot proceed
/// (I/O failure, dimension mismatch discovered mid-computation, ...).
class RuntimeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "NADMM_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}

[[noreturn]] inline void throw_assert_failure(const char* expr, const char* file,
                                              int line) {
  std::ostringstream os;
  os << "internal invariant violated: (" << expr << ") at " << file << ':'
     << line << " — please report this as a bug";
  throw RuntimeError(os.str());
}

}  // namespace detail
}  // namespace nadmm

/// Validate a public-API precondition; throws nadmm::InvalidArgument.
#define NADMM_CHECK(expr, msg)                                              \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::nadmm::detail::throw_check_failure(#expr, __FILE__, __LINE__, msg); \
    }                                                                       \
  } while (false)

/// Internal invariant check; throws nadmm::RuntimeError. Kept on in release
/// builds: the checks guard O(1) conditions only.
#define NADMM_ASSERT(expr)                                               \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::nadmm::detail::throw_assert_failure(#expr, __FILE__, __LINE__);  \
    }                                                                    \
  } while (false)
