#include "support/csv.hpp"

#include <cstdio>

#include "support/check.hpp"

namespace nadmm {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), arity_(header.size()) {
  if (!out_) throw RuntimeError("cannot open CSV file for writing: " + path);
  NADMM_CHECK(!header.empty(), "CSV header must not be empty");
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << header[i];
  }
  out_ << '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  NADMM_CHECK(cells.size() == arity_, "CSV row arity mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
  out_.flush();
}

void CsvWriter::add_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
    cells.emplace_back(buf);
  }
  add_row(cells);
}

}  // namespace nadmm
