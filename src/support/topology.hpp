// NUMA / thread-topology probe.
//
// The kernel engine's NUMA story has two halves. The first is implicit:
// reduction workspaces and packed panels are allocated uninitialized, so
// first touch inside the parallel region places each thread's pages on
// its own node (la/kernels.cpp, AlignedBuffer). The second half needs to
// know the topology: ShardPlan::placement() maps device-weighted shards
// onto sockets so a rank's working set is computed where it lives
// (data/partition.hpp). This header is that knowledge — a one-shot sysfs
// probe with a graceful single-node fallback, so everything downstream
// behaves identically on laptops, CI runners and multi-socket boxes.
#pragma once

#include <string>
#include <vector>

namespace nadmm::support {

/// One NUMA node and the logical CPUs it owns.
struct NumaNode {
  int id = 0;
  std::vector<int> cpus;
};

class Topology {
 public:
  /// Single unknown node — the fallback shape.
  Topology() : nodes_{NumaNode{}} {}

  /// Test hook: build from explicit nodes (must be non-empty).
  explicit Topology(std::vector<NumaNode> nodes);

  /// Probe /sys/devices/system/node/node*/cpulist. Any failure — no
  /// sysfs (non-Linux, sandboxes), unreadable files, zero nodes —
  /// degrades to the single-node default; callers never branch on
  /// probe success.
  [[nodiscard]] static Topology probe();

  /// Cached probe() result (probed once per process).
  [[nodiscard]] static const Topology& system();

  [[nodiscard]] int node_count() const {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] bool single_node() const { return nodes_.size() == 1; }
  [[nodiscard]] const std::vector<NumaNode>& nodes() const { return nodes_; }

  /// Node owning `cpu`, or 0 if the cpu is unknown (keeps the
  /// single-node fallback honest: everything maps to node 0).
  [[nodiscard]] int node_of_cpu(int cpu) const;

 private:
  std::vector<NumaNode> nodes_;
};

/// Parse a sysfs cpulist ("0-3,8,10-11") into ascending cpu ids.
/// Malformed pieces are skipped rather than thrown — a probe must never
/// take the process down. Exposed for tests.
std::vector<int> parse_cpulist(const std::string& text);

/// Logical CPU the calling thread is running on, or -1 if unknown.
int current_cpu();

/// NUMA node of the calling thread via Topology::system() (0 when
/// unknown — the single-node fallback).
int current_node();

}  // namespace nadmm::support
