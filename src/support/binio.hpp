// Little-endian binary encode/decode primitives.
//
// Shared by the wire codec (src/comm/wire.*) and the solver checkpoint
// format (core snapshot/restore): both need fixed-layout, explicitly
// little-endian integers and bit-exact doubles, independent of host
// endianness and of any printf round-trip. Doubles travel as their
// IEEE-754 bit pattern (bit_cast to u64), so denormals, ±inf and NaN
// payloads survive encode/decode unchanged.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace nadmm::binio {

/// Append-only little-endian encoder over a growable byte buffer.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }

  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }

  void put_i64(std::int64_t v) {
    put_u64(static_cast<std::uint64_t>(v));
  }

  /// IEEE-754 bit pattern, little-endian: exact for every double value.
  void put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

  /// Bulk append of raw doubles (no length prefix). On little-endian
  /// hosts the array's bytes already ARE the wire layout, so this is a
  /// single insert instead of 8 push_backs per value — the difference
  /// between codec throughput and memcpy throughput on large payloads.
  void put_f64_array(std::span<const double> values) {
    if constexpr (std::endian::native == std::endian::little) {
      const auto* raw = reinterpret_cast<const std::uint8_t*>(values.data());
      bytes_.insert(bytes_.end(), raw, raw + values.size() * sizeof(double));
    } else {
      for (const double v : values) put_f64(v);
    }
  }

  void put_f64_span(std::span<const double> values) {
    put_u64(values.size());
    put_f64_array(values);
  }

  /// Pre-size the buffer when the final byte count is known up front.
  void reserve(std::size_t n) { bytes_.reserve(n); }

  void put_bytes(std::span<const std::uint8_t> raw) {
    bytes_.insert(bytes_.end(), raw.begin(), raw.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }
  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian decoder over a borrowed byte span.
/// Every read names `context` in its error so truncation failures say
/// which structure was being decoded.
class ByteReader {
 public:
  ByteReader(std::span<const std::uint8_t> bytes, std::string context)
      : bytes_(bytes), context_(std::move(context)) {}

  std::uint8_t get_u8() {
    need(1, "u8");
    return bytes_[pos_++];
  }

  std::uint16_t get_u16() { return get_le<std::uint16_t>("u16"); }
  std::uint32_t get_u32() { return get_le<std::uint32_t>("u32"); }
  std::uint64_t get_u64() { return get_le<std::uint64_t>("u64"); }

  std::int64_t get_i64() {
    return static_cast<std::int64_t>(get_u64());
  }

  double get_f64() { return std::bit_cast<double>(get_u64()); }

  /// Bulk read of `n` doubles, replacing `out`'s contents. Mirrors
  /// ByteWriter::put_f64_array: one memcpy on little-endian hosts.
  void get_f64_array(std::vector<double>& out, std::uint64_t n) {
    // Bound by the remaining bytes before allocating, so a corrupt
    // length cannot drive a multi-GB reserve.
    if (n * sizeof(double) > remaining()) {
      throw RuntimeError(context_ + ": truncated — f64 vector of length " +
                         std::to_string(n) + " but only " +
                         std::to_string(remaining()) + " bytes remain");
    }
    out.resize(static_cast<std::size_t>(n));
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out.data(), bytes_.data() + pos_,
                  static_cast<std::size_t>(n) * sizeof(double));
      pos_ += static_cast<std::size_t>(n) * sizeof(double);
    } else {
      for (std::uint64_t i = 0; i < n; ++i) out[i] = get_f64();
    }
  }

  std::vector<double> get_f64_vector() {
    const std::uint64_t n = get_u64();
    std::vector<double> out;
    get_f64_array(out, n);
    return out;
  }

  /// Borrow the next `n` raw bytes (e.g. a length-prefixed record) and
  /// advance past them. The span aliases the reader's buffer.
  std::span<const std::uint8_t> get_raw(std::size_t n) {
    need(n, "raw bytes");
    const auto out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }

  /// Reject trailing garbage after a complete decode.
  void expect_end() const {
    if (pos_ != bytes_.size()) {
      throw RuntimeError(context_ + ": " + std::to_string(remaining()) +
                         " trailing bytes after decode");
    }
  }

 private:
  void need(std::size_t n, const char* what) {
    if (remaining() < n) {
      throw RuntimeError(context_ + ": truncated — need " + std::to_string(n) +
                         " bytes for " + what + " at offset " +
                         std::to_string(pos_) + ", have " +
                         std::to_string(remaining()));
    }
  }

  template <typename T>
  T get_le(const char* what) {
    need(sizeof(T), what);
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | static_cast<T>(bytes_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  std::string context_;
};

/// FNV-1a 64-bit over a byte range (checksums; same constants as the
/// sweep fingerprint so there is one hash idiom in the repo).
inline std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                           std::uint64_t seed = 0xcbf29ce484222325ULL) {
  std::uint64_t h = seed;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Word-wise FNV-1a: folds eight little-endian bytes per multiply
/// instead of one, cutting the hash's serial dependency chain — and
/// with it large-frame checksum time — by 8x. A short tail is
/// zero-padded into one final word. The word assembly is explicitly
/// little-endian, so the value is host-independent, but it is NOT the
/// byte-wise fnv1a of the same input: a format picks one and keeps it.
inline std::uint64_t fnv1a_words(std::span<const std::uint8_t> bytes,
                                 std::uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto word_at = [](const std::uint8_t* p, std::size_t n) {
    std::uint64_t w = 0;
    for (std::size_t i = 0; i < n; ++i) w |= std::uint64_t(p[i]) << (8 * i);
    return w;
  };
  std::uint64_t h = seed;
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    h ^= word_at(bytes.data() + i, 8);
    h *= 0x100000001b3ULL;
  }
  if (i < bytes.size()) {
    h ^= word_at(bytes.data() + i, bytes.size() - i);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace nadmm::binio
