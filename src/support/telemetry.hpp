// Unified telemetry: virtual-time span tracing + metrics registry.
//
// The tracer answers "where does *simulated* time go inside one run" —
// which rank waited, which epoch stalled on a retransmit storm, what
// fraction of an epoch was gemm vs. wire vs. RTO backoff — without
// perturbing the run it observes:
//
//   * Spans (`TELEM_SPAN("kernel", "gemm_nn")`) are RAII scopes stamped
//     with BOTH virtual SimClock time and host wall time, plus the
//     flop/byte deltas the scope executed (via flops::Scope). Virtual
//     stamps come from SimClock::projected_seconds(), which prices
//     pending work WITHOUT folding it in: calling sync_compute() from a
//     span would insert extra roofline sync points and change the very
//     timeline being measured.
//   * Each rank records into its own single-writer track buffer — no
//     locks, no atomics on the record path — and tracks merge
//     deterministically at export in (sim_time, track, seq) order.
//     Committed artifacts carry virtual time only, so a trace is
//     byte-identical across sweep `--jobs` levels and host load.
//   * A metrics registry holds named counters, gauges, and log-bucketed
//     histograms (serve::QuantileSketch). Counters/gauges can be
//     snapshotted per epoch as Chrome counter events ("C" phase).
//   * Exporters: Chrome trace_event JSON (open in Perfetto or
//     chrome://tracing; one process per rank, instants for
//     sends/acks/nacks/drops/checkpoints/restores) and an ASCII
//     per-rank timeline. See docs/TRACING.md.
//
// Enablement is two-staged so the disabled path is a single relaxed
// atomic load (bench_telemetry gates <2% overhead on the kernel bench):
// a process-wide count of live TracerScopes, then a thread-local
// context {tracer, track, clock} that TracerScope/TrackScope install.
// Spans and instants record only when a TrackScope bound a rank and its
// SimClock on the current thread; metric increments need only a tracer.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/quantile.hpp"

namespace nadmm::comm {
class SimClock;
}

namespace nadmm::telem {

class Tracer;

/// What one recorded event is. Spans have a duration; instants mark a
/// point (sim_end == sim_begin); counters sample a metric value.
enum class EventKind : std::uint8_t { kSpan = 0, kInstant = 1, kCounter = 2 };

/// One recorded event. `category`/`name` must point at storage that
/// outlives the tracer (string literals, or the tracer's own interned
/// metric names) — the record path never allocates for them.
struct Event {
  EventKind kind = EventKind::kSpan;
  const char* category = "";
  const char* name = "";
  int track = 0;        ///< rank id == Chrome pid
  std::uint64_t seq = 0;  ///< per-track record order (merge tiebreak)
  double sim_begin = 0.0;  ///< virtual seconds
  double sim_end = 0.0;
  double wall_begin = 0.0;  ///< host seconds since tracer creation
  double wall_end = 0.0;
  std::uint64_t flops = 0;
  std::uint64_t bytes = 0;
  double value = 0.0;  ///< kCounter sample
};

/// One rank's event buffer. Exactly one thread appends to a track at a
/// time (the async engine is single-threaded per scenario), so the
/// record path is lock-free by construction.
struct Track {
  int id = 0;
  std::uint64_t next_seq = 0;
  std::vector<Event> events;
};

/// Collects events and metrics for one run (one sweep scenario, or one
/// `nadmm run`/`serve` invocation). Not thread-safe across concurrent
/// writers to the *same* track; distinct tracks are independent.
class Tracer {
 public:
  explicit Tracer(std::string label = "nadmm");

  /// The track for rank `id`, created on first use (stable address).
  Track& track(int id);

  /// Total events recorded across all tracks.
  [[nodiscard]] std::size_t event_count() const;

  /// All events merged in (sim_begin, track, seq) order — deterministic
  /// for a deterministic simulation regardless of host interleaving.
  [[nodiscard]] std::vector<Event> merged_events() const;

  // -- metrics registry ----------------------------------------------
  void add_counter(const std::string& name, std::uint64_t delta);
  void set_gauge(const std::string& name, double value);
  void observe(const std::string& name, double value);
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, serve::QuantileSketch>&
  histograms() const {
    return histograms_;
  }
  /// Emit one Chrome counter event per registered counter/gauge on
  /// `track_id` at virtual time `sim_time` (call at epoch boundaries).
  void snapshot_metrics(int track_id, double sim_time);

  // -- exporters ------------------------------------------------------
  /// Chrome trace_event JSON. Virtual time only unless `include_wall`;
  /// committed artifacts must keep it false for byte-determinism.
  void write_chrome_trace(std::ostream& os, bool include_wall = false) const;
  /// Write the Chrome trace to `path` (throws RuntimeError on I/O error).
  void write_chrome_trace_file(const std::string& path,
                               bool include_wall = false) const;
  /// Per-rank ASCII timeline + per-category totals (virtual time only).
  [[nodiscard]] std::string ascii_timeline(int width = 64) const;

  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] double wall_now() const;

 private:
  std::string label_;
  std::chrono::steady_clock::time_point wall_epoch_;
  std::vector<std::unique_ptr<Track>> tracks_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, serve::QuantileSketch> histograms_;
};

namespace detail {

/// Count of live TracerScopes process-wide. The disabled-mode fast path
/// is exactly one relaxed load of this.
inline std::atomic<int> g_active{0};

/// Thread-local sink: which tracer, which rank track, whose clock.
struct Context {
  Tracer* tracer = nullptr;
  int track = -1;
  const comm::SimClock* clock = nullptr;
};
inline thread_local Context g_ctx;

}  // namespace detail

/// True when the calling thread can record spans/instants right now.
[[nodiscard]] inline bool active() {
  return detail::g_active.load(std::memory_order_relaxed) != 0 &&
         detail::g_ctx.tracer != nullptr && detail::g_ctx.clock != nullptr;
}

/// The tracer installed on this thread, or nullptr.
[[nodiscard]] inline Tracer* current() {
  return detail::g_active.load(std::memory_order_relaxed) != 0
             ? detail::g_ctx.tracer
             : nullptr;
}

/// Installs `tracer` as the calling thread's sink for its lifetime.
/// One per sweep-scenario worker thread / CLI run.
class TracerScope {
 public:
  explicit TracerScope(Tracer& tracer);
  ~TracerScope();
  TracerScope(const TracerScope&) = delete;
  TracerScope& operator=(const TracerScope&) = delete;

 private:
  Tracer* prev_;
};

/// Binds a rank track + its SimClock on the calling thread. The async
/// engine wraps every event handler in one; spans recorded inside
/// inherit the rank and stamp its virtual clock.
class TrackScope {
 public:
  TrackScope(int track, const comm::SimClock* clock);
  ~TrackScope();
  TrackScope(const TrackScope&) = delete;
  TrackScope& operator=(const TrackScope&) = delete;

 private:
  int prev_track_;
  const comm::SimClock* prev_clock_;
};

/// RAII span. Prefer the TELEM_SPAN macro. The inline constructor is
/// the disabled-mode hot path: one relaxed atomic load, then out.
class SpanGuard {
 public:
  SpanGuard(const char* category, const char* name) {
    if (detail::g_active.load(std::memory_order_relaxed) != 0) {
      begin(category, name);
    }
  }
  ~SpanGuard() {
    if (track_ != nullptr) end();
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  void begin(const char* category, const char* name);
  void end();

  Track* track_ = nullptr;  ///< nullptr ⇒ inactive, destructor is free
  const comm::SimClock* clock_ = nullptr;
  const char* category_ = "";
  const char* name_ = "";
  double sim_begin_ = 0.0;
  double wall_begin_ = 0.0;
  std::uint64_t flops_begin_ = 0;
  std::uint64_t bytes_begin_ = 0;
};

namespace detail {
void instant_impl(const char* category, const char* name);
void count_impl(const char* name, std::uint64_t delta);
void gauge_impl(const char* name, double value);
void observe_impl(const char* name, double value);
void snapshot_metrics_impl();
}  // namespace detail

/// Record a zero-duration instant event ("i" phase) on the bound track.
inline void instant(const char* category, const char* name) {
  if (detail::g_active.load(std::memory_order_relaxed) != 0) {
    detail::instant_impl(category, name);
  }
}

/// Increment a named counter on the thread's tracer (no track needed).
inline void count(const char* name, std::uint64_t delta = 1) {
  if (detail::g_active.load(std::memory_order_relaxed) != 0) {
    detail::count_impl(name, delta);
  }
}

/// Set a named gauge on the thread's tracer.
inline void gauge(const char* name, double value) {
  if (detail::g_active.load(std::memory_order_relaxed) != 0) {
    detail::gauge_impl(name, value);
  }
}

/// Feed one sample into a named log-bucketed histogram.
inline void observe(const char* name, double value) {
  if (detail::g_active.load(std::memory_order_relaxed) != 0) {
    detail::observe_impl(name, value);
  }
}

/// Snapshot all registered counters/gauges as counter events on the
/// bound track at the current virtual time (epoch-boundary hook).
inline void snapshot_metrics() {
  if (detail::g_active.load(std::memory_order_relaxed) != 0) {
    detail::snapshot_metrics_impl();
  }
}

#define NADMM_TELEM_CONCAT_INNER(a, b) a##b
#define NADMM_TELEM_CONCAT(a, b) NADMM_TELEM_CONCAT_INNER(a, b)

/// Opens a telemetry span for the rest of the enclosing scope.
/// `category` and `name` must be string literals (or otherwise outlive
/// the tracer).
#define TELEM_SPAN(category, name)          \
  ::nadmm::telem::SpanGuard NADMM_TELEM_CONCAT(telem_span_, __COUNTER__) { \
    (category), (name)                      \
  }

}  // namespace nadmm::telem
