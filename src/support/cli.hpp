// Tiny command-line option parser used by the benches and examples.
//
// Supports `--name value`, `--name=value`, and boolean flags `--name`.
// Every option must be registered with a default and a help string;
// `--help` prints the registry and exits.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nadmm {

class CliParser {
 public:
  /// `program_summary` is printed at the top of --help output.
  explicit CliParser(std::string program_summary);

  /// Register options. Call before parse(). Returns *this for chaining.
  CliParser& add_int(const std::string& name, std::int64_t default_value,
                     const std::string& help);
  CliParser& add_double(const std::string& name, double default_value,
                        const std::string& help);
  CliParser& add_string(const std::string& name, const std::string& default_value,
                        const std::string& help);
  CliParser& add_flag(const std::string& name, const std::string& help);

  /// Parse argv. Throws nadmm::InvalidArgument on unknown options or
  /// malformed values. If `--help` is present, prints usage and returns
  /// false (caller should exit 0).
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// Positional arguments (anything not starting with --).
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  enum class Kind { kInt, kDouble, kString, kFlag };
  struct Option {
    Kind kind;
    std::string value;  // textual; parsed on demand
    std::string default_value;
    std::string help;
    bool seen = false;
  };

  void print_help(const std::string& program) const;
  void insert(const std::string& name, Option opt);
  Option& find(const std::string& name, Kind kind);
  const Option& find(const std::string& name, Kind kind) const;

  std::string summary_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;  // registration order, for --help
  std::vector<std::string> positional_;
};

}  // namespace nadmm
