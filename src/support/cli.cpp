#include "support/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/check.hpp"

namespace nadmm {

CliParser::CliParser(std::string program_summary)
    : summary_(std::move(program_summary)) {
  add_flag("help", "print this help message and exit");
}

void CliParser::insert(const std::string& name, Option opt) {
  if (options_.find(name) == options_.end()) order_.push_back(name);
  options_[name] = std::move(opt);
}

CliParser& CliParser::add_int(const std::string& name, std::int64_t default_value,
                              const std::string& help) {
  Option opt;
  opt.kind = Kind::kInt;
  opt.default_value = std::to_string(default_value);
  opt.value = opt.default_value;
  opt.help = help;
  insert(name, std::move(opt));
  return *this;
}

CliParser& CliParser::add_double(const std::string& name, double default_value,
                                 const std::string& help) {
  Option opt;
  opt.kind = Kind::kDouble;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", default_value);
  opt.default_value = buf;
  opt.value = opt.default_value;
  opt.help = help;
  insert(name, std::move(opt));
  return *this;
}

CliParser& CliParser::add_string(const std::string& name,
                                 const std::string& default_value,
                                 const std::string& help) {
  Option opt;
  opt.kind = Kind::kString;
  opt.default_value = default_value;
  opt.value = default_value;
  opt.help = help;
  insert(name, std::move(opt));
  return *this;
}

CliParser& CliParser::add_flag(const std::string& name, const std::string& help) {
  Option opt;
  opt.kind = Kind::kFlag;
  opt.default_value = "false";
  opt.value = "false";
  opt.help = help;
  insert(name, std::move(opt));
  return *this;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(name);
    NADMM_CHECK(it != options_.end(), "unknown option --" + name);
    Option& opt = it->second;
    if (opt.kind == Kind::kFlag) {
      NADMM_CHECK(!has_value || value == "true" || value == "false",
                  "flag --" + name + " takes no value (or true/false)");
      opt.value = has_value ? value : "true";
    } else {
      if (!has_value) {
        NADMM_CHECK(i + 1 < argc, "option --" + name + " expects a value");
        value = argv[++i];
      }
      opt.value = value;
    }
    opt.seen = true;
  }
  if (get_flag("help")) {
    print_help(argc > 0 ? argv[0] : "program");
    return false;
  }
  return true;
}

void CliParser::print_help(const std::string& program) const {
  std::printf("%s\n\nusage: %s [options]\n\noptions:\n", summary_.c_str(),
              program.c_str());
  // Registration order, so spec-generated surfaces print in the order
  // their OptionSet declared them (not alphabetically).
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    std::printf("  --%-22s %s (default: %s)\n", name.c_str(), opt.help.c_str(),
                opt.default_value.c_str());
  }
}

CliParser::Option& CliParser::find(const std::string& name, Kind kind) {
  auto it = options_.find(name);
  NADMM_CHECK(it != options_.end(), "option --" + name + " was never registered");
  NADMM_CHECK(it->second.kind == kind, "option --" + name + " accessed as wrong type");
  return it->second;
}

const CliParser::Option& CliParser::find(const std::string& name,
                                         Kind kind) const {
  auto it = options_.find(name);
  NADMM_CHECK(it != options_.end(), "option --" + name + " was never registered");
  NADMM_CHECK(it->second.kind == kind, "option --" + name + " accessed as wrong type");
  return it->second;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const Option& opt = find(name, Kind::kInt);
  char* end = nullptr;
  const std::int64_t v = std::strtoll(opt.value.c_str(), &end, 10);
  NADMM_CHECK(end != nullptr && *end == '\0',
              "option --" + name + " expects an integer, got '" + opt.value + "'");
  return v;
}

double CliParser::get_double(const std::string& name) const {
  const Option& opt = find(name, Kind::kDouble);
  char* end = nullptr;
  const double v = std::strtod(opt.value.c_str(), &end);
  NADMM_CHECK(end != nullptr && *end == '\0',
              "option --" + name + " expects a number, got '" + opt.value + "'");
  return v;
}

const std::string& CliParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

bool CliParser::get_flag(const std::string& name) const {
  return find(name, Kind::kFlag).value == "true";
}

}  // namespace nadmm
