// Minimal leveled logging to stderr.
//
// The experiment harness prints its *results* to stdout (so they can be
// redirected / parsed); diagnostic logging goes to stderr through here.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace nadmm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log configuration. Thread-safe.
class Log {
 public:
  static void set_level(LogLevel level) { instance().level_ = level; }
  static LogLevel level() { return instance().level_; }

  static void write(LogLevel level, const std::string& message) {
    Log& log = instance();
    if (level < log.level_) return;
    const std::scoped_lock lock(log.mutex_);
    std::cerr << "[nadmm:" << name(level) << "] " << message << '\n';
  }

 private:
  static Log& instance() {
    static Log log;
    return log;
  }

  static const char* name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "debug";
      case LogLevel::kInfo: return "info";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kError: return "error";
      default: return "?";
    }
  }

  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
};

namespace detail {
inline void log_fmt(LogLevel level, std::ostringstream& os) {
  Log::write(level, os.str());
}
}  // namespace detail

}  // namespace nadmm

#define NADMM_LOG(level, expr)                              \
  do {                                                      \
    if ((level) >= ::nadmm::Log::level()) {                 \
      std::ostringstream nadmm_log_os;                      \
      nadmm_log_os << expr;                                 \
      ::nadmm::Log::write((level), nadmm_log_os.str());     \
    }                                                       \
  } while (false)

#define NADMM_DEBUG(expr) NADMM_LOG(::nadmm::LogLevel::kDebug, expr)
#define NADMM_INFO(expr) NADMM_LOG(::nadmm::LogLevel::kInfo, expr)
#define NADMM_WARN(expr) NADMM_LOG(::nadmm::LogLevel::kWarn, expr)
#define NADMM_ERROR(expr) NADMM_LOG(::nadmm::LogLevel::kError, expr)
