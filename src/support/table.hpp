// Console table printer: the bench harnesses use this to print rows in the
// same shape as the paper's tables / figure series.
#pragma once

#include <string>
#include <vector>

namespace nadmm {

/// Accumulates rows of string cells and prints an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row. Must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 4);
  static std::string fmt_int(long long v);

  /// Render to a string (also used by tests).
  [[nodiscard]] std::string to_string() const;

  /// Print to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nadmm
