#include "support/topology.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <utility>

#if defined(__linux__)
#include <sched.h>
#endif

#include "support/check.hpp"

namespace nadmm::support {

Topology::Topology(std::vector<NumaNode> nodes) : nodes_(std::move(nodes)) {
  NADMM_CHECK(!nodes_.empty(), "Topology: at least one node required");
}

std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::stringstream ss(text);
  std::string piece;
  while (std::getline(ss, piece, ',')) {
    // Trim whitespace (sysfs files end in '\n').
    while (!piece.empty() && std::isspace(static_cast<unsigned char>(piece.back())) != 0) {
      piece.pop_back();
    }
    while (!piece.empty() && std::isspace(static_cast<unsigned char>(piece.front())) != 0) {
      piece.erase(piece.begin());
    }
    if (piece.empty()) continue;
    const std::size_t dash = piece.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(piece));
      } else {
        const int lo = std::stoi(piece.substr(0, dash));
        const int hi = std::stoi(piece.substr(dash + 1));
        for (int c = lo; c <= hi; ++c) cpus.push_back(c);
      }
    } catch (...) {
      // Malformed piece: skip it, keep the rest.
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

Topology Topology::probe() {
#if defined(__linux__)
  std::vector<NumaNode> nodes;
  // Node ids can be sparse (node0, node2 on partially populated boxes);
  // a bounded scan with a miss allowance covers that without readdir.
  int misses = 0;
  for (int id = 0; id < 1024 && misses < 16; ++id) {
    std::ifstream f("/sys/devices/system/node/node" + std::to_string(id) +
                    "/cpulist");
    if (!f) {
      ++misses;
      continue;
    }
    std::string text((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    nodes.push_back(NumaNode{id, parse_cpulist(text)});
  }
  if (!nodes.empty()) return Topology(std::move(nodes));
#endif
  return Topology{};
}

const Topology& Topology::system() {
  static const Topology topo = probe();
  return topo;
}

int Topology::node_of_cpu(int cpu) const {
  for (const NumaNode& n : nodes_) {
    if (std::binary_search(n.cpus.begin(), n.cpus.end(), cpu)) return n.id;
  }
  return 0;
}

int current_cpu() {
#if defined(__linux__)
  return sched_getcpu();
#else
  return -1;
#endif
}

int current_node() {
  const int cpu = current_cpu();
  if (cpu < 0) return 0;
  return Topology::system().node_of_cpu(cpu);
}

}  // namespace nadmm::support
