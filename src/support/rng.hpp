// Deterministic, splittable random number generation.
//
// We deliberately avoid <random> distributions: their output is
// implementation-defined, which would make dataset generation (and hence
// every experiment) differ across standard libraries. SplitMix64 plus
// hand-rolled uniform / Box-Muller normal / Poisson samplers give
// bit-identical streams everywhere.
#pragma once

#include <cmath>
#include <cstdint>

namespace nadmm {

/// SplitMix64 PRNG (Steele, Lea, Flood 2014). Passes BigCrush, 64-bit state,
/// trivially splittable: `split()` derives an independent stream, which we
/// use to give each data shard / worker its own generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      std::uint64_t t = (0ULL - n) % n;
      while (lo < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (cached second value).
  double normal() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    double u2 = uniform();
    // Guard log(0).
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586476925286766559 * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Poisson sample (Knuth for small lambda, normal approximation for large).
  std::uint64_t poisson(double lambda) {
    if (lambda <= 0.0) return 0;
    if (lambda < 30.0) {
      const double l = std::exp(-lambda);
      std::uint64_t k = 0;
      double p = 1.0;
      do {
        ++k;
        p *= uniform();
      } while (p > l);
      return k - 1;
    }
    const double x = normal(lambda, std::sqrt(lambda));
    return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
  }

  /// Bernoulli(p).
  bool bernoulli(double p) { return uniform() < p; }

  /// Derive an independent generator (distinct stream) from this one.
  Rng split() {
    // Mix the next output through a different finalizer so the child
    // stream does not overlap with this one's future outputs.
    std::uint64_t s = next_u64() ^ 0xd1b54a32d192ed03ULL;
    s *= 0xaef17502108ef2d9ULL;
    s ^= s >> 29;
    return Rng(s);
  }

 private:
  std::uint64_t state_;
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace nadmm
