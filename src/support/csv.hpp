// CSV writer for experiment traces. Values are written with full precision
// so downstream plotting can regenerate the paper's figures exactly.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace nadmm {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws nadmm::RuntimeError if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append one row; arity must match the header.
  void add_row(const std::vector<std::string>& cells);

  /// Convenience for numeric rows.
  void add_row(const std::vector<double>& values);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t arity_;
};

}  // namespace nadmm
