#include "support/table.hpp"

#include <cstdio>
#include <sstream>

#include "support/check.hpp"

namespace nadmm {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  NADMM_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  NADMM_CHECK(cells.size() == header_.size(),
              "row arity does not match header");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_int(long long v) { return std::to_string(v); }

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
      os << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      for (std::size_t i = 0; i < width[c] + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace nadmm
