// Wall-clock timing helper.
#pragma once

#include <chrono>

namespace nadmm {

/// Monotonic stopwatch. `seconds()` returns elapsed time since construction
/// or the last `reset()`.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nadmm
