#include "comm/cluster.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <thread>

#include "la/vector_ops.hpp"
#include "support/check.hpp"

namespace nadmm::comm {

namespace detail {

void FailableBarrier::arrive_and_wait() {
  std::unique_lock lock(mutex_);
  if (failed_.load()) throw ClusterAborted();
  const std::uint64_t generation = generation_;
  if (++waiting_ == participants_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != generation || failed_.load(); });
  if (generation_ == generation && failed_.load()) throw ClusterAborted();
}

void FailableBarrier::abort() {
  const std::scoped_lock lock(mutex_);
  failed_.store(true);
  cv_.notify_all();
}

void FailableBarrier::reset() {
  const std::scoped_lock lock(mutex_);
  failed_.store(false);
  waiting_ = 0;
}

}  // namespace detail

SimCluster::SimCluster(int n, la::DeviceModel device, NetworkModel network,
                       int omp_threads_per_rank)
    : SimCluster(std::vector<la::DeviceModel>(
                     static_cast<std::size_t>(std::max(n, 0)), std::move(device)),
                 std::move(network), omp_threads_per_rank) {}

SimCluster::SimCluster(std::vector<la::DeviceModel> devices,
                       NetworkModel network, int omp_threads_per_rank)
    : size_(static_cast<int>(devices.size())),
      devices_(std::move(devices)),
      network_(std::move(network)),
      omp_threads_per_rank_(omp_threads_per_rank),
      barrier_(size_),
      contributions_(static_cast<std::size_t>(size_)),
      reduce_slots_(static_cast<std::size_t>(size_)),
      scalar_slots_(static_cast<std::size_t>(size_), 0.0) {
  NADMM_CHECK(size_ >= 1, "cluster needs at least one rank");
}

std::vector<RankReport> SimCluster::run(
    const std::function<void(RankCtx&)>& fn) {
  first_error_ = nullptr;
  barrier_.reset();
  std::vector<RankReport> reports(static_cast<std::size_t>(size_));

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int omp_threads =
      omp_threads_per_rank_ > 0
          ? omp_threads_per_rank_
          : std::max(1, static_cast<int>(hw) / std::max(1, size_));

  auto worker = [&](int rank) {
    // Limit each rank's OpenMP team so N ranks never oversubscribe the
    // host (the ICV set here is per-thread).
#ifdef _OPENMP
    omp_set_num_threads(omp_threads);
#else
    static_cast<void>(omp_threads);
#endif
    nadmm::flops::reset();
    RankCtx ctx(rank, size_, *this, devices_[static_cast<std::size_t>(rank)]);
    try {
      fn(ctx);
      ctx.clock_.sync_compute();
    } catch (...) {
      {
        const std::scoped_lock lock(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      barrier_.abort();
    }
    RankReport& report = reports[static_cast<std::size_t>(rank)];
    report.compute_seconds = ctx.clock_.compute_seconds();
    report.comm_seconds = ctx.clock_.comm_seconds();
    report.wait_seconds = ctx.clock_.wait_seconds();
    report.total_flops = ctx.clock_.total_flops();
    report.total_bytes = ctx.clock_.total_bytes();
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) threads.emplace_back(worker, r);
  for (auto& t : threads) t.join();

  // Barrier skew: the run ends when the slowest rank does, so every
  // other rank spent the difference parked at barriers.
  double max_busy = 0.0;
  for (const auto& r : reports) {
    max_busy = std::max(max_busy, r.compute_seconds + r.comm_seconds);
  }
  for (auto& r : reports) {
    r.wait_seconds += max_busy - (r.compute_seconds + r.comm_seconds);
  }

  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
  return reports;
}

const NetworkModel& RankCtx::network() const { return cluster_->network_; }

void RankCtx::barrier() {
  clock_.sync_compute();
  cluster_->barrier_.arrive_and_wait();
}

void RankCtx::allreduce_sum(std::span<double> data) {
  clock_.sync_compute();
  SimCluster& c = *cluster_;
  const std::size_t len = data.size();
  c.reduce_slots_[static_cast<std::size_t>(rank_)] = data;
  c.barrier_.arrive_and_wait();

  // Round 2: each rank owns a disjoint slice of the element range, sums
  // it across all ranks in rank order (deterministic), and writes the
  // total directly back into every rank's buffer. The comm charge is
  // folded into this round, so the whole collective costs two barriers
  // (the seed used a third round just to copy totals out of a shared
  // scratch buffer).
  const std::size_t lo = len * static_cast<std::size_t>(rank_) /
                         static_cast<std::size_t>(size_);
  const std::size_t hi = len * (static_cast<std::size_t>(rank_) + 1) /
                         static_cast<std::size_t>(size_);
  for (std::size_t j = lo; j < hi; ++j) {
    double acc = 0.0;
    for (int r = 0; r < size_; ++r) {
      acc += c.reduce_slots_[static_cast<std::size_t>(r)][j];
    }
    for (int r = 0; r < size_; ++r) {
      c.reduce_slots_[static_cast<std::size_t>(r)][j] = acc;
    }
  }
  clock_.add_comm(c.network_.allreduce(len * sizeof(double), size_));
  c.barrier_.arrive_and_wait();
}

double RankCtx::allreduce_sum(double value) {
  allreduce_sum(std::span<double>(&value, 1));
  return value;
}

double RankCtx::allreduce_max(double value) {
  clock_.sync_compute();
  SimCluster& c = *cluster_;
  c.scalar_slots_[static_cast<std::size_t>(rank_)] = value;
  c.barrier_.arrive_and_wait();
  double best = c.scalar_slots_[0];
  for (int r = 1; r < size_; ++r)
    best = std::max(best, c.scalar_slots_[static_cast<std::size_t>(r)]);
  clock_.add_comm(c.network_.allreduce(sizeof(double), size_));
  c.barrier_.arrive_and_wait();
  return best;
}

double RankCtx::allreduce_min(double value) { return -allreduce_max(-value); }

void RankCtx::gather(std::span<const double> in, std::vector<double>& out,
                     int root) {
  clock_.sync_compute();
  SimCluster& c = *cluster_;
  c.contributions_[static_cast<std::size_t>(rank_)] = in;
  if (rank_ == root) {
    out.resize(in.size() * static_cast<std::size_t>(size_));
  }
  c.barrier_.arrive_and_wait();
  if (rank_ == root) {
    for (int r = 0; r < size_; ++r) {
      const auto src = c.contributions_[static_cast<std::size_t>(r)];
      NADMM_CHECK(src.size() == in.size(),
                  "gather: all contributions must have equal length");
      std::copy(src.begin(), src.end(),
                out.begin() + static_cast<std::ptrdiff_t>(
                                  static_cast<std::size_t>(r) * in.size()));
    }
  }
  clock_.add_comm(c.network_.gather(in.size() * sizeof(double), size_));
  c.barrier_.arrive_and_wait();
}

void RankCtx::scatter(std::span<const double> in, std::span<double> out,
                      int root) {
  clock_.sync_compute();
  SimCluster& c = *cluster_;
  if (rank_ == root) {
    NADMM_CHECK(in.size() == out.size() * static_cast<std::size_t>(size_),
                "scatter: root buffer must hold size()*chunk values");
    c.contributions_[static_cast<std::size_t>(root)] = in;
  }
  c.barrier_.arrive_and_wait();
  const auto src = c.contributions_[static_cast<std::size_t>(root)];
  const std::size_t chunk = out.size();
  std::copy(src.begin() + static_cast<std::ptrdiff_t>(
                              static_cast<std::size_t>(rank_) * chunk),
            src.begin() + static_cast<std::ptrdiff_t>(
                              (static_cast<std::size_t>(rank_) + 1) * chunk),
            out.begin());
  clock_.add_comm(c.network_.scatter(chunk * sizeof(double), size_));
  c.barrier_.arrive_and_wait();
}

void RankCtx::broadcast(std::span<double> data, int root) {
  clock_.sync_compute();
  SimCluster& c = *cluster_;
  if (rank_ == root) c.contributions_[static_cast<std::size_t>(root)] = data;
  c.barrier_.arrive_and_wait();
  if (rank_ != root) {
    const auto src = c.contributions_[static_cast<std::size_t>(root)];
    NADMM_CHECK(src.size() == data.size(), "broadcast: buffer size mismatch");
    std::copy(src.begin(), src.end(), data.begin());
  }
  clock_.add_comm(c.network_.broadcast(data.size() * sizeof(double), size_));
  c.barrier_.arrive_and_wait();
}

void RankCtx::allgather(std::span<const double> in, std::vector<double>& out) {
  clock_.sync_compute();
  SimCluster& c = *cluster_;
  c.contributions_[static_cast<std::size_t>(rank_)] = in;
  c.barrier_.arrive_and_wait();
  out.resize(in.size() * static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    const auto src = c.contributions_[static_cast<std::size_t>(r)];
    NADMM_CHECK(src.size() == in.size(),
                "allgather: all contributions must have equal length");
    std::copy(src.begin(), src.end(),
              out.begin() + static_cast<std::ptrdiff_t>(
                                static_cast<std::size_t>(r) * in.size()));
  }
  clock_.add_comm(c.network_.allgather(in.size() * sizeof(double), size_));
  c.barrier_.arrive_and_wait();
}

void RankCtx::charge_all(double seconds) { clock_.add_comm(seconds); }

}  // namespace nadmm::comm
