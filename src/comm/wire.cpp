#include "comm/wire.hpp"

#include <cstdio>
#include <string>

#include "support/binio.hpp"
#include "support/check.hpp"

namespace nadmm::comm::wire {

namespace {

constexpr std::size_t kChecksumOffset = 40;

std::uint64_t frame_checksum(std::span<const std::uint8_t> bytes) {
  // Header with the checksum field zeroed, then the payload. The
  // encoder writes the checksum last, so hashing [0, 40) + [48, end)
  // is equivalent and avoids a copy. Word-wise FNV-1a: both spans are
  // multiples of 8 (40-byte prefix, 8-byte doubles), and the 8-bytes-
  // per-multiply chain is what keeps large-frame checksum cost from
  // dominating encode/decode (see bench_wire).
  std::uint64_t h = binio::fnv1a_words(bytes.subspan(0, kChecksumOffset));
  return binio::fnv1a_words(bytes.subspan(kHeaderBytes), h);
}

[[noreturn]] void reject(const std::string& why) {
  throw RuntimeError("wire decode: " + why);
}

}  // namespace

std::vector<std::uint8_t> encode(const Frame& frame) {
  binio::ByteWriter w;
  w.reserve(static_cast<std::size_t>(frame_bytes(frame.payload.size())));
  w.put_u32(kMagic);
  w.put_u16(kWireVersion);
  w.put_u16(static_cast<std::uint16_t>(frame.kind));
  w.put_u32(static_cast<std::uint32_t>(frame.from));
  w.put_u32(static_cast<std::uint32_t>(frame.to));
  w.put_u32(static_cast<std::uint32_t>(frame.tag));
  w.put_u32(0);  // reserved
  w.put_u64(frame.link_seq);
  w.put_u64(frame.payload.size());
  w.put_u64(0);  // checksum placeholder
  w.put_f64_array(frame.payload);

  std::vector<std::uint8_t> bytes = w.take();
  const std::uint64_t sum = frame_checksum(bytes);
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[kChecksumOffset + i] = static_cast<std::uint8_t>(sum >> (8 * i));
  }
  return bytes;
}

Frame decode(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes) {
    reject("truncated header — " + std::to_string(bytes.size()) +
           " bytes, need " + std::to_string(kHeaderBytes));
  }
  binio::ByteReader r(bytes, "wire frame");
  const std::uint32_t magic = r.get_u32();
  if (magic != kMagic) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x", magic);
    reject("bad magic 0x" + std::string(buf));
  }
  const std::uint16_t version = r.get_u16();
  if (version != kWireVersion) {
    reject("unsupported version " + std::to_string(version) + " (expected " +
           std::to_string(kWireVersion) + ")");
  }
  const std::uint16_t kind_raw = r.get_u16();
  if (kind_raw > static_cast<std::uint16_t>(FrameKind::kNack)) {
    reject("unknown frame kind " + std::to_string(kind_raw));
  }
  Frame frame;
  frame.kind = static_cast<FrameKind>(kind_raw);
  frame.from = static_cast<int>(r.get_u32());
  frame.to = static_cast<int>(r.get_u32());
  frame.tag = static_cast<int>(r.get_u32());
  r.get_u32();  // reserved
  frame.link_seq = r.get_u64();
  const std::uint64_t payload_len = r.get_u64();
  const std::uint64_t expected_sum = r.get_u64();

  if (bytes.size() != frame_bytes(payload_len)) {
    reject("length mismatch — header declares " + std::to_string(payload_len) +
           " doubles (" + std::to_string(frame_bytes(payload_len)) +
           " bytes), frame is " + std::to_string(bytes.size()) + " bytes");
  }
  const std::uint64_t actual_sum = frame_checksum(bytes);
  if (actual_sum != expected_sum) {
    reject("checksum mismatch — corrupted frame from rank " +
           std::to_string(frame.from) + " seq " +
           std::to_string(frame.link_seq));
  }
  r.get_f64_array(frame.payload, payload_len);
  r.expect_end();
  return frame;
}

}  // namespace nadmm::comm::wire
