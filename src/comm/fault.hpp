// Deterministic link-fault injection for the async engine.
//
// A FaultSpec is parsed from the CLI string
// `drop:p[,dup:p][,reorder:p][,corrupt:p]` (any subset, any order;
// "none" = no faults). The engine instantiates one FaultModel per
// directed link (from, to), seeded by mixing the run seed with the two
// rank ids, and consults it once per transmitted data frame. Every
// consultation draws a FIXED number of uniforms regardless of which
// faults fire, so the decision for transmission k on a link depends
// only on (seed, from, to, k) — never on what happened to other frames
// or links. That is what keeps faulty runs byte-deterministic across
// sweep-pool interleavings.
#pragma once

#include <cstdint>
#include <string>

#include "support/rng.hpp"

namespace nadmm::comm {

/// Per-link fault probabilities. All default to 0 (clean link).
struct FaultSpec {
  double drop = 0.0;     ///< frame lost in flight
  double duplicate = 0.0;  ///< second copy delivered later
  double reorder = 0.0;  ///< frame delayed past its successors
  double corrupt = 0.0;  ///< one payload/header bit flipped in flight

  [[nodiscard]] bool any() const {
    return drop > 0.0 || duplicate > 0.0 || reorder > 0.0 || corrupt > 0.0;
  }

  /// Parse "none" or "drop:0.05,dup:0.01,reorder:0.02,corrupt:0.01"
  /// (keys optional, order free; '+' is accepted as a clause separator
  /// so comma-split sweep axis entries can carry multi-clause specs).
  /// Throws nadmm::InvalidArgument on an unknown key, malformed number,
  /// or probability outside [0, 1].
  static FaultSpec parse(const std::string& spec);

  /// Canonical string form (round-trips through parse).
  [[nodiscard]] std::string to_string() const;
};

/// What happens to one transmitted frame.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  double delay = 0.0;       ///< extra in-flight latency (reorder)
  double dup_delay = 0.0;   ///< extra latency on the duplicate copy
  std::uint64_t corrupt_bit = 0;  ///< bit index to flip, mod frame size
};

/// Deterministic fault source for one directed link.
class FaultModel {
 public:
  /// `seed` is the run seed; the link identity is mixed in so each
  /// (from, to) pair gets an independent stream.
  FaultModel(const FaultSpec& spec, std::uint64_t seed, int from, int to);

  /// Decide the fate of the next transmitted frame. `transit_seconds`
  /// scales the reorder/duplicate delays so "reordered" means "arrives
  /// after frames sent up to a few transits later", whatever the
  /// network model's latency scale is.
  FaultDecision next(double transit_seconds);

 private:
  FaultSpec spec_;
  Rng rng_;
};

}  // namespace nadmm::comm
