#include "comm/network_model.hpp"

#include "support/check.hpp"

namespace nadmm::comm {

NetworkModel network_from_string(const std::string& spec) {
  if (spec == "ib100") return infiniband_100g();
  if (spec == "eth10") return ethernet_10g();
  if (spec == "eth1") return ethernet_1g();
  if (spec == "wan") return wan();
  if (spec == "ideal") return ideal_network();
  throw InvalidArgument("unknown network preset '" + spec +
                        "' (expected ib100|eth10|eth1|wan|ideal)");
}

}  // namespace nadmm::comm
