// α–β network cost model for the simulated cluster.
//
// The paper's experiments run MPI over 100 Gbps InfiniBand and argue that
// Newton-ADMM's one-communication-round-per-iteration design matters most
// on slower interconnects. We model each point-to-point message as
// `α + bytes/β` (latency + serialization) and collectives as binomial
// trees, which matches the paper's O(log N) gather/scatter remark.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

namespace nadmm::comm {

// Charging discipline (audited for the async engine, see comm/async.hpp):
//   * Synchronous collectives (comm/cluster.cpp) are barriers — every
//     participant is blocked for the whole collective, so the full
//     formula below is charged to every rank's SimClock.
//   * Asynchronous point-to-point sends must NOT charge `point_to_point`
//     to both endpoints (that would price every message twice). The
//     engine charges the sender `serialization(bytes)` only (its link is
//     busy pushing the message out) and folds the full in-flight time
//     `point_to_point(bytes)` into the delivery timestamp; the receiver
//     pays nothing directly — if it is idle when the message lands, the
//     gap is booked as wait time, not communication.
struct NetworkModel {
  std::string name;
  double latency_s;        ///< α: per-message latency in seconds
  double bandwidth_bps;    ///< β: bytes per second (not bits)

  /// Full in-flight time of one message: α + bytes/β.
  [[nodiscard]] double point_to_point(std::uint64_t bytes) const {
    return latency_s + serialization(bytes);
  }

  /// Sender-side link occupancy alone (the bytes/β term). This is what an
  /// asynchronous sender's clock is charged; the latency α is time the
  /// message spends on the wire, not time either endpoint is busy.
  [[nodiscard]] double serialization(std::uint64_t bytes) const {
    return static_cast<double>(bytes) / bandwidth_bps;
  }

  /// Tree depth for N participants.
  [[nodiscard]] static int tree_depth(int n) {
    int d = 0;
    int span = 1;
    while (span < n) {
      span *= 2;
      ++d;
    }
    return d;
  }

  /// Reduce-then-broadcast allreduce over a binomial tree: each of the
  /// 2·⌈log2 N⌉ rounds moves the full message.
  [[nodiscard]] double allreduce(std::uint64_t bytes, int n) const {
    if (n <= 1) return 0.0;
    return 2.0 * tree_depth(n) * point_to_point(bytes);
  }

  [[nodiscard]] double broadcast(std::uint64_t bytes, int n) const {
    if (n <= 1) return 0.0;
    return tree_depth(n) * point_to_point(bytes);
  }

  /// Gather of one `bytes_per_rank` chunk from each rank: ⌈log2 N⌉ latency
  /// rounds; the root's link carries all (N−1) remote chunks.
  [[nodiscard]] double gather(std::uint64_t bytes_per_rank, int n) const {
    if (n <= 1) return 0.0;
    return tree_depth(n) * latency_s +
           static_cast<double>(n - 1) * static_cast<double>(bytes_per_rank) /
               bandwidth_bps;
  }

  [[nodiscard]] double scatter(std::uint64_t bytes_per_rank, int n) const {
    return gather(bytes_per_rank, n);
  }

  [[nodiscard]] double allgather(std::uint64_t bytes_per_rank, int n) const {
    if (n <= 1) return 0.0;
    // Recursive doubling: log2 N rounds, round k moving 2^k chunks.
    return tree_depth(n) * latency_s +
           static_cast<double>(n - 1) * static_cast<double>(bytes_per_rank) /
               bandwidth_bps;
  }
};

/// 100 Gbps InfiniBand (the paper's cluster): ~1.5 µs latency, 12.5 GB/s.
inline NetworkModel infiniband_100g() { return {"ib100", 1.5e-6, 12.5e9}; }

/// 10 Gbps Ethernet: ~30 µs latency, 1.25 GB/s.
inline NetworkModel ethernet_10g() { return {"eth10", 30e-6, 1.25e9}; }

/// 1 Gbps Ethernet: ~80 µs latency, 125 MB/s.
inline NetworkModel ethernet_1g() { return {"eth1", 80e-6, 125e6}; }

/// Wide-area link: 5 ms latency, 100 Mbps.
inline NetworkModel wan() { return {"wan", 5e-3, 12.5e6}; }

/// Zero-cost network (isolates compute effects in ablations).
inline NetworkModel ideal_network() { return {"ideal", 0.0, 1e18}; }

/// Look up a preset by name; throws nadmm::InvalidArgument on unknown names.
NetworkModel network_from_string(const std::string& spec);

}  // namespace nadmm::comm
