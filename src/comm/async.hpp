// Event-driven asynchronous runtime on virtual time.
//
// The synchronous SimCluster can only express SPMD ranks meeting at
// barriers — it cannot model the paper's most interesting regime, where
// ranks are heterogeneous, the interconnect is slow, and nobody waits.
// This engine fills that gap: each rank owns a mailbox of timestamped
// messages; point-to-point sends are priced by the NetworkModel (the
// sender's clock is charged the serialization term only, and the full
// in-flight time `point_to_point` becomes the delivery timestamp — see
// the charging-discipline note in network_model.hpp); a message handler
// runs on the destination rank at max(rank clock, delivery time), with
// any gap booked as idle wait.
//
// Messages are priced as wire frames (comm/wire.hpp): header + payload,
// not bare payload bytes. With faults enabled (`set_faults`), remote
// sends actually travel as encoded frames through a per-link reliable
// channel — sequence numbers, checksums, ack/nack, timeout retransmit —
// and a seeded FaultModel drops/duplicates/reorders/corrupts frames in
// flight. The app handler still sees exactly one in-order delivery per
// send (or none, if the channel abandons the frame after repeated loss).
//
// Determinism: delivery follows the strict total order
// (delivery_time, seq), where `seq` is a global send counter — unique,
// so no further tiebreak (e.g. by rank) can ever be reached. The event
// loop is single-threaded, and fault decisions consume a fixed number
// of per-link RNG draws per transmission, so two runs of the same
// (configuration, fault spec, seed) replay byte-identical schedules
// regardless of host load, sweep-pool interleaving, or how many
// scenarios run concurrently.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "comm/clock.hpp"
#include "comm/fault.hpp"
#include "comm/network_model.hpp"
#include "comm/wire.hpp"
#include "la/device.hpp"

namespace nadmm::comm {

/// One timestamped mailbox entry.
struct AsyncMessage {
  int from = -1;
  int to = -1;
  int tag = 0;               ///< protocol-defined discriminator
  double send_time = 0.0;     ///< sender's clock when the send was issued
  double delivery_time = 0.0; ///< send_time + point_to_point(frame bytes)
  std::uint64_t seq = 0;      ///< global send order (deterministic tiebreak)
  std::vector<double> payload;

  // Engine-internal routing for the fault-mode reliable channel; app
  // handlers only ever observe event_kind == 0 (an app delivery).
  std::uint8_t event_kind = 0;        ///< detail::EventKind
  std::uint64_t link_seq = 0;         ///< per-link seq / ack cursor
  int peer = -1;                      ///< retry-timer link destination
  std::vector<std::uint8_t> frame;    ///< encoded bytes (fault-mode data)
};

/// Per-rank statistics returned by AsyncEngine::run.
struct AsyncRankReport {
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;   ///< serialization charges for sent frames
  double wait_seconds = 0.0;   ///< idle time between handler invocations
  double finish_time = 0.0;    ///< rank clock when the event queue drained
  std::uint64_t total_flops = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  /// Messages addressed to this rank that were never delivered: dropped
  /// on a halted mailbox, or abandoned by the reliable channel after
  /// exhausting retransmit attempts.
  std::uint64_t messages_dropped = 0;
  std::uint64_t retransmits = 0;     ///< data frames re-sent by this rank
  std::uint64_t gaps_detected = 0;   ///< out-of-order holds at this rank
};

class AsyncEngine;

/// Handle passed to the start and message handlers of one rank.
class AsyncRank {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;
  /// This rank's current virtual time (compute + comm + wait).
  [[nodiscard]] double now() { return clock_.total_seconds(); }
  [[nodiscard]] SimClock& clock() { return clock_; }
  [[nodiscard]] const NetworkModel& network() const;

  /// Post `payload` to rank `to`. The message is delivered at
  /// now() + point_to_point(frame bytes); the sender's clock is charged
  /// the serialization term. Loopback sends (to == rank()) are free and
  /// deliver at now().
  void send(int to, int tag, std::vector<double> payload);

  /// Self-message after `delay` simulated seconds (a timer). Free.
  void send_self(int tag, double delay, std::vector<double> payload = {});

  /// Stop accepting messages: anything still in flight toward this rank
  /// is dropped on delivery (and counted in messages_dropped).
  void halt() { halted_ = true; }
  [[nodiscard]] bool halted() const { return halted_; }

 private:
  friend class AsyncEngine;
  AsyncRank(int rank, AsyncEngine& engine, la::DeviceModel device)
      : rank_(rank), engine_(&engine), clock_(std::move(device)) {}

  int rank_;
  AsyncEngine* engine_;
  SimClock clock_;
  bool halted_ = false;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t gaps_ = 0;
};

/// The virtual-time scheduler. Construct with one device model per rank,
/// then `run(on_start, on_message)`: every rank's start handler executes
/// at time 0 (in rank order), after which messages are delivered in the
/// (delivery_time, seq) total order until the queue drains or
/// every rank has halted.
class AsyncEngine {
 public:
  /// `omp_threads` pins the OpenMP team used by handler compute; 0 keeps
  /// the calling thread's current setting (the whole event loop runs on
  /// one thread, so there is no per-rank split to derive).
  AsyncEngine(std::vector<la::DeviceModel> devices, NetworkModel network,
              int omp_threads = 0);

  /// Route remote sends through the fault-injecting reliable channel.
  /// Must be called before run(). A spec with all probabilities zero
  /// still enables the channel (frames, acks, timers flow), which is
  /// how the retransmit-overhead bench isolates channel cost.
  void set_faults(const FaultSpec& spec, std::uint64_t seed);

  using StartFn = std::function<void(AsyncRank&)>;
  using MessageFn = std::function<void(AsyncRank&, const AsyncMessage&)>;

  /// Execute the protocol; single use (construct a fresh engine per run).
  std::vector<AsyncRankReport> run(const StartFn& on_start,
                                   const MessageFn& on_message);

  [[nodiscard]] int size() const { return static_cast<int>(devices_.size()); }
  [[nodiscard]] const NetworkModel& network() const { return network_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }

 private:
  friend class AsyncRank;

  /// Reliable-channel state for one directed link (from, to).
  struct Unacked {
    std::vector<std::uint8_t> frame;  ///< canonical encoded bytes
    int attempts = 1;                 ///< transmissions so far
  };
  struct LinkSender {
    std::uint64_t next_seq = 0;
    std::map<std::uint64_t, Unacked> unacked;  ///< deterministic order
    bool timer_pending = false;
  };
  struct LinkReceiver {
    std::uint64_t expected = 0;                ///< next in-order seq
    std::map<std::uint64_t, wire::Frame> held; ///< out-of-order buffer
    /// Last seq nacked while `expected` was stuck there — suppresses a
    /// nack storm when many successors of one lost frame arrive; the
    /// retransmit timer backstops a lost retransmission.
    std::uint64_t last_nacked = ~0ULL;
  };

  void push_event(AsyncMessage message);
  AsyncMessage pop_event();

  std::size_t link_index(int from, int to) const {
    return static_cast<std::size_t>(from) * devices_.size() +
           static_cast<std::size_t>(to);
  }
  void channel_send(AsyncRank& sender, int to, int tag,
                    std::vector<double> payload);
  void transmit(double base_time, int from, int to, std::uint64_t seq);
  void send_control(wire::FrameKind kind, int from, int to,
                    std::uint64_t cursor, double base_time);
  void settle_links(std::vector<AsyncRank>& ranks);
  void handle_data(const AsyncMessage& event, const MessageFn& on_message);
  void handle_control(const AsyncMessage& event);
  void handle_timer(const AsyncMessage& event);
  void deliver_app(AsyncRank& rank, const AsyncMessage& event,
                   const MessageFn& on_message);

  std::vector<la::DeviceModel> devices_;
  NetworkModel network_;
  int omp_threads_;
  std::vector<AsyncMessage> queue_;  ///< binary min-heap, see event_after
  std::uint64_t next_seq_ = 0;
  std::uint64_t delivered_ = 0;
  bool ran_ = false;

  bool faults_enabled_ = false;
  FaultSpec fault_spec_;
  std::uint64_t fault_seed_ = 0;
  std::vector<FaultModel> fault_links_;
  std::vector<LinkSender> link_senders_;
  std::vector<LinkReceiver> link_receivers_;
  std::vector<AsyncRank>* running_ranks_ = nullptr;
};

}  // namespace nadmm::comm
