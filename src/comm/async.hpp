// Event-driven asynchronous runtime on virtual time.
//
// The synchronous SimCluster can only express SPMD ranks meeting at
// barriers — it cannot model the paper's most interesting regime, where
// ranks are heterogeneous, the interconnect is slow, and nobody waits.
// This engine fills that gap: each rank owns a mailbox of timestamped
// messages; point-to-point sends are priced by the NetworkModel (the
// sender's clock is charged the serialization term only, and the full
// in-flight time `point_to_point` becomes the delivery timestamp — see
// the charging-discipline note in network_model.hpp); a message handler
// runs on the destination rank at max(rank clock, delivery time), with
// any gap booked as idle wait.
//
// Determinism: delivery follows the strict total order
// (delivery_time, seq), where `seq` is a global send counter — unique,
// so no further tiebreak (e.g. by rank) can ever be reached. The event
// loop is single-threaded, so two runs of the same configuration replay
// byte-identical schedules regardless of host load, sweep-pool
// interleaving, or how many scenarios run concurrently.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "comm/clock.hpp"
#include "comm/network_model.hpp"
#include "la/device.hpp"

namespace nadmm::comm {

/// One timestamped mailbox entry.
struct AsyncMessage {
  int from = -1;
  int to = -1;
  int tag = 0;               ///< protocol-defined discriminator
  double send_time = 0.0;     ///< sender's clock when the send was issued
  double delivery_time = 0.0; ///< send_time + point_to_point(bytes)
  std::uint64_t seq = 0;      ///< global send order (deterministic tiebreak)
  std::vector<double> payload;
};

/// Per-rank statistics returned by AsyncEngine::run.
struct AsyncRankReport {
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;   ///< serialization charges for sent messages
  double wait_seconds = 0.0;   ///< idle time between handler invocations
  double finish_time = 0.0;    ///< rank clock when the event queue drained
  std::uint64_t total_flops = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
};

class AsyncEngine;

/// Handle passed to the start and message handlers of one rank.
class AsyncRank {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;
  /// This rank's current virtual time (compute + comm + wait).
  [[nodiscard]] double now() { return clock_.total_seconds(); }
  [[nodiscard]] SimClock& clock() { return clock_; }
  [[nodiscard]] const NetworkModel& network() const;

  /// Post `payload` to rank `to`. The message is delivered at
  /// now() + point_to_point(bytes); the sender's clock is charged the
  /// serialization term. Loopback sends (to == rank()) are free and
  /// deliver at now().
  void send(int to, int tag, std::vector<double> payload);

  /// Self-message after `delay` simulated seconds (a timer). Free.
  void send_self(int tag, double delay, std::vector<double> payload = {});

  /// Stop accepting messages: anything still in flight toward this rank
  /// is dropped on delivery.
  void halt() { halted_ = true; }
  [[nodiscard]] bool halted() const { return halted_; }

 private:
  friend class AsyncEngine;
  AsyncRank(int rank, AsyncEngine& engine, la::DeviceModel device)
      : rank_(rank), engine_(&engine), clock_(std::move(device)) {}

  int rank_;
  AsyncEngine* engine_;
  SimClock clock_;
  bool halted_ = false;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

/// The virtual-time scheduler. Construct with one device model per rank,
/// then `run(on_start, on_message)`: every rank's start handler executes
/// at time 0 (in rank order), after which messages are delivered in the
/// (delivery_time, seq) total order until the queue drains or
/// every rank has halted.
class AsyncEngine {
 public:
  /// `omp_threads` pins the OpenMP team used by handler compute; 0 keeps
  /// the calling thread's current setting (the whole event loop runs on
  /// one thread, so there is no per-rank split to derive).
  AsyncEngine(std::vector<la::DeviceModel> devices, NetworkModel network,
              int omp_threads = 0);

  using StartFn = std::function<void(AsyncRank&)>;
  using MessageFn = std::function<void(AsyncRank&, const AsyncMessage&)>;

  /// Execute the protocol; single use (construct a fresh engine per run).
  std::vector<AsyncRankReport> run(const StartFn& on_start,
                                   const MessageFn& on_message);

  [[nodiscard]] int size() const { return static_cast<int>(devices_.size()); }
  [[nodiscard]] const NetworkModel& network() const { return network_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }

 private:
  friend class AsyncRank;

  void push_event(AsyncMessage message);
  AsyncMessage pop_event();

  std::vector<la::DeviceModel> devices_;
  NetworkModel network_;
  int omp_threads_;
  std::vector<AsyncMessage> queue_;  ///< binary min-heap, see event_after
  std::uint64_t next_seq_ = 0;
  std::uint64_t delivered_ = 0;
  bool ran_ = false;
};

}  // namespace nadmm::comm
