// Per-rank simulated clock.
//
// Tracks two components:
//   * compute seconds — flops executed on this rank (polled from the
//     thread-local counter in la/flops.hpp) divided by the device rating;
//   * communication seconds — collective costs from the NetworkModel.
// Figures report simulated time so results are deterministic and
// independent of host load; wall-clock is tracked alongside for sanity.
#pragma once

#include <cstdint>

#include "la/device.hpp"
#include "la/flops.hpp"

namespace nadmm::comm {

class SimClock {
 public:
  explicit SimClock(la::DeviceModel device = la::p100_device())
      : device_(std::move(device)),
        flops_at_last_sync_(nadmm::flops::read()) {}

  /// Fold any flops executed since the last call into compute time.
  /// Must be called from the rank's own thread.
  void sync_compute() {
    const std::uint64_t now = nadmm::flops::read();
    if (now < flops_at_last_sync_) {
      // The thread-local counter was reset behind our back (e.g. a caller
      // ran flops::reset() after constructing the clock). Resynchronize
      // instead of underflowing the unsigned delta.
      flops_at_last_sync_ = now;
      return;
    }
    if (!paused_) {
      total_flops_ += now - flops_at_last_sync_;
      compute_s_ += device_.seconds_for_flops(now - flops_at_last_sync_);
    }
    flops_at_last_sync_ = now;
  }

  /// Charge communication time (from the NetworkModel formulas).
  void add_comm(double seconds) {
    if (!paused_) comm_s_ += seconds;
  }

  /// Diagnostics (trace objective values, accuracy evaluations) run inside
  /// a paused scope so they do not distort the simulated epoch times the
  /// figures report. Nesting is not supported.
  void pause() {
    sync_compute();
    paused_ = true;
  }
  void resume() {
    flops_at_last_sync_ = nadmm::flops::read();
    paused_ = false;
  }
  [[nodiscard]] bool paused() const { return paused_; }

  /// Charge explicit compute seconds (for work not expressed in flops).
  void add_compute(double seconds) { compute_s_ += seconds; }

  [[nodiscard]] double compute_seconds() const { return compute_s_; }
  [[nodiscard]] double comm_seconds() const { return comm_s_; }
  [[nodiscard]] double total_seconds() const { return compute_s_ + comm_s_; }
  [[nodiscard]] std::uint64_t total_flops() const { return total_flops_; }
  [[nodiscard]] const la::DeviceModel& device() const { return device_; }

  void reset() {
    compute_s_ = comm_s_ = 0.0;
    total_flops_ = 0;
    flops_at_last_sync_ = nadmm::flops::read();
  }

 private:
  la::DeviceModel device_;
  bool paused_ = false;
  double compute_s_ = 0.0;
  double comm_s_ = 0.0;
  std::uint64_t total_flops_ = 0;
  std::uint64_t flops_at_last_sync_ = 0;
};

}  // namespace nadmm::comm
