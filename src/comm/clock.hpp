// Per-rank simulated clock.
//
// Tracks two components:
//   * compute seconds — flops executed and bytes moved on this rank
//     (polled from the thread-local counters in la/flops.hpp), priced by
//     the device's roofline: each sync interval costs
//     max(flops / flop_rate, bytes / bandwidth);
//   * communication seconds — collective costs from the NetworkModel;
//   * wait seconds — idle time spent blocked on a peer (the async event
//     engine advances a rank's clock to a message's delivery time with
//     wait_until; synchronous collectives never wait, their barrier skew
//     is reported separately by SimCluster).
// Figures report simulated time so results are deterministic and
// independent of host load; wall-clock is tracked alongside for sanity.
#pragma once

#include <cstdint>

#include "la/device.hpp"
#include "la/flops.hpp"

namespace nadmm::comm {

class SimClock {
 public:
  explicit SimClock(la::DeviceModel device = la::p100_device())
      : device_(std::move(device)),
        flops_at_last_sync_(nadmm::flops::read()),
        bytes_at_last_sync_(nadmm::flops::read_bytes()) {}

  /// Fold any flops/bytes executed since the last call into compute time
  /// under the device roofline. Must be called from the rank's own thread.
  void sync_compute() {
    const std::uint64_t now = nadmm::flops::read();
    const std::uint64_t now_bytes = nadmm::flops::read_bytes();
    if (now < flops_at_last_sync_ || now_bytes < bytes_at_last_sync_) {
      // The thread-local counters were reset behind our back (e.g. a
      // caller ran flops::reset() after constructing the clock).
      // Resynchronize instead of underflowing the unsigned deltas.
      flops_at_last_sync_ = now;
      bytes_at_last_sync_ = now_bytes;
      return;
    }
    if (!paused_) {
      const std::uint64_t df = now - flops_at_last_sync_;
      const std::uint64_t db = now_bytes - bytes_at_last_sync_;
      total_flops_ += df;
      total_bytes_ += db;
      compute_s_ += device_.seconds_for(df, db);
    }
    flops_at_last_sync_ = now;
    bytes_at_last_sync_ = now_bytes;
  }

  /// Charge communication time (from the NetworkModel formulas).
  void add_comm(double seconds) {
    if (!paused_) comm_s_ += seconds;
  }

  /// Diagnostics (trace objective values, accuracy evaluations) run inside
  /// a paused scope so they do not distort the simulated epoch times the
  /// figures report. Nesting is not supported.
  void pause() {
    sync_compute();
    paused_ = true;
  }
  void resume() {
    flops_at_last_sync_ = nadmm::flops::read();
    bytes_at_last_sync_ = nadmm::flops::read_bytes();
    paused_ = false;
  }
  [[nodiscard]] bool paused() const { return paused_; }

  /// Charge explicit compute seconds (for work not expressed in flops).
  void add_compute(double seconds) { compute_s_ += seconds; }

  /// Advance the clock to absolute simulated time `t`, booking the gap as
  /// idle wait (a rank sleeping until a message delivery). No-op when `t`
  /// is not in the future.
  void wait_until(double t) {
    const double now = total_seconds();
    if (t > now) wait_s_ += t - now;
  }

  /// Simulated time including compute executed since the last
  /// sync_compute(), priced as if it were folded in right now. Unlike
  /// sync_compute() this never mutates the clock, so observers (the
  /// telemetry tracer stamps spans with it) cannot perturb the priced
  /// timeline: the roofline max() is non-additive, so introducing extra
  /// sync points would change where interval boundaries fall.
  [[nodiscard]] double projected_seconds() const {
    if (paused_) return total_seconds();
    const std::uint64_t now = nadmm::flops::read();
    const std::uint64_t now_bytes = nadmm::flops::read_bytes();
    if (now < flops_at_last_sync_ || now_bytes < bytes_at_last_sync_) {
      // Counters were reset behind our back; pending deltas are unknowable.
      return total_seconds();
    }
    return total_seconds() + device_.seconds_for(now - flops_at_last_sync_,
                                                 now_bytes - bytes_at_last_sync_);
  }

  [[nodiscard]] double compute_seconds() const { return compute_s_; }
  [[nodiscard]] double comm_seconds() const { return comm_s_; }
  [[nodiscard]] double wait_seconds() const { return wait_s_; }
  [[nodiscard]] double total_seconds() const {
    return compute_s_ + comm_s_ + wait_s_;
  }
  [[nodiscard]] std::uint64_t total_flops() const { return total_flops_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] const la::DeviceModel& device() const { return device_; }

  void reset() {
    compute_s_ = comm_s_ = wait_s_ = 0.0;
    total_flops_ = 0;
    total_bytes_ = 0;
    flops_at_last_sync_ = nadmm::flops::read();
    bytes_at_last_sync_ = nadmm::flops::read_bytes();
  }

 private:
  la::DeviceModel device_;
  bool paused_ = false;
  double compute_s_ = 0.0;
  double comm_s_ = 0.0;
  double wait_s_ = 0.0;
  std::uint64_t total_flops_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t flops_at_last_sync_ = 0;
  std::uint64_t bytes_at_last_sync_ = 0;
};

}  // namespace nadmm::comm
