// In-process simulated distributed runtime.
//
// Substitutes for the paper's MPI cluster (DESIGN.md §2): ranks are
// std::threads running the same SPMD function; collectives are built on a
// generation-counting barrier plus shared staging buffers, and charge
// their NetworkModel cost to every participant's SimClock. All collectives
// must be called by all ranks in the same order (MPI semantics). If any
// rank throws, the cluster aborts the collectives on the other ranks
// (ClusterAborted) and `SimCluster::run` rethrows the first exception.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "comm/clock.hpp"
#include "comm/network_model.hpp"
#include "la/device.hpp"

namespace nadmm::comm {

/// Thrown on surviving ranks when a peer rank failed mid-collective.
class ClusterAborted : public std::runtime_error {
 public:
  ClusterAborted() : std::runtime_error("cluster aborted: a peer rank failed") {}
};

namespace detail {

/// Reusable barrier that can be aborted: on abort, every current and
/// future waiter throws ClusterAborted instead of deadlocking.
class FailableBarrier {
 public:
  explicit FailableBarrier(int participants) : participants_(participants) {}

  void arrive_and_wait();
  void abort();
  /// Clear the abort flag so the cluster can be reused after a failed run.
  void reset();
  [[nodiscard]] bool aborted() const { return failed_.load(); }

 private:
  const int participants_;
  std::mutex mutex_;
  std::condition_variable cv_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
  std::atomic<bool> failed_{false};
};

}  // namespace detail

class SimCluster;

/// Per-rank handle passed to the SPMD function. Provides MPI-like
/// collectives; every call charges simulated communication time.
class RankCtx {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] bool is_root() const { return rank_ == 0; }
  [[nodiscard]] SimClock& clock() { return clock_; }
  [[nodiscard]] const NetworkModel& network() const;

  /// Synchronize all ranks (no data, no simulated cost).
  void barrier();

  /// In-place elementwise sum across ranks; every rank ends with the total.
  void allreduce_sum(std::span<double> data);

  /// Scalar conveniences.
  [[nodiscard]] double allreduce_sum(double value);
  [[nodiscard]] double allreduce_max(double value);
  [[nodiscard]] double allreduce_min(double value);

  /// Root ends with the concatenation [rank0 | rank1 | ...]; `out` is
  /// resized on the root and untouched elsewhere. All contributions must
  /// have identical length.
  void gather(std::span<const double> in, std::vector<double>& out,
              int root = 0);

  /// Inverse of gather: root's `in` must hold size()*out.size() values.
  void scatter(std::span<const double> in, std::span<double> out,
               int root = 0);

  /// Broadcast root's buffer to all ranks (in-place on non-roots).
  void broadcast(std::span<double> data, int root = 0);

  /// Every rank ends with the concatenation of all contributions.
  void allgather(std::span<const double> in, std::vector<double>& out);

 private:
  friend class SimCluster;
  RankCtx(int rank, int size, SimCluster& cluster, la::DeviceModel device)
      : rank_(rank), size_(size), cluster_(&cluster), clock_(std::move(device)) {}

  void charge_all(double seconds);

  int rank_;
  int size_;
  SimCluster* cluster_;
  SimClock clock_;
};

/// Rank statistics returned by SimCluster::run.
struct RankReport {
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;
  /// Simulated idle time: for synchronous runs this is the end-to-end
  /// barrier skew (slowest rank's busy time minus this rank's), the time
  /// a fast rank spent parked at barriers waiting for stragglers.
  double wait_seconds = 0.0;
  std::uint64_t total_flops = 0;
  std::uint64_t total_bytes = 0;
};

/// Owns the shared collective state and the rank threads.
class SimCluster {
 public:
  /// `n` ranks, one shared device model, and a network model. OpenMP
  /// threads inside each rank are limited so that n ranks never
  /// oversubscribe the host; `omp_threads_per_rank` > 0 overrides the
  /// automatic split (the sweep scheduler pins ranks to one thread so
  /// concurrent scenarios neither oversubscribe nor perturb results).
  SimCluster(int n, la::DeviceModel device, NetworkModel network,
             int omp_threads_per_rank = 0);

  /// Heterogeneous cluster: one device model per rank (`devices.size()`
  /// ranks). This is how straggling ranks are modeled — give one rank a
  /// down-rated device and every barrier pays for it.
  SimCluster(std::vector<la::DeviceModel> devices, NetworkModel network,
             int omp_threads_per_rank = 0);

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  /// Run `fn(ctx)` on every rank; blocks until all ranks finish. Returns
  /// one report per rank. Rethrows the first rank exception, if any.
  std::vector<RankReport> run(const std::function<void(RankCtx&)>& fn);

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] const NetworkModel& network() const { return network_; }
  [[nodiscard]] const la::DeviceModel& device(int rank) const {
    return devices_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] const std::vector<la::DeviceModel>& devices() const {
    return devices_;
  }
  [[nodiscard]] int omp_threads_per_rank() const {
    return omp_threads_per_rank_;
  }

 private:
  friend class RankCtx;

  int size_;
  std::vector<la::DeviceModel> devices_;
  NetworkModel network_;
  int omp_threads_per_rank_;
  detail::FailableBarrier barrier_;

  // Collective staging: written between barrier generations only.
  std::vector<std::span<const double>> contributions_;
  // Mutable views for allreduce: round 2 writes the totals directly into
  // every rank's buffer, so the collective needs only two barriers.
  std::vector<std::span<double>> reduce_slots_;
  std::vector<double> scalar_slots_;

  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace nadmm::comm
