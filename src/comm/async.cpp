#include "comm/async.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <utility>

#include "support/check.hpp"
#include "support/telemetry.hpp"

namespace nadmm::comm {

namespace {

/// Strict-weak ordering for the min-heap: the earliest
/// (delivery_time, seq) pair is the next event. `seq` is globally unique
/// (and increases with send order, so same-timestamp messages keep their
/// send order per rank), making the order total and independent of heap
/// internals.
bool event_after(const AsyncMessage& a, const AsyncMessage& b) {
  if (a.delivery_time != b.delivery_time) {
    return a.delivery_time > b.delivery_time;
  }
  return a.seq > b.seq;
}

/// AsyncMessage::event_kind values. kApp is the only kind an app
/// handler ever observes; the rest are the reliable channel's plumbing.
constexpr std::uint8_t kAppEv = 0;
constexpr std::uint8_t kDataEv = 1;    ///< encoded frame in flight
constexpr std::uint8_t kAckEv = 2;     ///< cumulative ack (link_seq = next)
constexpr std::uint8_t kNackEv = 3;    ///< gap report (link_seq = missing)
constexpr std::uint8_t kTimerEv = 4;   ///< per-link retransmit timeout

/// Retransmission cap per frame. With un-faulted control frames a live
/// receiver is only unreachable if every copy drops, probability
/// p_drop^16 — negligible at the committed grids' 5–10% loss. The cap's
/// real job is draining frames addressed to halted ranks.
constexpr int kMaxAttempts = 16;

}  // namespace

int AsyncRank::size() const { return engine_->size(); }

const NetworkModel& AsyncRank::network() const { return engine_->network(); }

void AsyncRank::send(int to, int tag, std::vector<double> payload) {
  NADMM_CHECK(to >= 0 && to < engine_->size(),
              "async send: destination rank out of range");
  clock_.sync_compute();  // timestamp after any compute since the last sync
  ++sent_;
  telem::instant("wire", "send");
  telem::count("sends");
  if (engine_->faults_enabled_ && to != rank_) {
    engine_->channel_send(*this, to, tag, std::move(payload));
    return;
  }
  AsyncMessage m;
  m.from = rank_;
  m.to = to;
  m.tag = tag;
  m.send_time = clock_.total_seconds();
  if (to == rank_) {
    m.delivery_time = m.send_time;  // loopback: no wire, no charge
  } else {
    const std::uint64_t bytes = wire::frame_bytes(payload.size());
    m.delivery_time = m.send_time + engine_->network_.point_to_point(bytes);
    clock_.add_comm(engine_->network_.serialization(bytes));
  }
  m.payload = std::move(payload);
  engine_->push_event(std::move(m));
}

void AsyncRank::send_self(int tag, double delay, std::vector<double> payload) {
  NADMM_CHECK(delay >= 0.0, "async send_self: delay must be >= 0");
  clock_.sync_compute();
  AsyncMessage m;
  m.from = rank_;
  m.to = rank_;
  m.tag = tag;
  m.send_time = clock_.total_seconds();
  m.delivery_time = m.send_time + delay;
  m.payload = std::move(payload);
  ++sent_;
  engine_->push_event(std::move(m));
}

AsyncEngine::AsyncEngine(std::vector<la::DeviceModel> devices,
                         NetworkModel network, int omp_threads)
    : devices_(std::move(devices)),
      network_(std::move(network)),
      omp_threads_(omp_threads) {
  NADMM_CHECK(!devices_.empty(), "async engine needs at least one rank");
}

void AsyncEngine::set_faults(const FaultSpec& spec, std::uint64_t seed) {
  NADMM_CHECK(!ran_, "async engine: set_faults must precede run()");
  faults_enabled_ = true;
  fault_spec_ = spec;
  fault_seed_ = seed;
  const std::size_t n = devices_.size();
  fault_links_.clear();
  fault_links_.reserve(n * n);
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      fault_links_.emplace_back(spec, seed, static_cast<int>(from),
                                static_cast<int>(to));
    }
  }
  link_senders_.assign(n * n, LinkSender{});
  link_receivers_.assign(n * n, LinkReceiver{});
}

void AsyncEngine::push_event(AsyncMessage message) {
  message.seq = next_seq_++;
  queue_.push_back(std::move(message));
  std::push_heap(queue_.begin(), queue_.end(), event_after);
}

AsyncMessage AsyncEngine::pop_event() {
  std::pop_heap(queue_.begin(), queue_.end(), event_after);
  AsyncMessage m = std::move(queue_.back());
  queue_.pop_back();
  return m;
}

void AsyncEngine::channel_send(AsyncRank& sender, int to, int tag,
                               std::vector<double> payload) {
  LinkSender& ls = link_senders_[link_index(sender.rank_, to)];
  wire::Frame frame;
  frame.kind = wire::FrameKind::kData;
  frame.from = sender.rank_;
  frame.to = to;
  frame.tag = tag;
  frame.link_seq = ls.next_seq++;
  frame.payload = std::move(payload);
  std::vector<std::uint8_t> bytes;
  {
    TELEM_SPAN("wire", "encode");
    bytes = wire::encode(frame);
  }
  sender.clock_.add_comm(network_.serialization(bytes.size()));
  ls.unacked.emplace(frame.link_seq, Unacked{std::move(bytes), 1});
  transmit(sender.clock_.total_seconds(), sender.rank_, to, frame.link_seq);
}

void AsyncEngine::transmit(double base_time, int from, int to,
                           std::uint64_t seq) {
  const std::size_t link = link_index(from, to);
  LinkSender& ls = link_senders_[link];
  const Unacked& entry = ls.unacked.at(seq);
  const double transit = network_.point_to_point(entry.frame.size());
  const FaultDecision fate = fault_links_[link].next(transit);
  if (fate.drop) {
    telem::instant("wire", "drop");
    telem::count("wire_drops");
  }
  if (!fate.drop) {
    AsyncMessage ev;
    ev.event_kind = kDataEv;
    ev.from = from;
    ev.to = to;
    ev.link_seq = seq;
    ev.send_time = base_time;
    ev.frame = entry.frame;
    if (fate.corrupt) {
      const std::uint64_t bit =
          fate.corrupt_bit % (static_cast<std::uint64_t>(ev.frame.size()) * 8);
      ev.frame[static_cast<std::size_t>(bit / 8)] ^=
          static_cast<std::uint8_t>(1U << (bit % 8));
    }
    ev.delivery_time = base_time + transit + fate.delay;
    push_event(std::move(ev));
    if (fate.duplicate) {
      AsyncMessage dup;
      dup.event_kind = kDataEv;
      dup.from = from;
      dup.to = to;
      dup.link_seq = seq;
      dup.send_time = base_time;
      dup.frame = entry.frame;  // the copy travels uncorrupted
      dup.delivery_time = base_time + transit + fate.dup_delay;
      push_event(std::move(dup));
    }
  }
  if (!ls.timer_pending) {
    // Generous timeout: covers the worst reorder delay (3 transits)
    // plus the ack's return trip, so a delivered frame is always acked
    // before its timer fires — abandonment then implies real loss.
    const double rto =
        4.0 * (transit + network_.point_to_point(wire::frame_bytes(0)));
    AsyncMessage timer;
    timer.event_kind = kTimerEv;
    timer.from = from;
    timer.to = from;
    timer.peer = to;
    timer.send_time = base_time;
    timer.delivery_time = base_time + rto;
    push_event(std::move(timer));
    ls.timer_pending = true;
  }
}

void AsyncEngine::send_control(wire::FrameKind kind, int from, int to,
                               std::uint64_t cursor, double base_time) {
  // Control frames are header-only and never faulted: the channel's
  // recovery signal has to be reliable for retransmission to converge,
  // and a lost ack is indistinguishable from a lost frame anyway (the
  // timer retransmits, the receiver discards the duplicate).
  AsyncRank& sender = (*running_ranks_)[static_cast<std::size_t>(from)];
  sender.clock_.add_comm(network_.serialization(wire::frame_bytes(0)));
  if (kind == wire::FrameKind::kAck) {
    telem::instant("wire", "ack");
    telem::count("acks");
  } else {
    telem::instant("wire", "nack");
    telem::count("nacks");
  }
  AsyncMessage ev;
  ev.event_kind = kind == wire::FrameKind::kAck ? kAckEv : kNackEv;
  ev.from = from;
  ev.to = to;
  ev.link_seq = cursor;
  ev.send_time = base_time;
  ev.delivery_time = base_time + network_.point_to_point(wire::frame_bytes(0));
  push_event(std::move(ev));
}

void AsyncEngine::settle_links(std::vector<AsyncRank>& ranks) {
  // Post-drain accounting for the reliable channel. While events are
  // still in flight, a sender cannot tell a lost frame from a slow one:
  // counting a frame dropped the moment its retry budget runs out would
  // double-count it if a reorder-delayed copy later reaches the (live)
  // receiver. So retirement (retry cap, halted sender) merely stops
  // retransmission, and the verdict is passed here, once the queue has
  // drained and nothing can arrive anymore: a seq still unacked below
  // the receiver's cursor was delivered (its final ack simply raced
  // teardown) and counts as received already; at or above the cursor it
  // was never app-delivered — count it dropped at its destination.
  const std::size_t n = devices_.size();
  for (std::size_t link = 0; link < link_senders_.size(); ++link) {
    LinkSender& ls = link_senders_[link];
    LinkReceiver& lr = link_receivers_[link];
    AsyncRank& dst = ranks[link % n];
    for (const auto& [seq, entry] : ls.unacked) {
      static_cast<void>(entry);
      if (seq >= lr.expected) ++dst.dropped_;
    }
    ls.unacked.clear();
    lr.held.clear();  // held frames are counted via their unacked entries
  }
}

void AsyncEngine::deliver_app(AsyncRank& rank, const AsyncMessage& event,
                              const MessageFn& on_message) {
  if (rank.halted_) {
    ++rank.dropped_;  // mailbox closed: dropped on delivery
    return;
  }
  rank.clock_.wait_until(event.delivery_time);
  rank.clock_.resume();
  ++rank.received_;
  ++delivered_;
  {
    TELEM_SPAN("comm", "deliver");
    on_message(rank, event);
  }
  rank.clock_.sync_compute();
}

void AsyncEngine::handle_data(const AsyncMessage& event,
                              const MessageFn& on_message) {
  AsyncRank& dst = (*running_ranks_)[static_cast<std::size_t>(event.to)];
  // A halted mailbox sends no ack: the sender's retry cap converts the
  // frame into a counted drop, keeping conservation exact.
  if (dst.halted_) return;
  const std::size_t link = link_index(event.from, event.to);
  LinkReceiver& lr = link_receivers_[link];
  dst.clock_.wait_until(event.delivery_time);

  wire::Frame frame;
  try {
    TELEM_SPAN("wire", "decode");
    frame = wire::decode(event.frame);
  } catch (const RuntimeError&) {
    // Corrupted in flight — the checksum (or framing) rejected it.
    if (lr.last_nacked != lr.expected) {
      lr.last_nacked = lr.expected;
      send_control(wire::FrameKind::kNack, event.to, event.from, lr.expected,
                   dst.clock_.total_seconds());
    }
    return;
  }

  if (frame.link_seq < lr.expected) {
    // Stale duplicate (or spurious retransmit): discard, refresh ack.
    send_control(wire::FrameKind::kAck, event.to, event.from, lr.expected,
                 dst.clock_.total_seconds());
    return;
  }
  if (frame.link_seq > lr.expected) {
    if (lr.held.find(frame.link_seq) == lr.held.end()) {
      ++dst.gaps_;
      telem::count("gaps_detected");
      lr.held.emplace(frame.link_seq, std::move(frame));
    }
    if (lr.last_nacked != lr.expected) {
      lr.last_nacked = lr.expected;
      send_control(wire::FrameKind::kNack, event.to, event.from, lr.expected,
                   dst.clock_.total_seconds());
    }
    return;
  }

  const auto deliver = [&](wire::Frame& f) {
    AsyncMessage app;
    app.from = f.from;
    app.to = f.to;
    app.tag = f.tag;
    app.send_time = event.send_time;
    app.delivery_time = event.delivery_time;
    app.seq = event.seq;
    app.payload = std::move(f.payload);
    dst.clock_.resume();
    ++dst.received_;
    ++delivered_;
    {
      TELEM_SPAN("comm", "deliver");
      on_message(dst, app);
    }
    dst.clock_.sync_compute();
  };

  deliver(frame);
  ++lr.expected;
  // Drain any held successors now unblocked (stop if the handler halted
  // the rank mid-drain: its mailbox just closed).
  while (!dst.halted_) {
    auto it = lr.held.find(lr.expected);
    if (it == lr.held.end()) break;
    deliver(it->second);
    lr.held.erase(it);
    ++lr.expected;
  }
  send_control(wire::FrameKind::kAck, event.to, event.from, lr.expected,
               dst.clock_.total_seconds());
}

void AsyncEngine::handle_control(const AsyncMessage& event) {
  // An ack/nack from R to S reports on the S->R link.
  const int link_from = event.to;
  const int link_to = event.from;
  const std::size_t link = link_index(link_from, link_to);
  LinkSender& ls = link_senders_[link];
  AsyncRank& sender = (*running_ranks_)[static_cast<std::size_t>(link_from)];
  if (!sender.halted_) sender.clock_.wait_until(event.delivery_time);
  // Cumulative: everything below the cursor is delivered.
  while (!ls.unacked.empty() && ls.unacked.begin()->first < event.link_seq) {
    ls.unacked.erase(ls.unacked.begin());
  }
  if (event.event_kind != kNackEv) return;
  auto it = ls.unacked.find(event.link_seq);
  if (it == ls.unacked.end() || sender.halted_) return;
  ++it->second.attempts;
  // Retry budget exhausted: retire the frame (stop retransmitting) but
  // keep the entry — settle_links() decides delivered-vs-dropped after
  // the queue drains, when no late copy can still be in flight.
  if (it->second.attempts > kMaxAttempts) return;
  ++sender.retransmits_;
  telem::instant("wire", "retransmit");
  telem::count("retransmits");
  sender.clock_.add_comm(network_.serialization(it->second.frame.size()));
  transmit(sender.clock_.total_seconds(), link_from, link_to, event.link_seq);
}

void AsyncEngine::handle_timer(const AsyncMessage& event) {
  const int from = event.to;   // the timer lands on the link's sender
  const int to = event.peer;
  const std::size_t link = link_index(from, to);
  LinkSender& ls = link_senders_[link];
  ls.timer_pending = false;
  if (ls.unacked.empty()) return;
  AsyncRank& sender = (*running_ranks_)[static_cast<std::size_t>(from)];
  if (sender.halted_) {
    // The sender is done and will never service this link again, but
    // copies of its unacked frames (and their acks) may still be in
    // flight — leave the entries for settle_links() to judge once the
    // queue has drained.
    return;
  }
  sender.clock_.wait_until(event.delivery_time);
  telem::instant("wire", "rto");
  std::vector<std::uint64_t> pending;
  pending.reserve(ls.unacked.size());
  for (const auto& [seq, entry] : ls.unacked) {
    static_cast<void>(entry);
    pending.push_back(seq);
  }
  for (const std::uint64_t seq : pending) {
    auto it = ls.unacked.find(seq);
    if (it == ls.unacked.end()) continue;
    ++it->second.attempts;
    if (it->second.attempts > kMaxAttempts) continue;  // retired, see above
    ++sender.retransmits_;
    telem::instant("wire", "retransmit");
    telem::count("retransmits");
    sender.clock_.add_comm(network_.serialization(it->second.frame.size()));
    transmit(sender.clock_.total_seconds(), from, to, seq);
  }
}

std::vector<AsyncRankReport> AsyncEngine::run(const StartFn& on_start,
                                              const MessageFn& on_message) {
  NADMM_CHECK(!ran_, "async engine: run() is single use");
  NADMM_CHECK(static_cast<bool>(on_message), "async engine needs a handler");
  ran_ = true;

#ifdef _OPENMP
  if (omp_threads_ > 0) omp_set_num_threads(omp_threads_);
#else
  static_cast<void>(omp_threads_);
#endif

  std::vector<AsyncRank> ranks;
  ranks.reserve(devices_.size());
  for (std::size_t r = 0; r < devices_.size(); ++r) {
    ranks.push_back(AsyncRank(static_cast<int>(r), *this, devices_[r]));
  }
  running_ranks_ = &ranks;

  // The whole loop runs on this one thread, so the thread-local flop
  // counters are shared by every rank's clock: resume() resynchronizes a
  // clock's counter snapshot before its handler runs, and sync_compute()
  // folds the handler's delta in afterwards.
  if (on_start) {
    for (auto& rank : ranks) {
      // Bind the rank's telemetry track (and its clock for virtual
      // stamps) around every handler; spans opened inside inherit both.
      telem::TrackScope track(rank.rank_, &rank.clock_);
      rank.clock_.resume();
      on_start(rank);
      rank.clock_.sync_compute();
    }
  }

  while (!queue_.empty()) {
    AsyncMessage m = pop_event();
    // Every event advances the clock of the rank it lands on (data and
    // app events on m.to, control and timers on the link's sender —
    // also m.to by construction).
    telem::TrackScope track(m.to,
                            &ranks[static_cast<std::size_t>(m.to)].clock_);
    switch (m.event_kind) {
      case kAppEv:
        deliver_app(ranks[static_cast<std::size_t>(m.to)], m, on_message);
        break;
      case kDataEv:
        handle_data(m, on_message);
        break;
      case kAckEv:
      case kNackEv:
        handle_control(m);
        break;
      case kTimerEv:
        handle_timer(m);
        break;
      default:
        NADMM_ASSERT(false && "unknown async event kind");
    }
  }
  running_ranks_ = nullptr;
  settle_links(ranks);

  // Conservation: every app-level send was delivered exactly once or
  // counted as dropped at its destination — nothing vanishes silently.
  std::uint64_t total_sent = 0;
  std::uint64_t total_received = 0;
  std::uint64_t total_dropped = 0;
  for (const auto& rank : ranks) {
    total_sent += rank.sent_;
    total_received += rank.received_;
    total_dropped += rank.dropped_;
  }
  NADMM_ASSERT(total_sent == total_received + total_dropped);

  std::vector<AsyncRankReport> reports(devices_.size());
  for (std::size_t r = 0; r < devices_.size(); ++r) {
    const SimClock& clock = ranks[r].clock_;
    AsyncRankReport& report = reports[r];
    report.compute_seconds = clock.compute_seconds();
    report.comm_seconds = clock.comm_seconds();
    report.wait_seconds = clock.wait_seconds();
    report.finish_time = clock.total_seconds();
    report.total_flops = clock.total_flops();
    report.total_bytes = clock.total_bytes();
    report.messages_sent = ranks[r].sent_;
    report.messages_received = ranks[r].received_;
    report.messages_dropped = ranks[r].dropped_;
    report.retransmits = ranks[r].retransmits_;
    report.gaps_detected = ranks[r].gaps_;
  }
  return reports;
}

}  // namespace nadmm::comm
