#include "comm/async.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <utility>

#include "support/check.hpp"

namespace nadmm::comm {

namespace {

/// Strict-weak ordering for the min-heap: the earliest
/// (delivery_time, seq) pair is the next event. `seq` is globally unique
/// (and increases with send order, so same-timestamp messages keep their
/// send order per rank), making the order total and independent of heap
/// internals.
bool event_after(const AsyncMessage& a, const AsyncMessage& b) {
  if (a.delivery_time != b.delivery_time) {
    return a.delivery_time > b.delivery_time;
  }
  return a.seq > b.seq;
}

}  // namespace

int AsyncRank::size() const { return engine_->size(); }

const NetworkModel& AsyncRank::network() const { return engine_->network(); }

void AsyncRank::send(int to, int tag, std::vector<double> payload) {
  NADMM_CHECK(to >= 0 && to < engine_->size(),
              "async send: destination rank out of range");
  clock_.sync_compute();  // timestamp after any compute since the last sync
  AsyncMessage m;
  m.from = rank_;
  m.to = to;
  m.tag = tag;
  m.send_time = clock_.total_seconds();
  if (to == rank_) {
    m.delivery_time = m.send_time;  // loopback: no wire, no charge
  } else {
    const auto bytes =
        static_cast<std::uint64_t>(payload.size()) * sizeof(double);
    m.delivery_time = m.send_time + engine_->network_.point_to_point(bytes);
    clock_.add_comm(engine_->network_.serialization(bytes));
  }
  m.payload = std::move(payload);
  ++sent_;
  engine_->push_event(std::move(m));
}

void AsyncRank::send_self(int tag, double delay, std::vector<double> payload) {
  NADMM_CHECK(delay >= 0.0, "async send_self: delay must be >= 0");
  clock_.sync_compute();
  AsyncMessage m;
  m.from = rank_;
  m.to = rank_;
  m.tag = tag;
  m.send_time = clock_.total_seconds();
  m.delivery_time = m.send_time + delay;
  m.payload = std::move(payload);
  ++sent_;
  engine_->push_event(std::move(m));
}

AsyncEngine::AsyncEngine(std::vector<la::DeviceModel> devices,
                         NetworkModel network, int omp_threads)
    : devices_(std::move(devices)),
      network_(std::move(network)),
      omp_threads_(omp_threads) {
  NADMM_CHECK(!devices_.empty(), "async engine needs at least one rank");
}

void AsyncEngine::push_event(AsyncMessage message) {
  message.seq = next_seq_++;
  queue_.push_back(std::move(message));
  std::push_heap(queue_.begin(), queue_.end(), event_after);
}

AsyncMessage AsyncEngine::pop_event() {
  std::pop_heap(queue_.begin(), queue_.end(), event_after);
  AsyncMessage m = std::move(queue_.back());
  queue_.pop_back();
  return m;
}

std::vector<AsyncRankReport> AsyncEngine::run(const StartFn& on_start,
                                              const MessageFn& on_message) {
  NADMM_CHECK(!ran_, "async engine: run() is single use");
  NADMM_CHECK(static_cast<bool>(on_message), "async engine needs a handler");
  ran_ = true;

#ifdef _OPENMP
  if (omp_threads_ > 0) omp_set_num_threads(omp_threads_);
#else
  static_cast<void>(omp_threads_);
#endif

  std::vector<AsyncRank> ranks;
  ranks.reserve(devices_.size());
  for (std::size_t r = 0; r < devices_.size(); ++r) {
    ranks.push_back(AsyncRank(static_cast<int>(r), *this, devices_[r]));
  }

  // The whole loop runs on this one thread, so the thread-local flop
  // counters are shared by every rank's clock: resume() resynchronizes a
  // clock's counter snapshot before its handler runs, and sync_compute()
  // folds the handler's delta in afterwards.
  if (on_start) {
    for (auto& rank : ranks) {
      rank.clock_.resume();
      on_start(rank);
      rank.clock_.sync_compute();
    }
  }

  while (!queue_.empty()) {
    AsyncMessage m = pop_event();
    AsyncRank& rank = ranks[static_cast<std::size_t>(m.to)];
    if (rank.halted_) continue;  // dropped on delivery
    rank.clock_.wait_until(m.delivery_time);
    rank.clock_.resume();
    ++rank.received_;
    ++delivered_;
    on_message(rank, m);
    rank.clock_.sync_compute();
  }

  std::vector<AsyncRankReport> reports(devices_.size());
  for (std::size_t r = 0; r < devices_.size(); ++r) {
    const SimClock& clock = ranks[r].clock_;
    AsyncRankReport& report = reports[r];
    report.compute_seconds = clock.compute_seconds();
    report.comm_seconds = clock.comm_seconds();
    report.wait_seconds = clock.wait_seconds();
    report.finish_time = clock.total_seconds();
    report.total_flops = clock.total_flops();
    report.total_bytes = clock.total_bytes();
    report.messages_sent = ranks[r].sent_;
    report.messages_received = ranks[r].received_;
  }
  return reports;
}

}  // namespace nadmm::comm
