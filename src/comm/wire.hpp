// Binary wire protocol for the async engine.
//
// Until PR 8 the engine priced messages at `payload.size() * 8` without
// ever serializing them, so there was no byte layout to corrupt, no
// sequence number to gap, and no checksum to fail. This codec gives
// every AsyncMessage a real frame:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0     4  magic          'N''A''D''M' (0x4d44414e LE)
//        4     2  version        kWireVersion (1)
//        6     2  kind           data / ack / nack (FrameKind)
//        8     4  from           sender rank
//       12     4  to             destination rank
//       16     4  tag            protocol discriminator
//       20     4  reserved       zero on encode, ignored on decode
//       24     8  link_seq       per-(from,to) data sequence number;
//                                cumulative ack / requested seq for
//                                control frames
//       32     8  payload_len    number of doubles that follow
//       40     8  checksum       word-wise FNV-1a (8-byte LE words;
//                                binio::fnv1a_words) over bytes [0, 40)
//                                with the checksum field zeroed, then
//                                payload
//       48    8n  payload        doubles as IEEE-754 bits, LE
//
// All integers little-endian; doubles as bit patterns, so encode/decode
// round-trips are exact for denormals, ±inf and NaN. `frame_bytes(n)`
// is the engine's pricing unit: what the network model charges is the
// byte count of the frame that would travel, whether or not the fault
// path actually materializes it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nadmm::comm::wire {

inline constexpr std::uint32_t kMagic = 0x4d44414eU;  // "NADM" LE
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 48;

/// Frame discriminator. Data frames carry protocol payloads; ack/nack
/// are the reliable channel's control plane (empty payload).
enum class FrameKind : std::uint16_t { kData = 0, kAck = 1, kNack = 2 };

/// Decoded frame header + payload.
struct Frame {
  FrameKind kind = FrameKind::kData;
  int from = -1;
  int to = -1;
  int tag = 0;
  std::uint64_t link_seq = 0;  ///< data seq, or ack/nack cursor
  std::vector<double> payload;
};

/// Size in bytes of an encoded frame carrying `payload_doubles` doubles.
[[nodiscard]] constexpr std::uint64_t frame_bytes(
    std::uint64_t payload_doubles) {
  return kHeaderBytes + payload_doubles * 8;
}

/// Encode a frame to its canonical byte layout.
[[nodiscard]] std::vector<std::uint8_t> encode(const Frame& frame);

/// Decode a frame, validating magic, version, length, and checksum.
/// Throws nadmm::RuntimeError with a precise reason on any violation
/// (truncated header/payload, bad magic, unsupported version, length
/// mismatch, checksum mismatch).
[[nodiscard]] Frame decode(std::span<const std::uint8_t> bytes);

}  // namespace nadmm::comm::wire
