#include "comm/fault.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/check.hpp"

namespace nadmm::comm {

namespace {

double parse_probability(const std::string& spec, const std::string& key,
                         const std::string& value) {
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  NADMM_CHECK(end != value.c_str() && *end == '\0',
              "fault spec '" + spec + "': malformed probability for '" + key +
                  "'");
  NADMM_CHECK(p >= 0.0 && p <= 1.0,
              "fault spec '" + spec + "': probability for '" + key +
                  "' must be in [0, 1]");
  return p;
}

/// SplitMix64-style mix of the run seed and the link identity, so each
/// directed link owns an independent deterministic stream.
std::uint64_t link_seed(std::uint64_t seed, int from, int to) {
  std::uint64_t z = seed;
  z ^= 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(from + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z ^= 0x94d049bb133111ebULL + static_cast<std::uint64_t>(to + 1);
  z = (z ^ (z >> 27)) * 0x2545f4914f6cdd1dULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultSpec FaultSpec::parse(const std::string& spec) {
  FaultSpec out;
  if (spec.empty() || spec == "none") return out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    // '+' is an accepted clause separator so sweep axis entries (which
    // are themselves comma-separated) can carry multi-clause specs:
    // "drop:0.05+dup:0.02" ≡ "drop:0.05,dup:0.02".
    const std::size_t comma = spec.find_first_of(",+", pos);
    const std::string part =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const std::size_t colon = part.find(':');
    NADMM_CHECK(colon != std::string::npos,
                "fault spec '" + spec + "': expected '<kind>:<p>', got '" +
                    part + "'");
    const std::string key = part.substr(0, colon);
    const double p = parse_probability(spec, key, part.substr(colon + 1));
    if (key == "drop") {
      out.drop = p;
    } else if (key == "dup") {
      out.duplicate = p;
    } else if (key == "reorder") {
      out.reorder = p;
    } else if (key == "corrupt") {
      out.corrupt = p;
    } else {
      NADMM_CHECK(false, "fault spec '" + spec + "': unknown kind '" + key +
                             "' (expected drop|dup|reorder|corrupt)");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::string FaultSpec::to_string() const {
  if (!any()) return "none";
  std::string out;
  const auto append = [&out](const char* key, double p) {
    if (p <= 0.0) return;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s%s:%g", out.empty() ? "" : ",", key, p);
    out += buf;
  };
  append("drop", drop);
  append("dup", duplicate);
  append("reorder", reorder);
  append("corrupt", corrupt);
  return out;
}

FaultModel::FaultModel(const FaultSpec& spec, std::uint64_t seed, int from,
                       int to)
    : spec_(spec), rng_(link_seed(seed, from, to)) {}

FaultDecision FaultModel::next(double transit_seconds) {
  // Fixed draw count: seven uniforms per frame, consumed whether or not
  // each fault fires, so the stream position after frame k is
  // independent of the outcomes of frames 0..k.
  const double u_drop = rng_.uniform();
  const double u_dup = rng_.uniform();
  const double u_reorder = rng_.uniform();
  const double u_corrupt = rng_.uniform();
  const double u_delay = rng_.uniform();
  const double u_dup_delay = rng_.uniform();
  const std::uint64_t u_bit = rng_.next_u64();

  FaultDecision d;
  d.drop = u_drop < spec_.drop;
  d.duplicate = !d.drop && u_dup < spec_.duplicate;
  d.corrupt = !d.drop && u_corrupt < spec_.corrupt;
  if (!d.drop && u_reorder < spec_.reorder) {
    // Push the frame 1–3 transits behind schedule: enough to land after
    // later sends, bounded so retransmit timers stay meaningful.
    d.delay = (1.0 + 2.0 * u_delay) * transit_seconds;
  }
  if (d.duplicate) {
    d.dup_delay = (0.5 + 1.5 * u_dup_delay) * transit_seconds;
  }
  d.corrupt_bit = u_bit;
  return d;
}

}  // namespace nadmm::comm
