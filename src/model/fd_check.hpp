// Finite-difference derivative validation (test support, but shipped in
// the library so users can validate custom objectives).
#pragma once

#include <cstdint>
#include <span>

#include "model/objective.hpp"

namespace nadmm::model {

/// Max relative error between analytic directional derivatives ⟨g, v⟩ and
/// central finite differences of the value, over `trials` random
/// directions at point `x`.
double gradient_fd_error(Objective& obj, std::span<const double> x,
                         int trials = 5, double eps = 1e-6,
                         std::uint64_t seed = 42);

/// Max relative error between H·v and the central finite difference of
/// the gradient, over `trials` random directions.
double hessian_fd_error(Objective& obj, std::span<const double> x,
                        int trials = 5, double eps = 1e-5,
                        std::uint64_t seed = 42);

}  // namespace nadmm::model
