#include "model/metrics.hpp"

#include "model/softmax.hpp"

namespace nadmm::model {

double accuracy(const data::Dataset& ds, std::span<const double> x) {
  SoftmaxObjective obj(ds, 0.0);
  return obj.accuracy(x);
}

double objective_value(const data::Dataset& ds, std::span<const double> x,
                       double l2_lambda) {
  SoftmaxObjective obj(ds, l2_lambda);
  return obj.value(x);
}

}  // namespace nadmm::model
