// Evaluation helpers shared by the experiment harness.
#pragma once

#include <span>

#include "data/dataset.hpp"

namespace nadmm::model {

/// Test accuracy of parameter vector `x` ((C−1)·p softmax layout) on `ds`.
double accuracy(const data::Dataset& ds, std::span<const double> x);

/// Full regularized objective Σ loss + (λ/2)‖x‖² of `x` on `ds`.
double objective_value(const data::Dataset& ds, std::span<const double> x,
                       double l2_lambda);

}  // namespace nadmm::model
