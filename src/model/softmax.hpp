// Multiclass softmax / cross-entropy objective (paper §5) with the
// Log-Sum-Exp stabilization of §6.
//
// Parameters are x = [x_1; …; x_{C−1}] ∈ R^{(C−1)p} (class C is the
// implicit reference with score 0). The objective is the paper's eq. (8)
// — a *sum* over samples — plus an optional ℓ2 term (λ/2)‖x‖²:
//
//   F(x) = Σ_i [ log(1 + Σ_c e^{⟨a_i, x_c⟩}) − ⟨a_i, x_{b_i}⟩ ] + λ/2 ‖x‖².
//
// All heavy work is GEMM-shaped (scores S = A·X, gradient Aᵀ(P−Y),
// Hessian-vector product AᵀW) and runs over dense or CSR features.
#pragma once

#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "la/dense_matrix.hpp"
#include "model/objective.hpp"

namespace nadmm::model {

class SoftmaxObjective final : public Objective {
 public:
  /// `shard` must outlive the objective. `l2_lambda` ≥ 0 adds the ridge
  /// term (use 0 for ADMM local objectives — the consensus z-update owns
  /// the regularizer, eq. 7).
  SoftmaxObjective(const data::Dataset& shard, double l2_lambda);

  [[nodiscard]] std::size_t dim() const override { return dim_; }
  [[nodiscard]] std::size_t num_samples() const override {
    return shard_->num_samples();
  }
  [[nodiscard]] int num_classes() const { return shard_->num_classes(); }
  [[nodiscard]] double l2_lambda() const { return lambda_; }

  double value(std::span<const double> x) override;
  void gradient(std::span<const double> x, std::span<double> g) override;
  double value_and_gradient(std::span<const double> x,
                            std::span<double> g) override;
  void hessian_vec(std::span<const double> x, std::span<const double> v,
                   std::span<double> hv) override;

  /// Predicted class (argmax over the C−1 scores and the implicit 0).
  /// `x` is a parameter vector of dim(); `sample_scores` is a scratch row.
  [[nodiscard]] std::vector<std::int32_t> predict(std::span<const double> x);

  /// Classification accuracy of `x` on this objective's shard.
  [[nodiscard]] double accuracy(std::span<const double> x);

 private:
  /// Recompute scores/probabilities if `x` differs from the cached point.
  void ensure_forward(std::span<const double> x);

  const data::Dataset* shard_;
  double lambda_;
  std::size_t p_;
  std::size_t cm1_;  // C-1 score columns
  std::size_t dim_;

  // Cached forward pass at cached_x_.
  std::vector<double> cached_x_;
  bool cache_valid_ = false;
  la::DenseMatrix scores_;  // n × (C−1)
  la::DenseMatrix probs_;   // n × (C−1), P_ic
  std::vector<double> lse_; // per-sample log(1 + Σ e^{s})
  double loss_sum_ = 0.0;

  // Scratch reused across calls.
  la::DenseMatrix panel_;   // n × (C−1) residual / W panel
  la::DenseMatrix xm_;      // p × (C−1) parameter matrix view
  la::DenseMatrix gm_;      // p × (C−1) gradient accumulator
};

}  // namespace nadmm::model
