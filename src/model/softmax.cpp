#include "model/softmax.hpp"

#include <algorithm>
#include <cmath>

#include "la/flops.hpp"
#include "la/kernels.hpp"
#include "la/vector_ops.hpp"
#include "support/check.hpp"
#include "support/telemetry.hpp"

namespace nadmm::model {

namespace {
// Per-sample loops cost only a few flops per element; stay serial below
// this many elements (shared with the fused forward in la/kernels.hpp).
constexpr std::size_t kParallelRows = la::kernels::kParallelRows;
}  // namespace

SoftmaxObjective::SoftmaxObjective(const data::Dataset& shard, double l2_lambda)
    : shard_(&shard),
      lambda_(l2_lambda),
      p_(shard.num_features()),
      cm1_(static_cast<std::size_t>(shard.num_classes()) - 1),
      dim_(p_ * cm1_),
      scores_(shard.num_samples(), cm1_),
      probs_(shard.num_samples(), cm1_),
      lse_(shard.num_samples()),
      panel_(shard.num_samples(), cm1_),
      xm_(p_, cm1_),
      gm_(p_, cm1_) {
  NADMM_CHECK(l2_lambda >= 0.0, "l2 lambda must be nonnegative");
  NADMM_CHECK(shard.num_classes() >= 2, "softmax needs >= 2 classes");
  cached_x_.assign(dim_, 0.0);
}

void SoftmaxObjective::ensure_forward(std::span<const double> x) {
  NADMM_CHECK(x.size() == dim_, "softmax: parameter size mismatch");
  if (cache_valid_ && std::equal(x.begin(), x.end(), cached_x_.begin())) {
    return;
  }
  std::copy(x.begin(), x.end(), cached_x_.begin());

  // Parameter vector -> p×(C−1) matrix (row-major by feature).
  std::copy(x.begin(), x.end(), xm_.data().begin());
  shard_->scores(xm_, scores_);

  // Fused single-sweep softmax forward (la/kernels.cpp): per-row online
  // max / exp / sum with the paper's eq. (9)-(10) stabilization, writing
  // the probability panel P_ic = e^{s_ic − M_i} / α_i and the per-sample
  // LSE, and returning the summed cross-entropy loss.
  const std::size_t n = shard_->num_samples();
  {
    TELEM_SPAN("kernel", "softmax_forward");
    loss_sum_ = la::kernels::softmax_forward(scores_, shard_->labels(), probs_,
                                             lse_);
    nadmm::flops::add(5 * n * cm1_ + 4 * n);
    nadmm::flops::add_bytes(8 * (2 * n * cm1_ + n) + 4 * n);
  }
  cache_valid_ = true;
}

double SoftmaxObjective::value(std::span<const double> x) {
  ensure_forward(x);
  double f = loss_sum_;
  if (lambda_ > 0.0) f += 0.5 * lambda_ * la::nrm2_sq(x);
  return f;
}

void SoftmaxObjective::gradient(std::span<const double> x, std::span<double> g) {
  NADMM_CHECK(g.size() == dim_, "softmax: gradient size mismatch");
  ensure_forward(x);
  // Residual panel R = P − Y.
  const std::size_t n = shard_->num_samples();
  const auto labels = shard_->labels();
  [[maybe_unused]] const bool parallel = n * cm1_ >= kParallelRows;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    const auto prob = probs_.row(static_cast<std::size_t>(i));
    auto r = panel_.row(static_cast<std::size_t>(i));
    std::copy(prob.begin(), prob.end(), r.begin());
    const auto y = static_cast<std::size_t>(labels[static_cast<std::size_t>(i)]);
    if (y < cm1_) r[y] -= 1.0;
  }
  nadmm::flops::add(n * cm1_);
  shard_->accumulate_gradient(1.0, panel_, 0.0, gm_);
  std::copy(gm_.data().begin(), gm_.data().end(), g.begin());
  if (lambda_ > 0.0) la::axpy(lambda_, x, g);
}

double SoftmaxObjective::value_and_gradient(std::span<const double> x,
                                            std::span<double> g) {
  gradient(x, g);   // shares the forward pass through the cache
  return value(x);  // cache hit: no recompute
}

void SoftmaxObjective::hessian_vec(std::span<const double> x,
                                   std::span<const double> v,
                                   std::span<double> hv) {
  NADMM_CHECK(v.size() == dim_ && hv.size() == dim_,
              "softmax: hessian_vec size mismatch");
  ensure_forward(x);
  // U = A · V  (per-sample directional scores).
  la::DenseMatrix vm(p_, cm1_);
  std::copy(v.begin(), v.end(), vm.data().begin());
  shard_->scores(vm, panel_);  // panel_ = U
  // W_ic = P_ic (U_ic − ⟨P_i, U_i⟩): the softmax Hessian acting on the
  // score perturbation (the implicit class has U = 0 and drops out).
  const std::size_t n = shard_->num_samples();
  [[maybe_unused]] const bool parallel = n * cm1_ >= kParallelRows;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    const auto prob = probs_.row(static_cast<std::size_t>(i));
    auto u = panel_.row(static_cast<std::size_t>(i));
    double mean = 0.0;
    for (std::size_t c = 0; c < cm1_; ++c) mean += prob[c] * u[c];
    for (std::size_t c = 0; c < cm1_; ++c) u[c] = prob[c] * (u[c] - mean);
  }
  nadmm::flops::add(4 * n * cm1_);
  shard_->accumulate_gradient(1.0, panel_, 0.0, gm_);
  std::copy(gm_.data().begin(), gm_.data().end(), hv.begin());
  if (lambda_ > 0.0) la::axpy(lambda_, v, hv);
}

std::vector<std::int32_t> SoftmaxObjective::predict(std::span<const double> x) {
  ensure_forward(x);
  const std::size_t n = shard_->num_samples();
  std::vector<std::int32_t> out(n);
  [[maybe_unused]] const bool parallel = n * cm1_ >= kParallelRows;
#pragma omp parallel for schedule(static) if (parallel)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    const auto s = scores_.row(static_cast<std::size_t>(i));
    double best = 0.0;  // implicit class score
    std::int32_t arg = static_cast<std::int32_t>(cm1_);
    for (std::size_t c = 0; c < cm1_; ++c) {
      if (s[c] > best) {
        best = s[c];
        arg = static_cast<std::int32_t>(c);
      }
    }
    out[static_cast<std::size_t>(i)] = arg;
  }
  return out;
}

double SoftmaxObjective::accuracy(std::span<const double> x) {
  const auto pred = predict(x);
  const auto labels = shard_->labels();
  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) hits += (pred[i] == labels[i]);
  return pred.empty() ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(pred.size());
}

}  // namespace nadmm::model
