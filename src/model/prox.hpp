// Proximal-augmented objective: the ADMM local subproblem (paper eq. 6a).
//
//   φ(x) = f(x) + (ρ/2) ‖x − v‖²,  with  v = z + y/ρ.
//
// Wrapping keeps the Newton-CG solver unaware of ADMM: the penalty adds
// ρ(x−v) to the gradient and ρ·I to the Hessian (which also improves the
// CG conditioning — part of why the paper's local solves are cheap).
#pragma once

#include <span>
#include <vector>

#include "la/vector_ops.hpp"
#include "model/objective.hpp"
#include "support/check.hpp"

namespace nadmm::model {

class ProxAugmentedObjective final : public Objective {
 public:
  /// `base` must outlive this wrapper.
  ProxAugmentedObjective(Objective& base, double rho, std::vector<double> center)
      : base_(&base), rho_(rho), center_(std::move(center)) {
    NADMM_CHECK(rho >= 0.0, "prox rho must be nonnegative");
    NADMM_CHECK(center_.size() == base.dim(), "prox center dimension mismatch");
  }

  /// Update ρ / center in place between ADMM iterations (no realloc).
  void set_rho(double rho) {
    NADMM_CHECK(rho >= 0.0, "prox rho must be nonnegative");
    rho_ = rho;
  }
  void set_center(std::span<const double> center) {
    NADMM_CHECK(center.size() == center_.size(), "prox center dimension mismatch");
    std::copy(center.begin(), center.end(), center_.begin());
  }
  [[nodiscard]] double rho() const { return rho_; }
  [[nodiscard]] std::span<const double> center() const { return center_; }

  [[nodiscard]] std::size_t dim() const override { return base_->dim(); }
  [[nodiscard]] std::size_t num_samples() const override {
    return base_->num_samples();
  }

  double value(std::span<const double> x) override {
    double f = base_->value(x);
    f += 0.5 * rho_ * penalty_sq(x);
    return f;
  }

  void gradient(std::span<const double> x, std::span<double> g) override {
    base_->gradient(x, g);
    add_penalty_gradient(x, g);
  }

  double value_and_gradient(std::span<const double> x,
                            std::span<double> g) override {
    double f = base_->value_and_gradient(x, g);
    f += 0.5 * rho_ * penalty_sq(x);
    add_penalty_gradient(x, g);
    return f;
  }

  void hessian_vec(std::span<const double> x, std::span<const double> v,
                   std::span<double> hv) override {
    base_->hessian_vec(x, v, hv);
    la::axpy(rho_, v, hv);
  }

 private:
  [[nodiscard]] double penalty_sq(std::span<const double> x) const {
    const double d = la::dist2(x, center_);
    return d * d;
  }

  void add_penalty_gradient(std::span<const double> x, std::span<double> g) const {
    // g += ρ (x − v)
    for (std::size_t i = 0; i < x.size(); ++i) {
      g[i] += rho_ * (x[i] - center_[i]);
    }
  }

  Objective* base_;
  double rho_;
  std::vector<double> center_;
};

}  // namespace nadmm::model
