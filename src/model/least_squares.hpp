// Regularized (multi-output) least-squares objective.
//
// A second instance of the paper's finite-sum template (eq. 1) besides
// softmax: F(X) = ½‖A·X − B‖²_F + (λ/2)‖X‖², with X ∈ R^{p×m} flattened
// to a vector. Its Hessian is constant (AᵀA + λI), which makes it the
// reference problem for validating the Hessian-free solver stack — CG on
// it is *exact* Newton — and a useful objective in its own right
// (ridge regression / one-hot least-squares classification).
#pragma once

#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "la/dense_matrix.hpp"
#include "model/objective.hpp"

namespace nadmm::model {

class LeastSquaresObjective final : public Objective {
 public:
  /// Regression onto explicit targets. `targets` must have
  /// shard.num_samples() rows; its column count sets the output width.
  LeastSquaresObjective(const data::Dataset& shard, la::DenseMatrix targets,
                        double l2_lambda);

  /// Classification shortcut: one-hot targets built from the shard's
  /// labels (m = num_classes columns).
  static LeastSquaresObjective one_hot(const data::Dataset& shard,
                                       double l2_lambda);

  [[nodiscard]] std::size_t dim() const override { return dim_; }
  [[nodiscard]] std::size_t num_samples() const override {
    return shard_->num_samples();
  }
  [[nodiscard]] std::size_t outputs() const { return m_; }

  double value(std::span<const double> x) override;
  void gradient(std::span<const double> x, std::span<double> g) override;
  double value_and_gradient(std::span<const double> x,
                            std::span<double> g) override;
  void hessian_vec(std::span<const double> x, std::span<const double> v,
                   std::span<double> hv) override;

 private:
  /// Residual R = A·X − B into panel_; returns ½‖R‖²_F.
  double forward(std::span<const double> x);

  const data::Dataset* shard_;
  double lambda_;
  std::size_t p_;
  std::size_t m_;
  std::size_t dim_;
  la::DenseMatrix targets_;  // n × m
  la::DenseMatrix panel_;    // n × m residual scratch
  la::DenseMatrix xm_;       // p × m parameter view
  la::DenseMatrix gm_;       // p × m gradient accumulator
};

}  // namespace nadmm::model
