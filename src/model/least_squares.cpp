#include "model/least_squares.hpp"

#include <algorithm>

#include "la/flops.hpp"
#include "la/vector_ops.hpp"
#include "support/check.hpp"

namespace nadmm::model {

LeastSquaresObjective::LeastSquaresObjective(const data::Dataset& shard,
                                             la::DenseMatrix targets,
                                             double l2_lambda)
    : shard_(&shard),
      lambda_(l2_lambda),
      p_(shard.num_features()),
      m_(targets.cols()),
      dim_(p_ * targets.cols()),
      targets_(std::move(targets)),
      panel_(shard.num_samples(), m_),
      xm_(p_, m_),
      gm_(p_, m_) {
  NADMM_CHECK(l2_lambda >= 0.0, "l2 lambda must be nonnegative");
  NADMM_CHECK(targets_.rows() == shard.num_samples(),
              "least squares: target row count mismatch");
  NADMM_CHECK(m_ >= 1, "least squares: need at least one output column");
}

LeastSquaresObjective LeastSquaresObjective::one_hot(const data::Dataset& shard,
                                                     double l2_lambda) {
  la::DenseMatrix targets(shard.num_samples(),
                          static_cast<std::size_t>(shard.num_classes()));
  const auto labels = shard.labels();
  for (std::size_t i = 0; i < shard.num_samples(); ++i) {
    targets.at(i, static_cast<std::size_t>(labels[i])) = 1.0;
  }
  return {shard, std::move(targets), l2_lambda};
}

double LeastSquaresObjective::forward(std::span<const double> x) {
  NADMM_CHECK(x.size() == dim_, "least squares: parameter size mismatch");
  std::copy(x.begin(), x.end(), xm_.data().begin());
  shard_->scores(xm_, panel_);
  la::axpy(-1.0, targets_.data(), panel_.data());
  return 0.5 * la::nrm2_sq(panel_.data());
}

double LeastSquaresObjective::value(std::span<const double> x) {
  double f = forward(x);
  if (lambda_ > 0.0) f += 0.5 * lambda_ * la::nrm2_sq(x);
  return f;
}

void LeastSquaresObjective::gradient(std::span<const double> x,
                                     std::span<double> g) {
  NADMM_CHECK(g.size() == dim_, "least squares: gradient size mismatch");
  (void)forward(x);
  shard_->accumulate_gradient(1.0, panel_, 0.0, gm_);
  std::copy(gm_.data().begin(), gm_.data().end(), g.begin());
  if (lambda_ > 0.0) la::axpy(lambda_, x, g);
}

double LeastSquaresObjective::value_and_gradient(std::span<const double> x,
                                                 std::span<double> g) {
  NADMM_CHECK(g.size() == dim_, "least squares: gradient size mismatch");
  const double resid = forward(x);
  shard_->accumulate_gradient(1.0, panel_, 0.0, gm_);
  std::copy(gm_.data().begin(), gm_.data().end(), g.begin());
  double f = resid;
  if (lambda_ > 0.0) {
    f += 0.5 * lambda_ * la::nrm2_sq(x);
    la::axpy(lambda_, x, g);
  }
  return f;
}

void LeastSquaresObjective::hessian_vec(std::span<const double> x,
                                        std::span<const double> v,
                                        std::span<double> hv) {
  NADMM_CHECK(v.size() == dim_ && hv.size() == dim_,
              "least squares: hessian_vec size mismatch");
  (void)x;  // constant Hessian: (AᵀA + λI) ⊗ I_m
  la::DenseMatrix vm(p_, m_);
  std::copy(v.begin(), v.end(), vm.data().begin());
  shard_->scores(vm, panel_);  // panel_ = A·V
  shard_->accumulate_gradient(1.0, panel_, 0.0, gm_);
  std::copy(gm_.data().begin(), gm_.data().end(), hv.begin());
  if (lambda_ > 0.0) la::axpy(lambda_, v, hv);
}

}  // namespace nadmm::model
