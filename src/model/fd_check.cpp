#include "model/fd_check.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "la/vector_ops.hpp"
#include "support/rng.hpp"

namespace nadmm::model {

namespace {
std::vector<double> random_unit(std::size_t dim, Rng& rng) {
  std::vector<double> v(dim);
  for (double& e : v) e = rng.normal();
  const double norm = la::nrm2(v);
  if (norm > 0) la::scal(1.0 / norm, v);
  return v;
}
}  // namespace

double gradient_fd_error(Objective& obj, std::span<const double> x, int trials,
                         double eps, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t dim = obj.dim();
  std::vector<double> g(dim);
  obj.gradient(x, g);
  std::vector<double> xp(x.begin(), x.end());
  double worst = 0.0;
  for (int t = 0; t < trials; ++t) {
    const auto v = random_unit(dim, rng);
    const double analytic = la::dot(g, v);
    std::copy(x.begin(), x.end(), xp.begin());
    la::axpy(eps, v, xp);
    const double fp = obj.value(xp);
    std::copy(x.begin(), x.end(), xp.begin());
    la::axpy(-eps, v, xp);
    const double fm = obj.value(xp);
    const double fd = (fp - fm) / (2.0 * eps);
    const double denom = std::max({std::abs(analytic), std::abs(fd), 1e-8});
    worst = std::max(worst, std::abs(analytic - fd) / denom);
  }
  return worst;
}

double hessian_fd_error(Objective& obj, std::span<const double> x, int trials,
                        double eps, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t dim = obj.dim();
  std::vector<double> hv(dim), gp(dim), gm(dim), xp(x.begin(), x.end());
  double worst = 0.0;
  for (int t = 0; t < trials; ++t) {
    const auto v = random_unit(dim, rng);
    obj.hessian_vec(x, v, hv);
    std::copy(x.begin(), x.end(), xp.begin());
    la::axpy(eps, v, xp);
    obj.gradient(xp, gp);
    std::copy(x.begin(), x.end(), xp.begin());
    la::axpy(-eps, v, xp);
    obj.gradient(xp, gm);
    // fd = (g(x+εv) − g(x−εv)) / 2ε, compared to hv in norm.
    double diff_sq = 0.0, ref_sq = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const double fd = (gp[i] - gm[i]) / (2.0 * eps);
      const double d = fd - hv[i];
      diff_sq += d * d;
      ref_sq += std::max(fd * fd, hv[i] * hv[i]);
    }
    worst = std::max(worst, std::sqrt(diff_sq / std::max(ref_sq, 1e-16)));
  }
  return worst;
}

}  // namespace nadmm::model
