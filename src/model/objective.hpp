// Objective-function interface for the Hessian-free solvers.
//
// Solvers see an objective only through value / gradient / Hessian-vector
// product — no Hessian is ever materialized (the paper's "Hessian-free"
// property that lets the method scale to d = (C−1)·p in the hundreds of
// thousands). Implementations may cache forward passes, so the methods
// are non-const.
#pragma once

#include <cstddef>
#include <span>

namespace nadmm::model {

class Objective {
 public:
  virtual ~Objective() = default;

  /// Number of parameters.
  [[nodiscard]] virtual std::size_t dim() const = 0;

  /// Number of samples behind this objective (0 for pure penalties).
  [[nodiscard]] virtual std::size_t num_samples() const = 0;

  /// F(x).
  virtual double value(std::span<const double> x) = 0;

  /// g = ∇F(x).
  virtual void gradient(std::span<const double> x, std::span<double> g) = 0;

  /// Fused F(x) and ∇F(x); default delegates to the two calls, concrete
  /// objectives override to share the forward pass.
  virtual double value_and_gradient(std::span<const double> x,
                                    std::span<double> g) {
    gradient(x, g);
    return value(x);
  }

  /// hv = ∇²F(x)·v. Implementations cache the forward pass at `x`, so
  /// repeated products at the same point (the CG inner loop) cost one
  /// GEMM pair each, not a fresh forward pass.
  virtual void hessian_vec(std::span<const double> x, std::span<const double> v,
                           std::span<double> hv) = 0;
};

}  // namespace nadmm::model
