#include "runner/sweep.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "runner/registry.hpp"
#include "support/check.hpp"

namespace nadmm::runner {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::int64_t parse_int(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(value, &pos);
    NADMM_CHECK(pos == value.size(), "trailing characters");
    return v;
  } catch (const std::exception&) {
    throw InvalidArgument("sweep key '" + key + "': malformed integer '" +
                          value + "'");
  }
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    NADMM_CHECK(pos == value.size(), "trailing characters");
    return v;
  } catch (const std::exception&) {
    throw InvalidArgument("sweep key '" + key + "': malformed number '" +
                          value + "'");
  }
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// JSON has no inf/nan literals; report them as null.
std::string fmt_json_number(double v) {
  if (!std::isfinite(v)) return "null";
  return fmt_double(v);
}

std::string fmt_compact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void apply_sweep_assignment(SweepSpec& spec, const std::string& raw_key,
                            const std::string& raw_value) {
  const std::string key = trim(raw_key);
  const std::string value = trim(raw_value);
  NADMM_CHECK(!key.empty(), "sweep key must not be empty");
  NADMM_CHECK(!value.empty(), "sweep key '" + key + "' has an empty value");

  const auto list = [&] { return split_list(value); };

  if (key == "solvers") {
    spec.solvers = list();
  } else if (key == "datasets") {
    spec.datasets = list();
  } else if (key == "workers") {
    spec.workers.clear();
    for (const auto& item : list()) {
      spec.workers.push_back(static_cast<int>(parse_int(key, item)));
    }
  } else if (key == "devices") {
    spec.devices = list();
  } else if (key == "networks") {
    spec.networks = list();
  } else if (key == "penalties") {
    spec.penalties = list();
  } else if (key == "lambdas") {
    spec.lambdas.clear();
    for (const auto& item : list()) {
      spec.lambdas.push_back(parse_double(key, item));
    }
  } else if (key == "n_train") {
    spec.base.n_train = static_cast<std::size_t>(parse_int(key, value));
  } else if (key == "n_test") {
    spec.base.n_test = static_cast<std::size_t>(parse_int(key, value));
  } else if (key == "e18_features") {
    spec.base.e18_features = static_cast<std::size_t>(parse_int(key, value));
  } else if (key == "seed") {
    spec.base.seed = static_cast<std::uint64_t>(parse_int(key, value));
  } else if (key == "iterations") {
    spec.base.iterations = static_cast<int>(parse_int(key, value));
  } else if (key == "cg_iterations") {
    spec.base.cg_iterations = static_cast<int>(parse_int(key, value));
  } else if (key == "cg_tol") {
    spec.base.cg_tol = parse_double(key, value);
  } else if (key == "line_search_iterations") {
    spec.base.line_search_iterations = static_cast<int>(parse_int(key, value));
  } else {
    throw InvalidArgument(
        "unknown sweep key '" + key +
        "' (grid axes: solvers|datasets|workers|devices|networks|penalties|"
        "lambdas; scalars: n_train|n_test|e18_features|seed|iterations|"
        "cg_iterations|cg_tol|line_search_iterations)");
  }
}

SweepSpec parse_sweep_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw RuntimeError("cannot open sweep spec: " + path);
  SweepSpec spec;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (trim(line).empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw InvalidArgument("sweep spec " + path + ":" +
                            std::to_string(line_no) +
                            ": expected 'key = value', got '" + trim(line) +
                            "'");
    }
    apply_sweep_assignment(spec, line.substr(0, eq), line.substr(eq + 1));
  }
  return spec;
}

std::string Scenario::tag() const {
  char buf[192];
  std::snprintf(buf, sizeof buf, "%03d_%s_%s_w%d_%s_%s_%s_lam%s", index,
                solver.c_str(), config.dataset.c_str(), config.workers,
                config.device.c_str(), config.network.c_str(),
                config.penalty.c_str(), fmt_compact(config.lambda).c_str());
  return buf;
}

std::vector<Scenario> expand_scenarios(const SweepSpec& spec) {
  NADMM_CHECK(!spec.solvers.empty(), "sweep needs at least one solver");
  NADMM_CHECK(!spec.datasets.empty(), "sweep needs at least one dataset");
  NADMM_CHECK(!spec.workers.empty(), "sweep needs at least one worker count");
  NADMM_CHECK(!spec.devices.empty(), "sweep needs at least one device");
  NADMM_CHECK(!spec.networks.empty(), "sweep needs at least one network");
  NADMM_CHECK(!spec.penalties.empty(), "sweep needs at least one penalty");
  NADMM_CHECK(!spec.lambdas.empty(), "sweep needs at least one lambda");

  std::vector<Scenario> scenarios;
  int index = 0;
  for (const auto& solver : spec.solvers) {
    for (const auto& dataset : spec.datasets) {
      for (const int workers : spec.workers) {
        for (const auto& device : spec.devices) {
          for (const auto& network : spec.networks) {
            for (const auto& penalty : spec.penalties) {
              for (const double lambda : spec.lambdas) {
                Scenario s;
                s.index = index++;
                s.solver = solver;
                s.config = spec.base;
                s.config.dataset = dataset;
                s.config.workers = workers;
                s.config.device = device;
                s.config.network = network;
                s.config.penalty = penalty;
                s.config.lambda = lambda;
                scenarios.push_back(std::move(s));
              }
            }
          }
        }
      }
    }
  }
  return scenarios;
}

std::size_t SweepReport::failures() const {
  std::size_t n = 0;
  for (const auto& o : outcomes) n += o.ok ? 0 : 1;
  return n;
}

std::vector<std::string> SweepReport::csv_rows() const {
  std::vector<std::string> rows;
  rows.reserve(outcomes.size() + 1);
  rows.emplace_back(
      "scenario,solver,dataset,n_train,n_test,workers,device,network,penalty,"
      "lambda,status,iterations,final_objective,final_test_accuracy,"
      "total_sim_seconds,avg_epoch_sim_seconds,total_comm_sim_seconds");
  for (const auto& o : outcomes) {
    const auto& c = o.scenario.config;
    const auto& r = o.result;
    const double comm =
        (o.ok && !r.trace.empty()) ? r.trace.back().comm_sim_seconds : 0.0;
    std::ostringstream row;
    row << o.scenario.index << ',' << o.scenario.solver << ',' << c.dataset
        << ',' << c.n_train << ',' << c.n_test << ',' << c.workers << ','
        << c.device << ',' << c.network << ',' << c.penalty << ','
        << fmt_double(c.lambda) << ',' << (o.ok ? "ok" : "error") << ','
        << (o.ok ? r.iterations : 0) << ','
        << fmt_double(o.ok ? r.final_objective : 0.0) << ','
        << fmt_double(o.ok ? r.final_test_accuracy : 0.0) << ','
        << fmt_double(o.ok ? r.total_sim_seconds : 0.0) << ','
        << fmt_double(o.ok ? r.avg_epoch_sim_seconds : 0.0) << ','
        << fmt_double(comm);
    rows.push_back(row.str());
  }
  return rows;
}

void SweepReport::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw RuntimeError("cannot open sweep report for writing: " + path);
  for (const auto& row : csv_rows()) out << row << '\n';
}

void SweepReport::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw RuntimeError("cannot open sweep report for writing: " + path);
  out << "[\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    const auto& c = o.scenario.config;
    const auto& r = o.result;
    const double comm =
        (o.ok && !r.trace.empty()) ? r.trace.back().comm_sim_seconds : 0.0;
    out << "  {\"scenario\": " << o.scenario.index                      //
        << ", \"tag\": \"" << json_escape(o.scenario.tag()) << "\""     //
        << ", \"solver\": \"" << json_escape(o.scenario.solver) << "\"" //
        << ", \"dataset\": \"" << json_escape(c.dataset) << "\""        //
        << ", \"n_train\": " << c.n_train                               //
        << ", \"n_test\": " << c.n_test                                 //
        << ", \"workers\": " << c.workers                               //
        << ", \"device\": \"" << json_escape(c.device) << "\""          //
        << ", \"network\": \"" << json_escape(c.network) << "\""        //
        << ", \"penalty\": \"" << json_escape(c.penalty) << "\""        //
        << ", \"lambda\": " << fmt_json_number(c.lambda)                //
        << ", \"status\": \"" << (o.ok ? "ok" : "error") << "\"";
    if (o.ok) {
      out << ", \"iterations\": " << r.iterations                        //
          << ", \"final_objective\": " << fmt_json_number(r.final_objective)
          << ", \"final_test_accuracy\": "
          << fmt_json_number(r.final_test_accuracy)                      //
          << ", \"total_sim_seconds\": "
          << fmt_json_number(r.total_sim_seconds)                        //
          << ", \"avg_epoch_sim_seconds\": "
          << fmt_json_number(r.avg_epoch_sim_seconds)                    //
          << ", \"total_comm_sim_seconds\": " << fmt_json_number(comm);
    } else {
      out << ", \"error\": \"" << json_escape(o.error) << "\"";
    }
    out << '}' << (i + 1 < outcomes.size() ? "," : "") << '\n';
  }
  out << "]\n";
}

SweepReport run_sweep(const SweepSpec& spec, const SweepOptions& options) {
  NADMM_CHECK(options.jobs >= 1, "sweep needs at least one scheduler thread");
  const std::vector<Scenario> scenarios = expand_scenarios(spec);

  if (!options.trace_dir.empty()) {
    std::filesystem::create_directories(options.trace_dir);
  }

  SweepReport report;
  report.outcomes.resize(scenarios.size());

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;

  auto run_one = [&](const Scenario& scenario) {
    ScenarioOutcome outcome;
    outcome.scenario = scenario;
    try {
      ExperimentConfig config = scenario.config;
      if (options.deterministic) config.omp_threads = 1;
      const data::TrainTest tt = make_data(config);
      comm::SimCluster cluster = make_cluster(config);
      outcome.result = SolverRegistry::instance().run(
          scenario.solver, cluster, tt.train, &tt.test, config);
      if (!options.trace_dir.empty()) {
        write_trace_csv(outcome.result,
                        options.trace_dir + "/" + scenario.tag() + ".csv");
      }
      outcome.ok = true;
    } catch (const std::exception& e) {
      outcome.ok = false;
      outcome.error = e.what();
    }
    return outcome;
  };

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= scenarios.size()) return;
      ScenarioOutcome outcome = run_one(scenarios[i]);
      {
        const std::scoped_lock lock(progress_mutex);
        report.outcomes[i] = std::move(outcome);
        const std::size_t finished = done.fetch_add(1) + 1;
        if (options.on_scenario_done) {
          options.on_scenario_done(report.outcomes[i], finished,
                                   scenarios.size());
        }
      }
    }
  };

  const std::size_t pool_size = std::min<std::size_t>(
      static_cast<std::size_t>(options.jobs), scenarios.size());
  if (pool_size <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(pool_size);
    for (std::size_t t = 0; t < pool_size; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  return report;
}

}  // namespace nadmm::runner
