#include "runner/sweep.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "comm/fault.hpp"
#include "runner/registry.hpp"
#include "serve/arrival.hpp"
#include "serve/batching.hpp"
#include "serve/server.hpp"
#include "support/check.hpp"
#include "support/telemetry.hpp"

namespace nadmm::runner {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::int64_t parse_int(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(value, &pos);
    NADMM_CHECK(pos == value.size(), "trailing characters");
    return v;
  } catch (const std::exception&) {
    throw InvalidArgument("sweep key '" + key + "': malformed integer '" +
                          value + "'");
  }
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    NADMM_CHECK(pos == value.size(), "trailing characters");
    return v;
  } catch (const std::exception&) {
    throw InvalidArgument("sweep key '" + key + "': malformed number '" +
                          value + "'");
  }
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// JSON has no inf/nan literals; report them as null.
std::string fmt_json_number(double v) {
  if (!std::isfinite(v)) return "null";
  return fmt_double(v);
}

std::string fmt_compact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// ';'-joined per-rank wait seconds ("0;1.5;0.25"), empty when the
/// solver reports none. Round-trips through the journal verbatim.
std::string fmt_rank_waits(const std::vector<double>& waits) {
  std::string out;
  for (std::size_t r = 0; r < waits.size(); ++r) {
    if (r > 0) out += ';';
    out += fmt_double(waits[r]);
  }
  return out;
}

/// Sparse "staleness:count" pairs ("0:24;2:7"), empty when unreported.
std::string fmt_staleness_hist(const std::vector<std::uint64_t>& hist) {
  std::string out;
  for (std::size_t s = 0; s < hist.size(); ++s) {
    if (hist[s] == 0) continue;
    if (!out.empty()) out += ';';
    out += std::to_string(s) + ':' + std::to_string(hist[s]);
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --------------------------------------------------------------- journal
//
// One JSON object per line; the writer is this file, so the reader is a
// targeted field extractor rather than a general JSON parser. Numbers are
// written with %.17g (round-trips doubles exactly; `inf`/`nan` appear as
// bare tokens, which strtod reads back) — that is what makes a resumed
// report byte-identical to an uninterrupted one.

/// Locate the value of `"key": ` in a journal line; npos when absent.
std::size_t find_json_value(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto at = line.find(needle);
  if (at == std::string::npos) return std::string::npos;
  auto pos = at + needle.size();
  while (pos < line.size() && line[pos] == ' ') ++pos;
  return pos < line.size() ? pos : std::string::npos;
}

bool json_get_string(const std::string& line, const std::string& key,
                     std::string& out) {
  auto pos = find_json_value(line, key);
  if (pos == std::string::npos || line[pos] != '"') return false;
  ++pos;
  out.clear();
  while (pos < line.size() && line[pos] != '"') {
    char c = line[pos];
    if (c == '\\' && pos + 1 < line.size()) {
      const char e = line[++pos];
      switch (e) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'r': c = '\r'; break;
        case 'u': {
          // Only \u00XX is ever emitted (see json_escape).
          if (pos + 4 >= line.size()) return false;
          c = static_cast<char>(
              std::strtol(line.substr(pos + 1, 4).c_str(), nullptr, 16));
          pos += 4;
          break;
        }
        default: c = e; break;
      }
    }
    out += c;
    ++pos;
  }
  return pos < line.size();
}

bool json_get_double(const std::string& line, const std::string& key,
                     double& out) {
  const auto pos = find_json_value(line, key);
  if (pos == std::string::npos) return false;
  char* end = nullptr;
  out = std::strtod(line.c_str() + pos, &end);
  return end != line.c_str() + pos;
}

bool json_get_int(const std::string& line, const std::string& key,
                  std::int64_t& out) {
  const auto pos = find_json_value(line, key);
  if (pos == std::string::npos) return false;
  char* end = nullptr;
  out = std::strtoll(line.c_str() + pos, &end, 10);
  return end != line.c_str() + pos;
}

constexpr const char* kJournalKind = "nadmm-sweep-journal";
// v2: partition axis in the expansion/tag and the peak_dataset_bytes
// column. v3: serving-mode columns (requests/batches/throughput/latency
// percentiles). v4: the scale/weak_scaling spec knobs entered the
// fingerprint serialization (the reproduction pipeline keys one journal
// per scale). v5: the faults axis plus kill/checkpoint_every base knobs
// entered the fingerprint, and the wire counters (retransmits /
// gaps_detected / messages_dropped / checkpoints / restores) entered
// the outcome records. v6: the five fixed wire-counter fields were
// replaced by the generic sparse "metrics" map ("name:value;…", sorted,
// non-zero entries only) mirroring core::RunResult::metrics. Older
// journals are rejected on --resume — their fingerprints no longer
// match either.
constexpr std::int64_t kJournalVersion = 6;

/// RunResult::metrics as the journal/JSON wire form: "name:value;…" in
/// key order. The map never stores zero values (add_metric skips them),
/// so fresh runs and journal restores serialize identically.
std::string fmt_metrics(const std::map<std::string, std::uint64_t>& metrics) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, value] : metrics) {
    if (!first) os << ';';
    first = false;
    os << name << ':' << value;
  }
  return os.str();
}

bool parse_metrics(const std::string& text,
                   std::map<std::string, std::uint64_t>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto end = text.find(';', pos);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(pos, end - pos);
    const auto colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0) return false;
    char* num_end = nullptr;
    const std::uint64_t value =
        std::strtoull(item.c_str() + colon + 1, &num_end, 10);
    if (num_end != item.c_str() + item.size()) return false;
    if (value != 0) out[item.substr(0, colon)] = value;
    pos = end + 1;
  }
  return true;
}

std::string journal_header_line(const std::string& fingerprint,
                                std::size_t scenarios) {
  std::ostringstream os;
  os << "{\"kind\": \"" << kJournalKind << "\", \"version\": "
     << kJournalVersion << ", \"fingerprint\": \"" << fingerprint << "\""
     << ", \"scenarios\": " << scenarios << '}';
  return os.str();
}

std::string journal_outcome_line(const ScenarioOutcome& o) {
  std::ostringstream os;
  os << "{\"index\": " << o.scenario.index            //
     << ", \"tag\": \"" << json_escape(o.scenario.tag()) << "\""
     << ", \"status\": \"" << (o.ok ? "ok" : "error") << "\"";
  if (o.ok) {
    os << ", \"iterations\": " << o.result.iterations  //
       << ", \"final_objective\": " << fmt_double(o.result.final_objective)
       << ", \"final_test_accuracy\": "
       << fmt_double(o.result.final_test_accuracy)
       << ", \"total_sim_seconds\": " << fmt_double(o.result.total_sim_seconds)
       << ", \"avg_epoch_sim_seconds\": "
       << fmt_double(o.result.avg_epoch_sim_seconds)
       << ", \"total_comm_sim_seconds\": " << fmt_double(o.comm_sim_seconds)
       << ", \"max_wait_seconds\": " << fmt_double(o.max_wait_seconds)  //
       << ", \"rank_wait_seconds\": \"" << json_escape(o.rank_waits) << "\""
       << ", \"staleness_hist\": \"" << json_escape(o.staleness_hist) << "\""
       << ", \"peak_dataset_bytes\": " << o.peak_dataset_bytes
       << ", \"requests\": " << o.serve_requests                //
       << ", \"batches\": " << o.serve_batches                  //
       << ", \"throughput_rps\": " << fmt_double(o.throughput_rps)
       << ", \"mean_batch\": " << fmt_double(o.mean_batch)      //
       << ", \"p50_latency_s\": " << fmt_double(o.p50_latency_s)
       << ", \"p99_latency_s\": " << fmt_double(o.p99_latency_s)
       << ", \"p999_latency_s\": " << fmt_double(o.p999_latency_s)
       << ", \"metrics\": \"" << json_escape(fmt_metrics(o.result.metrics))
       << "\"";
  } else {
    os << ", \"error\": \"" << json_escape(o.error) << "\"";
  }
  os << '}';
  return os.str();
}

/// Parse one journal data line back into the outcome for its scenario.
/// Returns false (leaving `completed` untouched) on lines that do not
/// parse — only the final line of a killed run can be torn, because the
/// writer flushes per line.
bool restore_outcome_line(const std::string& line,
                          const std::vector<Scenario>& scenarios,
                          std::vector<ScenarioOutcome>& outcomes,
                          std::vector<char>& completed) {
  // A line torn inside its final numeric field would still satisfy every
  // field extractor below (strtod parses the truncated prefix); only a
  // closing brace proves the record was written out completely.
  const auto last = line.find_last_not_of(" \t\r");
  if (last == std::string::npos || line[last] != '}') return false;
  std::int64_t index = -1;
  std::string tag, status;
  if (!json_get_int(line, "index", index) ||
      !json_get_string(line, "tag", tag) ||
      !json_get_string(line, "status", status)) {
    return false;
  }
  if (index < 0 || static_cast<std::size_t>(index) >= scenarios.size()) {
    return false;
  }
  const auto i = static_cast<std::size_t>(index);
  NADMM_CHECK(scenarios[i].tag() == tag,
              "sweep journal: scenario " + std::to_string(index) +
                  " is tagged '" + tag + "' but the grid expands to '" +
                  scenarios[i].tag() + "' — journal is from a different spec");
  ScenarioOutcome o;
  o.scenario = scenarios[i];
  o.from_journal = true;
  if (status == "ok") {
    std::int64_t iterations = 0;
    if (!json_get_int(line, "iterations", iterations) ||
        !json_get_double(line, "final_objective", o.result.final_objective) ||
        !json_get_double(line, "final_test_accuracy",
                         o.result.final_test_accuracy) ||
        !json_get_double(line, "total_sim_seconds",
                         o.result.total_sim_seconds) ||
        !json_get_double(line, "avg_epoch_sim_seconds",
                         o.result.avg_epoch_sim_seconds) ||
        !json_get_double(line, "total_comm_sim_seconds",
                         o.comm_sim_seconds)) {
      return false;
    }
    // The async and data-plane columns entered the journal in later
    // versions; their absence is impossible in practice because the
    // version and fingerprint serialization changed at the same time
    // (older journals are rejected up front).
    std::int64_t peak_bytes = 0, requests = 0, batches = 0;
    if (!json_get_double(line, "max_wait_seconds", o.max_wait_seconds) ||
        !json_get_string(line, "rank_wait_seconds", o.rank_waits) ||
        !json_get_string(line, "staleness_hist", o.staleness_hist) ||
        !json_get_int(line, "peak_dataset_bytes", peak_bytes) ||
        !json_get_int(line, "requests", requests) ||
        !json_get_int(line, "batches", batches) ||
        !json_get_double(line, "throughput_rps", o.throughput_rps) ||
        !json_get_double(line, "mean_batch", o.mean_batch) ||
        !json_get_double(line, "p50_latency_s", o.p50_latency_s) ||
        !json_get_double(line, "p99_latency_s", o.p99_latency_s) ||
        !json_get_double(line, "p999_latency_s", o.p999_latency_s)) {
      return false;
    }
    std::string metrics_text;
    if (!json_get_string(line, "metrics", metrics_text) ||
        !parse_metrics(metrics_text, o.result.metrics)) {
      return false;
    }
    o.peak_dataset_bytes = static_cast<std::uint64_t>(peak_bytes);
    o.serve_requests = static_cast<std::uint64_t>(requests);
    o.serve_batches = static_cast<std::uint64_t>(batches);
    o.ok = true;
    o.result.solver = scenarios[i].solver;
    o.result.iterations = static_cast<int>(iterations);
  } else if (status == "error") {
    if (!json_get_string(line, "error", o.error)) return false;
    o.ok = false;
  } else {
    return false;
  }
  outcomes[i] = std::move(o);
  completed[i] = 1;
  return true;
}

}  // namespace

void apply_sweep_assignment(SweepSpec& spec, const std::string& raw_key,
                            const std::string& raw_value) {
  const std::string key = trim(raw_key);
  const std::string value = trim(raw_value);
  NADMM_CHECK(!key.empty(), "sweep key must not be empty");
  NADMM_CHECK(!value.empty(), "sweep key '" + key + "' has an empty value");

  const auto list = [&] { return split_list(value); };

  if (key == "solvers") {
    spec.solvers = list();
  } else if (key == "datasets") {
    spec.datasets = list();
  } else if (key == "workers") {
    spec.workers.clear();
    for (const auto& item : list()) {
      spec.workers.push_back(static_cast<int>(parse_int(key, item)));
    }
  } else if (key == "devices") {
    spec.devices = list();
  } else if (key == "networks") {
    spec.networks = list();
  } else if (key == "penalties") {
    spec.penalties = list();
  } else if (key == "lambdas") {
    spec.lambdas.clear();
    for (const auto& item : list()) {
      spec.lambdas.push_back(parse_double(key, item));
    }
  } else if (key == "stragglers") {
    spec.stragglers = list();
  } else if (key == "partitions") {
    spec.partitions = list();
    for (const auto& item : spec.partitions) {
      static_cast<void>(data::partition_mode_from_string(item));  // validate
    }
  } else if (key == "faults") {
    spec.faults = list();
    for (const auto& item : spec.faults) {
      static_cast<void>(comm::FaultSpec::parse(item));  // validate
    }
  } else if (key == "kill") {
    spec.base.kill = value;
  } else if (key == "checkpoint_every") {
    spec.base.checkpoint_every = static_cast<int>(parse_int(key, value));
    NADMM_CHECK(spec.base.checkpoint_every >= 0,
                "sweep key 'checkpoint_every': must be >= 0");
  } else if (key == "n_train") {
    spec.base.n_train = static_cast<std::size_t>(parse_int(key, value));
  } else if (key == "n_test") {
    spec.base.n_test = static_cast<std::size_t>(parse_int(key, value));
  } else if (key == "e18_features") {
    spec.base.e18_features = static_cast<std::size_t>(parse_int(key, value));
  } else if (key == "seed") {
    spec.base.seed = static_cast<std::uint64_t>(parse_int(key, value));
  } else if (key == "iterations") {
    spec.base.iterations = static_cast<int>(parse_int(key, value));
  } else if (key == "cg_iterations") {
    spec.base.cg_iterations = static_cast<int>(parse_int(key, value));
  } else if (key == "cg_tol") {
    spec.base.cg_tol = parse_double(key, value);
  } else if (key == "line_search_iterations") {
    spec.base.line_search_iterations = static_cast<int>(parse_int(key, value));
  } else if (key == "staleness") {
    spec.base.staleness = static_cast<int>(parse_int(key, value));
  } else if (key == "sync_every") {
    spec.base.sync_every = static_cast<int>(parse_int(key, value));
  } else if (key == "objective_target") {
    spec.base.objective_target = parse_double(key, value);
  } else if (key == "mode") {
    NADMM_CHECK(value == "train" || value == "serving",
                "sweep key 'mode': expected train|serving, got '" + value +
                    "'");
    spec.mode = value;
  } else if (key == "arrivals") {
    spec.arrivals = list();
    for (const auto& item : spec.arrivals) {
      static_cast<void>(serve::make_arrival(item));  // validate
    }
  } else if (key == "batch_policies") {
    spec.batch_policies = list();
    for (const auto& item : spec.batch_policies) {
      static_cast<void>(serve::make_batch_policy(item));  // validate
    }
  } else if (key == "scale") {
    spec.scale = parse_double(key, value);
    NADMM_CHECK(spec.scale > 0.0, "sweep key 'scale': must be > 0");
  } else if (key == "weak_scaling") {
    if (value == "true" || value == "1") {
      spec.weak_scaling = true;
    } else if (value == "false" || value == "0") {
      spec.weak_scaling = false;
    } else {
      throw InvalidArgument("sweep key 'weak_scaling': expected true|false, "
                            "got '" + value + "'");
    }
  } else if (key == "serve_requests") {
    spec.serve_requests = static_cast<std::size_t>(parse_int(key, value));
  } else if (key == "serve_model") {
    spec.serve_model = value;
  } else if (key == "dispatch_overhead") {
    spec.dispatch_overhead_s = parse_double(key, value);
    NADMM_CHECK(spec.dispatch_overhead_s >= 0.0,
                "sweep key 'dispatch_overhead': must be >= 0 seconds");
  } else {
    throw InvalidArgument(
        "unknown sweep key '" + key +
        "' (grid axes: solvers|datasets|workers|devices|networks|penalties|"
        "lambdas|stragglers|partitions|faults|arrivals|batch_policies; "
        "scalars: n_train|n_test|e18_features|seed|iterations|cg_iterations|"
        "cg_tol|line_search_iterations|staleness|sync_every|kill|"
        "checkpoint_every|objective_target|mode|scale|weak_scaling|"
        "serve_requests|serve_model|dispatch_overhead)");
  }
}

SweepSpec parse_sweep_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw RuntimeError("cannot open sweep spec: " + path);
  SweepSpec spec;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (trim(line).empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw InvalidArgument("sweep spec " + path + ":" +
                            std::to_string(line_no) +
                            ": expected 'key = value', got '" + trim(line) +
                            "'");
    }
    apply_sweep_assignment(spec, line.substr(0, eq), line.substr(eq + 1));
  }
  return spec;
}

namespace {

/// Map file-system-unsafe characters (e.g. from "libsvm:/path" dataset
/// sources, "p100+cpu" device lists, "1:4" straggler specs) to '-'.
std::string fs_safe(std::string s) {
  for (char& c : s) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    if (!safe) c = '-';
  }
  return s;
}

}  // namespace

std::string Scenario::tag() const {
  // The index prefix keeps tags unique even after sanitization.
  char buf[512];
  if (serving) {
    std::snprintf(buf, sizeof buf, "%03d_serve_%s_%s_w%d_%s_%s_%s_%s", index,
                  solver.c_str(), fs_safe(config.dataset).c_str(),
                  config.workers, fs_safe(config.device).c_str(),
                  config.network.c_str(), fs_safe(arrival).c_str(),
                  fs_safe(batch).c_str());
    return buf;
  }
  std::snprintf(buf, sizeof buf, "%03d_%s_%s_w%d_%s_%s_%s_lam%s_st%s_%s",
                index, solver.c_str(), fs_safe(config.dataset).c_str(),
                config.workers, fs_safe(config.device).c_str(),
                config.network.c_str(), config.penalty.c_str(),
                fmt_compact(config.lambda).c_str(),
                fs_safe(config.straggler).c_str(), config.partition.c_str());
  std::string tag = buf;
  // Appended only when set, so pre-fault grids keep their tags (and
  // their journals) unchanged.
  if (!config.fault.empty() && config.fault != "none") {
    tag += "_f" + fs_safe(config.fault);
  }
  return tag;
}

namespace {

/// Sample count after the spec's paper-scale multiplier.
std::size_t scaled_count(std::size_t base, double scale) {
  return static_cast<std::size_t>(
      std::llround(static_cast<double>(base) * scale));
}

}  // namespace

std::vector<Scenario> expand_scenarios(const SweepSpec& spec) {
  NADMM_CHECK(!spec.solvers.empty(), "sweep needs at least one solver");
  NADMM_CHECK(!spec.datasets.empty(), "sweep needs at least one dataset");
  const std::size_t scaled_train =
      std::max<std::size_t>(1, scaled_count(spec.base.n_train, spec.scale));
  const std::size_t scaled_test = scaled_count(spec.base.n_test, spec.scale);
  if (spec.mode == "serving") {
    NADMM_CHECK(!spec.devices.empty(), "sweep needs at least one device");
    NADMM_CHECK(!spec.networks.empty(), "sweep needs at least one network");
    NADMM_CHECK(!spec.arrivals.empty(),
                "serving sweep needs at least one arrival model");
    NADMM_CHECK(!spec.batch_policies.empty(),
                "serving sweep needs at least one batch policy");
    // Fixed axis order (solver, dataset, device, network, arrival,
    // batch — rightmost fastest); the train-only axes stay at base.
    std::vector<Scenario> scenarios;
    int index = 0;
    for (const auto& solver : spec.solvers) {
      for (const auto& dataset : spec.datasets) {
        for (const auto& device : spec.devices) {
          for (const auto& network : spec.networks) {
            for (const auto& arrival : spec.arrivals) {
              for (const auto& batch : spec.batch_policies) {
                Scenario s;
                s.index = index++;
                s.solver = solver;
                s.config = spec.base;
                s.config.n_train = scaled_train;
                s.config.n_test = scaled_test;
                s.config.dataset = dataset;
                s.config.device = device;
                s.config.network = network;
                s.serving = true;
                s.arrival = arrival;
                s.batch = batch;
                scenarios.push_back(std::move(s));
              }
            }
          }
        }
      }
    }
    return scenarios;
  }
  NADMM_CHECK(!spec.workers.empty(), "sweep needs at least one worker count");
  NADMM_CHECK(!spec.devices.empty(), "sweep needs at least one device");
  NADMM_CHECK(!spec.networks.empty(), "sweep needs at least one network");
  NADMM_CHECK(!spec.penalties.empty(), "sweep needs at least one penalty");
  NADMM_CHECK(!spec.lambdas.empty(), "sweep needs at least one lambda");
  NADMM_CHECK(!spec.stragglers.empty(),
              "sweep needs at least one straggler entry ('none' disables)");
  NADMM_CHECK(!spec.partitions.empty(),
              "sweep needs at least one partition mode");
  NADMM_CHECK(!spec.faults.empty(),
              "sweep needs at least one fault entry ('none' disables)");

  std::vector<Scenario> scenarios;
  int index = 0;
  for (const auto& solver : spec.solvers) {
    for (const auto& dataset : spec.datasets) {
      for (const int workers : spec.workers) {
        for (const auto& device : spec.devices) {
          for (const auto& network : spec.networks) {
            for (const auto& penalty : spec.penalties) {
              for (const double lambda : spec.lambdas) {
                for (const auto& straggler : spec.stragglers) {
                  for (const auto& partition : spec.partitions) {
                    for (const auto& fault : spec.faults) {
                      Scenario s;
                      s.index = index++;
                      s.solver = solver;
                      s.config = spec.base;
                      // Weak scaling: base.n_train is the per-worker
                      // shard.
                      s.config.n_train =
                          spec.weak_scaling
                              ? scaled_train *
                                    static_cast<std::size_t>(workers)
                              : scaled_train;
                      s.config.n_test = scaled_test;
                      s.config.dataset = dataset;
                      s.config.workers = workers;
                      s.config.device = device;
                      s.config.network = network;
                      s.config.penalty = penalty;
                      s.config.lambda = lambda;
                      s.config.straggler = straggler;
                      s.config.partition = partition;
                      s.config.fault = fault;
                      scenarios.push_back(std::move(s));
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return scenarios;
}

std::string spec_fingerprint(const SweepSpec& spec) {
  std::ostringstream os;
  const auto join = [&os](const char* name, const auto& items,
                          auto&& format) {
    os << name << '=';
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i > 0) os << ',';
      os << format(items[i]);
    }
    os << ';';
  };
  const auto str = [](const std::string& s) { return s; };
  const auto integer = [](int v) { return std::to_string(v); };
  join("solvers", spec.solvers, str);
  join("datasets", spec.datasets, str);
  join("workers", spec.workers, integer);
  join("devices", spec.devices, str);
  join("networks", spec.networks, str);
  join("penalties", spec.penalties, str);
  join("lambdas", spec.lambdas, fmt_double);
  join("stragglers", spec.stragglers, str);
  join("partitions", spec.partitions, str);
  join("faults", spec.faults, str);
  // Every base knob that survives scenario expansion (the per-axis fields
  // are overwritten per scenario and already covered above).
  const auto& b = spec.base;
  os << "n_train=" << b.n_train << ";n_test=" << b.n_test
     << ";e18_features=" << b.e18_features << ";seed=" << b.seed
     << ";rho0=" << fmt_double(b.rho0) << ";iterations=" << b.iterations
     << ";cg_iterations=" << b.cg_iterations
     << ";cg_tol=" << fmt_double(b.cg_tol)
     << ";line_search_iterations=" << b.line_search_iterations
     << ";local_newton_steps=" << b.local_newton_steps
     << ";objective_target=" << fmt_double(b.objective_target)
     << ";evaluate_accuracy=" << b.evaluate_accuracy
     << ";sgd_batch=" << b.sgd_batch << ";sgd_step=" << fmt_double(b.sgd_step)
     << ";dane_epochs=" << b.dane_epochs << ";svrg_outer=" << b.svrg_outer
     << ";fo_step=" << fmt_double(b.fo_step)
     << ";gradient_tol=" << fmt_double(b.gradient_tol)
     << ";omp_threads=" << b.omp_threads
     << ";staleness=" << b.staleness << ";sync_every=" << b.sync_every
     << ";kill=" << b.kill << ";checkpoint_every=" << b.checkpoint_every
     << ';';
  os << "scale=" << fmt_double(spec.scale)
     << ";weak_scaling=" << spec.weak_scaling << ';';
  os << "mode=" << spec.mode << ';';
  join("arrivals", spec.arrivals, str);
  join("batch_policies", spec.batch_policies, str);
  os << "serve_requests=" << spec.serve_requests
     << ";serve_model=" << spec.serve_model
     << ";dispatch_overhead=" << fmt_double(spec.dispatch_overhead_s) << ';';
  const std::string canonical = os.str();
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64
  for (const char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::size_t SweepReport::failures() const {
  std::size_t n = 0;
  for (const auto& o : outcomes) n += o.ok ? 0 : 1;
  return n;
}

std::vector<std::string> SweepReport::csv_rows() const {
  std::vector<std::string> rows;
  rows.reserve(outcomes.size() + 1);
  rows.emplace_back(
      "scenario,solver,dataset,n_train,n_test,workers,device,network,penalty,"
      "lambda,straggler,partition,status,iterations,final_objective,"
      "final_test_accuracy,total_sim_seconds,avg_epoch_sim_seconds,"
      "total_comm_sim_seconds,max_wait_seconds,rank_wait_seconds,"
      "staleness_hist,"
      "peak_dataset_bytes,arrival,batch_policy,requests,batches,"
      "throughput_rps,mean_batch,p50_latency_s,p99_latency_s,p999_latency_s,"
      "fault,kill,checkpoint_every,retransmits,gaps_detected,"
      "messages_dropped,checkpoints,restores");
  for (const auto& o : outcomes) {
    const auto& c = o.scenario.config;
    const auto& r = o.result;
    const double comm = o.comm_sim_seconds;
    std::ostringstream row;
    row << o.scenario.index << ',' << o.scenario.solver << ',' << c.dataset
        << ',' << c.n_train << ',' << c.n_test << ',' << c.workers << ','
        << c.device << ',' << c.network << ',' << c.penalty << ','
        << fmt_double(c.lambda) << ',' << c.straggler << ',' << c.partition
        << ',' << (o.ok ? "ok" : "error") << ','
        << (o.ok ? r.iterations : 0) << ','
        << fmt_double(o.ok ? r.final_objective : 0.0) << ','
        << fmt_double(o.ok ? r.final_test_accuracy : 0.0) << ','
        << fmt_double(o.ok ? r.total_sim_seconds : 0.0) << ','
        << fmt_double(o.ok ? r.avg_epoch_sim_seconds : 0.0) << ','
        << fmt_double(comm) << ',' << fmt_double(o.max_wait_seconds) << ','
        << o.rank_waits << ',' << o.staleness_hist << ','
        << o.peak_dataset_bytes << ','
        << o.scenario.arrival << ',' << o.scenario.batch << ','
        << o.serve_requests << ',' << o.serve_batches << ','
        << fmt_double(o.throughput_rps) << ',' << fmt_double(o.mean_batch)
        << ',' << fmt_double(o.p50_latency_s) << ','
        << fmt_double(o.p99_latency_s) << ',' << fmt_double(o.p999_latency_s)
        << ',' << c.fault << ',' << c.kill << ',' << c.checkpoint_every << ','
        << (o.ok ? r.metric("retransmits") : 0) << ','
        << (o.ok ? r.metric("gaps_detected") : 0) << ','
        << (o.ok ? r.metric("messages_dropped") : 0) << ','
        << (o.ok ? r.metric("checkpoints") : 0) << ','
        << (o.ok ? r.metric("restores") : 0);
    rows.push_back(row.str());
  }
  return rows;
}

void SweepReport::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw RuntimeError("cannot open sweep report for writing: " + path);
  for (const auto& row : csv_rows()) out << row << '\n';
}

void SweepReport::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw RuntimeError("cannot open sweep report for writing: " + path);
  out << "[\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    const auto& c = o.scenario.config;
    const auto& r = o.result;
    const double comm = o.comm_sim_seconds;
    out << "  {\"scenario\": " << o.scenario.index                      //
        << ", \"tag\": \"" << json_escape(o.scenario.tag()) << "\""     //
        << ", \"solver\": \"" << json_escape(o.scenario.solver) << "\"" //
        << ", \"dataset\": \"" << json_escape(c.dataset) << "\""        //
        << ", \"n_train\": " << c.n_train                               //
        << ", \"n_test\": " << c.n_test                                 //
        << ", \"workers\": " << c.workers                               //
        << ", \"device\": \"" << json_escape(c.device) << "\""          //
        << ", \"network\": \"" << json_escape(c.network) << "\""        //
        << ", \"penalty\": \"" << json_escape(c.penalty) << "\""        //
        << ", \"lambda\": " << fmt_json_number(c.lambda)                //
        << ", \"straggler\": \"" << json_escape(c.straggler) << "\""    //
        << ", \"partition\": \"" << json_escape(c.partition) << "\""    //
        << ", \"fault\": \"" << json_escape(c.fault) << "\""            //
        << ", \"kill\": \"" << json_escape(c.kill) << "\""              //
        << ", \"checkpoint_every\": " << c.checkpoint_every             //
        << ", \"arrival\": \"" << json_escape(o.scenario.arrival) << "\""
        << ", \"batch_policy\": \"" << json_escape(o.scenario.batch) << "\""
        << ", \"status\": \"" << (o.ok ? "ok" : "error") << "\"";
    if (o.ok) {
      out << ", \"iterations\": " << r.iterations                        //
          << ", \"final_objective\": " << fmt_json_number(r.final_objective)
          << ", \"final_test_accuracy\": "
          << fmt_json_number(r.final_test_accuracy)                      //
          << ", \"total_sim_seconds\": "
          << fmt_json_number(r.total_sim_seconds)                        //
          << ", \"avg_epoch_sim_seconds\": "
          << fmt_json_number(r.avg_epoch_sim_seconds)                    //
          << ", \"total_comm_sim_seconds\": " << fmt_json_number(comm)   //
          << ", \"max_wait_seconds\": " << fmt_json_number(o.max_wait_seconds)
          << ", \"rank_wait_seconds\": \"" << json_escape(o.rank_waits) << "\""
          << ", \"staleness_hist\": \"" << json_escape(o.staleness_hist)
          << "\", \"peak_dataset_bytes\": " << o.peak_dataset_bytes
          << ", \"requests\": " << o.serve_requests                      //
          << ", \"batches\": " << o.serve_batches                        //
          << ", \"throughput_rps\": " << fmt_json_number(o.throughput_rps)
          << ", \"mean_batch\": " << fmt_json_number(o.mean_batch)       //
          << ", \"p50_latency_s\": " << fmt_json_number(o.p50_latency_s)
          << ", \"p99_latency_s\": " << fmt_json_number(o.p99_latency_s)
          << ", \"p999_latency_s\": " << fmt_json_number(o.p999_latency_s)
          << ", \"metrics\": \"" << json_escape(fmt_metrics(r.metrics))
          << "\"";
    } else {
      out << ", \"error\": \"" << json_escape(o.error) << "\"";
    }
    out << '}' << (i + 1 < outcomes.size() ? "," : "") << '\n';
  }
  out << "]\n";
}

SweepReport run_sweep(const SweepSpec& spec, const SweepOptions& options) {
  NADMM_CHECK(options.jobs >= 1, "sweep needs at least one scheduler thread");
  const std::vector<Scenario> scenarios = expand_scenarios(spec);
  const std::string fingerprint = spec_fingerprint(spec);

  if (!options.trace_dir.empty()) {
    std::filesystem::create_directories(options.trace_dir);
  }
  if (!options.trace_event_dir.empty()) {
    std::filesystem::create_directories(options.trace_event_dir);
  }

  SweepReport report;
  report.outcomes.resize(scenarios.size());
  std::vector<char> completed(scenarios.size(), 0);

  // Scenarios that agree on (dataset, n, p, seed) share one immutable
  // copy through the provider; budget 0 reverts to per-scenario
  // regeneration.
  data::DatasetProvider local_provider(options.cache_budget);
  data::DatasetProvider* provider =
      options.provider ? options.provider : &local_provider;
  const bool use_cache = options.provider != nullptr || options.cache_budget > 0;

  bool journal_needs_newline = false;
  if (options.resume && !options.journal_path.empty() &&
      std::filesystem::exists(options.journal_path)) {
    std::ifstream in(options.journal_path);
    if (!in) {
      throw RuntimeError("cannot open sweep journal: " + options.journal_path);
    }
    std::string line;
    // A kill inside the truncate-then-write-header window leaves an
    // empty or torn header; nothing restorable was lost, so treat that
    // as a fresh start rather than dead-ending --resume.
    const bool has_header =
        static_cast<bool>(std::getline(in, line)) &&
        line.find_last_not_of(" \t\r") != std::string::npos &&
        line[line.find_last_not_of(" \t\r")] == '}';
    if (has_header) {
      std::string kind, journal_fp;
      std::int64_t journal_fp_scenarios = -1, journal_version = -1;
      NADMM_CHECK(json_get_string(line, "kind", kind) && kind == kJournalKind,
                  "sweep journal " + options.journal_path +
                      " has an unrecognized header");
      NADMM_CHECK(json_get_string(line, "fingerprint", journal_fp) &&
                      json_get_int(line, "scenarios", journal_fp_scenarios) &&
                      json_get_int(line, "version", journal_version),
                  "sweep journal " + options.journal_path +
                      " has a malformed header");
      NADMM_CHECK(journal_version == kJournalVersion,
                  "sweep journal " + options.journal_path +
                      " has unsupported version " +
                      std::to_string(journal_version) +
                      " (expected " + std::to_string(kJournalVersion) +
                      ") — rerun without --resume to start fresh");
      NADMM_CHECK(journal_fp == fingerprint &&
                      journal_fp_scenarios ==
                          static_cast<std::int64_t>(scenarios.size()),
                  "sweep journal " + options.journal_path +
                      " was written for a different grid spec (fingerprint " +
                      journal_fp + ", expected " + fingerprint +
                      ") — rerun without --resume to start fresh");
      bool ends_with_newline = true;
      while (std::getline(in, line)) {
        ends_with_newline = !in.eof() || line.empty();
        restore_outcome_line(line, scenarios, report.outcomes, completed);
      }
      for (const char c : completed) report.resumed += c ? 1 : 0;
      journal_needs_newline = !ends_with_newline;
    }
  }

  std::ofstream journal;
  if (!options.journal_path.empty()) {
    const bool append = report.resumed > 0;
    journal.open(options.journal_path,
                 append ? std::ios::app : std::ios::trunc);
    if (!journal) {
      throw RuntimeError("cannot open sweep journal for writing: " +
                         options.journal_path);
    }
    if (!append) {
      journal << journal_header_line(fingerprint, scenarios.size()) << '\n';
      journal.flush();
    } else if (journal_needs_newline) {
      // A kill mid-write can leave a torn final line; terminate it so the
      // next appended record starts on its own line.
      journal << '\n';
      journal.flush();
    }
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> claimed{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;
  const std::size_t to_execute = scenarios.size() - report.resumed;

  // Serving scenarios share one trained model per (solver, dataset):
  // training runs under the base cluster config, so the grid's
  // device/network axes rate only the serving plane, never the model.
  std::mutex model_mutex;
  std::map<std::string, std::shared_ptr<const serve::SavedModel>> model_cache;

  auto serve_model_for = [&](const Scenario& scenario,
                             const ExperimentConfig& config) {
    const std::string key = spec.serve_model.empty()
                                ? scenario.solver + "|" + config.dataset
                                : "@" + spec.serve_model;
    const std::scoped_lock lock(model_mutex);
    const auto it = model_cache.find(key);
    if (it != model_cache.end()) return it->second;
    std::shared_ptr<const serve::SavedModel> model;
    if (!spec.serve_model.empty()) {
      model = std::make_shared<serve::SavedModel>(
          serve::load_model(spec.serve_model));
    } else {
      ExperimentConfig train_config = config;
      train_config.device = spec.base.device;
      train_config.network = spec.base.network;
      const data::DatasetKey dkey = dataset_key(train_config);
      std::shared_ptr<const data::TrainTest> full;
      data::TrainTest full_owned;
      if (use_cache) {
        full = provider->get(dkey);
      } else {
        full_owned = data::generate_dataset(dkey);
      }
      const data::TrainTest& tt = use_cache ? *full : full_owned;
      comm::SimCluster cluster = make_cluster(train_config);
      const core::RunResult trained = SolverRegistry::instance().run(
          scenario.solver, cluster,
          shard_for_solver(scenario.solver, tt.train, &tt.test, train_config),
          train_config);
      auto m = std::make_shared<serve::SavedModel>();
      m->objective = "softmax";
      m->solver = scenario.solver;
      m->dataset = train_config.dataset;
      m->num_features = tt.train.num_features();
      m->num_classes = tt.train.num_classes();
      m->lambda = train_config.lambda;
      m->x = trained.x;
      model = m;
    }
    model_cache.emplace(key, model);
    return model;
  };

  auto run_one = [&](const Scenario& scenario) {
    ScenarioOutcome outcome;
    outcome.scenario = scenario;
    // One tracer per scenario: spans stamp virtual time only, so the
    // exported file is byte-identical no matter how many scheduler
    // threads ran the grid. The scope is thread-local, so concurrent
    // scenarios on other workers never share a tracer.
    std::unique_ptr<telem::Tracer> tracer;
    std::optional<telem::TracerScope> tracer_scope;
    if (!options.trace_event_dir.empty()) {
      tracer = std::make_unique<telem::Tracer>(scenario.tag());
      tracer_scope.emplace(*tracer);
    }
    const auto write_trace = [&] {
      if (!tracer || !outcome.ok) return;
      tracer_scope.reset();  // detach before export
      tracer->write_chrome_trace_file(options.trace_event_dir + "/" +
                                      scenario.tag() + ".trace.json");
    };
    try {
      ExperimentConfig config = scenario.config;
      if (options.deterministic) config.omp_threads = 1;
      if (scenario.serving) {
        const auto model = serve_model_for(scenario, config);
        // The request pool is the test split of the scenario's dataset.
        const data::DatasetKey dkey = dataset_key(config);
        std::shared_ptr<const data::TrainTest> full;
        data::TrainTest full_owned;
        if (use_cache) {
          full = provider->get(dkey);
        } else {
          full_owned = data::generate_dataset(dkey);
        }
        const data::TrainTest& tt = use_cache ? *full : full_owned;
        NADMM_CHECK(!tt.test.empty(),
                    "serving needs a non-empty test split (n_test > 0)");
        serve::ServeConfig sc;
        sc.arrival = scenario.arrival;
        sc.batch = scenario.batch;
        sc.requests = spec.serve_requests;
        sc.seed = config.seed;
        sc.device = config.device;
        sc.network = config.network;
        sc.dispatch_overhead_s = spec.dispatch_overhead_s;
        sc.omp_threads = config.omp_threads;
        const serve::ServeResult sr = serve::simulate(*model, tt.test, sc);
        outcome.serve_requests = sr.requests;
        outcome.serve_batches = sr.batches;
        outcome.throughput_rps = sr.throughput_rps;
        outcome.mean_batch = sr.mean_batch;
        outcome.p50_latency_s = sr.p50_latency_s;
        outcome.p99_latency_s = sr.p99_latency_s;
        outcome.p999_latency_s = sr.p999_latency_s;
        outcome.result.solver = scenario.solver;
        outcome.result.final_test_accuracy = sr.accuracy;
        outcome.result.total_sim_seconds = sr.total_sim_seconds;
        outcome.ok = true;
        write_trace();
        return outcome;
      }
      const SolverInfo& info =
          SolverRegistry::instance().info(scenario.solver);
      const data::DatasetKey key = dataset_key(config);
      // Distributed solvers run on pre-sharded data: zero-copy views of
      // the cached full dataset, or — for `libsvm:` sources — per-rank
      // shards streamed straight from the file so the full matrix never
      // materializes. Single-node solvers need the full splits, so they
      // keep the materialized path (a one-part plan).
      std::shared_ptr<const data::ShardedDataset> shared;
      data::ShardedDataset owned;
      if (info.kind == SolverKind::kSingleNode) {
        // Materialize (streamed shards carry no full matrix) and wrap in
        // a one-part plan to keep the uniform registry signature.
        std::shared_ptr<const data::TrainTest> full;
        data::TrainTest full_owned;
        if (use_cache) {
          full = provider->get(key);
        } else {
          full_owned = data::generate_dataset(key);
        }
        const data::TrainTest& tt = use_cache ? *full : full_owned;
        owned = data::make_sharded(tt.train, &tt.test, data::ShardPlan{});
      } else if (use_cache) {
        shared = provider->get_sharded(key, shard_plan(config));
      } else {
        owned = data::generate_sharded_dataset(key, shard_plan(config));
      }
      const data::ShardedDataset& sharded = shared ? *shared : owned;
      outcome.peak_dataset_bytes = sharded.resident_bytes;
      comm::SimCluster cluster = make_cluster(config);
      outcome.result = SolverRegistry::instance().run(scenario.solver, cluster,
                                                      sharded, config);
      if (!options.trace_dir.empty()) {
        write_trace_csv(outcome.result,
                        options.trace_dir + "/" + scenario.tag() + ".csv");
      }
      outcome.comm_sim_seconds = outcome.result.trace.empty()
                                     ? 0.0
                                     : outcome.result.trace.back()
                                           .comm_sim_seconds;
      outcome.max_wait_seconds = outcome.result.max_wait_seconds();
      outcome.rank_waits = fmt_rank_waits(outcome.result.rank_wait_seconds);
      outcome.staleness_hist =
          fmt_staleness_hist(outcome.result.staleness_hist);
      outcome.ok = true;
      write_trace();
    } catch (const std::exception& e) {
      outcome.ok = false;
      outcome.error = e.what();
    }
    return outcome;
  };

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= scenarios.size()) return;
      if (completed[i]) continue;
      if (options.max_scenarios > 0 &&
          claimed.fetch_add(1) >= options.max_scenarios) {
        return;
      }
      ScenarioOutcome outcome = run_one(scenarios[i]);
      {
        const std::scoped_lock lock(progress_mutex);
        report.outcomes[i] = std::move(outcome);
        ++report.executed;
        if (journal.is_open()) {
          journal << journal_outcome_line(report.outcomes[i]) << '\n';
          journal.flush();
        }
        const std::size_t finished = done.fetch_add(1) + 1;
        if (options.on_scenario_done) {
          options.on_scenario_done(report.outcomes[i], finished, to_execute);
        }
      }
    }
  };

  const std::size_t pool_size = std::min<std::size_t>(
      static_cast<std::size_t>(options.jobs), to_execute > 0 ? to_execute : 1);
  if (pool_size <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(pool_size);
    for (std::size_t t = 0; t < pool_size; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  report.cache = provider->stats();
  return report;
}

}  // namespace nadmm::runner
