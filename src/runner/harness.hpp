// Experiment harness: wires dataset → simulated cluster → solver and
// emits traces. All bench binaries (one per paper table/figure) and the
// examples are thin drivers over this header.
#pragma once

#include <cstdint>
#include <string>

#include <vector>

#include "baselines/dane.hpp"
#include "baselines/disco.hpp"
#include "baselines/giant.hpp"
#include "baselines/sync_sgd.hpp"
#include "comm/cluster.hpp"
#include "core/newton_admm.hpp"
#include "core/trace.hpp"
#include "data/generators.hpp"
#include "data/provider.hpp"
#include "solvers/async_admm.hpp"

namespace nadmm::runner {

/// Shared experiment knobs (paper defaults).
struct ExperimentConfig {
  std::string dataset = "mnist";  ///< higgs|mnist|cifar|e18|blobs|libsvm:<path>
  std::size_t n_train = 8'000;
  std::size_t n_test = 2'000;
  std::size_t e18_features = 1'400;  ///< scaled-down E18 dimension
  std::uint64_t seed = 42;
  int workers = 8;
  /// One la::device_from_string spec, or a ','/'+'-separated per-rank
  /// list ("p100+cpu+cpu"): entry i rates rank i, cycling when the list
  /// is shorter than `workers` (sweep axis values use '+', commas being
  /// the axis separator).
  std::string device = "p100";
  std::string network = "ib100";  ///< comm::network_from_string preset
  /// Straggler injection: "none", or "<rank>:<slowdown>" — divide that
  /// rank's flop rate and bandwidth by `slowdown` (e.g. "1:4" makes rank
  /// 1 four times slower).
  std::string straggler = "none";
  /// Shard planning across ranks: contiguous (zero-copy views, the
  /// paper's pre-sharded setup), strided (label balance; gather copies),
  /// or weighted (contiguous views sized by each rank's DeviceModel
  /// gflops — fast ranks of a heterogeneous cluster get more rows).
  std::string partition = "contiguous";
  double lambda = 1e-5;           ///< paper default
  std::string penalty = "sps";    ///< ADMM rule: fixed|rb|sps
  double rho0 = 1.0;              ///< initial ADMM penalty ρ₀
  int iterations = 100;           ///< paper runs 100 epochs
  int cg_iterations = 10;         ///< paper: 10
  double cg_tol = 1e-4;           ///< paper: 1e-4
  int line_search_iterations = 10;///< paper: 10
  int local_newton_steps = 1;     ///< Newton steps per ADMM epoch
  double objective_target = 0.0;  ///< early stop at F ≤ target (≤0: off)
  bool evaluate_accuracy = true;  ///< per-epoch test accuracy in the trace
  std::size_t sgd_batch = 128;    ///< sync-sgd minibatch size (paper: 128)
  double sgd_step = 0.1;          ///< sync-sgd step size
  int dane_epochs = 10;           ///< InexactDANE/AIDE epoch cap (paper: 10)
  int svrg_outer = 10;            ///< DANE inner SVRG budget
  double fo_step = 0.0;           ///< single-node first-order step (0: rule default)
  double gradient_tol = -1.0;     ///< single-node ‖g‖ stop (<0: solver default)
  int omp_threads = 0;            ///< OpenMP threads per rank (0 = auto)
  int staleness = 4;              ///< async-admm bounded-staleness τ (rounds)
  int sync_every = 4;             ///< stale-sync-admm barrier period k
  /// Link-fault injection for the async engine: "none", or a
  /// comma-separated "drop:p,dup:p,reorder:p,corrupt:p" spec
  /// (comm::FaultSpec::parse). The fault RNG is seeded from `seed`.
  std::string fault = "none";
  /// Elastic-membership kill: "none", or "<rank>:<epoch>" — kill that
  /// rank after the given epoch and rejoin it from the last checkpoint.
  std::string kill = "none";
  /// Coordinator checkpoint period in applied updates (0 = off; must be
  /// > 0 when `kill` is set).
  int checkpoint_every = 0;
};

/// The content-defining parameters of the config's dataset — scenarios
/// that agree on this key share one cached copy via DatasetProvider.
data::DatasetKey dataset_key(const ExperimentConfig& config);

/// Generate (deterministically) the dataset named by the config. One-shot
/// path with no caching; sweeps go through a DatasetProvider instead.
data::TrainTest make_data(const ExperimentConfig& config);

/// Per-rank device models from the config: the (possibly heterogeneous)
/// `device` list cycled over `workers` ranks, with the `straggler`
/// slowdown applied. Throws InvalidArgument on malformed specs.
std::vector<la::DeviceModel> cluster_devices(const ExperimentConfig& config);

/// The shard plan the config names: `partition` mode over `workers`
/// ranks; weighted mode takes each rank's effective gflops (straggler
/// slowdown included) from cluster_devices as its weight.
data::ShardPlan shard_plan(const ExperimentConfig& config);

/// Shard a materialized train/test pair under the config's plan — one
/// RankData {train_view, test_view} per rank, zero-copy for
/// contiguous/weighted plans.
data::ShardedDataset make_sharded_data(const ExperimentConfig& config,
                                       const data::TrainTest& tt);

/// Construct the simulated cluster named by the config.
comm::SimCluster make_cluster(const ExperimentConfig& config);

/// Option builders pre-filled from the shared config.
core::NewtonAdmmOptions admm_options(const ExperimentConfig& config);
solvers::AsyncAdmmOptions async_options(const ExperimentConfig& config,
                                        bool stale_sync);
baselines::GiantOptions giant_options(const ExperimentConfig& config);
baselines::SyncSgdOptions sgd_options(const ExperimentConfig& config);
baselines::DaneOptions dane_options(const ExperimentConfig& config);
baselines::DiscoOptions disco_options(const ExperimentConfig& config);

/// Shard `train`/`test` the way `solver` expects: the config's partition
/// plan for distributed solvers, a one-part plan (materialized full
/// splits) for single-node solvers. This is the explicit form of what
/// the deprecated (train, test) entry points did implicitly.
data::ShardedDataset shard_for_solver(const std::string& solver,
                                      const data::Dataset& train,
                                      const data::Dataset* test,
                                      const ExperimentConfig& config);

/// Dispatch by solver name through the SolverRegistry (see
/// runner/registry.hpp for the full name list, including the
/// single-node solvers). Shards `train`/`test` under the config's
/// partition plan first.
[[deprecated(
    "shard explicitly: run_solver(solver, cluster, shard_for_solver(solver, "
    "train, test, config), config) — this overload re-plans shards per call "
    "and hides the data layout")]]
core::RunResult run_solver(const std::string& solver,
                           comm::SimCluster& cluster,
                           const data::Dataset& train,
                           const data::Dataset* test,
                           const ExperimentConfig& config);

/// Pre-sharded dispatch: run on data the caller already planned (e.g.
/// streamed per-rank libsvm shards from DatasetProvider::get_sharded).
core::RunResult run_solver(const std::string& solver,
                           comm::SimCluster& cluster,
                           const data::ShardedDataset& data,
                           const ExperimentConfig& config);

/// Write the full per-iteration trace as CSV (columns match
/// core::IterationStats).
void write_trace_csv(const core::RunResult& result, const std::string& path);

/// Print a short console summary of a run (first/middle/last iterations).
void print_trace_summary(const core::RunResult& result, int max_rows = 12);

}  // namespace nadmm::runner
