// Experiment harness: wires dataset → simulated cluster → solver and
// emits traces. All bench binaries (one per paper table/figure) and the
// examples are thin drivers over this header.
#pragma once

#include <cstdint>
#include <string>

#include "baselines/dane.hpp"
#include "baselines/disco.hpp"
#include "baselines/giant.hpp"
#include "baselines/sync_sgd.hpp"
#include "comm/cluster.hpp"
#include "core/newton_admm.hpp"
#include "core/trace.hpp"
#include "data/generators.hpp"

namespace nadmm::runner {

/// Shared experiment knobs (paper defaults).
struct ExperimentConfig {
  std::string dataset = "mnist";  ///< higgs|mnist|cifar|e18|blobs
  std::size_t n_train = 8'000;
  std::size_t n_test = 2'000;
  std::size_t e18_features = 1'400;  ///< scaled-down E18 dimension
  std::uint64_t seed = 42;
  int workers = 8;
  std::string device = "p100";    ///< la::device_from_string spec
  std::string network = "ib100";  ///< comm::network_from_string preset
  double lambda = 1e-5;           ///< paper default
  int iterations = 100;           ///< paper runs 100 epochs
  int cg_iterations = 10;         ///< paper: 10
  double cg_tol = 1e-4;           ///< paper: 1e-4
  int line_search_iterations = 10;///< paper: 10
};

/// Generate (deterministically) the dataset named by the config.
data::TrainTest make_data(const ExperimentConfig& config);

/// Construct the simulated cluster named by the config.
comm::SimCluster make_cluster(const ExperimentConfig& config);

/// Option builders pre-filled from the shared config.
core::NewtonAdmmOptions admm_options(const ExperimentConfig& config);
baselines::GiantOptions giant_options(const ExperimentConfig& config);
baselines::SyncSgdOptions sgd_options(const ExperimentConfig& config);
baselines::DaneOptions dane_options(const ExperimentConfig& config);
baselines::DiscoOptions disco_options(const ExperimentConfig& config);

/// Dispatch by solver name: newton-admm | giant | sync-sgd | inexact-dane
/// | aide | disco.
core::RunResult run_solver(const std::string& solver,
                           comm::SimCluster& cluster,
                           const data::Dataset& train,
                           const data::Dataset* test,
                           const ExperimentConfig& config);

/// Write the full per-iteration trace as CSV (columns match
/// core::IterationStats).
void write_trace_csv(const core::RunResult& result, const std::string& path);

/// Print a short console summary of a run (first/middle/last iterations).
void print_trace_summary(const core::RunResult& result, int max_rows = 12);

}  // namespace nadmm::runner
