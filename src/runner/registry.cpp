#include "runner/registry.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <utility>

#include "la/flops.hpp"
#include "model/metrics.hpp"
#include "model/softmax.hpp"
#include "solvers/first_order.hpp"
#include "solvers/newton.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace nadmm::runner {

namespace {

/// Run one of the single-node reference optimizers on the full training
/// set. The cluster is unused; simulated time is derived from the flops
/// the run executed on the calling thread under the configured device
/// rating, so sweep results stay machine-independent and deterministic.
core::RunResult run_single_node(const std::string& name,
                                const data::ShardedDataset& data,
                                const ExperimentConfig& config) {
  NADMM_CHECK(data.has_full(),
              "single-node solver '" + name +
                  "' needs the materialized dataset; streamed libsvm shards "
                  "have no full matrix (run it through the harness, which "
                  "materializes for single-node solvers)");
  const data::Dataset& train = data.full_train;
  const data::Dataset* test = data.full_test.empty() ? nullptr : &data.full_test;
  // Honour the same per-rank thread pin the cluster applies: the sweep
  // scheduler relies on it for byte-stable reports and to keep
  // jobs × cores from oversubscribing the host.
#ifdef _OPENMP
  if (config.omp_threads > 0) omp_set_num_threads(config.omp_threads);
#endif
  model::SoftmaxObjective objective(train, config.lambda);
  const la::DeviceModel device = la::device_from_string(config.device);
  std::vector<double> x0(objective.dim(), 0.0);

  WallTimer timer;
  flops::Scope scope;
  core::RunResult r;
  r.solver = name;

  if (name == "newton-cg") {
    solvers::NewtonOptions o;
    o.max_iterations = config.iterations;
    o.cg.max_iterations = config.cg_iterations;
    o.cg.rel_tol = config.cg_tol;
    o.line_search.max_iterations = config.line_search_iterations;
    if (config.gradient_tol >= 0.0) o.gradient_tol = config.gradient_tol;
    o.record_trace = true;
    auto nr = solvers::newton_cg(objective, std::move(x0), o);
    r.x = std::move(nr.x);
    r.iterations = nr.iterations;
    r.final_objective = nr.final_value;
    r.trace.reserve(nr.trace.size());
    for (std::size_t i = 0; i < nr.trace.size(); ++i) {
      core::IterationStats it;
      it.iteration = static_cast<int>(i) + 1;
      it.objective = nr.trace[i].value;
      r.trace.push_back(it);
    }
  } else {
    solvers::FirstOrderOptions o;
    o.rule = solvers::first_order_rule_from_string(name);
    o.max_iterations = config.iterations;
    if (config.fo_step > 0.0) o.step_size = config.fo_step;
    if (config.gradient_tol >= 0.0) o.gradient_tol = config.gradient_tol;
    o.record_trace = true;
    auto fr = solvers::first_order_minimize(objective, {}, std::move(x0), o);
    r.x = std::move(fr.x);
    r.iterations = fr.iterations;
    r.final_objective = fr.final_value;
    r.trace.reserve(fr.value_trace.size());
    for (std::size_t i = 0; i < fr.value_trace.size(); ++i) {
      core::IterationStats it;
      it.iteration = static_cast<int>(i) + 1;
      it.objective = fr.value_trace[i];
      r.trace.push_back(it);
    }
  }

  r.total_sim_seconds = device.seconds_for(scope.elapsed(), scope.elapsed_bytes());
  r.total_wall_seconds = timer.seconds();
  if (r.iterations > 0) {
    r.avg_epoch_sim_seconds = r.total_sim_seconds / r.iterations;
  }
  if (test != nullptr && !test->empty()) {
    r.final_test_accuracy = model::accuracy(*test, r.x);
  }
  if (!r.trace.empty()) {
    r.trace.back().sim_seconds = r.total_sim_seconds;
    r.trace.back().wall_seconds = r.total_wall_seconds;
    r.trace.back().test_accuracy = r.final_test_accuracy;
  }
  return r;
}

SolverFactory single_node_factory(std::string name) {
  return [name = std::move(name)](comm::SimCluster& /*cluster*/,
                                  const data::ShardedDataset& data,
                                  const ExperimentConfig& config) {
    return run_single_node(name, data, config);
  };
}

}  // namespace

std::vector<KnobInfo> SolverInfo::knobs() const {
  std::vector<KnobInfo> out;
  out.reserve(knob_names.size());
  for (const auto& knob : knob_names) out.push_back(describe_knob(knob));
  return out;
}

std::string SolverInfo::knobs_csv() const {
  std::string out;
  for (const auto& knob : knob_names) {
    if (!out.empty()) out += ',';
    out += knob;
  }
  return out;
}

std::string to_string(SolverKind kind) {
  return kind == SolverKind::kDistributed ? "distributed" : "single-node";
}

std::string to_string(CommClass comm_class) {
  switch (comm_class) {
    case CommClass::kSynchronous: return "sync";
    case CommClass::kAsynchronous: return "async";
    case CommClass::kNone: break;
  }
  return "-";
}

SolverRegistry& SolverRegistry::instance() {
  static SolverRegistry registry;
  return registry;
}

SolverRegistry::SolverRegistry() { register_builtins(); }

void SolverRegistry::add(SolverInfo info, SolverFactory factory) {
  NADMM_CHECK(!info.name.empty(), "solver name must not be empty");
  NADMM_CHECK(static_cast<bool>(factory), "solver factory must be callable");
  const std::string name = info.name;  // copy before moving `info`
  const auto [it, inserted] = solvers_.emplace(
      name, std::make_pair(std::move(info), std::move(factory)));
  static_cast<void>(it);
  if (!inserted) {
    throw InvalidArgument("solver '" + name + "' is already registered");
  }
}

bool SolverRegistry::contains(const std::string& name) const {
  return solvers_.count(name) != 0;
}

const SolverInfo& SolverRegistry::info(const std::string& name) const {
  const auto it = solvers_.find(name);
  if (it == solvers_.end()) {
    std::string known;
    for (const auto& [n, entry] : solvers_) {
      static_cast<void>(entry);
      if (!known.empty()) known += '|';
      known += n;
    }
    throw InvalidArgument("unknown solver '" + name + "' (expected " + known +
                          ")");
  }
  return it->second.first;
}

std::vector<SolverInfo> SolverRegistry::list() const {
  std::vector<SolverInfo> out;
  out.reserve(solvers_.size());
  for (const auto& [name, entry] : solvers_) {
    static_cast<void>(name);
    out.push_back(entry.first);
  }
  return out;  // std::map iteration is already name-sorted
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(solvers_.size());
  for (const auto& [name, entry] : solvers_) {
    static_cast<void>(entry);
    out.push_back(name);
  }
  return out;
}

core::RunResult SolverRegistry::run(const std::string& name,
                                    comm::SimCluster& cluster,
                                    const data::ShardedDataset& data,
                                    const ExperimentConfig& config) const {
  static_cast<void>(info(name));  // throws with the known names when unknown
  return solvers_.at(name).second(cluster, data, config);
}

// The overload itself is deprecated; its definition (and the migration
// helper it delegates to) must still compile warning-free under
// NADMM_WERROR.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
core::RunResult SolverRegistry::run(const std::string& name,
                                    comm::SimCluster& cluster,
                                    const data::Dataset& train,
                                    const data::Dataset* test,
                                    const ExperimentConfig& config) const {
  return run(name, cluster, shard_for_solver(name, train, test, config),
             config);
}
#pragma GCC diagnostic pop

std::string registry_json() {
  const auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
      switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += ch; break;
      }
    }
    return out;
  };
  std::string json = "{\n  \"solvers\": [\n";
  const auto solvers = SolverRegistry::instance().list();
  for (std::size_t i = 0; i < solvers.size(); ++i) {
    const auto& s = solvers[i];
    json += "    {\"name\": \"" + escape(s.name) + "\", \"kind\": \"" +
            to_string(s.kind) + "\", \"class\": \"" +
            to_string(s.comm_class) + "\", \"description\": \"" +
            escape(s.description) + "\", \"knobs\": [";
    const auto knobs = s.knobs();
    for (std::size_t k = 0; k < knobs.size(); ++k) {
      json += std::string(k == 0 ? "" : ", ") + "{\"name\": \"" +
              escape(knobs[k].name) + "\", \"type\": \"" + knobs[k].type +
              "\", \"default\": \"" + escape(knobs[k].default_value) +
              "\", \"description\": \"" + escape(knobs[k].description) +
              "\"}";
    }
    json += std::string("]}") + (i + 1 < solvers.size() ? "," : "") + "\n";
  }
  json += "  ]\n}\n";
  return json;
}

void SolverRegistry::register_builtins() {
  using Knobs = std::vector<std::string>;
  const auto with = [](Knobs base, const Knobs& extra) {
    base.insert(base.end(), extra.begin(), extra.end());
    return base;
  };
  // Every distributed solver runs on a cluster built by make_cluster, so
  // the heterogeneity knobs apply to all of them.
  const Knobs cluster_knobs = {"devices", "straggler", "partition"};
  const Knobs newton_knobs =
      with({"penalty", "rho0", "cg-iterations", "cg-tol", "line-search",
            "objective-target"},
           cluster_knobs);
  add({"newton-admm", SolverKind::kDistributed,
       "distributed Newton-CG with ADMM consensus (the paper's method)",
       CommClass::kSynchronous, newton_knobs},
      [](comm::SimCluster& cluster, const data::ShardedDataset& data,
         const ExperimentConfig& config) {
        return core::newton_admm(cluster, data, admm_options(config));
      });
  add({"async-admm", SolverKind::kDistributed,
       "stale-consensus Newton-ADMM: coordinator merges updates on arrival",
       CommClass::kAsynchronous,
       with(newton_knobs,
            {"staleness", "fault", "kill", "checkpoint-every"})},
      [](comm::SimCluster& cluster, const data::ShardedDataset& data,
         const ExperimentConfig& config) {
        return solvers::async_admm(cluster, data,
                                   async_options(config, /*stale_sync=*/false));
      });
  add({"stale-sync-admm", SolverKind::kDistributed,
       "semi-synchronous Newton-ADMM: barrier every --sync-every rounds",
       CommClass::kAsynchronous,
       with(newton_knobs,
            {"sync-every", "fault", "kill", "checkpoint-every"})},
      [](comm::SimCluster& cluster, const data::ShardedDataset& data,
         const ExperimentConfig& config) {
        return solvers::async_admm(cluster, data,
                                   async_options(config, /*stale_sync=*/true));
      });
  add({"giant", SolverKind::kDistributed,
       "globally improved approximate Newton (Wang et al.)",
       CommClass::kSynchronous,
       with({"cg-iterations", "cg-tol", "line-search",
             "objective-target"},
            cluster_knobs)},
      [](comm::SimCluster& cluster, const data::ShardedDataset& data,
         const ExperimentConfig& config) {
        return baselines::giant(cluster, data, giant_options(config));
      });
  add({"sync-sgd", SolverKind::kDistributed,
       "synchronous minibatch SGD (allreduced mean gradient)",
       CommClass::kSynchronous,
       with({"sgd-batch", "sgd-step"}, cluster_knobs)},
      [](comm::SimCluster& cluster, const data::ShardedDataset& data,
         const ExperimentConfig& config) {
        return baselines::sync_sgd(cluster, data, sgd_options(config));
      });
  add({"inexact-dane", SolverKind::kDistributed,
       "InexactDANE with SVRG inner solves (Reddi et al.)",
       CommClass::kSynchronous,
       with({"dane-epochs", "svrg-outer"}, cluster_knobs)},
      [](comm::SimCluster& cluster, const data::ShardedDataset& data,
         const ExperimentConfig& config) {
        return baselines::inexact_dane(cluster, data, dane_options(config));
      });
  add({"aide", SolverKind::kDistributed,
       "accelerated InexactDANE (catalyst smoothing)",
       CommClass::kSynchronous,
       with({"dane-epochs", "svrg-outer"}, cluster_knobs)},
      [](comm::SimCluster& cluster, const data::ShardedDataset& data,
         const ExperimentConfig& config) {
        auto o = dane_options(config);
        o.accelerate = true;
        return baselines::inexact_dane(cluster, data, o);
      });
  add({"disco", SolverKind::kDistributed,
       "distributed self-concordant optimization (Zhang & Xiao)",
       CommClass::kSynchronous,
       with({"cg-iterations", "cg-tol"}, cluster_knobs)},
      [](comm::SimCluster& cluster, const data::ShardedDataset& data,
         const ExperimentConfig& config) {
        return baselines::disco(cluster, data, disco_options(config));
      });

  add({"newton-cg", SolverKind::kSingleNode,
       "single-node inexact Newton-CG (paper Algorithm 1)", CommClass::kNone,
       {"cg-iterations", "cg-tol", "line-search", "gradient-tol"}},
      single_node_factory("newton-cg"));
  add({"gd", SolverKind::kSingleNode, "single-node full-batch gradient descent",
       CommClass::kNone, {"fo-step", "gradient-tol"}},
      single_node_factory("gd"));
  add({"momentum", SolverKind::kSingleNode,
       "single-node heavy-ball momentum", CommClass::kNone,
       {"fo-step", "gradient-tol"}},
      single_node_factory("momentum"));
  add({"adagrad", SolverKind::kSingleNode, "single-node Adagrad",
       CommClass::kNone, {"fo-step", "gradient-tol"}},
      single_node_factory("adagrad"));
  add({"adam", SolverKind::kSingleNode, "single-node Adam", CommClass::kNone,
       {"fo-step", "gradient-tol"}},
      single_node_factory("adam"));
}

}  // namespace nadmm::runner
