// The `nadmm` CLI: one binary for the whole experiment surface.
//
//   nadmm list [--json]            — solvers / datasets / devices / networks
//   nadmm run   --solver=… --dataset=… [knobs] [--save-model=FILE]
//   nadmm serve --model=FILE --arrival=… --batch=… [pool flags]
//   nadmm sweep --spec=FILE | [grid flags] --jobs=N --out=report.csv
//
// Every subcommand builds its flag surface from the shared declarative
// option specs in runner/options.hpp: the spec registers the flags,
// generates `--help` in declaration order, and validates parsed values
// up front (rejections name the offending flag). `run` executes a single
// scenario and prints its trace summary; `serve` replays a synthetic
// request stream against a saved model; `sweep` expands a declarative
// grid — training or serving — and executes it on a worker pool (see
// runner/sweep.hpp — the aggregated report is deterministic across
// --jobs settings).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runner/harness.hpp"
#include "runner/options.hpp"
#include "runner/registry.hpp"
#include "runner/sweep.hpp"
#include "serve/model_io.hpp"
#include "serve/server.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/telemetry.hpp"

namespace {

using namespace nadmm;

void print_usage() {
  std::printf(
      "usage: nadmm <command> [options]\n"
      "\n"
      "commands:\n"
      "  list    show registered solvers, datasets, devices and networks\n"
      "          (--json dumps the registry machine-readably)\n"
      "  run     run one scenario (nadmm run --help)\n"
      "  serve   replay a request stream against a saved model "
      "(nadmm serve --help)\n"
      "  sweep   run a scenario grid on a worker pool (nadmm sweep --help)\n");
}

int cmd_list(int argc, const char* const* argv) {
  CliParser cli("nadmm list — registered solvers and the shared axes");
  cli.add_flag("json", "dump the registry as JSON (knobs carry "
                       "type/default/description)");
  if (!cli.parse(argc, argv)) return 0;
  if (cli.get_flag("json")) {
    std::printf("%s", runner::registry_json().c_str());
    return 0;
  }
  std::printf("solvers:\n");
  // The class and knobs columns come straight from the registry, so this
  // listing cannot drift from what the factories actually read.
  Table solvers({"name", "kind", "class", "knobs", "description"});
  for (const auto& info : runner::SolverRegistry::instance().list()) {
    solvers.add_row({info.name, runner::to_string(info.kind),
                     runner::to_string(info.comm_class), info.knobs_csv(),
                     info.description});
  }
  solvers.print();
  std::printf(
      "\ndatasets:   higgs | mnist | cifar | e18 | blobs (synthetic, "
      "paper-shaped)\n"
      "            libsvm:<path> (streamed from disk as row shards)\n"
      "devices:    p100 | cpu | <gflops>[:<gbytes_per_s>], per-rank lists\n"
      "            with ','/'+' (\"p100+cpu\" cycles over the ranks)\n"
      "networks:   ib100 | eth10 | eth1 | wan | ideal\n"
      "penalties:  fixed | rb | sps\n"
      "stragglers: none | <rank>:<slowdown> (e.g. 1:4 — rank 1 is 4x "
      "slower)\n"
      "partitions: contiguous (zero-copy views) | strided (label balance) "
      "| weighted\n"
      "            (shard sizes follow per-rank device gflops; "
      "libsvm: sources\n"
      "            stream straight into the per-rank shards)\n"
      "arrivals:   poisson[:<rate>] | diurnal[:<mean>[:<amp>[:<period>]]]\n"
      "            | bursty[:<base>[:<burst>[:<period>[:<duty>]]]]\n"
      "batching:   immediate | size:<B> | deadline:<B>:<seconds>\n");
  return 0;
}

runner::ExperimentConfig config_from_cli(const CliParser& cli) {
  runner::ExperimentConfig c;
  c.dataset = cli.get_string("dataset");
  c.n_train = static_cast<std::size_t>(cli.get_int("n-train"));
  c.n_test = static_cast<std::size_t>(cli.get_int("n-test"));
  c.e18_features = static_cast<std::size_t>(cli.get_int("e18-features"));
  c.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  c.workers = static_cast<int>(cli.get_int("workers"));
  c.device = cli.get_string("devices").empty() ? cli.get_string("device")
                                               : cli.get_string("devices");
  c.network = cli.get_string("network");
  c.penalty = cli.get_string("penalty");
  c.lambda = cli.get_double("lambda");
  c.rho0 = cli.get_double("rho0");
  c.straggler = cli.get_string("straggler");
  c.partition = cli.get_string("partition");
  c.iterations = static_cast<int>(cli.get_int("iterations"));
  c.cg_iterations = static_cast<int>(cli.get_int("cg-iterations"));
  c.cg_tol = cli.get_double("cg-tol");
  c.line_search_iterations = static_cast<int>(cli.get_int("line-search"));
  c.objective_target = cli.get_double("objective-target");
  c.staleness = static_cast<int>(cli.get_int("staleness"));
  c.sync_every = static_cast<int>(cli.get_int("sync-every"));
  c.fault = cli.get_string("fault");
  c.kill = cli.get_string("kill");
  c.checkpoint_every = static_cast<int>(cli.get_int("checkpoint-every"));
  c.sgd_batch = static_cast<std::size_t>(cli.get_int("sgd-batch"));
  c.sgd_step = cli.get_double("sgd-step");
  c.dane_epochs = static_cast<int>(cli.get_int("dane-epochs"));
  c.svrg_outer = static_cast<int>(cli.get_int("svrg-outer"));
  c.fo_step = cli.get_double("fo-step");
  c.gradient_tol = cli.get_double("gradient-tol");
  c.omp_threads = static_cast<int>(cli.get_int("omp-threads"));
  return c;
}

int cmd_run(int argc, const char* const* argv) {
  CliParser cli("nadmm run — execute one scenario and print its trace");
  runner::OptionSet opts;
  opts.add_string("solver", "newton-admm", "solver name (see `nadmm list`)",
                  runner::v_solver());
  opts.extend(runner::scenario_options());
  opts.add_string("trace-csv", "", "if set, write the full trace CSV here");
  opts.add_string("trace-out", "",
                  "if set, write a Chrome trace_event JSON of the run's "
                  "telemetry spans here (open in Perfetto / chrome://tracing)");
  opts.add_flag("trace-ascii", "print an ASCII per-rank timeline after "
                               "the run");
  opts.add_string("save-model", "",
                  "if set, save the trained model here (for `nadmm serve`)");
  opts.register_into(cli);
  if (!cli.parse(argc, argv)) return 0;
  opts.validate(cli);

  const std::string solver = cli.get_string("solver");
  const auto config = config_from_cli(cli);
  const auto& info = runner::SolverRegistry::instance().info(solver);

  const auto tt = runner::make_data(config);
  std::printf("scenario: solver=%s (%s) dataset=%s n=%zu p=%zu C=%d "
              "workers=%d device=%s network=%s penalty=%s lambda=%g\n\n",
              solver.c_str(), runner::to_string(info.kind).c_str(),
              config.dataset.c_str(), tt.train.num_samples(),
              tt.train.num_features(), tt.train.num_classes(), config.workers,
              config.device.c_str(), config.network.c_str(),
              config.penalty.c_str(), config.lambda);

  // Telemetry attaches per thread; the async engine binds the per-rank
  // tracks/clocks itself once a tracer is current.
  const std::string trace_out = cli.get_string("trace-out");
  const bool trace_ascii = cli.get_flag("trace-ascii");
  std::unique_ptr<telem::Tracer> tracer;
  std::optional<telem::TracerScope> tracer_scope;
  if (!trace_out.empty() || trace_ascii) {
    tracer = std::make_unique<telem::Tracer>(solver + "/" + config.dataset);
    tracer_scope.emplace(*tracer);
  }

  auto cluster = runner::make_cluster(config);
  const auto result = runner::run_solver(
      solver, cluster,
      runner::shard_for_solver(solver, tt.train, &tt.test, config), config);
  tracer_scope.reset();
  runner::print_trace_summary(result);

  if (tracer) {
    if (!trace_out.empty()) {
      tracer->write_chrome_trace_file(trace_out);
      std::printf("\ntelemetry trace written to %s (%zu events)\n",
                  trace_out.c_str(), tracer->event_count());
    }
    if (trace_ascii) {
      std::printf("\n%s", tracer->ascii_timeline().c_str());
    }
  }

  const std::string trace_csv = cli.get_string("trace-csv");
  if (!trace_csv.empty()) {
    runner::write_trace_csv(result, trace_csv);
    std::printf("\ntrace written to %s\n", trace_csv.c_str());
  }
  const std::string model_path = cli.get_string("save-model");
  if (!model_path.empty()) {
    serve::SavedModel model;
    model.objective = "softmax";
    model.solver = solver;
    model.dataset = config.dataset;
    model.num_features = tt.train.num_features();
    model.num_classes = tt.train.num_classes();
    model.lambda = config.lambda;
    model.x = result.x;
    serve::save_model(model, model_path);
    std::printf("\nmodel written to %s\n", model_path.c_str());
  }
  return 0;
}

int cmd_serve(int argc, const char* const* argv) {
  CliParser cli(
      "nadmm serve — replay a deterministic synthetic request stream "
      "against a saved model.\nThe request pool is the test split of "
      "--dataset; throughput and latency percentiles come from the "
      "virtual clock, so results are machine-independent.");
  runner::OptionSet opts;
  opts.add_string("model", "",
                  "trained model file (from `nadmm run --save-model`)");
  for (const char* shared :
       {"dataset", "n-train", "n-test", "e18-features", "seed", "device",
        "network", "omp-threads"}) {
    opts.add(*runner::scenario_options().find(shared));
  }
  opts.extend(runner::serving_options());
  opts.add_string("trace-out", "",
                  "if set, write a Chrome trace_event JSON of the serving "
                  "telemetry here");
  opts.register_into(cli);
  if (!cli.parse(argc, argv)) return 0;
  opts.validate(cli);
  NADMM_CHECK(!cli.get_string("model").empty(),
              "--model is required (train one with `nadmm run "
              "--save-model=model.txt`)");

  const auto model = serve::load_model(cli.get_string("model"));
  runner::ExperimentConfig data_config;
  data_config.dataset = cli.get_string("dataset");
  data_config.n_train = static_cast<std::size_t>(cli.get_int("n-train"));
  data_config.n_test = static_cast<std::size_t>(cli.get_int("n-test"));
  data_config.e18_features =
      static_cast<std::size_t>(cli.get_int("e18-features"));
  data_config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto tt = runner::make_data(data_config);
  NADMM_CHECK(!tt.test.empty(),
              "serving needs a non-empty test split (--n-test > 0)");

  serve::ServeConfig config;
  config.arrival = cli.get_string("arrival");
  config.batch = cli.get_string("batch");
  config.requests = static_cast<std::size_t>(cli.get_int("requests"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.device = cli.get_string("device");
  config.network = cli.get_string("network");
  config.dispatch_overhead_s = cli.get_double("dispatch-overhead");
  config.omp_threads = static_cast<int>(cli.get_int("omp-threads"));

  std::printf("serving: model=%s (%s via %s) pool=%s rows=%zu p=%zu "
              "device=%s network=%s\n",
              cli.get_string("model").c_str(), model.objective.c_str(),
              model.solver.empty() ? "-" : model.solver.c_str(),
              data_config.dataset.c_str(), tt.test.num_samples(),
              tt.test.num_features(), config.device.c_str(),
              config.network.c_str());

  const std::string trace_out = cli.get_string("trace-out");
  std::unique_ptr<telem::Tracer> tracer;
  std::optional<telem::TracerScope> tracer_scope;
  if (!trace_out.empty()) {
    tracer = std::make_unique<telem::Tracer>("serve/" + data_config.dataset);
    tracer_scope.emplace(*tracer);
  }
  const auto r = serve::simulate(model, tt.test, config);
  tracer_scope.reset();
  if (tracer) {
    tracer->write_chrome_trace_file(trace_out);
    std::printf("telemetry trace written to %s (%zu events)\n",
                trace_out.c_str(), tracer->event_count());
  }
  std::printf(
      "\narrival=%s batch=%s\n"
      "requests:        %llu in %.6f sim-seconds (%zu batches, mean %.2f, "
      "max %llu, %llu deadline flushes)\n"
      "throughput:      %.1f req/s\n"
      "latency:         mean %.6fs  p50 %.6fs  p99 %.6fs  p999 %.6fs  "
      "max %.6fs\n"
      "served accuracy: %.4f\n"
      "server busy:     %.6fs compute, %.6fs idle\n",
      r.arrival.c_str(), r.batch.c_str(),
      static_cast<unsigned long long>(r.requests), r.total_sim_seconds,
      static_cast<std::size_t>(r.batches), r.mean_batch,
      static_cast<unsigned long long>(r.max_batch_seen),
      static_cast<unsigned long long>(r.deadline_flushes), r.throughput_rps,
      r.mean_latency_s, r.p50_latency_s, r.p99_latency_s, r.p999_latency_s,
      r.max_latency_s, r.accuracy, r.server_compute_seconds,
      r.server_wait_seconds);
  return 0;
}

int cmd_sweep(int argc, const char* const* argv) {
  CliParser cli(
      "nadmm sweep — expand a scenario grid and run it on a worker pool.\n"
      "Grid axes take comma-separated lists; --spec FILE loads `key = value`\n"
      "lines first and inline flags override it. `--mode serving` swaps the\n"
      "train axes for arrival × batch-policy serving scenarios.");
  runner::OptionSet opts;
  opts.add_string("spec", "", "sweep spec file (key = value lines)");
  opts.add_string("mode", "", "grid mode: train|serving (default: train)",
                  [](const std::string& flag, const std::string& value) {
                    if (!value.empty() && value != "train" &&
                        value != "serving") {
                      throw InvalidArgument("--" + flag +
                                            ": invalid value '" + value +
                                            "' (expected train|serving)");
                    }
                  });
  opts.add_string("solvers", "", "e.g. newton-admm,giant,sync-sgd",
                  runner::v_each(',', runner::v_solver()));
  opts.add_string("datasets", "", "e.g. blobs,higgs",
                  runner::v_each(',', runner::v_dataset()));
  opts.add_string("workers", "", "e.g. 4,8,16",
                  runner::v_each(',', runner::v_int_min(1)));
  opts.add_string("devices", "", "e.g. p100,cpu", runner::v_device_list());
  opts.add_string("networks", "", "e.g. ib100,eth10",
                  runner::v_each(',', runner::v_network()));
  opts.add_string("penalties", "", "e.g. sps,fixed",
                  runner::v_each(',', runner::v_one_of({"fixed", "rb",
                                                        "sps"})));
  opts.add_string("lambdas", "", "e.g. 1e-5,1e-4");
  opts.add_string("stragglers", "", "e.g. none,1:4",
                  runner::v_each(',', runner::v_straggler()));
  opts.add_string("partitions", "", "e.g. contiguous,strided,weighted",
                  runner::v_each(',', runner::v_partition()));
  opts.add_string("faults", "",
                  "e.g. none,drop:0.05,drop:0.1+dup:0.02 ('+' joins "
                  "clauses within one entry)",
                  runner::v_each(',', runner::v_fault()));
  opts.add_string("kill", "",
                  "kill/rejoin spec applied to every scenario: <rank>:<epoch> "
                  "(empty: keep spec/default)",
                  [](const std::string& flag, const std::string& value) {
                    if (!value.empty()) runner::v_kill()(flag, value);
                  });
  opts.add_int("checkpoint-every", -1,
               "coordinator checkpoint period in applied updates (-1: keep)");
  opts.add_string("arrivals", "",
                  "serving-mode arrival axis, e.g. poisson:1000,bursty",
                  runner::v_each(',', runner::v_arrival()));
  opts.add_string("batch-policies", "",
                  "serving-mode batch axis, e.g. immediate,deadline:16:0.005",
                  runner::v_each(',', runner::v_batch_policy()));
  opts.add_int("serve-requests", -1, "serving requests per scenario (-1: keep)");
  opts.add_string("serve-model", "",
                  "serve a pre-trained model file instead of training");
  opts.add_double("dispatch-overhead", -1.0,
                  "serving per-dispatch cost in seconds (-1: keep)");
  opts.add_double("scale", -1.0,
                  "paper-scale multiplier for n-train/n-test (-1: keep; "
                  "each scale keeps its own resume journal)");
  opts.add_string("weak-scaling", "",
                  "true|false: n-train is the per-worker shard (empty: keep)",
                  [](const std::string& flag, const std::string& value) {
                    if (!value.empty() && value != "true" &&
                        value != "false") {
                      throw InvalidArgument("--" + flag +
                                            ": invalid value '" + value +
                                            "' (expected true|false)");
                    }
                  });
  opts.add_int("n-train", -1, "training samples (-1: keep spec/default)");
  opts.add_int("n-test", -1, "test samples (-1: keep spec/default)");
  opts.add_int("e18-features", -1, "e18/blobs feature dim (-1: keep)");
  opts.add_int("seed", -1, "generator seed (-1: keep)");
  opts.add_int("iterations", -1, "outer iterations (-1: keep)");
  opts.add_int("staleness", -1, "async-admm staleness bound (-1: keep)");
  opts.add_int("sync-every", -1, "stale-sync barrier period (-1: keep)");
  opts.add_double("objective-target", -1.0,
                  "early-stop objective target (-1: keep)");
  opts.add_int("jobs", 1, "concurrent scenarios", runner::v_int_min(1));
  opts.add_string("out", "sweep.csv", "aggregated CSV report path");
  opts.add_string("json", "", "if set, also write a JSON report here");
  opts.add_string("trace-dir", "",
                  "if set, write per-scenario trace CSVs here");
  opts.add_string("trace-out", "",
                  "if set, write one Chrome trace_event JSON per scenario "
                  "into this directory (<dir>/<tag>.trace.json; "
                  "byte-identical across --jobs)");
  opts.add_flag("resume", "skip scenarios recorded in <out>.journal.jsonl");
  opts.add_string("cache-budget", "2g",
                  "dataset cache byte budget (k/m/g suffixes; 0 disables)",
                  runner::v_byte_size());
  opts.add_int("limit", 0, "stop after N scenarios (0 = all; for CI/testing)",
               runner::v_int_min(0));
  opts.add_flag("quiet", "suppress per-scenario progress lines");
  opts.register_into(cli);
  if (!cli.parse(argc, argv)) return 0;
  opts.validate(cli);

  runner::SweepSpec spec;
  const std::string spec_path = cli.get_string("spec");
  if (!spec_path.empty()) spec = runner::parse_sweep_file(spec_path);

  if (!cli.get_string("mode").empty()) {
    runner::apply_sweep_assignment(spec, "mode", cli.get_string("mode"));
  }
  struct AxisFlag {
    const char* flag;
    const char* key;
  };
  for (const auto& [flag, key] :
       {AxisFlag{"solvers", "solvers"}, AxisFlag{"datasets", "datasets"},
        AxisFlag{"workers", "workers"}, AxisFlag{"devices", "devices"},
        AxisFlag{"networks", "networks"},
        AxisFlag{"penalties", "penalties"}, AxisFlag{"lambdas", "lambdas"},
        AxisFlag{"stragglers", "stragglers"},
        AxisFlag{"partitions", "partitions"},
        AxisFlag{"arrivals", "arrivals"},
        AxisFlag{"batch-policies", "batch_policies"},
        AxisFlag{"serve-model", "serve_model"},
        AxisFlag{"faults", "faults"}}) {
    const std::string value = cli.get_string(flag);
    if (!value.empty()) runner::apply_sweep_assignment(spec, key, value);
  }
  struct ScalarFlag {
    const char* flag;
    const char* key;
  };
  for (const auto& [flag, key] :
       {ScalarFlag{"n-train", "n_train"}, ScalarFlag{"n-test", "n_test"},
        ScalarFlag{"e18-features", "e18_features"}, ScalarFlag{"seed", "seed"},
        ScalarFlag{"iterations", "iterations"},
        ScalarFlag{"staleness", "staleness"},
        ScalarFlag{"sync-every", "sync_every"},
        ScalarFlag{"serve-requests", "serve_requests"}}) {
    const std::int64_t value = cli.get_int(flag);
    if (value >= 0) {
      runner::apply_sweep_assignment(spec, key, std::to_string(value));
    }
  }
  if (!cli.get_string("kill").empty()) {
    runner::apply_sweep_assignment(spec, "kill", cli.get_string("kill"));
  }
  if (cli.get_int("checkpoint-every") >= 0) {
    runner::apply_sweep_assignment(
        spec, "checkpoint_every",
        std::to_string(cli.get_int("checkpoint-every")));
  }
  if (cli.get_double("scale") > 0.0) {
    runner::apply_sweep_assignment(spec, "scale",
                                   std::to_string(cli.get_double("scale")));
  }
  if (!cli.get_string("weak-scaling").empty()) {
    runner::apply_sweep_assignment(spec, "weak_scaling",
                                   cli.get_string("weak-scaling"));
  }
  if (cli.get_double("objective-target") >= 0.0) {
    runner::apply_sweep_assignment(
        spec, "objective_target",
        std::to_string(cli.get_double("objective-target")));
  }
  if (cli.get_double("dispatch-overhead") >= 0.0) {
    runner::apply_sweep_assignment(
        spec, "dispatch_overhead",
        std::to_string(cli.get_double("dispatch-overhead")));
  }

  const std::string out = cli.get_string("out");
  runner::SweepOptions options;
  options.jobs = static_cast<int>(cli.get_int("jobs"));
  options.trace_dir = cli.get_string("trace-dir");
  options.trace_event_dir = cli.get_string("trace-out");
  options.journal_path = out + ".journal.jsonl";
  options.resume = cli.get_flag("resume");
  options.cache_budget =
      runner::parse_byte_size("cache-budget", cli.get_string("cache-budget"));
  options.max_scenarios =
      static_cast<std::size_t>(std::max<std::int64_t>(0, cli.get_int("limit")));
  const bool quiet = cli.get_flag("quiet");
  if (!quiet) {
    options.on_scenario_done = [](const runner::ScenarioOutcome& o,
                                  std::size_t done, std::size_t total) {
      if (!o.ok) {
        std::printf("[%zu/%zu] %s: FAILED — %s\n", done, total,
                    o.scenario.tag().c_str(), o.error.c_str());
      } else if (o.scenario.serving) {
        std::printf("[%zu/%zu] %s: %.1f req/s p99=%.6fs acc=%.4f\n", done,
                    total, o.scenario.tag().c_str(), o.throughput_rps,
                    o.p99_latency_s, o.result.final_test_accuracy);
      } else {
        std::printf("[%zu/%zu] %s: objective=%.6g acc=%.4f sim=%.3fs\n", done,
                    total, o.scenario.tag().c_str(),
                    o.result.final_objective, o.result.final_test_accuracy,
                    o.result.total_sim_seconds);
      }
      std::fflush(stdout);
    };
  }

  const auto scenarios = runner::expand_scenarios(spec);
  std::printf("sweep: %zu scenarios, %d job(s)\n", scenarios.size(),
              options.jobs);
  const auto report = runner::run_sweep(spec, options);
  if (report.resumed > 0) {
    std::printf("resumed: %zu scenario(s) restored from %s\n", report.resumed,
                options.journal_path.c_str());
  }
  if (report.cache.generations > 0 || report.cache.hits > 0) {
    std::printf("dataset cache: %zu generated, %zu shared, %zu evicted\n",
                report.cache.generations, report.cache.hits,
                report.cache.evictions);
  }

  if (!report.complete()) {
    std::printf("\ninterrupted after %zu scenario(s) — rerun with --resume to "
                "continue (journal: %s)\n",
                report.executed, options.journal_path.c_str());
    return 3;
  }

  report.write_csv(out);
  std::printf("\naggregated report: %s (%zu rows, %zu failed)\n", out.c_str(),
              report.outcomes.size(), report.failures());
  const std::string json = cli.get_string("json");
  if (!json.empty()) {
    report.write_json(json);
    std::printf("json report:       %s\n", json.c_str());
  }
  return report.failures() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    if (command == "list") return cmd_list(argc - 1, argv + 1);
    if (command == "run") return cmd_run(argc - 1, argv + 1);
    if (command == "serve") return cmd_serve(argc - 1, argv + 1);
    if (command == "sweep") return cmd_sweep(argc - 1, argv + 1);
    if (command == "--help" || command == "-h" || command == "help") {
      print_usage();
      return 0;
    }
    std::fprintf(stderr, "nadmm: unknown command '%s'\n\n", command.c_str());
    print_usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nadmm: %s\n", e.what());
    return 1;
  }
}
