// The `nadmm` CLI: one binary for the whole experiment surface.
//
//   nadmm list                     — solvers / datasets / devices / networks
//   nadmm run   --solver=… --dataset=… [knobs]
//   nadmm sweep --spec=FILE | [grid flags] --jobs=N --out=report.csv
//
// `run` executes a single scenario and prints its trace summary; `sweep`
// expands a declarative grid and executes it on a worker pool (see
// runner/sweep.hpp — the aggregated report is deterministic across
// --jobs settings).
#include <cstdint>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "runner/harness.hpp"
#include "runner/registry.hpp"
#include "runner/sweep.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

using namespace nadmm;

/// Parse "0", "1500000", "512m", "2g" (case-insensitive k/m/g suffix).
std::size_t parse_byte_size(const std::string& value) {
  NADMM_CHECK(!value.empty(), "--cache-budget must not be empty");
  // stoull would silently wrap "-1" to 2^64−1.
  NADMM_CHECK(value.find('-') == std::string::npos,
              "--cache-budget must be non-negative");
  std::size_t multiplier = 1;
  std::string digits = value;
  switch (digits.back()) {
    case 'k': case 'K': multiplier = 1ull << 10; digits.pop_back(); break;
    case 'm': case 'M': multiplier = 1ull << 20; digits.pop_back(); break;
    case 'g': case 'G': multiplier = 1ull << 30; digits.pop_back(); break;
    default: break;
  }
  try {
    std::size_t pos = 0;
    const auto v = std::stoull(digits, &pos);
    NADMM_CHECK(pos == digits.size(), "trailing characters");
    NADMM_CHECK(v <= SIZE_MAX / multiplier, "size overflows");
    return v * multiplier;
  } catch (const std::exception&) {
    throw InvalidArgument("--cache-budget: malformed size '" + value +
                          "' (expected bytes with optional k/m/g suffix)");
  }
}

void print_usage() {
  std::printf(
      "usage: nadmm <command> [options]\n"
      "\n"
      "commands:\n"
      "  list    show registered solvers, datasets, devices and networks\n"
      "  run     run one scenario (nadmm run --help)\n"
      "  sweep   run a scenario grid on a worker pool (nadmm sweep --help)\n");
}

int cmd_list() {
  std::printf("solvers:\n");
  // The class and knobs columns come straight from the registry, so this
  // listing cannot drift from what the factories actually read.
  Table solvers({"name", "kind", "class", "knobs", "description"});
  for (const auto& info : runner::SolverRegistry::instance().list()) {
    solvers.add_row({info.name, runner::to_string(info.kind),
                     runner::to_string(info.comm_class), info.knobs,
                     info.description});
  }
  solvers.print();
  std::printf(
      "\ndatasets:   higgs | mnist | cifar | e18 | blobs (synthetic, "
      "paper-shaped)\n"
      "            libsvm:<path> (streamed from disk as row shards)\n"
      "devices:    p100 | cpu | <gflops>[:<gbytes_per_s>], per-rank lists\n"
      "            with ','/'+' (\"p100+cpu\" cycles over the ranks)\n"
      "networks:   ib100 | eth10 | eth1 | wan | ideal\n"
      "penalties:  fixed | rb | sps\n"
      "stragglers: none | <rank>:<slowdown> (e.g. 1:4 — rank 1 is 4x "
      "slower)\n"
      "partitions: contiguous (zero-copy views) | strided (label balance) "
      "| weighted\n"
      "            (shard sizes follow per-rank device gflops; "
      "libsvm: sources\n"
      "            stream straight into the per-rank shards)\n");
  return 0;
}

void add_scenario_options(CliParser& cli) {
  cli.add_string("dataset", "blobs", "higgs|mnist|cifar|e18|blobs|libsvm:<path>");
  cli.add_int("n-train", 8000, "training samples");
  cli.add_int("n-test", 2000, "test samples");
  cli.add_int("e18-features", 1400, "feature dim for e18/blobs");
  cli.add_int("seed", 42, "dataset generator seed");
  cli.add_int("workers", 8, "simulated cluster size");
  cli.add_string("device", "p100",
                 "device model (p100|cpu|<gflops>[:<gbytes_per_s>]); a "
                 "','/'+'-separated list rates ranks individually");
  cli.add_string("devices", "",
                 "alias for --device (matches the sweep axis name)");
  cli.add_string("network", "ib100", "network model (ib100|eth10|eth1|wan|ideal)");
  cli.add_string("penalty", "sps", "ADMM penalty rule (fixed|rb|sps)");
  cli.add_double("lambda", 1e-5, "l2 regularization");
  cli.add_string("straggler", "none",
                 "inject a straggler: <rank>:<slowdown> (none disables)");
  cli.add_string("partition", "contiguous",
                 "shard plan across ranks: contiguous|strided|weighted "
                 "(weighted sizes shards by per-rank device gflops)");
  cli.add_int("iterations", 100, "outer iterations (epochs)");
  cli.add_int("cg-iterations", 10, "CG budget per Newton step");
  cli.add_double("cg-tol", 1e-4, "CG relative tolerance");
  cli.add_int("line-search", 10, "line-search iteration budget");
  cli.add_double("objective-target", 0.0,
                 "stop once F(z) <= target (<= 0 disables)");
  cli.add_int("staleness", 4, "async-admm bounded-staleness (rounds)");
  cli.add_int("sync-every", 4, "stale-sync-admm barrier period (rounds)");
  cli.add_int("omp-threads", 0, "OpenMP threads per rank (0 = auto)");
}

runner::ExperimentConfig config_from_cli(const CliParser& cli) {
  runner::ExperimentConfig c;
  c.dataset = cli.get_string("dataset");
  c.n_train = static_cast<std::size_t>(cli.get_int("n-train"));
  c.n_test = static_cast<std::size_t>(cli.get_int("n-test"));
  c.e18_features = static_cast<std::size_t>(cli.get_int("e18-features"));
  c.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  c.workers = static_cast<int>(cli.get_int("workers"));
  c.device = cli.get_string("devices").empty() ? cli.get_string("device")
                                               : cli.get_string("devices");
  c.network = cli.get_string("network");
  c.penalty = cli.get_string("penalty");
  c.lambda = cli.get_double("lambda");
  c.straggler = cli.get_string("straggler");
  c.partition = cli.get_string("partition");
  c.iterations = static_cast<int>(cli.get_int("iterations"));
  c.cg_iterations = static_cast<int>(cli.get_int("cg-iterations"));
  c.cg_tol = cli.get_double("cg-tol");
  c.line_search_iterations = static_cast<int>(cli.get_int("line-search"));
  c.objective_target = cli.get_double("objective-target");
  c.staleness = static_cast<int>(cli.get_int("staleness"));
  c.sync_every = static_cast<int>(cli.get_int("sync-every"));
  c.omp_threads = static_cast<int>(cli.get_int("omp-threads"));
  return c;
}

int cmd_run(int argc, const char* const* argv) {
  CliParser cli("nadmm run — execute one scenario and print its trace");
  cli.add_string("solver", "newton-admm", "solver name (see `nadmm list`)");
  add_scenario_options(cli);
  cli.add_string("trace-csv", "", "if set, write the full trace CSV here");
  if (!cli.parse(argc, argv)) return 0;

  const std::string solver = cli.get_string("solver");
  const auto config = config_from_cli(cli);
  const auto& info = runner::SolverRegistry::instance().info(solver);

  const auto tt = runner::make_data(config);
  std::printf("scenario: solver=%s (%s) dataset=%s n=%zu p=%zu C=%d "
              "workers=%d device=%s network=%s penalty=%s lambda=%g\n\n",
              solver.c_str(), runner::to_string(info.kind).c_str(),
              config.dataset.c_str(), tt.train.num_samples(),
              tt.train.num_features(), tt.train.num_classes(), config.workers,
              config.device.c_str(), config.network.c_str(),
              config.penalty.c_str(), config.lambda);

  auto cluster = runner::make_cluster(config);
  const auto result =
      runner::run_solver(solver, cluster, tt.train, &tt.test, config);
  runner::print_trace_summary(result);

  const std::string trace_csv = cli.get_string("trace-csv");
  if (!trace_csv.empty()) {
    runner::write_trace_csv(result, trace_csv);
    std::printf("\ntrace written to %s\n", trace_csv.c_str());
  }
  return 0;
}

int cmd_sweep(int argc, const char* const* argv) {
  CliParser cli(
      "nadmm sweep — expand a scenario grid and run it on a worker pool.\n"
      "Grid axes take comma-separated lists; --spec FILE loads `key = value`\n"
      "lines first and inline flags override it.");
  cli.add_string("spec", "", "sweep spec file (key = value lines)");
  cli.add_string("solvers", "", "e.g. newton-admm,giant,sync-sgd");
  cli.add_string("datasets", "", "e.g. blobs,higgs");
  cli.add_string("workers", "", "e.g. 4,8,16");
  cli.add_string("devices", "", "e.g. p100,cpu");
  cli.add_string("networks", "", "e.g. ib100,eth10");
  cli.add_string("penalties", "", "e.g. sps,fixed");
  cli.add_string("lambdas", "", "e.g. 1e-5,1e-4");
  cli.add_string("stragglers", "", "e.g. none,1:4");
  cli.add_string("partitions", "", "e.g. contiguous,strided,weighted");
  cli.add_int("n-train", -1, "training samples (-1: keep spec/default)");
  cli.add_int("n-test", -1, "test samples (-1: keep spec/default)");
  cli.add_int("e18-features", -1, "e18/blobs feature dim (-1: keep)");
  cli.add_int("seed", -1, "generator seed (-1: keep)");
  cli.add_int("iterations", -1, "outer iterations (-1: keep)");
  cli.add_int("staleness", -1, "async-admm staleness bound (-1: keep)");
  cli.add_int("sync-every", -1, "stale-sync barrier period (-1: keep)");
  cli.add_double("objective-target", -1.0,
                 "early-stop objective target (-1: keep)");
  cli.add_int("jobs", 1, "concurrent scenarios");
  cli.add_string("out", "sweep.csv", "aggregated CSV report path");
  cli.add_string("json", "", "if set, also write a JSON report here");
  cli.add_string("trace-dir", "", "if set, write per-scenario trace CSVs here");
  cli.add_flag("resume", "skip scenarios recorded in <out>.journal.jsonl");
  cli.add_string("cache-budget", "2g",
                 "dataset cache byte budget (k/m/g suffixes; 0 disables)");
  cli.add_int("limit", 0, "stop after N scenarios (0 = all; for CI/testing)");
  cli.add_flag("quiet", "suppress per-scenario progress lines");
  if (!cli.parse(argc, argv)) return 0;

  runner::SweepSpec spec;
  const std::string spec_path = cli.get_string("spec");
  if (!spec_path.empty()) spec = runner::parse_sweep_file(spec_path);

  for (const char* axis :
       {"solvers", "datasets", "workers", "devices", "networks", "penalties",
        "lambdas", "stragglers", "partitions"}) {
    const std::string value = cli.get_string(axis);
    if (!value.empty()) runner::apply_sweep_assignment(spec, axis, value);
  }
  struct ScalarFlag {
    const char* flag;
    const char* key;
  };
  for (const auto& [flag, key] :
       {ScalarFlag{"n-train", "n_train"}, ScalarFlag{"n-test", "n_test"},
        ScalarFlag{"e18-features", "e18_features"}, ScalarFlag{"seed", "seed"},
        ScalarFlag{"iterations", "iterations"},
        ScalarFlag{"staleness", "staleness"},
        ScalarFlag{"sync-every", "sync_every"}}) {
    const std::int64_t value = cli.get_int(flag);
    if (value >= 0) {
      runner::apply_sweep_assignment(spec, key, std::to_string(value));
    }
  }
  if (cli.get_double("objective-target") >= 0.0) {
    runner::apply_sweep_assignment(
        spec, "objective_target",
        std::to_string(cli.get_double("objective-target")));
  }

  const std::string out = cli.get_string("out");
  runner::SweepOptions options;
  options.jobs = static_cast<int>(cli.get_int("jobs"));
  options.trace_dir = cli.get_string("trace-dir");
  options.journal_path = out + ".journal.jsonl";
  options.resume = cli.get_flag("resume");
  options.cache_budget = parse_byte_size(cli.get_string("cache-budget"));
  options.max_scenarios =
      static_cast<std::size_t>(std::max<std::int64_t>(0, cli.get_int("limit")));
  const bool quiet = cli.get_flag("quiet");
  if (!quiet) {
    options.on_scenario_done = [](const runner::ScenarioOutcome& o,
                                  std::size_t done, std::size_t total) {
      if (o.ok) {
        std::printf("[%zu/%zu] %s: objective=%.6g acc=%.4f sim=%.3fs\n", done,
                    total, o.scenario.tag().c_str(),
                    o.result.final_objective, o.result.final_test_accuracy,
                    o.result.total_sim_seconds);
      } else {
        std::printf("[%zu/%zu] %s: FAILED — %s\n", done, total,
                    o.scenario.tag().c_str(), o.error.c_str());
      }
      std::fflush(stdout);
    };
  }

  const auto scenarios = runner::expand_scenarios(spec);
  std::printf("sweep: %zu scenarios, %d job(s)\n", scenarios.size(),
              options.jobs);
  const auto report = runner::run_sweep(spec, options);
  if (report.resumed > 0) {
    std::printf("resumed: %zu scenario(s) restored from %s\n", report.resumed,
                options.journal_path.c_str());
  }
  if (report.cache.generations > 0 || report.cache.hits > 0) {
    std::printf("dataset cache: %zu generated, %zu shared, %zu evicted\n",
                report.cache.generations, report.cache.hits,
                report.cache.evictions);
  }

  if (!report.complete()) {
    std::printf("\ninterrupted after %zu scenario(s) — rerun with --resume to "
                "continue (journal: %s)\n",
                report.executed, options.journal_path.c_str());
    return 3;
  }

  report.write_csv(out);
  std::printf("\naggregated report: %s (%zu rows, %zu failed)\n", out.c_str(),
              report.outcomes.size(), report.failures());
  const std::string json = cli.get_string("json");
  if (!json.empty()) {
    report.write_json(json);
    std::printf("json report:       %s\n", json.c_str());
  }
  return report.failures() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    if (command == "list") return cmd_list();
    if (command == "run") return cmd_run(argc - 1, argv + 1);
    if (command == "sweep") return cmd_sweep(argc - 1, argv + 1);
    if (command == "--help" || command == "-h" || command == "help") {
      print_usage();
      return 0;
    }
    std::fprintf(stderr, "nadmm: unknown command '%s'\n\n", command.c_str());
    print_usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nadmm: %s\n", e.what());
    return 1;
  }
}
