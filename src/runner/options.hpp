// Declarative CLI option specs shared by every `nadmm` subcommand.
//
// Before this header, each subcommand hand-registered its flags against
// CliParser and validated values ad hoc (or not at all), so run/sweep
// drifted apart and a malformed `--device` surfaced deep inside the
// harness with no flag name attached. An OptionSpec carries the flag's
// name, type, default, help line, and a validator closure; an OptionSet
// is an ordered collection of specs that registers itself into a
// CliParser (which generates `--help` from it, in declaration order) and
// validates the parsed values up front — every rejection names the
// offending flag and echoes the bad value.
//
// The same spec table doubles as the solver-knob catalog: the registry's
// per-solver knob names resolve to typed KnobInfo entries here, so
// `nadmm list --json` and the generated README solver table cannot
// drift from what the flags actually accept.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/cli.hpp"

namespace nadmm::runner {

enum class OptType { kInt, kDouble, kString, kFlag };
std::string to_string(OptType type);

/// Checks a parsed textual value; throws InvalidArgument naming `flag`
/// (already "--"-prefixed) when the value is out of domain.
using OptionValidator =
    std::function<void(const std::string& flag, const std::string& value)>;

struct OptionSpec {
  std::string name;  ///< flag name without the leading "--"
  OptType type = OptType::kString;
  std::string default_value;  ///< textual, as CliParser stores it
  std::string help;
  OptionValidator validator;  ///< optional domain check
};

/// Ordered, duplicate-free collection of OptionSpecs.
class OptionSet {
 public:
  /// Append one spec; throws InvalidArgument on a duplicate name.
  OptionSet& add(OptionSpec spec);
  OptionSet& add_int(const std::string& name, std::int64_t default_value,
                     const std::string& help, OptionValidator validator = {});
  OptionSet& add_double(const std::string& name, double default_value,
                        const std::string& help,
                        OptionValidator validator = {});
  OptionSet& add_string(const std::string& name,
                        const std::string& default_value,
                        const std::string& help,
                        OptionValidator validator = {});
  OptionSet& add_flag(const std::string& name, const std::string& help);

  /// Append every spec of `other` (duplicates throw).
  OptionSet& extend(const OptionSet& other);

  /// Register all specs into `cli` in declaration order (the order
  /// --help prints).
  void register_into(CliParser& cli) const;

  /// Run every validator against the values `cli` parsed. Throws
  /// InvalidArgument naming the first offending flag.
  void validate(const CliParser& cli) const;

  [[nodiscard]] const std::vector<OptionSpec>& specs() const { return specs_; }
  /// Spec by name, or nullptr when absent.
  [[nodiscard]] const OptionSpec* find(const std::string& name) const;

 private:
  std::vector<OptionSpec> specs_;
};

// ---------------------------------------------------------------------------
// Validator combinators and domain validators.
// ---------------------------------------------------------------------------

OptionValidator v_int_min(std::int64_t min);
OptionValidator v_double_min(double min, bool inclusive = true);
OptionValidator v_one_of(std::vector<std::string> allowed);
/// Apply `inner` to every (trimmed) element of a `sep`-separated list;
/// empty values pass (unset axis).
OptionValidator v_each(char sep, OptionValidator inner);

OptionValidator v_dataset();      ///< named dataset or libsvm:<path>
OptionValidator v_device_list();  ///< ','/'+'-separated device specs
OptionValidator v_network();      ///< comm::network_from_string presets
OptionValidator v_straggler();    ///< "none" or <rank>:<slowdown>
OptionValidator v_partition();    ///< contiguous|strided|weighted
OptionValidator v_fault();        ///< "none" or comm::FaultSpec::parse spec
OptionValidator v_kill();         ///< "none" or <rank>:<epoch>
OptionValidator v_solver();       ///< registered solver name
OptionValidator v_arrival();      ///< serve/arrival.hpp spec
OptionValidator v_batch_policy(); ///< serve/batching.hpp spec
OptionValidator v_byte_size();    ///< bytes with optional k/m/g suffix

/// Parse "0", "1500000", "512m", "2g" (case-insensitive k/m/g suffix).
/// Throws InvalidArgument naming `flag` on malformed input.
std::size_t parse_byte_size(const std::string& flag, const std::string& value);

// ---------------------------------------------------------------------------
// Shared option tables.
// ---------------------------------------------------------------------------

/// The scenario surface shared by `nadmm run` and (as scalar overrides)
/// `nadmm sweep`: dataset shape, cluster, solver knobs.
const OptionSet& scenario_options();

/// The serving-scenario surface shared by `nadmm serve` and the sweep's
/// serving mode: arrival/batch specs, request count, dispatch overhead.
const OptionSet& serving_options();

// ---------------------------------------------------------------------------
// Solver-knob catalog (registry introspection).
// ---------------------------------------------------------------------------

/// One solver knob with its CLI type/default/description — resolved from
/// the shared option tables so `nadmm list` cannot drift from the flags.
struct KnobInfo {
  std::string name;
  std::string type;  ///< "int" | "double" | "string" | "flag"
  std::string default_value;
  std::string description;
};

/// KnobInfo for a knob name the registry declares; throws
/// InvalidArgument on names no option table defines.
KnobInfo describe_knob(const std::string& name);

}  // namespace nadmm::runner
