// Solver registry: the single name → factory authority behind the
// `nadmm` CLI, the sweep scheduler, and every bench / example driver.
//
// Two solver families share the registry:
//   * distributed — run on the simulated cluster (Newton-ADMM and the
//     paper's baselines GIANT / Synchronous SGD / InexactDANE / AIDE /
//     DiSCO);
//   * single-node — the §1 reference optimizers (Newton-CG, gradient
//     descent, momentum, Adagrad, Adam) run on the calling thread; their
//     traces carry per-iteration objectives and a flop-derived total
//     simulated time, but no per-iteration timing breakdown.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/trace.hpp"
#include "runner/harness.hpp"
#include "runner/options.hpp"

namespace nadmm::runner {

enum class SolverKind { kDistributed, kSingleNode };

/// Communication discipline of a distributed solver: synchronous solvers
/// meet at SimCluster barriers every round; asynchronous ones run on the
/// event engine (comm/async.hpp) and never barrier (or only every
/// --sync-every rounds). Single-node solvers have no discipline (kNone).
enum class CommClass { kSynchronous, kAsynchronous, kNone };

std::string to_string(SolverKind kind);
std::string to_string(CommClass comm_class);

struct SolverInfo {
  std::string name;
  SolverKind kind = SolverKind::kDistributed;
  std::string description;
  CommClass comm_class = CommClass::kNone;
  /// CLI knobs this solver actually reads (beyond the shared
  /// dataset/cluster flags). Names, not copies of the metadata: each
  /// must resolve through runner::describe_knob against the shared
  /// option tables, so the registry cannot drift from the flags.
  std::vector<std::string> knob_names;

  /// The knobs resolved to typed entries (type/default/description from
  /// the option specs). Throws InvalidArgument when a knob name is not
  /// a registered CLI option.
  [[nodiscard]] std::vector<KnobInfo> knobs() const;
  /// Comma-joined knob names, for compact table display.
  [[nodiscard]] std::string knobs_csv() const;
};

/// Factory signature shared by both families: every solver receives the
/// pre-sharded experiment data (one RankData per rank, planned by the
/// harness — no solver re-shards). Single-node solvers ignore the
/// cluster and run on the materialized full splits, but keep the uniform
/// signature so callers need no special cases.
using SolverFactory = std::function<core::RunResult(
    comm::SimCluster&, const data::ShardedDataset&, const ExperimentConfig&)>;

class SolverRegistry {
 public:
  /// The process-wide registry, pre-populated with the built-in solvers.
  static SolverRegistry& instance();

  /// Register a solver; throws InvalidArgument on duplicate names.
  void add(SolverInfo info, SolverFactory factory);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Metadata for `name`; throws InvalidArgument (listing the known
  /// names) when unknown.
  [[nodiscard]] const SolverInfo& info(const std::string& name) const;

  /// All registered solvers, sorted by name.
  [[nodiscard]] std::vector<SolverInfo> list() const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Resolve `name` and run it on pre-sharded data. Throws
  /// InvalidArgument for unknown names.
  core::RunResult run(const std::string& name, comm::SimCluster& cluster,
                      const data::ShardedDataset& data,
                      const ExperimentConfig& config) const;

  /// Convenience overload: shards `train` / `test` under the config's
  /// partition plan (runner::shard_plan) before running.
  [[deprecated(
      "shard explicitly: run(name, cluster, shard_for_solver(name, train, "
      "test, config), config) — the (train, test) overload re-plans shards "
      "per call and hides the data layout")]]
  core::RunResult run(const std::string& name, comm::SimCluster& cluster,
                      const data::Dataset& train, const data::Dataset* test,
                      const ExperimentConfig& config) const;

 private:
  SolverRegistry();
  void register_builtins();

  std::map<std::string, std::pair<SolverInfo, SolverFactory>> solvers_;
};

/// Machine-readable registry dump (`nadmm list --json`): every solver
/// with kind/class/description and its fully resolved knob entries.
std::string registry_json();

}  // namespace nadmm::runner
