// Scenario sweep scheduler: expands a declarative grid spec
// (solver × dataset × workers × device × network × penalty × λ) into
// ExperimentConfig instances, executes them concurrently on a worker
// pool, and aggregates the per-scenario results into one combined
// CSV / JSON report with deterministic ordering.
//
// Determinism: scenarios are expanded in a fixed axis order and results
// are stored by scenario index, so the report is byte-identical no
// matter how many scheduler threads run it (`--jobs=1` vs `--jobs=4`).
// Each scenario's cluster is pinned to one OpenMP thread per rank by
// default, which removes run-to-run float reassociation and keeps
// `jobs × workers` from oversubscribing the host.
//
// Datasets are fetched through a DatasetProvider (src/data/provider.hpp),
// so scenarios that differ only in solver/workers/device/network/penalty/λ
// share one immutable copy instead of regenerating per scenario.
//
// Resume: with `SweepOptions::journal_path` set, every finished scenario
// is appended to a JSONL journal (flushed per line). A rerun of the same
// grid spec with `resume = true` reconstructs completed outcomes from the
// journal — skipping their execution — and still emits a byte-identical
// final CSV/JSON report. Journals carry the spec's fingerprint; resuming
// against a journal written for a different grid spec is rejected.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/trace.hpp"
#include "data/provider.hpp"
#include "runner/harness.hpp"

namespace nadmm::runner {

/// Declarative sweep grid. Axis vectors must be non-empty; `base`
/// carries the shared knobs (sample counts, iteration budgets, seed).
struct SweepSpec {
  std::vector<std::string> solvers{"newton-admm"};
  std::vector<std::string> datasets{"blobs"};
  std::vector<int> workers{8};
  /// Device axis values may be '+'-separated per-rank lists
  /// ("p100+cpu+cpu") — commas separate axis entries.
  std::vector<std::string> devices{"p100"};
  std::vector<std::string> networks{"ib100"};
  std::vector<std::string> penalties{"sps"};
  std::vector<double> lambdas{1e-5};
  /// Straggler axis: "none" or "<rank>:<slowdown>" entries.
  std::vector<std::string> stragglers{"none"};
  /// Shard-plan axis: contiguous | strided | weighted (see
  /// data/partition.hpp).
  std::vector<std::string> partitions{"contiguous"};
  /// Link-fault axis: "none" or comm::FaultSpec::parse specs
  /// ("drop:0.05,dup:0.02"). Only the async-engine solvers inject
  /// faults; synchronous solvers ignore the value (their SimCluster has
  /// no wire), so pair this axis with async-admm/stale-sync-admm rows.
  std::vector<std::string> faults{"none"};

  /// Paper-scale multiplier applied at expansion time: every scenario's
  /// sample counts become round(base.n_train × scale) /
  /// round(base.n_test × scale) (clamped to ≥ 1 train sample). Axes and
  /// all other knobs are untouched, so the same spec file serves the
  /// committed small grid (scale = 1) and a paper-scale validation run
  /// (scale ≥ 4). Part of the spec fingerprint — each scale keeps its
  /// own resume journal.
  double scale = 1.0;
  /// Weak-scaling grids: interpret base.n_train as the *per-worker*
  /// shard — each scenario trains on n_train × workers rows (after
  /// `scale`), holding per-rank load constant along the workers axis
  /// (paper Figures 2/5). Train mode only; n_test stays fixed.
  bool weak_scaling = false;

  /// Grid mode: "train" (the default; the axes above) or "serving" —
  /// each scenario trains (or loads) a model once per (solver, dataset)
  /// and replays a synthetic request stream against it, expanding
  /// solver × dataset × device × network × arrival × batch_policy
  /// (workers/penalty/lambda/straggler/partition stay at their base
  /// values for the training step).
  std::string mode{"train"};
  /// Serving-mode arrival axis (serve/arrival.hpp specs).
  std::vector<std::string> arrivals{"poisson:1000"};
  /// Serving-mode batch-policy axis (serve/batching.hpp specs).
  std::vector<std::string> batch_policies{"immediate"};
  /// Requests per serving scenario.
  std::size_t serve_requests = 10'000;
  /// Pre-trained model path; empty trains in-process per
  /// (solver, dataset) with the base config's cluster.
  std::string serve_model;
  /// Fixed per-dispatch cost (see serve::ServeConfig).
  double dispatch_overhead_s = 1e-4;

  ExperimentConfig base;
};

/// Apply one `key = value` assignment to the spec. Grid axes take
/// comma-separated lists ("solvers = newton-admm, giant"); scalar keys
/// ("n_train", "iterations", ...) set the shared base config. Throws
/// InvalidArgument on unknown keys or malformed values.
void apply_sweep_assignment(SweepSpec& spec, const std::string& key,
                            const std::string& value);

/// Parse a sweep spec file: one `key = value` per line, `#` comments and
/// blank lines ignored. Starts from the default-constructed spec.
SweepSpec parse_sweep_file(const std::string& path);

/// One expanded grid point.
struct Scenario {
  int index = 0;         ///< position in deterministic expansion order
  std::string solver;
  ExperimentConfig config;
  /// Serving-mode fields: set (and appended to the tag) only when the
  /// grid's mode is "serving".
  bool serving = false;
  std::string arrival;
  std::string batch;

  /// Stable file-system-safe identifier, e.g.
  /// "003_giant_blobs_w4_p100_ib100_sps_lam1e-05".
  [[nodiscard]] std::string tag() const;
};

/// Expand the grid in fixed axis order (solver, dataset, workers,
/// device, network, penalty, lambda, straggler, partition — rightmost
/// fastest).
std::vector<Scenario> expand_scenarios(const SweepSpec& spec);

/// 64-bit FNV-1a hash (hex) over the canonical serialization of every
/// spec field; journals are bound to it so a resume against a different
/// grid is detected.
std::string spec_fingerprint(const SweepSpec& spec);

struct ScenarioOutcome {
  Scenario scenario;
  core::RunResult result;  ///< valid when ok
  bool ok = false;
  bool from_journal = false;     ///< reconstructed on resume (trace empty)
  double comm_sim_seconds = 0.0; ///< cached from the trace for reports
  // Async-runtime columns, pre-formatted so journal restores stay
  // byte-identical to fresh runs: per-rank waits and the staleness
  // histogram as ';'-joined strings ("w0;w1;…", "s:count;…").
  double max_wait_seconds = 0.0;
  std::string rank_waits;
  std::string staleness_hist;
  // The generic result.metrics map ("retransmits", "gaps_detected",
  // "messages_dropped", "checkpoints", "restores", ...) lives in
  // result; journal restores rehydrate it there so CSV/JSON stay
  // byte-identical.
  /// Resident dataset bytes the scenario held while training: the full
  /// splits plus whatever the shards own. Zero-copy view plans report
  /// just the full storage; streamed `libsvm:` scenarios report the
  /// summed per-rank shards (the full matrix never exists).
  std::uint64_t peak_dataset_bytes = 0;
  // Serving-mode columns (zero for train scenarios). Latencies are the
  // quantile-sketch readouts; final_test_accuracy carries the served
  // prediction accuracy.
  std::uint64_t serve_requests = 0;
  std::uint64_t serve_batches = 0;
  double throughput_rps = 0.0;
  double mean_batch = 0.0;
  double p50_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double p999_latency_s = 0.0;
  std::string error;             ///< non-empty when !ok
};

struct SweepReport {
  std::vector<ScenarioOutcome> outcomes;  ///< in scenario order
  std::size_t resumed = 0;   ///< outcomes reconstructed from the journal
  std::size_t executed = 0;  ///< outcomes actually run this invocation
  data::DatasetProvider::Stats cache;  ///< dataset-cache counters

  /// False when `max_scenarios` stopped the run early; the report is
  /// partial and should not be written as final.
  [[nodiscard]] bool complete() const {
    return resumed + executed == outcomes.size();
  }

  [[nodiscard]] std::size_t failures() const;

  /// One row per scenario. Only deterministic columns (simulated time,
  /// objective, accuracy) — wall-clock stays out so reruns and different
  /// `--jobs` settings produce byte-identical files.
  void write_csv(const std::string& path) const;
  void write_json(const std::string& path) const;

  /// The CSV rows as strings (header first), for tests and the CLI.
  [[nodiscard]] std::vector<std::string> csv_rows() const;
};

struct SweepOptions {
  int jobs = 1;            ///< scheduler threads (clamped to #scenarios)
  std::string trace_dir;   ///< if set, write one trace CSV per scenario
  /// If set, attach a telemetry tracer to every scenario and write one
  /// Chrome trace_event JSON per scenario tag into this directory
  /// (`<dir>/<tag>.trace.json`). Traces stamp virtual time only, so the
  /// files are byte-identical across `--jobs` levels. Not part of the
  /// spec fingerprint: tracing an existing journal's grid on resume is
  /// allowed (only freshly executed scenarios get trace files).
  std::string trace_event_dir;
  /// Pin each rank to one OpenMP thread (see header comment). Disabling
  /// re-enables intra-rank parallelism but forfeits byte-stable reports.
  bool deterministic = true;

  /// If set, append each finished scenario to this JSONL journal
  /// (flushed per line, so a killed run loses at most the in-flight
  /// scenarios).
  std::string journal_path;
  /// Skip scenarios already recorded in `journal_path`. Throws
  /// InvalidArgument when the journal was written for a different grid
  /// spec. A missing journal is not an error (fresh start).
  bool resume = false;
  /// Stop after this many scenarios have been executed this invocation
  /// (0 = no limit). Used by tests and CI to interrupt deterministically;
  /// the journal stays valid for a later resume.
  std::size_t max_scenarios = 0;

  /// Dataset-cache byte budget; 0 disables sharing entirely (every
  /// scenario regenerates, the pre-cache behavior).
  std::size_t cache_budget = data::DatasetProvider::kDefaultByteBudget;
  /// Use this provider instead of a sweep-local one (tests inject a
  /// provider to observe generation counts; `cache_budget` is then left
  /// untouched).
  data::DatasetProvider* provider = nullptr;

  /// Progress callback, invoked serially as scenarios finish (not for
  /// journal-restored scenarios).
  std::function<void(const ScenarioOutcome&, std::size_t done,
                     std::size_t total)>
      on_scenario_done;
};

/// Run every scenario of `spec` and aggregate the outcomes. Scenario
/// failures are captured per-outcome, not thrown.
SweepReport run_sweep(const SweepSpec& spec, const SweepOptions& options);

}  // namespace nadmm::runner
